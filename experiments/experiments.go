// Package experiments regenerates every table and figure in the paper's
// evaluation (§4): the Figure-2 downtime breakdown before and after the
// intelliagents, the Figure-3/4 monitor overhead comparison, the detection
// latency and manual-repair-time observations quoted in the text, and the
// ablations DESIGN.md calls out.
package experiments

import (
	"fmt"
	"reflect"
	"strings"

	qoscluster "repro"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// Config parameterises a run.
type Config struct {
	Seed uint64
	Days int
	// Sites names the site topologies to run or sweep: registered
	// topology names (paper, small, webfarm, computefarm, or anything
	// qoscluster.RegisterTopology added) and/or paths to topology JSON
	// files. Empty means {"small"}. Campaigns sweep the whole list as a
	// matrix axis; the single-seed narrative scenarios run each site in
	// turn.
	Sites []string
	// Trials is the seeds-per-cell count for the scenarios Run executes
	// as multi-seed campaigns (latency, mttr, ablate-*); 0 means the
	// campaign default of 8.
	Trials int
	// Workers bounds the campaign worker pool (0 = NumCPU).
	Workers int
	// CronPeriods overrides the ablate-cron sweep axis (default
	// 1m, 5m, 15m, 60m).
	CronPeriods []simclock.Time
	// TierFaultScales sweeps per-tier fault intensity as a matrix axis on
	// the site scenarios: each entry is a "tier=mult[,tier=mult]" spec
	// (or "" for the unscaled default) and becomes one aggregation cell.
	TierFaultScales []string
	// Workloads sweeps statistical workload specs as a matrix axis on
	// the site scenarios: registered spec names (paper, flashcrowd,
	// failover, or anything workload.RegisterSpec added) and/or paths to
	// workload-spec JSON files; "" selects the site's own workload. Each
	// entry becomes one aggregation cell.
	Workloads []string
	// TierLoadScales sweeps per-tier load intensity as a matrix axis —
	// the workload twin of TierFaultScales, same "tier=mult" cells.
	TierLoadScales []string
	// Shards is the intra-trial parallelism degree handed to every site
	// trial (see qoscluster.WithShards); 0 or 1 keep the
	// single-goroutine engine. Results are byte-identical at any value.
	Shards int
	// AgentSlots quantizes agent cron dispatch onto this many slots per
	// period and batches each slot (see qoscluster.WithAgentSlots). A
	// model knob: slotted trajectories differ from unslotted ones, and
	// campaigns record the value in their JSON. 0 keeps per-agent phases.
	AgentSlots int
	// TracePath, when set, records every trial's decision trace and writes
	// the campaign's trace file (JSONL) there. Implies TraceLevel 1 when
	// TraceLevel is unset. Tracing is an execution knob: campaign results
	// are byte-identical with or without it.
	TracePath string
	// TraceLevel sets the recorder level for traced campaigns: 1 records
	// decision events, 2 adds diagnosis evidence lines (see
	// qoscluster.WithTrace). 0 defers to TracePath's default.
	TraceLevel int
}

func (c Config) siteArgs() []string {
	if len(c.Sites) == 0 {
		return []string{"small"}
	}
	return c.Sites
}

// ResolveSites canonicalises site arguments into registered topology
// names: a name that is already registered passes through; anything else
// is treated as a topology JSON file, which is loaded, validated and
// registered under its declared name, so campaign trials can look it up
// wherever they run. A file whose declared name collides with a
// different already-registered topology is rejected (re-loading an
// identical declaration is fine), as is the same resolved name appearing
// twice — either would silently fold two distinct site axes into one.
func ResolveSites(args []string) ([]string, error) {
	out := make([]string, 0, len(args))
	used := map[string]string{} // resolved name -> the arg that claimed it
	for _, arg := range args {
		name := arg
		if _, ok := qoscluster.ResolveTopology(arg); !ok {
			topo, err := qoscluster.LoadTopologyFile(arg)
			if err != nil {
				return nil, fmt.Errorf("site %q: not a registered topology (%s) and not loadable as a topology file: %w",
					arg, strings.Join(qoscluster.TopologyNames(), ", "), err)
			}
			if existing, ok := qoscluster.TopologyByName(topo.Name); ok && !reflect.DeepEqual(existing, topo) {
				return nil, fmt.Errorf("site %q: declares name %q, which is already registered as a different topology",
					arg, topo.Name)
			}
			if err := qoscluster.RegisterTopology(topo); err != nil {
				return nil, fmt.Errorf("site %q: %w", arg, err)
			}
			name = topo.Name
		}
		if prev, dup := used[name]; dup {
			return nil, fmt.Errorf("site %q resolves to %q, already named by %q", arg, name, prev)
		}
		used[name] = arg
		out = append(out, name)
	}
	return out, nil
}

// ResolveWorkloads canonicalises workload-axis arguments into registered
// spec names, with the same rules as ResolveSites: "" (the site's own
// workload) passes through, a registered spec name passes through, and
// anything else is treated as a workload-spec JSON file, which is
// loaded, validated and registered under its declared name so campaign
// trials can look it up wherever they run. A file whose declared name
// collides with a different already-registered spec is rejected
// (re-loading an identical declaration is fine), as is the same
// resolved name appearing twice.
func ResolveWorkloads(args []string) ([]string, error) {
	out := make([]string, 0, len(args))
	used := map[string]string{} // resolved name -> the arg that claimed it
	for _, arg := range args {
		name := arg
		if _, ok := workload.SpecByName(arg); !ok && arg != "" {
			sp, err := workload.LoadSpecFile(arg)
			if err != nil {
				return nil, fmt.Errorf("workload %q: not a registered spec (%s) and not loadable as a spec file: %w",
					arg, strings.Join(workload.SpecNames(), ", "), err)
			}
			if existing, ok := workload.SpecByName(sp.Name); ok && !reflect.DeepEqual(existing, sp) {
				return nil, fmt.Errorf("workload %q: declares name %q, which is already registered as a different spec",
					arg, sp.Name)
			}
			if err := workload.RegisterSpec(sp); err != nil {
				return nil, fmt.Errorf("workload %q: %w", arg, err)
			}
			name = sp.Name
		}
		if prev, dup := used[name]; dup {
			return nil, fmt.Errorf("workload %q resolves to %q, already named by %q", arg, name, prev)
		}
		used[name] = arg
		out = append(out, name)
	}
	return out, nil
}

// buildNamedSite assembles one registered site topology with the given
// options layered on. The seed parameter is authoritative: it is applied
// after the caller's options, so a WithOptions bundle cannot silently
// zero it.
func buildNamedSite(name string, seed uint64, opts ...qoscluster.Option) (*qoscluster.Site, error) {
	if name == "" {
		name = "small"
	}
	topo, ok := qoscluster.ResolveTopology(name)
	if !ok {
		return nil, fmt.Errorf("unknown site topology %q (registered: %s)",
			name, strings.Join(qoscluster.TopologyNames(), ", "))
	}
	return qoscluster.NewSite(topo, append(append([]qoscluster.Option{}, opts...), qoscluster.WithSeed(seed))...)
}

func (c Config) span() simclock.Time {
	if c.Days <= 0 {
		return simclock.Year
	}
	return simclock.Time(c.Days) * simclock.Day
}

// Ablation span rule: sweeps default to DefaultAblationDays (long enough
// for every fault category to appear, far cheaper than a full year) and
// never exceed MaxAblationDays.
const (
	DefaultAblationDays = 90
	MaxAblationDays     = 120
)

// AblationDays applies the explicit ablation span rule, shared by the
// campaign and single-run paths: Days <= 0 selects DefaultAblationDays,
// an explicit Days up to MaxAblationDays is honoured as given, and a
// longer request is capped at MaxAblationDays — not silently rewritten
// to the default.
func (c Config) AblationDays() int {
	switch {
	case c.Days <= 0:
		return DefaultAblationDays
	case c.Days > MaxAblationDays:
		return MaxAblationDays
	default:
		return c.Days
	}
}

// Run executes a named scenario and returns its printed report. The
// stochastic observation scenarios — latency, mttr and the ablate-*
// sweeps — run as multi-seed campaigns (cfg.Trials seeds per cell) and
// report mean ± 95%-CI aggregates; there is no single-seed path for
// them. "ablate" runs all four ablation sweeps back to back.
func Run(name string, cfg Config) (string, error) {
	switch name {
	case "before":
		return YearBefore(cfg)
	case "after":
		return YearAfter(cfg)
	case "fig2":
		return Fig2(cfg)
	case "fig3":
		return Fig3(cfg)
	case "fig4":
		return Fig4(cfg)
	case "latency", "mttr", "ablate-cron", "ablate-rescue", "ablate-net", "ablate-resident":
		return campaignText(name, cfg)
	case "ablate":
		// Validate every sweep's matrix up front: a flag error knowable
		// now (e.g. a multi-site list, rejected by ablate-resident) must
		// not surface only after the earlier sweeps burned their compute.
		trials := cfg.Trials
		if trials <= 0 {
			trials = 8
		}
		for _, n := range AblateScenarios {
			if _, err := CampaignMatrix(n, cfg, trials); err != nil {
				return "", err
			}
		}
		var b strings.Builder
		for i, n := range AblateScenarios {
			out, err := campaignText(n, cfg)
			if i > 0 && out != "" {
				b.WriteByte('\n')
			}
			b.WriteString(out)
			if err != nil {
				// Completed sweeps (and the failed-trials detail campaignText
				// renders) stay in the output alongside the error.
				return b.String(), err
			}
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("unknown scenario %q", name)
	}
}

// campaignText runs one scenario as a campaign and renders its aggregate
// tables, with the paper's reference quotes appended where the scenario
// has them.
func campaignText(name string, cfg Config) (string, error) {
	res, err := Campaign(name, cfg, cfg.Trials, cfg.Workers)
	if err != nil {
		return "", err
	}
	out := qoscluster.FormatCampaign(res) + paperNote(name)
	if errs := res.Errs(); len(errs) > 0 {
		return out, fmt.Errorf("campaign %s: %d of %d trials failed", name, len(errs), len(res.Trials))
	}
	return out, nil
}

// PaperFig2Before is the paper's before-year downtime breakdown in hours.
var PaperFig2Before = map[metrics.Category]float64{
	metrics.CatMidCrash:       345,
	metrics.CatHuman:          60,
	metrics.CatPerformance:    50,
	metrics.CatFrontEnd:       40,
	metrics.CatLSF:            30,
	metrics.CatFirewallNet:    10,
	metrics.CatHardware:       10,
	metrics.CatCompletelyDown: 5,
}

// PaperFig2After is the paper's after-year breakdown. (The paper's text
// says 31 hours total but its own category list sums to 39; we compare
// against the per-category list.)
var PaperFig2After = map[metrics.Category]float64{
	metrics.CatMidCrash:       8,
	metrics.CatHuman:          2,
	metrics.CatPerformance:    9,
	metrics.CatFrontEnd:       3,
	metrics.CatLSF:            1,
	metrics.CatFirewallNet:    8,
	metrics.CatHardware:       6,
	metrics.CatCompletelyDown: 2,
}

// yearReports runs one operations mode over every configured site and
// concatenates the reports (with a site header when more than one site is
// configured).
func yearReports(cfg Config, mode qoscluster.Mode) (string, error) {
	sites, err := ResolveSites(cfg.siteArgs())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, name := range sites {
		site, err := buildNamedSite(name, cfg.Seed, qoscluster.WithMode(mode), qoscluster.WithShards(cfg.Shards),
			qoscluster.WithAgentSlots(cfg.AgentSlots))
		if err != nil {
			return b.String(), err
		}
		if err := site.Run(cfg.span()); err != nil {
			return b.String(), fmt.Errorf("site %s: %w", name, err)
		}
		if len(sites) > 1 {
			if i > 0 {
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "--- site %s ---\n", name)
		}
		b.WriteString(site.Report().Format())
	}
	return b.String(), nil
}

// YearBefore runs the manual-operations year and prints its report.
func YearBefore(cfg Config) (string, error) {
	return yearReports(cfg, qoscluster.ModeManual)
}

// YearAfter runs the intelliagent year and prints its report.
func YearAfter(cfg Config) (string, error) {
	return yearReports(cfg, qoscluster.ModeAgents)
}

// Fig2 runs both years on the same fault campaign and prints the
// reproduction of Figure 2 with the paper's numbers alongside, once per
// configured site.
func Fig2(cfg Config) (string, error) {
	sites, err := ResolveSites(cfg.siteArgs())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, name := range sites {
		if i > 0 {
			b.WriteByte('\n')
		}
		if err := fig2Site(&b, cfg, name); err != nil {
			return b.String(), err
		}
	}
	return b.String(), nil
}

func fig2Site(b *strings.Builder, cfg Config, siteName string) error {
	before, err := buildNamedSite(siteName, cfg.Seed, qoscluster.WithMode(qoscluster.ModeManual), qoscluster.WithShards(cfg.Shards),
		qoscluster.WithAgentSlots(cfg.AgentSlots))
	if err != nil {
		return err
	}
	if err := before.Run(cfg.span()); err != nil {
		return fmt.Errorf("site %s: %w", siteName, err)
	}
	rb := before.Report()

	after, err := buildNamedSite(siteName, cfg.Seed, qoscluster.WithMode(qoscluster.ModeAgents), qoscluster.WithShards(cfg.Shards),
		qoscluster.WithAgentSlots(cfg.AgentSlots))
	if err != nil {
		return err
	}
	if err := after.Run(cfg.span()); err != nil {
		return fmt.Errorf("site %s: %w", siteName, err)
	}
	ra := after.Report()

	scale := float64(cfg.span()) / float64(simclock.Year)
	fmt.Fprintf(b, "Figure 2 — downtime hours by error category (site %s, %.0f days, seed %d)\n",
		siteName, cfg.span().Hours()/24, cfg.Seed)
	fmt.Fprintf(b, "%-16s %12s %12s %12s %12s\n", "category", "before", "paper-before", "after", "paper-after")
	var tb, ta float64
	for _, cat := range metrics.Categories {
		hb := rb.DowntimeHours(cat)
		ha := ra.DowntimeHours(cat)
		tb += hb
		ta += ha
		fmt.Fprintf(b, "%-16s %12.1f %12.1f %12.1f %12.1f\n",
			cat, hb, PaperFig2Before[cat]*scale, ha, PaperFig2After[cat]*scale)
	}
	fmt.Fprintf(b, "%-16s %12.1f %12.1f %12.1f %12.1f\n", "TOTAL", tb, 550*scale, ta, 39*scale)
	if ta > 0 {
		fmt.Fprintf(b, "improvement factor: %.1fx (paper: %.1fx)\n", tb/ta, 550.0/39)
	}
	fmt.Fprintf(b, "\nbatch: before done=%d failed=%d | after done=%d failed=%d resubmitted=%d\n",
		rb.JobsDone, rb.JobsFailed, ra.JobsDone, ra.JobsFailed, ra.Resubmitted)
	return nil
}
