// Package experiments regenerates every table and figure in the paper's
// evaluation (§4): the Figure-2 downtime breakdown before and after the
// intelliagents, the Figure-3/4 monitor overhead comparison, the detection
// latency and manual-repair-time observations quoted in the text, and the
// ablations DESIGN.md calls out.
package experiments

import (
	"fmt"
	"strings"

	qoscluster "repro"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Config parameterises a run.
type Config struct {
	Seed      uint64
	Days      int
	PaperSite bool // full 215-host site instead of the scaled one
	// Trials is the seeds-per-cell count for the scenarios Run executes
	// as multi-seed campaigns (latency, mttr, ablate-*); 0 means the
	// campaign default of 8.
	Trials int
	// Workers bounds the campaign worker pool (0 = NumCPU).
	Workers int
	// CronPeriods overrides the ablate-cron sweep axis (default
	// 1m, 5m, 15m, 60m).
	CronPeriods []simclock.Time
}

func (c Config) site() qoscluster.SiteSpec {
	if c.PaperSite {
		return qoscluster.PaperSite(c.Seed)
	}
	return qoscluster.SmallSite(c.Seed)
}

func (c Config) span() simclock.Time {
	if c.Days <= 0 {
		return simclock.Year
	}
	return simclock.Time(c.Days) * simclock.Day
}

// Ablation span rule: sweeps default to DefaultAblationDays (long enough
// for every fault category to appear, far cheaper than a full year) and
// never exceed MaxAblationDays.
const (
	DefaultAblationDays = 90
	MaxAblationDays     = 120
)

// AblationDays applies the explicit ablation span rule, shared by the
// campaign and single-run paths: Days <= 0 selects DefaultAblationDays,
// an explicit Days up to MaxAblationDays is honoured as given, and a
// longer request is capped at MaxAblationDays — not silently rewritten
// to the default.
func (c Config) AblationDays() int {
	switch {
	case c.Days <= 0:
		return DefaultAblationDays
	case c.Days > MaxAblationDays:
		return MaxAblationDays
	default:
		return c.Days
	}
}

// Run executes a named scenario and returns its printed report. The
// stochastic observation scenarios — latency, mttr and the ablate-*
// sweeps — run as multi-seed campaigns (cfg.Trials seeds per cell) and
// report mean ± 95%-CI aggregates; there is no single-seed path for
// them. "ablate" runs all four ablation sweeps back to back.
func Run(name string, cfg Config) (string, error) {
	switch name {
	case "before":
		return YearBefore(cfg), nil
	case "after":
		return YearAfter(cfg), nil
	case "fig2":
		return Fig2(cfg), nil
	case "fig3":
		return Fig3(cfg), nil
	case "fig4":
		return Fig4(cfg), nil
	case "latency", "mttr", "ablate-cron", "ablate-rescue", "ablate-net", "ablate-resident":
		return campaignText(name, cfg)
	case "ablate":
		var b strings.Builder
		for i, n := range AblateScenarios {
			out, err := campaignText(n, cfg)
			if i > 0 && out != "" {
				b.WriteByte('\n')
			}
			b.WriteString(out)
			if err != nil {
				// Completed sweeps (and the failed-trials detail campaignText
				// renders) stay in the output alongside the error.
				return b.String(), err
			}
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("unknown scenario %q", name)
	}
}

// campaignText runs one scenario as a campaign and renders its aggregate
// tables, with the paper's reference quotes appended where the scenario
// has them.
func campaignText(name string, cfg Config) (string, error) {
	res, err := Campaign(name, cfg, cfg.Trials, cfg.Workers)
	if err != nil {
		return "", err
	}
	out := qoscluster.FormatCampaign(res) + paperNote(name)
	if errs := res.Errs(); len(errs) > 0 {
		return out, fmt.Errorf("campaign %s: %d of %d trials failed", name, len(errs), len(res.Trials))
	}
	return out, nil
}

// PaperFig2Before is the paper's before-year downtime breakdown in hours.
var PaperFig2Before = map[metrics.Category]float64{
	metrics.CatMidCrash:       345,
	metrics.CatHuman:          60,
	metrics.CatPerformance:    50,
	metrics.CatFrontEnd:       40,
	metrics.CatLSF:            30,
	metrics.CatFirewallNet:    10,
	metrics.CatHardware:       10,
	metrics.CatCompletelyDown: 5,
}

// PaperFig2After is the paper's after-year breakdown. (The paper's text
// says 31 hours total but its own category list sums to 39; we compare
// against the per-category list.)
var PaperFig2After = map[metrics.Category]float64{
	metrics.CatMidCrash:       8,
	metrics.CatHuman:          2,
	metrics.CatPerformance:    9,
	metrics.CatFrontEnd:       3,
	metrics.CatLSF:            1,
	metrics.CatFirewallNet:    8,
	metrics.CatHardware:       6,
	metrics.CatCompletelyDown: 2,
}

// YearBefore runs the manual-operations year and prints its report.
func YearBefore(cfg Config) string {
	site := qoscluster.BuildSite(cfg.site(), qoscluster.Options{Mode: qoscluster.ModeManual})
	site.Run(cfg.span())
	return site.Report().Format()
}

// YearAfter runs the intelliagent year and prints its report.
func YearAfter(cfg Config) string {
	site := qoscluster.BuildSite(cfg.site(), qoscluster.Options{Mode: qoscluster.ModeAgents})
	site.Run(cfg.span())
	return site.Report().Format()
}

// Fig2 runs both years on the same fault campaign and prints the
// reproduction of Figure 2 with the paper's numbers alongside.
func Fig2(cfg Config) string {
	before := qoscluster.BuildSite(cfg.site(), qoscluster.Options{Mode: qoscluster.ModeManual})
	before.Run(cfg.span())
	rb := before.Report()

	after := qoscluster.BuildSite(cfg.site(), qoscluster.Options{Mode: qoscluster.ModeAgents})
	after.Run(cfg.span())
	ra := after.Report()

	scale := float64(cfg.span()) / float64(simclock.Year)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — downtime hours by error category (%.0f days, seed %d)\n", cfg.span().Hours()/24, cfg.Seed)
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s\n", "category", "before", "paper-before", "after", "paper-after")
	var tb, ta float64
	for _, cat := range metrics.Categories {
		hb := rb.DowntimeHours(cat)
		ha := ra.DowntimeHours(cat)
		tb += hb
		ta += ha
		fmt.Fprintf(&b, "%-16s %12.1f %12.1f %12.1f %12.1f\n",
			cat, hb, PaperFig2Before[cat]*scale, ha, PaperFig2After[cat]*scale)
	}
	fmt.Fprintf(&b, "%-16s %12.1f %12.1f %12.1f %12.1f\n", "TOTAL", tb, 550*scale, ta, 39*scale)
	if ta > 0 {
		fmt.Fprintf(&b, "improvement factor: %.1fx (paper: %.1fx)\n", tb/ta, 550.0/39)
	}
	fmt.Fprintf(&b, "\nbatch: before done=%d failed=%d | after done=%d failed=%d resubmitted=%d\n",
		rb.JobsDone, rb.JobsFailed, ra.JobsDone, ra.JobsFailed, ra.Resubmitted)
	return b.String()
}
