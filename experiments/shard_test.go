package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/campaign"
)

// TestShardEquivalence is the gate for intra-trial sharding: on the
// paper-shaped sites and the mid-size megasite member, the campaign JSON
// from the sharded engine at every supported shard count must be
// byte-identical to the single-goroutine reference path. Shards are an
// execution knob, not a matrix axis — if any byte moves, the shard merge
// has leaked scheduling or RNG order into a reproduced number; fix the
// engine, do not regenerate expectations.
func TestShardEquivalence(t *testing.T) {
	cells := []struct {
		site string
		mode string
	}{
		{"paper", "manual"},
		{"small", "manual"},
		{"small", "agents"},
		{"megasite-150", "manual"},
		{"megasite-150", "agents"},
	}
	for _, cell := range cells {
		t.Run(fmt.Sprintf("%s-%s", cell.site, cell.mode), func(t *testing.T) {
			t.Parallel()
			if testing.Short() && cell.site == "megasite-150" {
				t.Skip("megasite reference path is the long cell; run without -short for the full gate")
			}
			m := campaign.Matrix{
				Seeds:     campaign.Seeds(7, 2),
				Scenarios: []string{"year"},
				Sites:     []string{cell.site},
				Modes:     []string{cell.mode},
				Days:      1,
			}
			ref, err := campaign.Run("shard-equivalence", m, 1, ReferenceRunTrial)
			if err != nil {
				t.Fatalf("reference campaign: %v", err)
			}
			if errs := ref.Errs(); len(errs) > 0 {
				t.Fatalf("reference campaign had %d failed trials; first: %s", len(errs), errs[0].Err)
			}
			want, err := ref.JSON()
			if err != nil {
				t.Fatalf("reference JSON: %v", err)
			}
			for _, shards := range []int{1, 2, 8} {
				sm := m
				sm.Shards = shards
				res, err := campaign.Run("shard-equivalence", sm, 2, NewPooledRunFunc())
				if err != nil {
					t.Fatalf("sharded campaign (%d shards): %v", shards, err)
				}
				if errs := res.Errs(); len(errs) > 0 {
					t.Fatalf("sharded campaign (%d shards) had %d failed trials; first: %s",
						shards, len(errs), errs[0].Err)
				}
				got, err := res.JSON()
				if err != nil {
					t.Fatalf("sharded JSON (%d shards): %v", shards, err)
				}
				if !bytes.Equal(want, got) {
					t.Errorf("sharded engine diverged from reference (site %s, mode %s, %d shards):\n%s",
						cell.site, cell.mode, shards, firstDiff(want, got))
				}
			}
		})
	}
}

// TestShardReuseRaceStress drives the pooled ReuseRunner at 8 shards on 8
// campaign workers — 64 goroutines of probe walks over sync.Pool-recycled
// sites. Its job is to give the race detector surface area: shard workers
// write disjoint SoA ranges of the same arrays while other trials reset
// and reuse neighbouring sites. The numeric output is already pinned by
// TestShardEquivalence; here only clean completion matters.
func TestShardReuseRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed megasite stress; run without -short")
	}
	t.Parallel()
	m := campaign.Matrix{
		Seeds:     campaign.Seeds(11, 8),
		Scenarios: []string{"year"},
		Sites:     []string{"megasite-150"},
		Modes:     []string{"manual", "agents"},
		Days:      1,
		Shards:    8,
	}
	res, err := campaign.Run("shard-stress", m, 8, NewPooledRunFunc())
	if err != nil {
		t.Fatalf("stress campaign: %v", err)
	}
	if errs := res.Errs(); len(errs) > 0 {
		t.Fatalf("stress campaign had %d failed trials; first: %s", len(errs), errs[0].Err)
	}
	if want := 8 * 2; len(res.Trials) != want {
		t.Fatalf("stress campaign ran %d trials, want %d", len(res.Trials), want)
	}
}
