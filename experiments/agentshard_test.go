package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/campaign"
	"repro/internal/trace"
)

// TestAgentShardEquivalence is the gate for sharded agent dispatch: with
// agent crons quantized onto a slot grid (AgentSlots — the batching the
// shard pool parallelises), the campaign JSON *and* the recorded trace
// file must be byte-identical at every supported shard count to the
// single-goroutine slotted run. The reference here is Shards=0 of the same
// slotted matrix, not ReferenceRunTrial: slotting legitimately moves agent
// wake-up instants, so slotted and unslotted runs are different
// trajectories — but at a fixed slot count the shard count must never leak
// into a single byte. If one moves, the observe/apply split has let a
// shard reorder RNG draws or same-tick effects; fix the engine, do not
// regenerate expectations.
func TestAgentShardEquivalence(t *testing.T) {
	cells := []struct {
		site string
		mode string
	}{
		{"paper", "manual"},
		{"paper", "agents"},
		{"small", "manual"},
		{"small", "agents"},
		{"megasite-150", "manual"},
		{"megasite-150", "agents"},
	}
	for _, cell := range cells {
		t.Run(fmt.Sprintf("%s-%s", cell.site, cell.mode), func(t *testing.T) {
			t.Parallel()
			if testing.Short() && cell.site == "megasite-150" {
				t.Skip("megasite cells are the long ones; run without -short for the full gate")
			}
			m := campaign.Matrix{
				Seeds:      campaign.Seeds(7, 2),
				Scenarios:  []string{"year"},
				Sites:      []string{cell.site},
				Modes:      []string{cell.mode},
				Days:       1,
				AgentSlots: 8,
				TraceLevel: trace.LevelDecisions,
			}
			ref, wantTrace, err := RunTracedCampaign("agent-shard-equivalence", m, 1)
			if err != nil {
				t.Fatalf("serial slotted campaign: %v", err)
			}
			wantJSON, err := ref.JSON()
			if err != nil {
				t.Fatalf("serial slotted JSON: %v", err)
			}
			for _, shards := range []int{1, 2, 8} {
				sm := m
				sm.Shards = shards
				res, gotTrace, err := RunTracedCampaign("agent-shard-equivalence", sm, 2)
				if err != nil {
					t.Fatalf("sharded campaign (%d shards): %v", shards, err)
				}
				gotJSON, err := res.JSON()
				if err != nil {
					t.Fatalf("sharded JSON (%d shards): %v", shards, err)
				}
				if !bytes.Equal(wantJSON, gotJSON) {
					t.Errorf("campaign JSON diverged (site %s, mode %s, %d shards):\n%s",
						cell.site, cell.mode, shards, firstDiff(wantJSON, gotJSON))
				}
				if !bytes.Equal(wantTrace, gotTrace) {
					t.Errorf("trace file diverged (site %s, mode %s, %d shards):\n%s",
						cell.site, cell.mode, shards, firstDiff(wantTrace, gotTrace))
				}
			}
		})
	}
}

// TestAgentSlotsChangeTrajectory documents the model-knob contract: a
// slotted run is a different trajectory from an unslotted one (wake-up
// instants move onto the grid), and the slot count is recorded in the
// campaign JSON so the two can never be mistaken for one another.
func TestAgentSlotsChangeTrajectory(t *testing.T) {
	t.Parallel()
	m := campaign.Matrix{
		Seeds:     campaign.Seeds(7, 1),
		Scenarios: []string{"year"},
		Sites:     []string{"paper"},
		Modes:     []string{"agents"},
		Days:      1,
	}
	plain, err := campaign.Run("agent-slots-off", m, 1, NewPooledRunFunc())
	if err != nil {
		t.Fatalf("unslotted campaign: %v", err)
	}
	sm := m
	sm.AgentSlots = 8
	slotted, err := campaign.Run("agent-slots-off", sm, 1, NewPooledRunFunc())
	if err != nil {
		t.Fatalf("slotted campaign: %v", err)
	}
	for _, res := range []*campaign.Result{plain, slotted} {
		if errs := res.Errs(); len(errs) > 0 {
			t.Fatalf("campaign had %d failed trials; first: %s", len(errs), errs[0].Err)
		}
	}
	a, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := slotted.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(a, []byte(`"agent_slots"`)) {
		t.Error("unslotted campaign JSON should omit agent_slots")
	}
	if !bytes.Contains(b, []byte(`"agent_slots": 8`)) {
		t.Error("slotted campaign JSON should record agent_slots: 8")
	}
}

// TestAgentShardReuseRaceStress drives the slotted agent dispatcher at 8
// shards on 8 campaign workers over sync.Pool-recycled sites: 64
// goroutines of concurrent agent observes (plus probe walks) while other
// trials reset and reuse neighbouring sites. The numeric output is pinned
// by TestAgentShardEquivalence; here the race detector's clean bill is the
// point.
func TestAgentShardReuseRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed megasite stress; run without -short")
	}
	t.Parallel()
	m := campaign.Matrix{
		Seeds:      campaign.Seeds(11, 8),
		Scenarios:  []string{"year"},
		Sites:      []string{"megasite-150"},
		Modes:      []string{"manual", "agents"},
		Days:       1,
		AgentSlots: 8,
		Shards:     8,
	}
	res, err := campaign.Run("agent-shard-stress", m, 8, NewPooledRunFunc())
	if err != nil {
		t.Fatalf("stress campaign: %v", err)
	}
	if errs := res.Errs(); len(errs) > 0 {
		t.Fatalf("stress campaign had %d failed trials; first: %s", len(errs), errs[0].Err)
	}
	if want := 8 * 2; len(res.Trials) != want {
		t.Fatalf("stress campaign ran %d trials, want %d", len(res.Trials), want)
	}
}
