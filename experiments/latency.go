package experiments

import (
	qoscluster "repro"
	"repro/internal/metrics"
)

// The latency and mttr scenarios reproduce the §4 observations as
// multi-seed campaign cells: under manual operations faults went
// unnoticed for about 1 hour during the day, about 10 hours when they
// hit overnight jobs and about 25 hours at weekends, while
// intelliagents detect within the 5-minute cron period; a diagnosed
// manual restart could take up to 2 hours and the full troubleshooting
// procedure averaged about 4 hours. Both run through RunTrial — there
// is no single-seed path.

// detectionWindows are the fault windows §4 quotes, keyed the way the
// latency metrics are named; the predicates live in internal/metrics so
// the fig2 report classifies incidents identically.
var detectionWindows = []struct {
	name   string
	filter func(*metrics.Incident) bool
}{
	{"all", nil},
	{"day", metrics.WindowDay},
	{"overnight", metrics.WindowOvernight},
	{"weekend", metrics.WindowWeekend},
}

// latencyMetrics flattens one site's detection latencies into campaign
// metrics: sample count, mean and p95 seconds per fault window. A window
// no incident hit contributes only its zero count — recording 0 seconds
// would drag the group's conditional latency toward zero; Aggregate's
// per-key N handles trials that miss a metric.
func latencyMetrics(site *qoscluster.Site) map[string]float64 {
	vals := map[string]float64{}
	for _, w := range detectionWindows {
		lats := site.Ledger.DetectionLatencies(w.filter)
		vals["detect_n/"+w.name] = float64(len(lats))
		if len(lats) == 0 {
			continue
		}
		vals["detect_mean_s/"+w.name] = metrics.Mean(lats).Duration().Seconds()
		vals["detect_p95_s/"+w.name] = metrics.Percentile(lats, 0.95).Duration().Seconds()
	}
	return vals
}

// mttrMetrics flattens one site's repair-time distribution into campaign
// metrics: the headline quantiles plus per-category means, so the
// escalation mix stays visible in the aggregates.
func mttrMetrics(site *qoscluster.Site) map[string]float64 {
	mttrs := site.Ledger.MTTRs(nil)
	vals := map[string]float64{"incidents_resolved": float64(len(mttrs))}
	// As with latencyMetrics: a trial that resolved nothing reports only
	// its zero count, not a fake 0-hour repair time.
	if len(mttrs) > 0 {
		vals["mttr_mean_h"] = metrics.Mean(mttrs).Hours()
		vals["mttr_median_h"] = metrics.Percentile(mttrs, 0.5).Hours()
		vals["mttr_p95_h"] = metrics.Percentile(mttrs, 0.95).Hours()
		vals["mttr_max_h"] = metrics.Percentile(mttrs, 1).Hours()
	}
	for _, cat := range metrics.Categories {
		cat := cat
		xs := site.Ledger.MTTRs(func(i *metrics.Incident) bool { return i.Category == cat })
		if len(xs) == 0 {
			continue
		}
		vals["mttr_mean_h/"+string(cat)] = metrics.Mean(xs).Hours()
		vals["incidents/"+string(cat)] = float64(len(xs))
	}
	return vals
}

// paperNote returns the paper's reference quote for a scenario, appended
// under the campaign tables so the reproduced aggregates stay anchored
// to the numbers §4 reports.
func paperNote(name string) string {
	switch name {
	case "latency":
		return "paper: manual detection ~1h (weekday daytime) / ~10h (overnight) / ~25h (weekend);\n" +
			"intelliagents detect within the 5-minute cron period\n"
	case "mttr":
		return "paper: a diagnosed service or server restart took up to 2h;\n" +
			"the full troubleshooting procedure averaged ~4h when experts came in\n"
	case "ablate-cron":
		return "paper: X = 5 minutes; detection latency and residual downtime scale with X\n"
	case "ablate-rescue":
		return "paper: without DGSPL-driven resubmission, failed overnight jobs stay dead\n"
	case "ablate-net":
		return "paper: the private network keeps agent traffic off the public LAN\n"
	case "ablate-resident":
		return "paper: cron-awakened agents cost ~0.045% CPU / 1.6 MB; a resident suite would\n" +
			"hold its run-time demand continuously, like the commercial monitor\n"
	}
	return ""
}
