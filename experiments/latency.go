package experiments

import (
	"fmt"
	"strings"

	qoscluster "repro"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Latency reproduces the detection-latency observations of §4: under
// manual operations faults went unnoticed for about 1 hour during the day,
// about 10 hours when they hit overnight jobs and about 25 hours at
// weekends; intelliagents detect within the 5-minute cron period.
func Latency(cfg Config) string {
	span := cfg.span()
	manual := qoscluster.BuildSite(cfg.site(), qoscluster.Options{Mode: qoscluster.ModeManual})
	manual.Run(span)
	rm := manual.Report()

	agents := qoscluster.BuildSite(cfg.site(), qoscluster.Options{Mode: qoscluster.ModeAgents})
	agents.Run(span)
	ra := agents.Report()

	var b strings.Builder
	fmt.Fprintf(&b, "Detection latency (%.0f days, seed %d)\n", span.Hours()/24, cfg.Seed)
	fmt.Fprintf(&b, "%-22s %14s %14s %14s\n", "fault window", "manual", "paper-manual", "intelliagent")
	row := func(label string, m simclock.Time, paper string, a simclock.Time) {
		fmt.Fprintf(&b, "%-22s %14s %14s %14s\n", label, short(m), paper, short(a))
	}
	row("weekday daytime", rm.DetectDay, "~1h", ra.DetectDay)
	row("overnight", rm.DetectNight, "~10h", ra.DetectNight)
	row("weekend", rm.DetectWkend, "~25h", ra.DetectWkend)
	fmt.Fprintf(&b, "%-22s %14s %14s %14s\n", "overall mean / p95",
		short(rm.MeanDetect), "-", short(ra.MeanDetect))
	fmt.Fprintf(&b, "intelliagent p95 = %s (paper: within the 5-minute run frequency; whole-host\n", short(ra.P95Detect))
	b.WriteString("faults surface at the admin servers' X+5-minute flag sweep instead)\n")
	return b.String()
}

// MTTR reproduces §4's manual repair-time quotes: a diagnosed service or
// server restart could take up to 2 hours, and the full troubleshooting
// procedure averaged about 4 hours when experts had to come in.
func MTTR(cfg Config) string {
	span := cfg.span()
	site := qoscluster.BuildSite(cfg.site(), qoscluster.Options{Mode: qoscluster.ModeManual})
	site.Run(span)
	mttrs := site.Ledger.MTTRs(nil)

	var b strings.Builder
	fmt.Fprintf(&b, "Manual repair times over %.0f days (%d resolved incidents)\n", span.Hours()/24, len(mttrs))
	fmt.Fprintf(&b, "mean   = %s (paper: restarts up to 2h, escalated path ~4h)\n", short(metrics.Mean(mttrs)))
	fmt.Fprintf(&b, "median = %s\n", short(metrics.Percentile(mttrs, 0.5)))
	fmt.Fprintf(&b, "p95    = %s\n", short(metrics.Percentile(mttrs, 0.95)))
	fmt.Fprintf(&b, "max    = %s\n", short(metrics.Percentile(mttrs, 1)))

	// Per-category means, the escalation mix made visible.
	fmt.Fprintf(&b, "%-16s %10s %10s\n", "category", "incidents", "mean MTTR")
	for _, cat := range metrics.Categories {
		cat := cat
		xs := site.Ledger.MTTRs(func(i *metrics.Incident) bool { return i.Category == cat })
		if len(xs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-16s %10d %10s\n", cat, len(xs), short(metrics.Mean(xs)))
	}
	return b.String()
}

func short(t simclock.Time) string {
	if t == 0 {
		return "-"
	}
	return (t - t%simclock.Time(1e9)).String()
}
