package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/campaign"
)

// TestMegaSiteEquivalence is the optimisation gate for the batched probe
// dispatcher, the probe analogue of TestWheelResetEquivalence: on
// mid-size megasite family members — big enough that every tier spreads
// across multiple batch slots, small enough to run as a test — the
// campaign JSON from the optimised path (coalesced batch walks, pooled
// Reset reuse) must be byte-identical to the reference path (one
// independent scheduler event per service probe, fresh site per trial).
// megasite-600 covers the family's manual-operations shape at a scale
// with hundreds of probed services; megasite-150 additionally runs
// ModeAgents, so probe detection racing agent detection is pinned too.
//
// If this test fails, the batched dispatcher has drifted a reproduced
// number; fix the engine, do not regenerate expectations.
func TestMegaSiteEquivalence(t *testing.T) {
	cells := []struct {
		site string
		mode string
	}{
		{"megasite-600", "manual"},
		{"megasite-150", "manual"},
		{"megasite-150", "agents"},
	}
	for _, cell := range cells {
		t.Run(fmt.Sprintf("%s-%s", cell.site, cell.mode), func(t *testing.T) {
			t.Parallel()
			if testing.Short() && cell.site == "megasite-600" {
				t.Skip("600-host reference path is the long cell; run without -short for the full gate")
			}
			m := campaign.Matrix{
				Seeds:     campaign.Seeds(7, 2),
				Scenarios: []string{"year"},
				Sites:     []string{cell.site},
				Modes:     []string{cell.mode},
				Days:      1,
			}
			ref, err := campaign.Run("mega-equivalence", m, 1, ReferenceRunTrial)
			if err != nil {
				t.Fatalf("reference campaign: %v", err)
			}
			if errs := ref.Errs(); len(errs) > 0 {
				t.Fatalf("reference campaign had %d failed trials; first: %s", len(errs), errs[0].Err)
			}
			want, err := ref.JSON()
			if err != nil {
				t.Fatalf("reference JSON: %v", err)
			}
			for _, workers := range []int{1, 8} {
				res, err := campaign.Run("mega-equivalence", m, workers, NewPooledRunFunc())
				if err != nil {
					t.Fatalf("pooled campaign (%d workers): %v", workers, err)
				}
				got, err := res.JSON()
				if err != nil {
					t.Fatalf("pooled JSON (%d workers): %v", workers, err)
				}
				if !bytes.Equal(want, got) {
					t.Errorf("batched probe path diverged from reference (site %s, mode %s, %d workers):\n%s",
						cell.site, cell.mode, workers, firstDiff(want, got))
				}
			}
		})
	}
}
