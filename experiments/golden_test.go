package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	qoscluster "repro"
	"repro/internal/campaign"
	"repro/internal/simclock"
)

// TestCampaignGoldenNoTierSpecs is the refactor gate for the per-tier
// workload/fault-domain work: topologies that declare no per-tier specs
// (paper, small) must produce campaign JSON byte-identical to the
// pre-refactor engine, pinned by the checked-in goldens
// (testdata/campaign-golden-<site>-<mode>.json, recorded at the commit
// before domains landed). Both the fresh-build and the pooled Reset
// paths are held to the goldens.
//
// If this test fails, the domain machinery has leaked into the
// unspecified path — extra random draws, changed arithmetic, new metric
// keys. Fix the engine; regenerate the goldens
// (go run ./scripts/campaigngolden) only for a change that is *supposed*
// to move the default numbers, and say so in the commit message.
func TestCampaignGoldenNoTierSpecs(t *testing.T) {
	for _, site := range []string{"paper", "small"} {
		for _, mode := range []string{"manual", "agents"} {
			t.Run(fmt.Sprintf("%s-%s", site, mode), func(t *testing.T) {
				t.Parallel()
				if testing.Short() && site == "paper" {
					t.Skip("paper site × 2 seeds × 3 runs is the long cell; run without -short for the full gate")
				}
				want, err := os.ReadFile(filepath.Join("..", "testdata",
					fmt.Sprintf("campaign-golden-%s-%s.json", site, mode)))
				if err != nil {
					t.Fatalf("golden: %v", err)
				}
				m := campaign.Matrix{
					Seeds:     campaign.Seeds(7, 2),
					Scenarios: []string{"year"},
					Sites:     []string{site},
					Modes:     []string{mode},
					Days:      1,
				}
				runs := []struct {
					name string
					fn   campaign.RunFunc
				}{
					{"fresh", RunTrial},
					{"pooled", NewPooledRunFunc()},
				}
				for _, run := range runs {
					res, err := campaign.Run("golden", m, 1, run.fn)
					if err != nil {
						t.Fatalf("%s campaign: %v", run.name, err)
					}
					got, err := res.JSON()
					if err != nil {
						t.Fatalf("%s JSON: %v", run.name, err)
					}
					got = append(got, '\n')
					if !bytes.Equal(want, got) {
						t.Errorf("%s path diverged from the pre-refactor golden (site %s, mode %s):\n%s",
							run.name, site, mode, firstDiff(want, got))
					}
				}
			})
		}
	}
}

// TestCampaignGoldenFlashcrowd pins the statistical arrival engine: the
// checked-in flash-crowd workload spec (testdata/workload-flashcrowd.json)
// driving the small site must produce campaign JSON byte-identical to the
// checked-in golden, on both the fresh-build and pooled Reset paths. If
// this fails the spec engine's draws or arithmetic moved; fix the engine,
// or regenerate (go run ./scripts/campaigngolden) only for a change that
// is *supposed* to move the spec-driven numbers, and say so in the commit
// message.
func TestCampaignGoldenFlashcrowd(t *testing.T) {
	t.Parallel()
	want, err := os.ReadFile(filepath.Join("..", "testdata", "campaign-golden-small-flashcrowd.json"))
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	wls, err := ResolveWorkloads([]string{filepath.Join("..", "testdata", "workload-flashcrowd.json")})
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	m := campaign.Matrix{
		Seeds:     campaign.Seeds(7, 2),
		Scenarios: []string{"year"},
		Sites:     []string{"small"},
		Modes:     []string{"manual"},
		Days:      1,
		Workloads: wls,
	}
	runs := []struct {
		name string
		fn   campaign.RunFunc
	}{
		{"fresh", RunTrial},
		{"pooled", NewPooledRunFunc()},
	}
	for _, run := range runs {
		res, err := campaign.Run("golden", m, 1, run.fn)
		if err != nil {
			t.Fatalf("%s campaign: %v", run.name, err)
		}
		got, err := res.JSON()
		if err != nil {
			t.Fatalf("%s JSON: %v", run.name, err)
		}
		got = append(got, '\n')
		if !bytes.Equal(want, got) {
			t.Errorf("%s path diverged from the flash-crowd golden:\n%s", run.name, firstDiff(want, got))
		}
	}
}

// TestWebfarmTierSpecDivergence proves the canned webfarm per-tier specs
// change where faults land and what the workload offers — the tiers
// genuinely diverge rather than relabelling the same site. It runs the
// shipped webfarm against a stripped copy (identical tiers, specs
// removed) on the same seed and asserts the per-tier incident
// distribution differs, the tiered report carries per-tier rows, and the
// campaign metrics expose them.
func TestWebfarmTierSpecDivergence(t *testing.T) {
	t.Parallel()
	const span = 60 * simclock.Day
	const seed = 11

	specced := qoscluster.WebFarmTopology()
	stripped := qoscluster.WebFarmTopology()
	stripped.Name = "webfarm-stripped"
	for i := range stripped.Tiers {
		stripped.Tiers[i].Workload = nil
		stripped.Tiers[i].Faults = nil
	}

	// tierIncidents maps the run's ledger onto topology tiers by host so
	// the stripped site (whose report has no Tiers rows) is measured with
	// the same ruler as the specced one.
	tierIncidents := func(site *qoscluster.Site) map[string]int {
		out := map[string]int{}
		for _, inc := range site.Ledger.Incidents() {
			out[site.TierOf(inc.Host)]++
		}
		return out
	}

	run := func(topo qoscluster.Topology) *qoscluster.Site {
		t.Helper()
		site, err := qoscluster.NewSite(topo, qoscluster.WithSeed(seed), qoscluster.WithMode(qoscluster.ModeAgents))
		if err != nil {
			t.Fatal(err)
		}
		if err := site.Run(span); err != nil {
			t.Fatal(err)
		}
		return site
	}
	withSpecs := run(specced)
	without := run(stripped)

	if !withSpecs.Tiered() {
		t.Fatal("shipped webfarm is not tiered; its per-tier specs are gone")
	}
	if without.Tiered() {
		t.Fatal("stripped webfarm still reports tiered")
	}
	r := withSpecs.Report()
	if len(r.Tiers) != 3 {
		t.Fatalf("tiered report has %d tier rows, want 3", len(r.Tiers))
	}
	if got := without.Report().Tiers; len(got) != 0 {
		t.Fatalf("untiered report has %d tier rows, want none", len(got))
	}

	a, b := tierIncidents(withSpecs), tierIncidents(without)
	if fmt.Sprint(a) == fmt.Sprint(b) {
		t.Errorf("per-tier incident distribution identical with and without specs: %v", a)
	}
	var total int
	for _, n := range a {
		total += n
	}
	if total == 0 {
		t.Fatal("specced webfarm saw no incidents over 60 days; the divergence check is vacuous")
	}

	// The campaign metric surface exposes the breakdown for tiered sites.
	vals := yearMetrics(r, span)
	for _, tier := range []string{"db", "web", "fe"} {
		if _, ok := vals["incidents_tier/"+tier]; !ok {
			t.Errorf("yearMetrics missing incidents_tier/%s for the tiered site", tier)
		}
		if _, ok := vals["downtime_h_tier/"+tier]; !ok {
			t.Errorf("yearMetrics missing downtime_h_tier/%s for the tiered site", tier)
		}
	}
	if _, ok := yearMetrics(without.Report(), span)["incidents_tier/db"]; ok {
		t.Error("yearMetrics emitted tier rows for an untiered site; the golden gate would break")
	}
}
