package experiments

import (
	"fmt"
	"strings"

	"repro/internal/agent"
	"repro/internal/agents"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/notify"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// Paper reference series for Figures 3 and 4 (eight half-hourly samples on
// one production server at peak times).
var (
	PaperFig3BMC   = []float64{0.33, 0.30, 0.50, 0.58, 0.47, 1.10, 0.20, 0.17}
	PaperFig3Agent = []float64{0.045, 0.047, 0.043, 0.045, 0.045, 0.046, 0.046, 0.042}
	PaperFig4BMC   = []float64{32, 46, 45, 37, 50, 58, 38, 51}
	PaperFig4Agent = []float64{1.6, 1.6, 1.6, 1.6, 1.6, 1.6, 1.6, 1.6}
)

// overheadRig is one busy database server carrying both monitoring
// regimes: the resident BMC-style daemon and the full local intelliagent
// complement, so the two footprints are sampled under identical load.
type overheadRig struct {
	sim    *simclock.Sim
	host   *cluster.Host
	bmc    *baseline.Monitor
	agents []*agent.Agent
}

func newOverheadRig(seed uint64) *overheadRig {
	sim := simclock.New(seed)
	r := &overheadRig{sim: sim}
	r.host = cluster.NewHost(sim, "db042", "10.2.0.42", cluster.ModelE4500, cluster.RoleDatabase, "london-dc1", "UK")
	dir := svc.NewDirectory()
	ora, err := svc.New(sim, svc.OracleSpec("ORA-042", 1521), r.host)
	if err != nil {
		panic(err)
	}
	dir.Add(ora)
	lsfd, err := svc.New(sim, svc.LSFSpec("LSF-db042"), r.host)
	if err != nil {
		panic(err)
	}
	dir.Add(lsfd)
	_ = ora.Start(nil)
	_ = lsfd.Start(nil)
	sim.RunUntil(10 * simclock.Minute)

	// Peak-time load: analyst/batch pressure swinging across the trading
	// day the way the paper's Figure 3 samples swing (idle lulls to near
	// saturation).
	rng := sim.Rand().Fork(0x0f17)
	sim.Every(sim.Now(), 10*simclock.Minute, "peak-load", func(simclock.Time) {
		r.host.SetAmbientLoad((0.05 + 0.85*rng.Float64()) * float64(r.host.Model.CPUs))
	})

	bus := notify.NewBus(sim)
	r.bmc = baseline.Install(sim, r.host, baseline.DefaultFootprint(), bus, "noc", 5*simclock.Minute, dir)

	cfg := func() agent.Config {
		return agent.Config{Host: r.host, Services: dir, Notify: bus}
	}
	add := func(a *agent.Agent, err error) {
		if err != nil {
			panic(err)
		}
		r.agents = append(r.agents, a)
		a.Schedule(sim, rng.UniformDuration(0, 5*simclock.Minute), 5*simclock.Minute)
	}
	add(agents.NewServiceAgent(cfg(), ora))
	add(agents.NewServiceAgent(cfg(), lsfd))
	add(agents.NewStatusAgent(cfg()))
	add(agents.NewPerformanceAgent(cfg(), agents.PerfConfig{}))
	add(agents.NewNetworkAgent(cfg(), nil))
	return r
}

// agentCPUSeconds sums the suite's consumed CPU seconds.
func (r *overheadRig) agentCPUSeconds() float64 {
	var total float64
	for _, a := range r.agents {
		total += a.Counters().CPUSeconds
	}
	return total
}

// agentResidentMB is the intelliagent process footprint while awake — the
// quantity the paper plots as a flat 1.6 MB.
func (r *overheadRig) agentResidentMB() float64 {
	var max float64
	for _, a := range r.agents {
		if m := a.Overhead().MemMB; m > max {
			max = m
		}
	}
	return max
}

// sampleOverhead runs the rig for 4 hours, sampling every 30 minutes the
// way the paper's figures do, and returns the four series.
func sampleOverhead(seed uint64) (bmcCPU, agCPU, bmcMem, agMem *metrics.Series) {
	r := newOverheadRig(seed)
	bmcCPU = &metrics.Series{Name: "bmc-cpu%"}
	agCPU = &metrics.Series{Name: "agent-cpu%"}
	bmcMem = &metrics.Series{Name: "bmc-MB"}
	agMem = &metrics.Series{Name: "agent-MB"}
	window := 30 * simclock.Minute
	// Warm up one window so the first sample has a full delta.
	r.sim.RunUntil(r.sim.Now() + window)
	last := r.agentCPUSeconds()
	for i := 0; i < 8; i++ {
		r.sim.RunUntil(r.sim.Now() + window)
		now := r.sim.Now()
		cur := r.agentCPUSeconds()
		pct := (cur - last) / (float64(window) / float64(simclock.Second)) / float64(r.host.Model.CPUs) * 100
		last = cur
		bmcCPU.Add(now, r.bmc.CPUPercent())
		agCPU.Add(now, pct)
		bmcMem.Add(now, r.bmc.MemMB())
		agMem.Add(now, r.agentResidentMB())
	}
	return
}

func paperSeries(name string, vals []float64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, v := range vals {
		s.Add(simclock.Time(i)*30*simclock.Minute, v)
	}
	return s
}

// Fig3 reproduces the CPU overhead comparison. The rig is one fixed
// host, so cfg.Sites must not name more than one site (and a single
// explicit site must resolve).
func Fig3(cfg Config) (string, error) {
	if err := validateRigSites("fig3", cfg.Sites); err != nil {
		return "", err
	}
	bmcCPU, agCPU, _, _ := sampleOverhead(cfg.Seed)
	var b strings.Builder
	b.WriteString("Figure 3 — monitor CPU utilisation % of system, half-hourly at peak\n")
	b.WriteString(metrics.FormatTable("measured", "%", bmcCPU, agCPU))
	b.WriteString(metrics.FormatTable("paper", "%", paperSeries("bmc-cpu%", PaperFig3BMC), paperSeries("agent-cpu%", PaperFig3Agent)))
	fmt.Fprintf(&b, "overhead ratio bmc/agent: measured %.0fx, paper %.0fx\n",
		bmcCPU.Mean()/agCPU.Mean(), mean(PaperFig3BMC)/mean(PaperFig3Agent))
	return b.String(), nil
}

// Fig4 reproduces the memory overhead comparison (same fixed rig and
// site rule as Fig3).
func Fig4(cfg Config) (string, error) {
	if err := validateRigSites("fig4", cfg.Sites); err != nil {
		return "", err
	}
	_, _, bmcMem, agMem := sampleOverhead(cfg.Seed)
	var b strings.Builder
	b.WriteString("Figure 4 — monitor resident memory (MB), half-hourly at peak\n")
	b.WriteString(metrics.FormatTable("measured", "MB", bmcMem, agMem))
	b.WriteString(metrics.FormatTable("paper", "MB", paperSeries("bmc-MB", PaperFig4BMC), paperSeries("agent-MB", PaperFig4Agent)))
	fmt.Fprintf(&b, "overhead ratio bmc/agent: measured %.0fx, paper %.0fx\n",
		bmcMem.Mean()/agMem.Mean(), mean(PaperFig4BMC)/mean(PaperFig4Agent))
	return b.String(), nil
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
