package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"

	qoscluster "repro"
	"repro/internal/campaign"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// TraceTrial is one recorded trial: its matrix coordinate, the metrics
// the recorded run produced, and the decision events in emission order.
type TraceTrial struct {
	Trial   campaign.Trial
	Metrics map[string]float64
	Events  []trace.Event
}

// TraceFile is a parsed campaign trace: the header identity plus every
// trial block in matrix order.
type TraceFile struct {
	Name       string
	Level      int
	Matrix     campaign.Matrix
	Topologies map[string]string
	Trials     []TraceTrial
}

// ReadTraceFile loads and parses a trace file written by a traced
// campaign run.
func ReadTraceFile(path string) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", path, err)
	}
	defer f.Close()
	tf, err := readTrace(f)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", path, err)
	}
	return tf, nil
}

// readTrace parses the JSONL stream: header, then trial lines each
// followed by that trial's event lines. Dispatch is by key presence — a
// line with "trial" opens a block, a line with "id" is an event.
func readTrace(r io.Reader) (*TraceFile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("line 1: not a qossim trace: empty file")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Version == 0 {
		return nil, fmt.Errorf("line 1: not a qossim trace (want a {\"qossim_trace\":%d,...} header)", traceVersion)
	}
	if hdr.Version != traceVersion {
		return nil, fmt.Errorf("line 1: trace format version %d; this build reads version %d", hdr.Version, traceVersion)
	}
	tf := &TraceFile{Name: hdr.Name, Level: hdr.Level, Topologies: hdr.Topologies}
	if err := json.Unmarshal(hdr.Matrix, &tf.Matrix); err != nil {
		return nil, fmt.Errorf("line 1: malformed matrix: %w", err)
	}
	// Shards and TraceLevel are execution knobs excluded from the JSON;
	// re-arm the level from the header so replays can re-record.
	tf.Matrix.TraceLevel = hdr.Level

	for line := 2; sc.Scan(); line++ {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var probe struct {
			Trial   *campaign.Trial    `json:"trial"`
			Metrics map[string]float64 `json:"metrics"`
			ID      int                `json:"id"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("line %d: malformed trace line: %w", line, err)
		}
		switch {
		case probe.Trial != nil:
			tf.Trials = append(tf.Trials, TraceTrial{Trial: *probe.Trial, Metrics: probe.Metrics})
		case probe.ID > 0:
			if len(tf.Trials) == 0 {
				return nil, fmt.Errorf("line %d: event before any trial record", line)
			}
			var e trace.Event
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, fmt.Errorf("line %d: malformed trace line: %w", line, err)
			}
			last := &tf.Trials[len(tf.Trials)-1]
			last.Events = append(last.Events, e)
		default:
			return nil, fmt.Errorf("line %d: malformed trace line: neither a trial record nor an event", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tf.Trials) == 0 {
		return nil, fmt.Errorf("trace holds no trials")
	}
	return tf, nil
}

// verifyTopologies refuses to replay against topologies that no longer
// match the recorded fingerprints: arrival schedules are only meaningful
// on the site they were recorded on.
func verifyTopologies(tf *TraceFile) error {
	names := make([]string, 0, len(tf.Topologies))
	for name := range tf.Topologies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		current, err := topologyFingerprint(name)
		if err != nil {
			return err
		}
		if recorded := tf.Topologies[name]; recorded != current {
			return fmt.Errorf("site %q: trace was recorded on a different topology (fingerprint %s, current %s)", name, recorded, current)
		}
	}
	return nil
}

// ReplayTrace re-runs every recorded trial with the fault campaign driven
// by the recorded arrival schedule instead of its Poisson processes, and
// verifies each trial reproduces its recorded metrics exactly. The
// returned result aggregates the replayed trials the same way the
// original campaign did, so its JSON is byte-identical to the original
// campaign output.
func ReplayTrace(tf *TraceFile, workers int) (*campaign.Result, error) {
	if err := verifyTopologies(tf); err != nil {
		return nil, err
	}
	m := tf.Matrix
	m.TraceLevel = 0 // replay verifies metrics; it does not re-record
	enumerated := m.Trials()
	if len(enumerated) != len(tf.Trials) {
		return nil, fmt.Errorf("trace holds %d trials but its matrix enumerates %d", len(tf.Trials), len(enumerated))
	}
	for i, rec := range tf.Trials {
		if rec.Trial != enumerated[i] {
			return nil, fmt.Errorf("trial %d: recorded coordinate %+v does not match the matrix enumeration %+v", i, rec.Trial, enumerated[i])
		}
	}
	res, err := campaign.Run(tf.Name, m, workers, func(t campaign.Trial) (map[string]float64, error) {
		return runReplayTrial(t, arrivalsOf(tf.Trials[t.Index].Events), 0, nil, false)
	})
	if err != nil {
		return nil, err
	}
	if errs := res.Errs(); len(errs) > 0 {
		first := errs[0]
		return res, fmt.Errorf("replay: trial %d (seed %d) failed: %s", first.Trial.Index, first.Trial.Seed, first.Err)
	}
	for i, tr := range res.Trials {
		if !reflect.DeepEqual(tr.Metrics, tf.Trials[i].Metrics) {
			return res, fmt.Errorf("replay diverged: trial %d (seed %d) metrics differ from the recorded run: %s",
				i, tr.Trial.Seed, firstMetricDiff(tf.Trials[i].Metrics, tr.Metrics))
		}
	}
	return res, nil
}

// firstMetricDiff names one differing key for the divergence error —
// enough to start debugging without dumping both maps.
func firstMetricDiff(want, got map[string]float64) string {
	keys := make([]string, 0, len(want)+len(got))
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		w, wok := want[k]
		g, gok := got[k]
		if !wok {
			return fmt.Sprintf("unexpected metric %q = %g", k, g)
		}
		if !gok {
			return fmt.Sprintf("missing metric %q (recorded %g)", k, w)
		}
		if w != g {
			return fmt.Sprintf("%q: recorded %g, replayed %g", k, w, g)
		}
	}
	return "maps differ" // unreachable when called after DeepEqual failed on real data
}

// arrivalsOf projects a trial's recorded events down to the fault-arrival
// schedule that drives its replay.
func arrivalsOf(events []trace.Event) []faultinject.Arrival {
	out := []faultinject.Arrival{} // non-nil: an event-free trial replays quiet
	for _, e := range events {
		if e.Kind == trace.KindArrival {
			out = append(out, faultinject.Arrival{At: e.At, Category: metrics.Category(e.Category), Tier: e.Tier})
		}
	}
	return out
}

// runReplayTrial builds the trial's site with the recorded arrival
// schedule (and optionally tracing plus a counterfactual override) and
// runs it through the normal scenario metrics path.
func runReplayTrial(t campaign.Trial, arrivals []faultinject.Arrival, level int, cf *trace.Counterfactual, noRescue bool) (map[string]float64, error) {
	opts, err := trialSiteOptions(t)
	if err != nil {
		return nil, err
	}
	if arrivals == nil {
		arrivals = []faultinject.Arrival{}
	}
	opts.Replay = arrivals
	opts.TraceLevel = level
	opts.Counterfactual = cf
	if noRescue {
		opts.NoBatchRescue = true
	}
	site, err := buildNamedSite(t.Site, t.Seed, qoscluster.WithOptions(opts))
	if err != nil {
		return nil, err
	}
	return runSiteTrial(site, t)
}

// counterfactualPool is the default set of alternative repair actions a
// counterfactual explores when the caller names none: the heavy-handed
// host bounce, the human fallback, and the lightest service-level repair.
var counterfactualPool = []string{"reboot-host", "manual-repair", "restart-service"}

// defaultAlternatives picks two alternatives distinct from the recorded
// action.
func defaultAlternatives(recorded string) []string {
	out := make([]string, 0, 2)
	for _, a := range counterfactualPool {
		if a != recorded && len(out) < 2 {
			out = append(out, a)
		}
	}
	return out
}

// parseTarget resolves a "[trial:]event-id" counterfactual target against
// the trace. The bare "event-id" form is only unambiguous when the trace
// holds a single trial.
func parseTarget(tf *TraceFile, target string) (trialIdx, eventID int, err error) {
	parts := strings.Split(target, ":")
	switch len(parts) {
	case 1:
		if len(tf.Trials) != 1 {
			return 0, 0, fmt.Errorf("counterfactual target %q: trace holds %d trials; use the trial:event form", target, len(tf.Trials))
		}
		trialIdx = 0
	case 2:
		trialIdx, err = strconv.Atoi(parts[0])
		if err != nil || trialIdx < 0 || trialIdx >= len(tf.Trials) {
			return 0, 0, fmt.Errorf("counterfactual target %q: trial index must be 0..%d", target, len(tf.Trials)-1)
		}
	default:
		return 0, 0, fmt.Errorf("counterfactual target %q: want \"event-id\" or \"trial:event-id\"", target)
	}
	eventID, err = strconv.Atoi(parts[len(parts)-1])
	if err != nil || eventID <= 0 {
		return 0, 0, fmt.Errorf("counterfactual target %q: event id must be a positive integer", target)
	}
	return trialIdx, eventID, nil
}

// counterfactualKeys are the outcome metrics the diff table reports.
var counterfactualKeys = []string{"downtime_h/total", "mttr_mean_s", "jobs_failed", "jobs_resubmitted"}

// CounterfactualTable replays one recorded trial several times, each time
// overriding the targeted diagnose decision with an alternative repair
// action ("no-batch-rescue" instead disables DGSPL rescue for the whole
// replay), and renders the outcome diff against the recorded run. Empty
// alts picks two defaults distinct from the recorded action.
func CounterfactualTable(tf *TraceFile, target string, alts []string, workers int) (string, error) {
	if err := verifyTopologies(tf); err != nil {
		return "", err
	}
	if tf.Level <= trace.LevelOff {
		return "", fmt.Errorf("trace was recorded with tracing off; no decision events to anchor a counterfactual")
	}
	trialIdx, eventID, err := parseTarget(tf, target)
	if err != nil {
		return "", err
	}
	rec := tf.Trials[trialIdx]
	var anchor *trace.Event
	for i := range rec.Events {
		if rec.Events[i].ID == eventID {
			anchor = &rec.Events[i]
			break
		}
	}
	if anchor == nil {
		return "", fmt.Errorf("counterfactual target %s: trial %d has no event with id %d", target, trialIdx, eventID)
	}
	if anchor.Kind != trace.KindDiagnose {
		return "", fmt.Errorf("counterfactual target %s: event %d is a %q event; only diagnose decisions can be overridden", target, eventID, anchor.Kind)
	}
	if len(alts) == 0 {
		alts = defaultAlternatives(anchor.Action)
	}
	// Report the outcome keys the recorded scenario actually produced;
	// the canonical four only exist for the year scenario.
	keys := make([]string, 0, len(counterfactualKeys))
	for _, k := range counterfactualKeys {
		if _, ok := rec.Metrics[k]; ok {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		for k := range rec.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(keys) > len(counterfactualKeys) {
			keys = keys[:len(counterfactualKeys)]
		}
	}

	// Replay each alternative at the recorded trace level: the recorder
	// reproduces the original event IDs, so the override anchors to the
	// same decision the trace recorded.
	arrivals := arrivalsOf(rec.Events)
	results := make([]map[string]float64, len(alts))
	errs := make([]error, len(alts))
	if workers <= 0 || workers > len(alts) {
		workers = len(alts)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, alt := range alts {
		wg.Add(1)
		go func(i int, alt string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cf := &trace.Counterfactual{EventID: eventID, Action: alt}
			noRescue := false
			if alt == "no-batch-rescue" {
				cf, noRescue = nil, true
			}
			level := tf.Level
			if cf == nil {
				level = 0 // nothing to anchor; skip re-recording
			}
			results[i], errs[i] = runReplayTrial(rec.Trial, arrivals, level, cf, noRescue)
		}(i, alt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return "", fmt.Errorf("counterfactual %q: %w", alts[i], err)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Counterfactual at event %d (trial %d, seed %d): t=%s %s %s/%s rule=%s action=%s\n",
		eventID, trialIdx, rec.Trial.Seed, anchor.At, anchor.Actor, anchor.Host, anchor.Aspect, anchor.Rule, anchor.Action)
	fmt.Fprintf(&b, "%-18s", "alternative")
	for _, k := range keys {
		fmt.Fprintf(&b, " %16s %10s", k, "delta")
	}
	b.WriteByte('\n')
	row := func(name string, vals map[string]float64, base map[string]float64) {
		fmt.Fprintf(&b, "%-18s", name)
		for _, k := range keys {
			if base == nil {
				fmt.Fprintf(&b, " %16.3f %10s", vals[k], "-")
			} else {
				fmt.Fprintf(&b, " %16.3f %+10.3f", vals[k], vals[k]-base[k])
			}
		}
		b.WriteByte('\n')
	}
	row("recorded", rec.Metrics, nil)
	for i, alt := range alts {
		row(alt, results[i], rec.Metrics)
	}
	return b.String(), nil
}
