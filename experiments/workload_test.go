package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	qoscluster "repro"
	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func TestParseTierLoadScale(t *testing.T) {
	good, err := ParseTierLoadScale(" db=2, fe=0.5 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(good) != 2 || good["db"] != 2 || good["fe"] != 0.5 {
		t.Errorf("parsed %v", good)
	}
	if m, err := ParseTierLoadScale(""); err != nil || m != nil {
		t.Errorf("empty spec: %v, %v", m, err)
	}
	for _, bad := range []string{"db", "=2", "db=", "db=x", "db=-1", "db=2,db=3", ","} {
		if _, err := ParseTierLoadScale(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
	// The two axes share a parser but must name themselves in errors.
	if _, err := ParseTierLoadScale("db="); err == nil || !strings.Contains(err.Error(), "tier-load") {
		t.Errorf("tier-load error not self-naming: %v", err)
	}
}

func TestResolveWorkloads(t *testing.T) {
	// Registered names and the blank cell pass through untouched.
	got, err := ResolveWorkloads([]string{"", "paper", "flashcrowd"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "" || got[1] != "paper" || got[2] != "flashcrowd" {
		t.Errorf("resolved %v", got)
	}

	// A spec file loads, registers, and resolves to its declared name.
	sp := workload.PaperSpec()
	sp.Name = "resolve-workloads-file"
	js, err := sp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wl.json")
	if err := os.WriteFile(path, js, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ResolveWorkloads([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "resolve-workloads-file" {
		t.Errorf("file resolved to %v", got)
	}
	if _, ok := workload.SpecByName("resolve-workloads-file"); !ok {
		t.Error("loaded spec not registered")
	}
	// Re-loading the identical file is fine; the same resolved name twice
	// in one axis is not (duplicate aggregation cells).
	if _, err := ResolveWorkloads([]string{path}); err != nil {
		t.Errorf("identical re-load rejected: %v", err)
	}
	if _, err := ResolveWorkloads([]string{path, "resolve-workloads-file"}); err == nil {
		t.Error("duplicate resolved name accepted")
	}

	// A file whose declared name collides with a different registered
	// spec must be rejected, not silently replace it.
	clash := workload.FailoverSpec()
	clash.Name = "resolve-workloads-file"
	js, err = clash.JSON()
	if err != nil {
		t.Fatal(err)
	}
	clashPath := filepath.Join(t.TempDir(), "clash.json")
	if err := os.WriteFile(clashPath, js, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveWorkloads([]string{clashPath}); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("name collision accepted: %v", err)
	}

	if _, err := ResolveWorkloads([]string{"no-such-spec-or-file"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestWorkloadCampaignAxis runs a real two-cell campaign on the small
// site — its own workload vs the flash-crowd spec — and checks the cells
// aggregate separately, render with the axis label, and stay
// byte-identical across worker counts.
func TestWorkloadCampaignAxis(t *testing.T) {
	t.Parallel()
	cfg := Config{Seed: 7, Days: 3, Sites: []string{"small"}, Workloads: []string{"", "flashcrowd"}}
	m, err := CampaignMatrix("before", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Workloads) != 2 || m.Workloads[1] != "flashcrowd" {
		t.Fatalf("matrix workload axis = %v", m.Workloads)
	}
	res1, err := Campaign("before", cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if errs := res1.Errs(); len(errs) > 0 {
		t.Fatalf("%d failed trials; first: %s", len(errs), errs[0].Err)
	}
	if len(res1.Groups) != 2 || res1.Groups[1].Workload != "flashcrowd" {
		t.Fatalf("groups wrong: %+v", res1.Groups)
	}
	out := qoscluster.FormatCampaign(res1)
	if !strings.Contains(out, "workload=flashcrowd") {
		t.Errorf("FormatCampaign missing workload label:\n%s", out)
	}

	res8, err := Campaign("before", cfg, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	js1, err1 := res1.JSON()
	js8, err8 := res8.JSON()
	if err1 != nil || err8 != nil {
		t.Fatal(err1, err8)
	}
	if !bytes.Equal(js1, js8) {
		t.Errorf("workload campaign JSON differs between 1 and 8 workers:\n%s", firstDiff(js1, js8))
	}
}

// TestTierLoadCampaignAxis: the -tierload twin of -tierfaults rides the
// same validation — unknown tiers and duplicate cells fail at
// matrix-build time, and a real sweep aggregates per cell.
func TestTierLoadCampaignAxis(t *testing.T) {
	t.Parallel()
	cfg := Config{Seed: 7, Days: 3, Sites: []string{"small"}, TierLoadScales: []string{"", "db=3"}}
	m, err := CampaignMatrix("before", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.TierLoads) != 2 {
		t.Fatalf("matrix tier-load axis = %v", m.TierLoads)
	}
	res, err := Campaign("before", cfg, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if errs := res.Errs(); len(errs) > 0 {
		t.Fatalf("%d failed trials; first: %s", len(errs), errs[0].Err)
	}
	if len(res.Groups) != 2 || res.Groups[1].TierLoad != "db=3" {
		t.Fatalf("groups wrong: %+v", res.Groups)
	}
	if out := qoscluster.FormatCampaign(res); !strings.Contains(out, "tierload=db=3") {
		t.Errorf("FormatCampaign missing tierload label:\n%s", out)
	}
}

func TestWorkloadAxesRejected(t *testing.T) {
	// Rig scenarios have no site workload generator and no tiers.
	cfg := Config{Seed: 7, Workloads: []string{"paper"}}
	if _, err := CampaignMatrix("overhead", cfg, 2); err == nil ||
		!strings.Contains(err.Error(), "workload") {
		t.Errorf("rig scenario accepted the workload axis: %v", err)
	}
	cfg = Config{Seed: 7, TierLoadScales: []string{"db=2"}}
	if _, err := CampaignMatrix("overhead", cfg, 2); err == nil ||
		!strings.Contains(err.Error(), "tierload") {
		t.Errorf("rig scenario accepted the tier-load axis: %v", err)
	}

	// Unknown workload names, unknown tiers, and duplicate cells fail at
	// matrix-build time for site scenarios.
	cfg = Config{Seed: 7, Sites: []string{"small"}, Workloads: []string{"no-such-spec"}}
	if _, err := CampaignMatrix("before", cfg, 2); err == nil {
		t.Error("unknown workload passed matrix validation")
	}
	cfg = Config{Seed: 7, Sites: []string{"small"}, Workloads: []string{"paper", "paper"}}
	if _, err := CampaignMatrix("before", cfg, 2); err == nil {
		t.Error("duplicate workload cells passed matrix validation")
	}
	cfg = Config{Seed: 7, Sites: []string{"small"}, TierLoadScales: []string{"bogus=2"}}
	if _, err := CampaignMatrix("before", cfg, 2); err == nil ||
		!strings.Contains(err.Error(), "-tierload") {
		t.Errorf("unknown tier-load tier accepted: %v", err)
	}
	cfg = Config{Seed: 7, Sites: []string{"small"}, TierLoadScales: []string{"db=2", "db=2"}}
	if _, err := CampaignMatrix("before", cfg, 2); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate tier-load cells accepted: %v", err)
	}
}

// TestWorkloadSpecEquivalence is the determinism gate for spec-driven
// workloads: a flash-crowd campaign on the small site must produce
// byte-identical campaign JSON at every worker count x shard count
// combination, and the sharded engine must match the single-goroutine
// reference path. If any byte moves, the statistical arrival engine has
// leaked scheduling or RNG order into a reproduced number; fix the
// engine, do not regenerate expectations.
func TestWorkloadSpecEquivalence(t *testing.T) {
	t.Parallel()
	m := campaign.Matrix{
		Seeds:     campaign.Seeds(7, 2),
		Scenarios: []string{"year"},
		Sites:     []string{"small"},
		Modes:     []string{"manual"},
		Days:      2,
		Workloads: []string{"flashcrowd"},
		TierLoads: []string{"db=2"},
	}
	ref, err := campaign.Run("workload-equivalence", m, 1, ReferenceRunTrial)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	if errs := ref.Errs(); len(errs) > 0 {
		t.Fatalf("reference campaign had %d failed trials; first: %s", len(errs), errs[0].Err)
	}
	want, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 8} {
			sm := m
			sm.Shards = shards
			res, err := campaign.Run("workload-equivalence", sm, workers, NewPooledRunFunc())
			if err != nil {
				t.Fatalf("campaign (%d workers, %d shards): %v", workers, shards, err)
			}
			if errs := res.Errs(); len(errs) > 0 {
				t.Fatalf("campaign (%d workers, %d shards) had %d failed trials; first: %s",
					workers, shards, len(errs), errs[0].Err)
			}
			got, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("spec-driven campaign diverged from reference at %d workers, %d shards:\n%s",
					workers, shards, firstDiff(want, got))
			}
		}
	}
}

// TestTierLoadShiftsWork pins what the -tierload axis actually moves:
// scaling a tier's workload weights changes the load its hosts carry —
// db=3 triples the ad-hoc query ambience on the database tier, tx=0
// silences the market feed entirely. (Front-end Share is a *relative*
// analyst weight normalised across front-end hosts, so scaling the only
// front-end tier uniformly is deliberately a no-op.)
func TestTierLoadShiftsWork(t *testing.T) {
	t.Parallel()
	build := func(opts ...qoscluster.Option) *qoscluster.Site {
		t.Helper()
		site, err := buildNamedSite("small", 7, append(opts, qoscluster.WithNoFaults())...)
		if err != nil {
			t.Fatal(err)
		}
		// 11:00 Monday: mid business day, ambient load near its peak.
		if err := site.Run(11 * simclock.Hour); err != nil {
			t.Fatal(err)
		}
		return site
	}
	tierLoad := func(site *qoscluster.Site, tier string, f func(*cluster.Host) float64) float64 {
		var sum float64
		for _, h := range site.DC.Hosts() {
			if site.TierOf(h.Name) == tier {
				sum += f(h)
			}
		}
		return sum
	}
	cpus := func(h *cluster.Host) float64 { return h.CPUUtilisation() * float64(h.Model.CPUs) }
	busy := func(h *cluster.Host) float64 { return h.IOStat().BusyPct }
	base := build()
	scaled := build(qoscluster.WithTierLoadScale("db", 3), qoscluster.WithTierLoadScale("tx", 0))
	if b, s := tierLoad(base, "db", cpus), tierLoad(scaled, "db", cpus); s < 1.5*b {
		t.Errorf("db=3 did not raise database load: base %.3f CPUs, scaled %.3f", b, s)
	}
	if tierLoad(base, "tx", busy) == 0 {
		t.Error("baseline tx tier carries no feed load at all")
	}
	if got := tierLoad(scaled, "tx", busy); got != 0 {
		t.Errorf("tx=0 left feed load on the transaction tier: summed busy %.1f%%", got)
	}
}
