package experiments

import (
	qoscluster "repro"
	"repro/internal/simclock"
)

// The ablate-* scenarios exercise the design decisions DESIGN.md calls
// out, each as a multi-seed campaign sweeping one option axis:
//
//	ablate-cron      cron period X ∈ {1m, 5m, 15m, 60m} — detection
//	                 latency and residual downtime scale with X.
//	ablate-rescue    DGSPL batch rescue on/off — failed overnight jobs
//	                 stay dead without it.
//	ablate-net       private agent network on/off — without it, all
//	                 agent traffic rides the public LAN.
//	ablate-resident  non-resident agents — the duty-cycled footprint vs
//	                 what the same suite would cost if it stayed
//	                 resident like the commercial monitor.
//
// All spans obey Config.AblationDays; there is no single-seed path.

// AblateScenarios lists the ablation campaign names in DESIGN.md order;
// the "ablate" scenario and the CLI's -ablate all expand to it.
var AblateScenarios = []string{"ablate-cron", "ablate-rescue", "ablate-net", "ablate-resident"}

// defaultCronPeriods is the ablate-cron sweep axis when Config does not
// override it: the paper's 5 minutes bracketed by a faster and two
// slower periods.
var defaultCronPeriods = []simclock.Time{
	simclock.Minute, 5 * simclock.Minute, 15 * simclock.Minute, 60 * simclock.Minute,
}

func (c Config) cronPeriods() []simclock.Time {
	if len(c.CronPeriods) > 0 {
		return c.CronPeriods
	}
	return defaultCronPeriods
}

// ablateCronMetrics reports the quantities that scale with the cron
// period: residual downtime and detection latency.
func ablateCronMetrics(r qoscluster.Report) map[string]float64 {
	return map[string]float64{
		"downtime_h/total": r.Total.Hours(),
		"detect_mean_s":    r.MeanDetect.Duration().Seconds(),
		"detect_p95_s":     r.P95Detect.Duration().Seconds(),
	}
}

// ablateRescueMetrics reports the batch outcomes the DGSPL resubmission
// path changes.
func ablateRescueMetrics(r qoscluster.Report) map[string]float64 {
	return map[string]float64{
		"jobs_done":        float64(r.JobsDone),
		"jobs_failed":      float64(r.JobsFailed),
		"jobs_resubmitted": float64(r.Resubmitted),
		"downtime_h/total": r.Total.Hours(),
	}
}

// ablateNetMetrics reports where the agent traffic landed.
func ablateNetMetrics(site *qoscluster.Site) map[string]float64 {
	vals := map[string]float64{
		"public_lan_mb":  float64(site.Public.Stats().Bytes) / (1 << 20),
		"private_lan_mb": 0,
	}
	if site.Private != nil {
		vals["private_lan_mb"] = float64(site.Private.Stats().Bytes) / (1 << 20)
	}
	return vals
}

// netDays shortens the ablate-net span: traffic accumulates fast, so a
// third of the ablation span (a month at the default 90 days) suffices.
// The shortened span is what the matrix records, so the campaign JSON
// and group labels state the days actually simulated.
func netDays(ablationDays int) int {
	if d := ablationDays / 3; d >= 1 {
		return d
	}
	return 1
}

// residentMetrics contrasts the duty-cycled agent footprint with the
// resident BMC-style monitor and with what the same agent suite would
// hold if it stayed resident. The bmc/agent means come from
// overheadMetrics so ablate-resident and fig3/fig4/overhead can never
// disagree on the shared keys.
func residentMetrics(seed uint64) map[string]float64 {
	vals := overheadMetrics("overhead", seed)
	// A resident suite would hold its run-time demand continuously.
	const agentsPerHost = 5
	resCPU := agentsPerHost * 0.054 / 8 * 100 // % of an 8-CPU host
	resMem := agentsPerHost * 1.6
	vals["resident_cpu_pct"] = resCPU
	vals["resident_mem_mb"] = resMem
	if m := vals["agent_cpu_pct"]; m > 0 {
		vals["resident_vs_cron_cpu_x"] = resCPU / m
	}
	if m := vals["agent_mem_mb"]; m > 0 {
		vals["resident_vs_cron_mem_x"] = resMem / m
	}
	return vals
}
