package experiments

import (
	"fmt"
	"strings"

	qoscluster "repro"
	"repro/internal/simclock"
)

// Ablate exercises the design decisions DESIGN.md calls out:
//
//  1. Cron period X — detection latency and residual downtime scale with X.
//  2. DGSPL batch rescue — failed overnight jobs stay dead without it.
//  3. Private agent network — without it, all agent traffic rides the
//     public LAN.
//  4. Non-resident agents — the duty-cycled footprint vs what the same
//     suite would cost if it stayed resident like the commercial monitor.
func Ablate(cfg Config) string {
	span := cfg.span()
	if cfg.Days <= 0 || cfg.Days > 120 {
		span = 90 * simclock.Day // ablations do not need a full year
	}
	var b strings.Builder

	// --- 1: cron period ---
	fmt.Fprintf(&b, "Ablation 1 — agent cron period X (%.0f days each)\n", span.Hours()/24)
	fmt.Fprintf(&b, "%-10s %14s %14s %14s\n", "X", "downtime h", "mean detect", "p95 detect")
	for _, period := range []simclock.Time{simclock.Minute, 5 * simclock.Minute, 15 * simclock.Minute, 60 * simclock.Minute} {
		site := qoscluster.BuildSite(cfg.site(), qoscluster.Options{
			Mode: qoscluster.ModeAgents, CronPeriod: period,
		})
		site.Run(span)
		r := site.Report()
		fmt.Fprintf(&b, "%-10v %14.1f %14s %14s\n", period, r.Total.Hours(), short(r.MeanDetect), short(r.P95Detect))
	}

	// --- 2: batch rescue ---
	b.WriteString("\nAblation 2 — DGSPL-driven resubmission of failed batch jobs\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %12s\n", "policy", "done", "failed", "resubmitted")
	for _, off := range []bool{false, true} {
		site := qoscluster.BuildSite(cfg.site(), qoscluster.Options{
			Mode: qoscluster.ModeAgents, NoBatchRescue: off,
		})
		site.Run(span)
		r := site.Report()
		name := "dgspl"
		if off {
			name = "none"
		}
		fmt.Fprintf(&b, "%-12s %10d %10d %12d\n", name, r.JobsDone, r.JobsFailed, r.Resubmitted)
	}

	// --- 3: private agent network ---
	b.WriteString("\nAblation 3 — private intelliagent network\n")
	fmt.Fprintf(&b, "%-12s %16s %16s\n", "config", "public-LAN MB", "private-LAN MB")
	for _, off := range []bool{false, true} {
		site := qoscluster.BuildSite(cfg.site(), qoscluster.Options{
			Mode: qoscluster.ModeAgents, DisablePrivateNet: off,
		})
		site.Run(span / 3) // traffic accumulates fast; a month suffices
		pub := float64(site.Public.Stats().Bytes) / (1 << 20)
		var priv float64
		if site.Private != nil {
			priv = float64(site.Private.Stats().Bytes) / (1 << 20)
		}
		name := "private"
		if off {
			name = "public-only"
		}
		fmt.Fprintf(&b, "%-12s %16.2f %16.2f\n", name, pub, priv)
	}

	// --- 4: resident vs cron-awakened agents ---
	b.WriteString("\nAblation 4 — non-resident (cron-awakened) agents\n")
	bmcCPU, agCPU, bmcMem, agMem := sampleOverhead(cfg.Seed)
	// A resident suite would hold its run-time demand continuously.
	const agentsPerHost = 5
	resCPU := agentsPerHost * 0.054 / 8 * 100 // % of an 8-CPU host
	resMem := agentsPerHost * 1.6
	fmt.Fprintf(&b, "%-22s %12s %12s\n", "monitor", "cpu %", "mem MB")
	fmt.Fprintf(&b, "%-22s %12.3f %12.1f\n", "bmc resident", bmcCPU.Mean(), bmcMem.Mean())
	fmt.Fprintf(&b, "%-22s %12.3f %12.1f\n", "agents cron-awakened", agCPU.Mean(), agMem.Mean())
	fmt.Fprintf(&b, "%-22s %12.3f %12.1f\n", "agents if resident", resCPU, resMem)
	return b.String()
}
