package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	qoscluster "repro"
	"repro/internal/campaign"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// traceMatrix is the shared one-cell trace-test matrix: two seeds of one
// day, full evidence capture.
func traceMatrix(site, mode string) campaign.Matrix {
	return campaign.Matrix{
		Seeds:      campaign.Seeds(7, 2),
		Scenarios:  []string{"year"},
		Sites:      []string{site},
		Modes:      []string{mode},
		Days:       1,
		TraceLevel: trace.LevelFull,
	}
}

// registerFastFaults installs an override that drives faults hard enough
// for a short trial to accumulate agent decisions; the returned func
// deregisters it.
func registerFastFaults(name string) func() {
	RegisterOverride(name, func(o *qoscluster.Options) {
		o.Faults = []faultinject.Spec{
			{Category: metrics.CatMidCrash, MeanInterarrival: 6 * simclock.Hour, Window: faultinject.AnyTime},
			{Category: metrics.CatFrontEnd, MeanInterarrival: 8 * simclock.Hour, Window: faultinject.AnyTime},
		}
	})
	return func() { RegisterOverride(name, nil) }
}

// TestTraceEquivalence is the determinism gate for the trace subsystem:
// the encoded trace file must be byte-identical at any campaign worker
// count and any intra-trial shard count. If any byte moves, an emission
// site has leaked scheduling or map order into the trace; fix the
// emitter, do not regenerate expectations.
func TestTraceEquivalence(t *testing.T) {
	cells := []struct {
		site string
		mode string
	}{
		{"paper", "manual"},
		{"paper", "agents"},
		{"small", "agents"},
		{"megasite-150", "manual"},
	}
	for _, cell := range cells {
		t.Run(fmt.Sprintf("%s-%s", cell.site, cell.mode), func(t *testing.T) {
			t.Parallel()
			if testing.Short() && (cell.site == "megasite-150" || cell.site+cell.mode == "paperagents") {
				t.Skip("long cell; run without -short for the full gate")
			}
			m := traceMatrix(cell.site, cell.mode)
			_, want, err := RunTracedCampaign("trace-equivalence", m, 1)
			if err != nil {
				t.Fatalf("baseline traced campaign: %v", err)
			}
			for _, workers := range []int{1, 8} {
				for _, shards := range []int{1, 8} {
					if workers == 1 && shards == 1 {
						continue
					}
					sm := m
					sm.Shards = shards
					_, got, err := RunTracedCampaign("trace-equivalence", sm, workers)
					if err != nil {
						t.Fatalf("traced campaign (%d workers, %d shards): %v", workers, shards, err)
					}
					if !bytes.Equal(want, got) {
						t.Errorf("trace diverged (site %s, mode %s, %d workers, %d shards):\n%s",
							cell.site, cell.mode, workers, shards, firstDiff(want, got))
					}
				}
			}
		})
	}
}

// TestTraceReuseReset proves Site.Reset clears recorder state on the
// pooled ReuseRunner path: the second trial of a two-seed pooled campaign
// (which reuses the first trial's site skeleton) must record exactly what
// a fresh site at that seed records.
func TestTraceReuseReset(t *testing.T) {
	t.Parallel()
	pooledM := traceMatrix("small", "agents") // seeds {7, 8}, one worker => one reused site
	freshM := pooledM
	freshM.Seeds = campaign.Seeds(8, 1)
	_, pooledBuf, err := RunTracedCampaign("trace-reuse", pooledM, 1)
	if err != nil {
		t.Fatalf("pooled traced campaign: %v", err)
	}
	_, freshBuf, err := RunTracedCampaign("trace-fresh", freshM, 1)
	if err != nil {
		t.Fatalf("fresh traced campaign: %v", err)
	}
	pooled, err := readTrace(bytes.NewReader(pooledBuf))
	if err != nil {
		t.Fatalf("parse pooled trace: %v", err)
	}
	fresh, err := readTrace(bytes.NewReader(freshBuf))
	if err != nil {
		t.Fatalf("parse fresh trace: %v", err)
	}
	reused, scratch := pooled.Trials[1], fresh.Trials[0]
	if reused.Trial.Seed != 8 || scratch.Trial.Seed != 8 {
		t.Fatalf("trial selection wrong: reused seed %d, fresh seed %d", reused.Trial.Seed, scratch.Trial.Seed)
	}
	if len(reused.Events) != len(scratch.Events) {
		t.Fatalf("reused site recorded %d events, fresh site %d", len(reused.Events), len(scratch.Events))
	}
	for i := range reused.Events {
		if !reflect.DeepEqual(reused.Events[i], scratch.Events[i]) {
			t.Fatalf("event %d differs on the reused site:\nreused: %+v\nfresh:  %+v", i, reused.Events[i], scratch.Events[i])
		}
	}
}

// TestTracedCampaignMatchesUntraced pins the execution-knob contract:
// enabling tracing must not move a byte of the campaign result.
func TestTracedCampaignMatchesUntraced(t *testing.T) {
	t.Parallel()
	m := traceMatrix("small", "agents")
	traced, _, err := RunTracedCampaign("knob", m, 2)
	if err != nil {
		t.Fatalf("traced campaign: %v", err)
	}
	um := m
	um.TraceLevel = 0
	untraced, err := campaign.Run("knob", um, 2, NewPooledRunFunc())
	if err != nil {
		t.Fatalf("untraced campaign: %v", err)
	}
	// TraceLevel is excluded from the JSON, so the records must agree
	// byte for byte.
	want, err := untraced.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := traced.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("tracing moved campaign bytes:\n%s", firstDiff(want, got))
	}
}

// TestTraceEventOrder is the nondeterminism-audit regression: event IDs
// count 1..N, times never go backwards, and a repeat run reproduces the
// stream exactly.
func TestTraceEventOrder(t *testing.T) {
	t.Parallel()
	defer registerFastFaults("trace-order-faults")()
	m := traceMatrix("small", "agents")
	m.Overrides = []string{"trace-order-faults"}
	m.Days = 2
	_, buf, err := RunTracedCampaign("trace-order", m, 2)
	if err != nil {
		t.Fatalf("traced campaign: %v", err)
	}
	tf, err := readTrace(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	total := 0
	for ti, tr := range tf.Trials {
		for i, e := range tr.Events {
			if e.ID != i+1 {
				t.Fatalf("trial %d event %d has id %d; ids must count 1..N", ti, i, e.ID)
			}
			if i > 0 && e.At < tr.Events[i-1].At {
				t.Fatalf("trial %d event %d at %v precedes event %d at %v", ti, e.ID, e.At, i, tr.Events[i-1].At)
			}
		}
		total += len(tr.Events)
	}
	if total == 0 {
		t.Fatal("fast-fault trace recorded no events; the order check tested nothing")
	}
	_, again, err := RunTracedCampaign("trace-order", m, 2)
	if err != nil {
		t.Fatalf("repeat traced campaign: %v", err)
	}
	if !bytes.Equal(buf, again) {
		t.Errorf("repeat run moved trace bytes:\n%s", firstDiff(buf, again))
	}
}

// TestReplayReproducesCampaign is the replay gate: re-running a recorded
// trace with scripted injections must reproduce the original campaign
// record byte for byte.
func TestReplayReproducesCampaign(t *testing.T) {
	t.Parallel()
	defer registerFastFaults("trace-replay-faults")()
	m := traceMatrix("small", "agents")
	m.Overrides = []string{"trace-replay-faults"}
	m.Days = 2
	res, buf, err := RunTracedCampaign("trace-replay", m, 2)
	if err != nil {
		t.Fatalf("traced campaign: %v", err)
	}
	tf, err := readTrace(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	replayed, err := ReplayTrace(tf, 2)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	want, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := replayed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("replay diverged from the recorded campaign:\n%s", firstDiff(want, got))
	}
}

// TestCounterfactualTable drives the counterfactual path end to end: pick
// the first recorded diagnose decision, replay it under the default
// alternatives, and check the rendered diff table.
func TestCounterfactualTable(t *testing.T) {
	t.Parallel()
	defer registerFastFaults("trace-cf-faults")()
	m := traceMatrix("small", "agents")
	m.Seeds = campaign.Seeds(7, 1)
	m.Overrides = []string{"trace-cf-faults"}
	m.Days = 2
	_, buf, err := RunTracedCampaign("trace-cf", m, 1)
	if err != nil {
		t.Fatalf("traced campaign: %v", err)
	}
	tf, err := readTrace(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	var anchor *trace.Event
	for i, e := range tf.Trials[0].Events {
		if e.Kind == trace.KindDiagnose {
			anchor = &tf.Trials[0].Events[i]
			break
		}
	}
	if anchor == nil {
		t.Fatal("fast-fault trace recorded no diagnose decision to override")
	}
	table, err := CounterfactualTable(tf, fmt.Sprintf("0:%d", anchor.ID), nil, 2)
	if err != nil {
		t.Fatalf("counterfactual: %v", err)
	}
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	// Banner, column header, the recorded baseline, then one row per
	// alternative: the default pick must offer at least two.
	if len(lines) < 5 {
		t.Fatalf("table has %d lines, want banner + header + recorded + >= 2 alternatives:\n%s", len(lines), table)
	}
	if !strings.Contains(lines[0], anchor.Rule) || !strings.Contains(lines[0], anchor.Action) {
		t.Errorf("banner does not describe the targeted decision:\n%s", lines[0])
	}
	if !strings.Contains(lines[1], "delta") {
		t.Errorf("header has no delta columns:\n%s", lines[1])
	}
	if !strings.HasPrefix(lines[2], "recorded") {
		t.Errorf("first row is not the recorded baseline:\n%s", lines[2])
	}
	for _, row := range lines[3:] {
		name := strings.Fields(row)[0]
		if name == anchor.Action {
			t.Errorf("default alternatives include the recorded action %q", name)
		}
		if !strings.Contains(row, "+") && !strings.Contains(row, "-") {
			t.Errorf("alternative row carries no delta: %s", row)
		}
	}

	// The no-batch-rescue alternative takes the ablation path instead of
	// a decision override; it must render alongside action overrides.
	table, err = CounterfactualTable(tf, fmt.Sprintf("0:%d", anchor.ID), []string{"no-batch-rescue", "reboot-host"}, 2)
	if err != nil {
		t.Fatalf("counterfactual with explicit alts: %v", err)
	}
	if !strings.Contains(table, "no-batch-rescue") || !strings.Contains(table, "reboot-host") {
		t.Errorf("explicit alternatives missing from table:\n%s", table)
	}
}

// TestReadTraceErrors pins the reader's fail-fast diagnostics.
func TestReadTraceErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", "not a qossim trace"},
		{"not-json", "hello\n", "not a qossim trace"},
		{"wrong-header", `{"foo":1}` + "\n", "not a qossim trace"},
		{"future-version", `{"qossim_trace":99,"matrix":{}}` + "\n", "version 99"},
		{"garbage-line", `{"qossim_trace":1,"matrix":{"seeds":[7]}}` + "\n{not json\n", "line 2: malformed"},
		{"event-first", `{"qossim_trace":1,"matrix":{"seeds":[7]}}` + "\n" + `{"id":1,"at":0,"kind":"fault"}` + "\n", "event before any trial"},
		{"no-trials", `{"qossim_trace":1,"matrix":{"seeds":[7]}}` + "\n", "no trials"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readTrace(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("readTrace(%q) error = %v, want substring %q", tc.in, err, tc.want)
			}
		})
	}
}

// TestReplayWrongTopology pins the fingerprint guard: a trace recorded on
// a topology that has since drifted must be refused, not replayed.
func TestReplayWrongTopology(t *testing.T) {
	t.Parallel()
	tf := &TraceFile{
		Level:      1,
		Topologies: map[string]string{"small": "0000000000000000"},
		Trials:     []TraceTrial{{}},
	}
	_, err := ReplayTrace(tf, 1)
	if err == nil || !strings.Contains(err.Error(), "different topology") {
		t.Errorf("ReplayTrace error = %v, want a different-topology refusal", err)
	}
	_, err = CounterfactualTable(tf, "1", nil, 1)
	if err == nil || !strings.Contains(err.Error(), "different topology") {
		t.Errorf("CounterfactualTable error = %v, want a different-topology refusal", err)
	}
}
