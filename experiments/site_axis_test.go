package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	qoscluster "repro"
	"repro/internal/campaign"
)

// TestCampaignMultiSiteSweep is the acceptance gate for the site axis: one
// campaign matrix sweeping the paper site, the scaled site and a
// JSON-defined custom topology, with per-site aggregation groups in the
// FormatCampaign output and byte-identical JSON at 1 and 8 workers.
func TestCampaignMultiSiteSweep(t *testing.T) {
	cfg := Config{
		Seed: 7, Days: 1,
		Sites: []string{"paper", "small", "../testdata/topology-edge.json"},
	}
	m, err := CampaignMatrix("before", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantSites := []string{"paper", "small", "edge-cache"}
	if len(m.Sites) != 3 || m.Sites[0] != wantSites[0] || m.Sites[1] != wantSites[1] || m.Sites[2] != wantSites[2] {
		t.Fatalf("matrix sites = %v, want %v (JSON file resolved to its declared name)", m.Sites, wantSites)
	}

	run := func(workers int) (*bytesAndText, error) {
		res, err := Campaign("before", cfg, 2, workers)
		if err != nil {
			return nil, err
		}
		for _, tr := range res.Trials {
			if tr.Err != "" {
				t.Fatalf("trial failed: %+v", tr)
			}
		}
		js, err := res.JSON()
		if err != nil {
			return nil, err
		}
		return &bytesAndText{js, qoscluster.FormatCampaign(res)}, nil
	}
	serial, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.js, parallel.js) {
		t.Error("multi-site campaign JSON differs between -workers 1 and -workers 8")
	}
	for _, site := range wantSites {
		if !strings.Contains(serial.text, "site="+site) {
			t.Errorf("FormatCampaign missing the per-site row for %q:\n%s", site, serial.text)
		}
	}
}

type bytesAndText struct {
	js   []byte
	text string
}

// TestGoVsJSONTopologyDeterminism is the determinism gate for the loader:
// the same topology, once Go-declared and once round-tripped through a
// JSON file, must produce byte-identical campaign JSON for the same
// seeds.
func TestGoVsJSONTopologyDeterminism(t *testing.T) {
	topo := qoscluster.WebFarmTopology()
	topo.Name = "detgate" // private name: don't disturb the builtin registration
	if err := qoscluster.RegisterTopology(topo); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 11, Days: 1, Sites: []string{"detgate"}}
	run := func() []byte {
		res, err := Campaign("after", cfg, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range res.Trials {
			if tr.Err != "" {
				t.Fatalf("trial failed: %+v", tr)
			}
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	fromGo := run()

	// Round-trip the declaration through a JSON file and re-register it
	// from there (ResolveSites replaces the Go registration).
	js, err := topo.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "detgate.json")
	if err := os.WriteFile(path, js, 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := ResolveSites([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "detgate" {
		t.Fatalf("ResolveSites(%s) = %v, want [detgate]", path, names)
	}
	fromJSON := run()

	if !bytes.Equal(fromGo, fromJSON) {
		t.Error("Go-declared and JSON-loaded topologies produced different campaign JSON")
	}
}

// TestResolveSites covers the canonicalisation rules: registered names
// pass through, files register under their declared name, anything else
// errors.
func TestResolveSites(t *testing.T) {
	names, err := ResolveSites([]string{"small", "../testdata/topology-edge.json"})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "small" || names[1] != "edge-cache" {
		t.Errorf("ResolveSites = %v", names)
	}
	if _, ok := qoscluster.TopologyByName("edge-cache"); !ok {
		t.Error("file-loaded topology should be registered under its declared name")
	}
	if _, err := ResolveSites([]string{"nosuch-site"}); err == nil {
		t.Error("unknown site should error")
	}
	if _, err := RunTrial(campaign.Trial{Scenario: "year", Site: "nosuch-site", Days: 1}); err == nil {
		t.Error("trial with unknown site should error")
	}

	// A file whose declared name collides with a different registered
	// topology must be rejected, not silently replace it.
	clash := qoscluster.ComputeFarmTopology()
	clash.Name = "small"
	js, err := clash.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "clash.json")
	if err := os.WriteFile(path, js, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveSites([]string{path}); err == nil {
		t.Error("file redeclaring a registered name as a different topology should error")
	}
	if topo, _ := qoscluster.TopologyByName("small"); len(topo.Tiers) != 3 || topo.Tiers[0].Hosts != 6 {
		t.Error("builtin small topology was clobbered by the rejected file")
	}

	// The same resolved name twice in one sweep folds two axes into one.
	if _, err := ResolveSites([]string{"small", "small"}); err == nil {
		t.Error("duplicate site names should error")
	}
}

// TestRigScenariosRejectMultiSite pins that the fixed one-host overhead
// rigs refuse a multi-site sweep instead of replicating identical
// numbers under per-site labels.
func TestRigScenariosRejectMultiSite(t *testing.T) {
	for _, name := range []string{"fig3", "fig4", "overhead", "ablate-resident"} {
		m, err := CampaignMatrix(name, Config{Sites: []string{"paper"}}, 2)
		if err != nil {
			t.Errorf("%s with one site: %v", name, err)
		}
		if len(m.Sites) != 0 {
			t.Errorf("%s should carry no site coordinate, got %v", name, m.Sites)
		}
		if _, err := CampaignMatrix(name, Config{Sites: []string{"paper", "small"}}, 2); err == nil {
			t.Errorf("%s should reject a multi-site list", name)
		}
	}
}
