package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"

	qoscluster "repro"
	"repro/internal/campaign"
	"repro/internal/trace"
)

// traceVersion is the trace file format version stamped on the header
// line; readers reject anything else.
const traceVersion = 1

// traceHeader is line 1 of a trace file: the campaign's identity plus a
// fingerprint of every site topology the matrix touches, so a replay can
// refuse to re-run a trace against a topology that has since changed.
type traceHeader struct {
	Version    int               `json:"qossim_trace"`
	Name       string            `json:"name,omitempty"`
	Level      int               `json:"level"`
	Matrix     json.RawMessage   `json:"matrix"`
	Topologies map[string]string `json:"topologies"`
}

// traceTrialLine introduces one trial's event block: the trial coordinate
// and the metrics the recorded run produced (replay verifies against
// them). The trial's events follow, one per line, until the next trial
// line or EOF.
type traceTrialLine struct {
	Trial   campaign.Trial     `json:"trial"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// traceCollector harvests each pooled site's recorded events keyed by
// trial index. Workers run trials concurrently, hence the lock; the
// harvested slices themselves are copies (Site.TraceEvents copies), so
// post-campaign reads need no synchronisation.
type traceCollector struct {
	mu     sync.Mutex
	events map[int][]trace.Event
}

func (c *traceCollector) harvest(s *qoscluster.Site, t campaign.Trial) {
	evs := s.TraceEvents()
	c.mu.Lock()
	c.events[t.Index] = evs
	c.mu.Unlock()
}

// RunTracedCampaign runs the matrix like campaign.Run with the pooled
// runner, additionally recording every trial's decision trace, and
// returns the campaign result plus the encoded trace file. The matrix
// must carry a positive TraceLevel. The result is byte-identical to an
// untraced run of the same matrix: tracing draws no randomness and
// schedules nothing.
func RunTracedCampaign(name string, m campaign.Matrix, workers int) (*campaign.Result, []byte, error) {
	if m.TraceLevel <= trace.LevelOff {
		return nil, nil, fmt.Errorf("campaign %s: tracing requested with trace level %d; need >= %d", name, m.TraceLevel, trace.LevelDecisions)
	}
	col := &traceCollector{events: map[int][]trace.Event{}}
	res, err := campaign.Run(name, m, workers, newPooledRunFunc(col.harvest))
	if err != nil {
		return nil, nil, err
	}
	if errs := res.Errs(); len(errs) > 0 {
		return res, nil, fmt.Errorf("campaign %s: %d of %d trials failed; not writing a partial trace", name, len(errs), len(res.Trials))
	}
	buf, err := encodeTrace(name, m, res, col)
	if err != nil {
		return res, nil, err
	}
	return res, buf, nil
}

// encodeTrace renders the trace file: one header line, then per trial (in
// matrix order) a trial line followed by its event lines. Everything is
// single-line JSON, so the file greps and streams line by line.
func encodeTrace(name string, m campaign.Matrix, res *campaign.Result, col *traceCollector) ([]byte, error) {
	rawMatrix, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	topos, err := topologyFingerprints(m)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	enc := json.NewEncoder(&b) // Encode appends the newline each line needs
	if err := enc.Encode(traceHeader{
		Version: traceVersion, Name: name, Level: m.TraceLevel,
		Matrix: rawMatrix, Topologies: topos,
	}); err != nil {
		return nil, err
	}
	for _, tr := range res.Trials {
		if err := enc.Encode(traceTrialLine{Trial: tr.Trial, Metrics: tr.Metrics}); err != nil {
			return nil, err
		}
		for _, e := range col.events[tr.Trial.Index] {
			if err := enc.Encode(e); err != nil {
				return nil, err
			}
		}
	}
	return b.Bytes(), nil
}

// topologyFingerprints hashes the canonical JSON of every site topology
// the matrix names (the blank default resolves to "small", mirroring
// buildNamedSite). FNV-64a over topo.JSON() is plenty: the fingerprint
// detects drift, it is not a security boundary.
func topologyFingerprints(m campaign.Matrix) (map[string]string, error) {
	out := map[string]string{}
	sites := m.Sites
	if len(sites) == 0 {
		sites = []string{""}
	}
	for _, name := range sites {
		resolved := name
		if resolved == "" {
			resolved = "small"
		}
		if _, ok := out[resolved]; ok {
			continue
		}
		fp, err := topologyFingerprint(resolved)
		if err != nil {
			return nil, err
		}
		out[resolved] = fp
	}
	return out, nil
}

func topologyFingerprint(name string) (string, error) {
	topo, ok := qoscluster.ResolveTopology(name)
	if !ok {
		return "", fmt.Errorf("site %q: unknown topology", name)
	}
	raw, err := topo.JSON()
	if err != nil {
		return "", fmt.Errorf("site %q: %w", name, err)
	}
	h := fnv.New64a()
	h.Write(raw)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
