package experiments

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	qoscluster "repro"
	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Campaign runs the multi-trial variant of a named scenario: `trials`
// consecutive seeds (starting at cfg.Seed) of each matrix cell, fanned
// across `workers` goroutines, folded into mean/min/max/95%-CI aggregates.
// Every trial builds its own site around its own simclock.Sim, so per-seed
// results are identical whatever the worker count.
//
// Names: "before" and "after" sweep one operations mode, "fig2" (the
// default) sweeps both on the same seeds, "fig3"/"fig4"/"overhead" sweep
// the monitor-overhead rig, "latency" sweeps the §4 detection windows in
// both modes, "mttr" sweeps the manual repair-time distribution, and the
// "ablate-*" names sweep one option axis each (see AblateScenarios).
func Campaign(name string, cfg Config, trials, workers int) (*campaign.Result, error) {
	if trials <= 0 {
		trials = 8
	}
	m, err := CampaignMatrix(name, cfg, trials)
	if err != nil {
		return nil, err
	}
	// A fresh pool per campaign: skeletons never outlive the run, so a
	// topology or override re-registered between campaigns (both are
	// documented as replaceable) can never resurface through a stale
	// pooled site — CellKey records only the names.
	if cfg.TracePath != "" {
		res, buf, err := RunTracedCampaign(name, m, workers)
		if err != nil {
			return res, err
		}
		if err := os.WriteFile(cfg.TracePath, buf, 0o644); err != nil {
			return res, fmt.Errorf("writing trace %s: %w", cfg.TracePath, err)
		}
		return res, nil
	}
	return campaign.Run(name, m, workers, NewPooledRunFunc())
}

// CampaignNames lists every scenario CampaignMatrix accepts.
var CampaignNames = []string{
	"before", "after", "fig2", "fig3", "fig4", "overhead",
	"latency", "mttr", "ablate-cron", "ablate-rescue", "ablate-net", "ablate-resident",
}

// CampaignMatrix translates a scenario name into the campaign axes it
// sweeps. The site axis is cfg.Sites resolved through the topology
// registry (JSON files are loaded and registered here, once, so every
// trial can select its topology by name). Ablation matrices obey
// cfg.AblationDays; the overhead-rig scenarios
// (fig3/fig4/overhead/ablate-resident) ignore the span and the site —
// they carry no Days or Sites coordinate, and a multi-site list is
// rejected for them.
func CampaignMatrix(name string, cfg Config, trials int) (campaign.Matrix, error) {
	if cfg.Shards < 0 || cfg.Shards > qoscluster.MaxShards {
		return campaign.Matrix{}, fmt.Errorf("-shards %d outside [0, %d]", cfg.Shards, qoscluster.MaxShards)
	}
	if cfg.AgentSlots < 0 {
		return campaign.Matrix{}, fmt.Errorf("-agentslots %d is negative", cfg.AgentSlots)
	}
	traceLevel := cfg.TraceLevel
	if cfg.TracePath != "" && traceLevel == 0 {
		traceLevel = trace.LevelDecisions // -trace alone implies level 1
	}
	if traceLevel < 0 || traceLevel > trace.MaxLevel {
		return campaign.Matrix{}, fmt.Errorf("-tracelevel %d outside [0, %d]", traceLevel, trace.MaxLevel)
	}
	m := campaign.Matrix{
		Seeds:      campaign.Seeds(cfg.Seed, trials),
		Days:       cfg.days(),
		AgentSlots: cfg.AgentSlots,
		Shards:     cfg.Shards,
		TraceLevel: traceLevel,
	}
	siteAxis := true
	switch name {
	case "", "fig2":
		m.Scenarios = []string{"year"}
		m.Modes = []string{"manual", "agents"}
	case "before":
		m.Scenarios = []string{"year"}
		m.Modes = []string{"manual"}
	case "after":
		m.Scenarios = []string{"year"}
		m.Modes = []string{"agents"}
	case "latency":
		// Both modes on the same seeds: the manual columns are the paper's
		// ~1h/~10h/~25h windows, the agent columns its 5-minute claim.
		m.Scenarios = []string{"latency"}
		m.Modes = []string{"manual", "agents"}
	case "mttr":
		// Manual only: the paper quotes repair times for the before year.
		m.Scenarios = []string{"mttr"}
		m.Modes = []string{"manual"}
	case "ablate-cron":
		m.Scenarios = []string{"ablate-cron"}
		m.Modes = []string{"agents"}
		m.CronPeriods = cfg.cronPeriods()
		m.Days = cfg.AblationDays()
	case "ablate-rescue":
		m.Scenarios = []string{"ablate-rescue"}
		m.Modes = []string{"agents"}
		m.NoBatchRescue = []bool{false, true}
		m.Days = cfg.AblationDays()
	case "ablate-net":
		m.Scenarios = []string{"ablate-net"}
		m.Modes = []string{"agents"}
		m.DisablePrivateNet = []bool{false, true}
		m.Days = netDays(cfg.AblationDays())
	case "ablate-resident":
		m.Scenarios = []string{"ablate-resident"}
		m.Days = 0 // the 4-hour overhead rig ignores the span
		siteAxis = false
	case "fig3", "fig4", "overhead":
		// "overhead" is one scenario reporting both the CPU and memory
		// series: the rig produces both in a single run, so splitting it
		// into fig3+fig4 cells would simulate everything twice.
		m.Scenarios = []string{name}
		m.Days = 0
		siteAxis = false
	default:
		return campaign.Matrix{}, fmt.Errorf("unknown campaign %q (want one of %v)", name, CampaignNames)
	}
	if siteAxis {
		sites, err := ResolveSites(cfg.siteArgs())
		if err != nil {
			return campaign.Matrix{}, err
		}
		m.Sites = sites
		// The per-tier intensity axes ride on any site scenario. Validate
		// each spec now — a typo'd multiplier or tier name must fail
		// before trials burn compute — but keep the raw strings as
		// coordinates. A named tier must exist in at least one selected
		// site's topology (trials scope the spec to each site's own
		// tiers); a name no site declares would silently weight nothing.
		// Duplicate cells are rejected: they would share a group key, so
		// Aggregate would silently fold their seeds into one cell and
		// halve every CI (a stray trailing ';' is the usual cause).
		known := knownTiers(sites)
		if err := validateTierScaleAxis("-tierfaults", cfg.TierFaultScales, ParseTierFaultScale, sites, known); err != nil {
			return campaign.Matrix{}, err
		}
		m.TierFaults = cfg.TierFaultScales
		if err := validateTierScaleAxis("-tierload", cfg.TierLoadScales, ParseTierLoadScale, sites, known); err != nil {
			return campaign.Matrix{}, err
		}
		m.TierLoads = cfg.TierLoadScales
		// The workload axis: resolve names/files through the spec
		// registry once, here, so every trial can look its spec up by
		// name wherever it runs (ResolveWorkloads also rejects duplicate
		// cells).
		wls, err := ResolveWorkloads(cfg.Workloads)
		if err != nil {
			return campaign.Matrix{}, err
		}
		m.Workloads = wls
	} else {
		if err := validateRigSites(name, cfg.Sites); err != nil {
			return campaign.Matrix{}, err
		}
		if len(cfg.TierFaultScales) > 0 {
			return campaign.Matrix{}, fmt.Errorf("scenario %q runs a fixed one-host rig and has no tiers to scale; drop -tierfaults", name)
		}
		if len(cfg.TierLoadScales) > 0 {
			return campaign.Matrix{}, fmt.Errorf("scenario %q runs a fixed one-host rig and has no tiers to scale; drop -tierload", name)
		}
		if len(cfg.Workloads) > 0 {
			return campaign.Matrix{}, fmt.Errorf("scenario %q runs a fixed one-host rig without the site workload generator; drop -workload", name)
		}
		if traceLevel > 0 || cfg.TracePath != "" {
			return campaign.Matrix{}, fmt.Errorf("scenario %q runs a fixed one-host rig with no healing pipeline to trace; drop -trace/-tracelevel", name)
		}
	}
	return m, nil
}

// validateTierScaleAxis vets one per-tier intensity axis (-tierfaults or
// -tierload) cell list: every cell parses, every named tier exists in at
// least one selected site, and no two cells are identical.
func validateTierScaleAxis(flag string, cells []string, parse func(string) (map[string]float64, error),
	sites []string, known map[string]bool) error {
	seen := map[string]int{}
	for i, spec := range cells {
		scale, err := parse(spec)
		if err != nil {
			return err
		}
		for _, tier := range sortedKeys(scale) {
			if !known[tier] {
				return fmt.Errorf(
					"%s cell %d (%q) names tier %q, which no selected site declares (sites %s have tiers: %s)",
					flag, i+1, spec, tier, strings.Join(sites, ", "), strings.Join(sortedKeys(known), ", "))
			}
		}
		if prev, dup := seen[spec]; dup {
			return fmt.Errorf("%s cells %d and %d are both %q; duplicate cells would fold into one aggregation group",
				flag, prev+1, i+1, spec)
		}
		seen[spec] = i
	}
	return nil
}

// validateRigSites vets -site arguments for the scenarios that build a
// fixed one-host rig: sweeping sites would replicate identical numbers
// under different labels, so a multi-site list is rejected, and a single
// explicit site must still resolve — a typo'd name should not pass
// silently just because the rig ignores it.
func validateRigSites(name string, sites []string) error {
	if len(sites) > 1 {
		return fmt.Errorf("scenario %q runs a fixed one-host rig and ignores -site; drop the multi-site list %v",
			name, sites)
	}
	if len(sites) == 1 {
		if _, err := ResolveSites(sites); err != nil {
			return err
		}
	}
	return nil
}

func (c Config) days() int {
	if c.Days <= 0 {
		return 365
	}
	return c.Days
}

// overrideMu guards the options-override registry. Registration is
// cheap and rare (init-time, typically); lookups happen on every trial.
var (
	overrideMu sync.RWMutex
	overrides  = map[string]func(*qoscluster.Options){}
)

// RegisterOverride installs a named qoscluster.Options mutator that
// matrix cells reference through the Overrides axis. The mutator runs
// after the trial's option axes are applied, so it can tune anything
// Options exposes (fault campaign, workload, operator timing, ...) that
// the first-class axes do not. Registering a name twice replaces the
// earlier mutator.
func RegisterOverride(name string, fn func(*qoscluster.Options)) {
	overrideMu.Lock()
	defer overrideMu.Unlock()
	if fn == nil {
		delete(overrides, name)
		return
	}
	overrides[name] = fn
}

func lookupOverride(name string) func(*qoscluster.Options) {
	overrideMu.RLock()
	defer overrideMu.RUnlock()
	return overrides[name]
}

// ParseTierFaultScale parses a per-tier fault-intensity spec — a comma
// list of tier=multiplier entries like "web=2,db=0.5" — into the
// qoscluster.Options.TierFaultScale map. An empty spec returns nil (the
// topology's own per-tier weights unscaled). This checks syntax and
// multiplier sanity only; CampaignMatrix additionally rejects tier names
// that no selected site's topology declares, and each trial scopes the
// map to its own site's tiers (scopeTierScale).
func ParseTierFaultScale(spec string) (map[string]float64, error) {
	return parseTierScale(spec, "tier-fault")
}

// ParseTierLoadScale parses a per-tier workload-intensity spec — the same
// "web=2,db=0.5" grammar as ParseTierFaultScale — into the
// qoscluster.Options.TierLoadScale map. An empty spec returns nil (the
// topology's own per-tier workload shares unscaled).
func ParseTierLoadScale(spec string) (map[string]float64, error) {
	return parseTierScale(spec, "tier-load")
}

// parseTierScale is the shared tier=multiplier comma-list parser behind
// both per-tier intensity axes; kind names the axis in error messages.
func parseTierScale(spec, kind string) (map[string]float64, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tier, val, ok := strings.Cut(part, "=")
		tier = strings.TrimSpace(tier)
		if !ok || tier == "" {
			return nil, fmt.Errorf("%s entry %q: want tier=multiplier", kind, part)
		}
		scale, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("%s entry %q: %w", kind, part, err)
		}
		if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
			return nil, fmt.Errorf("%s entry %q: want a finite multiplier >= 0", kind, part)
		}
		if _, dup := out[tier]; dup {
			return nil, fmt.Errorf("%s spec names tier %q twice", kind, tier)
		}
		out[tier] = scale
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s spec %q names no tiers", kind, spec)
	}
	return out, nil
}

// knownTiers unions the tier names declared by the given registered
// sites (ResolveSites has already registered every name it returns).
func knownTiers(sites []string) map[string]bool {
	known := map[string]bool{}
	for _, name := range sites {
		topo, ok := qoscluster.ResolveTopology(name)
		if !ok {
			continue
		}
		for _, tier := range topo.Tiers {
			known[tier.Name] = true
		}
	}
	return known
}

// sortedKeys returns a map's keys sorted, for deterministic messages.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// trialOptions builds the qoscluster.Options a trial's coordinates call
// for: mode and agent set from their string axes, the option axes
// verbatim, then any registered override applied on top.
func trialOptions(t campaign.Trial) (qoscluster.Options, error) {
	o := qoscluster.Options{
		CronPeriod:        t.CronPeriod,
		NoBatchRescue:     t.NoBatchRescue,
		DisablePrivateNet: t.DisablePrivateNet,
		BaselineMonitors:  t.BaselineMonitors,
		AgentSlots:        t.AgentSlots,
		Shards:            t.Shards,
		TraceLevel:        t.TraceLevel,
	}
	if t.TierFaults != "" {
		scale, err := ParseTierFaultScale(t.TierFaults)
		if err != nil {
			return o, err
		}
		o.TierFaultScale = scale
	}
	if t.TierLoad != "" {
		scale, err := ParseTierLoadScale(t.TierLoad)
		if err != nil {
			return o, err
		}
		o.TierLoadScale = scale
	}
	if t.Workload != "" {
		sp, ok := workload.SpecByName(t.Workload)
		if !ok {
			return o, fmt.Errorf("workload spec %q is not registered (known: %s)",
				t.Workload, strings.Join(workload.SpecNames(), ", "))
		}
		o.WorkloadSpec = &sp
	}
	switch t.Mode {
	case "manual", "":
		o.Mode = qoscluster.ModeManual
	case "agents":
		o.Mode = qoscluster.ModeAgents
	default:
		return o, fmt.Errorf("unknown mode %q", t.Mode)
	}
	switch t.AgentSet {
	case "", "lean":
		o.AgentSet = qoscluster.AgentsLean
	case "full":
		o.AgentSet = qoscluster.AgentsFull
	default:
		return o, fmt.Errorf("unknown agent set %q (want lean or full)", t.AgentSet)
	}
	if t.Overrides != "" {
		fn := lookupOverride(t.Overrides)
		if fn == nil {
			return o, fmt.Errorf("unknown options override %q (RegisterOverride it first)", t.Overrides)
		}
		fn(&o)
	}
	return o, nil
}

// siteScenario reports whether the scenario's trials build a full named
// site — the trials worth running on a reused skeleton. The overhead-rig
// scenarios build their own fixed one-host rigs instead.
func siteScenario(name string) bool {
	switch name {
	case "year", "latency", "mttr", "ablate-cron", "ablate-rescue", "ablate-net":
		return true
	}
	return false
}

// trialSiteOptions is trialOptions plus the per-site scoping of the
// tier-fault-scale spec: a multi-site sweep may name a tier only some
// sites declare (CampaignMatrix has already rejected names *no* site
// declares), so each trial keeps just the entries its own topology has —
// NewSite would otherwise reject the spec wholesale.
func trialSiteOptions(t campaign.Trial) (qoscluster.Options, error) {
	o, err := trialOptions(t)
	if err != nil {
		return o, err
	}
	o.TierFaultScale = scopeTierScale(o.TierFaultScale, t.Site)
	o.TierLoadScale = scopeTierScale(o.TierLoadScale, t.Site)
	return o, nil
}

// scopeTierScale drops scale entries for tiers the named site's topology
// does not declare; an empty result collapses to nil so the site keeps
// the exact no-override fast path. An unresolvable site name passes the
// map through — buildNamedSite reports the unknown site with more
// context than a scoping failure could.
func scopeTierScale(scale map[string]float64, site string) map[string]float64 {
	if len(scale) == 0 {
		return scale
	}
	if site == "" {
		site = "small"
	}
	topo, ok := qoscluster.ResolveTopology(site)
	if !ok {
		return scale
	}
	var out map[string]float64
	for _, tier := range topo.Tiers {
		if v, has := scale[tier.Name]; has {
			if out == nil {
				out = map[string]float64{}
			}
			out[tier.Name] = v
		}
	}
	return out
}

// buildTrialSite assembles the site one trial's coordinates call for.
func buildTrialSite(t campaign.Trial) (*qoscluster.Site, error) {
	opts, err := trialSiteOptions(t)
	if err != nil {
		return nil, err
	}
	return buildNamedSite(t.Site, t.Seed, qoscluster.WithOptions(opts))
}

// runSiteTrial advances a (fresh or reseeded) site over the trial's span
// and extracts the scenario's metrics.
func runSiteTrial(site *qoscluster.Site, t campaign.Trial) (map[string]float64, error) {
	span := Config{Seed: t.Seed, Days: t.Days}.span()
	if err := site.Run(span); err != nil {
		return nil, err
	}
	switch t.Scenario {
	case "year":
		return yearMetrics(site.Report(), span), nil
	case "latency":
		return latencyMetrics(site), nil
	case "mttr":
		return mttrMetrics(site), nil
	case "ablate-cron":
		return ablateCronMetrics(site.Report()), nil
	case "ablate-rescue":
		return ablateRescueMetrics(site.Report()), nil
	case "ablate-net":
		return ablateNetMetrics(site), nil
	default:
		return nil, fmt.Errorf("scenario %q is not a site scenario", t.Scenario)
	}
}

// RunTrial executes one campaign trial on a freshly built site. It is safe
// for concurrent use: all state lives in the site built here. The trial's
// Site coordinate names a registered topology (CampaignMatrix registers
// JSON-file sites before any trial runs).
//
// Campaign runs use the pooled variant (NewPooledRunFunc) by default;
// RunTrial remains the build-per-trial path the equivalence tests compare
// it against.
func RunTrial(t campaign.Trial) (map[string]float64, error) {
	switch {
	case siteScenario(t.Scenario):
		site, err := buildTrialSite(t)
		if err != nil {
			return nil, err
		}
		return runSiteTrial(site, t)
	case t.Scenario == "ablate-resident":
		return residentMetrics(t.Seed), nil
	case t.Scenario == "fig3" || t.Scenario == "fig4" || t.Scenario == "overhead":
		return overheadMetrics(t.Scenario, t.Seed), nil
	default:
		return nil, fmt.Errorf("unknown campaign scenario %q", t.Scenario)
	}
}

// ReferenceRunTrial is RunTrial with the site's reference scheduler (one
// heap ticker per agent) instead of the coalesced cron wheel: the seed
// simulator path. The equivalence tests assert campaign JSON from this
// path is byte-identical to the pooled wheel path.
func ReferenceRunTrial(t campaign.Trial) (map[string]float64, error) {
	if !siteScenario(t.Scenario) {
		return RunTrial(t)
	}
	opts, err := trialSiteOptions(t)
	if err != nil {
		return nil, err
	}
	opts.ReferenceScheduler = true
	opts.ReferenceProbes = true
	opts.Shards = 0 // the reference is the single-goroutine engine
	site, err := buildNamedSite(t.Site, t.Seed, qoscluster.WithOptions(opts))
	if err != nil {
		return nil, err
	}
	return runSiteTrial(site, t)
}

// NewPooledRunFunc returns a campaign.RunFunc that reuses one site
// skeleton per matrix cell per worker (Site.Reset between seeds) instead
// of rebuilding topology, services, networks and agents for every trial.
// Results are byte-identical to RunTrial — gated by the equivalence tests.
// Each call returns an independently pooled runner; use one per campaign,
// since pooled skeletons are keyed by site/override *names* and must not
// survive a re-registration of either.
func NewPooledRunFunc() campaign.RunFunc {
	return newPooledRunFunc(nil)
}

// newPooledRunFunc is NewPooledRunFunc with an optional hook that runs
// after each successful site trial, before the skeleton is reused — the
// trace collector's harvest point.
func newPooledRunFunc(after func(*qoscluster.Site, campaign.Trial)) campaign.RunFunc {
	run := runSiteTrial
	if after != nil {
		run = func(s *qoscluster.Site, t campaign.Trial) (map[string]float64, error) {
			vals, err := runSiteTrial(s, t)
			if err == nil {
				after(s, t)
			}
			return vals, err
		}
	}
	pooled := campaign.ReuseRunner[*qoscluster.Site]{
		Build: buildTrialSite,
		Reset: func(s *qoscluster.Site, t campaign.Trial) error { return s.Reset(t.Seed) },
		Run:   run,
	}.RunFunc()
	return func(t campaign.Trial) (map[string]float64, error) {
		if !siteScenario(t.Scenario) {
			return RunTrial(t)
		}
		return pooled(t)
	}
}

// yearMetrics flattens a year-run report into campaign metrics: the
// Figure-2 category downtimes, the §4 detection/repair latencies, and the
// batch/agent counters.
func yearMetrics(r qoscluster.Report, span simclock.Time) map[string]float64 {
	vals := map[string]float64{
		"downtime_h/total":   r.Total.Hours(),
		"availability_pct":   100 * metrics.Availability(r.Total, span),
		"detect_mean_s":      r.MeanDetect.Duration().Seconds(),
		"detect_p95_s":       r.P95Detect.Duration().Seconds(),
		"detect_day_s":       r.DetectDay.Duration().Seconds(),
		"detect_overnight_s": r.DetectNight.Duration().Seconds(),
		"detect_weekend_s":   r.DetectWkend.Duration().Seconds(),
		"mttr_mean_s":        r.MeanMTTR.Duration().Seconds(),
		"jobs_done":          float64(r.JobsDone),
		"jobs_failed":        float64(r.JobsFailed),
		"jobs_resubmitted":   float64(r.Resubmitted),
		"agent_runs":         float64(r.AgentRuns),
		"agent_heals":        float64(r.AgentHeals),
		"escalations":        float64(r.Escalations),
		"open_faults":        float64(r.OpenFaults),
	}
	for _, row := range r.Rows {
		vals["downtime_h/"+string(row.Category)] = row.Downtime.Hours()
		vals["incidents/"+string(row.Category)] = float64(row.Incidents)
	}
	// Per-tier breakdown rows: present exactly when the site is tiered
	// (Report populates Tiers only then), so untiered topologies keep
	// their pre-domain campaign JSON byte-identical.
	for _, row := range r.Tiers {
		vals["downtime_h_tier/"+row.Tier] = row.Downtime.Hours()
		vals["incidents_tier/"+row.Tier] = float64(row.Incidents)
	}
	return vals
}

// overheadMetrics reruns the Figure-3/4 rig for one seed and reports the
// mean monitor footprints plus their BMC:agent ratio.
func overheadMetrics(scenario string, seed uint64) map[string]float64 {
	bmcCPU, agCPU, bmcMem, agMem := sampleOverhead(seed)
	vals := map[string]float64{}
	if scenario != "fig4" {
		vals["bmc_cpu_pct"] = bmcCPU.Mean()
		vals["agent_cpu_pct"] = agCPU.Mean()
		if agCPU.Mean() > 0 {
			vals["cpu_ratio_x"] = bmcCPU.Mean() / agCPU.Mean()
		}
	}
	if scenario != "fig3" {
		vals["bmc_mem_mb"] = bmcMem.Mean()
		vals["agent_mem_mb"] = agMem.Mean()
		if agMem.Mean() > 0 {
			vals["mem_ratio_x"] = bmcMem.Mean() / agMem.Mean()
		}
	}
	return vals
}
