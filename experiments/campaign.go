package experiments

import (
	"fmt"

	qoscluster "repro"
	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Campaign runs the multi-trial variant of a named scenario: `trials`
// consecutive seeds (starting at cfg.Seed) of each matrix cell, fanned
// across `workers` goroutines, folded into mean/min/max/95%-CI aggregates.
// Every trial builds its own site around its own simclock.Sim, so per-seed
// results are identical whatever the worker count.
//
// Names: "before" and "after" sweep one operations mode, "fig2" (the
// default) sweeps both on the same seeds, "fig3"/"fig4"/"overhead" sweep
// the monitor-overhead rig.
func Campaign(name string, cfg Config, trials, workers int) (*campaign.Result, error) {
	if trials <= 0 {
		trials = 8
	}
	m, err := CampaignMatrix(name, cfg, trials)
	if err != nil {
		return nil, err
	}
	return campaign.Run(name, m, workers, RunTrial)
}

// CampaignMatrix translates a scenario name into the campaign axes it
// sweeps.
func CampaignMatrix(name string, cfg Config, trials int) (campaign.Matrix, error) {
	m := campaign.Matrix{
		Seeds: campaign.Seeds(cfg.Seed, trials),
		Sites: []string{cfg.siteName()},
		Days:  cfg.days(),
	}
	switch name {
	case "", "fig2":
		m.Scenarios = []string{"year"}
		m.Modes = []string{"manual", "agents"}
	case "before":
		m.Scenarios = []string{"year"}
		m.Modes = []string{"manual"}
	case "after":
		m.Scenarios = []string{"year"}
		m.Modes = []string{"agents"}
	case "fig3", "fig4", "overhead":
		// "overhead" is one scenario reporting both the CPU and memory
		// series: the rig produces both in a single run, so splitting it
		// into fig3+fig4 cells would simulate everything twice.
		m.Scenarios = []string{name}
	default:
		return campaign.Matrix{}, fmt.Errorf("unknown campaign %q (want before|after|fig2|fig3|fig4|overhead)", name)
	}
	return m, nil
}

func (c Config) siteName() string {
	if c.PaperSite {
		return "paper"
	}
	return "small"
}

func (c Config) days() int {
	if c.Days <= 0 {
		return 365
	}
	return c.Days
}

// RunTrial executes one campaign trial. It is the campaign.RunFunc for
// this package's scenarios and is safe for concurrent use: all state lives
// in the site built here.
func RunTrial(t campaign.Trial) (map[string]float64, error) {
	cfg := Config{Seed: t.Seed, Days: t.Days, PaperSite: t.Site == "paper"}
	switch t.Scenario {
	case "year":
		var mode qoscluster.Mode
		switch t.Mode {
		case "manual", "":
			mode = qoscluster.ModeManual
		case "agents":
			mode = qoscluster.ModeAgents
		default:
			return nil, fmt.Errorf("unknown mode %q", t.Mode)
		}
		site := qoscluster.BuildSite(cfg.site(), qoscluster.Options{Mode: mode})
		site.Run(cfg.span())
		return yearMetrics(site.Report(), cfg.span()), nil
	case "fig3", "fig4", "overhead":
		return overheadMetrics(t.Scenario, t.Seed), nil
	default:
		return nil, fmt.Errorf("unknown campaign scenario %q", t.Scenario)
	}
}

// yearMetrics flattens a year-run report into campaign metrics: the
// Figure-2 category downtimes, the §4 detection/repair latencies, and the
// batch/agent counters.
func yearMetrics(r qoscluster.Report, span simclock.Time) map[string]float64 {
	vals := map[string]float64{
		"downtime_h/total":   r.Total.Hours(),
		"availability_pct":   100 * metrics.Availability(r.Total, span),
		"detect_mean_s":      r.MeanDetect.Duration().Seconds(),
		"detect_p95_s":       r.P95Detect.Duration().Seconds(),
		"detect_day_s":       r.DetectDay.Duration().Seconds(),
		"detect_overnight_s": r.DetectNight.Duration().Seconds(),
		"detect_weekend_s":   r.DetectWkend.Duration().Seconds(),
		"mttr_mean_s":        r.MeanMTTR.Duration().Seconds(),
		"jobs_done":          float64(r.JobsDone),
		"jobs_failed":        float64(r.JobsFailed),
		"jobs_resubmitted":   float64(r.Resubmitted),
		"agent_runs":         float64(r.AgentRuns),
		"agent_heals":        float64(r.AgentHeals),
		"escalations":        float64(r.Escalations),
		"open_faults":        float64(r.OpenFaults),
	}
	for _, row := range r.Rows {
		vals["downtime_h/"+string(row.Category)] = row.Downtime.Hours()
		vals["incidents/"+string(row.Category)] = float64(row.Incidents)
	}
	return vals
}

// overheadMetrics reruns the Figure-3/4 rig for one seed and reports the
// mean monitor footprints plus their BMC:agent ratio.
func overheadMetrics(scenario string, seed uint64) map[string]float64 {
	bmcCPU, agCPU, bmcMem, agMem := sampleOverhead(seed)
	vals := map[string]float64{}
	if scenario != "fig4" {
		vals["bmc_cpu_pct"] = bmcCPU.Mean()
		vals["agent_cpu_pct"] = agCPU.Mean()
		if agCPU.Mean() > 0 {
			vals["cpu_ratio_x"] = bmcCPU.Mean() / agCPU.Mean()
		}
	}
	if scenario != "fig3" {
		vals["bmc_mem_mb"] = bmcMem.Mean()
		vals["agent_mem_mb"] = agMem.Mean()
		if agMem.Mean() > 0 {
			vals["mem_ratio_x"] = bmcMem.Mean() / agMem.Mean()
		}
	}
	return vals
}
