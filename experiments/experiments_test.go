package experiments

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestRunUnknownScenario(t *testing.T) {
	if _, err := Run("bogus", Config{}); err == nil {
		t.Error("unknown scenario should error")
	}
}

func TestPaperReferenceTotals(t *testing.T) {
	var before, after float64
	for _, cat := range metrics.Categories {
		b, ok := PaperFig2Before[cat]
		if !ok {
			t.Errorf("before missing %s", cat)
		}
		a, ok := PaperFig2After[cat]
		if !ok {
			t.Errorf("after missing %s", cat)
		}
		before += b
		after += a
	}
	if before != 550 {
		t.Errorf("paper before total = %v, want 550", before)
	}
	// The paper says "31 hours in total" but its own category list sums
	// to 39; we encode the list as printed.
	if after != 39 {
		t.Errorf("paper after breakdown total = %v, want 39", after)
	}
}

func TestPaperOverheadSeriesShape(t *testing.T) {
	if len(PaperFig3BMC) != 8 || len(PaperFig3Agent) != 8 ||
		len(PaperFig4BMC) != 8 || len(PaperFig4Agent) != 8 {
		t.Fatal("paper series must have 8 half-hourly samples")
	}
	if mean(PaperFig3BMC) < 5*mean(PaperFig3Agent) {
		t.Error("paper's BMC CPU should dwarf the agents'")
	}
	if mean(PaperFig4BMC) < 10*mean(PaperFig4Agent) {
		t.Error("paper's BMC memory should dwarf the agents'")
	}
}

func TestFig3Output(t *testing.T) {
	out, err := Run("fig3", Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 3", "bmc-cpu%", "agent-cpu%", "paper", "overhead ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q", want)
		}
	}
}

func TestFig4Output(t *testing.T) {
	out, err := Run("fig4", Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "agent-MB") {
		t.Errorf("fig4 output malformed:\n%s", out)
	}
}

func TestOverheadReproducesShape(t *testing.T) {
	bmcCPU, agCPU, bmcMem, agMem := sampleOverhead(7)
	if bmcCPU.Len() != 8 || agCPU.Len() != 8 {
		t.Fatal("want 8 samples")
	}
	// Shape targets from the paper: agents an order of magnitude (or
	// more) below the resident monitor on both axes, with a flat memory
	// line at 1.6 MB.
	if ratio := bmcCPU.Mean() / agCPU.Mean(); ratio < 5 || ratio > 40 {
		t.Errorf("cpu overhead ratio = %.1f, want ~10x", ratio)
	}
	if ratio := bmcMem.Mean() / agMem.Mean(); ratio < 10 || ratio > 60 {
		t.Errorf("mem overhead ratio = %.1f, want ~28x", ratio)
	}
	for _, p := range agMem.Points {
		if p.V != 1.6 {
			t.Errorf("agent memory should be flat 1.6 MB, got %v", p.V)
		}
	}
	// Agent CPU near the paper's 0.045% band.
	if agCPU.Mean() < 0.03 || agCPU.Mean() > 0.07 {
		t.Errorf("agent cpu%% = %.3f, want ~0.045", agCPU.Mean())
	}
	// BMC CPU within the paper's observed envelope.
	if bmcCPU.Max() > 1.5 || bmcCPU.Min() < 0.1 {
		t.Errorf("bmc cpu%% out of Figure 3 envelope: [%.2f, %.2f]", bmcCPU.Min(), bmcCPU.Max())
	}
}

func TestFig2ShortRun(t *testing.T) {
	out, err := Run("fig2", Config{Seed: 7, Days: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 2", "mid-crash", "improvement factor", "paper-before"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 output missing %q:\n%s", want, out)
		}
	}
}

// TestLatencyShortRun exercises the campaign-backed latency scenario:
// both modes on the same seeds, per-window detection aggregates, and the
// paper's reference quote under the tables.
func TestLatencyShortRun(t *testing.T) {
	out, err := Run("latency", Config{Seed: 7, Days: 10, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"campaign latency", "mode=manual", "mode=agents",
		"detect_mean_s/day", "detect_p95_s/overnight", "detect_n/weekend",
		"±95% CI", "paper: manual detection ~1h",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("latency output missing %q:\n%s", want, out)
		}
	}
}

// TestMTTRShortRun exercises the campaign-backed mttr scenario: the
// manual repair-time distribution with per-category means.
func TestMTTRShortRun(t *testing.T) {
	out, err := Run("mttr", Config{Seed: 7, Days: 30, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"campaign mttr", "mode=manual", "mttr_mean_h", "mttr_p95_h",
		"mttr_median_h", "incidents_resolved", "paper: a diagnosed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("mttr output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "mode=agents") {
		t.Error("mttr should sweep manual mode only")
	}
}

// TestAblateRescueRun exercises one campaign-backed ablation end to end
// through Run: the with/without axis must land in two groups.
func TestAblateRescueRun(t *testing.T) {
	out, err := Run("ablate-rescue", Config{Seed: 7, Days: 2, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"campaign ablate-rescue", "no-batch-rescue", "jobs_done", "jobs_resubmitted",
		"paper: without DGSPL",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablate-rescue output missing %q:\n%s", want, out)
		}
	}
}

// TestAblationDaysRule pins the explicit ablation span rule shared by
// the campaign and single-run paths: default 90 days, explicit spans up
// to 120 honoured, longer requests capped at 120 (not rewritten to 90).
func TestAblationDaysRule(t *testing.T) {
	cases := []struct{ days, want int }{
		{-1, DefaultAblationDays},
		{0, DefaultAblationDays},
		{1, 1},
		{90, 90},
		{120, MaxAblationDays},
		{121, MaxAblationDays},
		{365, MaxAblationDays},
	}
	for _, c := range cases {
		if got := (Config{Days: c.days}).AblationDays(); got != c.want {
			t.Errorf("AblationDays(%d) = %d, want %d", c.days, got, c.want)
		}
	}
	for _, name := range []string{"ablate-cron", "ablate-rescue"} {
		m, err := CampaignMatrix(name, Config{Days: 365}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if m.Days != MaxAblationDays {
			t.Errorf("%s matrix days = %d, want capped %d", name, m.Days, MaxAblationDays)
		}
	}
	// ablate-net simulates (and records) a third of the ablation span.
	m, err := CampaignMatrix("ablate-net", Config{Days: 365}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Days != MaxAblationDays/3 {
		t.Errorf("ablate-net matrix days = %d, want %d", m.Days, MaxAblationDays/3)
	}
}
