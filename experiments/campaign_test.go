package experiments

import (
	"bytes"
	"testing"

	qoscluster "repro"
	"repro/internal/campaign"
	"repro/internal/simclock"
)

func TestCampaignMatrixNames(t *testing.T) {
	cfg := Config{Seed: 7}
	m, err := CampaignMatrix("fig2", cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trials()) != 8 { // 4 seeds × {manual, agents}
		t.Errorf("fig2 matrix wrong: %+v", m)
	}
	if m.Days != 365 || m.Sites[0] != "small" {
		t.Errorf("defaults wrong: %+v", m)
	}
	if _, err := CampaignMatrix("bogus", cfg, 4); err == nil {
		t.Error("unknown campaign name should error")
	}
}

// TestCampaignBeforeAfterShort runs a real (short) before/after matrix and
// checks the aggregates carry the paper's headline metrics.
func TestCampaignBeforeAfterShort(t *testing.T) {
	res, err := Campaign("fig2", Config{Seed: 7, Days: 2}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 4 || len(res.Groups) != 2 {
		t.Fatalf("want 4 trials in 2 groups, got %d/%d", len(res.Trials), len(res.Groups))
	}
	for _, tr := range res.Trials {
		if tr.Err != "" {
			t.Fatalf("trial failed: %+v", tr)
		}
	}
	for _, g := range res.Groups {
		if g.Seeds != 2 {
			t.Errorf("group %q seeds = %d, want 2", g.Mode, g.Seeds)
		}
		for _, key := range []string{"downtime_h/total", "availability_pct", "detect_mean_s", "jobs_done", "downtime_h/mid-crash"} {
			if _, ok := g.Stats[key]; !ok {
				t.Errorf("group %q missing metric %q", g.Mode, key)
			}
		}
		av := g.Stats["availability_pct"]
		if av.Mean < 0 || av.Mean > 100 {
			t.Errorf("availability out of range: %+v", av)
		}
	}
	if res.Groups[0].Mode != "manual" || res.Groups[1].Mode != "agents" {
		t.Errorf("group order wrong: %+v", res.Groups)
	}
}

// TestCampaignDeterministicAcrossWorkers is the end-to-end determinism
// gate on real simulations: the same seed set must serialise
// byte-identically at one worker and at eight. The latency and
// ablate-cron campaigns are in the gate because their trials exercise
// the option axes (per-cell cron periods) and the per-window metric
// extraction.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		trials int
	}{
		{"before", Config{Seed: 11, Days: 2}, 3},
		{"latency", Config{Seed: 11, Days: 2}, 2},
		{"ablate-cron", Config{Seed: 11, Days: 2,
			CronPeriods: []simclock.Time{5 * simclock.Minute, 15 * simclock.Minute}}, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			run := func(workers int) []byte {
				res, err := Campaign(c.name, c.cfg, c.trials, workers)
				if err != nil {
					t.Fatal(err)
				}
				js, err := res.JSON()
				if err != nil {
					t.Fatal(err)
				}
				return js
			}
			serial := run(1)
			parallel := run(8)
			if !bytes.Equal(serial, parallel) {
				t.Errorf("campaign JSON differs between -workers 1 and -workers 8:\n%s\n----\n%s", serial, parallel)
			}
		})
	}
}

// TestCampaignMatrixOptionAxes pins the axes each new scenario sweeps.
func TestCampaignMatrixOptionAxes(t *testing.T) {
	cfg := Config{Seed: 7}

	m, err := CampaignMatrix("ablate-cron", cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.CronPeriods) != 4 || m.CronPeriods[0] != simclock.Minute || m.CronPeriods[3] != 60*simclock.Minute {
		t.Errorf("ablate-cron default axis wrong: %v", m.CronPeriods)
	}
	if m.Days != DefaultAblationDays || len(m.Trials()) != 12 { // 4 periods × 3 seeds
		t.Errorf("ablate-cron matrix wrong: days=%d trials=%d", m.Days, len(m.Trials()))
	}
	cfg.CronPeriods = []simclock.Time{30 * simclock.Minute}
	if m, _ = CampaignMatrix("ablate-cron", cfg, 3); len(m.CronPeriods) != 1 || m.CronPeriods[0] != 30*simclock.Minute {
		t.Errorf("CronPeriods override ignored: %v", m.CronPeriods)
	}

	if m, _ = CampaignMatrix("ablate-rescue", Config{}, 2); len(m.NoBatchRescue) != 2 || m.NoBatchRescue[0] || !m.NoBatchRescue[1] {
		t.Errorf("ablate-rescue axis wrong: %v", m.NoBatchRescue)
	}
	if m, _ = CampaignMatrix("ablate-net", Config{}, 2); len(m.DisablePrivateNet) != 2 {
		t.Errorf("ablate-net axis wrong: %v", m.DisablePrivateNet)
	}
	if m, _ = CampaignMatrix("latency", Config{}, 2); len(m.Modes) != 2 || m.Days != 365 {
		t.Errorf("latency matrix wrong: %+v", m)
	}
	if m, _ = CampaignMatrix("mttr", Config{}, 2); len(m.Modes) != 1 || m.Modes[0] != "manual" {
		t.Errorf("mttr matrix wrong: %+v", m)
	}
	if m, _ = CampaignMatrix("ablate-resident", Config{}, 2); m.Days != 0 {
		t.Errorf("ablate-resident should carry no Days coordinate: %+v", m)
	}
}

// TestTrialOptions pins how a trial's coordinates become
// qoscluster.Options, including the opaque per-cell override hook.
func TestTrialOptions(t *testing.T) {
	o, err := trialOptions(campaign.Trial{
		Mode: "agents", AgentSet: "full", CronPeriod: 15 * simclock.Minute,
		NoBatchRescue: true, DisablePrivateNet: true, BaselineMonitors: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Mode != qoscluster.ModeAgents || o.AgentSet != qoscluster.AgentsFull ||
		o.CronPeriod != 15*simclock.Minute || !o.NoBatchRescue || !o.DisablePrivateNet || !o.BaselineMonitors {
		t.Errorf("options not mapped from axes: %+v", o)
	}

	if _, err := trialOptions(campaign.Trial{Mode: "bogus"}); err == nil {
		t.Error("unknown mode should error")
	}
	if _, err := trialOptions(campaign.Trial{AgentSet: "bogus"}); err == nil {
		t.Error("unknown agent set should error")
	}
	if _, err := trialOptions(campaign.Trial{Overrides: "unregistered"}); err == nil {
		t.Error("unknown override should error")
	}

	RegisterOverride("test-cron-30m", func(o *qoscluster.Options) {
		o.CronPeriod = 30 * simclock.Minute
	})
	defer RegisterOverride("test-cron-30m", nil)
	o, err = trialOptions(campaign.Trial{Mode: "agents", CronPeriod: simclock.Minute, Overrides: "test-cron-30m"})
	if err != nil {
		t.Fatal(err)
	}
	if o.CronPeriod != 30*simclock.Minute {
		t.Errorf("override should run after the axes: CronPeriod = %v", o.CronPeriod)
	}
	if _, err := trialOptions(campaign.Trial{Overrides: "test-cron-30m"}); err != nil {
		t.Errorf("registered override rejected: %v", err)
	}
	RegisterOverride("test-cron-30m", nil)
	if _, err := trialOptions(campaign.Trial{Overrides: "test-cron-30m"}); err == nil {
		t.Error("deregistered override should error")
	}
}

// TestCampaignAblateNetShort runs the private-network ablation for real
// and checks the axis splits traffic the way the paper says.
func TestCampaignAblateNetShort(t *testing.T) {
	res, err := Campaign("ablate-net", Config{Seed: 7, Days: 3}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("want with/without groups, got %d", len(res.Groups))
	}
	withNet, without := res.Groups[0], res.Groups[1]
	if withNet.DisablePrivateNet || !without.DisablePrivateNet {
		t.Fatalf("group axis order wrong: %+v / %+v", withNet, without)
	}
	if withNet.Stats["private_lan_mb"].Mean <= 0 {
		t.Errorf("private network carried no traffic: %+v", withNet.Stats)
	}
	if without.Stats["private_lan_mb"].Mean != 0 {
		t.Errorf("disabled private network still carried traffic: %+v", without.Stats)
	}
	if without.Stats["public_lan_mb"].Mean <= withNet.Stats["public_lan_mb"].Mean {
		t.Errorf("public LAN should carry more without the private net: with=%.3f without=%.3f",
			withNet.Stats["public_lan_mb"].Mean, without.Stats["public_lan_mb"].Mean)
	}
}

// TestCampaignResident checks the duty-cycle ablation aggregates.
func TestCampaignResident(t *testing.T) {
	res, err := Campaign("ablate-resident", Config{Seed: 7}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	for _, key := range []string{"bmc_cpu_pct", "agent_cpu_pct", "resident_cpu_pct",
		"bmc_mem_mb", "agent_mem_mb", "resident_mem_mb"} {
		if _, ok := g.Stats[key]; !ok {
			t.Errorf("ablate-resident missing %q", key)
		}
	}
	if g.Stats["resident_cpu_pct"].Mean <= g.Stats["agent_cpu_pct"].Mean {
		t.Error("a resident suite must cost more CPU than the cron-awakened one")
	}
	if g.Stats["resident_mem_mb"].Mean <= g.Stats["agent_mem_mb"].Mean {
		t.Error("a resident suite must hold more memory than the cron-awakened one")
	}
}

// TestRunTrialRejectsBadCoordinates covers the error paths campaigns
// surface as failed trials.
func TestRunTrialRejectsBadCoordinates(t *testing.T) {
	if _, err := RunTrial(campaign.Trial{Scenario: "bogus"}); err == nil {
		t.Error("unknown scenario should error")
	}
	if _, err := RunTrial(campaign.Trial{Scenario: "year", Mode: "bogus", Days: 1}); err == nil {
		t.Error("unknown mode should error")
	}
	if _, err := RunTrial(campaign.Trial{Scenario: "latency", Overrides: "nope", Days: 1}); err == nil {
		t.Error("unregistered override should error")
	}
}

// TestCampaignOverhead sweeps the Figure-3 rig across seeds.
func TestCampaignOverhead(t *testing.T) {
	res, err := Campaign("fig3", Config{Seed: 7}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	ratio, ok := g.Stats["cpu_ratio_x"]
	if !ok || ratio.N != 2 {
		t.Fatalf("cpu_ratio_x missing: %+v", g)
	}
	if ratio.Mean < 5 || ratio.Mean > 40 {
		t.Errorf("bmc/agent cpu ratio = %.1f, want ~10x", ratio.Mean)
	}
	if _, ok := g.Stats["bmc_mem_mb"]; ok {
		t.Error("fig3 should not report memory metrics")
	}

	// "overhead" is one scenario reporting both series from a single rig
	// run per seed.
	res, err = Campaign("overhead", Config{Seed: 7}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 2 {
		t.Fatalf("overhead should be one scenario (2 trials), got %d", len(res.Trials))
	}
	g = res.Groups[0]
	for _, key := range []string{"cpu_ratio_x", "mem_ratio_x", "bmc_cpu_pct", "bmc_mem_mb"} {
		if _, ok := g.Stats[key]; !ok {
			t.Errorf("overhead missing %q", key)
		}
	}
}
