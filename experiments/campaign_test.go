package experiments

import (
	"bytes"
	"testing"
)

func TestCampaignMatrixNames(t *testing.T) {
	cfg := Config{Seed: 7}
	m, err := CampaignMatrix("fig2", cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trials()) != 8 { // 4 seeds × {manual, agents}
		t.Errorf("fig2 matrix wrong: %+v", m)
	}
	if m.Days != 365 || m.Sites[0] != "small" {
		t.Errorf("defaults wrong: %+v", m)
	}
	if _, err := CampaignMatrix("bogus", cfg, 4); err == nil {
		t.Error("unknown campaign name should error")
	}
}

// TestCampaignBeforeAfterShort runs a real (short) before/after matrix and
// checks the aggregates carry the paper's headline metrics.
func TestCampaignBeforeAfterShort(t *testing.T) {
	res, err := Campaign("fig2", Config{Seed: 7, Days: 2}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 4 || len(res.Groups) != 2 {
		t.Fatalf("want 4 trials in 2 groups, got %d/%d", len(res.Trials), len(res.Groups))
	}
	for _, tr := range res.Trials {
		if tr.Err != "" {
			t.Fatalf("trial failed: %+v", tr)
		}
	}
	for _, g := range res.Groups {
		if g.Seeds != 2 {
			t.Errorf("group %q seeds = %d, want 2", g.Mode, g.Seeds)
		}
		for _, key := range []string{"downtime_h/total", "availability_pct", "detect_mean_s", "jobs_done", "downtime_h/mid-crash"} {
			if _, ok := g.Stats[key]; !ok {
				t.Errorf("group %q missing metric %q", g.Mode, key)
			}
		}
		av := g.Stats["availability_pct"]
		if av.Mean < 0 || av.Mean > 100 {
			t.Errorf("availability out of range: %+v", av)
		}
	}
	if res.Groups[0].Mode != "manual" || res.Groups[1].Mode != "agents" {
		t.Errorf("group order wrong: %+v", res.Groups)
	}
}

// TestCampaignDeterministicAcrossWorkers is the end-to-end determinism
// gate on real simulations: the same seed set must serialise
// byte-identically at one worker and at eight.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		res, err := Campaign("before", Config{Seed: 11, Days: 2}, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("campaign JSON differs between -workers 1 and -workers 8:\n%s\n----\n%s", serial, parallel)
	}
}

// TestCampaignOverhead sweeps the Figure-3 rig across seeds.
func TestCampaignOverhead(t *testing.T) {
	res, err := Campaign("fig3", Config{Seed: 7}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	ratio, ok := g.Stats["cpu_ratio_x"]
	if !ok || ratio.N != 2 {
		t.Fatalf("cpu_ratio_x missing: %+v", g)
	}
	if ratio.Mean < 5 || ratio.Mean > 40 {
		t.Errorf("bmc/agent cpu ratio = %.1f, want ~10x", ratio.Mean)
	}
	if _, ok := g.Stats["bmc_mem_mb"]; ok {
		t.Error("fig3 should not report memory metrics")
	}

	// "overhead" is one scenario reporting both series from a single rig
	// run per seed.
	res, err = Campaign("overhead", Config{Seed: 7}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 2 {
		t.Fatalf("overhead should be one scenario (2 trials), got %d", len(res.Trials))
	}
	g = res.Groups[0]
	for _, key := range []string{"cpu_ratio_x", "mem_ratio_x", "bmc_cpu_pct", "bmc_mem_mb"} {
		if _, ok := g.Stats[key]; !ok {
			t.Errorf("overhead missing %q", key)
		}
	}
}
