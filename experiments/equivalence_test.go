package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/campaign"
)

// TestWheelResetEquivalence is the optimisation gate for the fast-path
// event engine: for every canned site topology and both operation modes,
// the campaign JSON produced by the optimised path — coalesced cron wheel
// plus pooled Site.Reset reuse — must be byte-identical to the seed path,
// which builds a fresh site per trial and schedules every agent on its own
// heap ticker. Three seeds per cell so the pooled path exercises the
// Reset → Run → Reset chain, and the pooled run is repeated with one and
// eight workers so reuse cannot depend on scheduling.
//
// If this test fails, the engine optimisations have drifted a reproduced
// number; fix the engine, do not regenerate expectations.
func TestWheelResetEquivalence(t *testing.T) {
	for _, site := range []string{"paper", "small", "webfarm", "computefarm"} {
		for _, mode := range []string{"manual", "agents"} {
			t.Run(fmt.Sprintf("%s-%s", site, mode), func(t *testing.T) {
				t.Parallel()
				if testing.Short() && site == "paper" {
					t.Skip("paper site × 3 seeds × 3 runs is the long cell; run without -short for the full gate")
				}
				m := campaign.Matrix{
					Seeds:     campaign.Seeds(7, 3),
					Scenarios: []string{"year"},
					Sites:     []string{site},
					Modes:     []string{mode},
					Days:      1,
				}
				ref, err := campaign.Run("equivalence", m, 1, ReferenceRunTrial)
				if err != nil {
					t.Fatalf("reference campaign: %v", err)
				}
				if errs := ref.Errs(); len(errs) > 0 {
					t.Fatalf("reference campaign had %d failed trials; first: %s", len(errs), errs[0].Err)
				}
				want, err := ref.JSON()
				if err != nil {
					t.Fatalf("reference JSON: %v", err)
				}
				for _, workers := range []int{1, 8} {
					res, err := campaign.Run("equivalence", m, workers, NewPooledRunFunc())
					if err != nil {
						t.Fatalf("pooled campaign (%d workers): %v", workers, err)
					}
					got, err := res.JSON()
					if err != nil {
						t.Fatalf("pooled JSON (%d workers): %v", workers, err)
					}
					if !bytes.Equal(want, got) {
						t.Errorf("wheel+Reset path diverged from seed path (site %s, mode %s, %d workers):\n%s",
							site, mode, workers, firstDiff(want, got))
					}
				}
			})
		}
	}
}

// firstDiff renders the first divergent region of two JSON documents.
func firstDiff(a, b []byte) string {
	n := min(len(a), len(b))
	at := n
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			at = i
			break
		}
	}
	if at == n && len(a) == len(b) {
		return "(equal)"
	}
	lo := max(at-120, 0)
	ahi := min(at+120, len(a))
	bhi := min(at+120, len(b))
	return fmt.Sprintf("first divergence at byte %d\nseed:  ...%s...\nwheel: ...%s...", at, a[lo:ahi], b[lo:bhi])
}
