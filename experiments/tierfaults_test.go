package experiments

import (
	"bytes"
	"strings"
	"testing"

	qoscluster "repro"
)

func TestParseTierFaultScale(t *testing.T) {
	good, err := ParseTierFaultScale(" web=2, db=0.5 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(good) != 2 || good["web"] != 2 || good["db"] != 0.5 {
		t.Errorf("parsed %v", good)
	}
	if m, err := ParseTierFaultScale(""); err != nil || m != nil {
		t.Errorf("empty spec: %v, %v", m, err)
	}
	for _, bad := range []string{"web", "=2", "web=", "web=x", "web=-1", "web=2,web=3", ","} {
		if _, err := ParseTierFaultScale(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestTierFaultsCampaignAxis runs a real two-cell campaign over the
// tiered webfarm — default weights vs the web tier at 4x — and checks the
// cells aggregate separately, carry per-tier metric rows, render with the
// significance column, and stay byte-identical across worker counts.
func TestTierFaultsCampaignAxis(t *testing.T) {
	t.Parallel()
	cfg := Config{Seed: 7, Days: 5, Sites: []string{"webfarm"}, TierFaultScales: []string{"", "web=4"}}
	m, err := CampaignMatrix("before", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.TierFaults) != 2 {
		t.Fatalf("matrix tier-faults axis = %v", m.TierFaults)
	}
	res1, err := Campaign("before", cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if errs := res1.Errs(); len(errs) > 0 {
		t.Fatalf("%d failed trials; first: %s", len(errs), errs[0].Err)
	}
	if len(res1.Groups) != 2 || res1.Groups[1].TierFaults != "web=4" {
		t.Fatalf("groups wrong: %+v", res1.Groups)
	}
	for _, g := range res1.Groups {
		if _, ok := g.Stats["incidents_tier/web"]; !ok {
			t.Errorf("group %q missing per-tier metric rows", qoscluster.GroupLabel(g))
		}
	}
	out := qoscluster.FormatCampaign(res1)
	if !strings.Contains(out, "tierfaults=web=4") || !strings.Contains(out, "p-vs-first") {
		t.Errorf("FormatCampaign missing axis label or significance column:\n%s", out)
	}

	res8, err := Campaign("before", cfg, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	js1, err1 := res1.JSON()
	js8, err8 := res8.JSON()
	if err1 != nil || err8 != nil {
		t.Fatal(err1, err8)
	}
	if !bytes.Equal(js1, js8) {
		t.Errorf("tier-faults campaign JSON differs between 1 and 8 workers:\n%s", firstDiff(js1, js8))
	}
}

// TestTierFaultsRejectedForRigScenarios: the axis has no meaning for the
// fixed one-host overhead rigs.
func TestTierFaultsRejectedForRigScenarios(t *testing.T) {
	cfg := Config{Seed: 7, TierFaultScales: []string{"web=2"}}
	if _, err := CampaignMatrix("overhead", cfg, 2); err == nil ||
		!strings.Contains(err.Error(), "tierfaults") {
		t.Errorf("rig scenario accepted the tier-faults axis: %v", err)
	}
	cfg.TierFaultScales = []string{"web=bogus"}
	if _, err := CampaignMatrix("before", cfg, 2); err == nil {
		t.Error("malformed tier-faults spec passed matrix validation")
	}
}

// TestTierFaultsDuplicateCellsRejected: duplicate axis cells would fold
// into one aggregation group (same group key), silently doubling its
// seeds; the matrix must reject them up front.
func TestTierFaultsDuplicateCellsRejected(t *testing.T) {
	cfg := Config{Seed: 7, Sites: []string{"webfarm"}, TierFaultScales: []string{"", "web=2", ""}}
	if _, err := CampaignMatrix("before", cfg, 2); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate tier-faults cells accepted: %v", err)
	}
}

// TestTierFaultsUnknownTierRejected: a -tierfaults cell naming a tier
// that no selected site's topology declares must fail at matrix-build
// time with a contextual error — before, it silently weighted nothing
// until NewSite rejected it mid-campaign.
func TestTierFaultsUnknownTierRejected(t *testing.T) {
	cfg := Config{Seed: 7, Sites: []string{"small", "webfarm"}, TierFaultScales: []string{"", "bogus=4"}}
	_, err := CampaignMatrix("before", cfg, 2)
	if err == nil {
		t.Fatal("unknown tier passed matrix validation")
	}
	for _, want := range []string{`"bogus"`, "small", "webfarm", "no selected site"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestTierFaultsScopedToEachSite: in a multi-site sweep a tier only some
// sites declare is legal — trials scope the spec to their own topology —
// and the campaign completes with no failed trials on either site.
func TestTierFaultsScopedToEachSite(t *testing.T) {
	t.Parallel()
	// webfarm declares "web"; small does not (its tiers are db/tx/fe),
	// so the web=4 cell must scale webfarm and no-op on small.
	cfg := Config{Seed: 7, Days: 3, Sites: []string{"small", "webfarm"}, TierFaultScales: []string{"web=4"}}
	if _, err := CampaignMatrix("before", cfg, 1); err != nil {
		t.Fatalf("partially-present tier rejected: %v", err)
	}
	res, err := Campaign("before", cfg, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if errs := res.Errs(); len(errs) > 0 {
		t.Fatalf("%d failed trials; first: %s", len(errs), errs[0].Err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("want one group per site, got %+v", res.Groups)
	}
}
