// Package lsf simulates the Load Sharing Facility batch system the paper's
// site used to schedule analyst jobs against database servers (§4): job
// queues, a finite number of scheduled jobs per database server, manual
// server selection by users through the application GUI, and the
// bsub/bjobs/brequeue-style operations the agents drive through "pre-
// scripted LSF specific commands".
package lsf

import (
	"fmt"
	"sort"

	"repro/internal/simclock"
	"repro/internal/svc"
)

// JobState is a job's lifecycle state.
type JobState int

// Job states.
const (
	JobPending JobState = iota
	JobRunning
	JobDone
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobPending:
		return "PEND"
	case JobRunning:
		return "RUN"
	case JobDone:
		return "DONE"
	case JobFailed:
		return "EXIT"
	}
	return "?"
}

// Job is one batch job.
type Job struct {
	ID   int
	Name string
	User string

	// Resource shape while running.
	CPUDemand float64
	MemMB     float64
	DiskLoad  float64
	// Work is the run duration on an idle reference (power 1.0) server;
	// faster servers finish sooner, loaded servers slower.
	Work simclock.Time

	// Server is where the job is or was last placed (service name).
	Server string
	// WantServer is the user's manual choice; empty means scheduler picks.
	WantServer string

	State       JobState
	SubmittedAt simclock.Time
	StartedAt   simclock.Time
	FinishedAt  simclock.Time
	Attempts    int
	FailReason  string

	pid      int
	finishEv *simclock.Event
}

func (j *Job) String() string {
	return fmt.Sprintf("job %d %s user=%s server=%s state=%s attempts=%d", j.ID, j.Name, j.User, j.Server, j.State, j.Attempts)
}

// Cluster is the LSF control plane over a set of database services. Each
// database service is one execution target; SlotLimit caps concurrently
// scheduled (running) jobs per server, as the site configured.
type Cluster struct {
	sim     *simclock.Sim
	dir     *svc.Directory
	limits  map[string]int // service name -> slot limit
	jobs    map[int]*Job
	order   []int // job IDs in submit order
	nextID  int
	running map[string]map[int]*Job // service name -> running jobs
	pending []*Job
	targets []string // sorted execution-target names (the limits keys)

	// OnJobFailed, if set, is called whenever a running job fails (the
	// agents' batch watcher hooks this to resubmit from the DGSPL).
	OnJobFailed func(now simclock.Time, j *Job)
	// OnJobDone, if set, is called when a job completes.
	OnJobDone func(now simclock.Time, j *Job)

	// Completed/failed counters for reports.
	Completed int
	Failed    int
}

// NewCluster returns an LSF cluster scheduling onto dir's services.
func NewCluster(sim *simclock.Sim, dir *svc.Directory) *Cluster {
	return &Cluster{
		sim: sim, dir: dir,
		limits:  make(map[string]int),
		jobs:    make(map[int]*Job),
		running: make(map[string]map[int]*Job),
	}
}

// SetSlotLimit configures the job submission limit for a database server.
func (c *Cluster) SetSlotLimit(service string, limit int) {
	if _, known := c.limits[service]; !known {
		c.targets = append(c.targets, service)
		sort.Strings(c.targets)
	}
	c.limits[service] = limit
}

// Reset returns the cluster to the state NewCluster leaves it in — no
// jobs, zeroed counters, unhooked callbacks — while keeping the slot-limit
// configuration (it is derived from the static site topology) and map
// storage. Site reuse calls this between trials.
func (c *Cluster) Reset() {
	clear(c.jobs)
	c.order = c.order[:0]
	c.nextID = 0
	clear(c.running)
	c.pending = nil
	c.OnJobFailed = nil
	c.OnJobDone = nil
	c.Completed = 0
	c.Failed = 0
}

// SlotLimit reports the limit for a service (0 = not an execution target).
func (c *Cluster) SlotLimit(service string) int { return c.limits[service] }

// RunningOn reports the number of running jobs on a service.
func (c *Cluster) RunningOn(service string) int { return len(c.running[service]) }

// WaitingFor reports pending jobs that want the given server.
func (c *Cluster) WaitingFor(service string) int {
	n := 0
	for _, j := range c.pending {
		if j.WantServer == service {
			n++
		}
	}
	return n
}

// PendingCount reports total queued jobs.
func (c *Cluster) PendingCount() int { return len(c.pending) }

// Job looks a job up by ID (bjobs), or nil.
func (c *Cluster) Job(id int) *Job { return c.jobs[id] }

// Jobs returns all jobs in submission order.
func (c *Cluster) Jobs() []*Job {
	out := make([]*Job, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobs[id])
	}
	return out
}

// Submit queues a job (bsub). wantServer may be empty for scheduler
// placement; users at the paper's site mostly picked servers by hand.
func (c *Cluster) Submit(name, user, wantServer string, cpu, memMB, disk float64, work simclock.Time) *Job {
	c.nextID++
	j := &Job{
		ID: c.nextID, Name: name, User: user, WantServer: wantServer,
		CPUDemand: cpu, MemMB: memMB, DiskLoad: disk, Work: work,
		State: JobPending, SubmittedAt: c.sim.Now(),
	}
	c.jobs[j.ID] = j
	c.order = append(c.order, j.ID)
	c.pending = append(c.pending, j)
	c.Dispatch()
	return j
}

// eligible reports whether a service can accept one more job now.
func (c *Cluster) eligible(name string) bool {
	limit, isTarget := c.limits[name]
	if !isTarget {
		return false
	}
	s := c.dir.Get(name)
	if s == nil || !s.Running() {
		return false
	}
	return len(c.running[name]) < limit
}

// pickServer is the default placement when the user expressed no choice:
// first eligible target in name order (plain LSF has no knowledge of the
// DGSPL; the intelliagent path supplies its own choice via Requeue).
func (c *Cluster) pickServer() string {
	for _, n := range c.targets {
		if c.eligible(n) {
			return n
		}
	}
	return ""
}

// Dispatch starts every pending job that can be placed (mbatchd cycle).
func (c *Cluster) Dispatch() {
	var still []*Job
	for _, j := range c.pending {
		target := j.WantServer
		if target == "" {
			target = c.pickServer()
		}
		if target == "" || !c.eligible(target) {
			still = append(still, j)
			continue
		}
		c.start(j, target)
	}
	c.pending = still
}

// start places a running job on the named database service.
func (c *Cluster) start(j *Job, service string) {
	s := c.dir.Get(service)
	host := s.Host
	p := host.Spawn("lsf_job_"+j.Name, j.User, fmt.Sprintf("jobid=%d", j.ID), j.CPUDemand, j.MemMB)
	if p == nil {
		c.fail(j, "exec host down at dispatch")
		return
	}
	host.AddDiskActivity(j.DiskLoad)
	s.Connect()
	j.State = JobRunning
	j.Server = service
	j.StartedAt = c.sim.Now()
	j.Attempts++
	j.pid = p.PID
	if c.running[service] == nil {
		c.running[service] = make(map[int]*Job)
	}
	c.running[service][j.ID] = j

	// Completion time scales with server power and current contention.
	slow := 1.0 / host.Model.CPUSpeed
	if u := host.CPUUtilisation(); u > 0.7 {
		slow *= 1 + 3*(u-0.7) // contention tax up to 1.9x at saturation
	}
	dur := simclock.Time(float64(j.Work) * slow)
	j.finishEv = c.sim.After(dur, fmt.Sprintf("lsf-finish:%d", j.ID), func(now simclock.Time) {
		c.finish(j, now)
	})
}

// finish completes a running job if its database survived the run.
func (c *Cluster) finish(j *Job, now simclock.Time) {
	if j.State != JobRunning {
		return
	}
	s := c.dir.Get(j.Server)
	if s == nil || !s.Running() {
		c.failRunning(j, "database unavailable at completion")
		return
	}
	c.release(j)
	j.State = JobDone
	j.FinishedAt = now
	c.Completed++
	if c.OnJobDone != nil {
		c.OnJobDone(now, j)
	}
	c.Dispatch()
}

// release frees the job's slot and host resources.
func (c *Cluster) release(j *Job) {
	if m := c.running[j.Server]; m != nil {
		delete(m, j.ID)
	}
	if s := c.dir.Get(j.Server); s != nil {
		s.Host.Kill(j.pid)
		s.Host.AddDiskActivity(-j.DiskLoad)
		s.Disconnect()
	}
	j.pid = 0
	if j.finishEv != nil {
		j.finishEv.Cancel()
		j.finishEv = nil
	}
}

// fail marks a pending/unstarted job failed.
func (c *Cluster) fail(j *Job, reason string) {
	j.State = JobFailed
	j.FailReason = reason
	j.FinishedAt = c.sim.Now()
	c.Failed++
	if c.OnJobFailed != nil {
		c.OnJobFailed(c.sim.Now(), j)
	}
}

// failRunning releases and fails a running job.
func (c *Cluster) failRunning(j *Job, reason string) {
	c.release(j)
	c.fail(j, reason)
}

// FailJobsOn fails every running job on the named service — what happens
// when a database crashes in the middle of its jobs. It returns the failed
// jobs.
func (c *Cluster) FailJobsOn(service, reason string) []*Job {
	m := c.running[service]
	out := make([]*Job, 0, len(m))
	for _, j := range m {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	for _, j := range out {
		c.failRunning(j, reason)
	}
	return out
}

// Requeue resubmits a failed job to a specific server (brequeue -m), the
// operation the intelliagents drive from the DGSPL shortlist. An empty
// server re-enters the default queue.
func (c *Cluster) Requeue(id int, server string) error {
	j := c.jobs[id]
	if j == nil {
		return fmt.Errorf("lsf: no such job %d", id)
	}
	if j.State != JobFailed {
		return fmt.Errorf("lsf: job %d is %s, not EXIT", id, j.State)
	}
	j.State = JobPending
	j.WantServer = server
	j.FailReason = ""
	c.pending = append(c.pending, j)
	c.Dispatch()
	return nil
}

// TimeLeft reports the remaining run time of a running job (the agents
// check "the time batch jobs had left to complete").
func (c *Cluster) TimeLeft(id int) (simclock.Time, bool) {
	j := c.jobs[id]
	if j == nil || j.State != JobRunning || j.finishEv == nil {
		return 0, false
	}
	return j.finishEv.At() - c.sim.Now(), true
}

// CountByState tallies jobs per state (bjobs summary).
func (c *Cluster) CountByState() map[JobState]int {
	out := make(map[JobState]int)
	for _, j := range c.jobs {
		out[j.State]++
	}
	return out
}
