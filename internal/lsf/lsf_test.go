package lsf

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// rig builds an LSF cluster over n running Oracle databases on E4500s.
type rig struct {
	sim *simclock.Sim
	dir *svc.Directory
	lsf *Cluster
	dbs []*svc.Service
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	sim := simclock.New(7)
	dir := svc.NewDirectory()
	r := &rig{sim: sim, dir: dir}
	for i := 0; i < n; i++ {
		name := string(rune('A' + i))
		h := cluster.NewHost(sim, "db"+name, "10.0.0."+name, cluster.ModelE4500, cluster.RoleDatabase, "london", "UK")
		s, err := svc.New(sim, svc.OracleSpec("ORA-"+name, 1521), h)
		if err != nil {
			t.Fatal(err)
		}
		dir.Add(s)
		s.Start(nil)
		r.dbs = append(r.dbs, s)
	}
	sim.RunUntil(10 * simclock.Minute)
	r.lsf = NewCluster(sim, dir)
	for _, s := range r.dbs {
		r.lsf.SetSlotLimit(s.Spec.Name, 4)
	}
	return r
}

func TestSubmitAndComplete(t *testing.T) {
	r := newRig(t, 1)
	j := r.lsf.Submit("risk-calc", "analyst1", "ORA-A", 1, 256, 0.2, simclock.Hour)
	if j.State != JobRunning {
		t.Fatalf("job should start immediately: %s", j.State)
	}
	if r.lsf.RunningOn("ORA-A") != 1 {
		t.Error("slot accounting broken")
	}
	host := r.dbs[0].Host
	if len(host.PGrep("lsf_job_risk-calc")) != 1 {
		t.Error("job process missing from host")
	}
	left, ok := r.lsf.TimeLeft(j.ID)
	if !ok || left <= 0 {
		t.Errorf("TimeLeft = %v %v", left, ok)
	}
	r.sim.RunUntil(r.sim.Now() + 3*simclock.Hour)
	if j.State != JobDone {
		t.Fatalf("job state = %s (%s)", j.State, j.FailReason)
	}
	if r.lsf.Completed != 1 || r.lsf.RunningOn("ORA-A") != 0 {
		t.Error("completion accounting broken")
	}
	if len(host.PGrep("lsf_job_risk-calc")) != 0 {
		t.Error("job process not reaped")
	}
	if r.dbs[0].Connections() != 0 {
		t.Error("job connection not released")
	}
}

func TestSlotLimitQueuesJobs(t *testing.T) {
	r := newRig(t, 1)
	for i := 0; i < 6; i++ {
		r.lsf.Submit("j", "u", "ORA-A", 0.5, 64, 0, simclock.Hour)
	}
	if r.lsf.RunningOn("ORA-A") != 4 {
		t.Errorf("running = %d, want 4 (slot limit)", r.lsf.RunningOn("ORA-A"))
	}
	if r.lsf.PendingCount() != 2 || r.lsf.WaitingFor("ORA-A") != 2 {
		t.Errorf("pending = %d waiting = %d", r.lsf.PendingCount(), r.lsf.WaitingFor("ORA-A"))
	}
	// As jobs finish, the queue drains.
	r.sim.RunUntil(r.sim.Now() + 8*simclock.Hour)
	if r.lsf.Completed != 6 || r.lsf.PendingCount() != 0 {
		t.Errorf("completed = %d pending = %d", r.lsf.Completed, r.lsf.PendingCount())
	}
}

func TestSchedulerPlacementWhenNoChoice(t *testing.T) {
	r := newRig(t, 2)
	j := r.lsf.Submit("auto", "u", "", 0.5, 64, 0, simclock.Hour)
	if j.State != JobRunning || j.Server == "" {
		t.Fatalf("auto placement failed: %+v", j)
	}
}

func TestCrashMidJobFailsJobs(t *testing.T) {
	r := newRig(t, 1)
	j1 := r.lsf.Submit("batch1", "u", "ORA-A", 0.5, 64, 0.1, 4*simclock.Hour)
	j2 := r.lsf.Submit("batch2", "u", "ORA-A", 0.5, 64, 0.1, 4*simclock.Hour)
	var failed []*Job
	r.lsf.OnJobFailed = func(now simclock.Time, j *Job) { failed = append(failed, j) }
	r.sim.RunUntil(r.sim.Now() + simclock.Hour)
	r.dbs[0].Crash()
	got := r.lsf.FailJobsOn("ORA-A", "database crashed mid-job")
	if len(got) != 2 || got[0].ID != j1.ID || got[1].ID != j2.ID {
		t.Fatalf("failed jobs = %v", got)
	}
	if j1.State != JobFailed || j2.State != JobFailed {
		t.Error("states not EXIT")
	}
	if len(failed) != 2 {
		t.Errorf("OnJobFailed fired %d times", len(failed))
	}
	if r.lsf.Failed != 2 {
		t.Errorf("Failed = %d", r.lsf.Failed)
	}
	if r.dbs[0].Host.NProcs() != 0 {
		t.Error("job procs should be gone after host crash cleanup")
	}
}

func TestJobFailsIfDBDownAtCompletion(t *testing.T) {
	r := newRig(t, 1)
	j := r.lsf.Submit("batch", "u", "ORA-A", 0.5, 64, 0, simclock.Hour)
	// Crash the database but never call FailJobsOn: the finish event
	// itself must notice.
	r.sim.After(30*simclock.Minute, "crash", func(simclock.Time) { r.dbs[0].Crash() })
	r.sim.RunUntil(r.sim.Now() + 3*simclock.Hour)
	if j.State != JobFailed {
		t.Errorf("job state = %s", j.State)
	}
}

func TestRequeueToAnotherServer(t *testing.T) {
	r := newRig(t, 2)
	j := r.lsf.Submit("batch", "u", "ORA-A", 0.5, 64, 0, simclock.Hour)
	r.dbs[0].Crash()
	r.lsf.FailJobsOn("ORA-A", "crash")
	if err := r.lsf.Requeue(j.ID, "ORA-B"); err != nil {
		t.Fatal(err)
	}
	if j.State != JobRunning || j.Server != "ORA-B" {
		t.Fatalf("after requeue: %+v", j)
	}
	if j.Attempts != 2 {
		t.Errorf("attempts = %d", j.Attempts)
	}
	r.sim.RunUntil(r.sim.Now() + 3*simclock.Hour)
	if j.State != JobDone {
		t.Errorf("state = %s", j.State)
	}
}

func TestRequeueErrors(t *testing.T) {
	r := newRig(t, 1)
	if err := r.lsf.Requeue(99, "ORA-A"); err == nil {
		t.Error("unknown job should error")
	}
	j := r.lsf.Submit("x", "u", "ORA-A", 0.5, 64, 0, simclock.Hour)
	if err := r.lsf.Requeue(j.ID, "ORA-A"); err == nil {
		t.Error("requeue of a running job should error")
	}
}

func TestDispatchSkipsDownServers(t *testing.T) {
	r := newRig(t, 2)
	r.dbs[0].Crash()
	j := r.lsf.Submit("x", "u", "", 0.5, 64, 0, simclock.Hour)
	if j.Server != "ORA-B" {
		t.Errorf("placed on %s, want ORA-B", j.Server)
	}
	// A job demanding the crashed server waits.
	j2 := r.lsf.Submit("y", "u", "ORA-A", 0.5, 64, 0, simclock.Hour)
	if j2.State != JobPending {
		t.Errorf("job for down server should pend: %s", j2.State)
	}
	// When the database comes back and a dispatch cycle runs, it starts.
	r.dbs[0].Start(nil)
	r.sim.RunUntil(r.sim.Now() + 10*simclock.Minute)
	r.lsf.Dispatch()
	if j2.State != JobRunning {
		t.Errorf("job should start after DB restart: %s", j2.State)
	}
}

func TestPowerAffectsRuntime(t *testing.T) {
	sim := simclock.New(7)
	dir := svc.NewDirectory()
	fast := cluster.NewHost(sim, "fast", "1", cluster.ModelE10K, cluster.RoleDatabase, "l", "UK")
	slow := cluster.NewHost(sim, "slow", "2", cluster.ModelLinux, cluster.RoleDatabase, "l", "UK")
	sf, _ := svc.New(sim, svc.OracleSpec("FAST", 1521), fast)
	ss, _ := svc.New(sim, svc.OracleSpec("SLOW", 1521), slow)
	dir.Add(sf)
	dir.Add(ss)
	sf.Start(nil)
	ss.Start(nil)
	sim.RunUntil(10 * simclock.Minute)
	c := NewCluster(sim, dir)
	c.SetSlotLimit("FAST", 4)
	c.SetSlotLimit("SLOW", 4)
	jf := c.Submit("a", "u", "FAST", 0.5, 64, 0, simclock.Hour)
	js := c.Submit("b", "u", "SLOW", 0.5, 64, 0, simclock.Hour)
	lf, _ := c.TimeLeft(jf.ID)
	ls, _ := c.TimeLeft(js.ID)
	if lf >= ls {
		t.Errorf("fast server should finish sooner: fast=%v slow=%v", lf, ls)
	}
}

func TestCountByState(t *testing.T) {
	r := newRig(t, 1)
	r.lsf.Submit("a", "u", "ORA-A", 0.5, 64, 0, simclock.Hour)
	for i := 0; i < 5; i++ {
		r.lsf.Submit("b", "u", "ORA-A", 0.5, 64, 0, simclock.Hour)
	}
	counts := r.lsf.CountByState()
	if counts[JobRunning] != 4 || counts[JobPending] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if len(r.lsf.Jobs()) != 6 {
		t.Errorf("Jobs() = %d", len(r.lsf.Jobs()))
	}
}

// Property: running jobs per server never exceed the slot limit, whatever
// the submission pattern.
func TestQuickSlotInvariant(t *testing.T) {
	f := func(nJobs uint8, limit8 uint8) bool {
		limit := int(limit8%6) + 1
		sim := simclock.New(11)
		dir := svc.NewDirectory()
		h := cluster.NewHost(sim, "db", "1", cluster.ModelE10K, cluster.RoleDatabase, "l", "UK")
		s, _ := svc.New(sim, svc.OracleSpec("DB", 1521), h)
		dir.Add(s)
		s.Start(nil)
		sim.RunUntil(10 * simclock.Minute)
		c := NewCluster(sim, dir)
		c.SetSlotLimit("DB", limit)
		for i := 0; i < int(nJobs); i++ {
			c.Submit("j", "u", "DB", 0.1, 8, 0, simclock.Hour)
			if c.RunningOn("DB") > limit {
				return false
			}
		}
		sim.RunUntil(sim.Now() + 30*simclock.Minute)
		return c.RunningOn("DB") <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
