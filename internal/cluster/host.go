package cluster

import (
	"fmt"
	"slices"

	"repro/internal/fsim"
	"repro/internal/simclock"
)

// HostState is the coarse availability state of a server.
type HostState int

// Host states.
const (
	HostUp HostState = iota
	HostBooting
	HostDown
	HostHardwareFault // needs physical intervention; reboot does not help
)

func (s HostState) String() string {
	switch s {
	case HostUp:
		return "up"
	case HostBooting:
		return "booting"
	case HostDown:
		return "down"
	case HostHardwareFault:
		return "hwfault"
	}
	return "?"
}

// Role is the host's function in the datacentre (paper §4 breakdown).
type Role string

// Roles at the evaluation site.
const (
	RoleDatabase    Role = "database"
	RoleTransaction Role = "transaction"
	RoleFrontEnd    Role = "frontend"
	RoleAdmin       Role = "admin"
)

// Host is one simulated Unix server.
type Host struct {
	sim   *simclock.Sim
	Name  string
	IP    string
	Model HardwareModel
	OS    string
	Role  Role
	Site  string // site name, e.g. "london-dc1"
	Geo   string // geographical location, e.g. "UK"

	FS *fsim.FS // local filesystem namespace

	state     HostState
	bootedAt  simclock.Time
	procs     map[int]*Process
	nextPID   int
	users     map[string]int // logged-in user -> session count
	extraLoad float64        // ambient CPU demand not tied to a process (interrupts, kernel)

	// Disk activity level 0..1 fed by services; drives iostat numbers.
	diskActivity float64
	// NIC error injection for the network agent to find.
	nicErrors int
	// Sensor faults: degraded hardware components reported by the service
	// processor (ECC errors, failed fans) that a hardware agent can spot
	// before the box dies.
	sensorFaults []string

	// lastAccounted is the last time microstate accounting ran.
	lastAccounted simclock.Time

	// Running demand aggregates, maintained incrementally on spawn, exit,
	// state transitions and demand changes so the hot probe paths
	// (cpuDemand, MemUsedMB — called by every agent run and microstate
	// account) cost O(1) instead of a process-table walk. Kept in the same
	// per-process rounded integer micro-units the walk summed, so the
	// aggregate is bit-identical to the walk in any mutation order. The
	// values live in a struct-of-arrays StatsBank slot — private until the
	// host joins a Datacentre, shared and densely indexed after — so
	// datacentre-scale walks read them linearly.
	bank *StatsBank
	slot int

	// Process-count indexes by process name, maintained on the same
	// mutation paths as the demand aggregates, so CountProcs and
	// CountHungProcs (every service health check, every probe walk) are
	// map lookups instead of process-table scans. Entries are deleted at
	// zero: job processes carry unique per-job names, and a year of batch
	// churn must not grow the maps unboundedly.
	procCount map[string]int32
	hungCount map[string]int32

	// procFree recycles Process objects through the spawn/kill churn of
	// short-lived agent processes. Callers must not retain *Process across
	// simulated events (none do — snapshots like PS are consumed within
	// one callback).
	procFree []*Process
}

// NewHost returns a booted host with an empty process table.
func NewHost(sim *simclock.Sim, name, ip string, model HardwareModel, role Role, site, geo string) *Host {
	return &Host{
		sim:   sim,
		Name:  name,
		IP:    ip,
		Model: model,
		OS:    OSForModel(model),
		Role:  role,
		Site:  site,
		Geo:   geo,
		FS:    fsim.NewFS(),
		state: HostUp,
		procs: make(map[int]*Process),
		users: make(map[string]int),
		// PIDs start above the "kernel" range for realism in ps output.
		nextPID:   100,
		bank:      soloBank(),
		procCount: make(map[string]int32),
		hungCount: make(map[string]int32),
	}
}

// State reports the host's availability state.
func (h *Host) State() HostState { return h.state }

// Reset returns the host to the state NewHost leaves it in — up, empty
// process table, no users, no injected faults, fresh PID counter, wiped
// local filesystem — while keeping its allocated maps and FS storage. Site
// reuse calls this between trials.
func (h *Host) Reset() {
	h.state = HostUp
	h.bootedAt = 0
	clear(h.procs)
	h.nextPID = 100
	clear(h.users)
	h.extraLoad = 0
	h.diskActivity = 0
	h.nicErrors = 0
	h.sensorFaults = nil
	h.lastAccounted = 0
	h.bank.cpuMicro[h.slot] = 0
	h.bank.memMicro[h.slot] = 0
	clear(h.procCount)
	clear(h.hungCount)
	h.FS.Reset()
}

// cpuQuantum is one process's contribution to the CPU-demand aggregate:
// its demand rounded to integer micro-CPUs, zero unless it is actively
// consuming CPU.
func cpuQuantum(p *Process) int64 {
	if !p.Active() {
		return 0
	}
	return int64(p.CPUDemand*1e6 + 0.5)
}

// memQuantum is the memory counterpart, in micro-MB.
func memQuantum(p *Process) int64 {
	if !p.HoldsMemory() {
		return 0
	}
	return int64(p.MemMB*1e6 + 0.5)
}

// account adds (sign +1) or removes (sign -1) a process from the running
// demand aggregates.
func (h *Host) account(p *Process, sign int64) {
	h.bank.cpuMicro[h.slot] += sign * cpuQuantum(p)
	h.bank.memMicro[h.slot] += sign * memQuantum(p)
}

// countHung adjusts the hung-process index for one process by delta,
// deleting the entry at zero.
func (h *Host) countHung(name string, delta int32) {
	if n := h.hungCount[name] + delta; n == 0 {
		delete(h.hungCount, name)
	} else {
		h.hungCount[name] = n
	}
}

// SetProcState transitions a process's scheduling state, keeping the
// demand aggregates consistent. Every state change outside this package
// must go through it (or SetProcDemand) — writing the fields directly
// would desync the aggregates the probes read.
func (h *Host) SetProcState(p *Process, st ProcState) {
	if p == nil || p.State == st {
		return
	}
	if p.State == ProcHung {
		h.countHung(p.Name, -1)
	}
	h.account(p, -1)
	p.State = st
	h.account(p, +1)
	if p.State == ProcHung {
		h.countHung(p.Name, +1)
	}
}

// SetProcDemand updates a process's CPU and memory demand, keeping the
// aggregates consistent.
func (h *Host) SetProcDemand(p *Process, cpuDemand, memMB float64) {
	if p == nil {
		return
	}
	h.account(p, -1)
	p.CPUDemand = cpuDemand
	p.MemMB = memMB
	h.account(p, +1)
}

// Up reports whether the host can run processes and answer probes.
func (h *Host) Up() bool { return h.state == HostUp }

// Crash takes the host down instantly, killing every process. Flag files
// and logs on the local disk survive, as they would on a real machine.
func (h *Host) Crash() {
	if h.state == HostHardwareFault {
		return
	}
	h.state = HostDown
	h.procs = make(map[int]*Process)
	h.users = make(map[string]int)
	h.extraLoad = 0
	h.diskActivity = 0
	h.bank.cpuMicro[h.slot] = 0
	h.bank.memMicro[h.slot] = 0
	clear(h.procCount)
	clear(h.hungCount)
}

// HardwareFail marks the host as needing physical repair.
func (h *Host) HardwareFail() {
	h.Crash()
	h.state = HostHardwareFault
}

// RepairHardware clears a hardware fault, leaving the host down and
// bootable.
func (h *Host) RepairHardware() {
	if h.state == HostHardwareFault {
		h.state = HostDown
	}
}

// Boot starts the host; it becomes usable after bootTime. Booting a host
// that is up or already booting is a no-op. Hosts with hardware faults
// cannot boot.
func (h *Host) Boot(bootTime simclock.Time, onUp func(now simclock.Time)) {
	if h.state != HostDown {
		return
	}
	h.state = HostBooting
	h.sim.PostAfter(bootTime, "host-boot:"+h.Name, func(now simclock.Time) {
		if h.state != HostBooting {
			return
		}
		h.state = HostUp
		h.bootedAt = now
		if onUp != nil {
			onUp(now)
		}
	})
}

// ForceUp brings a down or booting host up immediately — the manual-repair
// path, where the operator's repair delay already covers the boot. Hosts
// with live hardware faults stay down.
func (h *Host) ForceUp(now simclock.Time) {
	if h.state == HostDown || h.state == HostBooting {
		h.state = HostUp
		h.bootedAt = now
	}
}

// Uptime reports time since the last boot (zero when down).
func (h *Host) Uptime() simclock.Time {
	if h.state != HostUp {
		return 0
	}
	return h.sim.Now() - h.bootedAt
}

// Spawn adds a process to the table and returns it. Spawning on a down host
// returns nil.
func (h *Host) Spawn(name, user, args string, cpuDemand, memMB float64) *Process {
	if h.state != HostUp {
		return nil
	}
	h.accountMicrostates()
	h.nextPID++
	var p *Process
	if n := len(h.procFree); n > 0 {
		p = h.procFree[n-1]
		h.procFree[n-1] = nil
		h.procFree = h.procFree[:n-1]
	} else {
		p = &Process{}
	}
	*p = Process{
		PID:       h.nextPID,
		Name:      name,
		User:      user,
		Args:      args,
		CPUDemand: cpuDemand,
		MemMB:     memMB,
		State:     ProcRunning,
		Started:   h.sim.Now(),
	}
	h.procs[p.PID] = p
	h.account(p, +1)
	h.procCount[p.Name]++
	return p
}

// Kill removes the process with the given PID, reporting whether it
// existed.
func (h *Host) Kill(pid int) bool {
	p, ok := h.procs[pid]
	if !ok {
		return false
	}
	h.accountMicrostates()
	h.account(p, -1)
	if n := h.procCount[p.Name] - 1; n == 0 {
		delete(h.procCount, p.Name)
	} else {
		h.procCount[p.Name] = n
	}
	if p.State == ProcHung {
		h.countHung(p.Name, -1)
	}
	delete(h.procs, pid)
	h.procFree = append(h.procFree, p)
	return true
}

// Proc returns the process with the given PID, or nil.
func (h *Host) Proc(pid int) *Process { return h.procs[pid] }

// PS returns the process table sorted by PID, like ps -e.
func (h *Host) PS() []*Process {
	out := make([]*Process, 0, len(h.procs))
	for _, p := range h.procs {
		out = append(out, p)
	}
	slices.SortFunc(out, func(a, b *Process) int { return a.PID - b.PID })
	return out
}

// PGrep returns processes whose Name equals name, like pgrep -x.
func (h *Host) PGrep(name string) []*Process {
	var out []*Process
	for _, p := range h.PS() {
		if p.Name == name {
			out = append(out, p)
		}
	}
	return out
}

// CountProcs reports how many processes have exactly the given name — the
// allocation-free pgrep -c that hot monitoring paths use in place of
// len(PGrep(name)). Served from the name-count index maintained on
// spawn/kill, so probe walks over thousands of services do not scan
// process tables.
func (h *Host) CountProcs(name string) int { return int(h.procCount[name]) }

// CountHungProcs reports how many processes with the given name are hung,
// from the index SetProcState maintains.
func (h *Host) CountHungProcs(name string) int { return int(h.hungCount[name]) }

// NProcs reports the process count.
func (h *Host) NProcs() int { return len(h.procs) }

// Login registers a user session; Logout removes one.
func (h *Host) Login(user string) {
	if h.state == HostUp {
		h.users[user]++
	}
}

// Logout removes one session for user.
func (h *Host) Logout(user string) {
	if h.users[user] > 1 {
		h.users[user]--
	} else {
		delete(h.users, user)
	}
}

// UsersLoggedIn reports distinct logged-in users.
func (h *Host) UsersLoggedIn() int { return len(h.users) }

// SetAmbientLoad sets kernel/interrupt CPU demand in CPUs-worth units.
func (h *Host) SetAmbientLoad(cpus float64) { h.extraLoad = cpus }

// AddDiskActivity adds to the disk activity level (clamped at 1.5 so
// pathological stacking saturates rather than exploding).
func (h *Host) AddDiskActivity(d float64) {
	h.diskActivity += d
	if h.diskActivity > 1.5 {
		h.diskActivity = 1.5
	}
	if h.diskActivity < 0 {
		h.diskActivity = 0
	}
}

// InjectSensorFault records a degraded hardware component.
func (h *Host) InjectSensorFault(component string) {
	h.sensorFaults = append(h.sensorFaults, component)
}

// SensorFaults reports degraded components.
func (h *Host) SensorFaults() []string { return append([]string(nil), h.sensorFaults...) }

// ClearSensorFaults removes all sensor faults (after physical repair).
func (h *Host) ClearSensorFaults() { h.sensorFaults = nil }

// InjectNICErrors records NIC errors for netstat to report.
func (h *Host) InjectNICErrors(n int) { h.nicErrors += n }

// ClearNICErrors zeroes the NIC error counter (after repair).
func (h *Host) ClearNICErrors() { h.nicErrors = 0 }

// cpuDemand sums active process demand plus ambient load, in CPUs. It
// reads the incrementally maintained aggregate rather than walking the
// process table — the per-probe map walks were the top of the CPU
// profile. The aggregate runs in integer micro-CPUs: integer addition is
// order-independent, so the sum is bit-identical to a table walk in any
// order of spawns, exits and transitions (a float sum would wobble in the
// last ulp with mutation order and leak into probe latencies, breaking
// bit-for-bit replay).
func (h *Host) cpuDemand() float64 {
	return float64(int64(h.extraLoad*1e6+0.5)+h.bank.cpuMicro[h.slot]) * 1e-6
}

// CPUUtilisation reports overall utilisation in [0,1].
func (h *Host) CPUUtilisation() float64 {
	if h.state != HostUp {
		return 0
	}
	u := h.cpuDemand() / float64(h.Model.CPUs)
	if u > 1 {
		u = 1
	}
	return u
}

// RunQueue reports processes waiting for a CPU (demand beyond capacity),
// the paper's "CPU run queue" measurement.
func (h *Host) RunQueue() int {
	excess := h.cpuDemand() - float64(h.Model.CPUs)
	if excess <= 0 {
		return 0
	}
	return int(excess + 0.999)
}

// MemUsedMB sums resident process memory plus a fixed kernel share, read
// from the incrementally maintained aggregate (integer micro-MB, for the
// same order-independence cpuDemand relies on).
func (h *Host) MemUsedMB() float64 {
	if h.state != HostUp {
		return 0
	}
	micro := int64(float64(h.Model.MemoryMB)*0.05*1e6+0.5) + h.bank.memMicro[h.slot] // kernel + buffers
	used := float64(micro) * 1e-6
	if used > float64(h.Model.MemoryMB) {
		used = float64(h.Model.MemoryMB)
	}
	return used
}

// MemFreeMB reports free memory.
func (h *Host) MemFreeMB() float64 { return float64(h.Model.MemoryMB) - h.MemUsedMB() }

// Overloaded reports whether utilisation exceeds the model's maximum
// sustainable load, the condition under which the paper says databases
// crash mid-job.
func (h *Host) Overloaded() bool { return h.CPUUtilisation() > h.Model.MaxLoad }

// accountMicrostates charges elapsed time to each process's microstate
// counters, at the microsecond-ish fidelity the paper gets from modern
// CPUs. Costs are split by whether the process was runnable.
func (h *Host) accountMicrostates() {
	now := h.sim.Now()
	dt := now - h.lastAccounted
	h.lastAccounted = now
	if dt <= 0 || h.state != HostUp {
		return
	}
	util := h.CPUUtilisation()
	for _, p := range h.procs {
		switch p.State {
		case ProcRunning:
			// Crude split: 80% user, 20% sys, waiting grows with contention.
			run := simclock.Time(float64(dt) * (1 - 0.5*util))
			p.UserTime += simclock.Time(float64(run) * 0.8)
			p.SysTime += simclock.Time(float64(run) * 0.2)
			p.WaitTime += dt - run
		case ProcSleeping, ProcHung:
			p.WaitTime += dt
		}
	}
}

// Tick runs periodic host accounting; call it from a scenario ticker.
func (h *Host) Tick(now simclock.Time) { h.accountMicrostates() }

func (h *Host) String() string {
	return fmt.Sprintf("%s (%s, %s, %s) %s", h.Name, h.IP, h.Model.Name, h.Role, h.state)
}
