package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

func newHost(sim *simclock.Sim) *Host {
	return NewHost(sim, "db001", "10.0.0.1", ModelE4500, RoleDatabase, "london-dc1", "UK")
}

func TestModelPowerOrdering(t *testing.T) {
	if ModelE10K.Power() <= ModelE4500.Power() {
		t.Error("E10K should outrank E4500")
	}
	if ModelE4500.Power() <= ModelUltra10.Power() {
		t.Error("E4500 should outrank Ultra10")
	}
	for i := 1; i < len(Models); i++ {
		if Models[i-1].Power() < Models[i].Power() {
			t.Errorf("Models not sorted by power at %d: %s < %s", i, Models[i-1].Name, Models[i].Name)
		}
	}
}

func TestModelByName(t *testing.T) {
	m, ok := ModelByName("E10K")
	if !ok || m.CPUs != 32 {
		t.Errorf("ModelByName(E10K) = %v %v", m, ok)
	}
	if _, ok := ModelByName("VAX"); ok {
		t.Error("unknown model should not resolve")
	}
}

func TestOSForModel(t *testing.T) {
	cases := map[string]string{"E10K": "Solaris8", "HP-K": "HP-UX11", "SP2": "AIX4", "linux-x86": "Linux2.4"}
	for name, wantOS := range cases {
		m, _ := ModelByName(name)
		if got := OSForModel(m); got != wantOS {
			t.Errorf("OSForModel(%s) = %s, want %s", name, got, wantOS)
		}
	}
}

func TestSpawnKill(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	p := h.Spawn("oracle", "dba", "ora_pmon", 0.5, 512)
	if p == nil || p.PID < 100 {
		t.Fatalf("spawn: %v", p)
	}
	if h.NProcs() != 1 {
		t.Errorf("NProcs = %d", h.NProcs())
	}
	if got := h.PGrep("oracle"); len(got) != 1 || got[0].PID != p.PID {
		t.Errorf("PGrep = %v", got)
	}
	if !h.Kill(p.PID) {
		t.Error("kill should succeed")
	}
	if h.Kill(p.PID) {
		t.Error("double kill should fail")
	}
}

func TestPIDsUnique(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		p := h.Spawn("x", "u", "", 0, 1)
		if seen[p.PID] {
			t.Fatalf("duplicate PID %d", p.PID)
		}
		seen[p.PID] = true
	}
}

func TestCrashKillsProcesses(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	h.Spawn("oracle", "dba", "", 0.5, 512)
	h.Login("analyst1")
	h.Crash()
	if h.Up() || h.NProcs() != 0 || h.UsersLoggedIn() != 0 {
		t.Errorf("crash state: up=%v procs=%d users=%d", h.Up(), h.NProcs(), h.UsersLoggedIn())
	}
	if h.Spawn("x", "u", "", 0, 1) != nil {
		t.Error("spawn on down host should fail")
	}
}

func TestBoot(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	h.Crash()
	var upAt simclock.Time
	h.Boot(10*simclock.Minute, func(now simclock.Time) { upAt = now })
	if h.State() != HostBooting {
		t.Errorf("state = %v", h.State())
	}
	sim.RunUntil(simclock.Hour)
	if !h.Up() || upAt != 10*simclock.Minute {
		t.Errorf("up=%v upAt=%v", h.Up(), upAt)
	}
	if h.Uptime() != simclock.Hour-10*simclock.Minute {
		t.Errorf("uptime = %v", h.Uptime())
	}
}

func TestBootWhileUpIsNoop(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	h.Boot(time10, func(simclock.Time) { t.Error("onUp must not fire for a host that was already up") })
	sim.Run()
	if !h.Up() {
		t.Error("host should remain up")
	}
}

const time10 = 10 * simclock.Minute

func TestHardwareFault(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	h.HardwareFail()
	h.Boot(time10, nil)
	sim.Run()
	if h.Up() {
		t.Error("host with hardware fault must not boot")
	}
	h.RepairHardware()
	if h.State() != HostDown {
		t.Errorf("after repair: %v", h.State())
	}
	h.Boot(time10, nil)
	sim.RunUntil(sim.Now() + simclock.Hour)
	if !h.Up() {
		t.Error("host should boot after hardware repair")
	}
}

func TestCPUAccounting(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim) // E4500: 8 CPUs
	h.Spawn("oracle", "dba", "", 4, 512)
	if got := h.CPUUtilisation(); got != 0.5 {
		t.Errorf("util = %v, want 0.5", got)
	}
	if h.RunQueue() != 0 {
		t.Errorf("run queue = %d", h.RunQueue())
	}
	h.Spawn("batch", "lsf", "", 6, 256)
	if got := h.CPUUtilisation(); got != 1 {
		t.Errorf("util = %v, want 1 (clamped)", got)
	}
	if h.RunQueue() != 2 {
		t.Errorf("run queue = %d, want 2", h.RunQueue())
	}
	if !h.Overloaded() {
		t.Error("host should be overloaded")
	}
}

func TestHungProcessUsesNoCPU(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	p := h.Spawn("oracle", "dba", "", 4, 512)
	h.SetProcState(p, ProcHung)
	if h.CPUUtilisation() != 0 {
		t.Errorf("hung process should not consume CPU: %v", h.CPUUtilisation())
	}
	if h.MemUsedMB() < 512 {
		t.Error("hung process should still hold memory")
	}
}

func TestMemoryAccounting(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim) // 8192 MB
	base := h.MemUsedMB()
	h.Spawn("oracle", "dba", "", 0.1, 1000)
	if got := h.MemUsedMB(); got != base+1000 {
		t.Errorf("mem used = %v", got)
	}
	vm := h.VMStat()
	if vm.ScanRate != 0 {
		t.Errorf("no pressure: scan rate %v", vm.ScanRate)
	}
	h.Spawn("hog", "dba", "", 0.1, 7000)
	vm = h.VMStat()
	if vm.ScanRate == 0 || vm.PageOuts == 0 {
		t.Errorf("memory pressure should wake scanner: %+v", vm)
	}
}

func TestVMStatDownHost(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	h.Crash()
	if vm := h.VMStat(); vm != (VMStat{}) {
		t.Errorf("down host vmstat = %+v", vm)
	}
	if io := h.IOStat(); io != (IOStat{}) {
		t.Errorf("down host iostat = %+v", io)
	}
}

func TestIOStatServiceTimeBlowsUp(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	idle := h.IOStat()
	h.AddDiskActivity(1.4)
	busy := h.IOStat()
	if busy.AsvcMS <= idle.AsvcMS {
		t.Errorf("asvc_t should grow with activity: idle=%v busy=%v", idle.AsvcMS, busy.AsvcMS)
	}
	if busy.WsvcMS <= idle.WsvcMS {
		t.Errorf("wsvc_t should grow with activity: idle=%v busy=%v", idle.WsvcMS, busy.WsvcMS)
	}
	h.AddDiskActivity(10) // clamps
	if h.IOStat().BusyPct > 99 {
		t.Errorf("busy should clamp below 100: %v", h.IOStat().BusyPct)
	}
	h.AddDiskActivity(-100)
	if h.IOStat().BusyPct != 0 {
		t.Errorf("activity should clamp at 0: %v", h.IOStat().BusyPct)
	}
}

func TestNetStatErrors(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	if h.NetStat().Errors != 0 {
		t.Error("fresh host should have no NIC errors")
	}
	h.InjectNICErrors(9)
	ns := h.NetStat()
	if ns.Errors != 9 || ns.Collisions != 3 {
		t.Errorf("netstat = %+v", ns)
	}
	h.ClearNICErrors()
	if h.NetStat().Errors != 0 {
		t.Error("errors should clear")
	}
}

func TestLoginLogout(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	h.Login("a")
	h.Login("a")
	h.Login("b")
	if h.UsersLoggedIn() != 2 {
		t.Errorf("users = %d", h.UsersLoggedIn())
	}
	h.Logout("a")
	if h.UsersLoggedIn() != 2 {
		t.Errorf("a still has a session: users = %d", h.UsersLoggedIn())
	}
	h.Logout("a")
	if h.UsersLoggedIn() != 1 {
		t.Errorf("users = %d", h.UsersLoggedIn())
	}
}

func TestMicrostateAccounting(t *testing.T) {
	sim := simclock.New(1)
	h := newHost(sim)
	p := h.Spawn("oracle", "dba", "", 1, 100)
	sim.After(simclock.Hour, "tick", func(now simclock.Time) { h.Tick(now) })
	sim.Run()
	total := p.UserTime + p.SysTime + p.WaitTime
	if total != simclock.Hour {
		t.Errorf("microstates should sum to elapsed time: %v", total)
	}
	if p.UserTime <= p.SysTime {
		t.Errorf("user time should dominate: user=%v sys=%v", p.UserTime, p.SysTime)
	}
}

func TestDatacentre(t *testing.T) {
	sim := simclock.New(1)
	d := NewDatacentre()
	d.Add(NewHost(sim, "db1", "10.0.0.1", ModelE10K, RoleDatabase, "s", "UK"))
	d.Add(NewHost(sim, "fe1", "10.0.0.2", ModelSP2, RoleFrontEnd, "s", "UK"))
	d.Add(NewHost(sim, "db2", "10.0.0.3", ModelE4500, RoleDatabase, "s", "UK"))
	if d.Size() != 3 || d.UpCount() != 3 {
		t.Errorf("size=%d up=%d", d.Size(), d.UpCount())
	}
	if d.Host("db1") == nil || d.Host("nope") != nil {
		t.Error("lookup broken")
	}
	dbs := d.ByRole(RoleDatabase)
	if len(dbs) != 2 || dbs[0].Name != "db1" || dbs[1].Name != "db2" {
		t.Errorf("ByRole = %v", dbs)
	}
	d.Host("db1").Crash()
	if d.UpCount() != 2 {
		t.Errorf("up = %d", d.UpCount())
	}
}

func TestDatacentreDuplicatePanics(t *testing.T) {
	sim := simclock.New(1)
	d := NewDatacentre()
	d.Add(NewHost(sim, "x", "1", ModelE450, RoleDatabase, "s", "UK"))
	defer func() {
		if recover() == nil {
			t.Error("duplicate host should panic")
		}
	}()
	d.Add(NewHost(sim, "x", "2", ModelE450, RoleDatabase, "s", "UK"))
}

// Property: CPU utilisation is always within [0,1] and run queue is never
// negative, for any mix of process demands.
func TestQuickUtilisationBounds(t *testing.T) {
	f := func(demands []uint8) bool {
		sim := simclock.New(1)
		h := newHost(sim)
		for _, d := range demands {
			h.Spawn("p", "u", "", float64(d)/16, 10)
		}
		u := h.CPUUtilisation()
		return u >= 0 && u <= 1 && h.RunQueue() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: memory used never exceeds installed memory.
func TestQuickMemoryBounds(t *testing.T) {
	f := func(mems []uint16) bool {
		sim := simclock.New(1)
		h := newHost(sim)
		for _, m := range mems {
			h.Spawn("p", "u", "", 0, float64(m))
		}
		return h.MemUsedMB() <= float64(h.Model.MemoryMB) && h.MemFreeMB() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
