package cluster

import (
	"fmt"

	"repro/internal/simclock"
)

// ProcState is a Unix-like process state.
type ProcState int

// Process states. Hung processes hold resources but make no progress;
// health probes against them time out, which is how latent errors present.
const (
	ProcRunning ProcState = iota
	ProcSleeping
	ProcHung
	ProcZombie
)

func (s ProcState) String() string {
	switch s {
	case ProcRunning:
		return "R"
	case ProcSleeping:
		return "S"
	case ProcHung:
		return "H"
	case ProcZombie:
		return "Z"
	}
	return "?"
}

// Process is an entry in a host's process table. CPUDemand is the number of
// CPUs' worth of work the process wants (0.5 = half a CPU); what it gets
// depends on host contention.
type Process struct {
	PID       int
	Name      string
	User      string
	Args      string
	CPUDemand float64
	MemMB     float64
	State     ProcState
	Started   simclock.Time

	// Microstate accounting (paper §3.5): per-process user/system/wait
	// times at microsecond resolution.
	UserTime simclock.Time
	SysTime  simclock.Time
	WaitTime simclock.Time
}

func (p *Process) String() string {
	return fmt.Sprintf("%5d %-8s %-12s %s %4.2fcpu %6.1fMB", p.PID, p.User, p.Name, p.State, p.CPUDemand, p.MemMB)
}

// Active reports whether the process consumes CPU (running, not hung or
// zombie; sleeping processes hold memory only).
func (p *Process) Active() bool { return p.State == ProcRunning }

// HoldsMemory reports whether the process's memory is resident.
func (p *Process) HoldsMemory() bool { return p.State != ProcZombie }
