package cluster

import (
	"fmt"
	"math"
)

// VMStat is a vmstat-style snapshot of the measurements the paper's
// operating-system group collects (§3.6): scan rate, page-outs, page
// faults, free memory, run queue, CPU idle and blocked processes.
type VMStat struct {
	ScanRate     float64 // sr: pages scanned/sec, ramps with memory pressure
	PageOuts     float64 // po: pages written out/sec
	PageFaults   float64 // minor+major faults/sec
	FreeMemMB    float64
	RunQueue     int
	CPUIdlePct   float64
	BlockedProcs int // waiting for I/O
}

// IOStat is an iostat-style snapshot; the paper watches asvc_t and wsvc_t
// (active/wait service times) sampled over 30-second intervals.
type IOStat struct {
	BusyPct  float64 // %b
	ReadsPS  float64
	WritesPS float64
	AsvcMS   float64 // active service time, ms
	WsvcMS   float64 // wait (queue) time, ms
}

// NetStat is a netstat -i style snapshot.
type NetStat struct {
	PacketsInPS  float64
	PacketsOutPS float64
	Errors       int
	Collisions   int
}

// VMStat samples the host's virtual-memory and CPU state. Memory pressure
// beyond 90% of RAM wakes the page scanner, exactly the signal the memory
// intelliagent's thresholds watch for.
func (h *Host) VMStat() VMStat {
	if h.state != HostUp {
		return VMStat{}
	}
	memFrac := h.MemUsedMB() / float64(h.Model.MemoryMB)
	var sr, po float64
	if memFrac > 0.90 {
		pressure := (memFrac - 0.90) / 0.10 // 0..1 across the last 10%
		sr = 200 + 5000*pressure
		po = 50 + 1500*pressure
	}
	util := h.CPUUtilisation()
	blocked := int(h.diskActivity * 4)
	return VMStat{
		ScanRate:     sr,
		PageOuts:     po,
		PageFaults:   20 + 400*util,
		FreeMemMB:    h.MemFreeMB(),
		RunQueue:     h.RunQueue(),
		CPUIdlePct:   math.Round((1-util)*1000) / 10,
		BlockedProcs: blocked,
	}
}

// IOStat samples aggregate disk behaviour. Service times follow an M/M/1
// style blow-up as activity approaches the spindle capacity.
func (h *Host) IOStat() IOStat {
	if h.state != HostUp {
		return IOStat{}
	}
	busy := h.diskActivity / 1.5
	if busy > 0.99 {
		busy = 0.99
	}
	base := 5.0 // ms at idle
	asvc := base / (1 - busy)
	wsvc := asvc * busy * busy * 4
	return IOStat{
		BusyPct:  math.Round(busy * 100),
		ReadsPS:  80 * h.diskActivity * float64(h.Model.Disks),
		WritesPS: 40 * h.diskActivity * float64(h.Model.Disks),
		AsvcMS:   math.Round(asvc*10) / 10,
		WsvcMS:   math.Round(wsvc*10) / 10,
	}
}

// NetStat samples NIC counters, including injected errors.
func (h *Host) NetStat() NetStat {
	if h.state != HostUp {
		return NetStat{}
	}
	util := h.CPUUtilisation()
	return NetStat{
		PacketsInPS:  500 + 8000*util,
		PacketsOutPS: 400 + 7000*util,
		Errors:       h.nicErrors,
		Collisions:   h.nicErrors / 3,
	}
}

// StatsBank holds the hot per-host demand aggregates as struct-of-arrays
// slices keyed by a dense slot index, so walks over many hosts (probe
// dispatch, workload refresh at 10k-host scale) read contiguous memory
// instead of pointer-chasing a field per heap-allocated Host. Hosts keep
// their map-based accessors (CPUUtilisation, MemUsedMB, ...) as thin
// views over their bank slot. A standalone host owns a one-slot private
// bank; Datacentre.Add migrates it into the site-wide shared bank.
type StatsBank struct {
	cpuMicro []int64 // Σ cpuQuantum over active processes, per slot
	memMicro []int64 // Σ memQuantum over memory-holding processes, per slot
}

// grow appends one zeroed slot and returns its index.
func (b *StatsBank) grow() int {
	b.cpuMicro = append(b.cpuMicro, 0)
	b.memMicro = append(b.memMicro, 0)
	return len(b.cpuMicro) - 1
}

// soloBank returns a private one-slot bank for a host not (yet) part of a
// datacentre.
func soloBank() *StatsBank { return &StatsBank{cpuMicro: make([]int64, 1), memMicro: make([]int64, 1)} }

// Datacentre is the collection of hosts at one customer site. Hosts are
// held in a dense registration-order slice (the index the struct-of-arrays
// stats bank and linear walks key off) with name and role maps as views.
type Datacentre struct {
	hosts  map[string]*Host
	order  []*Host // dense registration order
	byRole map[Role][]*Host
	bank   *StatsBank
	free   []int // recycled bank slots from removed hosts
}

// NewDatacentre returns an empty site.
func NewDatacentre() *Datacentre {
	return &Datacentre{
		hosts:  make(map[string]*Host),
		byRole: make(map[Role][]*Host),
		bank:   &StatsBank{},
	}
}

// Add registers a host; duplicate names panic (a config bug). The host's
// private stats-bank slot is migrated into the datacentre's shared bank,
// reusing a slot freed by Remove when one exists, so repeated
// Remove/Add cycles (trial reuse re-adding administration hosts) do not
// grow the bank.
func (d *Datacentre) Add(h *Host) {
	if _, dup := d.hosts[h.Name]; dup {
		panic(fmt.Sprintf("cluster: duplicate host %s", h.Name))
	}
	d.hosts[h.Name] = h
	d.order = append(d.order, h)
	d.byRole[h.Role] = append(d.byRole[h.Role], h)
	var slot int
	if n := len(d.free); n > 0 {
		slot = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		slot = d.bank.grow()
	}
	d.bank.cpuMicro[slot] = h.bank.cpuMicro[h.slot]
	d.bank.memMicro[slot] = h.bank.memMicro[h.slot]
	h.bank, h.slot = d.bank, slot
}

// Host looks a host up by name, or nil.
func (d *Datacentre) Host(name string) *Host { return d.hosts[name] }

// Remove deregisters the named host, reporting whether it was present.
// Site reuse removes the mode-added administration hosts between trials.
// The host is re-homed onto a private stats bank (values preserved) and
// its shared slot is zeroed and recycled, so a retained *Host can never
// write through a slot reassigned to a later host.
func (d *Datacentre) Remove(name string) bool {
	h, ok := d.hosts[name]
	if !ok {
		return false
	}
	delete(d.hosts, name)
	d.order = removeHost(d.order, h)
	d.byRole[h.Role] = removeHost(d.byRole[h.Role], h)
	solo := soloBank()
	solo.cpuMicro[0] = d.bank.cpuMicro[h.slot]
	solo.memMicro[0] = d.bank.memMicro[h.slot]
	d.bank.cpuMicro[h.slot] = 0
	d.bank.memMicro[h.slot] = 0
	d.free = append(d.free, h.slot)
	h.bank, h.slot = solo, 0
	return true
}

// removeHost deletes one host from a slice, preserving order.
func removeHost(hosts []*Host, h *Host) []*Host {
	for i, x := range hosts {
		if x == h {
			return append(hosts[:i], hosts[i+1:]...)
		}
	}
	return hosts
}

// Hosts returns all hosts in registration order. The slice is a copy;
// callers may keep or reorder it.
func (d *Datacentre) Hosts() []*Host {
	return append([]*Host(nil), d.order...)
}

// ByRole returns hosts with the given role, in registration order. Served
// from a role index maintained on Add/Remove, so the per-tick workload
// refresh does not rescan every host at datacentre scale. The slice is a
// copy; callers may keep or reorder it.
func (d *Datacentre) ByRole(role Role) []*Host {
	return append([]*Host(nil), d.byRole[role]...)
}

// Size reports the number of hosts.
func (d *Datacentre) Size() int { return len(d.hosts) }

// UpCount reports how many hosts are currently up.
func (d *Datacentre) UpCount() int {
	n := 0
	for _, h := range d.order {
		if h.Up() {
			n++
		}
	}
	return n
}
