package cluster

import (
	"fmt"
	"math"
)

// VMStat is a vmstat-style snapshot of the measurements the paper's
// operating-system group collects (§3.6): scan rate, page-outs, page
// faults, free memory, run queue, CPU idle and blocked processes.
type VMStat struct {
	ScanRate     float64 // sr: pages scanned/sec, ramps with memory pressure
	PageOuts     float64 // po: pages written out/sec
	PageFaults   float64 // minor+major faults/sec
	FreeMemMB    float64
	RunQueue     int
	CPUIdlePct   float64
	BlockedProcs int // waiting for I/O
}

// IOStat is an iostat-style snapshot; the paper watches asvc_t and wsvc_t
// (active/wait service times) sampled over 30-second intervals.
type IOStat struct {
	BusyPct  float64 // %b
	ReadsPS  float64
	WritesPS float64
	AsvcMS   float64 // active service time, ms
	WsvcMS   float64 // wait (queue) time, ms
}

// NetStat is a netstat -i style snapshot.
type NetStat struct {
	PacketsInPS  float64
	PacketsOutPS float64
	Errors       int
	Collisions   int
}

// VMStat samples the host's virtual-memory and CPU state. Memory pressure
// beyond 90% of RAM wakes the page scanner, exactly the signal the memory
// intelliagent's thresholds watch for.
func (h *Host) VMStat() VMStat {
	if h.state != HostUp {
		return VMStat{}
	}
	memFrac := h.MemUsedMB() / float64(h.Model.MemoryMB)
	var sr, po float64
	if memFrac > 0.90 {
		pressure := (memFrac - 0.90) / 0.10 // 0..1 across the last 10%
		sr = 200 + 5000*pressure
		po = 50 + 1500*pressure
	}
	util := h.CPUUtilisation()
	blocked := int(h.diskActivity * 4)
	return VMStat{
		ScanRate:     sr,
		PageOuts:     po,
		PageFaults:   20 + 400*util,
		FreeMemMB:    h.MemFreeMB(),
		RunQueue:     h.RunQueue(),
		CPUIdlePct:   math.Round((1-util)*1000) / 10,
		BlockedProcs: blocked,
	}
}

// IOStat samples aggregate disk behaviour. Service times follow an M/M/1
// style blow-up as activity approaches the spindle capacity.
func (h *Host) IOStat() IOStat {
	if h.state != HostUp {
		return IOStat{}
	}
	busy := h.diskActivity / 1.5
	if busy > 0.99 {
		busy = 0.99
	}
	base := 5.0 // ms at idle
	asvc := base / (1 - busy)
	wsvc := asvc * busy * busy * 4
	return IOStat{
		BusyPct:  math.Round(busy * 100),
		ReadsPS:  80 * h.diskActivity * float64(h.Model.Disks),
		WritesPS: 40 * h.diskActivity * float64(h.Model.Disks),
		AsvcMS:   math.Round(asvc*10) / 10,
		WsvcMS:   math.Round(wsvc*10) / 10,
	}
}

// NetStat samples NIC counters, including injected errors.
func (h *Host) NetStat() NetStat {
	if h.state != HostUp {
		return NetStat{}
	}
	util := h.CPUUtilisation()
	return NetStat{
		PacketsInPS:  500 + 8000*util,
		PacketsOutPS: 400 + 7000*util,
		Errors:       h.nicErrors,
		Collisions:   h.nicErrors / 3,
	}
}

// Datacentre is the collection of hosts at one customer site.
type Datacentre struct {
	hosts map[string]*Host
	order []string // insertion order for deterministic iteration
}

// NewDatacentre returns an empty site.
func NewDatacentre() *Datacentre {
	return &Datacentre{hosts: make(map[string]*Host)}
}

// Add registers a host; duplicate names panic (a config bug).
func (d *Datacentre) Add(h *Host) {
	if _, dup := d.hosts[h.Name]; dup {
		panic(fmt.Sprintf("cluster: duplicate host %s", h.Name))
	}
	d.hosts[h.Name] = h
	d.order = append(d.order, h.Name)
}

// Host looks a host up by name, or nil.
func (d *Datacentre) Host(name string) *Host { return d.hosts[name] }

// Remove deregisters the named host, reporting whether it was present.
// Site reuse removes the mode-added administration hosts between trials.
func (d *Datacentre) Remove(name string) bool {
	if _, ok := d.hosts[name]; !ok {
		return false
	}
	delete(d.hosts, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return true
}

// Hosts returns all hosts in registration order.
func (d *Datacentre) Hosts() []*Host {
	out := make([]*Host, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.hosts[n])
	}
	return out
}

// ByRole returns hosts with the given role, in registration order.
func (d *Datacentre) ByRole(role Role) []*Host {
	var out []*Host
	for _, h := range d.Hosts() {
		if h.Role == role {
			out = append(out, h)
		}
	}
	return out
}

// Size reports the number of hosts.
func (d *Datacentre) Size() int { return len(d.hosts) }

// UpCount reports how many hosts are currently up.
func (d *Datacentre) UpCount() int {
	n := 0
	for _, h := range d.hosts {
		if h.Up() {
			n++
		}
	}
	return n
}
