// Package cluster simulates the datacentre hardware layer of the paper's
// evaluation site: Sun, HP, IBM and linux hosts with CPU, memory, disk and
// NIC resource accounting; a Unix-like process table; and vmstat/iostat/
// netstat-style measurement snapshots that the performance intelliagents
// sample.
package cluster

import "fmt"

// HardwareModel describes a server family. Power (CPUs x per-CPU speed) is
// what the paper's SLKT-driven selection compares when it prefers "a server
// of equal or higher in power than the server that failed".
type HardwareModel struct {
	Name     string  // e.g. "E10K"
	Vendor   string  // e.g. "Sun"
	CPUs     int     // CPU count
	CPUSpeed float64 // relative per-CPU speed, Ultra10 = 1.0
	MemoryMB int     // installed RAM
	Disks    int     // spindle count
	MaxLoad  float64 // max sustainable utilisation fraction (vendor + expert data, per paper §3.2)
}

// Power reports the model's aggregate compute power.
func (m HardwareModel) Power() float64 { return float64(m.CPUs) * m.CPUSpeed }

func (m HardwareModel) String() string {
	return fmt.Sprintf("%s %s (%d CPU, %d MB)", m.Vendor, m.Name, m.CPUs, m.MemoryMB)
}

// The hardware families named in the paper's results section (§4). Relative
// speeds and sizes follow the era's published configurations; absolute
// accuracy is irrelevant to the reproduced results (see DESIGN.md §2), only
// the power ordering used by the selection heuristic matters.
var (
	ModelE10K    = HardwareModel{Name: "E10K", Vendor: "Sun", CPUs: 32, CPUSpeed: 1.2, MemoryMB: 32768, Disks: 16, MaxLoad: 0.85}
	ModelE4500   = HardwareModel{Name: "E4500", Vendor: "Sun", CPUs: 8, CPUSpeed: 1.1, MemoryMB: 8192, Disks: 8, MaxLoad: 0.85}
	ModelE450    = HardwareModel{Name: "E450", Vendor: "Sun", CPUs: 4, CPUSpeed: 1.0, MemoryMB: 4096, Disks: 4, MaxLoad: 0.80}
	ModelE220R   = HardwareModel{Name: "E220R", Vendor: "Sun", CPUs: 2, CPUSpeed: 1.0, MemoryMB: 2048, Disks: 2, MaxLoad: 0.80}
	ModelUltra10 = HardwareModel{Name: "Ultra10", Vendor: "Sun", CPUs: 1, CPUSpeed: 1.0, MemoryMB: 1024, Disks: 1, MaxLoad: 0.75}
	ModelHPK     = HardwareModel{Name: "HP-K", Vendor: "HP", CPUs: 6, CPUSpeed: 1.05, MemoryMB: 6144, Disks: 6, MaxLoad: 0.80}
	ModelHPT     = HardwareModel{Name: "HP-T", Vendor: "HP", CPUs: 4, CPUSpeed: 1.05, MemoryMB: 4096, Disks: 4, MaxLoad: 0.80}
	ModelSP2     = HardwareModel{Name: "SP2", Vendor: "IBM", CPUs: 4, CPUSpeed: 0.95, MemoryMB: 2048, Disks: 2, MaxLoad: 0.80}
	ModelLinux   = HardwareModel{Name: "linux-x86", Vendor: "commodity", CPUs: 2, CPUSpeed: 0.9, MemoryMB: 1024, Disks: 2, MaxLoad: 0.75}
)

// Models lists every hardware family, largest first.
var Models = []HardwareModel{
	ModelE10K, ModelE4500, ModelHPK, ModelHPT, ModelE450,
	ModelSP2, ModelE220R, ModelLinux, ModelUltra10,
}

// ModelByName looks a model up by family name.
func ModelByName(name string) (HardwareModel, bool) {
	for _, m := range Models {
		if m.Name == name {
			return m, true
		}
	}
	return HardwareModel{}, false
}

// OSForModel reports the operating system the paper's site ran on each
// family.
func OSForModel(m HardwareModel) string {
	switch m.Vendor {
	case "Sun":
		return "Solaris8"
	case "HP":
		return "HP-UX11"
	case "IBM":
		return "AIX4"
	default:
		return "Linux2.4"
	}
}
