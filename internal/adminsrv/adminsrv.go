// Package adminsrv implements the paper's dedicated administration servers
// (§3.1): an external agent-coordinator pair in a high-availability
// failover configuration sharing a common pool of NFS-mounted disks. The
// active server receives DLSP pushes from every status agent over the
// private network, generates dynamic global service profile lists per
// database type every 15 minutes, watches agent flags every X+5 minutes
// (troubleshooting agents and spotting dead hosts), and manages LSF —
// presenting shortlists of the best available database servers and
// resubmitting failed batch jobs from the DGSPL instead of the users'
// manual selections (§4).
package adminsrv

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/fsim"
	"repro/internal/lsf"
	"repro/internal/netsim"
	"repro/internal/notify"
	"repro/internal/ontology"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// VIP is the virtual address the active administration server answers on;
// failover moves it, so agents never need to know which box is primary.
const VIP = "admin-vip"

// PoolMount is where both servers mount the shared NFS pool.
const PoolMount = "/nfs/pool"

// HostAspect is the registry aspect for whole-host (hardware) faults the
// admin tier detects by missing flags.
func HostAspect(host string) string { return "host." + host }

// Server is one of the two administration hosts.
type Server struct {
	Host *cluster.Host
}

// Config assembles the administration pair.
type Config struct {
	Sim      *simclock.Sim
	Primary  *cluster.Host
	Standby  *cluster.Host
	Pool     *fsim.Volume // shared NFS volume
	Networks []*netsim.Network
	Dir      *svc.Directory
	LSF      *lsf.Cluster // may be nil when no batch tier exists
	Registry *faultinject.Registry
	Notify   *notify.Bus
	ISSL     *ontology.ISSL
	// OncallEmail receives escalations for faults needing humans.
	OncallEmail string
	// AgentPeriod is X, the agents' cron period; the flag sweep runs every
	// X+5 minutes as the paper prescribes.
	AgentPeriod simclock.Time
	// DGSPLPeriod defaults to the paper's 15 minutes.
	DGSPLPeriod simclock.Time
}

// Pair is the running administration tier.
type Pair struct {
	cfg     Config
	sim     *simclock.Sim
	servers [2]*Server
	active  int // index into servers

	// latest DLSP per origin server, as received over the network.
	profiles map[string]*ontology.DLSP
	// flagDirs is the watch list with precomputed flag-directory paths
	// (host -> one path per expected agent), and hostOrder keeps the
	// watched host names sorted — the sweep runs every few simulated
	// minutes on every host, so its per-pass allocations are hoisted to
	// Watch time.
	flagDirs  map[string][]string
	hostOrder []string
	hosts     map[string]*cluster.Host
	// hostDown tracks open whole-host faults we already escalated.
	hostDown map[string]bool
	// latestDGSPL is the most recent generation.
	latestDGSPL *ontology.DGSPL
	// jobEscalated records unplaceable jobs already emailed about.
	jobEscalated map[int]bool

	// Counters for reports and tests.
	Failovers     int
	DLSPReceived  int
	FlagSweeps    int
	AgentRestarts int
	Resubmissions int
	Escalations   int

	tickers []*simclock.Ticker
}

// New assembles and starts the administration tier: mounts the pool on
// both servers, attaches the VIP to the active one, and starts the
// heartbeat, flag-sweep, DGSPL and batch-rescue loops.
func New(cfg Config) (*Pair, error) {
	if cfg.Sim == nil || cfg.Primary == nil || cfg.Standby == nil || cfg.Pool == nil {
		return nil, fmt.Errorf("adminsrv: sim, primary, standby and pool are required")
	}
	if cfg.AgentPeriod <= 0 {
		cfg.AgentPeriod = 5 * simclock.Minute
	}
	if cfg.DGSPLPeriod <= 0 {
		cfg.DGSPLPeriod = 15 * simclock.Minute
	}
	p := &Pair{
		cfg:      cfg,
		sim:      cfg.Sim,
		servers:  [2]*Server{{Host: cfg.Primary}, {Host: cfg.Standby}},
		profiles: make(map[string]*ontology.DLSP),
		flagDirs: make(map[string][]string),
		hosts:    make(map[string]*cluster.Host),
		hostDown: make(map[string]bool),
	}
	cfg.Primary.FS.Mount(PoolMount, cfg.Pool)
	cfg.Standby.FS.Mount(PoolMount, cfg.Pool)
	if cfg.ISSL != nil {
		_ = cfg.Primary.FS.WriteLines(PoolMount+"/issl.txt", cfg.ISSL.Encode())
	}
	p.attachVIP()

	// Heartbeat: failover within a minute of the active server dying.
	p.tickers = append(p.tickers, p.sim.Every(p.sim.Now()+simclock.Minute, simclock.Minute,
		"adminsrv-heartbeat", p.heartbeat))
	// Flag sweep every X+5 minutes.
	p.tickers = append(p.tickers, p.sim.Every(p.sim.Now()+cfg.AgentPeriod+5*simclock.Minute,
		cfg.AgentPeriod+5*simclock.Minute, "adminsrv-flagsweep", p.flagSweep))
	// DGSPL generation every 15 minutes.
	p.tickers = append(p.tickers, p.sim.Every(p.sim.Now()+cfg.DGSPLPeriod, cfg.DGSPLPeriod,
		"adminsrv-dgspl", func(now simclock.Time) { p.GenerateDGSPL(now) }))
	// Batch rescue sweep at the agent period (the paper's agents check
	// job health every 5 minutes).
	if cfg.LSF != nil {
		p.tickers = append(p.tickers, p.sim.Every(p.sim.Now()+cfg.AgentPeriod, cfg.AgentPeriod,
			"adminsrv-batch", p.batchSweep))
	}
	return p, nil
}

// Stop cancels the pair's loops (scenario teardown).
func (p *Pair) Stop() {
	for _, t := range p.tickers {
		t.Stop()
	}
}

// Active returns the currently active server.
func (p *Pair) Active() *Server { return p.servers[p.active] }

// attachVIP points the virtual address at the active server on every
// network.
func (p *Pair) attachVIP() {
	for _, n := range p.cfg.Networks {
		n.Attach(VIP, func(now simclock.Time, msg netsim.Message) { p.receive(now, msg) })
	}
}

// heartbeat fails over to the standby when the active server is down.
func (p *Pair) heartbeat(now simclock.Time) {
	if p.Active().Host.Up() {
		return
	}
	other := 1 - p.active
	if !p.servers[other].Host.Up() {
		return // both down; nothing to do until someone reboots them
	}
	p.active = other
	p.Failovers++
	// The VIP handler closure reads p.active, so reattachment is only
	// needed if a network lost it; re-attach defensively.
	p.attachVIP()
}

// Watch registers a host and the agent names expected to drop flags there.
func (p *Pair) Watch(h *cluster.Host, agentNames ...string) {
	if _, known := p.hosts[h.Name]; !known {
		p.hostOrder = append(p.hostOrder, h.Name)
		sort.Strings(p.hostOrder)
	}
	p.hosts[h.Name] = h
	for _, name := range agentNames {
		p.flagDirs[h.Name] = append(p.flagDirs[h.Name], "/logs/intelliagents/"+name)
	}
}

// receive handles messages arriving at the VIP.
func (p *Pair) receive(now simclock.Time, msg netsim.Message) {
	if !p.Active().Host.Up() {
		return
	}
	switch msg.Kind {
	case "dlsp":
		prof, err := ontology.DecodeDLSPText(msg.Payload)
		if err != nil {
			return
		}
		p.profiles[prof.Server] = prof
		p.DLSPReceived++
	case "agent-escalation":
		p.Escalations++
	}
}

// Profiles reports how many servers have delivered a DLSP.
func (p *Pair) Profiles() int { return len(p.profiles) }

// flagSweep checks every watched host: dead hosts are whole-host faults to
// detect and escalate; live hosts with no recent flags mean broken agents,
// which the admin tier troubleshoots (here: counts and re-kicks via the
// registered restart hook).
func (p *Pair) flagSweep(now simclock.Time) {
	if !p.Active().Host.Up() {
		return
	}
	p.FlagSweeps++
	for _, name := range p.hostOrder {
		h := p.hosts[name]
		if !h.Up() {
			p.handleDeadHost(now, h)
			continue
		}
		delete(p.hostDown, name)
		for _, flagDir := range p.flagDirs[name] {
			if !h.FS.HasFileWithSuffix(flagDir, ".flag") {
				// Missing flags: internal intelliagent problem or it never
				// ran (§3.3). Troubleshoot the agent process.
				p.AgentRestarts++
			}
		}
	}
}

// handleDeadHost detects (and escalates once) a whole-host failure.
func (p *Pair) handleDeadHost(now simclock.Time, h *cluster.Host) {
	if p.cfg.Registry != nil {
		p.cfg.Registry.Detected(h.Name, HostAspect(h.Name), now, "adminserver")
	}
	if p.hostDown[h.Name] {
		return
	}
	p.hostDown[h.Name] = true
	if p.cfg.Notify != nil && p.cfg.OncallEmail != "" {
		p.cfg.Notify.Send(notify.Email, "adminserver", p.cfg.OncallEmail,
			"server "+h.Name+" unreachable",
			fmt.Sprintf("no agent flags, host state %s; manual intervention required", h.State()),
			"host-down")
	}
}
