package adminsrv

import (
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/fsim"
	"repro/internal/lsf"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/notify"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// rig: two admin servers, nDB database hosts with oracle + status agents,
// an LSF cluster, private+public networks.
type rig struct {
	sim    *simclock.Sim
	pair   *Pair
	bus    *notify.Bus
	dir    *svc.Directory
	ledger *metrics.Ledger
	reg    *faultinject.Registry
	lsfc   *lsf.Cluster
	priv   *netsim.Network
	pub    *netsim.Network
	admin1 *cluster.Host
	admin2 *cluster.Host
	dbs    []*svc.Service
}

func newRig(t *testing.T, nDB int) *rig {
	t.Helper()
	sim := simclock.New(23)
	r := &rig{
		sim:    sim,
		bus:    notify.NewBus(sim),
		dir:    svc.NewDirectory(),
		ledger: metrics.NewLedger(),
	}
	r.reg = faultinject.NewRegistry(r.ledger)
	r.priv = netsim.New(sim, "private", simclock.Second, 0)
	r.pub = netsim.New(sim, "public", simclock.Second, 0)
	r.admin1 = cluster.NewHost(sim, "admin1", "10.1.0.1", cluster.ModelE450, cluster.RoleAdmin, "london-dc1", "UK")
	r.admin2 = cluster.NewHost(sim, "admin2", "10.1.0.2", cluster.ModelE450, cluster.RoleAdmin, "london-dc1", "UK")

	models := []cluster.HardwareModel{cluster.ModelE4500, cluster.ModelE10K, cluster.ModelE450}
	for i := 0; i < nDB; i++ {
		name := "db" + string(rune('A'+i))
		h := cluster.NewHost(sim, name, "10.0.0."+string(rune('1'+i)), models[i%len(models)], cluster.RoleDatabase, "london-dc1", "UK")
		s, err := svc.New(sim, svc.OracleSpec("ORA-"+string(rune('A'+i)), 1521), h)
		if err != nil {
			t.Fatal(err)
		}
		r.dir.Add(s)
		s.Start(nil)
		r.dbs = append(r.dbs, s)
		r.priv.Attach(name, nil)
		r.pub.Attach(name, nil)
	}
	sim.RunUntil(10 * simclock.Minute)

	r.lsfc = lsf.NewCluster(sim, r.dir)
	for _, s := range r.dbs {
		r.lsfc.SetSlotLimit(s.Spec.Name, 4)
	}

	pool := fsim.NewVolume()
	pair, err := New(Config{
		Sim: sim, Primary: r.admin1, Standby: r.admin2, Pool: pool,
		Networks: []*netsim.Network{r.priv, r.pub},
		Dir:      r.dir, LSF: r.lsfc, Registry: r.reg, Notify: r.bus,
		OncallEmail: "oncall@site", AgentPeriod: 5 * simclock.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.pair = pair

	// Status agents push DLSPs to the VIP over a per-host router.
	for _, s := range r.dbs {
		host := s.Host
		router := netsim.NewRouter(r.priv, r.pub)
		cfg := agent.Config{
			Host:     host,
			Services: r.dir,
			Notify:   r.bus,
			Report: func(kind, payload string) {
				router.Send(netsim.Message{From: host.Name, To: VIP, Kind: kind, Payload: payload})
			},
		}
		sa, err := agents.NewStatusAgent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sa.Schedule(sim, 0, 5*simclock.Minute)
		pair.Watch(host, sa.Name())
	}
	return r
}

func TestDLSPCollection(t *testing.T) {
	r := newRig(t, 3)
	r.sim.RunUntil(r.sim.Now() + 20*simclock.Minute)
	if r.pair.Profiles() != 3 {
		t.Errorf("profiles = %d, want 3", r.pair.Profiles())
	}
	if r.pair.DLSPReceived < 3 {
		t.Errorf("DLSP received = %d", r.pair.DLSPReceived)
	}
}

func TestDGSPLGenerationAndPoolFile(t *testing.T) {
	r := newRig(t, 3)
	r.sim.RunUntil(r.sim.Now() + 40*simclock.Minute)
	list := r.pair.LatestDGSPL()
	if list == nil || len(list.Entries) != 3 {
		t.Fatalf("dgspl = %+v", list)
	}
	for _, e := range list.Entries {
		if e.AppType != "oracle" || e.State != "running" || e.JobLimit != 4 {
			t.Errorf("entry: %+v", e)
		}
		if e.Geo != "UK" || e.Site != "london-dc1" {
			t.Errorf("geo/site missing: %+v", e)
		}
	}
	// The per-type pool file decodes and is visible from BOTH admin
	// servers via the shared NFS pool.
	fromPool, err := r.pair.ReadPoolDGSPL("oracle")
	if err != nil {
		t.Fatal(err)
	}
	if len(fromPool.Entries) != 3 {
		t.Errorf("pool entries = %d", len(fromPool.Entries))
	}
	lines, err := r.admin2.FS.ReadLines(PoolMount + "/dgspl-oracle.txt")
	if err != nil || len(lines) == 0 {
		t.Errorf("standby cannot read pool: %v", err)
	}
}

func TestShortlistPrefersPowerfulIdleServers(t *testing.T) {
	r := newRig(t, 3) // dbA=E4500, dbB=E10K, dbC=E450
	r.sim.RunUntil(r.sim.Now() + 20*simclock.Minute)
	r.pair.GenerateDGSPL(r.sim.Now())
	sl := r.pair.Shortlist("oracle")
	if len(sl) != 3 || sl[0].Server != "dbB" {
		names := []string{}
		for _, e := range sl {
			names = append(names, e.Server)
		}
		t.Errorf("shortlist = %v, want dbB (E10K) first", names)
	}
}

func TestFailoverOnPrimaryDeath(t *testing.T) {
	r := newRig(t, 2)
	if r.pair.Active().Host != r.admin1 {
		t.Fatal("primary should start active")
	}
	r.admin1.Crash()
	r.sim.RunUntil(r.sim.Now() + 3*simclock.Minute)
	if r.pair.Active().Host != r.admin2 {
		t.Fatal("failover did not happen")
	}
	if r.pair.Failovers != 1 {
		t.Errorf("failovers = %d", r.pair.Failovers)
	}
	// The standby keeps collecting DLSPs and generating DGSPLs.
	before := r.pair.DLSPReceived
	r.sim.RunUntil(r.sim.Now() + 20*simclock.Minute)
	if r.pair.DLSPReceived <= before {
		t.Error("standby not receiving DLSPs after failover")
	}
	if r.pair.LatestDGSPL() == nil {
		t.Error("standby not generating DGSPLs")
	}
}

func TestNoFailoverWhenBothDown(t *testing.T) {
	r := newRig(t, 1)
	r.admin1.Crash()
	r.admin2.Crash()
	r.sim.RunUntil(r.sim.Now() + 5*simclock.Minute)
	if r.pair.Failovers != 0 {
		t.Error("cannot fail over to a dead standby")
	}
}

func TestFlagSweepDetectsDeadHost(t *testing.T) {
	r := newRig(t, 2)
	r.sim.RunUntil(r.sim.Now() + 15*simclock.Minute)
	host := r.dbs[0].Host
	// Register the whole-host fault, then kill the host.
	r.reg.Add(metrics.CatHardware, host.Name, HostAspect(host.Name), "cpu board", true, r.sim.Now(),
		func(simclock.Time) bool { return host.Up() })
	host.HardwareFail()
	r.sim.RunUntil(r.sim.Now() + 15*simclock.Minute)
	incs := r.ledger.Incidents()
	if len(incs) != 1 || !incs[0].Detected || incs[0].DetectedBy != "adminserver" {
		t.Fatalf("incident: %+v", incs[0])
	}
	if incs[0].DetectionLatency() > 11*simclock.Minute {
		t.Errorf("detection latency = %v, want within one X+5 sweep", incs[0].DetectionLatency())
	}
	if r.bus.CountByTag("host-down") != 1 {
		t.Errorf("host-down emails = %d, want exactly 1 (no repeat)", r.bus.CountByTag("host-down"))
	}
	r.sim.RunUntil(r.sim.Now() + 30*simclock.Minute)
	if r.bus.CountByTag("host-down") != 1 {
		t.Error("dead host re-escalated every sweep")
	}
}

func TestFlagSweepCountsAgentRestarts(t *testing.T) {
	r := newRig(t, 1)
	// Watch a phantom agent that never drops flags.
	r.pair.Watch(r.dbs[0].Host, "phantom-agent")
	r.sim.RunUntil(r.sim.Now() + 25*simclock.Minute)
	if r.pair.AgentRestarts == 0 {
		t.Error("missing flags should trigger agent troubleshooting")
	}
	if r.pair.FlagSweeps == 0 {
		t.Error("no sweeps ran")
	}
}

func TestBatchRescueViaDGSPL(t *testing.T) {
	r := newRig(t, 3)
	r.sim.RunUntil(r.sim.Now() + 20*simclock.Minute)
	// Submit jobs against dbA (E4500), then crash it mid-job.
	var jobs []*lsf.Job
	for i := 0; i < 3; i++ {
		jobs = append(jobs, r.lsfc.Submit("overnight-calc", "analyst1", "ORA-A", 1, 256, 0.1, 2*simclock.Hour))
	}
	r.sim.RunUntil(r.sim.Now() + 10*simclock.Minute)
	r.dbs[0].Crash()
	r.lsfc.FailJobsOn("ORA-A", "database crashed mid-job")
	// Within an agent period the admin tier should resubmit all three to
	// the more powerful E10K (dbB) — equal or higher power than E4500.
	r.sim.RunUntil(r.sim.Now() + 16*simclock.Minute)
	if r.pair.Resubmissions != 3 {
		t.Fatalf("resubmissions = %d", r.pair.Resubmissions)
	}
	for _, j := range jobs {
		if j.State != lsf.JobRunning && j.State != lsf.JobDone {
			t.Errorf("job %d state = %s", j.ID, j.State)
		}
		if j.Server != "ORA-B" {
			t.Errorf("job %d resubmitted to %s, want ORA-B (E10K)", j.ID, j.Server)
		}
	}
	// Jobs eventually complete.
	r.sim.RunUntil(r.sim.Now() + 6*simclock.Hour)
	for _, j := range jobs {
		if j.State != lsf.JobDone {
			t.Errorf("job %d final state = %s (%s)", j.ID, j.State, j.FailReason)
		}
	}
}

func TestUnplaceableJobEscalates(t *testing.T) {
	r := newRig(t, 1)
	r.sim.RunUntil(r.sim.Now() + 20*simclock.Minute)
	j := r.lsfc.Submit("calc", "analyst", "ORA-A", 1, 256, 0, 2*simclock.Hour)
	r.dbs[0].Crash()
	r.lsfc.FailJobsOn("ORA-A", "crash")
	r.sim.RunUntil(r.sim.Now() + 30*simclock.Minute)
	if j.State != lsf.JobFailed {
		t.Fatalf("job state = %s", j.State)
	}
	if r.bus.CountByTag("job-unplaceable") != 1 {
		t.Errorf("unplaceable emails = %d, want exactly 1", r.bus.CountByTag("job-unplaceable"))
	}
}

func TestDailySummary(t *testing.T) {
	r := newRig(t, 2)
	r.sim.RunUntil(r.sim.Now() + 30*simclock.Minute)
	sum := r.pair.DailySummary(r.sim.Now())
	for _, want := range []string{"profiles=2", "jobs:", "flag-sweeps"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
}
