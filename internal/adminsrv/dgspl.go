package adminsrv

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/lsf"
	"repro/internal/notify"
	"repro/internal/ontology"
	"repro/internal/simclock"
)

// GenerateDGSPL assembles the datacentre-wide service list from the latest
// DLSPs plus live LSF slot accounting, writes one file per application type
// to the shared NFS pool, and returns the combined list. The paper's admin
// servers do this "per database type every 15 minutes on average".
func (p *Pair) GenerateDGSPL(now simclock.Time) *ontology.DGSPL {
	if !p.Active().Host.Up() {
		return nil
	}
	list := &ontology.DGSPL{GeneratedAt: now}
	servers := make([]string, 0, len(p.profiles))
	for s := range p.profiles {
		servers = append(servers, s)
	}
	sort.Strings(servers)
	for _, server := range servers {
		prof := p.profiles[server]
		h := p.hosts[server]
		geo, site := "", ""
		if h != nil {
			geo, site = h.Geo, h.Site
		}
		for _, s := range prof.Services {
			e := ontology.DGSPLEntry{
				Server:     prof.Server,
				ServerType: prof.Model,
				OS:         prof.OS,
				CPUs:       prof.CPUs,
				MemoryMB:   prof.MemoryMB,
				AppName:    s.Name,
				AppType:    s.Kind,
				AppVersion: versionOf(p, s.Name),
				Load:       prof.CPUUtil,
				Users:      prof.Users,
				Geo:        geo,
				Site:       site,
				State:      s.State,
			}
			if p.cfg.LSF != nil {
				e.JobsRunning = p.cfg.LSF.RunningOn(s.Name)
				e.JobsWaiting = p.cfg.LSF.WaitingFor(s.Name)
				e.JobLimit = p.cfg.LSF.SlotLimit(s.Name)
			}
			list.Entries = append(list.Entries, e)
		}
	}
	// One file per application type on the shared pool.
	byType := map[string][]string{}
	for _, e := range list.Entries {
		single := &ontology.DGSPL{GeneratedAt: now, Entries: []ontology.DGSPLEntry{e}}
		// Strip header lines after the first entry of a type.
		lines := single.Encode()
		if len(byType[e.AppType]) == 0 {
			byType[e.AppType] = lines
		} else {
			byType[e.AppType] = append(byType[e.AppType], lines[2:]...)
		}
	}
	// Write in sorted type order: map order would vary the pool volume's
	// file-creation sequence run to run, and everything downstream of the
	// simulation is held to bit-for-bit replay.
	fs := p.Active().Host.FS
	for _, appType := range slices.Sorted(maps.Keys(byType)) {
		_ = fs.WriteLines(fmt.Sprintf("%s/dgspl-%s.txt", PoolMount, appType), byType[appType])
	}
	p.latestDGSPL = list
	return list
}

func versionOf(p *Pair, svcName string) string {
	if p.cfg.Dir == nil {
		return ""
	}
	if s := p.cfg.Dir.Get(svcName); s != nil {
		return s.Spec.Version
	}
	return ""
}

// LatestDGSPL returns the most recently generated list (nil before the
// first generation).
func (p *Pair) LatestDGSPL() *ontology.DGSPL { return p.latestDGSPL }

// ReadPoolDGSPL decodes the per-type list from the shared pool, as another
// consumer (or a grid resource-discovery mechanism, §5) would.
func (p *Pair) ReadPoolDGSPL(appType string) (*ontology.DGSPL, error) {
	lines, err := p.Active().Host.FS.ReadLines(fmt.Sprintf("%s/dgspl-%s.txt", PoolMount, appType))
	if err != nil {
		return nil, err
	}
	return ontology.DecodeDGSPL(lines)
}

// powerOf ranks server types for the shortlist; unknown models fall back to
// CPU count.
func powerOf(model string, cpus int) float64 {
	if m, ok := cluster.ModelByName(model); ok {
		return m.Power()
	}
	return float64(cpus)
}

// Shortlist presents the best available servers for a database type, best
// first, from the latest DGSPL.
func (p *Pair) Shortlist(appType string) []ontology.DGSPLEntry {
	if p.latestDGSPL == nil {
		return nil
	}
	return p.latestDGSPL.Shortlist(appType, powerOf)
}

// batchSweep finds failed batch jobs and resubmits each to the best
// available database server from the DGSPL, preferring servers of equal or
// higher power than the one that failed (§4, SLKT-guided selection). Jobs
// that cannot be placed anywhere are escalated to the operators by email.
func (p *Pair) batchSweep(now simclock.Time) {
	if !p.Active().Host.Up() || p.cfg.LSF == nil {
		return
	}
	if p.latestDGSPL == nil {
		p.GenerateDGSPL(now)
	}
	for _, j := range p.cfg.LSF.Jobs() {
		if j.State != lsf.JobFailed {
			continue
		}
		target := p.pickResubmitTarget(j)
		if target == "" {
			p.escalateJob(j)
			continue
		}
		if err := p.cfg.LSF.Requeue(j.ID, target); err == nil {
			p.Resubmissions++
		}
	}
}

// pickResubmitTarget chooses the replacement server for a failed job:
// same application type as the old server, available, free slots, equal-
// or-higher power preferred, never the server that just failed.
func (p *Pair) pickResubmitTarget(j *lsf.Job) string {
	appType := p.appTypeOf(j.Server)
	if appType == "" {
		appType = string(firstDBType(p))
	}
	cands := p.Shortlist(appType)
	var failedPower float64
	if e := p.findEntry(j.Server); e != nil {
		failedPower = powerOf(e.ServerType, e.CPUs)
	}
	// First pass: equal or higher power.
	for _, e := range cands {
		if e.AppName == j.Server {
			continue
		}
		if powerOf(e.ServerType, e.CPUs) >= failedPower {
			return e.AppName
		}
	}
	// Second pass: anything available beats nothing ("choosing randomly a
	// server ... although not ideal, significantly decreased downtime").
	for _, e := range cands {
		if e.AppName != j.Server {
			return e.AppName
		}
	}
	return ""
}

func (p *Pair) appTypeOf(svcName string) string {
	if p.cfg.Dir != nil {
		if s := p.cfg.Dir.Get(svcName); s != nil {
			return string(s.Spec.Kind)
		}
	}
	if p.latestDGSPL != nil {
		if e := p.latestDGSPL.Entry(svcName); e != nil {
			return e.AppType
		}
	}
	return ""
}

func firstDBType(p *Pair) string {
	if p.latestDGSPL == nil {
		return "oracle"
	}
	for _, e := range p.latestDGSPL.Entries {
		if e.AppType == "oracle" || e.AppType == "sybase" {
			return e.AppType
		}
	}
	return "oracle"
}

func (p *Pair) findEntry(svcName string) *ontology.DGSPLEntry {
	if p.latestDGSPL == nil {
		return nil
	}
	return p.latestDGSPL.Entry(svcName)
}

// escalateJob emails the operators about an unplaceable job, once per
// failure ("if intelliagents were unable to allocate a server for job
// submission at all ... they emailed human operators").
func (p *Pair) escalateJob(j *lsf.Job) {
	if p.cfg.Notify == nil || p.cfg.OncallEmail == "" {
		return
	}
	if p.jobEscalated == nil {
		p.jobEscalated = map[int]bool{}
	}
	if p.jobEscalated[j.ID] {
		return
	}
	p.jobEscalated[j.ID] = true
	p.cfg.Notify.Send(notify.Email, "adminserver", p.cfg.OncallEmail,
		fmt.Sprintf("batch job %d unplaceable", j.ID),
		fmt.Sprintf("job %q failed on %s (%s); no database server available for resubmission",
			j.Name, j.Server, j.FailReason), "job-unplaceable")
}

// DailySummary renders the measurement summary the agents email to
// nominated administrators on a daily basis (§4).
func (p *Pair) DailySummary(now simclock.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "daily summary at %v\n", now)
	fmt.Fprintf(&b, "profiles=%d dlsp-received=%d flag-sweeps=%d agent-restarts=%d\n",
		len(p.profiles), p.DLSPReceived, p.FlagSweeps, p.AgentRestarts)
	if p.cfg.LSF != nil {
		counts := p.cfg.LSF.CountByState()
		fmt.Fprintf(&b, "jobs: done=%d failed=%d running=%d pending=%d resubmitted=%d\n",
			counts[lsf.JobDone], counts[lsf.JobFailed], counts[lsf.JobRunning],
			counts[lsf.JobPending], p.Resubmissions)
	}
	return b.String()
}
