// Package probe is the site-wide batched health-probe dispatcher that
// makes datacentre-scale sites tractable. Every service is probed once
// per cycle; instead of one repeating scheduler event per service (tens
// of thousands of heap entries on a megasite), each tier's members are
// split across a handful of evenly-phased batch slots and one coalesced
// wheel entry per (tier, slot) walks its contiguous member range. Probe
// bookkeeping (last exit code, consecutive-failure streak) is held in
// struct-of-arrays slices indexed like the member slice, so a batch walk
// is a linear scan.
//
// The engine consumes no random numbers and mutates no simulation state
// beyond its own bookkeeping: a probe reads the service and reports
// failures through the OnFail hook. Reference mode schedules one
// independent repeating event per member at the same instants — because
// same-instant events fire in FIFO scheduling order, which equals the
// batch's walk order, the two paths are behaviourally identical; the
// equivalence tests pin exactly that. (As with the cron wheel, work
// scheduled by an OnFail callback for the precise instant of a *later*
// probe in the same batch would interleave differently between the two
// paths — unreachable in practice, since repair delays are drawn from
// continuous distributions.)
package probe

import (
	"fmt"

	"repro/internal/simclock"
	"repro/internal/svc"
)

// Config parameterises an Engine.
type Config struct {
	Sim *simclock.Sim
	// Period is the probe cycle length; every member is probed once per
	// period. Must be positive.
	Period simclock.Time
	// Slots is the number of batch slots each tier's members are spread
	// across. Must be positive; slots beyond a tier's member count walk
	// nothing and are skipped.
	Slots int
	// Reference disables coalescing: one independent repeating event per
	// member service, the semantics baseline the batched path is
	// equivalence-tested against.
	Reference bool
	// OnFail is invoked for every failing probe (nil: failures are only
	// counted).
	OnFail func(s *svc.Service, res svc.ProbeResult, now simclock.Time)
}

// tierSched is one tier's probe schedule: a dense member slice in
// deployment order plus struct-of-arrays bookkeeping indexed like it.
type tierSched struct {
	name       string
	members    []*svc.Service
	lastExit   []int8  // last probe exit code (ExitOK..ExitTimeout fit int8)
	failStreak []int32 // consecutive failing probes
}

// Engine owns the probe schedules for one site. Zero value is unusable;
// use New.
type Engine struct {
	cfg     Config
	tiers   []*tierSched
	wheel   *simclock.Wheel
	started bool

	probes  int64 // probes issued
	fails   int64 // failing probes
	batches int64 // batch walks fired (batched path only)
}

// New returns an engine with no tiers registered.
func New(cfg Config) *Engine {
	if cfg.Sim == nil {
		panic("probe: Config.Sim is nil")
	}
	if cfg.Period <= 0 {
		panic(fmt.Sprintf("probe: non-positive period %v", cfg.Period))
	}
	if cfg.Slots <= 0 {
		panic(fmt.Sprintf("probe: non-positive slot count %d", cfg.Slots))
	}
	return &Engine{cfg: cfg}
}

// AddTier registers a tier's member services in deployment order. The
// slice is retained (not copied); callers hand over ownership. Adding
// after Start panics — schedules are laid out once.
func (e *Engine) AddTier(name string, members []*svc.Service) {
	if e.started {
		panic("probe: AddTier after Start")
	}
	e.tiers = append(e.tiers, &tierSched{
		name:       name,
		members:    members,
		lastExit:   make([]int8, len(members)),
		failStreak: make([]int32, len(members)),
	})
}

// Start lays out the schedules: tier t's slot s first fires at
// now + (s+1)·Period/Slots and then every Period, walking the slot's
// contiguous member range. Slot phases are deterministic functions of the
// configuration — no randomness — so the schedule replays identically.
func (e *Engine) Start() {
	if e.started {
		panic("probe: Start called twice")
	}
	e.started = true
	now := e.cfg.Sim.Now()
	for _, t := range e.tiers {
		for s := 0; s < e.cfg.Slots; s++ {
			lo := s * len(t.members) / e.cfg.Slots
			hi := (s + 1) * len(t.members) / e.cfg.Slots
			if lo == hi {
				continue
			}
			start := now + simclock.Time(s+1)*e.cfg.Period/simclock.Time(e.cfg.Slots)
			if e.cfg.Reference {
				for i := lo; i < hi; i++ {
					t, i := t, i
					e.cfg.Sim.Every(start, e.cfg.Period,
						"probe:"+t.members[i].Spec.Name,
						func(nw simclock.Time) { e.probeOne(t, i, nw) })
				}
				continue
			}
			if e.wheel == nil {
				e.wheel = simclock.NewWheel(e.cfg.Sim)
			}
			t, lo, hi := t, lo, hi
			e.wheel.Add(start, e.cfg.Period,
				fmt.Sprintf("probe:%s[%d:%d]", t.name, lo, hi),
				func(nw simclock.Time) {
					e.batches++
					for i := lo; i < hi; i++ {
						e.probeOne(t, i, nw)
					}
				})
		}
	}
}

// probeOne issues one probe and updates the slot's bookkeeping.
func (e *Engine) probeOne(t *tierSched, i int, now simclock.Time) {
	res := t.members[i].Probe()
	e.probes++
	t.lastExit[i] = int8(res.ExitCode)
	if res.OK() {
		t.failStreak[i] = 0
		return
	}
	t.failStreak[i]++
	e.fails++
	if e.cfg.OnFail != nil {
		e.cfg.OnFail(t.members[i], res, now)
	}
}

// Reset returns the engine to its pre-Start state for site reuse: the
// simulator's Reset has already dropped the scheduled events, so only the
// bookkeeping and counters are cleared. Tier membership is retained —
// pooled site reuse resets services in place.
func (e *Engine) Reset() {
	e.started = false
	e.wheel = nil
	e.probes, e.fails, e.batches = 0, 0, 0
	for _, t := range e.tiers {
		clear(t.lastExit)
		clear(t.failStreak)
	}
}

// Probes reports the probes issued since Start (or Reset).
func (e *Engine) Probes() int64 { return e.probes }

// Fails reports the failing probes since Start (or Reset).
func (e *Engine) Fails() int64 { return e.fails }

// Batches reports the coalesced batch walks fired; 0 in reference mode.
func (e *Engine) Batches() int64 { return e.batches }

// Tiers reports the number of registered tiers.
func (e *Engine) Tiers() int { return len(e.tiers) }

// LastExit reports the most recent probe exit code for the i-th member of
// the named tier (deployment order), or -1 if the tier or index is
// unknown. Exposed for tests and diagnostics.
func (e *Engine) LastExit(tier string, i int) int {
	for _, t := range e.tiers {
		if t.name == tier && i >= 0 && i < len(t.lastExit) {
			return int(t.lastExit[i])
		}
	}
	return -1
}

// FailStreak reports the i-th member's consecutive-failure count, or -1.
func (e *Engine) FailStreak(tier string, i int) int {
	for _, t := range e.tiers {
		if t.name == tier && i >= 0 && i < len(t.failStreak) {
			return int(t.failStreak[i])
		}
	}
	return -1
}
