// Package probe is the site-wide batched health-probe dispatcher that
// makes datacentre-scale sites tractable. Every service is probed once
// per cycle; instead of one repeating scheduler event per service (tens
// of thousands of heap entries on a megasite), each tier's members are
// split across a handful of evenly-phased batch slots and one coalesced
// wheel entry per (tier, slot) walks its contiguous member range. Probe
// bookkeeping (last exit code, consecutive-failure streak) is held in
// struct-of-arrays slices indexed like the member slice, so a batch walk
// is a linear scan.
//
// The engine consumes no random numbers and mutates no simulation state
// beyond its own bookkeeping: a probe reads the service and reports
// failures through the OnFail hook. Reference mode schedules one
// independent repeating event per member at the same instants — because
// same-instant events fire in FIFO scheduling order, which equals the
// batch's walk order, the two paths are behaviourally identical; the
// equivalence tests pin exactly that. (As with the cron wheel, work
// scheduled by an OnFail callback for the precise instant of a *later*
// probe in the same batch would interleave differently between the two
// paths — unreachable in practice, since repair delays are drawn from
// continuous distributions.)
//
// With a shard pool (Config.Pool) each (tier, slot) range is further
// split into one prepared wheel entry per shard. Inside a tick the
// shards walk their sub-ranges concurrently — Service.Probe is a pure
// read and the struct-of-arrays bookkeeping is indexed by member, so
// sub-ranges touch disjoint elements — buffering failures locally; at
// the tick barrier the wheel replays each sub-range's counter updates
// and OnFail callbacks serially in registration order, which is exactly
// the serial walk order. The observable effect sequence (ledger writes,
// repair scheduling, random-stream consumption) is therefore identical
// at any shard count, and the equivalence tests pin that too.
package probe

import (
	"fmt"

	"repro/internal/simclock"
	"repro/internal/svc"
)

// Config parameterises an Engine.
type Config struct {
	Sim *simclock.Sim
	// Period is the probe cycle length; every member is probed once per
	// period. Must be positive.
	Period simclock.Time
	// Slots is the number of batch slots each tier's members are spread
	// across. Must be positive; slots beyond a tier's member count walk
	// nothing and are skipped.
	Slots int
	// Reference disables coalescing: one independent repeating event per
	// member service, the semantics baseline the batched path is
	// equivalence-tested against.
	Reference bool
	// Pool shards each (tier, slot) batch walk across its workers inside
	// a tick window (nil or 1-shard: every walk stays on the event-loop
	// goroutine). Ignored in reference mode.
	Pool *simclock.Pool
	// OnFail is invoked for every failing probe (nil: failures are only
	// counted).
	OnFail func(s *svc.Service, res svc.ProbeResult, now simclock.Time)
}

// tierSched is one tier's probe schedule: a dense member slice in
// deployment order plus struct-of-arrays bookkeeping indexed like it.
type tierSched struct {
	name       string
	members    []*svc.Service
	lastExit   []int8  // last probe exit code (ExitOK..ExitTimeout fit int8)
	failStreak []int32 // consecutive failing probes
}

// Engine owns the probe schedules for one site. Zero value is unusable;
// use New.
type Engine struct {
	cfg     Config
	tiers   []*tierSched
	wheel   *simclock.Wheel
	started bool

	probes  int64 // probes issued
	fails   int64 // failing probes
	batches int64 // batch walks fired (batched path only)
}

// New returns an engine with no tiers registered.
func New(cfg Config) *Engine {
	if cfg.Sim == nil {
		panic("probe: Config.Sim is nil")
	}
	if cfg.Period <= 0 {
		panic(fmt.Sprintf("probe: non-positive period %v", cfg.Period))
	}
	if cfg.Slots <= 0 {
		panic(fmt.Sprintf("probe: non-positive slot count %d", cfg.Slots))
	}
	return &Engine{cfg: cfg}
}

// AddTier registers a tier's member services in deployment order. The
// slice is retained (not copied); callers hand over ownership. Adding
// after Start panics — schedules are laid out once.
func (e *Engine) AddTier(name string, members []*svc.Service) {
	if e.started {
		panic("probe: AddTier after Start")
	}
	e.tiers = append(e.tiers, &tierSched{
		name:       name,
		members:    members,
		lastExit:   make([]int8, len(members)),
		failStreak: make([]int32, len(members)),
	})
}

// Start lays out the schedules: tier t's slot s first fires at
// now + (s+1)·Period/Slots and then every Period, walking the slot's
// contiguous member range — split into one prepared wheel entry per pool
// shard, so a multi-shard pool probes the sub-ranges concurrently and
// merges at the tick barrier. Slot phases are deterministic functions of
// the configuration — no randomness — so the schedule replays
// identically.
func (e *Engine) Start() {
	if e.started {
		panic("probe: Start called twice")
	}
	e.started = true
	now := e.cfg.Sim.Now()
	shards := e.cfg.Pool.Shards()
	for _, t := range e.tiers {
		for s := 0; s < e.cfg.Slots; s++ {
			lo := s * len(t.members) / e.cfg.Slots
			hi := (s + 1) * len(t.members) / e.cfg.Slots
			if lo == hi {
				continue
			}
			start := now + simclock.Time(s+1)*e.cfg.Period/simclock.Time(e.cfg.Slots)
			if e.cfg.Reference {
				for i := lo; i < hi; i++ {
					t, i := t, i
					e.cfg.Sim.Every(start, e.cfg.Period,
						"probe:"+t.members[i].Spec.Name,
						func(nw simclock.Time) { e.probeOne(t, i, nw) })
				}
				continue
			}
			if e.wheel == nil {
				e.wheel = simclock.NewWheel(e.cfg.Sim)
				e.wheel.SetPool(e.cfg.Pool)
			}
			// Registration is tier-major, shard-minor: each slot's bucket
			// holds one sub-range entry per (tier, shard), so the wheel's
			// strided shard assignment hands every worker one sub-range
			// per tier, and the barrier's registration-order apply equals
			// the serial walk order.
			for sh := 0; sh < shards; sh++ {
				off, end := simclock.Span(sh, shards, hi-lo)
				slo, shi := lo+off, lo+end
				if slo == shi {
					continue
				}
				r := &shardRange{e: e, t: t, lo: slo, hi: shi}
				r.apply = r.merge
				e.wheel.AddPrepared(start, e.cfg.Period,
					fmt.Sprintf("probe:%s[%d:%d]", t.name, slo, shi),
					r.prepare)
			}
		}
	}
}

// shardRange is one shard's contiguous slice of a (tier, slot) batch. Its
// prepare walks the slice — pure service reads plus writes to the
// member-indexed bookkeeping elements this range owns — buffering
// failures; its merge publishes counters and fires OnFail serially at the
// tick barrier. The apply closure is allocated once at Start so a tick
// allocates nothing.
type shardRange struct {
	e      *Engine
	t      *tierSched
	lo, hi int
	fails  []failedProbe           // this tick's failures, reused across ticks
	apply  func(now simclock.Time) // == r.merge, preallocated
}

// failedProbe records one failing probe for the barrier merge.
type failedProbe struct {
	i   int
	res svc.ProbeResult
}

// prepare is the concurrent phase: probe every member in [lo, hi).
func (r *shardRange) prepare(now simclock.Time) func(now simclock.Time) {
	r.fails = r.fails[:0]
	t := r.t
	for i := r.lo; i < r.hi; i++ {
		res := t.members[i].Probe()
		t.lastExit[i] = int8(res.ExitCode)
		if res.OK() {
			t.failStreak[i] = 0
			continue
		}
		t.failStreak[i]++
		r.fails = append(r.fails, failedProbe{i: i, res: res})
	}
	return r.apply
}

// merge is the serial phase: publish the walk's counters and report its
// failures in member order.
func (r *shardRange) merge(now simclock.Time) {
	e := r.e
	e.batches++
	e.probes += int64(r.hi - r.lo)
	e.fails += int64(len(r.fails))
	if e.cfg.OnFail != nil {
		for _, f := range r.fails {
			e.cfg.OnFail(r.t.members[f.i], f.res, now)
		}
	}
}

// probeOne issues one probe and updates the slot's bookkeeping (reference
// path).
func (e *Engine) probeOne(t *tierSched, i int, now simclock.Time) {
	res := t.members[i].Probe()
	e.probes++
	t.lastExit[i] = int8(res.ExitCode)
	if res.OK() {
		t.failStreak[i] = 0
		return
	}
	t.failStreak[i]++
	e.fails++
	if e.cfg.OnFail != nil {
		e.cfg.OnFail(t.members[i], res, now)
	}
}

// Reset returns the engine to its pre-Start state for site reuse: the
// simulator's Reset has already dropped the scheduled events, so only the
// bookkeeping and counters are cleared. Tier membership is retained —
// pooled site reuse resets services in place.
func (e *Engine) Reset() {
	e.started = false
	e.wheel = nil
	e.probes, e.fails, e.batches = 0, 0, 0
	for _, t := range e.tiers {
		clear(t.lastExit)
		clear(t.failStreak)
	}
}

// Probes reports the probes issued since Start (or Reset).
func (e *Engine) Probes() int64 { return e.probes }

// Fails reports the failing probes since Start (or Reset).
func (e *Engine) Fails() int64 { return e.fails }

// Batches reports the coalesced batch walks fired — one per (tier, slot,
// shard) sub-range per tick; 0 in reference mode.
func (e *Engine) Batches() int64 { return e.batches }

// Tiers reports the number of registered tiers.
func (e *Engine) Tiers() int { return len(e.tiers) }

// LastExit reports the most recent probe exit code for the i-th member of
// the named tier (deployment order), or -1 if the tier or index is
// unknown. Exposed for tests and diagnostics.
func (e *Engine) LastExit(tier string, i int) int {
	for _, t := range e.tiers {
		if t.name == tier && i >= 0 && i < len(t.lastExit) {
			return int(t.lastExit[i])
		}
	}
	return -1
}

// FailStreak reports the i-th member's consecutive-failure count, or -1.
func (e *Engine) FailStreak(tier string, i int) int {
	for _, t := range e.tiers {
		if t.name == tier && i >= 0 && i < len(t.failStreak) {
			return int(t.failStreak[i])
		}
	}
	return -1
}
