package probe

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// harness builds one engine over two uneven tiers of running services and
// crashes a deterministic subset, so batch walks see a mix of healthy and
// failing members.
type harness struct {
	sim    *simclock.Sim
	engine *Engine
	tiers  map[string][]*svc.Service
	// onFail journals every OnFail callback as "tier/name@minute" — the
	// observable effect order the sharded path must reproduce exactly.
	journal []string
}

func newHarness(t *testing.T, pool *simclock.Pool, reference bool) *harness {
	t.Helper()
	h := &harness{sim: simclock.New(1), tiers: map[string][]*svc.Service{}}
	h.engine = New(Config{
		Sim:       h.sim,
		Period:    10 * simclock.Minute,
		Slots:     3,
		Reference: reference,
		Pool:      pool,
		OnFail: func(s *svc.Service, res svc.ProbeResult, now simclock.Time) {
			h.journal = append(h.journal, fmt.Sprintf("%s@%d:exit%d", s.Spec.Name, now/simclock.Minute, res.ExitCode))
		},
	})
	mk := func(tier string, n int) {
		var members []*svc.Service
		for i := 0; i < n; i++ {
			host := cluster.NewHost(h.sim, fmt.Sprintf("%s%03d", tier, i), fmt.Sprintf("10.9.%d.%d", len(h.tiers), i),
				cluster.ModelE4500, cluster.RoleDatabase, "test-dc", "UK")
			s, err := svc.New(h.sim, svc.OracleSpec(fmt.Sprintf("ORA-%s-%d", tier, i), 1521), host)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(nil); err != nil {
				t.Fatal(err)
			}
			members = append(members, s)
		}
		h.tiers[tier] = members
		h.engine.AddTier(tier, members)
	}
	mk("web", 17) // uneven sizes: ranges don't divide evenly by slots or shards
	mk("db", 5)
	h.sim.RunUntil(5 * simclock.Minute) // let services reach running
	// Crash a deterministic subset so probes fail on both tiers.
	for i, s := range h.tiers["web"] {
		if i%4 == 1 {
			s.Crash()
		}
	}
	h.tiers["db"][3].Crash()
	h.engine.Start()
	h.sim.RunUntil(65 * simclock.Minute)
	return h
}

type snapshot struct {
	probes, fails int64
	journal       []string
	lastExit      map[string][]int
	failStreak    map[string][]int
}

func (h *harness) snapshot() snapshot {
	s := snapshot{
		probes: h.engine.Probes(), fails: h.engine.Fails(),
		journal:  h.journal,
		lastExit: map[string][]int{}, failStreak: map[string][]int{},
	}
	for tier, members := range h.tiers {
		for i := range members {
			s.lastExit[tier] = append(s.lastExit[tier], h.engine.LastExit(tier, i))
			s.failStreak[tier] = append(s.failStreak[tier], h.engine.FailStreak(tier, i))
		}
	}
	return s
}

// TestShardedEngineMatchesReference pins the engine's full observable
// state — counters, per-member bookkeeping and the OnFail journal order —
// across the reference path, the serial batched path and batched paths at
// 2, 3 and 8 shards.
func TestShardedEngineMatchesReference(t *testing.T) {
	want := newHarness(t, nil, true).snapshot()
	if want.fails == 0 || len(want.journal) == 0 {
		t.Fatal("reference harness saw no failures; harness broken")
	}
	variants := []struct {
		name string
		pool *simclock.Pool
	}{
		{"serial", nil},
		{"1shard", simclock.NewPool(1)},
		{"2shards", simclock.NewPool(2)},
		{"3shards", simclock.NewPool(3)},
		{"8shards", simclock.NewPool(8)},
	}
	for _, v := range variants {
		got := newHarness(t, v.pool, false).snapshot()
		if got.probes != want.probes || got.fails != want.fails {
			t.Errorf("%s: probes/fails = %d/%d, want %d/%d", v.name, got.probes, got.fails, want.probes, want.fails)
		}
		if !reflect.DeepEqual(got.journal, want.journal) {
			t.Errorf("%s: OnFail journal diverged\n got: %v\nwant: %v", v.name, got.journal, want.journal)
		}
		if !reflect.DeepEqual(got.lastExit, want.lastExit) {
			t.Errorf("%s: lastExit diverged\n got: %v\nwant: %v", v.name, got.lastExit, want.lastExit)
		}
		if !reflect.DeepEqual(got.failStreak, want.failStreak) {
			t.Errorf("%s: failStreak diverged\n got: %v\nwant: %v", v.name, got.failStreak, want.failStreak)
		}
	}
}

// TestShardedBatchCount pins the batches diagnostic: one walk per
// (tier, slot, shard) sub-range per tick.
func TestShardedBatchCount(t *testing.T) {
	serial := newHarness(t, nil, false)
	sharded := newHarness(t, simclock.NewPool(2), false)
	if serial.engine.Batches() == 0 {
		t.Fatal("serial harness fired no batches")
	}
	if got, lo := sharded.engine.Batches(), serial.engine.Batches(); got <= lo {
		t.Errorf("2-shard batches = %d, want more sub-walks than serial's %d", got, lo)
	}
}
