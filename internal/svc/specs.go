package svc

import (
	"fmt"

	"repro/internal/simclock"
)

// Canonical specs for the application kinds at the paper's site. These are
// the templates the SLKTs are generated from; instance names and ports are
// filled in per deployment.

// OracleSpec returns a spec for an Oracle database instance.
func OracleSpec(name string, port int) Spec {
	return Spec{
		Name:       name,
		Kind:       KindOracle,
		Version:    "8.1.7",
		Port:       port,
		User:       "oracle",
		BinaryPath: "/apps/oracle/bin",
		Components: []Component{
			{ProcName: "ora_pmon", Count: 1, CPUDemand: 0.05, MemMB: 64},
			{ProcName: "ora_smon", Count: 1, CPUDemand: 0.05, MemMB: 64},
			{ProcName: "ora_dbwr", Count: 2, CPUDemand: 0.10, MemMB: 128},
			{ProcName: "ora_lgwr", Count: 1, CPUDemand: 0.10, MemMB: 64},
			{ProcName: "tnslsnr", Count: 1, CPUDemand: 0.02, MemMB: 32},
		},
		ConnectTimeout: 30 * simclock.Second,
		BaseLatency:    200 * simclock.Time(1e6), // 200ms
		StartupTime:    3 * simclock.Minute,
		ShutdownTime:   2 * simclock.Minute,
	}
}

// SybaseSpec returns a spec for a Sybase database instance.
func SybaseSpec(name string, port int) Spec {
	return Spec{
		Name:       name,
		Kind:       KindSybase,
		Version:    "12.0",
		Port:       port,
		User:       "sybase",
		BinaryPath: "/apps/sybase/bin",
		Components: []Component{
			{ProcName: "dataserver", Count: 1, CPUDemand: 0.25, MemMB: 512},
			{ProcName: "backupserver", Count: 1, CPUDemand: 0.05, MemMB: 64},
		},
		ConnectTimeout: 30 * simclock.Second,
		BaseLatency:    180 * simclock.Time(1e6),
		StartupTime:    2 * simclock.Minute,
		ShutdownTime:   1 * simclock.Minute,
	}
}

// WebSpec returns a spec for a web server.
func WebSpec(name string, port int) Spec {
	return Spec{
		Name:       name,
		Kind:       KindWeb,
		Version:    "1.3",
		Port:       port,
		User:       "www",
		BinaryPath: "/apps/apache/bin",
		Components: []Component{
			{ProcName: "httpd", Count: 5, CPUDemand: 0.03, MemMB: 16},
		},
		ConnectTimeout: 10 * simclock.Second,
		BaseLatency:    50 * simclock.Time(1e6),
		StartupTime:    20 * simclock.Second,
		ShutdownTime:   10 * simclock.Second,
	}
}

// FrontEndSpec returns a spec for a front-end financial application GUI
// service, which depends on a database and a web tier.
func FrontEndSpec(name string, port int, deps ...string) Spec {
	return Spec{
		Name:       name,
		Kind:       KindFront,
		Version:    "4.2",
		Port:       port,
		User:       "finapp",
		BinaryPath: "/apps/finapp/bin",
		Components: []Component{
			{ProcName: "finapp_srv", Count: 2, CPUDemand: 0.15, MemMB: 256},
			{ProcName: "finapp_gui", Count: 1, CPUDemand: 0.05, MemMB: 128},
		},
		DependsOn:      deps,
		ConnectTimeout: 20 * simclock.Second,
		BaseLatency:    300 * simclock.Time(1e6),
		StartupTime:    1 * simclock.Minute,
		ShutdownTime:   30 * simclock.Second,
	}
}

// LSFSpec returns a spec for the LSF daemons on a host.
func LSFSpec(name string) Spec {
	return Spec{
		Name:       name,
		Kind:       KindLSF,
		Version:    "4.1",
		Port:       6878,
		User:       "lsfadmin",
		BinaryPath: "/apps/lsf/bin",
		Components: []Component{
			{ProcName: "lim", Count: 1, CPUDemand: 0.02, MemMB: 16},
			{ProcName: "res", Count: 1, CPUDemand: 0.01, MemMB: 8},
			{ProcName: "sbatchd", Count: 1, CPUDemand: 0.02, MemMB: 16},
		},
		ConnectTimeout: 15 * simclock.Second,
		BaseLatency:    100 * simclock.Time(1e6),
		StartupTime:    30 * simclock.Second,
		ShutdownTime:   10 * simclock.Second,
	}
}

// FeedSpec returns a spec for a market-data feed handler (Reuters et al.).
func FeedSpec(name string, port int) Spec {
	return Spec{
		Name:       name,
		Kind:       KindFeed,
		Version:    "2.0",
		Port:       port,
		User:       "feeds",
		BinaryPath: "/apps/feeds/bin",
		Components: []Component{
			{ProcName: "feedd", Count: 1, CPUDemand: 0.20, MemMB: 128},
			{ProcName: "feedcache", Count: 1, CPUDemand: 0.10, MemMB: 256},
		},
		ConnectTimeout: 10 * simclock.Second,
		BaseLatency:    30 * simclock.Time(1e6),
		StartupTime:    15 * simclock.Second,
		ShutdownTime:   5 * simclock.Second,
	}
}

// SpecFor builds the canonical spec for a kind, for generic deployments.
func SpecFor(kind Kind, name string, port int) (Spec, error) {
	switch kind {
	case KindOracle:
		return OracleSpec(name, port), nil
	case KindSybase:
		return SybaseSpec(name, port), nil
	case KindWeb:
		return WebSpec(name, port), nil
	case KindFront:
		return FrontEndSpec(name, port), nil
	case KindLSF:
		return LSFSpec(name), nil
	case KindFeed:
		return FeedSpec(name, port), nil
	}
	return Spec{}, fmt.Errorf("svc: unknown kind %q", kind)
}
