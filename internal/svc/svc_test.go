package svc

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simclock"
)

func testHost(sim *simclock.Sim) *cluster.Host {
	return cluster.NewHost(sim, "db001", "10.0.0.1", cluster.ModelE4500, cluster.RoleDatabase, "london", "UK")
}

func startedService(t *testing.T, sim *simclock.Sim, h *cluster.Host) *Service {
	t.Helper()
	s, err := New(sim, OracleSpec("ORA-01", 1521), h)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(nil); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(sim.Now() + 10*simclock.Minute)
	if s.State() != StateRunning {
		t.Fatalf("service not running: %v", s.State())
	}
	return s
}

func TestSpecValidate(t *testing.T) {
	good := OracleSpec("ORA-01", 1521)
	if err := good.Validate(); err != nil {
		t.Errorf("good spec invalid: %v", err)
	}
	bad := good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("empty name should be invalid")
	}
	bad = good
	bad.Components = nil
	if bad.Validate() == nil {
		t.Error("no components should be invalid")
	}
	bad = good
	bad.ConnectTimeout = 0
	if bad.Validate() == nil {
		t.Error("no timeout should be invalid")
	}
	bad = good
	bad.Components = []Component{{ProcName: "x", Count: 0}}
	if bad.Validate() == nil {
		t.Error("zero count component should be invalid")
	}
}

func TestAllCanonicalSpecsValid(t *testing.T) {
	kinds := []Kind{KindOracle, KindSybase, KindWeb, KindFront, KindLSF, KindFeed}
	for _, k := range kinds {
		spec, err := SpecFor(k, "test-"+string(k), 9000)
		if err != nil {
			t.Errorf("SpecFor(%s): %v", k, err)
			continue
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", k, err)
		}
		if spec.Kind.ProbeCommand() == "" {
			t.Errorf("kind %s has no probe command", k)
		}
	}
	if _, err := SpecFor(Kind("cobol"), "x", 1); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestStartLifecycle(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	s, _ := New(sim, OracleSpec("ORA-01", 1521), h)
	if s.State() != StateStopped {
		t.Errorf("initial state: %v", s.State())
	}
	var runningAt simclock.Time
	s.Start(func(now simclock.Time) { runningAt = now })
	if s.State() != StateStarting {
		t.Errorf("state after Start: %v", s.State())
	}
	// Processes appear immediately.
	if len(h.PGrep("ora_pmon")) != 1 || len(h.PGrep("ora_dbwr")) != 2 {
		t.Error("components should be spawned in the process table")
	}
	// Probe during startup is refused.
	if r := s.Probe(); r.ExitCode != ExitRefused {
		t.Errorf("probe while starting: %v", r)
	}
	sim.RunUntil(10 * simclock.Minute)
	if s.State() != StateRunning || runningAt != s.Spec.StartupTime {
		t.Errorf("state=%v runningAt=%v", s.State(), runningAt)
	}
	if got := s.Spec.ProcTotal(); got != 6 {
		t.Errorf("ProcTotal = %d", got)
	}
	if len(s.MissingProcs()) != 0 {
		t.Errorf("missing procs on healthy service: %v", s.MissingProcs())
	}
}

func TestDoubleStartNoop(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	s := startedService(t, sim, h)
	n := h.NProcs()
	if err := s.Start(nil); err != nil {
		t.Fatal(err)
	}
	if h.NProcs() != n {
		t.Error("double start duplicated processes")
	}
}

func TestStartOnDownHost(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	h.Crash()
	s, _ := New(sim, OracleSpec("ORA-01", 1521), h)
	if err := s.Start(nil); err == nil {
		t.Error("start on down host should fail")
	}
}

func TestStopRemovesProcs(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	s := startedService(t, sim, h)
	s.Stop()
	if s.State() != StateStopped || h.NProcs() != 0 {
		t.Errorf("state=%v procs=%d", s.State(), h.NProcs())
	}
}

func TestCrashAndProbe(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	s := startedService(t, sim, h)
	if r := s.Probe(); !r.OK() {
		t.Fatalf("healthy probe failed: %v", r)
	}
	s.Crash()
	if s.Crashes != 1 {
		t.Errorf("crash counter = %d", s.Crashes)
	}
	r := s.Probe()
	if r.ExitCode != ExitRefused {
		t.Errorf("crashed probe: %v", r)
	}
	if h.NProcs() != 0 {
		t.Error("crash should remove processes")
	}
}

func TestHangAndProbe(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	s := startedService(t, sim, h)
	s.Hang()
	if s.State() != StateHung {
		t.Errorf("state = %v", s.State())
	}
	if h.NProcs() == 0 {
		t.Error("hung service should keep processes in ps")
	}
	r := s.Probe()
	if r.ExitCode != ExitTimeout || r.Latency != s.Spec.ConnectTimeout {
		t.Errorf("hung probe: %v", r)
	}
}

func TestHostCrashImpliesServiceCrashed(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	s := startedService(t, sim, h)
	h.Crash()
	if s.State() != StateCrashed {
		t.Errorf("state = %v", s.State())
	}
	if r := s.Probe(); r.ExitCode != ExitTimeout {
		t.Errorf("probe against down host: %v", r)
	}
}

func TestDegradedLatency(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	s := startedService(t, sim, h)
	healthy := s.ResponseLatency()
	s.Degrade()
	if s.State() != StateDegraded {
		t.Errorf("state = %v", s.State())
	}
	if s.ResponseLatency() <= healthy {
		t.Error("degraded latency should exceed healthy latency")
	}
	s.Recover()
	if s.State() != StateRunning {
		t.Errorf("after recover: %v", s.State())
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	s := startedService(t, sim, h)
	idle := s.ResponseLatency()
	h.Spawn("hog", "u", "", 7.5, 100) // E4500 has 8 CPUs
	if s.ResponseLatency() <= idle {
		t.Error("latency should grow under load")
	}
}

func TestProbeTimesOutUnderSaturation(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	s := startedService(t, sim, h)
	h.Spawn("hog", "u", "", 1000, 100)
	r := s.Probe()
	if r.ExitCode != ExitTimeout {
		t.Errorf("saturated probe should time out: %v", r)
	}
}

func TestKillComponentDetectedByProbe(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	s := startedService(t, sim, h)
	if got := s.KillComponent("ora_dbwr", 1); got != 1 {
		t.Fatalf("killed %d", got)
	}
	r := s.Probe()
	if r.ExitCode != ExitError {
		t.Errorf("partial failure probe: %v", r)
	}
	if !strings.Contains(r.Detail, "ora_dbwr") {
		t.Errorf("detail should pinpoint the component: %s", r.Detail)
	}
	missing := s.MissingProcs()
	if len(missing) != 1 || missing[0] != "ora_dbwr" {
		t.Errorf("MissingProcs = %v", missing)
	}
}

func TestConnections(t *testing.T) {
	sim := simclock.New(1)
	s := startedService(t, sim, testHost(sim))
	s.Connect()
	s.Connect()
	s.Disconnect()
	if s.Connections() != 1 {
		t.Errorf("connections = %d", s.Connections())
	}
	s.Disconnect()
	s.Disconnect() // below zero clamps
	if s.Connections() != 0 {
		t.Errorf("connections = %d", s.Connections())
	}
}

func TestDirectory(t *testing.T) {
	sim := simclock.New(1)
	h1 := testHost(sim)
	h2 := cluster.NewHost(sim, "web01", "10.0.0.2", cluster.ModelSP2, cluster.RoleFrontEnd, "london", "UK")
	d := NewDirectory()
	ora, _ := New(sim, OracleSpec("ORA-01", 1521), h1)
	web, _ := New(sim, WebSpec("WEB-01", 80), h2)
	fe, _ := New(sim, FrontEndSpec("FE-01", 8080, "ORA-01", "WEB-01"), h2)
	d.Add(ora)
	d.Add(web)
	d.Add(fe)
	if d.Len() != 3 || d.Get("ORA-01") != ora || d.Get("nope") != nil {
		t.Error("directory lookup broken")
	}
	if got := d.OnHost("web01"); len(got) != 2 {
		t.Errorf("OnHost = %d services", len(got))
	}
	if got := d.ByKind(KindOracle); len(got) != 1 || got[0] != ora {
		t.Errorf("ByKind = %v", got)
	}
	ok, down := d.DependenciesSatisfied(fe)
	if ok || len(down) != 2 {
		t.Errorf("deps should be down: ok=%v down=%v", ok, down)
	}
	ora.Start(nil)
	web.Start(nil)
	sim.RunUntil(10 * simclock.Minute)
	ok, down = d.DependenciesSatisfied(fe)
	if !ok || down != nil {
		t.Errorf("deps should be satisfied: ok=%v down=%v", ok, down)
	}
}

func TestDirectoryDuplicatePanics(t *testing.T) {
	sim := simclock.New(1)
	d := NewDirectory()
	s, _ := New(sim, WebSpec("W", 80), testHost(sim))
	d.Add(s)
	defer func() {
		if recover() == nil {
			t.Error("duplicate add should panic")
		}
	}()
	s2, _ := New(sim, WebSpec("W", 81), testHost(sim))
	d.Add(s2)
}

func TestStartOrder(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	d := NewDirectory()
	fe, _ := New(sim, FrontEndSpec("FE", 1, "DB", "WEB"), h)
	db, _ := New(sim, OracleSpec("DB", 1521), h)
	web, _ := New(sim, WebSpec("WEB", 80), h)
	d.Add(fe) // registered before its dependencies
	d.Add(db)
	d.Add(web)
	order, err := d.StartOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, s := range order {
		pos[s.Spec.Name] = i
	}
	if pos["DB"] > pos["FE"] || pos["WEB"] > pos["FE"] {
		t.Errorf("dependencies must start first: %v", pos)
	}
}

func TestStartOrderCycle(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	d := NewDirectory()
	a := FrontEndSpec("A", 1, "B")
	b := FrontEndSpec("B", 2, "A")
	sa, _ := New(sim, a, h)
	sb, _ := New(sim, b, h)
	d.Add(sa)
	d.Add(sb)
	if _, err := d.StartOrder(); err == nil {
		t.Error("cycle should be detected")
	}
}

func TestRestartAfterCrash(t *testing.T) {
	sim := simclock.New(1)
	h := testHost(sim)
	s := startedService(t, sim, h)
	s.Crash()
	if err := s.Start(nil); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(sim.Now() + 10*simclock.Minute)
	if s.State() != StateRunning {
		t.Errorf("state after restart: %v", s.State())
	}
	if r := s.Probe(); !r.OK() {
		t.Errorf("probe after restart: %v", r)
	}
}
