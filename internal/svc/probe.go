package svc

import (
	"fmt"

	"repro/internal/simclock"
)

// Exit codes probes return, read in the Unix shell by the agents.
const (
	ExitOK      = 0
	ExitRefused = 1   // connection refused: service not listening
	ExitError   = 2   // connected but the basic command failed
	ExitTimeout = 124 // no answer within the specialist-provided timeout
)

// ProbeResult is the outcome of attempting to use a service.
type ProbeResult struct {
	ExitCode int
	Latency  simclock.Time // how long the attempt took
	Detail   string
}

// OK reports whether the probe succeeded.
func (r ProbeResult) OK() bool { return r.ExitCode == ExitOK }

func (r ProbeResult) String() string {
	return fmt.Sprintf("exit=%d latency=%v %s", r.ExitCode, r.Latency, r.Detail)
}

// ResponseLatency models the service's current response time: the healthy
// base latency inflated by host CPU contention (queueing-style blow-up near
// saturation), by processes stacked on the run queue once the host
// saturates, and by degradation.
func (s *Service) ResponseLatency() simclock.Time {
	util := s.Host.CPUUtilisation()
	if util > 0.98 {
		util = 0.98
	}
	lat := float64(s.Spec.BaseLatency) / (1 - util)
	lat *= 1 + float64(s.Host.RunQueue())
	if s.State() == StateDegraded {
		lat *= 8
	}
	return simclock.Time(lat)
}

// Probe attempts to connect and run the kind's basic command, exactly the
// paper's health check. The result is immediate (the caller charges the
// latency to simulated time if it cares, as the agents do).
func (s *Service) Probe() ProbeResult {
	timeout := s.Spec.ConnectTimeout
	if !s.Host.Up() {
		return ProbeResult{ExitCode: ExitTimeout, Latency: timeout,
			Detail: fmt.Sprintf("host %s unreachable", s.Host.Name)}
	}
	switch s.State() {
	case StateStopped, StateCrashed:
		return ProbeResult{ExitCode: ExitRefused, Latency: 0,
			Detail: fmt.Sprintf("connect to %s:%d refused", s.Host.Name, s.Spec.Port)}
	case StateStarting:
		return ProbeResult{ExitCode: ExitRefused, Latency: 0,
			Detail: "service starting, not yet listening"}
	case StateHung:
		return ProbeResult{ExitCode: ExitTimeout, Latency: timeout,
			Detail: fmt.Sprintf("%q timed out after %v", s.Spec.Kind.ProbeCommand(), timeout)}
	}
	lat := s.ResponseLatency()
	if lat > timeout {
		return ProbeResult{ExitCode: ExitTimeout, Latency: timeout,
			Detail: fmt.Sprintf("%q exceeded timeout (%v > %v)", s.Spec.Kind.ProbeCommand(), lat, timeout)}
	}
	if !s.AllProcsPresent() {
		// Connected, but the command fails against a partially-dead
		// service (e.g. the listener is up but a required component died).
		return ProbeResult{ExitCode: ExitError, Latency: lat,
			Detail: fmt.Sprintf("%q failed: missing components %v", s.Spec.Kind.ProbeCommand(), s.MissingProcs())}
	}
	return ProbeResult{ExitCode: ExitOK, Latency: lat, Detail: "ok"}
}

// Directory is a name-indexed set of services, usable as the "all services
// in the datacentre" view the ontologies are generated from.
type Directory struct {
	byName map[string]*Service
	order  []string
	byHost map[string][]*Service // registration-order index, built on Add
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{byName: make(map[string]*Service), byHost: make(map[string][]*Service)}
}

// Add registers a service; duplicates panic (a configuration bug).
func (d *Directory) Add(s *Service) {
	if _, dup := d.byName[s.Spec.Name]; dup {
		panic("svc: duplicate service " + s.Spec.Name)
	}
	d.byName[s.Spec.Name] = s
	d.order = append(d.order, s.Spec.Name)
	d.byHost[s.Host.Name] = append(d.byHost[s.Host.Name], s)
}

// Get looks a service up by name, or nil.
func (d *Directory) Get(name string) *Service { return d.byName[name] }

// All returns services in registration order.
func (d *Directory) All() []*Service {
	out := make([]*Service, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.byName[n])
	}
	return out
}

// OnHost returns the services bound to the named host, in registration
// order. The slice is the directory's cached per-host index — hot paths
// (status agents build a DLSP from it every cron run) call this constantly,
// so it is served without allocating; callers must not mutate it.
func (d *Directory) OnHost(host string) []*Service {
	return d.byHost[host]
}

// ByKind returns services of the given kind.
func (d *Directory) ByKind(k Kind) []*Service {
	var out []*Service
	for _, s := range d.All() {
		if s.Spec.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// Len reports the number of registered services.
func (d *Directory) Len() int { return len(d.order) }

// DependenciesSatisfied reports whether every service named in s.DependsOn
// is running in the directory, the paper's "all interdependent distributed
// application components must be up and running for the distributed service
// to be considered healthy".
func (d *Directory) DependenciesSatisfied(s *Service) (bool, []string) {
	var down []string
	for _, dep := range s.Spec.DependsOn {
		ds := d.byName[dep]
		if ds == nil || !ds.Running() {
			down = append(down, dep)
		}
	}
	return len(down) == 0, down
}

// StartOrder returns the directory's services topologically sorted so that
// dependencies start before dependents. Cycles return an error.
func (d *Directory) StartOrder() ([]*Service, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[string]int, len(d.order))
	var out []*Service
	var visit func(name string) error
	visit = func(name string) error {
		switch colour[name] {
		case grey:
			return fmt.Errorf("svc: dependency cycle through %s", name)
		case black:
			return nil
		}
		colour[name] = grey
		s := d.byName[name]
		if s != nil {
			for _, dep := range s.Spec.DependsOn {
				if d.byName[dep] != nil {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		colour[name] = black
		if s != nil {
			out = append(out, s)
		}
		return nil
	}
	for _, n := range d.order {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return out, nil
}
