// Package svc models the applications the paper's site runs — Oracle and
// Sybase databases, web servers, front-end financial GUIs, LSF daemons and
// market-data feed handlers — as processes on simulated hosts.
//
// Health is determined exactly the way the paper's agents determine it: by
// attempting to use the service (connect and run a basic command such as an
// HTTP get or "select * from tablename") and reading the resulting exit
// code, with per-application connectivity timeouts supplied by the
// application specialists (§3.2, §3.4).
package svc

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/simclock"
)

// Kind is an application type with customised error categories (§3.3).
type Kind string

// Application kinds at the evaluation site.
const (
	KindOracle Kind = "oracle"
	KindSybase Kind = "sybase"
	KindWeb    Kind = "webserver"
	KindFront  Kind = "frontend"
	KindLSF    Kind = "lsf"
	KindFeed   Kind = "feedhandler"
)

// ProbeCommand reports the basic command an agent runs against this kind of
// service to confirm it is usable.
func (k Kind) ProbeCommand() string {
	switch k {
	case KindOracle, KindSybase:
		return "select * from healthcheck"
	case KindWeb:
		return "http get /"
	case KindFront:
		return "gui ping"
	case KindLSF:
		return "lsid"
	case KindFeed:
		return "feed stat"
	}
	return "ping"
}

// State is a service lifecycle state.
type State int

// Service states. Hung services hold their processes but answer nothing —
// the latent-error presentation the paper describes.
const (
	StateStopped State = iota
	StateStarting
	StateRunning
	StateHung
	StateCrashed
	StateDegraded // running but responding slowly
)

func (s State) String() string {
	switch s {
	case StateStopped:
		return "stopped"
	case StateStarting:
		return "starting"
	case StateRunning:
		return "running"
	case StateHung:
		return "hung"
	case StateCrashed:
		return "crashed"
	case StateDegraded:
		return "degraded"
	}
	return "?"
}

// Component is one process the service is made of, started in sequence.
type Component struct {
	ProcName  string
	Count     int
	CPUDemand float64 // per process
	MemMB     float64 // per process
}

// Spec is the static description of a service instance — the information
// the paper's SLKTs record: processes, startup sequence, port, binary
// location, timeouts, dependencies.
type Spec struct {
	Name           string // e.g. "ORA-PROD-07"
	Kind           Kind
	Version        string
	Port           int
	User           string
	BinaryPath     string
	Components     []Component   // startup sequence order
	DependsOn      []string      // services that must be running first
	ConnectTimeout simclock.Time // provided by application specialists
	BaseLatency    simclock.Time // healthy response time at idle
	StartupTime    simclock.Time
	ShutdownTime   simclock.Time
}

// Validate reports configuration errors in the spec.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("svc: spec missing name")
	}
	if len(s.Components) == 0 {
		return fmt.Errorf("svc: %s has no components", s.Name)
	}
	if s.ConnectTimeout <= 0 {
		return fmt.Errorf("svc: %s has no connect timeout", s.Name)
	}
	for _, c := range s.Components {
		if c.Count <= 0 {
			return fmt.Errorf("svc: %s component %s has count %d", s.Name, c.ProcName, c.Count)
		}
	}
	return nil
}

// ProcTotal reports the expected total process count when healthy.
func (s Spec) ProcTotal() int {
	n := 0
	for _, c := range s.Components {
		n += c.Count
	}
	return n
}

// Service is a live instance of a Spec on a host.
type Service struct {
	Spec Spec
	Host *cluster.Host

	sim       *simclock.Sim
	state     State
	pids      []int
	startedAt simclock.Time
	conns     int // current client connections
	// Wedged marks a corruption the paper's "completely unavailable
	// (corruptions, bugs)" category causes: restarts fail until a human
	// repairs the underlying damage and clears the flag.
	Wedged bool
	// crash/restart counters for reports
	Crashes  int
	Restarts int
}

// New binds a spec to a host. The service starts stopped.
func New(sim *simclock.Sim, spec Spec, host *cluster.Host) (*Service, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Service{Spec: spec, Host: host, sim: sim}, nil
}

// State reports the lifecycle state, observing host death: a service whose
// host went down is crashed whatever it thought it was.
func (s *Service) State() State {
	if !s.Host.Up() && s.state != StateStopped {
		return StateCrashed
	}
	return s.state
}

// Running reports whether the service is usable (running or degraded).
func (s *Service) Running() bool {
	st := s.State()
	return st == StateRunning || st == StateDegraded
}

// Connections reports current client connections.
func (s *Service) Connections() int { return s.conns }

// Connect registers a client connection; Disconnect removes one.
func (s *Service) Connect() { s.conns++ }

// Disconnect removes a client connection.
func (s *Service) Disconnect() {
	if s.conns > 0 {
		s.conns--
	}
}

// UpSince reports when the service last entered Running (zero if never).
func (s *Service) UpSince() simclock.Time { return s.startedAt }

// Start launches the startup sequence: components spawn in order, the
// service becomes Running after StartupTime. Starting an already-running or
// starting service is a no-op. Starting on a down host fails.
func (s *Service) Start(onRunning func(now simclock.Time)) error {
	switch s.State() {
	case StateRunning, StateDegraded, StateStarting:
		return nil
	}
	if !s.Host.Up() {
		return fmt.Errorf("svc: %s: host %s is %s", s.Spec.Name, s.Host.Name, s.Host.State())
	}
	if s.Wedged {
		return fmt.Errorf("svc: %s: corrupted, manual repair required", s.Spec.Name)
	}
	s.reapProcs()
	s.state = StateStarting
	s.pids = nil
	// Components spawn immediately (they appear in ps during startup);
	// the service answers probes only once StartupTime elapses.
	for _, c := range s.Spec.Components {
		for i := 0; i < c.Count; i++ {
			p := s.Host.Spawn(c.ProcName, s.Spec.User, s.Spec.BinaryPath, c.CPUDemand, c.MemMB)
			if p == nil {
				s.state = StateCrashed
				return fmt.Errorf("svc: %s: spawn failed on %s", s.Spec.Name, s.Host.Name)
			}
			s.pids = append(s.pids, p.PID)
		}
	}
	s.sim.PostAfter(s.Spec.StartupTime, "svc-start:"+s.Spec.Name, func(now simclock.Time) {
		if s.state != StateStarting || !s.Host.Up() {
			return
		}
		s.state = StateRunning
		s.startedAt = now
		if onRunning != nil {
			onRunning(now)
		}
	})
	return nil
}

// ForceRunning promotes a Starting service to Running immediately — the
// manual-repair path, where the operator's repair delay already covers the
// startup work. The pending startup event becomes a no-op.
func (s *Service) ForceRunning(now simclock.Time) {
	if s.state == StateStarting && s.Host.Up() {
		s.state = StateRunning
		s.startedAt = now
	}
}

// Stop shuts the service down cleanly (kills processes immediately in the
// simulation; ShutdownTime matters only to measurement, not correctness).
func (s *Service) Stop() {
	s.reapProcs()
	s.pids = nil
	s.state = StateStopped
	s.conns = 0
}

// Crash kills the service's processes abruptly.
func (s *Service) Crash() {
	s.reapProcs()
	s.pids = nil
	s.state = StateCrashed
	s.conns = 0
	s.Crashes++
}

// Hang leaves processes in the table but stops the service responding.
func (s *Service) Hang() {
	if !s.Running() {
		return
	}
	for _, pid := range s.pids {
		if p := s.Host.Proc(pid); p != nil {
			s.Host.SetProcState(p, cluster.ProcHung)
		}
	}
	s.state = StateHung
	s.Crashes++
}

// Degrade marks the service slow (e.g. under an overload or after an
// internal leak); probes still succeed unless latency exceeds the timeout.
func (s *Service) Degrade() {
	if s.State() == StateRunning {
		s.state = StateDegraded
	}
}

// Recover clears degradation.
func (s *Service) Recover() {
	if s.state == StateDegraded {
		s.state = StateRunning
	}
}

// KillComponent kills n processes of the named component, simulating a
// partial failure (some application components stop working, §4).
func (s *Service) KillComponent(procName string, n int) int {
	killed := 0
	var remaining []int
	for _, pid := range s.pids {
		p := s.Host.Proc(pid)
		if p != nil && p.Name == procName && killed < n {
			s.Host.Kill(pid)
			killed++
			continue
		}
		remaining = append(remaining, pid)
	}
	s.pids = remaining
	if killed > 0 && s.Running() {
		s.state = StateDegraded
	}
	return killed
}

// reapProcs removes any of the service's processes still in the host table.
func (s *Service) reapProcs() {
	for _, pid := range s.pids {
		s.Host.Kill(pid)
	}
}

// MissingProcs compares the live process table against the spec and returns
// component names with fewer processes than expected — what a service
// intelliagent checks against the SLKT.
func (s *Service) MissingProcs() []string {
	var missing []string
	for _, c := range s.Spec.Components {
		if s.Host.CountProcs(c.ProcName) < c.Count {
			missing = append(missing, c.ProcName)
		}
	}
	return missing
}

// AllProcsPresent reports whether every component has its expected process
// count — the allocation-free check probes use before the more detailed
// MissingProcs.
func (s *Service) AllProcsPresent() bool {
	for _, c := range s.Spec.Components {
		if s.Host.CountProcs(c.ProcName) < c.Count {
			return false
		}
	}
	return true
}

// Reset returns the service to the state New leaves it in — stopped, no
// processes, counters zeroed, corruption cleared. Site reuse calls this
// between trials; the host's process table is reset separately.
func (s *Service) Reset() {
	s.state = StateStopped
	s.pids = nil
	s.startedAt = 0
	s.conns = 0
	s.Wedged = false
	s.Crashes = 0
	s.Restarts = 0
}

// PIDs returns the service's process IDs.
func (s *Service) PIDs() []int { return append([]int(nil), s.pids...) }
