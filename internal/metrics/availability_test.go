package metrics

import (
	"testing"

	"repro/internal/simclock"
)

func TestAvailability(t *testing.T) {
	cases := []struct {
		down, span simclock.Time
		want       float64
	}{
		{0, simclock.Year, 1},
		{simclock.Year / 2, simclock.Year, 0.5},
		{2 * simclock.Year, simclock.Year, 0}, // overlapping incidents clamp
		{simclock.Hour, 0, 1},                 // zero span counts as available
	}
	for _, c := range cases {
		if got := Availability(c.down, c.span); got != c.want {
			t.Errorf("Availability(%v, %v) = %v, want %v", c.down, c.span, got, c.want)
		}
	}
}
