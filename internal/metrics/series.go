package metrics

import (
	"fmt"
	"strings"

	"repro/internal/simclock"
)

// Point is one sample in a time series.
type Point struct {
	T simclock.Time
	V float64
}

// Series is a named, time-ordered sequence of samples — the shape of the
// paper's Figures 3 and 4 (one series per monitor).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample. Samples must arrive in time order.
func (s *Series) Add(t simclock.Time, v float64) {
	if n := len(s.Points); n > 0 && s.Points[n-1].T > t {
		panic(fmt.Sprintf("metrics: series %s: out-of-order sample at %v", s.Name, t))
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Mean reports the mean sample value (zero for an empty series).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Max reports the largest sample value (zero for an empty series).
func (s *Series) Max() float64 {
	var m float64
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Min reports the smallest sample value (zero for an empty series).
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Len reports the sample count.
func (s *Series) Len() int { return len(s.Points) }

// FormatTable renders several series sharing a sampling schedule as an
// aligned ASCII table, one row per sample index — the form the paper's
// figures tabulate ("measurements every half hour for 4 hours").
func FormatTable(title, unit string, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", title, unit)
	fmt.Fprintf(&b, "%-8s", "sample")
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	rows := 0
	for _, s := range series {
		if s.Len() > rows {
			rows = s.Len()
		}
	}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%-8d", i+1)
		for _, s := range series {
			if i < s.Len() {
				fmt.Fprintf(&b, " %14.3f", s.Points[i].V)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-8s", "mean")
	for _, s := range series {
		fmt.Fprintf(&b, " %14.3f", s.Mean())
	}
	b.WriteByte('\n')
	return b.String()
}
