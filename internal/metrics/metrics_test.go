package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

func TestIncidentLifecycle(t *testing.T) {
	l := NewLedger()
	inc := l.Open(CatMidCrash, "db001", "ORA-01", "crash during batch job", simclock.Hour)
	if inc.ID != 1 || inc.Detected || inc.Resolved {
		t.Fatalf("fresh incident: %+v", inc)
	}
	l.Detect(inc, simclock.Hour+5*simclock.Minute, "intelliagent")
	if inc.DetectionLatency() != 5*simclock.Minute {
		t.Errorf("detection latency = %v", inc.DetectionLatency())
	}
	l.Detect(inc, simclock.Hour+50*simclock.Minute, "operator") // second detect ignored
	if inc.DetectedBy != "intelliagent" {
		t.Errorf("first detection must stick: %s", inc.DetectedBy)
	}
	l.Resolve(inc, simclock.Hour+20*simclock.Minute, "intelliagent")
	if inc.Downtime(0) != 20*simclock.Minute {
		t.Errorf("downtime = %v", inc.Downtime(0))
	}
	l.Resolve(inc, simclock.Hour+60*simclock.Minute, "x") // second resolve ignored
	if inc.ResolvedAt != simclock.Hour+20*simclock.Minute {
		t.Error("first resolve must stick")
	}
}

func TestResolveImpliesDetect(t *testing.T) {
	l := NewLedger()
	inc := l.Open(CatHuman, "h", "s", "", 0)
	l.Resolve(inc, simclock.Hour, "oncall")
	if !inc.Detected || inc.DetectedAt != simclock.Hour {
		t.Errorf("resolve should imply detection: %+v", inc)
	}
}

func TestOpenIncidentDowntimeAccrues(t *testing.T) {
	l := NewLedger()
	l.Open(CatHardware, "h", "", "", simclock.Hour)
	if got := l.TotalDowntime(3 * simclock.Hour); got != 2*simclock.Hour {
		t.Errorf("open downtime = %v", got)
	}
}

func TestDowntimeByCategory(t *testing.T) {
	l := NewLedger()
	a := l.Open(CatMidCrash, "h1", "s1", "", 0)
	b := l.Open(CatMidCrash, "h2", "s2", "", 0)
	c := l.Open(CatLSF, "h3", "s3", "", simclock.Hour)
	l.Resolve(a, 2*simclock.Hour, "x")
	l.Resolve(b, 1*simclock.Hour, "x")
	l.Resolve(c, 90*simclock.Minute, "x")
	down := l.DowntimeByCategory(10 * simclock.Hour)
	if down[CatMidCrash] != 3*simclock.Hour {
		t.Errorf("mid-crash = %v", down[CatMidCrash])
	}
	if down[CatLSF] != 30*simclock.Minute {
		t.Errorf("lsf = %v", down[CatLSF])
	}
	if l.TotalDowntime(10*simclock.Hour) != 3*simclock.Hour+30*simclock.Minute {
		t.Errorf("total = %v", l.TotalDowntime(10*simclock.Hour))
	}
	if l.Count(CatMidCrash) != 2 || l.Count(CatHuman) != 0 {
		t.Error("counts wrong")
	}
}

func TestOpenIncidents(t *testing.T) {
	l := NewLedger()
	a := l.Open(CatHuman, "h", "", "", 0)
	l.Open(CatHuman, "h2", "", "", 0)
	l.Resolve(a, simclock.Hour, "x")
	open := l.OpenIncidents()
	if len(open) != 1 || open[0].Host != "h2" {
		t.Errorf("open = %v", open)
	}
}

func TestDetectionLatenciesAndMTTRs(t *testing.T) {
	l := NewLedger()
	for i, lat := range []simclock.Time{5 * simclock.Minute, 2 * simclock.Minute, 9 * simclock.Minute} {
		inc := l.Open(CatPerformance, "h", "", "", simclock.Time(i)*simclock.Hour)
		l.Detect(inc, inc.StartedAt+lat, "agent")
		l.Resolve(inc, inc.DetectedAt+simclock.Time(i+1)*simclock.Minute, "agent")
	}
	undetected := l.Open(CatPerformance, "h", "", "", 0)
	_ = undetected
	lats := l.DetectionLatencies(nil)
	if len(lats) != 3 || lats[0] != 2*simclock.Minute || lats[2] != 9*simclock.Minute {
		t.Errorf("latencies = %v", lats)
	}
	mttrs := l.MTTRs(nil)
	if len(mttrs) != 3 || mttrs[0] != simclock.Minute {
		t.Errorf("mttrs = %v", mttrs)
	}
	filtered := l.DetectionLatencies(func(i *Incident) bool { return i.DetectionLatency() > 4*simclock.Minute })
	if len(filtered) != 2 {
		t.Errorf("filtered = %v", filtered)
	}
}

func TestMeanPercentile(t *testing.T) {
	xs := []simclock.Time{simclock.Hour, 3 * simclock.Hour, 2 * simclock.Hour}
	if Mean(xs) != 2*simclock.Hour {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Mean(nil) != 0 || Percentile(nil, 0.5) != 0 {
		t.Error("empty stats should be zero")
	}
	if p := Percentile(xs, 0.5); p != 2*simclock.Hour {
		t.Errorf("median = %v", p)
	}
	if p := Percentile(xs, 1); p != 3*simclock.Hour {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile(xs, 0); p != simclock.Hour {
		t.Errorf("p0 = %v", p)
	}
	// Percentile must not mutate the input.
	if xs[0] != simclock.Hour || xs[1] != 3*simclock.Hour {
		t.Error("Percentile mutated input")
	}
}

func TestSummaries(t *testing.T) {
	l := NewLedger()
	inc := l.Open(CatFirewallNet, "fw", "", "", 0)
	l.Resolve(inc, 8*simclock.Hour, "oncall")
	rows := l.Summaries(24 * simclock.Hour)
	if len(rows) != len(Categories) {
		t.Fatalf("rows = %d", len(rows))
	}
	var fw Summary
	for _, r := range rows {
		if r.Category == CatFirewallNet {
			fw = r
		}
	}
	if fw.Incidents != 1 || fw.Downtime != 8*simclock.Hour {
		t.Errorf("fw row = %+v", fw)
	}
	if !strings.Contains(fw.String(), "8.0 h") {
		t.Errorf("row format: %s", fw.String())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "bmc-cpu"
	s.Add(0, 0.33)
	s.Add(30*simclock.Minute, 0.5)
	s.Add(simclock.Hour, 1.1)
	if s.Len() != 3 || s.Mean() < 0.64 || s.Mean() > 0.65 {
		t.Errorf("len=%d mean=%v", s.Len(), s.Mean())
	}
	if s.Max() != 1.1 || s.Min() != 0.33 {
		t.Errorf("max=%v min=%v", s.Max(), s.Min())
	}
	if got := s.Values(); len(got) != 3 || got[2] != 1.1 {
		t.Errorf("values = %v", got)
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	var s Series
	s.Add(simclock.Hour, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order add should panic")
		}
	}()
	s.Add(0, 2)
}

func TestEmptySeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Error("empty series stats should be zero")
	}
}

func TestFormatTable(t *testing.T) {
	a := &Series{Name: "bmc"}
	b := &Series{Name: "agent"}
	for i := 0; i < 3; i++ {
		a.Add(simclock.Time(i)*simclock.Hour, float64(i))
	}
	b.Add(0, 0.05)
	out := FormatTable("Fig3 CPU", "%", a, b)
	if !strings.Contains(out, "bmc") || !strings.Contains(out, "agent") {
		t.Errorf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "mean") {
		t.Error("missing mean row")
	}
	if !strings.Contains(out, "-") {
		t.Error("short series should pad with -")
	}
	if lines := strings.Count(out, "\n"); lines != 6 { // title+header+3 rows+mean
		t.Errorf("line count = %d:\n%s", lines, out)
	}
}

// Property: total downtime equals the sum over category downtimes for any
// incident mix.
func TestQuickLedgerSums(t *testing.T) {
	f := func(spans []uint16) bool {
		l := NewLedger()
		for i, sp := range spans {
			cat := Categories[i%len(Categories)]
			inc := l.Open(cat, "h", "s", "", 0)
			l.Resolve(inc, simclock.Time(sp)*simclock.Second, "x")
		}
		now := simclock.Day
		var sum simclock.Time
		for _, d := range l.DowntimeByCategory(now) {
			sum += d
		}
		return sum == l.TotalDowntime(now)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPercentile pins the nearest-rank quantile, including the edge
// cases that used to reach implementation-defined float-to-int
// conversion: NaN and ±Inf p must clamp instead of producing an
// arbitrary index.
func TestPercentile(t *testing.T) {
	ts := func(vs ...int) []simclock.Time {
		out := make([]simclock.Time, len(vs))
		for i, v := range vs {
			out[i] = simclock.Time(v) * simclock.Second
		}
		return out
	}
	sample := ts(50, 10, 40, 30, 20) // unsorted on purpose: Percentile sorts a copy
	cases := []struct {
		name string
		xs   []simclock.Time
		p    float64
		want simclock.Time
	}{
		{"empty", nil, 0.95, 0},
		{"empty-nan", nil, math.NaN(), 0},
		{"single-p0", ts(7), 0, 7 * simclock.Second},
		{"single-p1", ts(7), 1, 7 * simclock.Second},
		{"single-nan", ts(7), math.NaN(), 7 * simclock.Second},
		{"p0", sample, 0, 10 * simclock.Second},
		{"p50", sample, 0.5, 30 * simclock.Second},
		{"p95", sample, 0.95, 50 * simclock.Second},
		{"p1", sample, 1, 50 * simclock.Second},
		{"negative-clamps", sample, -3, 10 * simclock.Second},
		{"above-one-clamps", sample, 2.5, 50 * simclock.Second},
		{"nan-clamps-low", sample, math.NaN(), 10 * simclock.Second},
		{"neg-inf-clamps-low", sample, math.Inf(-1), 10 * simclock.Second},
		{"pos-inf-clamps-high", sample, math.Inf(1), 50 * simclock.Second},
	}
	for _, tc := range cases {
		if got := Percentile(tc.xs, tc.p); got != tc.want {
			t.Errorf("%s: Percentile(p=%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
	if sample[0] != 50*simclock.Second {
		t.Error("Percentile mutated its input")
	}
}
