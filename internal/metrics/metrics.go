// Package metrics keeps the books for the reproduction's experiments: an
// incident ledger charging downtime hours to the paper's Figure 2 error
// categories, detection-latency records, and time series for the overhead
// figures.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simclock"
)

// Category is one of the eight downtime categories in the paper's Figure 2.
type Category string

// Figure 2 categories, in the paper's order.
const (
	CatMidCrash       Category = "mid-crash"       // databases crashing in the middle of a job
	CatHuman          Category = "human"           // human errors
	CatPerformance    Category = "performance"     // performance-related errors
	CatFrontEnd       Category = "front-end"       // front-end user application downtime
	CatLSF            Category = "lsf"             // LSF errors
	CatFirewallNet    Category = "fw/nw"           // firewall configuration / network errors
	CatHardware       Category = "hardware"        // all types of hardware errors
	CatCompletelyDown Category = "completely-down" // services completely unavailable (corruptions, bugs)
)

// Categories lists all categories in the paper's reporting order.
var Categories = []Category{
	CatMidCrash, CatHuman, CatPerformance, CatFrontEnd,
	CatLSF, CatFirewallNet, CatHardware, CatCompletelyDown,
}

// Incident is one fault's life: injected, detected, resolved. Downtime for
// the ledger is resolved-started (the service is unusable for the whole
// window, as the paper counts it).
type Incident struct {
	ID       int
	Category Category
	Host     string
	Service  string
	Detail   string

	StartedAt  simclock.Time
	DetectedAt simclock.Time
	ResolvedAt simclock.Time
	Detected   bool
	Resolved   bool
	DetectedBy string // e.g. "intelliagent", "operator", "user-report"
	ResolvedBy string // e.g. "intelliagent", "oncall-admin"
}

// DetectionLatency reports time from start to detection (zero if
// undetected).
func (i *Incident) DetectionLatency() simclock.Time {
	if !i.Detected {
		return 0
	}
	return i.DetectedAt - i.StartedAt
}

// Downtime reports the incident's downtime up to now (or its full span if
// resolved).
func (i *Incident) Downtime(now simclock.Time) simclock.Time {
	if i.Resolved {
		return i.ResolvedAt - i.StartedAt
	}
	return now - i.StartedAt
}

// The §4 fault windows, shared by the report and the latency campaign so
// the same incident is never classified two ways. Overnight and weekend
// are disjoint: weekend nights count as weekend.

// WindowDay reports whether the incident started in weekday daytime.
func WindowDay(i *Incident) bool {
	return !i.StartedAt.IsWeekend() && !i.StartedAt.IsOvernight()
}

// WindowOvernight reports whether the incident started in a weekday
// overnight batch window (22:00–06:00).
func WindowOvernight(i *Incident) bool {
	return i.StartedAt.IsOvernight() && !i.StartedAt.IsWeekend()
}

// WindowWeekend reports whether the incident started on a weekend.
func WindowWeekend(i *Incident) bool {
	return i.StartedAt.IsWeekend()
}

// Ledger records incidents and charges downtime per category.
type Ledger struct {
	incidents []*Incident
	nextID    int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Reset empties the ledger back to the state NewLedger returns. Site reuse
// calls this between trials.
func (l *Ledger) Reset() {
	l.incidents = l.incidents[:0]
	l.nextID = 0
}

// Open records a new incident starting at now.
func (l *Ledger) Open(cat Category, host, service, detail string, now simclock.Time) *Incident {
	l.nextID++
	inc := &Incident{
		ID: l.nextID, Category: cat, Host: host, Service: service,
		Detail: detail, StartedAt: now,
	}
	l.incidents = append(l.incidents, inc)
	return inc
}

// Detect marks the incident detected at now by the named detector. Only the
// first detection sticks.
func (l *Ledger) Detect(inc *Incident, now simclock.Time, by string) {
	if inc.Detected {
		return
	}
	inc.Detected = true
	inc.DetectedAt = now
	inc.DetectedBy = by
}

// Resolve closes the incident at now, crediting the named resolver.
// Resolving implies detection (at the same moment if none was recorded).
func (l *Ledger) Resolve(inc *Incident, now simclock.Time, by string) {
	if inc.Resolved {
		return
	}
	l.Detect(inc, now, by)
	inc.Resolved = true
	inc.ResolvedAt = now
	inc.ResolvedBy = by
}

// Incidents returns all incidents in open order.
func (l *Ledger) Incidents() []*Incident { return l.incidents }

// Open incidents (unresolved), oldest first.
func (l *Ledger) OpenIncidents() []*Incident {
	var out []*Incident
	for _, inc := range l.incidents {
		if !inc.Resolved {
			out = append(out, inc)
		}
	}
	return out
}

// Count reports total incidents in a category.
func (l *Ledger) Count(cat Category) int {
	n := 0
	for _, inc := range l.incidents {
		if inc.Category == cat {
			n++
		}
	}
	return n
}

// DowntimeByCategory sums downtime per category up to now.
func (l *Ledger) DowntimeByCategory(now simclock.Time) map[Category]simclock.Time {
	out := make(map[Category]simclock.Time, len(Categories))
	for _, inc := range l.incidents {
		out[inc.Category] += inc.Downtime(now)
	}
	return out
}

// TotalDowntime sums downtime across categories up to now.
func (l *Ledger) TotalDowntime(now simclock.Time) simclock.Time {
	var total simclock.Time
	for _, inc := range l.incidents {
		total += inc.Downtime(now)
	}
	return total
}

// DetectionLatencies returns the latency of every detected incident that
// matches filter (nil matches all), sorted ascending.
func (l *Ledger) DetectionLatencies(filter func(*Incident) bool) []simclock.Time {
	var out []simclock.Time
	for _, inc := range l.incidents {
		if !inc.Detected {
			continue
		}
		if filter != nil && !filter(inc) {
			continue
		}
		out = append(out, inc.DetectionLatency())
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MTTRs returns repair times (resolve-detect) of resolved incidents that
// match filter, sorted ascending.
func (l *Ledger) MTTRs(filter func(*Incident) bool) []simclock.Time {
	var out []simclock.Time
	for _, inc := range l.incidents {
		if !inc.Resolved {
			continue
		}
		if filter != nil && !filter(inc) {
			continue
		}
		out = append(out, inc.ResolvedAt-inc.DetectedAt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Mean computes the mean of a sorted-or-not sample; zero for empty.
func Mean(xs []simclock.Time) simclock.Time {
	if len(xs) == 0 {
		return 0
	}
	var sum simclock.Time
	for _, x := range xs {
		sum += x
	}
	return sum / simclock.Time(len(xs))
}

// Availability reports the fraction (0..1) of span not lost to downtime —
// the service-availability headline campaigns aggregate across seeds.
// Incident downtime can overlap (several services down at once), so the
// value is clamped at zero rather than going negative; a zero span counts
// as fully available.
func Availability(down, span simclock.Time) float64 {
	if span <= 0 {
		return 1
	}
	a := 1 - float64(down)/float64(span)
	if a < 0 {
		return 0
	}
	return a
}

// Percentile returns the p-quantile (0..1) of xs by nearest-rank on a
// copy. p is clamped into [0, 1]; a NaN p counts as 0 — the
// float-to-int conversion of a non-finite product is implementation-
// defined in Go, so it must never reach the index arithmetic.
func Percentile(xs []simclock.Time, p float64) simclock.Time {
	if len(xs) == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	cp := append([]simclock.Time(nil), xs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(p*float64(len(cp)-1) + 0.5)
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// Summary is a one-line category report row.
type Summary struct {
	Category  Category
	Incidents int
	Downtime  simclock.Time
}

// Summaries builds Figure-2 style rows for every category (including empty
// ones) up to now.
func (l *Ledger) Summaries(now simclock.Time) []Summary {
	down := l.DowntimeByCategory(now)
	out := make([]Summary, 0, len(Categories))
	for _, c := range Categories {
		out = append(out, Summary{Category: c, Incidents: l.Count(c), Downtime: down[c]})
	}
	return out
}

func (s Summary) String() string {
	return fmt.Sprintf("%-16s %4d incidents %8.1f h", s.Category, s.Incidents, s.Downtime.Hours())
}
