// Package operators models the human side of the paper's "before" year:
// operators watching BMC Patrol/SystemEdge consoles, on-call administrators
// paged at night, escalation chains, and manual diagnosis and repair.
//
// The paper gives the timing constants directly (§4): faults took about 1
// hour to notice during the day, about 25 hours over weekends and about 10
// hours for overnight jobs (customer data from BMC Patrol); a service or
// server restart could take up to 2 hours because faults had to be
// diagnosed first; and when remote diagnosis failed and experts had to come
// in, the whole troubleshooting procedure averaged 4 hours.
package operators

import (
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Timing is the manual-operations timing model. Zero fields fall back to
// the paper's constants via DefaultTiming.
type Timing struct {
	// Mean detection delays by window (paper's customer data).
	DetectDay       simclock.Time
	DetectOvernight simclock.Time
	DetectWeekend   simclock.Time
	// Repair paths: a diagnosed restart takes up to RestartMax (uniform
	// over [RestartMin, RestartMax]); when escalation to on-site experts is
	// needed the whole procedure averages EscalatedMean.
	RestartMin    simclock.Time
	RestartMax    simclock.Time
	EscalatedMean simclock.Time
}

// DefaultTiming returns the paper's constants.
func DefaultTiming() Timing {
	return Timing{
		DetectDay:       1 * simclock.Hour,
		DetectOvernight: 10 * simclock.Hour,
		DetectWeekend:   25 * simclock.Hour,
		RestartMin:      30 * simclock.Minute,
		RestartMax:      2 * simclock.Hour,
		EscalatedMean:   4 * simclock.Hour,
	}
}

// Team is the manual operations pipeline.
type Team struct {
	rng    *simclock.Rand
	timing Timing
	// EscalationP is the probability a fault cannot be fixed remotely and
	// needs the 4-hour expert path, per category.
	escalationP map[metrics.Category]float64
	// Trace, when non-nil, records page and dispatch decision events via
	// PageDelay/DispatchDelay. The sampling itself is unchanged: the traced
	// wrappers draw exactly what DetectionDelay/RepairDelay draw.
	Trace *trace.Recorder
}

// Reseed replaces the team's random stream — on site reuse the team gets a
// fresh fork of the reseeded simulation source, exactly as NewTeam would.
// Timing and escalation configuration are preserved.
func (t *Team) Reseed(rng *simclock.Rand) { t.rng = rng }

// NewTeam returns a team with the paper's timing and per-category
// escalation probabilities reflecting each category's repair complexity.
func NewTeam(rng *simclock.Rand) *Team {
	return &Team{
		rng:    rng,
		timing: DefaultTiming(),
		escalationP: map[metrics.Category]float64{
			metrics.CatMidCrash:       0.45, // crashed databases often needed several experts
			metrics.CatHuman:          0.30,
			metrics.CatPerformance:    0.40, // bottleneck hunting is slow by hand
			metrics.CatFrontEnd:       0.25,
			metrics.CatLSF:            0.20,
			metrics.CatFirewallNet:    0.50,
			metrics.CatHardware:       0.80, // parts and engineers must come on site
			metrics.CatCompletelyDown: 0.60,
		},
	}
}

// SetTiming overrides the timing model (for ablations).
func (t *Team) SetTiming(tm Timing) { t.timing = tm }

// Timing returns the current timing model.
func (t *Team) Timing() Timing { return t.timing }

// DetectionDelay samples how long a fault occurring at 'now' goes unnoticed
// under manual operations: the window mean (day/overnight/weekend), spread
// ±50% — operators sometimes spot things fast, sometimes a report sits
// unread.
func (t *Team) DetectionDelay(now simclock.Time) simclock.Time {
	var mean simclock.Time
	switch {
	case now.IsWeekend():
		mean = t.timing.DetectWeekend
	case now.IsOvernight():
		mean = t.timing.DetectOvernight
	default:
		mean = t.timing.DetectDay
	}
	return t.rng.Jitter(mean, 0.5)
}

// RepairDelay samples how long the manual fix takes once detected: either a
// diagnosed restart (uniform in [RestartMin, RestartMax]) or, with the
// category's escalation probability, the expert path (mean EscalatedMean,
// ±50%).
func (t *Team) RepairDelay(cat metrics.Category) simclock.Time {
	d, _ := t.repairDelay(cat)
	return d
}

func (t *Team) repairDelay(cat metrics.Category) (delay simclock.Time, escalated bool) {
	if t.rng.Bool(t.escalationP[cat]) {
		return t.rng.Jitter(t.timing.EscalatedMean, 0.5), true
	}
	return t.rng.UniformDuration(t.timing.RestartMin, t.timing.RestartMax), false
}

// PageDelay is DetectionDelay plus a page decision event on the team's
// trace: the moment manual operations are paged about a fault, with the
// sampled time until an operator notices it.
func (t *Team) PageDelay(now simclock.Time, cat metrics.Category, host, aspect string) simclock.Time {
	d := t.DetectionDelay(now)
	t.Trace.Page(now, string(cat), host, aspect, d)
	return d
}

// DispatchDelay is RepairDelay plus a dispatch decision event on the
// team's trace: the sampled manual repair delay and whether it took the
// escalated expert path.
func (t *Team) DispatchDelay(now simclock.Time, cat metrics.Category, host, aspect string) simclock.Time {
	d, escalated := t.repairDelay(cat)
	t.Trace.Dispatch(now, string(cat), host, aspect, d, escalated)
	return d
}

// EscalationP reports the escalation probability for a category.
func (t *Team) EscalationP(cat metrics.Category) float64 { return t.escalationP[cat] }

// SetEscalationP overrides one category's escalation probability.
func (t *Team) SetEscalationP(cat metrics.Category, p float64) { t.escalationP[cat] = p }
