package operators

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

func TestDetectionDelayWindows(t *testing.T) {
	team := NewTeam(simclock.NewRand(1))
	sample := func(at simclock.Time) simclock.Time {
		var sum simclock.Time
		const n = 500
		for i := 0; i < n; i++ {
			sum += team.DetectionDelay(at)
		}
		return sum / n
	}
	day := sample(2*simclock.Day + 11*simclock.Hour)     // Wednesday 11:00
	night := sample(2*simclock.Day + 23*simclock.Hour)   // Wednesday 23:00
	weekend := sample(5*simclock.Day + 11*simclock.Hour) // Saturday 11:00
	if day < 45*simclock.Minute || day > 75*simclock.Minute {
		t.Errorf("day mean = %v, want ~1h", day)
	}
	if night < 8*simclock.Hour || night > 12*simclock.Hour {
		t.Errorf("overnight mean = %v, want ~10h", night)
	}
	if weekend < 20*simclock.Hour || weekend > 30*simclock.Hour {
		t.Errorf("weekend mean = %v, want ~25h", weekend)
	}
	if !(day < night && night < weekend) {
		t.Errorf("ordering broken: %v %v %v", day, night, weekend)
	}
}

func TestRepairDelayPaths(t *testing.T) {
	team := NewTeam(simclock.NewRand(2))
	// Force no escalation: uniform restart window.
	team.SetEscalationP(metrics.CatLSF, 0)
	for i := 0; i < 200; i++ {
		d := team.RepairDelay(metrics.CatLSF)
		if d < 30*simclock.Minute || d > 2*simclock.Hour {
			t.Fatalf("restart delay out of window: %v", d)
		}
	}
	// Force escalation: mean ~4h.
	team.SetEscalationP(metrics.CatHardware, 1)
	var sum simclock.Time
	const n = 500
	for i := 0; i < n; i++ {
		sum += team.RepairDelay(metrics.CatHardware)
	}
	mean := sum / n
	if mean < 3*simclock.Hour || mean > 5*simclock.Hour {
		t.Errorf("escalated mean = %v, want ~4h", mean)
	}
}

func TestEscalationProbabilitiesOrdering(t *testing.T) {
	team := NewTeam(simclock.NewRand(3))
	if team.EscalationP(metrics.CatHardware) <= team.EscalationP(metrics.CatLSF) {
		t.Error("hardware should escalate more than LSF faults")
	}
	for _, c := range metrics.Categories {
		p := team.EscalationP(c)
		if p < 0 || p > 1 {
			t.Errorf("escalation probability out of range for %s: %v", c, p)
		}
	}
}

func TestSetTiming(t *testing.T) {
	team := NewTeam(simclock.NewRand(4))
	tm := DefaultTiming()
	tm.DetectDay = 10 * simclock.Minute
	team.SetTiming(tm)
	if team.Timing().DetectDay != 10*simclock.Minute {
		t.Error("SetTiming not applied")
	}
	var sum simclock.Time
	const n = 300
	for i := 0; i < n; i++ {
		sum += team.DetectionDelay(2*simclock.Day + 11*simclock.Hour)
	}
	mean := sum / n
	if mean > 15*simclock.Minute {
		t.Errorf("custom day detection mean = %v", mean)
	}
}

func TestDefaultTimingMatchesPaper(t *testing.T) {
	tm := DefaultTiming()
	if tm.DetectDay != simclock.Hour || tm.DetectWeekend != 25*simclock.Hour ||
		tm.DetectOvernight != 10*simclock.Hour || tm.EscalatedMean != 4*simclock.Hour ||
		tm.RestartMax != 2*simclock.Hour {
		t.Errorf("timing constants drifted from the paper: %+v", tm)
	}
}
