package fsim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestAppendLineCappedMatchesReference drives AppendLineCapped alongside
// the read-append-trim-rewrite sequence it replaces and requires identical
// file contents after every step, across several cap sizes.
func TestAppendLineCappedMatchesReference(t *testing.T) {
	for _, max := range []int{1, 2, 5, 50} {
		fast := NewFS()
		ref := NewFS()
		path := "/logs/x/c.log"
		for i := 0; i < 3*max+7; i++ {
			line := fmt.Sprintf("line-%d", i)
			if err := fast.AppendLineCapped(path, line, max); err != nil {
				t.Fatal(err)
			}
			lines, err := ref.ReadLines(path)
			if err != nil {
				lines = nil
			}
			lines = append(lines, line)
			if len(lines) > max {
				lines = lines[len(lines)-max:]
			}
			if err := ref.WriteLines(path, lines); err != nil {
				t.Fatal(err)
			}
			got, _ := fast.ReadLines(path)
			want, _ := ref.ReadLines(path)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("max=%d step=%d: capped=%v reference=%v", max, i, got, want)
			}
		}
	}
}

// TestAppendLineCappedErrors pins the error surface shared with AppendLine.
func TestAppendLineCappedErrors(t *testing.T) {
	fs := NewFS()
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendLineCapped("/d", "x", 5); err == nil {
		t.Error("appending to a directory succeeded")
	}
	v := NewVolume()
	v.SetReadOnly(true)
	if err := v.AppendLineCapped("/f", "x", 5); err != ErrReadOnly {
		t.Errorf("read-only append error = %v, want ErrReadOnly", err)
	}
}

// TestRemoveRecyclingIsolation: the recycled file object from a Remove
// must not leak content or aliasing into the next file created.
func TestRemoveRecyclingIsolation(t *testing.T) {
	fs := NewFS()
	if err := fs.WriteLines("/a", []string{"old-1", "old-2"}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a") {
		t.Fatal("/a still exists after Remove")
	}
	if err := fs.WriteLines("/b", []string{"new"}); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadLines("/b")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"new"}) {
		t.Errorf("recycled file leaked content: %v", got)
	}
	// Overwrites reuse the line array; a caller's previously read copy
	// must be unaffected.
	if err := fs.WriteLines("/b", []string{"newer", "lines"}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"new"}) {
		t.Errorf("ReadLines result aliased live file storage: %v", got)
	}
}

// TestVolumeAndFSReset: Reset returns the namespace to its initial state
// while later writes still work.
func TestVolumeAndFSReset(t *testing.T) {
	fs := NewFS()
	shared := NewVolume()
	fs.Mount("/nfs/pool", shared)
	_ = fs.WriteLines("/local", []string{"x"})
	_ = fs.WriteLines("/nfs/pool/shared", []string{"y"})
	fs.Reset()
	if fs.Exists("/local") {
		t.Error("local file survived FS.Reset")
	}
	if fs.Exists("/nfs/pool/shared") {
		t.Error("mount survived FS.Reset (path still resolves to the shared volume)")
	}
	if !shared.Exists("/shared") {
		t.Error("FS.Reset wiped a shared volume it does not own")
	}
	if err := fs.WriteLines("/again", nil); err != nil {
		t.Fatalf("write after Reset: %v", err)
	}
	shared.Reset()
	if shared.Exists("/shared") || shared.FileCount() != 0 {
		t.Error("Volume.Reset left files behind")
	}
}
