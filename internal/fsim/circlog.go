package fsim

import "fmt"

// CircLog manages a file as a circular queue of lines with a configurable
// maximum length, as the paper's persistent-state performance logs are
// managed ("each file produced by persistent state processes was managed as
// a circular queue, the length of which was configurable").
type CircLog struct {
	fs   *FS
	path string
	max  int
}

// NewCircLog returns a circular log writing to path on fs, keeping at most
// max lines. max must be positive.
func NewCircLog(fs *FS, path string, max int) (*CircLog, error) {
	if max <= 0 {
		return nil, fmt.Errorf("fsim: circular log %s: non-positive max %d", path, max)
	}
	return &CircLog{fs: fs, path: path, max: max}, nil
}

// Max reports the configured maximum line count.
func (c *CircLog) Max() int { return c.max }

// Path reports the backing file path.
func (c *CircLog) Path() string { return c.path }

// Append adds a line, discarding the oldest lines once the file exceeds the
// maximum. The write is a single in-place capped append on the backing
// file, not a read-modify-rewrite, so appending stays O(1) amortised
// whatever the configured length.
func (c *CircLog) Append(line string) error {
	return c.fs.AppendLineCapped(c.path, line, c.max)
}

// Lines returns the current contents, oldest first.
func (c *CircLog) Lines() []string {
	lines, err := c.fs.ReadLines(c.path)
	if err != nil {
		return nil
	}
	return lines
}

// Len reports the current number of lines.
func (c *CircLog) Len() int { return len(c.Lines()) }

// Tail returns the newest n lines (fewer if the log is shorter).
func (c *CircLog) Tail(n int) []string {
	lines := c.Lines()
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return lines
}
