package fsim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteRead(t *testing.T) {
	fs := NewFS()
	if err := fs.WriteLines("/etc/hosts", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	lines, err := fs.ReadLines("/etc/hosts")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0] != "a" || lines[1] != "b" {
		t.Errorf("ReadLines = %v", lines)
	}
}

func TestReadMissing(t *testing.T) {
	fs := NewFS()
	if _, err := fs.ReadLines("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("want ErrNotExist, got %v", err)
	}
}

func TestReadIsolatedCopy(t *testing.T) {
	fs := NewFS()
	fs.WriteLines("/f", []string{"x"})
	lines, _ := fs.ReadLines("/f")
	lines[0] = "mutated"
	again, _ := fs.ReadLines("/f")
	if again[0] != "x" {
		t.Error("ReadLines must return a copy")
	}
}

func TestAppendLine(t *testing.T) {
	fs := NewFS()
	fs.AppendLine("/log", "one")
	fs.AppendLine("/log", "two")
	lines, _ := fs.ReadLines("/log")
	if len(lines) != 2 || lines[1] != "two" {
		t.Errorf("append result: %v", lines)
	}
}

func TestRemove(t *testing.T) {
	fs := NewFS()
	fs.WriteLines("/f", nil)
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/f") {
		t.Error("file should be gone")
	}
	if err := fs.Remove("/f"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double remove: want ErrNotExist, got %v", err)
	}
}

func TestTouchAndExists(t *testing.T) {
	fs := NewFS()
	if fs.Exists("/flag") {
		t.Error("flag should not exist yet")
	}
	fs.Touch("/flag")
	if !fs.Exists("/flag") {
		t.Error("flag should exist after touch")
	}
	lines, _ := fs.ReadLines("/flag")
	if len(lines) != 0 {
		t.Errorf("touched file should be empty, got %v", lines)
	}
}

func TestMTimeAdvances(t *testing.T) {
	fs := NewFS()
	fs.WriteLines("/a", nil)
	m1 := fs.MTime("/a")
	fs.Touch("/a")
	m2 := fs.MTime("/a")
	if m2 <= m1 {
		t.Errorf("mtime should advance: %d -> %d", m1, m2)
	}
	if fs.MTime("/missing") != 0 {
		t.Error("missing file mtime should be 0")
	}
}

func TestList(t *testing.T) {
	fs := NewFS()
	fs.WriteLines("/logs/agents/cpu.flag", nil)
	fs.WriteLines("/logs/agents/mem.flag", nil)
	fs.WriteLines("/logs/agents/sub/deep.flag", nil)
	names, err := fs.List("/logs/agents")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "cpu.flag" || names[1] != "mem.flag" {
		t.Errorf("List = %v", names)
	}
	if _, err := fs.List("/nothing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing dir: got %v", err)
	}
}

func TestMkdirList(t *testing.T) {
	fs := NewFS()
	if err := fs.Mkdir("/empty/dir"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List("/empty/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("empty dir list = %v", names)
	}
}

func TestRemoveAll(t *testing.T) {
	fs := NewFS()
	fs.WriteLines("/d/a", nil)
	fs.WriteLines("/d/sub/b", nil)
	fs.WriteLines("/other", nil)
	fs.RemoveAll("/d")
	if fs.Exists("/d/a") || fs.Exists("/d/sub/b") {
		t.Error("subtree should be gone")
	}
	if !fs.Exists("/other") {
		t.Error("unrelated file removed")
	}
}

func TestWriteToDirFails(t *testing.T) {
	fs := NewFS()
	fs.WriteLines("/dir/file", nil)
	if err := fs.WriteLines("/dir", nil); !errors.Is(err, ErrIsDir) {
		t.Errorf("want ErrIsDir, got %v", err)
	}
}

func TestFileAsDirComponentFails(t *testing.T) {
	fs := NewFS()
	fs.WriteLines("/f", nil)
	if err := fs.WriteLines("/f/child", nil); !errors.Is(err, ErrNotDir) {
		t.Errorf("want ErrNotDir, got %v", err)
	}
}

func TestNFSMountSharing(t *testing.T) {
	pool := NewVolume()
	admin1, admin2 := NewFS(), NewFS()
	admin1.Mount("/nfs/pool", pool)
	admin2.Mount("/nfs/pool", pool)
	if err := admin1.WriteLines("/nfs/pool/dgspl.txt", []string{"svc"}); err != nil {
		t.Fatal(err)
	}
	lines, err := admin2.ReadLines("/nfs/pool/dgspl.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0] != "svc" {
		t.Errorf("shared read = %v", lines)
	}
	// Private roots stay private.
	admin1.WriteLines("/private", nil)
	if admin2.Exists("/private") {
		t.Error("private file leaked across namespaces")
	}
}

func TestUnmount(t *testing.T) {
	pool := NewVolume()
	fs := NewFS()
	fs.Mount("/mnt", pool)
	fs.WriteLines("/mnt/f", []string{"x"})
	if !fs.Unmount("/mnt") {
		t.Fatal("unmount failed")
	}
	if fs.Exists("/mnt/f") {
		t.Error("file should resolve to root volume after unmount")
	}
	if fs.Unmount("/mnt") {
		t.Error("second unmount should report false")
	}
	if !pool.Exists("/f") {
		t.Error("file should persist on the volume")
	}
}

func TestLongestPrefixMount(t *testing.T) {
	outer, inner := NewVolume(), NewVolume()
	fs := NewFS()
	fs.Mount("/m", outer)
	fs.Mount("/m/deep", inner)
	fs.WriteLines("/m/deep/f", []string{"inner"})
	fs.WriteLines("/m/f", []string{"outer"})
	if !inner.Exists("/f") {
		t.Error("inner mount should receive /m/deep/f")
	}
	if !outer.Exists("/f") {
		t.Error("outer mount should receive /m/f")
	}
	if outer.Exists("/deep/f") {
		t.Error("outer mount must not shadow inner")
	}
}

func TestReadOnlyVolume(t *testing.T) {
	v := NewVolume()
	v.WriteLines("/f", []string{"x"})
	v.SetReadOnly(true)
	if err := v.WriteLines("/g", nil); !errors.Is(err, ErrReadOnly) {
		t.Errorf("write: want ErrReadOnly, got %v", err)
	}
	if err := v.AppendLine("/f", "y"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("append: want ErrReadOnly, got %v", err)
	}
	if err := v.Remove("/f"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("remove: want ErrReadOnly, got %v", err)
	}
	v.SetReadOnly(false)
	if err := v.WriteLines("/g", nil); err != nil {
		t.Errorf("write after re-enable: %v", err)
	}
}

func TestPathCleaning(t *testing.T) {
	fs := NewFS()
	fs.WriteLines("relative/path", []string{"x"})
	if !fs.Exists("/relative/path") {
		t.Error("relative paths should be rooted")
	}
	fs.WriteLines("/a//b/../c", []string{"y"})
	if !fs.Exists("/a/c") {
		t.Error("paths should be cleaned")
	}
}

func TestFileCount(t *testing.T) {
	v := NewVolume()
	v.WriteLines("/a", nil)
	v.WriteLines("/b/c", nil)
	if v.FileCount() != 2 {
		t.Errorf("FileCount = %d", v.FileCount())
	}
}

func TestCircLogBasics(t *testing.T) {
	fs := NewFS()
	cl, err := NewCircLog(fs, "/logs/perf/cpu.log", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		cl.Append(fmt.Sprintf("line%d", i))
	}
	lines := cl.Lines()
	if len(lines) != 3 {
		t.Fatalf("Len = %d, want 3", len(lines))
	}
	if lines[0] != "line2" || lines[2] != "line4" {
		t.Errorf("oldest lines should be evicted: %v", lines)
	}
	if cl.Len() != 3 || cl.Max() != 3 {
		t.Errorf("Len=%d Max=%d", cl.Len(), cl.Max())
	}
	tail := cl.Tail(2)
	if len(tail) != 2 || tail[1] != "line4" {
		t.Errorf("Tail = %v", tail)
	}
	if got := cl.Tail(10); len(got) != 3 {
		t.Errorf("Tail beyond length = %v", got)
	}
}

func TestCircLogBadMax(t *testing.T) {
	if _, err := NewCircLog(NewFS(), "/x", 0); err == nil {
		t.Error("max 0 should error")
	}
}

// Property: a circular log never exceeds its max and always keeps the
// newest entries in order.
func TestQuickCircLogBounded(t *testing.T) {
	f := func(n uint8, max8 uint8) bool {
		max := int(max8%20) + 1
		fs := NewFS()
		cl, err := NewCircLog(fs, "/l", max)
		if err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			cl.Append(fmt.Sprintf("%04d", i))
		}
		lines := cl.Lines()
		if len(lines) > max {
			return false
		}
		want := int(n) - len(lines)
		for i, l := range lines {
			if l != fmt.Sprintf("%04d", want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: write-then-read round-trips any line set that contains no
// newline characters (the codec is line-oriented).
func TestQuickWriteReadRoundTrip(t *testing.T) {
	f := func(raw []string) bool {
		fs := NewFS()
		lines := make([]string, len(raw))
		for i, s := range raw {
			lines[i] = strings.ReplaceAll(s, "\n", " ")
		}
		if err := fs.WriteLines("/rt", lines); err != nil {
			return false
		}
		got, err := fs.ReadLines("/rt")
		if err != nil {
			return false
		}
		if len(got) != len(lines) {
			return false
		}
		for i := range got {
			if got[i] != lines[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
