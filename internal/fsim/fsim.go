// Package fsim simulates the slice of Unix filesystem behaviour the paper's
// intelliagents rely on: flat ASCII files written through pipes, flag files
// under /logs/intelliagents, circular-queue performance logs, and NFS
// mounts shared between the administration servers.
//
// An FS is a single host's namespace. Mounting grafts a shared *Volume into
// several namespaces so writes through one host are visible to the others,
// exactly like the paper's common pool of NFS mounted disks.
package fsim

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Errors reported by filesystem operations.
var (
	ErrNotExist = errors.New("fsim: file does not exist")
	ErrIsDir    = errors.New("fsim: path is a directory")
	ErrNotDir   = errors.New("fsim: path component is not a directory")
	ErrExist    = errors.New("fsim: file already exists")
	ErrReadOnly = errors.New("fsim: volume is read-only")
)

// file is a flat ASCII file. Content is held as lines, matching the
// line-oriented way every tool in the paper consumes them.
type file struct {
	lines []string
	mtime int64 // opaque modification stamp, monotonically increasing
}

// Volume is a mountable tree of files. Volumes are safe for concurrent use;
// the simulation is single-goroutine but examples may not be.
type Volume struct {
	mu       sync.Mutex
	files    map[string]*file // cleaned absolute path -> file
	dirs     map[string]bool  // cleaned absolute path -> exists
	stamp    int64
	readOnly bool
}

// NewVolume returns an empty volume containing only the root directory.
func NewVolume() *Volume {
	return &Volume{
		files: make(map[string]*file),
		dirs:  map[string]bool{"/": true},
	}
}

// SetReadOnly marks the volume read-only; subsequent writes fail with
// ErrReadOnly. Used to simulate disk faults on shared storage.
func (v *Volume) SetReadOnly(ro bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.readOnly = ro
}

func clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

func (v *Volume) ensureDirs(p string) error {
	dir := path.Dir(p)
	for dir != "/" {
		if v.files[dir] != nil {
			return fmt.Errorf("%w: %s", ErrNotDir, dir)
		}
		v.dirs[dir] = true
		dir = path.Dir(dir)
	}
	return nil
}

// WriteLines replaces the file at p with the given lines, creating parent
// directories as needed (like a shell redirection after mkdir -p).
func (v *Volume) WriteLines(p string, lines []string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readOnly {
		return ErrReadOnly
	}
	p = clean(p)
	if v.dirs[p] {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	if err := v.ensureDirs(p); err != nil {
		return err
	}
	v.stamp++
	v.files[p] = &file{lines: append([]string(nil), lines...), mtime: v.stamp}
	return nil
}

// AppendLine appends one line to the file at p, creating it if absent.
func (v *Volume) AppendLine(p, line string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readOnly {
		return ErrReadOnly
	}
	p = clean(p)
	if v.dirs[p] {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	if err := v.ensureDirs(p); err != nil {
		return err
	}
	f := v.files[p]
	if f == nil {
		f = &file{}
		v.files[p] = f
	}
	v.stamp++
	f.lines = append(f.lines, line)
	f.mtime = v.stamp
	return nil
}

// ReadLines returns a copy of the file's lines.
func (v *Volume) ReadLines(p string) ([]string, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	p = clean(p)
	if v.dirs[p] {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	f := v.files[p]
	if f == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return append([]string(nil), f.lines...), nil
}

// Exists reports whether a file (not directory) exists at p.
func (v *Volume) Exists(p string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.files[clean(p)] != nil
}

// MTime reports the opaque modification stamp of the file at p; larger is
// newer. It returns 0 for missing files.
func (v *Volume) MTime(p string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if f := v.files[clean(p)]; f != nil {
		return f.mtime
	}
	return 0
}

// Remove deletes the file at p. Removing a missing file returns
// ErrNotExist, matching rm semantics.
func (v *Volume) Remove(p string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readOnly {
		return ErrReadOnly
	}
	p = clean(p)
	if v.files[p] == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	delete(v.files, p)
	return nil
}

// Mkdir creates the directory p and its parents.
func (v *Volume) Mkdir(p string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readOnly {
		return ErrReadOnly
	}
	p = clean(p)
	if v.files[p] != nil {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	if err := v.ensureDirs(p + "/x"); err != nil { // ensure p itself and parents
		return err
	}
	v.dirs[p] = true
	return nil
}

// List returns the sorted basenames of files directly inside directory p.
func (v *Volume) List(p string) ([]string, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	p = clean(p)
	if !v.dirs[p] && p != "/" {
		// A directory exists implicitly if any file lives under it.
		found := false
		prefix := p + "/"
		for fp := range v.files {
			if strings.HasPrefix(fp, prefix) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
		}
	}
	var names []string
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	for fp := range v.files {
		if strings.HasPrefix(fp, prefix) {
			rest := strings.TrimPrefix(fp, prefix)
			if !strings.Contains(rest, "/") {
				names = append(names, rest)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// RemoveAll deletes every file under directory p (and p itself if it is a
// file).
func (v *Volume) RemoveAll(p string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readOnly {
		return ErrReadOnly
	}
	p = clean(p)
	delete(v.files, p)
	prefix := p + "/"
	for fp := range v.files {
		if strings.HasPrefix(fp, prefix) {
			delete(v.files, fp)
		}
	}
	for dp := range v.dirs {
		if strings.HasPrefix(dp, prefix) {
			delete(v.dirs, dp)
		}
	}
	delete(v.dirs, p)
	return nil
}

// FileCount reports the number of files on the volume.
func (v *Volume) FileCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.files)
}

// mount maps a namespace prefix onto a volume.
type mount struct {
	prefix string // e.g. "/nfs/pool"
	vol    *Volume
}

// FS is one host's filesystem namespace: a root volume plus mounts.
type FS struct {
	root   *Volume
	mounts []mount // longest-prefix wins; kept sorted by descending length
}

// NewFS returns a namespace backed by a fresh private root volume.
func NewFS() *FS { return &FS{root: NewVolume()} }

// Mount grafts vol at prefix. Paths at or below prefix resolve on vol with
// the prefix stripped, mirroring an NFS mount of a shared disk pool.
func (fs *FS) Mount(prefix string, vol *Volume) {
	prefix = clean(prefix)
	fs.mounts = append(fs.mounts, mount{prefix: prefix, vol: vol})
	sort.Slice(fs.mounts, func(i, j int) bool {
		return len(fs.mounts[i].prefix) > len(fs.mounts[j].prefix)
	})
}

// Unmount removes the mount at prefix, reporting whether one existed.
func (fs *FS) Unmount(prefix string) bool {
	prefix = clean(prefix)
	for i, m := range fs.mounts {
		if m.prefix == prefix {
			fs.mounts = append(fs.mounts[:i], fs.mounts[i+1:]...)
			return true
		}
	}
	return false
}

// resolve maps a namespace path to (volume, volume-local path).
func (fs *FS) resolve(p string) (*Volume, string) {
	p = clean(p)
	for _, m := range fs.mounts {
		if p == m.prefix {
			return m.vol, "/"
		}
		if strings.HasPrefix(p, m.prefix+"/") {
			return m.vol, strings.TrimPrefix(p, m.prefix)
		}
	}
	return fs.root, p
}

// WriteLines writes through the namespace. See Volume.WriteLines.
func (fs *FS) WriteLines(p string, lines []string) error {
	v, vp := fs.resolve(p)
	return v.WriteLines(vp, lines)
}

// AppendLine appends through the namespace. See Volume.AppendLine.
func (fs *FS) AppendLine(p, line string) error {
	v, vp := fs.resolve(p)
	return v.AppendLine(vp, line)
}

// ReadLines reads through the namespace. See Volume.ReadLines.
func (fs *FS) ReadLines(p string) ([]string, error) {
	v, vp := fs.resolve(p)
	return v.ReadLines(vp)
}

// Exists reports file existence through the namespace.
func (fs *FS) Exists(p string) bool {
	v, vp := fs.resolve(p)
	return v.Exists(vp)
}

// MTime reports the modification stamp through the namespace.
func (fs *FS) MTime(p string) int64 {
	v, vp := fs.resolve(p)
	return v.MTime(vp)
}

// Remove deletes through the namespace.
func (fs *FS) Remove(p string) error {
	v, vp := fs.resolve(p)
	return v.Remove(vp)
}

// Mkdir creates a directory through the namespace.
func (fs *FS) Mkdir(p string) error {
	v, vp := fs.resolve(p)
	return v.Mkdir(vp)
}

// List lists a directory through the namespace.
func (fs *FS) List(p string) ([]string, error) {
	v, vp := fs.resolve(p)
	return v.List(vp)
}

// RemoveAll removes a subtree through the namespace.
func (fs *FS) RemoveAll(p string) error {
	v, vp := fs.resolve(p)
	return v.RemoveAll(vp)
}

// Touch creates an empty file at p if absent, updating its mtime if
// present. This is how agents drop status flags.
func (fs *FS) Touch(p string) error {
	v, vp := fs.resolve(p)
	lines, err := v.ReadLines(vp)
	if err != nil {
		return v.WriteLines(vp, nil)
	}
	return v.WriteLines(vp, lines)
}
