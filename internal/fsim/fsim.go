// Package fsim simulates the slice of Unix filesystem behaviour the paper's
// intelliagents rely on: flat ASCII files written through pipes, flag files
// under /logs/intelliagents, circular-queue performance logs, and NFS
// mounts shared between the administration servers.
//
// An FS is a single host's namespace. Mounting grafts a shared *Volume into
// several namespaces so writes through one host are visible to the others,
// exactly like the paper's common pool of NFS mounted disks.
package fsim

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Errors reported by filesystem operations.
var (
	ErrNotExist = errors.New("fsim: file does not exist")
	ErrIsDir    = errors.New("fsim: path is a directory")
	ErrNotDir   = errors.New("fsim: path component is not a directory")
	ErrExist    = errors.New("fsim: file already exists")
	ErrReadOnly = errors.New("fsim: volume is read-only")
)

// file is a flat ASCII file. Content is held as lines, matching the
// line-oriented way every tool in the paper consumes them.
type file struct {
	lines []string
	mtime int64 // opaque modification stamp, monotonically increasing
}

// Volume is a mountable tree of files. Volumes are safe for concurrent use;
// the simulation is single-goroutine but examples may not be.
type Volume struct {
	mu       sync.Mutex
	files    map[string]*file // cleaned absolute path -> file
	dirs     map[string]bool  // cleaned absolute path -> exists
	stamp    int64
	readOnly bool
	spare    *file // last removed file, recycled by the next creation
}

// NewVolume returns an empty volume containing only the root directory.
func NewVolume() *Volume {
	return &Volume{
		files: make(map[string]*file),
		dirs:  map[string]bool{"/": true},
	}
}

// SetReadOnly marks the volume read-only; subsequent writes fail with
// ErrReadOnly. Used to simulate disk faults on shared storage.
func (v *Volume) SetReadOnly(ro bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.readOnly = ro
}

func clean(p string) string {
	if alreadyClean(p) {
		return p
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// alreadyClean reports whether p is already in path.Clean form ("/a/b/c"),
// the overwhelmingly common case for the fixed agent paths: rooted, no
// empty, "." or ".." segments, no trailing slash. Skipping path.Clean for
// these avoids its per-call allocation on every filesystem operation.
func alreadyClean(p string) bool {
	if len(p) == 0 || p[0] != '/' {
		return false
	}
	if len(p) == 1 {
		return true
	}
	if p[len(p)-1] == '/' {
		return false
	}
	segStart := 1
	for i := 1; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			seg := p[segStart:i]
			if len(seg) == 0 || seg == "." || seg == ".." {
				return false
			}
			segStart = i + 1
		}
	}
	return true
}

func (v *Volume) ensureDirs(p string) error {
	dir := path.Dir(p)
	for dir != "/" {
		if v.files[dir] != nil {
			return fmt.Errorf("%w: %s", ErrNotDir, dir)
		}
		v.dirs[dir] = true
		dir = path.Dir(dir)
	}
	return nil
}

// WriteLines replaces the file at p with the given lines, creating parent
// directories as needed (like a shell redirection after mkdir -p).
func (v *Volume) WriteLines(p string, lines []string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readOnly {
		return ErrReadOnly
	}
	p = clean(p)
	if v.dirs[p] {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	if err := v.ensureDirs(p); err != nil {
		return err
	}
	v.stamp++
	if f := v.files[p]; f != nil {
		// Overwrite in place, reusing the file object and, where capacity
		// allows, its line array — flag files and locks are rewritten every
		// agent run.
		f.lines = append(f.lines[:0], lines...)
		f.mtime = v.stamp
		return nil
	}
	f := v.takeSpare()
	f.lines = append(f.lines[:0], lines...)
	f.mtime = v.stamp
	v.files[p] = f
	return nil
}

// takeSpare returns the recycled file object if one is banked, else a new
// one. Lock and flag files cycle through remove/recreate on every agent
// run; recycling keeps that cycle allocation-free.
func (v *Volume) takeSpare() *file {
	if f := v.spare; f != nil {
		v.spare = nil
		return f
	}
	return &file{}
}

// AppendLineCapped appends one line and then discards the oldest lines
// beyond max, in one pass — the O(1)-amortised primitive circular logs are
// built on. The resulting content is exactly what AppendLine followed by a
// trimming WriteLines would leave.
func (v *Volume) AppendLineCapped(p, line string, max int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readOnly {
		return ErrReadOnly
	}
	p = clean(p)
	if v.dirs[p] {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	if err := v.ensureDirs(p); err != nil {
		return err
	}
	f := v.files[p]
	if f == nil {
		f = v.takeSpare()
		v.files[p] = f
	}
	v.stamp++
	f.mtime = v.stamp
	if len(f.lines) >= max && max > 0 {
		// Shift down in place: the backing array stays at ~max entries, so
		// appends settle into copy-without-allocate steady state.
		n := copy(f.lines, f.lines[len(f.lines)-max+1:])
		f.lines = append(f.lines[:n], line)
		return nil
	}
	f.lines = append(f.lines, line)
	return nil
}

// AppendLine appends one line to the file at p, creating it if absent.
func (v *Volume) AppendLine(p, line string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readOnly {
		return ErrReadOnly
	}
	p = clean(p)
	if v.dirs[p] {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	if err := v.ensureDirs(p); err != nil {
		return err
	}
	f := v.files[p]
	if f == nil {
		f = v.takeSpare()
		v.files[p] = f
	}
	v.stamp++
	f.lines = append(f.lines, line)
	f.mtime = v.stamp
	return nil
}

// ReadLines returns a copy of the file's lines.
func (v *Volume) ReadLines(p string) ([]string, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	p = clean(p)
	if v.dirs[p] {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	f := v.files[p]
	if f == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return append([]string(nil), f.lines...), nil
}

// Exists reports whether a file (not directory) exists at p.
func (v *Volume) Exists(p string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.files[clean(p)] != nil
}

// MTime reports the opaque modification stamp of the file at p; larger is
// newer. It returns 0 for missing files.
func (v *Volume) MTime(p string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if f := v.files[clean(p)]; f != nil {
		return f.mtime
	}
	return 0
}

// Remove deletes the file at p. Removing a missing file returns
// ErrNotExist, matching rm semantics.
func (v *Volume) Remove(p string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readOnly {
		return ErrReadOnly
	}
	p = clean(p)
	f := v.files[p]
	if f == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	delete(v.files, p)
	clear(f.lines)
	f.lines = f.lines[:0]
	v.spare = f
	return nil
}

// Mkdir creates the directory p and its parents.
func (v *Volume) Mkdir(p string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readOnly {
		return ErrReadOnly
	}
	p = clean(p)
	if v.files[p] != nil {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	if err := v.ensureDirs(p + "/x"); err != nil { // ensure p itself and parents
		return err
	}
	v.dirs[p] = true
	return nil
}

// List returns the sorted basenames of files directly inside directory p.
func (v *Volume) List(p string) ([]string, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	p = clean(p)
	if !v.dirs[p] && p != "/" {
		// A directory exists implicitly if any file lives under it.
		found := false
		prefix := p + "/"
		for fp := range v.files {
			if strings.HasPrefix(fp, prefix) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
		}
	}
	var names []string
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	for fp := range v.files {
		if strings.HasPrefix(fp, prefix) {
			rest := strings.TrimPrefix(fp, prefix)
			if !strings.Contains(rest, "/") {
				names = append(names, rest)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// HasFileWithSuffix reports whether directory p directly contains a file
// whose name ends in suffix — the allocation-free existence probe sweep
// loops use in place of List. A missing or empty directory reports false.
func (v *Volume) HasFileWithSuffix(p, suffix string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	prefix := clean(p) + "/"
	if prefix == "//" {
		prefix = "/"
	}
	for fp := range v.files {
		if strings.HasPrefix(fp, prefix) {
			rest := fp[len(prefix):]
			if !strings.Contains(rest, "/") && strings.HasSuffix(rest, suffix) {
				return true
			}
		}
	}
	return false
}

// RemoveAll deletes every file under directory p (and p itself if it is a
// file).
func (v *Volume) RemoveAll(p string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readOnly {
		return ErrReadOnly
	}
	p = clean(p)
	delete(v.files, p)
	prefix := p + "/"
	for fp := range v.files {
		if strings.HasPrefix(fp, prefix) {
			delete(v.files, fp)
		}
	}
	for dp := range v.dirs {
		if strings.HasPrefix(dp, prefix) {
			delete(v.dirs, dp)
		}
	}
	delete(v.dirs, p)
	return nil
}

// Reset wipes the volume back to the state NewVolume returns — no files,
// only the root directory, stamp zero, writable — while keeping the map
// storage allocated for reuse.
func (v *Volume) Reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	clear(v.files)
	clear(v.dirs)
	v.dirs["/"] = true
	v.stamp = 0
	v.readOnly = false
}

// FileCount reports the number of files on the volume.
func (v *Volume) FileCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.files)
}

// mount maps a namespace prefix onto a volume.
type mount struct {
	prefix string // e.g. "/nfs/pool"
	vol    *Volume
}

// FS is one host's filesystem namespace: a root volume plus mounts.
type FS struct {
	root   *Volume
	mounts []mount // longest-prefix wins; kept sorted by descending length
}

// NewFS returns a namespace backed by a fresh private root volume.
func NewFS() *FS { return &FS{root: NewVolume()} }

// Mount grafts vol at prefix. Paths at or below prefix resolve on vol with
// the prefix stripped, mirroring an NFS mount of a shared disk pool.
func (fs *FS) Mount(prefix string, vol *Volume) {
	prefix = clean(prefix)
	fs.mounts = append(fs.mounts, mount{prefix: prefix, vol: vol})
	sort.Slice(fs.mounts, func(i, j int) bool {
		return len(fs.mounts[i].prefix) > len(fs.mounts[j].prefix)
	})
}

// Unmount removes the mount at prefix, reporting whether one existed.
func (fs *FS) Unmount(prefix string) bool {
	prefix = clean(prefix)
	for i, m := range fs.mounts {
		if m.prefix == prefix {
			fs.mounts = append(fs.mounts[:i], fs.mounts[i+1:]...)
			return true
		}
	}
	return false
}

// resolve maps a namespace path to (volume, volume-local path).
func (fs *FS) resolve(p string) (*Volume, string) {
	p = clean(p)
	for _, m := range fs.mounts {
		if p == m.prefix {
			return m.vol, "/"
		}
		if strings.HasPrefix(p, m.prefix+"/") {
			return m.vol, strings.TrimPrefix(p, m.prefix)
		}
	}
	return fs.root, p
}

// WriteLines writes through the namespace. See Volume.WriteLines.
func (fs *FS) WriteLines(p string, lines []string) error {
	v, vp := fs.resolve(p)
	return v.WriteLines(vp, lines)
}

// AppendLine appends through the namespace. See Volume.AppendLine.
func (fs *FS) AppendLine(p, line string) error {
	v, vp := fs.resolve(p)
	return v.AppendLine(vp, line)
}

// ReadLines reads through the namespace. See Volume.ReadLines.
func (fs *FS) ReadLines(p string) ([]string, error) {
	v, vp := fs.resolve(p)
	return v.ReadLines(vp)
}

// Exists reports file existence through the namespace.
func (fs *FS) Exists(p string) bool {
	v, vp := fs.resolve(p)
	return v.Exists(vp)
}

// MTime reports the modification stamp through the namespace.
func (fs *FS) MTime(p string) int64 {
	v, vp := fs.resolve(p)
	return v.MTime(vp)
}

// Remove deletes through the namespace.
func (fs *FS) Remove(p string) error {
	v, vp := fs.resolve(p)
	return v.Remove(vp)
}

// Mkdir creates a directory through the namespace.
func (fs *FS) Mkdir(p string) error {
	v, vp := fs.resolve(p)
	return v.Mkdir(vp)
}

// List lists a directory through the namespace.
func (fs *FS) List(p string) ([]string, error) {
	v, vp := fs.resolve(p)
	return v.List(vp)
}

// HasFileWithSuffix probes through the namespace. See
// Volume.HasFileWithSuffix.
func (fs *FS) HasFileWithSuffix(p, suffix string) bool {
	v, vp := fs.resolve(p)
	return v.HasFileWithSuffix(vp, suffix)
}

// RemoveAll removes a subtree through the namespace.
func (fs *FS) RemoveAll(p string) error {
	v, vp := fs.resolve(p)
	return v.RemoveAll(vp)
}

// AppendLineCapped appends through the namespace with a line cap. See
// Volume.AppendLineCapped.
func (fs *FS) AppendLineCapped(p, line string, max int) error {
	v, vp := fs.resolve(p)
	return v.AppendLineCapped(vp, line, max)
}

// Reset wipes the namespace back to the state NewFS returns: the private
// root volume is emptied (allocation kept) and all mounts are dropped.
// Shared volumes that were mounted are left untouched — they may be
// mounted elsewhere; resetting them is their owner's call.
func (fs *FS) Reset() {
	fs.root.Reset()
	fs.mounts = nil
}

// Touch creates an empty file at p if absent, updating its mtime if
// present. This is how agents drop status flags.
func (fs *FS) Touch(p string) error {
	v, vp := fs.resolve(p)
	lines, err := v.ReadLines(vp)
	if err != nil {
		return v.WriteLines(vp, nil)
	}
	return v.WriteLines(vp, lines)
}
