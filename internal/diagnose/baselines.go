package diagnose

import "repro/internal/cluster"

// DefaultOSBaseline builds the operating-system constraint table of §3.6
// for a hardware model: memory scan rate / page-outs / free memory, CPU run
// queue, idle %, blocked processes and disk service times. Bounds scale
// with the machine size where that matters.
func DefaultOSBaseline(m cluster.HardwareModel) *Baseline {
	b := NewBaseline()
	b.Set(Constraint{Aspect: "memory.scanrate", Min: 0, Max: 200, Unit: "pages/s"})
	b.Set(Constraint{Aspect: "memory.pageouts", Min: 0, Max: 100, Unit: "pages/s"})
	b.Set(Constraint{Aspect: "memory.freemb", Min: float64(m.MemoryMB) * 0.05, Max: float64(m.MemoryMB), Unit: "MB"})
	b.Set(Constraint{Aspect: "cpu.runqueue", Min: 0, Max: float64(m.CPUs), Unit: "procs"})
	b.Set(Constraint{Aspect: "cpu.idlepct", Min: (1 - m.MaxLoad) * 100, Max: 100, Unit: "%"})
	b.Set(Constraint{Aspect: "io.blocked", Min: 0, Max: 5, Unit: "procs"})
	b.Set(Constraint{Aspect: "disk.asvc", Min: 0, Max: 50, Unit: "ms"})
	b.Set(Constraint{Aspect: "disk.wsvc", Min: 0, Max: 100, Unit: "ms"})
	return b
}

// DefaultNetBaseline builds the network constraint table of §3.6.
func DefaultNetBaseline() *Baseline {
	b := NewBaseline()
	b.Set(Constraint{Aspect: "net.errors", Min: 0, Max: 0, Unit: "count"})
	b.Set(Constraint{Aspect: "net.collisions", Min: 0, Max: 10, Unit: "count"})
	b.Set(Constraint{Aspect: "net.rtt", Min: 0, Max: 50, Unit: "ms"})
	return b
}

// DefaultDBBaseline builds the database measurement constraints of §3.6:
// connect time, request service time, startup/shutdown/backup durations,
// and per-transaction memory.
func DefaultDBBaseline() *Baseline {
	b := NewBaseline()
	b.Set(Constraint{Aspect: "db.connect", Min: 0, Max: 5, Unit: "s"})
	b.Set(Constraint{Aspect: "db.request", Min: 0, Max: 30, Unit: "s"})
	b.Set(Constraint{Aspect: "db.startup", Min: 0, Max: 600, Unit: "s"})
	b.Set(Constraint{Aspect: "db.shutdown", Min: 0, Max: 300, Unit: "s"})
	b.Set(Constraint{Aspect: "db.backup", Min: 0, Max: 14400, Unit: "s"})
	b.Set(Constraint{Aspect: "db.memptx", Min: 0, Max: 64, Unit: "MB"})
	return b
}
