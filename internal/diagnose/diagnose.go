// Package diagnose implements the intelliagents' constraint-based causal
// reasoning (§3.3): flat textual constraint tables holding minimum and
// maximum values for software and hardware variables (the static
// ontologies' contribution to reasoning), evidence gathered statically
// (parsing error logs) and dynamically (running administration commands),
// and prioritised causal rules mapping evidence to a root cause and a
// prescribed repair action.
package diagnose

import (
	"fmt"
	"sort"
	"strings"
)

// Constraint bounds one measured aspect. A measurement violates the
// constraint when it falls outside [Min, Max].
type Constraint struct {
	Aspect string
	Min    float64
	Max    float64
	Unit   string
}

// Violated reports whether v breaks the constraint.
func (c Constraint) Violated(v float64) bool { return v < c.Min || v > c.Max }

func (c Constraint) String() string {
	return fmt.Sprintf("%s in [%g, %g] %s", c.Aspect, c.Min, c.Max, c.Unit)
}

// Baseline is a set of constraints for one server/application combination,
// set with expert help and adjusted from observation (§3.6: "every time a
// baseline setting was not proven to be correct, we adjusted it
// accordingly").
type Baseline struct {
	byAspect map[string]Constraint
	// Adjustments counts how often each aspect's bounds were corrected.
	Adjustments map[string]int
}

// NewBaseline returns an empty baseline.
func NewBaseline() *Baseline {
	return &Baseline{byAspect: make(map[string]Constraint), Adjustments: make(map[string]int)}
}

// Set installs or replaces a constraint.
func (b *Baseline) Set(c Constraint) { b.byAspect[c.Aspect] = c }

// Get returns the constraint for an aspect.
func (b *Baseline) Get(aspect string) (Constraint, bool) {
	c, ok := b.byAspect[aspect]
	return c, ok
}

// Aspects lists constrained aspects, sorted.
func (b *Baseline) Aspects() []string {
	out := make([]string, 0, len(b.byAspect))
	for a := range b.byAspect {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Check evaluates a measurement; it returns a violation description and
// true when the constraint is broken.
func (b *Baseline) Check(aspect string, v float64) (string, bool) {
	c, ok := b.byAspect[aspect]
	if !ok || !c.Violated(v) {
		return "", false
	}
	return fmt.Sprintf("%s=%g outside [%g, %g] %s", aspect, v, c.Min, c.Max, c.Unit), true
}

// Adjust widens the constraint to admit v (the observed-correct value) and
// records the adjustment, mirroring the paper's baseline tuning loop.
func (b *Baseline) Adjust(aspect string, v float64) {
	c, ok := b.byAspect[aspect]
	if !ok {
		return
	}
	if v < c.Min {
		c.Min = v
	}
	if v > c.Max {
		c.Max = v
	}
	b.byAspect[aspect] = c
	b.Adjustments[aspect]++
}

// Encode renders the baseline as a flat constraint table:
//
//	limit|aspect|min|max|unit
func (b *Baseline) Encode() []string {
	lines := []string{"# baseline constraint table"}
	for _, a := range b.Aspects() {
		c := b.byAspect[a]
		lines = append(lines, fmt.Sprintf("limit|%s|%g|%g|%s", c.Aspect, c.Min, c.Max, c.Unit))
	}
	return lines
}

// DecodeBaseline parses lines produced by Encode.
func DecodeBaseline(lines []string) (*Baseline, error) {
	b := NewBaseline()
	for i, line := range lines {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		f := strings.Split(t, "|")
		if len(f) != 5 || f[0] != "limit" {
			return nil, fmt.Errorf("diagnose: baseline line %d malformed: %q", i+1, line)
		}
		var c Constraint
		c.Aspect = f[1]
		if _, err := fmt.Sscanf(f[2], "%g", &c.Min); err != nil {
			return nil, fmt.Errorf("diagnose: baseline line %d bad min: %q", i+1, f[2])
		}
		if _, err := fmt.Sscanf(f[3], "%g", &c.Max); err != nil {
			return nil, fmt.Errorf("diagnose: baseline line %d bad max: %q", i+1, f[3])
		}
		c.Unit = f[4]
		b.Set(c)
	}
	return b, nil
}

// Evidence is what the diagnosing part gathered: numeric observations
// (dynamic commands), boolean facts (log parsing, probe exits) and free
// notes.
type Evidence struct {
	values map[string]float64
	facts  map[string]bool
	Notes  []string
}

// NewEvidence returns an empty evidence set.
func NewEvidence() *Evidence {
	return &Evidence{values: make(map[string]float64), facts: make(map[string]bool)}
}

// Observe records a numeric observation.
func (e *Evidence) Observe(key string, v float64) *Evidence {
	e.values[key] = v
	return e
}

// Fact records a boolean fact.
func (e *Evidence) Fact(key string, v bool) *Evidence {
	e.facts[key] = v
	return e
}

// Note appends a free-form note.
func (e *Evidence) Note(format string, args ...any) *Evidence {
	e.Notes = append(e.Notes, fmt.Sprintf(format, args...))
	return e
}

// Value returns a numeric observation (0, false when absent).
func (e *Evidence) Value(key string) (float64, bool) {
	v, ok := e.values[key]
	return v, ok
}

// Holds reports whether the fact was recorded true.
func (e *Evidence) Holds(key string) bool { return e.facts[key] }

// Above reports whether a recorded value exceeds x.
func (e *Evidence) Above(key string, x float64) bool {
	v, ok := e.values[key]
	return ok && v > x
}

// Below reports whether a recorded value is under x.
func (e *Evidence) Below(key string, x float64) bool {
	v, ok := e.values[key]
	return ok && v < x
}

// Lines renders the evidence deterministically for decision traces:
// numeric observations sorted by key as "key=value", then boolean facts
// sorted by key as "key=true|false", then notes in recording order. The
// sorted passes keep map iteration out of any trace-observable path.
func (e *Evidence) Lines() []string {
	out := make([]string, 0, len(e.values)+len(e.facts)+len(e.Notes))
	keys := make([]string, 0, len(e.values))
	for k := range e.values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%g", k, e.values[k]))
	}
	keys = keys[:0]
	for k := range e.facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%t", k, e.facts[k]))
	}
	return append(out, e.Notes...)
}

// Rule maps an evidence pattern to a root cause and prescribed action.
// Higher-priority rules are tried first; the first match wins unless
// Continue is set, in which case matching continues (multiple causes).
type Rule struct {
	Name     string
	Priority int
	When     func(e *Evidence) bool
	Cause    string
	Action   string
	Continue bool
}

// Conclusion is a matched rule.
type Conclusion struct {
	Rule   string
	Cause  string
	Action string
}

// Engine is an ordered rule set.
type Engine struct {
	rules []Rule
}

// NewEngine returns an engine with the given rules.
func NewEngine(rules ...Rule) *Engine {
	e := &Engine{rules: append([]Rule(nil), rules...)}
	sort.SliceStable(e.rules, func(i, j int) bool { return e.rules[i].Priority > e.rules[j].Priority })
	return e
}

// AddRule inserts a rule, keeping priority order. The paper grows this set
// over time: "every time a fault was dealt with manually, we added a new
// troubleshooting procedure to the intelliagent source code".
func (e *Engine) AddRule(r Rule) {
	e.rules = append(e.rules, r)
	sort.SliceStable(e.rules, func(i, j int) bool { return e.rules[i].Priority > e.rules[j].Priority })
}

// Len reports the number of rules.
func (e *Engine) Len() int { return len(e.rules) }

// Diagnose evaluates the evidence and returns conclusions in priority
// order. With no matching rule it returns nil — the fault is obscure and
// must go to a human.
func (e *Engine) Diagnose(ev *Evidence) []Conclusion {
	var out []Conclusion
	for _, r := range e.rules {
		if !r.When(ev) {
			continue
		}
		out = append(out, Conclusion{Rule: r.Name, Cause: r.Cause, Action: r.Action})
		if !r.Continue {
			break
		}
	}
	return out
}
