package diagnose

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

func TestConstraintViolated(t *testing.T) {
	c := Constraint{Aspect: "x", Min: 1, Max: 10}
	for v, want := range map[float64]bool{0: true, 1: false, 5: false, 10: false, 11: true} {
		if got := c.Violated(v); got != want {
			t.Errorf("Violated(%g) = %v", v, got)
		}
	}
}

func TestBaselineCheck(t *testing.T) {
	b := NewBaseline()
	b.Set(Constraint{Aspect: "cpu.runqueue", Min: 0, Max: 8, Unit: "procs"})
	if msg, bad := b.Check("cpu.runqueue", 12); !bad || !strings.Contains(msg, "12") {
		t.Errorf("check: %q %v", msg, bad)
	}
	if _, bad := b.Check("cpu.runqueue", 3); bad {
		t.Error("in-range value flagged")
	}
	if _, bad := b.Check("unknown.aspect", 1e9); bad {
		t.Error("unconstrained aspect flagged")
	}
}

func TestBaselineAdjust(t *testing.T) {
	b := NewBaseline()
	b.Set(Constraint{Aspect: "x", Min: 0, Max: 10})
	b.Adjust("x", 15)
	if _, bad := b.Check("x", 15); bad {
		t.Error("adjusted bound should admit the value")
	}
	if b.Adjustments["x"] != 1 {
		t.Errorf("adjustments = %v", b.Adjustments)
	}
	b.Adjust("x", -5)
	if _, bad := b.Check("x", -5); bad {
		t.Error("adjusted lower bound should admit the value")
	}
	b.Adjust("ghost", 1) // no-op
	if b.Adjustments["ghost"] != 0 {
		t.Error("adjusting unknown aspect should not record")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := NewBaseline()
	b.Set(Constraint{Aspect: "memory.scanrate", Min: 0, Max: 200, Unit: "pages/s"})
	b.Set(Constraint{Aspect: "disk.asvc", Min: 0, Max: 50.5, Unit: "ms"})
	got, err := DecodeBaseline(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range b.Aspects() {
		want, _ := b.Get(a)
		have, ok := got.Get(a)
		if !ok || have != want {
			t.Errorf("aspect %s: want %v got %v %v", a, want, have, ok)
		}
	}
}

func TestDecodeBaselineErrors(t *testing.T) {
	if _, err := DecodeBaseline([]string{"limit|x|a|1|u"}); err == nil {
		t.Error("bad min should fail")
	}
	if _, err := DecodeBaseline([]string{"nonsense"}); err == nil {
		t.Error("malformed line should fail")
	}
	if _, err := DecodeBaseline([]string{"# comment", ""}); err != nil {
		t.Errorf("comments should parse: %v", err)
	}
}

func TestDefaultBaselinesScale(t *testing.T) {
	big := DefaultOSBaseline(cluster.ModelE10K)
	small := DefaultOSBaseline(cluster.ModelUltra10)
	cb, _ := big.Get("cpu.runqueue")
	cs, _ := small.Get("cpu.runqueue")
	if cb.Max <= cs.Max {
		t.Error("run queue bound should scale with CPU count")
	}
	mb, _ := big.Get("memory.freemb")
	ms, _ := small.Get("memory.freemb")
	if mb.Min <= ms.Min {
		t.Error("free memory floor should scale with RAM")
	}
	if DefaultNetBaseline().Aspects()[0] != "net.collisions" {
		t.Error("net baseline missing")
	}
	if _, ok := DefaultDBBaseline().Get("db.connect"); !ok {
		t.Error("db baseline missing connect constraint")
	}
}

func TestEvidence(t *testing.T) {
	ev := NewEvidence().
		Observe("scanrate", 900).
		Fact("db.refused", true).
		Note("log: ORA-600 at %s", "12:00")
	if v, ok := ev.Value("scanrate"); !ok || v != 900 {
		t.Error("Value broken")
	}
	if _, ok := ev.Value("missing"); ok {
		t.Error("missing value should report false")
	}
	if !ev.Holds("db.refused") || ev.Holds("other") {
		t.Error("Holds broken")
	}
	if !ev.Above("scanrate", 800) || ev.Above("scanrate", 1000) || ev.Above("missing", 0) {
		t.Error("Above broken")
	}
	if !ev.Below("scanrate", 1000) || ev.Below("missing", 1e9) {
		t.Error("Below broken")
	}
	if len(ev.Notes) != 1 || !strings.Contains(ev.Notes[0], "ORA-600") {
		t.Errorf("notes = %v", ev.Notes)
	}
}

func TestEnginePriorityAndFirstMatch(t *testing.T) {
	e := NewEngine(
		Rule{Name: "low", Priority: 1, When: func(*Evidence) bool { return true }, Cause: "c-low", Action: "a-low"},
		Rule{Name: "high", Priority: 9, When: func(*Evidence) bool { return true }, Cause: "c-high", Action: "a-high"},
	)
	got := e.Diagnose(NewEvidence())
	if len(got) != 1 || got[0].Rule != "high" {
		t.Errorf("conclusions = %v", got)
	}
}

func TestEngineContinue(t *testing.T) {
	e := NewEngine(
		Rule{Name: "a", Priority: 2, When: func(*Evidence) bool { return true }, Cause: "ca", Action: "x", Continue: true},
		Rule{Name: "b", Priority: 1, When: func(*Evidence) bool { return true }, Cause: "cb", Action: "y"},
	)
	got := e.Diagnose(NewEvidence())
	if len(got) != 2 || got[0].Rule != "a" || got[1].Rule != "b" {
		t.Errorf("conclusions = %v", got)
	}
}

func TestEngineNoMatch(t *testing.T) {
	e := NewEngine(Rule{Name: "never", When: func(*Evidence) bool { return false }})
	if got := e.Diagnose(NewEvidence()); got != nil {
		t.Errorf("conclusions = %v", got)
	}
}

func TestEngineAddRule(t *testing.T) {
	e := NewEngine(Rule{Name: "base", Priority: 1, When: func(*Evidence) bool { return true }, Cause: "c", Action: "a"})
	e.AddRule(Rule{Name: "learned", Priority: 5, When: func(ev *Evidence) bool { return ev.Holds("new-fault") }, Cause: "nc", Action: "na"})
	if e.Len() != 2 {
		t.Errorf("len = %d", e.Len())
	}
	got := e.Diagnose(NewEvidence().Fact("new-fault", true))
	if len(got) != 1 || got[0].Rule != "learned" {
		t.Errorf("learned rule should win: %v", got)
	}
}

// Property: a constraint admits exactly the closed interval [Min, Max].
func TestQuickConstraintInterval(t *testing.T) {
	f := func(min, max, v float64) bool {
		if min > max {
			min, max = max, min
		}
		c := Constraint{Min: min, Max: max}
		inRange := v >= min && v <= max
		return c.Violated(v) == !inRange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: baseline Adjust always makes the adjusted value admissible.
func TestQuickAdjustAdmits(t *testing.T) {
	f := func(v float64) bool {
		b := NewBaseline()
		b.Set(Constraint{Aspect: "x", Min: -1, Max: 1})
		b.Adjust("x", v)
		_, bad := b.Check("x", v)
		return !bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Lines must render evidence in a fixed order — sorted values, sorted
// facts, then notes — regardless of map insertion order, since the lines
// feed byte-identity-gated decision traces.
func TestEvidenceLinesSorted(t *testing.T) {
	ev := NewEvidence().
		Observe("zeta.load", 4.5).
		Fact("proc.present", true).
		Observe("alpha.count", 2).
		Fact("listener.open", false).
		Note("first note").
		Observe("mid.ratio", 0.25).
		Note("second note")
	want := []string{
		"alpha.count=2",
		"mid.ratio=0.25",
		"zeta.load=4.5",
		"listener.open=false",
		"proc.present=true",
		"first note",
		"second note",
	}
	got := ev.Lines()
	if len(got) != len(want) {
		t.Fatalf("Lines() = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Lines()[%d] = %q, want %q (full: %q)", i, got[i], want[i], got)
		}
	}
	// Repeat: the rendering must be stable across calls.
	again := ev.Lines()
	for i := range want {
		if again[i] != got[i] {
			t.Fatalf("Lines() unstable at %d: %q vs %q", i, again[i], got[i])
		}
	}
}
