package campaign

import (
	"math"
	"testing"
)

func close2(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewStatEmptyAndSingleton(t *testing.T) {
	if s := NewStat(nil); s != (Stat{}) {
		t.Errorf("empty sample: got %+v, want zero Stat", s)
	}
	s := NewStat([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 {
		t.Errorf("singleton: got %+v", s)
	}
	if s.Stddev != 0 || s.CI95 != 0 {
		t.Errorf("singleton must have zero spread, got %+v", s)
	}
}

// TestNewStatHandFixture checks the CI math against a hand-computed
// sample: xs = {1,2,3,4,5}.
//
//	mean   = 3
//	stddev = sqrt(((−2)²+(−1)²+0+1²+2²)/4) = sqrt(10/4) = 1.5811388300841898
//	CI95   = t(df=4) · stddev/√5 = 2.776 · 0.7071067811865476 = 1.9629284285738957
func TestNewStatHandFixture(t *testing.T) {
	s := NewStat([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("got %+v", s)
	}
	if !close2(s.Mean, 3) {
		t.Errorf("mean = %v, want 3", s.Mean)
	}
	if !close2(s.Stddev, math.Sqrt(2.5)) {
		t.Errorf("stddev = %v, want %v", s.Stddev, math.Sqrt(2.5))
	}
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if !close2(s.CI95, want) {
		t.Errorf("ci95 = %v, want %v", s.CI95, want)
	}
}

// TestNewStatTwoPoint pins the df=1 case, whose t critical value (12.706)
// dwarfs the normal 1.96: xs = {10, 20} ⇒ stddev = 7.0710678…,
// CI95 = 12.706 · 7.0710678…/√2 = 12.706 · 5 = 63.53.
func TestNewStatTwoPoint(t *testing.T) {
	s := NewStat([]float64{10, 20})
	if !close2(s.Mean, 15) || !close2(s.Stddev, math.Sqrt(50)) {
		t.Errorf("got %+v", s)
	}
	if !close2(s.CI95, 63.53) {
		t.Errorf("ci95 = %v, want 63.53", s.CI95)
	}
}

func TestTCrit95(t *testing.T) {
	cases := map[int]float64{1: 12.706, 4: 2.776, 30: 2.042, 31: 1.960, 1000: 1.960}
	for df, want := range cases {
		if got := TCrit95(df); got != want {
			t.Errorf("TCrit95(%d) = %v, want %v", df, got, want)
		}
	}
	if TCrit95(0) != 0 {
		t.Error("df 0 should yield 0")
	}
}

func TestAggregateGroupsAndErrors(t *testing.T) {
	m := Matrix{Seeds: []uint64{1, 2, 3}, Scenarios: []string{"a", "b"}, Days: 7}
	trials := m.Trials()
	if len(trials) != 6 {
		t.Fatalf("want 6 trials, got %d", len(trials))
	}
	var results []TrialResult
	for _, tr := range trials {
		r := TrialResult{Trial: tr, Metrics: map[string]float64{"x": float64(tr.Seed)}}
		if tr.Scenario == "b" && tr.Seed == 2 {
			r.Err = "boom"
			r.Metrics = nil
		}
		results = append(results, r)
	}
	groups := Aggregate(results)
	if len(groups) != 2 {
		t.Fatalf("want 2 groups, got %d", len(groups))
	}
	if groups[0].Scenario != "a" || groups[1].Scenario != "b" {
		t.Errorf("groups out of matrix order: %+v", groups)
	}
	a, b := groups[0], groups[1]
	if a.Seeds != 3 || a.Errors != 0 || !close2(a.Stats["x"].Mean, 2) {
		t.Errorf("group a: %+v", a)
	}
	if b.Seeds != 2 || b.Errors != 1 || b.Stats["x"].N != 2 || !close2(b.Stats["x"].Mean, 2) {
		t.Errorf("group b: %+v", b)
	}
	if a.Days != 7 {
		t.Errorf("days not carried: %+v", a)
	}
}
