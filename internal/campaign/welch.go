package campaign

import "math"

// The significance layer: campaigns replicate every cell over the same
// seed list, so two cells of one campaign form either a paired sample
// (both cells completed every seed — compare per-seed differences) or,
// when errors broke the pairing, independent samples compared with
// Welch's unequal-variance t-test. TTest picks the right one and returns
// a two-sided p-value computed from the Student-t distribution via the
// regularised incomplete beta function — no tables, any df.

// TTestResult is one two-sample comparison.
type TTestResult struct {
	T      float64 // t statistic (sign: second sample minus first)
	DF     float64 // degrees of freedom (Welch–Satterthwaite when unpaired)
	P      float64 // two-sided p-value
	Paired bool    // true when the per-seed paired test was used
}

// TTest compares two metric sample vectors. When paired is true, xs and
// ys must be aligned (sample i of each from the same seed) and equal
// length; the test is then the paired t-test on differences. Otherwise
// Welch's t-test. Returns ok=false when a test cannot be computed (fewer
// than two samples a side, or zero variance with equal means).
func TTest(xs, ys []float64, paired bool) (TTestResult, bool) {
	if paired {
		return pairedT(xs, ys)
	}
	return welchT(xs, ys)
}

func meanVar(xs []float64) (mean, variance float64) {
	n := float64(len(xs))
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, ss / (n - 1)
}

func welchT(xs, ys []float64) (TTestResult, bool) {
	if len(xs) < 2 || len(ys) < 2 {
		return TTestResult{}, false
	}
	mx, vx := meanVar(xs)
	my, vy := meanVar(ys)
	nx, ny := float64(len(xs)), float64(len(ys))
	se2 := vx/nx + vy/ny
	if se2 <= 0 {
		// Zero variance on both sides: identical means are simply "not
		// significant". Distinct constant means have no finite t — and no
		// finite sample justifies p = 0 — so report "not computable"
		// rather than overstate a two-seed quantized difference.
		if mx == my {
			return TTestResult{T: 0, DF: nx + ny - 2, P: 1}, true
		}
		return TTestResult{}, false
	}
	t := (my - mx) / math.Sqrt(se2)
	// Welch–Satterthwaite effective degrees of freedom.
	df := se2 * se2 / (vx*vx/(nx*nx*(nx-1)) + vy*vy/(ny*ny*(ny-1)))
	return TTestResult{T: t, DF: df, P: StudentP(t, df)}, true
}

func pairedT(xs, ys []float64) (TTestResult, bool) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return TTestResult{}, false
	}
	ds := make([]float64, len(xs))
	for i := range xs {
		ds[i] = ys[i] - xs[i]
	}
	md, vd := meanVar(ds)
	n := float64(len(ds))
	df := n - 1
	if vd <= 0 {
		// As in welchT: a constant non-zero difference has no finite t;
		// "-" beats a fake p = 0.
		if md == 0 {
			return TTestResult{T: 0, DF: df, P: 1, Paired: true}, true
		}
		return TTestResult{}, false
	}
	t := md / math.Sqrt(vd/n)
	return TTestResult{T: t, DF: df, P: StudentP(t, df), Paired: true}, true
}

// StudentP returns the two-sided p-value of a Student-t statistic with
// df degrees of freedom: P(|T| >= |t|) = I_{df/(df+t²)}(df/2, 1/2).
func StudentP(t, df float64) float64 {
	if df <= 0 || math.IsNaN(t) {
		return math.NaN()
	}
	if math.IsInf(t, 0) {
		return 0
	}
	return regIncBeta(df/2, 0.5, df/(df+t*t))
}

// regIncBeta computes the regularised incomplete beta function I_x(a, b)
// by the standard continued-fraction expansion (Lentz's method), using
// the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to keep the fraction in its
// rapidly converging region.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the incomplete-beta continued fraction (Numerical
// Recipes' modified Lentz algorithm).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// GroupSamples returns, parallel to r.Groups, each group's per-metric
// sample vectors in trial (seed) order — the raw material for the paired
// significance tests between cells. Failed trials contribute nothing, as
// in Aggregate.
func (r *Result) GroupSamples() []map[string][]float64 {
	idx := make(map[groupKey]int, len(r.Groups))
	out := make([]map[string][]float64, len(r.Groups))
	for i, g := range r.Groups {
		idx[g.key] = i
		out[i] = make(map[string][]float64)
	}
	for _, tr := range r.Trials {
		if tr.Err != "" {
			continue
		}
		i, ok := idx[keyOf(tr.Trial)]
		if !ok {
			continue
		}
		for name, v := range tr.Metrics {
			out[i][name] = append(out[i][name], v)
		}
	}
	return out
}
