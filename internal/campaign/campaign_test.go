package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/simclock"
)

// simTrial is a miniature deterministic simulation: every trial owns its
// own simclock.Sim seeded from the trial, accumulates a pseudo-random sum
// on a repeating timer, and reports it. Mirrors how real campaign trials
// behave (seed-determined, shared-nothing) without the cost of a full
// site build.
func simTrial(t Trial) (map[string]float64, error) {
	sim := simclock.New(t.Seed)
	rng := sim.Rand()
	var sum float64
	sim.Every(0, simclock.Minute, "tick", func(simclock.Time) {
		sum += rng.Float64()
	})
	sim.RunUntil(simclock.Time(t.Days) * simclock.Hour) // cheap stand-in for days
	return map[string]float64{
		"sum":      sum,
		"scenario": float64(len(t.Scenario)),
	}, nil
}

func mustRun(t *testing.T, name string, m Matrix, workers int, fn RunFunc) *Result {
	t.Helper()
	res, err := Run(name, m, workers, fn)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustJSON(t *testing.T, r *Result) []byte {
	t.Helper()
	js, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return js
}

// TestDeterministicAcrossWorkers is the campaign contract: the same seed
// set produces byte-identical JSON at one worker and at eight, because
// trials share nothing and results land in matrix order.
func TestDeterministicAcrossWorkers(t *testing.T) {
	m := Matrix{
		Seeds:     Seeds(7, 12),
		Scenarios: []string{"before", "after"},
		Sites:     []string{"small"},
		Days:      3,
	}
	serial := mustJSON(t, mustRun(t, "det", m, 1, simTrial))
	parallel := mustJSON(t, mustRun(t, "det", m, 8, simTrial))
	if !bytes.Equal(serial, parallel) {
		t.Errorf("JSON differs between -workers 1 and -workers 8:\n%s\n----\n%s", serial, parallel)
	}
	if !strings.Contains(string(serial), `"groups"`) {
		t.Errorf("JSON missing groups:\n%s", serial)
	}
}

// TestPoolRace hammers the pool with many more trials than workers; run
// under -race this exercises the result fan-in for data races.
func TestPoolRace(t *testing.T) {
	m := Matrix{Seeds: Seeds(1, 64), Scenarios: []string{"x", "y"}, Days: 1}
	res := mustRun(t, "race", m, 16, simTrial)
	if len(res.Trials) != 128 {
		t.Fatalf("want 128 trials, got %d", len(res.Trials))
	}
	for i, tr := range res.Trials {
		if tr.Trial.Index != i {
			t.Fatalf("trial %d landed at slot %d", tr.Trial.Index, i)
		}
		if tr.Err != "" || tr.Metrics["sum"] <= 0 {
			t.Fatalf("trial %d malformed: %+v", i, tr)
		}
	}
}

func TestMatrixEnumeration(t *testing.T) {
	m := Matrix{Seeds: []uint64{5, 6}, Scenarios: []string{"s1", "s2"}, Modes: []string{"m1"}, Days: 2}
	trials := m.Trials()
	want := []Trial{
		{Index: 0, Seed: 5, Scenario: "s1", Mode: "m1", Days: 2},
		{Index: 1, Seed: 6, Scenario: "s1", Mode: "m1", Days: 2},
		{Index: 2, Seed: 5, Scenario: "s2", Mode: "m1", Days: 2},
		{Index: 3, Seed: 6, Scenario: "s2", Mode: "m1", Days: 2},
	}
	if len(trials) != len(want) {
		t.Fatalf("want %d trials, got %d", len(want), len(trials))
	}
	for i := range want {
		if trials[i] != want[i] {
			t.Errorf("trial %d = %+v, want %+v", i, trials[i], want[i])
		}
	}
}

// TestMatrixOptionAxisEnumeration pins the option-axis order: cron
// period varies before the boolean toggles, and every axis varies before
// the seed (the seed axis stays innermost so one group's trials are
// contiguous).
func TestMatrixOptionAxisEnumeration(t *testing.T) {
	m := Matrix{
		Seeds:         []uint64{1, 2},
		Scenarios:     []string{"sc"},
		CronPeriods:   []simclock.Time{simclock.Minute, 5 * simclock.Minute},
		NoBatchRescue: []bool{false, true},
		Days:          1,
	}
	trials := m.Trials()
	want := []Trial{
		{Index: 0, Seed: 1, Scenario: "sc", Days: 1, CronPeriod: simclock.Minute},
		{Index: 1, Seed: 2, Scenario: "sc", Days: 1, CronPeriod: simclock.Minute},
		{Index: 2, Seed: 1, Scenario: "sc", Days: 1, CronPeriod: simclock.Minute, NoBatchRescue: true},
		{Index: 3, Seed: 2, Scenario: "sc", Days: 1, CronPeriod: simclock.Minute, NoBatchRescue: true},
		{Index: 4, Seed: 1, Scenario: "sc", Days: 1, CronPeriod: 5 * simclock.Minute},
		{Index: 5, Seed: 2, Scenario: "sc", Days: 1, CronPeriod: 5 * simclock.Minute},
		{Index: 6, Seed: 1, Scenario: "sc", Days: 1, CronPeriod: 5 * simclock.Minute, NoBatchRescue: true},
		{Index: 7, Seed: 2, Scenario: "sc", Days: 1, CronPeriod: 5 * simclock.Minute, NoBatchRescue: true},
	}
	if len(trials) != len(want) {
		t.Fatalf("want %d trials, got %d", len(want), len(trials))
	}
	for i := range want {
		if trials[i] != want[i] {
			t.Errorf("trial %d = %+v, want %+v", i, trials[i], want[i])
		}
	}
}

// TestTrialJSONRoundTrip: the trial coordinates are part of the campaign
// record, so they must survive encode/decode exactly.
func TestTrialJSONRoundTrip(t *testing.T) {
	in := Trial{
		Index: 3, Seed: 11, Scenario: "ablate-cron", Site: "small", Mode: "agents",
		Days: 90, CronPeriod: 15 * simclock.Minute, AgentSet: "full",
		NoBatchRescue: true, DisablePrivateNet: true, BaselineMonitors: true,
		Overrides: "custom",
	}
	js, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Trial
	if err := json.Unmarshal(js, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed the trial:\n in: %+v\nout: %+v\n json: %s", in, out, js)
	}

	// Zero option axes stay out of the record: the JSON form of a plain
	// trial must not grow when axes it does not use are added.
	js, err = json.Marshal(Trial{Index: 1, Seed: 2, Scenario: "year"})
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"cron_period", "agent_set", "no_batch_rescue",
		"disable_private_net", "baseline_monitors", "overrides"} {
		if bytes.Contains(js, []byte(forbidden)) {
			t.Errorf("zero axis %q serialised: %s", forbidden, js)
		}
	}
}

// TestAggregateGroupsByOptionAxes: cells differing only in an option
// axis must aggregate separately, in first-trial order.
func TestAggregateGroupsByOptionAxes(t *testing.T) {
	m := Matrix{
		Seeds:       Seeds(1, 3),
		CronPeriods: []simclock.Time{simclock.Minute, 5 * simclock.Minute},
		Overrides:   []string{"", "tuned"},
		Days:        1,
	}
	res := mustRun(t, "axes", m, 2, simTrial)
	if len(res.Groups) != 4 {
		t.Fatalf("want 4 groups (2 crons × 2 overrides), got %d", len(res.Groups))
	}
	wantGroups := []struct {
		cron simclock.Time
		ov   string
	}{
		{simclock.Minute, ""}, {simclock.Minute, "tuned"},
		{5 * simclock.Minute, ""}, {5 * simclock.Minute, "tuned"},
	}
	for i, w := range wantGroups {
		g := res.Groups[i]
		if g.CronPeriod != w.cron || g.Overrides != w.ov {
			t.Errorf("group %d = cron %v overrides %q, want cron %v overrides %q",
				i, g.CronPeriod, g.Overrides, w.cron, w.ov)
		}
		if g.Seeds != 3 || g.Stats["sum"].N != 3 {
			t.Errorf("group %d aggregated wrong seed count: %+v", i, g)
		}
	}
	// Same seed, same metrics: the seed axis, not the option axis, drives
	// simTrial, so sibling groups must agree — confirming grouping (not
	// metric content) is what separated them.
	if res.Groups[0].Stats["sum"] != res.Groups[1].Stats["sum"] {
		t.Errorf("sibling groups should carry identical stats: %+v vs %+v",
			res.Groups[0].Stats["sum"], res.Groups[1].Stats["sum"])
	}
}

func TestRunRejectsEmptyAndNil(t *testing.T) {
	if _, err := Run("e", Matrix{}, 1, simTrial); err == nil {
		t.Error("empty matrix should error")
	}
	if _, err := Run("e", Matrix{Seeds: Seeds(1, 1)}, 1, nil); err == nil {
		t.Error("nil RunFunc should error")
	}
}

func TestTrialErrorAndPanicIsolated(t *testing.T) {
	fn := func(tr Trial) (map[string]float64, error) {
		switch tr.Seed {
		case 2:
			return nil, errors.New("deliberate failure")
		case 3:
			panic("deliberate panic")
		}
		return map[string]float64{"v": float64(tr.Seed)}, nil
	}
	res := mustRun(t, "errs", Matrix{Seeds: Seeds(1, 4)}, 4, fn)
	errs := res.Errs()
	if len(errs) != 2 {
		t.Fatalf("want 2 failed trials, got %d: %+v", len(errs), errs)
	}
	if !strings.Contains(errs[1].Err, "panicked") {
		t.Errorf("panic not captured: %+v", errs[1])
	}
	if g := res.Groups[0]; g.Seeds != 2 || g.Errors != 2 || g.Stats["v"].N != 2 {
		t.Errorf("aggregate over failures wrong: %+v", g)
	}
	if _, err := res.JSON(); err != nil {
		t.Errorf("result with errors must still marshal: %v", err)
	}
}

func TestSanitizeDropsNonFinite(t *testing.T) {
	fn := func(tr Trial) (map[string]float64, error) {
		return map[string]float64{"ok": 1, "nan": nan(), "inf": inf()}, nil
	}
	res := mustRun(t, "nan", Matrix{Seeds: Seeds(1, 2)}, 1, fn)
	if _, err := res.JSON(); err != nil {
		t.Fatalf("non-finite metrics must not break JSON: %v", err)
	}
	if _, ok := res.Trials[0].Metrics["nan"]; ok {
		t.Error("NaN metric survived sanitize")
	}
	if res.Groups[0].Stats["ok"].N != 2 {
		t.Errorf("finite metric lost: %+v", res.Groups[0])
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

// BenchmarkCampaignPool measures pool + aggregation overhead on trivial
// trials; the smoke CI runs it once per build for the perf trajectory.
func BenchmarkCampaignPool(b *testing.B) {
	m := Matrix{Seeds: Seeds(1, 32), Scenarios: []string{"a", "b"}, Days: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Run("bench", m, 0, simTrial); err != nil {
			b.Fatal(err)
		}
	}
}
