package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// fakeSite stands in for an expensive per-cell resource.
type fakeSite struct {
	cell string
	seed uint64
}

func poolRunner(builds, resets *atomic.Int64, failReset bool) RunFunc {
	return ReuseRunner[*fakeSite]{
		Build: func(t Trial) (*fakeSite, error) {
			builds.Add(1)
			return &fakeSite{cell: CellKey(t), seed: t.Seed}, nil
		},
		Reset: func(s *fakeSite, t Trial) error {
			resets.Add(1)
			if failReset {
				return errors.New("will not rewind")
			}
			if s.cell != CellKey(t) {
				return fmt.Errorf("pool handed cell %q a skeleton from cell %q", CellKey(t), s.cell)
			}
			s.seed = t.Seed
			return nil
		},
		Run: func(s *fakeSite, t Trial) (map[string]float64, error) {
			if s.seed != t.Seed || s.cell != CellKey(t) {
				return nil, fmt.Errorf("trial %d ran on wrong skeleton", t.Index)
			}
			// Deterministic per-coordinate metric: reuse must not leak
			// state between seeds or cells.
			return map[string]float64{"v": float64(t.Seed) * float64(len(s.cell))}, nil
		},
	}.RunFunc()
}

// TestReuseRunnerDeterminism runs the same matrix through fresh-build and
// pooled runners at several worker counts and requires byte-identical
// campaign JSON: pooling must be invisible in the results.
func TestReuseRunnerDeterminism(t *testing.T) {
	m := Matrix{
		Seeds: Seeds(3, 5),
		Modes: []string{"manual", "agents"},
		Sites: []string{"small", "paper"},
	}
	var refB, refR atomic.Int64
	ref, err := Run("pool", m, 1, poolRunner(&refB, &refR, false))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		var b, r atomic.Int64
		res, err := Run("pool", m, workers, poolRunner(&b, &r, false))
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("workers=%d: pooled JSON diverged from reference", workers)
		}
		trials := int64(len(m.Trials()))
		if b.Load()+r.Load() < trials {
			t.Errorf("workers=%d: builds(%d)+resets(%d) < trials(%d): some trial ran on nothing",
				workers, b.Load(), r.Load(), trials)
		}
		if b.Load() > trials {
			t.Errorf("workers=%d: %d builds for %d trials", workers, b.Load(), trials)
		}
	}
	// Sequential reuse must actually reuse. Exact counts are not pinned:
	// sync.Pool may legitimately shed idle skeletons under GC pressure
	// (the race detector makes this routine), costing an extra build —
	// but every trial is exactly one build or one reset, at least one
	// skeleton per cell is built, and some reuse must happen.
	if got := refB.Load() + refR.Load(); got != 20 {
		t.Errorf("sequential pooled run: builds+resets = %d, want 20 (one per trial)", got)
	}
	if refB.Load() < 4 {
		t.Errorf("sequential pooled run built %d skeletons, want >= 4 (one per cell)", refB.Load())
	}
	if refR.Load() == 0 {
		t.Error("sequential pooled run never reused a skeleton")
	}
}

// TestReuseRunnerResetFailureFallsBack: a skeleton that refuses to rewind
// is discarded and the trial runs on a fresh build instead of failing.
func TestReuseRunnerResetFailsOpen(t *testing.T) {
	m := Matrix{Seeds: Seeds(1, 4)}
	var b, r atomic.Int64
	res, err := Run("fallback", m, 1, poolRunner(&b, &r, true))
	if err != nil {
		t.Fatal(err)
	}
	if errs := res.Errs(); len(errs) > 0 {
		t.Fatalf("%d trials failed despite the fresh-build fallback; first: %s", len(errs), errs[0].Err)
	}
	if b.Load() != 4 {
		t.Errorf("builds = %d, want 4 (every reset fails, every trial rebuilds)", b.Load())
	}
}

// TestCellKeyIgnoresSeedAndIndex: the pooling key must treat trials of one
// cell as interchangeable and trials of different cells as distinct.
func TestCellKeyIgnoresSeedAndIndex(t *testing.T) {
	a := Trial{Index: 0, Seed: 1, Site: "small", Mode: "agents", Days: 2}
	b := Trial{Index: 9, Seed: 7, Site: "small", Mode: "agents", Days: 2}
	if CellKey(a) != CellKey(b) {
		t.Errorf("same cell, different seed/index: keys differ\n a: %s\n b: %s", CellKey(a), CellKey(b))
	}
	c := b
	c.CronPeriod = 60
	if CellKey(b) == CellKey(c) {
		t.Errorf("different cron period produced the same cell key %s", CellKey(b))
	}
}
