// Package campaign runs experiment campaigns: a matrix of
// {seeds × scenarios × site sizes × modes × option axes} fanned across a
// bounded worker pool, with per-trial metrics folded into statistical
// aggregates (mean / min / max / 95% confidence interval across seeds).
// Option axes (cron period, agent set, the boolean ablation toggles, and
// the opaque Overrides label) let one campaign sweep scenario options per
// cell instead of always running defaults.
//
// The package is deliberately generic: a Trial is a coordinate in the
// matrix, and the caller supplies a RunFunc that executes one trial and
// returns flat named metrics. Each RunFunc invocation is expected to build
// its own simulation (own simclock.Sim, own site), so trials share no
// state and parallelise embarrassingly: per-seed results are bit-for-bit
// identical regardless of worker count or completion order.
package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/simclock"
)

// Trial is one coordinate of the campaign matrix. Axes the matrix does not
// sweep are left as their zero values; a zero option axis means "the
// scenario's default" (e.g. CronPeriod 0 is the paper's 5 minutes).
type Trial struct {
	Index    int    `json:"index"`
	Seed     uint64 `json:"seed"`
	Scenario string `json:"scenario,omitempty"`
	Site     string `json:"site,omitempty"`
	Mode     string `json:"mode,omitempty"`
	Days     int    `json:"days,omitempty"`
	// Option axes: scenario options swept per cell rather than fixed at
	// their defaults. CronPeriod is the agents' wake-up period X;
	// AgentSet names the per-host deployment ("lean" or "full"); the
	// booleans are the DESIGN.md ablation toggles; Overrides names an
	// opaque caller-registered options mutator applied after the axes.
	CronPeriod        simclock.Time `json:"cron_period,omitempty"`
	AgentSet          string        `json:"agent_set,omitempty"`
	NoBatchRescue     bool          `json:"no_batch_rescue,omitempty"`
	DisablePrivateNet bool          `json:"disable_private_net,omitempty"`
	BaselineMonitors  bool          `json:"baseline_monitors,omitempty"`
	Overrides         string        `json:"overrides,omitempty"`
	// TierFaults is the per-tier fault-intensity coordinate: a spec like
	// "web=2,db=0.5" scaling the named tiers' fault selection weights.
	// "" means the topology's own per-tier specs unscaled.
	TierFaults string `json:"tier_faults,omitempty"`
	// Workload names the statistical workload spec driving the trial's
	// offered load (a registered spec name; file-loaded specs register
	// under their declared name at resolve time). "" means the site's
	// own workload — the topology's named spec, or the legacy generator.
	Workload string `json:"workload,omitempty"`
	// TierLoad is the per-tier load-intensity coordinate, the workload
	// twin of TierFaults: "web=2,db=0.5" multiplies the named tiers'
	// resolved workload-domain weights. "" means unscaled.
	TierLoad string `json:"tier_load,omitempty"`
	// AgentSlots is the agent cron dispatch slot count, copied from
	// Matrix.AgentSlots. Unlike Shards it is a model knob: quantizing
	// agent wake-ups onto the slot grid changes the simulated trajectory,
	// so it belongs in the canonical JSON. 0 (omitted) keeps the
	// continuous per-agent phases.
	AgentSlots int `json:"agent_slots,omitempty"`
	// Shards is the intra-trial parallelism degree, copied from
	// Matrix.Shards. It is an execution knob, not an axis coordinate:
	// results are byte-identical at any shard count, so it is excluded
	// from the canonical JSON exactly like the worker count.
	Shards int `json:"-"`
	// TraceLevel is the decision-trace recorder level, copied from
	// Matrix.TraceLevel — an execution knob like Shards: tracing changes
	// no result, so it too stays out of the canonical JSON.
	TraceLevel int `json:"-"`
}

// Matrix enumerates the campaign: the cross product of its axes, one Trial
// per combination. Empty axes contribute a single zero-valued coordinate,
// so a plain multi-seed sweep is just Matrix{Seeds: Seeds(7, 16)}.
type Matrix struct {
	Seeds     []uint64 `json:"seeds"`
	Scenarios []string `json:"scenarios,omitempty"`
	Sites     []string `json:"sites,omitempty"`
	Modes     []string `json:"modes,omitempty"`
	Days      int      `json:"days,omitempty"`
	// Option axes (see Trial). A boolean axis sweeps explicit values —
	// []bool{false, true} is the usual with/without ablation pair.
	CronPeriods       []simclock.Time `json:"cron_periods,omitempty"`
	AgentSets         []string        `json:"agent_sets,omitempty"`
	NoBatchRescue     []bool          `json:"no_batch_rescue,omitempty"`
	DisablePrivateNet []bool          `json:"disable_private_net,omitempty"`
	BaselineMonitors  []bool          `json:"baseline_monitors,omitempty"`
	Overrides         []string        `json:"overrides,omitempty"`
	// TierFaults sweeps per-tier fault-intensity specs (see
	// Trial.TierFaults); the usual axis pairs the default "" against one
	// or more scaled cells.
	TierFaults []string `json:"tier_faults,omitempty"`
	// Workloads sweeps statistical workload specs by registered name
	// (see Trial.Workload); "" in the list means the site's default.
	Workloads []string `json:"workloads,omitempty"`
	// TierLoads sweeps per-tier load-intensity specs (see
	// Trial.TierLoad).
	TierLoads []string `json:"tier_loads,omitempty"`
	// AgentSlots is stamped onto every trial (see Trial.AgentSlots). Not
	// an axis here, but a model knob recorded in the JSON.
	AgentSlots int `json:"agent_slots,omitempty"`
	// Shards is stamped onto every trial (see Trial.Shards). Not an
	// axis: like the worker count it must not change any result, so
	// sweeping it would only measure wall-clock.
	Shards int `json:"-"`
	// TraceLevel is stamped onto every trial (see Trial.TraceLevel).
	TraceLevel int `json:"-"`
}

// Seeds returns n sequential seeds starting at base — the conventional way
// to name a campaign's replications.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, base+uint64(i))
	}
	return out
}

func orBlank(xs []string) []string {
	if len(xs) == 0 {
		return []string{""}
	}
	return xs
}

func orZeroTime(xs []simclock.Time) []simclock.Time {
	if len(xs) == 0 {
		return []simclock.Time{0}
	}
	return xs
}

func orFalse(xs []bool) []bool {
	if len(xs) == 0 {
		return []bool{false}
	}
	return xs
}

// Trials enumerates the cross product in deterministic order: scenario
// outermost, then site, mode, cron period, agent set, the ablation
// toggles (batch rescue, private net, baseline monitors), overrides, the
// per-tier fault-intensity spec, the workload spec and the per-tier
// load-intensity spec, with the seed axis innermost so that one
// aggregation group's trials are contiguous.
func (m Matrix) Trials() []Trial {
	var out []Trial
	for _, sc := range orBlank(m.Scenarios) {
		for _, site := range orBlank(m.Sites) {
			for _, mode := range orBlank(m.Modes) {
				for _, cron := range orZeroTime(m.CronPeriods) {
					for _, as := range orBlank(m.AgentSets) {
						for _, rescue := range orFalse(m.NoBatchRescue) {
							for _, noNet := range orFalse(m.DisablePrivateNet) {
								for _, mon := range orFalse(m.BaselineMonitors) {
									for _, ov := range orBlank(m.Overrides) {
										for _, tf := range orBlank(m.TierFaults) {
											for _, wl := range orBlank(m.Workloads) {
												for _, tl := range orBlank(m.TierLoads) {
													for _, seed := range m.Seeds {
														out = append(out, Trial{
															Index: len(out), Seed: seed, Scenario: sc,
															Site: site, Mode: mode, Days: m.Days,
															CronPeriod: cron, AgentSet: as,
															NoBatchRescue: rescue, DisablePrivateNet: noNet,
															BaselineMonitors: mon, Overrides: ov,
															TierFaults: tf, Workload: wl, TierLoad: tl,
															AgentSlots: m.AgentSlots,
															Shards:     m.Shards, TraceLevel: m.TraceLevel,
														})
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// RunFunc executes one trial and returns its scalar metrics keyed by name
// (e.g. "downtime_h/mid-crash"). It must be safe for concurrent use from
// multiple goroutines and must derive all randomness from the trial's
// seed so that results do not depend on scheduling.
type RunFunc func(Trial) (map[string]float64, error)

// TrialResult is one executed trial. Elapsed is wall-clock measurement
// noise and therefore excluded from the JSON form, which must be
// byte-identical across worker counts.
type TrialResult struct {
	Trial   Trial              `json:"trial"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Err     string             `json:"error,omitempty"`
	Elapsed time.Duration      `json:"-"`
}

// Result is a completed campaign: the matrix, every trial in matrix
// order, and the per-group statistical aggregates. The JSON form is the
// machine-readable campaign record (the BENCH_*.json trajectory feeds on
// it); wall-clock fields are deliberately excluded so identical campaigns
// serialise identically.
type Result struct {
	Name    string        `json:"name,omitempty"`
	Matrix  Matrix        `json:"matrix"`
	Trials  []TrialResult `json:"trials"`
	Groups  []Group       `json:"groups"`
	Workers int           `json:"-"`
	Wall    time.Duration `json:"-"`
}

// JSON renders the result in its canonical machine-readable form.
// encoding/json sorts map keys, so the bytes are deterministic for
// identical trial metrics.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// SerialTime sums per-trial wall time: an estimate of the cost the
// campaign would have paid running serially. On an oversubscribed
// machine (workers > cores) per-trial elapsed includes time spent
// descheduled, so this overestimates; with workers ≤ cores it is close.
func (r *Result) SerialTime() time.Duration {
	var sum time.Duration
	for _, t := range r.Trials {
		sum += t.Elapsed
	}
	return sum
}

// Speedup reports SerialTime over actual wall time — the parallel
// efficiency headline (zero before the campaign has run).
func (r *Result) Speedup() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.SerialTime()) / float64(r.Wall)
}

// Errs returns the trials that failed.
func (r *Result) Errs() []TrialResult {
	var out []TrialResult
	for _, t := range r.Trials {
		if t.Err != "" {
			out = append(out, t)
		}
	}
	return out
}

// Run executes the matrix on a worker pool and aggregates the results.
// workers <= 0 selects the runtime.NumCPU() bound (trials are CPU-bound
// simulations; more buys nothing); an explicit count is honoured as given
// — oversubscribing is wasteful but harmless, and exercising it is
// exactly how the determinism contract gets tested. The pool never
// exceeds the trial count. Results land in matrix order regardless of
// completion order. A panicking trial is recorded as that trial's error
// rather than tearing down the campaign.
func Run(name string, m Matrix, workers int, fn RunFunc) (*Result, error) {
	if fn == nil {
		return nil, fmt.Errorf("campaign %s: nil RunFunc", name)
	}
	trials := m.Trials()
	if len(trials) == 0 {
		return nil, fmt.Errorf("campaign %s: empty matrix (no seeds?)", name)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(trials) {
		workers = len(trials)
	}

	start := time.Now()
	results := make([]TrialResult, len(trials))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				vals, err := runTrial(name, fn, trials[i])
				tr := TrialResult{Trial: trials[i], Metrics: sanitize(vals), Elapsed: time.Since(t0)}
				if err != nil {
					tr.Err = err.Error()
					tr.Metrics = nil
				}
				results[i] = tr
			}
		}()
	}
	for i := range trials {
		idx <- i
	}
	close(idx)
	wg.Wait()

	res := &Result{
		Name: name, Matrix: m, Trials: results,
		Groups:  Aggregate(results),
		Workers: workers, Wall: time.Since(start),
	}
	return res, nil
}

// runTrial shields the pool from a panicking trial. It runs the trial under
// pprof labels naming the campaign cell, so a CPU profile captured across a
// campaign (qossim campaign -cpuprofile) attributes samples per
// scenario/site/mode/seed without ad-hoc patches.
func runTrial(name string, fn RunFunc, t Trial) (vals map[string]float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("trial %d (seed %d, scenario %q) panicked: %v", t.Index, t.Seed, t.Scenario, r)
		}
	}()
	pprof.Do(context.Background(), pprof.Labels(
		"campaign", name,
		"scenario", t.Scenario,
		"site", t.Site,
		"mode", t.Mode,
		"seed", strconv.FormatUint(t.Seed, 10),
	), func(context.Context) {
		vals, err = fn(t)
	})
	return vals, err
}

// sanitize drops non-finite values: they carry no aggregatable information
// and would make the JSON form unmarshalable.
func sanitize(vals map[string]float64) map[string]float64 {
	for k, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			delete(vals, k)
		}
	}
	return vals
}
