package campaign

import (
	"math"
	"sort"

	"repro/internal/simclock"
)

// Stat summarises one metric across a group's trials. CI95 is the
// half-width of the two-sided 95% confidence interval for the mean under
// the Student-t distribution (zero when fewer than two samples exist), so
// the interval is Mean ± CI95 — the replicated-trial convention.
type Stat struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Stddev float64 `json:"stddev"`
	CI95   float64 `json:"ci95"`
}

// tCrit95 holds two-sided 95% Student-t critical values for df 1..30;
// beyond the table the normal approximation 1.960 is used.
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% Student-t critical value for the given
// degrees of freedom.
func TCrit95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.960
}

// NewStat computes the summary of a sample. Empty samples yield the zero
// Stat; singletons carry their value with zero spread.
func NewStat(xs []float64) Stat {
	n := len(xs)
	if n == 0 {
		return Stat{}
	}
	s := Stat{N: n, Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n < 2 {
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(n-1)) // sample (n-1) stddev
	s.CI95 = TCrit95(n-1) * s.Stddev / math.Sqrt(float64(n))
	return s
}

// Group aggregates the trials sharing one non-seed coordinate — the seed
// axis is what the statistics run over. Option axes are part of the
// coordinate: two cells differing only in cron period aggregate
// separately.
type Group struct {
	Scenario          string          `json:"scenario,omitempty"`
	Site              string          `json:"site,omitempty"`
	Mode              string          `json:"mode,omitempty"`
	Days              int             `json:"days,omitempty"`
	CronPeriod        simclock.Time   `json:"cron_period,omitempty"`
	AgentSet          string          `json:"agent_set,omitempty"`
	NoBatchRescue     bool            `json:"no_batch_rescue,omitempty"`
	DisablePrivateNet bool            `json:"disable_private_net,omitempty"`
	BaselineMonitors  bool            `json:"baseline_monitors,omitempty"`
	Overrides         string          `json:"overrides,omitempty"`
	TierFaults        string          `json:"tier_faults,omitempty"`
	Workload          string          `json:"workload,omitempty"`
	TierLoad          string          `json:"tier_load,omitempty"`
	Seeds             int             `json:"seeds"`
	Errors            int             `json:"errors,omitempty"`
	Stats             map[string]Stat `json:"stats"`

	// key is the groupKey Aggregate derived this group from — the single
	// source of truth GroupSamples matches trials against, so a new axis
	// added to Trial/keyOf/GroupOf cannot silently desync the sample
	// collection. Unexported: excluded from the canonical JSON.
	key groupKey
}

// MetricNames lists the group's metric keys sorted, for stable rendering.
func (g Group) MetricNames() []string {
	names := make([]string, 0, len(g.Stats))
	for name := range g.Stats {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

type groupKey struct {
	scenario, site, mode string
	days                 int
	cron                 simclock.Time
	agentSet             string
	noRescue, noNet, mon bool
	overrides            string
	tierFaults           string
	workload             string
	tierLoad             string
}

func keyOf(t Trial) groupKey {
	return groupKey{
		scenario: t.Scenario, site: t.Site, mode: t.Mode, days: t.Days,
		cron: t.CronPeriod, agentSet: t.AgentSet,
		noRescue: t.NoBatchRescue, noNet: t.DisablePrivateNet, mon: t.BaselineMonitors,
		overrides: t.Overrides, tierFaults: t.TierFaults,
		workload: t.Workload, tierLoad: t.TierLoad,
	}
}

// GroupOf names the aggregation cell a trial belongs to — the trial's
// coordinates minus the seed.
func GroupOf(t Trial) Group {
	return Group{
		Scenario: t.Scenario, Site: t.Site, Mode: t.Mode, Days: t.Days,
		CronPeriod: t.CronPeriod, AgentSet: t.AgentSet,
		NoBatchRescue: t.NoBatchRescue, DisablePrivateNet: t.DisablePrivateNet,
		BaselineMonitors: t.BaselineMonitors, Overrides: t.Overrides,
		TierFaults: t.TierFaults, Workload: t.Workload, TierLoad: t.TierLoad,
	}
}

// Aggregate folds trial results into per-group statistics. Groups appear
// in first-trial order (i.e. matrix enumeration order), so output is
// deterministic. Failed trials count toward Errors and contribute no
// samples; a metric missing from some trials is aggregated over the
// trials that report it.
func Aggregate(trials []TrialResult) []Group {
	var order []groupKey
	samples := make(map[groupKey]map[string][]float64)
	groups := make(map[groupKey]*Group)
	for _, tr := range trials {
		k := keyOf(tr.Trial)
		g, ok := groups[k]
		if !ok {
			gv := GroupOf(tr.Trial)
			gv.key = k
			g = &gv
			groups[k] = g
			samples[k] = make(map[string][]float64)
			order = append(order, k)
		}
		if tr.Err != "" {
			g.Errors++
			continue
		}
		g.Seeds++
		for name, v := range tr.Metrics {
			samples[k][name] = append(samples[k][name], v)
		}
	}
	out := make([]Group, 0, len(order))
	for _, k := range order {
		g := groups[k]
		g.Stats = make(map[string]Stat, len(samples[k]))
		for name, xs := range samples[k] {
			g.Stats[name] = NewStat(xs)
		}
		out = append(out, *g)
	}
	return out
}
