package campaign

import (
	"math"
	"testing"
)

// Reference values computed with scipy.stats (ttest_rel / ttest_ind with
// equal_var=False) to 4+ significant figures.
func TestTTestKnownValues(t *testing.T) {
	t.Run("paired", func(t *testing.T) {
		// diffs {1,2,3}: t = 2/(1/√3) = 3.4641, df 2, p = 0.07418.
		res, ok := TTest([]float64{1, 2, 3}, []float64{2, 4, 6}, true)
		if !ok || !res.Paired {
			t.Fatalf("paired test not computed: %+v ok=%v", res, ok)
		}
		if math.Abs(res.T-3.4641) > 1e-3 || math.Abs(res.P-0.074180) > 1e-4 {
			t.Errorf("paired t=%v p=%v, want t=3.4641 p=0.07418", res.T, res.P)
		}
	})
	t.Run("welch", func(t *testing.T) {
		// {1,2,3,4} vs {5,6,7,9}: Δmean 4.25, s²/n = 5/12 + 35/48,
		// t = 3.97034, Welch–Satterthwaite df = 5.58462, p = 0.0085129
		// (sign: second minus first).
		res, ok := TTest([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 9}, false)
		if !ok || res.Paired {
			t.Fatalf("welch test not computed: %+v ok=%v", res, ok)
		}
		if math.Abs(res.T-3.97034) > 1e-4 {
			t.Errorf("welch t = %v, want 3.97034", res.T)
		}
		if math.Abs(res.DF-5.58462) > 1e-4 {
			t.Errorf("welch df = %v, want 5.58462", res.DF)
		}
		if math.Abs(res.P-0.0085129) > 1e-5 {
			t.Errorf("welch p = %v, want 0.0085129", res.P)
		}
	})
	t.Run("identical samples", func(t *testing.T) {
		res, ok := TTest([]float64{5, 5, 5}, []float64{5, 5, 5}, true)
		if !ok || res.P != 1 {
			t.Errorf("identical constant samples: p = %v ok=%v, want 1", res.P, ok)
		}
	})
	t.Run("constant distinct samples", func(t *testing.T) {
		// No finite sample justifies p = 0; the degenerate case renders
		// as "not computable" instead of overstating significance.
		if _, ok := TTest([]float64{1, 1, 1}, []float64{2, 2, 2}, false); ok {
			t.Error("distinct constant samples should not be testable")
		}
		if _, ok := TTest([]float64{1, 1, 1}, []float64{2, 2, 2}, true); ok {
			t.Error("distinct constant paired samples should not be testable")
		}
	})
	t.Run("too few samples", func(t *testing.T) {
		if _, ok := TTest([]float64{1}, []float64{2}, false); ok {
			t.Error("singleton samples should not be testable")
		}
		if _, ok := TTest([]float64{1, 2}, []float64{2, 3, 4}, true); ok {
			t.Error("unequal lengths should not pair")
		}
	})
}

func TestStudentPSymmetryAndRange(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 10, 30, 120} {
		for _, tv := range []float64{0, 0.5, 1, 2, 5} {
			p := StudentP(tv, df)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("StudentP(%v, %v) = %v out of [0,1]", tv, df, p)
			}
			if got := StudentP(-tv, df); math.Abs(got-p) > 1e-12 {
				t.Fatalf("two-sided p not symmetric: %v vs %v", got, p)
			}
		}
		if p := StudentP(0, df); p != 1 {
			t.Errorf("StudentP(0, %v) = %v, want 1", df, p)
		}
	}
	// Large df approaches the normal distribution: |t|=1.96 → p ≈ 0.05.
	if p := StudentP(1.96, 1e6); math.Abs(p-0.05) > 1e-3 {
		t.Errorf("StudentP(1.96, 1e6) = %v, want ≈0.05", p)
	}
}

// TestTierFaultsAxis pins the new matrix axis: cells differing only in
// TierFaults enumerate, group and label separately, and GroupSamples
// aligns samples per cell in seed order.
func TestTierFaultsAxis(t *testing.T) {
	m := Matrix{
		Seeds:      Seeds(1, 3),
		Scenarios:  []string{"year"},
		Sites:      []string{"small"},
		TierFaults: []string{"", "db=2"},
	}
	trials := m.Trials()
	if len(trials) != 6 {
		t.Fatalf("expected 6 trials, got %d", len(trials))
	}
	fn := func(tr Trial) (map[string]float64, error) {
		v := float64(tr.Seed)
		if tr.TierFaults != "" {
			v *= 10
		}
		return map[string]float64{"downtime_h/total": v}, nil
	}
	res, err := Run("tierfaults", m, 2, fn)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("expected 2 groups, got %d", len(res.Groups))
	}
	if res.Groups[0].TierFaults != "" || res.Groups[1].TierFaults != "db=2" {
		t.Errorf("group coordinates wrong: %+v", res.Groups)
	}
	samples := res.GroupSamples()
	want0, want1 := []float64{1, 2, 3}, []float64{10, 20, 30}
	for i, want := range [][]float64{want0, want1} {
		got := samples[i]["downtime_h/total"]
		if len(got) != len(want) {
			t.Fatalf("group %d samples = %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("group %d samples = %v, want %v (seed order)", i, got, want)
			}
		}
	}
}
