package campaign

import (
	"encoding/json"
	"sync"
)

// CellKey identifies the trial's matrix cell: every coordinate except the
// seed (and the enumeration index). Trials with equal cell keys differ only
// in their random stream, which is exactly the condition under which one
// site skeleton can be reseeded and reused between them.
func CellKey(t Trial) string {
	t.Index = 0
	t.Seed = 0
	b, err := json.Marshal(t)
	if err != nil {
		// Trial is a plain data struct; Marshal cannot fail on it. Keep a
		// defensive fallback rather than a panic in the worker pool.
		return "cell"
	}
	return string(b)
}

// ReuseRunner builds a RunFunc that recycles one expensive per-cell
// resource (typically a fully built simulation site) across the seeds of a
// matrix cell instead of rebuilding it for every trial.
//
// Build constructs the resource for a trial's cell; Reset rewinds a
// previously used resource to run another trial of the same cell; Run
// executes one trial on it. The contract that makes reuse safe is
// Reset(s, t) followed by Run == Build(t) followed by Run, byte for byte —
// the site-level equivalence tests gate exactly that.
//
// Pools are per cell and sync.Pool-backed: under a parallel campaign each
// worker effectively keeps one warm skeleton per cell it is working on,
// and idle skeletons are garbage-collectable between campaigns. A resource
// whose Run returns an error (or panics) is discarded, never pooled, so a
// poisoned skeleton cannot leak into later trials; a Reset error falls
// back to a fresh Build.
type ReuseRunner[S any] struct {
	Build func(Trial) (S, error)
	Reset func(S, Trial) error
	Run   func(S, Trial) (map[string]float64, error)
}

// RunFunc returns the pooled campaign.RunFunc. It is safe for concurrent
// use by the campaign worker pool.
func (r ReuseRunner[S]) RunFunc() RunFunc {
	var mu sync.Mutex
	pools := make(map[string]*sync.Pool)
	poolFor := func(key string) *sync.Pool {
		mu.Lock()
		defer mu.Unlock()
		p := pools[key]
		if p == nil {
			p = &sync.Pool{}
			pools[key] = p
		}
		return p
	}
	return func(t Trial) (map[string]float64, error) {
		pool := poolFor(CellKey(t))
		var s S
		if v := pool.Get(); v != nil {
			s = v.(S)
			if err := r.Reset(s, t); err != nil {
				// A skeleton that will not rewind is dropped; the trial
				// still runs, on a fresh build.
				fresh, berr := r.Build(t)
				if berr != nil {
					return nil, berr
				}
				s = fresh
			}
		} else {
			fresh, err := r.Build(t)
			if err != nil {
				return nil, err
			}
			s = fresh
		}
		vals, err := r.Run(s, t)
		if err != nil {
			return nil, err
		}
		pool.Put(s)
		return vals, nil
	}
}
