package simclock

// Wheel is a coalesced cron scheduler: entries that share a (first-fire,
// period) coordinate are grouped into one bucket backed by a single
// repeating heap event that walks its entries in registration order. A site
// with hundreds of agents on the same cron keeps one pending event per
// distinct schedule instead of one per agent, and every bucket reuses its
// Event allocation across ticks.
//
// Semantics match scheduling each entry with Sim.Every individually:
// entries in a bucket fire in FIFO registration order (exactly the
// tie-break the event heap would apply to individually scheduled events),
// a stopped entry never fires again, and a bucket whose entries have all
// stopped cancels its pending event.
//
// One caveat bounds the equivalence: a bucket walks all its entries
// back-to-back, so when a coordinate's registrations are *interleaved*
// with other same-instant work, per-entry tickers would interleave the
// callbacks where the wheel batches them. Registrations that share a
// coordinate must therefore be contiguous for bit-identical replay — which
// they are in practice, since sites draw each agent's phase from a
// continuous distribution (coordinates only ever collide by construction,
// never by chance) and deploy agent by agent. The property tests pin
// exactly this contract.
//
// # Sharded ticks
//
// A wheel with a shard Pool (SetPool) additionally supports *prepared*
// entries (AddPrepared): callbacks split into a read-only prepare phase
// and a mutating apply phase. When a bucket with prepared entries fires,
// the prepares run concurrently across the pool's shards — each shard
// owns a strided subset of the bucket's entries — and at the barrier the
// applies run on the event-loop goroutine in registration order. Because
// prepares are side-effect-free (by contract: they may write only state
// the entry itself owns) and applies replay in exactly the order the
// serial walk would use, the observable event sequence — and therefore
// campaign JSON — is byte-identical at any shard count. Plain Add
// entries in the same bucket keep their registration slot in the apply
// order and run entirely in the serial phase.
type Wheel struct {
	sim     *Sim
	buckets map[wheelKey]*bucket
	pool    *Pool
}

// SetPool attaches a shard pool: buckets holding prepared entries fire
// their prepare phases across the pool's shards. A nil pool (the
// default) and a 1-shard pool both keep every walk on the event-loop
// goroutine. SetPool must be called before the first tick fires.
func (w *Wheel) SetPool(p *Pool) { w.pool = p }

// Pool reports the wheel's shard pool (nil when unsharded).
func (w *Wheel) Pool() *Pool { return w.pool }

type wheelKey struct {
	start  Time // absolute first-fire time
	period Time
}

// bucket is one (start, period) coordinate's shared repeating event.
type bucket struct {
	wheel    *Wheel
	key      wheelKey
	entries  []*CronEntry
	live     int // entries not yet stopped
	prepared int // live entries with a prepare phase
	ev       *Event
	walking  bool             // inside fire: defer compaction until the walk ends
	applies  []func(now Time) // reusable per-tick apply buffer (sharded fire)
}

// CronEntry is one registered callback on a wheel.
type CronEntry struct {
	b       *bucket
	fn      func(now Time)
	prepare func(now Time) func(now Time) // non-nil for prepared entries
	label   string
	stopped bool
}

// NewWheel returns an empty wheel scheduling on sim.
func NewWheel(sim *Sim) *Wheel {
	return &Wheel{sim: sim, buckets: make(map[wheelKey]*bucket)}
}

// Add registers fn to run first at absolute time start and then every
// period, sharing a bucket with every other entry on the same (start,
// period) coordinate. A non-positive period panics, as does a start in the
// past — the same contract as Sim.Every. The label is diagnostic.
func (w *Wheel) Add(start, period Time, label string, fn func(now Time)) *CronEntry {
	if period <= 0 {
		panic("simclock: non-positive wheel period for " + label)
	}
	if start < w.sim.Now() {
		panic("simclock: wheel start in the past for " + label)
	}
	key := wheelKey{start: start, period: period}
	b := w.buckets[key]
	if b == nil {
		b = &bucket{wheel: w, key: key}
		b.ev = w.sim.Schedule(start, "cron-wheel", b.fire)
		w.buckets[key] = b
	}
	e := &CronEntry{b: b, fn: fn, label: label}
	b.entries = append(b.entries, e)
	b.live++
	return e
}

// AddPrepared registers a two-phase entry on the same (start, period)
// coordinates as Add. Each tick, prepare runs first — concurrently with
// other prepared entries when a multi-shard pool is attached, so it must
// only read simulation state and write state the entry itself owns (no
// scheduling, no random draws, no shared mutation) — and returns the
// apply step, which then runs on the event-loop goroutine in the
// bucket's registration order with full mutation rights. A nil apply
// means the entry has nothing to merge this tick. Without a pool the
// two phases run back-to-back inline, which is also the semantic
// reference the sharded path is equivalence-tested against.
func (w *Wheel) AddPrepared(start, period Time, label string, prepare func(now Time) func(now Time)) *CronEntry {
	if prepare == nil {
		panic("simclock: nil prepare for " + label)
	}
	e := w.Add(start, period, label, nil)
	e.prepare = prepare
	e.b.prepared++
	return e
}

// Len reports the number of live (unstopped) entries on the wheel.
func (w *Wheel) Len() int {
	n := 0
	for _, b := range w.buckets {
		n += b.live
	}
	return n
}

// Buckets reports the number of distinct (start, period) buckets with a
// pending event — the coalescing factor Len()/Buckets() is the win over
// per-entry tickers.
func (w *Wheel) Buckets() int { return len(w.buckets) }

// fire walks the bucket's entries in registration order, then re-queues the
// bucket's (reused) event one period on. Entries stopped during the walk —
// including by their own callback — do not fire again. With a multi-shard
// pool and prepared entries present, the walk splits into a parallel
// prepare sweep and a serial apply sweep (fireSharded); the apply order is
// registration order either way.
func (b *bucket) fire(now Time) {
	b.walking = true
	if p := b.wheel.pool; p.Shards() > 1 && b.prepared > 0 {
		b.fireSharded(now, p)
	} else {
		for _, e := range b.entries {
			switch {
			case e.stopped:
			case e.prepare != nil:
				if apply := e.prepare(now); apply != nil {
					apply(now)
				}
			default:
				e.fn(now)
			}
		}
	}
	b.walking = false
	b.compact()
	if b.live == 0 {
		delete(b.wheel.buckets, b.key)
		return
	}
	// The key keeps the original start so entries added later for the same
	// (start, period) coordinate join this bucket rather than forking a
	// drifting duplicate; the next fire is period from now regardless.
	b.wheel.sim.reschedule(b.ev, now+b.key.period)
}

// fireSharded is the pooled tick: shard s prepares the bucket's entries
// at indices s, s+shards, s+2·shards, ... (a strided assignment, so
// callers that register one sub-range per shard per workload get one
// sub-range per worker regardless of how workloads interleave), then the
// barrier merge applies every entry's effects serially in registration
// order. Entries stopped before the tick don't prepare; entries stopped
// during the apply sweep — by an earlier entry's apply — still had their
// prepare run, but their apply is skipped, matching what the serial walk
// would have done (the prepare phase is read-only, so running it for a
// doomed entry is unobservable).
func (b *bucket) fireSharded(now Time, p *Pool) {
	entries := b.entries
	if cap(b.applies) < len(entries) {
		b.applies = make([]func(now Time), len(entries))
	}
	applies := b.applies[:len(entries)]
	shards := p.Shards()
	p.Run(func(shard int) {
		for i := shard; i < len(entries); i += shards {
			e := entries[i]
			if e.stopped || e.prepare == nil {
				applies[i] = nil
				continue
			}
			applies[i] = e.prepare(now)
		}
	})
	for i, e := range entries {
		apply := applies[i]
		applies[i] = nil // don't retain closures across ticks
		switch {
		case e.stopped:
		case e.prepare != nil:
			if apply != nil {
				apply(now)
			}
		default:
			e.fn(now)
		}
	}
}

// compact drops stopped entries, preserving registration order.
func (b *bucket) compact() {
	if b.live == len(b.entries) {
		return
	}
	kept := b.entries[:0]
	for _, e := range b.entries {
		if !e.stopped {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(b.entries); i++ {
		b.entries[i] = nil
	}
	b.entries = kept
}

// Stop deactivates the entry: it never fires again. Stopping the last live
// entry of a bucket cancels the bucket's pending event (mid-walk, the walk
// finishes first). Stop is idempotent and safe to call from the entry's own
// callback.
func (e *CronEntry) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	b := e.b
	b.live--
	if e.prepare != nil {
		b.prepared--
	}
	if b.walking {
		return // fire() compacts and handles an emptied bucket
	}
	if b.live == 0 {
		b.ev.Cancel()
		delete(b.wheel.buckets, b.key)
		return
	}
	b.compact()
}

// Stopped reports whether the entry has been stopped.
func (e *CronEntry) Stopped() bool { return e.stopped }

// Label reports the entry's diagnostic label.
func (e *CronEntry) Label() string { return e.label }

// Period reports the entry's period.
func (e *CronEntry) Period() Time { return e.b.key.period }
