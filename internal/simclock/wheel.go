package simclock

// Wheel is a coalesced cron scheduler: entries that share a (first-fire,
// period) coordinate are grouped into one bucket backed by a single
// repeating heap event that walks its entries in registration order. A site
// with hundreds of agents on the same cron keeps one pending event per
// distinct schedule instead of one per agent, and every bucket reuses its
// Event allocation across ticks.
//
// Semantics match scheduling each entry with Sim.Every individually:
// entries in a bucket fire in FIFO registration order (exactly the
// tie-break the event heap would apply to individually scheduled events),
// a stopped entry never fires again, and a bucket whose entries have all
// stopped cancels its pending event.
//
// One caveat bounds the equivalence: a bucket walks all its entries
// back-to-back, so when a coordinate's registrations are *interleaved*
// with other same-instant work, per-entry tickers would interleave the
// callbacks where the wheel batches them. Registrations that share a
// coordinate must therefore be contiguous for bit-identical replay — which
// they are in practice, since sites draw each agent's phase from a
// continuous distribution (coordinates only ever collide by construction,
// never by chance) and deploy agent by agent. The property tests pin
// exactly this contract.
type Wheel struct {
	sim     *Sim
	buckets map[wheelKey]*bucket
}

type wheelKey struct {
	start  Time // absolute first-fire time
	period Time
}

// bucket is one (start, period) coordinate's shared repeating event.
type bucket struct {
	wheel   *Wheel
	key     wheelKey
	entries []*CronEntry
	live    int // entries not yet stopped
	ev      *Event
	walking bool // inside fire: defer compaction until the walk ends
}

// CronEntry is one registered callback on a wheel.
type CronEntry struct {
	b       *bucket
	fn      func(now Time)
	label   string
	stopped bool
}

// NewWheel returns an empty wheel scheduling on sim.
func NewWheel(sim *Sim) *Wheel {
	return &Wheel{sim: sim, buckets: make(map[wheelKey]*bucket)}
}

// Add registers fn to run first at absolute time start and then every
// period, sharing a bucket with every other entry on the same (start,
// period) coordinate. A non-positive period panics, as does a start in the
// past — the same contract as Sim.Every. The label is diagnostic.
func (w *Wheel) Add(start, period Time, label string, fn func(now Time)) *CronEntry {
	if period <= 0 {
		panic("simclock: non-positive wheel period for " + label)
	}
	if start < w.sim.Now() {
		panic("simclock: wheel start in the past for " + label)
	}
	key := wheelKey{start: start, period: period}
	b := w.buckets[key]
	if b == nil {
		b = &bucket{wheel: w, key: key}
		b.ev = w.sim.Schedule(start, "cron-wheel", b.fire)
		w.buckets[key] = b
	}
	e := &CronEntry{b: b, fn: fn, label: label}
	b.entries = append(b.entries, e)
	b.live++
	return e
}

// Len reports the number of live (unstopped) entries on the wheel.
func (w *Wheel) Len() int {
	n := 0
	for _, b := range w.buckets {
		n += b.live
	}
	return n
}

// Buckets reports the number of distinct (start, period) buckets with a
// pending event — the coalescing factor Len()/Buckets() is the win over
// per-entry tickers.
func (w *Wheel) Buckets() int { return len(w.buckets) }

// fire walks the bucket's entries in registration order, then re-queues the
// bucket's (reused) event one period on. Entries stopped during the walk —
// including by their own callback — do not fire again.
func (b *bucket) fire(now Time) {
	b.walking = true
	for _, e := range b.entries {
		if !e.stopped {
			e.fn(now)
		}
	}
	b.walking = false
	b.compact()
	if b.live == 0 {
		delete(b.wheel.buckets, b.key)
		return
	}
	// The key keeps the original start so entries added later for the same
	// (start, period) coordinate join this bucket rather than forking a
	// drifting duplicate; the next fire is period from now regardless.
	b.wheel.sim.reschedule(b.ev, now+b.key.period)
}

// compact drops stopped entries, preserving registration order.
func (b *bucket) compact() {
	if b.live == len(b.entries) {
		return
	}
	kept := b.entries[:0]
	for _, e := range b.entries {
		if !e.stopped {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(b.entries); i++ {
		b.entries[i] = nil
	}
	b.entries = kept
}

// Stop deactivates the entry: it never fires again. Stopping the last live
// entry of a bucket cancels the bucket's pending event (mid-walk, the walk
// finishes first). Stop is idempotent and safe to call from the entry's own
// callback.
func (e *CronEntry) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	b := e.b
	b.live--
	if b.walking {
		return // fire() compacts and handles an emptied bucket
	}
	if b.live == 0 {
		b.ev.Cancel()
		delete(b.wheel.buckets, b.key)
		return
	}
	b.compact()
}

// Stopped reports whether the entry has been stopped.
func (e *CronEntry) Stopped() bool { return e.stopped }

// Label reports the entry's diagnostic label.
func (e *CronEntry) Label() string { return e.label }

// Period reports the entry's period.
func (e *CronEntry) Period() Time { return e.b.key.period }
