package simclock

import "math"

// Rand is a small deterministic random source (splitmix64 core) owned by a
// Sim. It deliberately avoids math/rand global state so that simulations
// replay exactly from their seed regardless of what else the process does.
type Rand struct {
	state uint64
}

// NewRand returns a source seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Reseed rewinds the source to the state NewRand(seed) would give it, so a
// reused simulation replays the same stream a fresh one would.
func (r *Rand) Reseed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simclock: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard-normal sample (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	// Avoid log(0) by nudging u1 away from zero.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Normal returns a normal sample with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// LogNormal returns a log-normal sample whose underlying normal has the
// given mu and sigma.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, the inter-arrival law of a Poisson process.
func (r *Rand) ExpDuration(mean Time) Time {
	if mean <= 0 {
		panic("simclock: ExpDuration with non-positive mean")
	}
	u := r.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	d := -math.Log(u) * float64(mean)
	if d > float64(math.MaxInt64)/2 {
		d = float64(math.MaxInt64) / 2
	}
	return Time(d)
}

// UniformDuration returns a uniform duration in [lo, hi].
func (r *Rand) UniformDuration(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.Uint64()%uint64(hi-lo+1))
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
func (r *Rand) Jitter(d Time, f float64) Time {
	return Time(float64(d) * r.Jitterf(f))
}

// Jitterf returns a multiplicative factor uniform in [1-f, 1+f].
func (r *Rand) Jitterf(f float64) float64 {
	return 1 + f*(2*r.Float64()-1)
}

// Pick returns a uniformly chosen index weighted by w; w must contain at
// least one positive weight.
func (r *Rand) Pick(w []float64) int {
	var total float64
	for _, x := range w {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		panic("simclock: Pick with no positive weights")
	}
	t := r.Float64() * total
	for i, x := range w {
		if x <= 0 {
			continue
		}
		t -= x
		if t < 0 {
			return i
		}
	}
	// Float roundoff can leave t at exactly zero after the last positive
	// weight; land on that weight, never on a zero-weight trailer.
	for i := len(w) - 1; i > 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	return 0
}

// Fork derives an independent stream labelled by id, for giving subsystems
// their own streams so adding draws in one never perturbs another.
func (r *Rand) Fork(id uint64) *Rand {
	return NewRand(r.Uint64() ^ (id * 0xd6e8feb86659fd93))
}
