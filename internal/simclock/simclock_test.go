package simclock

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeHelpers(t *testing.T) {
	if (3*Hour + 30*Minute).Hours() != 3.5 {
		t.Errorf("Hours: got %v", (3*Hour + 30*Minute).Hours())
	}
	if Day.DayOfWeek() != 1 || Time(0).DayOfWeek() != 0 {
		t.Errorf("DayOfWeek wrong: %d %d", Day.DayOfWeek(), Time(0).DayOfWeek())
	}
	if !(5*Day + 3*Hour).IsWeekend() {
		t.Error("day 5 should be weekend")
	}
	if (4 * Day).IsWeekend() {
		t.Error("day 4 should be a weekday")
	}
	if (23 * Hour).HourOfDay() != 23 {
		t.Errorf("HourOfDay: got %d", (23 * Hour).HourOfDay())
	}
	if !(23 * Hour).IsOvernight() || !(2 * Hour).IsOvernight() {
		t.Error("23:00 and 02:00 are overnight")
	}
	if (12 * Hour).IsOvernight() {
		t.Error("noon is not overnight")
	}
}

func TestTimeString(t *testing.T) {
	if got := (2*Day + Hour).String(); got != "2d1h0m0s" {
		t.Errorf("String: got %q", got)
	}
	if got := (90 * Minute).String(); got != "1h30m0s" {
		t.Errorf("String: got %q", got)
	}
}

func TestScheduleOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3*Minute, "c", func(Time) { got = append(got, 3) })
	s.Schedule(1*Minute, "a", func(Time) { got = append(got, 1) })
	s.Schedule(2*Minute, "b", func(Time) { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events out of order: %v", got)
	}
	if s.Now() != 3*Minute {
		t.Errorf("clock should rest at last event: %v", s.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(Minute, "tie", func(Time) { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(Minute, "x", func(Time) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	s.Schedule(0, "past", func(Time) {})
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	e := s.Schedule(Minute, "x", func(Time) { ran = true })
	if !e.Cancel() {
		t.Error("first Cancel should report true")
	}
	if e.Cancel() {
		t.Error("second Cancel should report false")
	}
	s.Run()
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var count int
	s.Every(0, Minute, "tick", func(Time) { count++ })
	s.RunUntil(10 * Minute)
	if count != 11 { // ticks at 0..10 inclusive
		t.Errorf("tick count = %d, want 11", count)
	}
	if s.Now() != 10*Minute {
		t.Errorf("Now = %v, want 10m", s.Now())
	}
	s.RunUntil(12 * Minute)
	if count != 13 {
		t.Errorf("after resume count = %d, want 13", count)
	}
}

func TestRunUntilAdvancesClockWhenQueueDrains(t *testing.T) {
	s := New(1)
	s.Schedule(Minute, "only", func(Time) {})
	s.RunUntil(Hour)
	if s.Now() != Hour {
		t.Errorf("Now = %v, want 1h", s.Now())
	}
}

func TestTickerStop(t *testing.T) {
	s := New(1)
	var count int
	var tk *Ticker
	tk = s.Every(0, Minute, "tick", func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.RunUntil(Hour)
	if count != 3 {
		t.Errorf("count = %d, want 3 (ticker stops itself)", count)
	}
	tk.Stop() // idempotent
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Every with zero period should panic")
		}
	}()
	s.Every(0, 0, "bad", func(Time) {})
}

func TestStopDuringRun(t *testing.T) {
	s := New(1)
	var count int
	s.Every(0, Minute, "tick", func(Time) {
		count++
		if count == 5 {
			s.Stop()
		}
	})
	s.RunUntil(Hour)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestAfter(t *testing.T) {
	s := New(1)
	var at Time
	s.Schedule(10*Minute, "outer", func(now Time) {
		s.After(5*Minute, "inner", func(now Time) { at = now })
	})
	s.Run()
	if at != 15*Minute {
		t.Errorf("After fired at %v, want 15m", at)
	}
}

func TestFiredAndPending(t *testing.T) {
	s := New(1)
	s.Schedule(Minute, "a", func(Time) {})
	s.Schedule(2*Minute, "b", func(Time) {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if s.Fired() != 2 {
		t.Errorf("Fired = %d, want 2", s.Fired())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		s := New(42)
		var vals []uint64
		s.Every(0, Minute, "draw", func(Time) { vals = append(vals, s.Rand().Uint64()) })
		s.RunUntil(Hour)
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d", i)
		}
	}
}

// Property: events always fire in non-decreasing time order, whatever the
// schedule.
func TestQuickEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New(7)
		var fired []Time
		for _, o := range offsets {
			s.Schedule(Time(o)*Second, "e", func(now Time) { fired = append(fired, now) })
		}
		s.Run()
		if len(fired) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) over 1000 draws hit %d values", len(seen))
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestExpDurationMean(t *testing.T) {
	r := NewRand(11)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.ExpDuration(Hour))
	}
	mean := sum / n / float64(Hour)
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("ExpDuration mean = %.3f h, want ~1 h", mean)
	}
}

func TestExpDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ExpDuration(0) should panic")
		}
	}()
	NewRand(1).ExpDuration(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(13)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 || math.Abs(std-2) > 0.1 {
		t.Errorf("Normal(10,2): mean=%.3f std=%.3f", mean, std)
	}
}

func TestUniformDuration(t *testing.T) {
	r := NewRand(17)
	for i := 0; i < 1000; i++ {
		v := r.UniformDuration(Minute, Hour)
		if v < Minute || v > Hour {
			t.Fatalf("UniformDuration out of range: %v", v)
		}
	}
	if r.UniformDuration(Hour, Minute) != Hour {
		t.Error("inverted bounds should return lo")
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(19)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(Hour, 0.25)
		if v < Time(float64(Hour)*0.749) || v > Time(float64(Hour)*1.251) {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
}

func TestPickWeighted(t *testing.T) {
	r := NewRand(23)
	counts := [3]int{}
	w := []float64{1, 0, 3}
	for i := 0; i < 10000; i++ {
		counts[r.Pick(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestPickPanicsOnNoWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pick with all-zero weights should panic")
		}
	}()
	NewRand(1).Pick([]float64{0, 0})
}

func TestForkIndependence(t *testing.T) {
	a := NewRand(5).Fork(1)
	b := NewRand(5).Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("forked streams collide %d/100 draws", same)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(29)
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / 10000
	if math.Abs(p-0.25) > 0.02 {
		t.Errorf("Bool(0.25) hit rate %.3f", p)
	}
}

// Property: Jitter never changes sign and stays within the factor bounds.
func TestQuickJitter(t *testing.T) {
	r := NewRand(31)
	f := func(ms uint32) bool {
		d := Time(ms) * Time(1e6)
		if d == 0 {
			return true
		}
		v := r.Jitter(d, 0.5)
		return v >= Time(float64(d)*0.499) && v <= Time(float64(d)*1.501)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 1000; j++ {
			s.Schedule(Time(j)*Second, "e", func(Time) {})
		}
		s.Run()
	}
}
