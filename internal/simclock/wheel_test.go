package simclock

import (
	"fmt"
	"reflect"
	"testing"
)

// --- Reference model: an independent, obviously-correct event engine ---

// modelEvent mirrors one scheduled callback in the reference engine.
type modelEvent struct {
	at       Time
	seq      uint64
	id       int
	canceled bool
	fired    bool
}

// modelEngine executes events in (time, seq) order — the FIFO-among-equals
// contract — with a linear scan instead of a heap, sharing no code with
// the Sim under test.
type modelEngine struct {
	events []*modelEvent
	seq    uint64
	now    Time
}

func (m *modelEngine) schedule(at Time, id int) *modelEvent {
	e := &modelEvent{at: at, seq: m.seq, id: id}
	m.seq++
	m.events = append(m.events, e)
	return e
}

func (m *modelEngine) next() *modelEvent {
	var best *modelEvent
	for _, e := range m.events {
		if e.canceled || e.fired {
			continue
		}
		if best == nil || e.at < best.at || (e.at == best.at && e.seq < best.seq) {
			best = e
		}
	}
	return best
}

func (m *modelEngine) run(onFire func(id int, now Time)) []int {
	var order []int
	for {
		e := m.next()
		if e == nil {
			return order
		}
		m.now = e.at
		e.fired = true
		order = append(order, e.id)
		onFire(e.id, e.at)
	}
}

// splitmix is a tiny deterministic generator for the property tests,
// independent of the Rand under test.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) intn(n int) int { return int(s.next() % uint64(n)) }

// script is a randomly generated schedule: root events, a cancellation
// subset, and child events spawned when their parent fires — the same
// script drives both engines.
type script struct {
	roots []scriptEvent
	// child[id] spawns when id fires.
	childDelta map[int]Time
	childOf    map[int]int
	childPost  map[int]bool
}

type scriptEvent struct {
	id     int
	at     Time
	post   bool // use Sim.Post (no handle, pooled) instead of Schedule
	cancel bool // cancel before running (only for non-post events)
}

func genScript(rng *splitmix) script {
	sc := script{childDelta: map[int]Time{}, childOf: map[int]int{}, childPost: map[int]bool{}}
	n := 10 + rng.intn(40)
	for i := 0; i < n; i++ {
		ev := scriptEvent{
			id: i,
			// Times drawn from a tiny range so equal-time collisions are
			// the norm, not the exception.
			at:   Time(rng.intn(8)) * Second,
			post: rng.intn(4) == 0,
		}
		ev.cancel = !ev.post && rng.intn(4) == 0
		sc.roots = append(sc.roots, ev)
		if rng.intn(3) == 0 {
			sc.childDelta[i] = Time(rng.intn(4)) * Second
			sc.childOf[i] = 1000 + i
			sc.childPost[i] = rng.intn(2) == 0
		}
	}
	return sc
}

// runOnSim executes the script on a real Sim and returns the firing order.
func (sc script) runOnSim() []int {
	sim := New(1)
	var order []int
	var fire func(id int) func(Time)
	fire = func(id int) func(Time) {
		return func(now Time) {
			order = append(order, id)
			if d, ok := sc.childDelta[id]; ok {
				if sc.childPost[id] {
					sim.Post(now+d, "child", fire(sc.childOf[id]))
				} else {
					sim.Schedule(now+d, "child", fire(sc.childOf[id]))
				}
			}
		}
	}
	var cancels []*Event
	for _, ev := range sc.roots {
		if ev.post {
			sim.Post(ev.at, "root", fire(ev.id))
			continue
		}
		h := sim.Schedule(ev.at, "root", fire(ev.id))
		if ev.cancel {
			cancels = append(cancels, h)
		}
	}
	for _, h := range cancels {
		h.Cancel()
	}
	sim.Run()
	return order
}

// runOnModel executes the script on the reference engine.
func (sc script) runOnModel() []int {
	m := &modelEngine{}
	for _, ev := range sc.roots {
		e := m.schedule(ev.at, ev.id)
		e.canceled = ev.cancel
	}
	return m.run(func(id int, now Time) {
		if d, ok := sc.childDelta[id]; ok {
			m.schedule(now+d, sc.childOf[id])
		}
	})
}

// TestRandomScheduleCancelMatchesModel drives the Sim with hundreds of
// random schedules — heavy on equal firing times — plus cancellations and
// callback-scheduled children, asserting the firing order matches the
// independent reference engine exactly. This pins the FIFO tie-break among
// equal-time events, including events created while the clock runs and
// pooled Post events interleaved with handle-returning Schedules (both
// draw sequence numbers from the same FIFO counter).
func TestRandomScheduleCancelMatchesModel(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := splitmix(trial * 2654435761)
		sc := genScript(&rng)
		got := sc.runOnSim()
		want := sc.runOnModel()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: firing order diverged\n sim:   %v\n model: %v", trial, got, want)
		}
	}
}

// FuzzScheduleOrder is the fuzzing harness over the same model: arbitrary
// bytes become a schedule/cancel script. `go test` runs the seed corpus;
// `go test -fuzz=FuzzScheduleOrder` explores further.
func FuzzScheduleOrder(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(0xdeadbeef))
	f.Add(uint64(1 << 40))
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := splitmix(seed)
		sc := genScript(&rng)
		got := sc.runOnSim()
		want := sc.runOnModel()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: firing order diverged\n sim:   %v\n model: %v", seed, got, want)
		}
	})
}

// --- Wheel vs per-entry tickers ---

// cronSpec describes one repeating entry plus an optional stop: stopAt is
// an absolute time at which a separately scheduled event stops the entry,
// and stopBy optionally names another entry whose callback performs the
// stop instead (stopping a co-bucketed entry mid-walk).
type cronSpec struct {
	phase, period Time
	stopAt        Time // 0 = never
	stopByPeer    int  // -1, or index of the entry whose callback stops us at its first fire
}

// genCrons generates coordinate groups registered contiguously: entries
// sharing a (phase, period) coordinate — a wheel bucket — are adjacent in
// registration order, as they are when a site deploys its agents host by
// host. Under interleaved registration of colliding coordinates the wheel
// legitimately batches a bucket's entries together where per-entry tickers
// would interleave them; real sites draw continuous random phases, so
// coordinates only collide for co-registered entries and the schemes
// agree. Distinct coordinates still collide in firing time constantly here
// (phase 0 period 1s vs phase 0 period 2s, etc.), which is the tie-break
// surface the property pins.
func genCrons(rng *splitmix) []cronSpec {
	groups := 1 + rng.intn(4)
	var specs []cronSpec
	seen := map[[2]Time]bool{}
	for g := 0; g < groups; g++ {
		phase := Time(rng.intn(3)) * Second
		period := Time(1+rng.intn(3)) * Second
		if seen[[2]Time{phase, period}] {
			continue // two groups on one coordinate would be one interleaved bucket
		}
		seen[[2]Time{phase, period}] = true
		for k := 1 + rng.intn(3); k > 0; k-- {
			specs = append(specs, cronSpec{phase: phase, period: period, stopByPeer: -1})
		}
	}
	for i := range specs {
		switch rng.intn(4) {
		case 0:
			specs[i].stopAt = Time(1+rng.intn(10)) * Second
		case 1:
			specs[i].stopByPeer = rng.intn(len(specs))
		}
	}
	return specs
}

type firing struct {
	At Time
	ID int
}

// runCrons executes the cron specs to the horizon under either scheme and
// records every (time, entry) firing in order.
func runCrons(specs []cronSpec, horizon Time, wheel bool) []firing {
	sim := New(1)
	var out []firing
	stops := make([]func(), len(specs))
	fired := make([]bool, len(specs))
	for i, spec := range specs {
		i, spec := i, spec
		fn := func(now Time) {
			out = append(out, firing{now, i})
			first := !fired[i]
			fired[i] = true
			if first {
				for j, s := range specs {
					if s.stopByPeer == i && stops[j] != nil {
						stops[j]()
					}
				}
			}
		}
		if wheel {
			w := simWheel(sim)
			e := w.Add(sim.Now()+spec.phase, spec.period, fmt.Sprintf("e%d", i), fn)
			stops[i] = e.Stop
		} else {
			tk := sim.Every(sim.Now()+spec.phase, spec.period, fmt.Sprintf("e%d", i), fn)
			stops[i] = tk.Stop
		}
	}
	for i, spec := range specs {
		if spec.stopAt > 0 {
			i := i
			sim.Schedule(spec.stopAt, "stop", func(Time) { stops[i]() })
		}
	}
	sim.RunUntil(horizon)
	return out
}

// one wheel per sim, lazily.
var wheels = map[*Sim]*Wheel{}

func simWheel(s *Sim) *Wheel {
	if w, ok := wheels[s]; ok {
		return w
	}
	w := NewWheel(s)
	wheels[s] = w
	return w
}

// TestWheelMatchesEveryUnderRandomInterleavings is the wheel's equivalence
// property: random sets of repeating entries — with colliding phases and
// periods so buckets hold several entries — fire at identical times in
// identical order whether scheduled as individual tickers or coalesced on
// a wheel, under random stop interleavings including entries stopped from
// a co-bucketed peer's callback mid-walk.
func TestWheelMatchesEveryUnderRandomInterleavings(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := splitmix(trial*7919 + 3)
		specs := genCrons(&rng)
		horizon := Time(5+rng.intn(15)) * Second
		every := runCrons(specs, horizon, false)
		wheel := runCrons(specs, horizon, true)
		if !reflect.DeepEqual(every, wheel) {
			t.Fatalf("trial %d (%+v): schemes diverged\n every: %v\n wheel: %v", trial, specs, every, wheel)
		}
	}
}

// TestWheelBucketMembership pins the Cancel-vs-bucket rules: entries on a
// shared coordinate coalesce into one pending event, stopping one entry
// keeps the bucket alive, stopping the last cancels the bucket's event,
// and a later Add on a live coordinate re-joins the existing bucket.
func TestWheelBucketMembership(t *testing.T) {
	sim := New(1)
	w := NewWheel(sim)
	var order []string
	a := w.Add(Second, Second, "a", func(Time) { order = append(order, "a") })
	b := w.Add(Second, Second, "b", func(Time) { order = append(order, "b") })
	w.Add(2*Second, Second, "c", func(Time) { order = append(order, "c") })
	if got := w.Buckets(); got != 2 {
		t.Fatalf("Buckets() = %d, want 2 (a+b coalesced, c separate)", got)
	}
	if got := w.Len(); got != 3 {
		t.Fatalf("Len() = %d, want 3", got)
	}
	if got := sim.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2: one heap event per bucket", got)
	}

	sim.RunUntil(Second) // a, b fire; c not yet
	if want := []string{"a", "b"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("first tick order = %v, want %v (registration order)", order, want)
	}

	a.Stop()
	if a.Stopped() != true || w.Len() != 2 {
		t.Fatalf("after a.Stop: Stopped=%v Len=%d", a.Stopped(), w.Len())
	}
	if got := w.Buckets(); got != 2 {
		t.Fatalf("Buckets() = %d after stopping one of two entries, want 2", got)
	}

	order = nil
	// At 2s both c (initial event, early sequence number) and b's bucket
	// (rescheduled at 1s, fresh sequence number) fire: FIFO puts c first —
	// exactly what per-entry tickers would do.
	sim.RunUntil(2 * Second)
	if want := []string{"c", "b"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("second tick order = %v, want %v", order, want)
	}

	// Stopping the last live entry of b's bucket cancels its heap event.
	pendingBefore := sim.Pending()
	b.Stop()
	if got := w.Buckets(); got != 1 {
		t.Fatalf("Buckets() = %d after emptying a bucket, want 1", got)
	}
	// The cancelled event may linger in the heap until popped, but firing
	// must stop entirely.
	order = nil
	sim.RunUntil(4 * Second)
	if want := []string{"c", "c"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("after stopping b: firings = %v, want %v", order, want)
	}
	_ = pendingBefore

	// Double-stop is a no-op; stopping from inside the callback works.
	b.Stop()
	w.Add(5*Second, Second, "c2", func(Time) { order = append(order, "c2") })
	var d *CronEntry
	d = w.Add(5*Second, Second, "d", func(Time) {
		order = append(order, "d")
		d.Stop()
	})
	order = nil
	sim.RunUntil(7 * Second)
	// c fires at 5,6,7; c2+d at 5 (d stops itself), c2 at 6,7.
	want := []string{"c", "c2", "d", "c", "c2", "c", "c2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("self-stop sequence = %v, want %v", order, want)
	}
}

// TestTickerStopUnderInterleavings pins Ticker semantics the wheel must
// coexist with: stop inside the callback, stop from a same-time event,
// double-stop, and event reuse not resurrecting a stopped ticker.
func TestTickerStopUnderInterleavings(t *testing.T) {
	sim := New(1)
	var ticks []Time
	var tk *Ticker
	tk = sim.Every(Second, Second, "self-stop", func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			tk.Stop()
		}
	})
	sim.Run()
	if len(ticks) != 3 {
		t.Fatalf("self-stopping ticker fired %d times, want 3", len(ticks))
	}
	tk.Stop() // double-stop: no-op

	// A stop scheduled at the same instant as a tick: the tick's event is
	// rescheduled at each fire with a fresh sequence number, so the stop —
	// queued at setup — wins the 2s tie and the 2s tick never runs.
	sim2 := New(1)
	var n int
	tk2 := sim2.Every(Second, Second, "tick", func(Time) { n++ })
	sim2.Schedule(2*Second, "stop", func(Time) { tk2.Stop() })
	sim2.Run()
	if n != 1 {
		t.Fatalf("ticker with same-time stop fired %d times, want 1 (the 1s tick; the stop wins the 2s tie)", n)
	}
}
