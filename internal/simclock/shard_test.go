package simclock

import (
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpanPartitions(t *testing.T) {
	for _, tc := range []struct{ shards, n int }{
		{1, 0}, {1, 7}, {2, 7}, {3, 2}, {8, 100}, {8, 3}, {5, 5},
	} {
		next := 0
		total := 0
		for s := 0; s < tc.shards; s++ {
			lo, hi := Span(s, tc.shards, tc.n)
			if lo != next {
				t.Errorf("Span(%d, %d, %d): lo = %d, want %d (contiguous cover)", s, tc.shards, tc.n, lo, next)
			}
			if hi < lo {
				t.Errorf("Span(%d, %d, %d): hi %d < lo %d", s, tc.shards, tc.n, hi, lo)
			}
			if size := hi - lo; size > tc.n/tc.shards+1 {
				t.Errorf("Span(%d, %d, %d): size %d exceeds even split by more than one", s, tc.shards, tc.n, size)
			}
			next = hi
			total += hi - lo
		}
		if next != tc.n || total != tc.n {
			t.Errorf("Span(*, %d, %d): covered [0, %d), want [0, %d)", tc.shards, tc.n, next, tc.n)
		}
	}
}

func TestPoolRunCoversEveryShardOnce(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		p := NewPool(shards)
		counts := make([]int64, shards)
		for round := 0; round < 50; round++ {
			p.Run(func(s int) { atomic.AddInt64(&counts[s], 1) })
		}
		for s, c := range counts {
			if c != 50 {
				t.Errorf("%d shards: shard %d ran %d times, want 50", shards, s, c)
			}
		}
	}
}

func TestPoolRunIsABarrier(t *testing.T) {
	p := NewPool(4)
	var during atomic.Int64
	for round := 0; round < 20; round++ {
		p.Run(func(s int) {
			during.Add(1)
			time.Sleep(time.Millisecond)
			during.Add(-1)
		})
		if v := during.Load(); v != 0 {
			t.Fatalf("round %d: Run returned with %d shards still inside f", round, v)
		}
	}
}

func TestNilAndSingleShardPoolsDegenerate(t *testing.T) {
	var nilPool *Pool
	if got := nilPool.Shards(); got != 1 {
		t.Fatalf("nil pool Shards() = %d, want 1", got)
	}
	ran := 0
	nilPool.Run(func(s int) {
		if s != 0 {
			t.Fatalf("nil pool ran shard %d", s)
		}
		ran++
	})
	if ran != 1 {
		t.Fatalf("nil pool ran f %d times, want 1", ran)
	}
	if got := NewPool(1).Shards(); got != 1 {
		t.Fatalf("NewPool(1).Shards() = %d, want 1", got)
	}
}

func TestNewPoolRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPool(%d) did not panic", n)
				}
			}()
			NewPool(n)
		}()
	}
}

// TestPoolAbandonedShutsDownWorkers pins the finalizer contract: dropping
// the last reference to a multi-shard pool must let GC reclaim it and stop
// its workers — pooled campaign sites churn through sync.Pool, and leaked
// worker goroutines would accumulate across trials.
func TestPoolAbandonedShutsDownWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		p := NewPool(8)
		p.Run(func(int) {})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		runtime.Gosched()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("worker goroutines still alive %v after abandoning the pool: %d, started from %d",
		5*time.Second, runtime.NumGoroutine(), before)
}

// --- Prepared wheel entries ---

// preparedHarness registers a mix of prepared and plain entries whose
// callbacks append to a shared journal; the journal must be independent
// of the pool's shard count because applies replay in registration order.
func preparedJournal(t *testing.T, pool *Pool) []string {
	t.Helper()
	sim := New(1)
	w := NewWheel(sim)
	w.SetPool(pool)
	var journal []string
	for i := 0; i < 10; i++ {
		i := i
		label := fmt.Sprintf("prep%d", i)
		w.AddPrepared(Minute, Minute, label, func(now Time) func(Time) {
			// Prepare is read-only by contract; record via the returned
			// apply so the journal sees serialised order only.
			return func(now Time) {
				journal = append(journal, fmt.Sprintf("%s@%d", label, now/Minute))
			}
		})
		if i%3 == 0 {
			label := fmt.Sprintf("plain%d", i)
			w.Add(Minute, Minute, label, func(now Time) {
				journal = append(journal, fmt.Sprintf("%s@%d", label, now/Minute))
			})
		}
	}
	sim.RunUntil(5 * Minute)
	return journal
}

func TestPreparedEntriesMatchSerialOrderAtAnyShardCount(t *testing.T) {
	want := preparedJournal(t, nil)
	if len(want) == 0 {
		t.Fatal("serial journal is empty; harness broken")
	}
	for _, shards := range []int{1, 2, 3, 8} {
		got := preparedJournal(t, NewPool(shards))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%d shards: journal diverged from serial\n got: %v\nwant: %v", shards, got, want)
		}
	}
}

func TestPreparedNilApplySkips(t *testing.T) {
	sim := New(1)
	w := NewWheel(sim)
	w.SetPool(NewPool(4))
	applies := 0
	var prepCount atomic.Int64 // prepares run concurrently
	w.AddPrepared(Minute, Minute, "sometimes", func(now Time) func(Time) {
		prepCount.Add(1)
		if (now/Minute)%2 == 0 {
			return nil
		}
		return func(Time) { applies++ }
	})
	sim.RunUntil(6 * Minute)
	prepares := int(prepCount.Load())
	if prepares != 6 {
		t.Fatalf("prepare ran %d times, want 6", prepares)
	}
	if applies != 3 {
		t.Fatalf("apply ran %d times, want 3 (odd minutes only)", applies)
	}
}

// TestPreparedStopDuringApply pins the stop semantics under sharding: an
// apply that stops a later prepared entry must suppress that entry's
// apply this tick (its prepare already ran, harmlessly) and all its work
// on later ticks.
func TestPreparedStopDuringApply(t *testing.T) {
	for _, pool := range []*Pool{nil, NewPool(4)} {
		sim := New(1)
		w := NewWheel(sim)
		w.SetPool(pool)
		var fired []string
		var victim *CronEntry
		w.AddPrepared(Minute, Minute, "assassin", func(now Time) func(Time) {
			return func(Time) {
				fired = append(fired, "assassin")
				victim.Stop()
			}
		})
		victim = w.AddPrepared(Minute, Minute, "victim", func(now Time) func(Time) {
			return func(Time) { fired = append(fired, "victim") }
		})
		sim.RunUntil(3 * Minute)
		want := []string{"assassin", "assassin", "assassin"}
		if !reflect.DeepEqual(fired, want) {
			t.Errorf("pool %v: fired %v, want %v", pool.Shards(), fired, want)
		}
		if w.Len() != 1 {
			t.Errorf("pool %v: Len() = %d after stop, want 1", pool.Shards(), w.Len())
		}
	}
}

func TestAddPreparedRejectsNil(t *testing.T) {
	sim := New(1)
	w := NewWheel(sim)
	defer func() {
		if recover() == nil {
			t.Error("AddPrepared(nil) did not panic")
		}
	}()
	w.AddPrepared(Minute, Minute, "nil", nil)
}
