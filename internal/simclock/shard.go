package simclock

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is the intra-trial shard executor: a fixed set of persistent
// workers that run a barrier parallel-for over shard indices. It exists
// so the wheel can advance a bucket's prepared entries on several
// goroutines inside one tick window and then merge their effects at the
// tick boundary in a fixed order — the shared-clock multi-instance loop.
//
// Shard 0 always runs on the calling goroutine, so a 1-shard pool (and a
// nil *Pool) degenerate to a plain inline call with no synchronisation.
// Run returns only after every shard has finished: the barrier IS the
// tick boundary, and nothing the shards computed is observed before it.
//
// Workers hold a reference to the pool's channels only — never to the
// Pool itself — so an abandoned pool is garbage-collected and a
// finalizer shuts the workers down. Sites held in a sync.Pool across
// campaign trials can therefore own a Pool without leaking goroutines.
type Pool struct {
	shards int
	work   chan poolTask
	wg     *sync.WaitGroup
}

// poolTask is one shard's slice of a Run call.
type poolTask struct {
	f     func(shard int)
	shard int
	wg    *sync.WaitGroup
}

// NewPool returns a pool of the given shard count. One shard means "run
// inline"; counts above one start shards-1 persistent workers. A
// non-positive count panics — callers validate user input before
// constructing the pool.
func NewPool(shards int) *Pool {
	if shards < 1 {
		panic(fmt.Sprintf("simclock: non-positive shard count %d", shards))
	}
	p := &Pool{shards: shards}
	if shards > 1 {
		p.work = make(chan poolTask)
		p.wg = &sync.WaitGroup{}
		for i := 1; i < shards; i++ {
			go poolWorker(p.work)
		}
		runtime.SetFinalizer(p, func(p *Pool) { close(p.work) })
	}
	return p
}

func poolWorker(work <-chan poolTask) {
	for t := range work {
		t.f(t.shard)
		t.wg.Done()
	}
}

// Shards reports the pool's shard count; a nil pool counts as one shard.
func (p *Pool) Shards() int {
	if p == nil {
		return 1
	}
	return p.shards
}

// Run executes f(0) .. f(shards-1), f(0) on the calling goroutine, and
// returns when all have finished. f must not touch the simulator (clock,
// heap, random streams) — shards see a frozen tick and publish their
// effects after the barrier. Run is not safe for concurrent use with
// itself; the single-goroutine event loop is the only caller.
func (p *Pool) Run(f func(shard int)) {
	if p == nil || p.shards == 1 {
		f(0)
		return
	}
	p.wg.Add(p.shards - 1)
	for s := 1; s < p.shards; s++ {
		p.work <- poolTask{f: f, shard: s, wg: p.wg}
	}
	f(0)
	p.wg.Wait()
}

// Span partitions n items into the given shard count and returns the
// half-open range [lo, hi) owned by shard. Ranges are contiguous, cover
// exactly [0, n), and differ in size by at most one item.
func Span(shard, shards, n int) (lo, hi int) {
	return shard * n / shards, (shard + 1) * n / shards
}
