// Package simclock provides a deterministic discrete-event simulation
// engine: a virtual clock, an event queue ordered by firing time, repeating
// timers, and a seeded random source. Every stochastic component of the
// cluster simulation draws from a Rand owned by the Sim so that whole
// scenarios replay bit-for-bit from a seed.
package simclock

import (
	"container/heap"
	"fmt"
	"math"
	"strconv"
	"time"
)

// Time is simulated time measured as a duration since the simulation epoch.
type Time time.Duration

// Common simulated durations.
const (
	Second = Time(time.Second)
	Minute = Time(time.Minute)
	Hour   = Time(time.Hour)
	Day    = 24 * Hour
	Week   = 7 * Day
	Year   = 365 * Day
)

// Never is a sentinel time later than any schedulable event.
const Never = Time(math.MaxInt64)

func (t Time) String() string {
	d := time.Duration(t)
	days := d / (24 * time.Hour)
	rem := d % (24 * time.Hour)
	if days > 0 {
		return string(t.AppendString(nil))
	}
	return rem.String()
}

// AppendString appends the String form to buf — the allocation-light path
// log lines use for their timestamp prefix.
func (t Time) AppendString(buf []byte) []byte {
	d := time.Duration(t)
	days := d / (24 * time.Hour)
	rem := d % (24 * time.Hour)
	if days > 0 {
		buf = strconv.AppendInt(buf, int64(days), 10)
		buf = append(buf, 'd')
	}
	return append(buf, rem.String()...)
}

// Duration converts a simulated time to a time.Duration since epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Hours reports the time as fractional hours since epoch.
func (t Time) Hours() float64 { return time.Duration(t).Hours() }

// Minutes reports the time as fractional minutes since epoch.
func (t Time) Minutes() float64 { return time.Duration(t).Minutes() }

// DayOfWeek reports the day index 0..6 of t, with day 0 being a Monday so
// that days 5 and 6 form the weekend.
func (t Time) DayOfWeek() int { return int(t/Day) % 7 }

// IsWeekend reports whether t falls on simulated Saturday or Sunday.
func (t Time) IsWeekend() bool { return t.DayOfWeek() >= 5 }

// HourOfDay reports the hour-of-day component 0..23 of t.
func (t Time) HourOfDay() int { return int(t/Hour) % 24 }

// IsOvernight reports whether t falls in the overnight batch window
// (22:00–06:00), the window the paper's overnight jobs run in.
func (t Time) IsOvernight() bool {
	h := t.HourOfDay()
	return h >= 22 || h < 6
}

// Event is a scheduled callback. The callback runs exactly once at its
// firing time unless cancelled first.
type Event struct {
	at       Time
	seq      uint64 // tie-break: FIFO among equal times
	index    int    // heap index, -1 when not queued
	fn       func(now Time)
	canceled bool
	pooled   bool // recycled into the Sim freelist after firing (Post events)
	label    string
}

// At reports the scheduled firing time.
func (e *Event) At() Time { return e.at }

// Label reports the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending.
func (e *Event) Cancel() bool {
	if e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	return true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Sim struct {
	now     Time
	queue   eventHeap
	seq     uint64
	rng     *Rand
	fired   uint64
	stopped bool
	free    []*Event // recycled Post events; never handed out as handles
}

// New returns a simulator at time zero whose random source is seeded with
// seed.
func New(seed uint64) *Sim {
	return &Sim{rng: NewRand(seed)}
}

// Reset rewinds the simulator to a fresh state at time zero with the given
// seed: the event queue is emptied, the fired/sequence counters restart and
// the random source is reseeded. Allocated capacity (queue backing array,
// event freelist) is retained, which is the point — a reset Sim behaves
// exactly like New(seed) but without rebuilding its working set.
func (s *Sim) Reset(seed uint64) {
	for i := range s.queue {
		s.queue[i].index = -1
		s.queue[i] = nil
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.stopped = false
	s.rng.Reseed(seed)
}

// Now reports the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation-owned random source.
func (s *Sim) Rand() *Rand { return s.rng }

// Pending reports the number of events still queued (including cancelled
// events not yet discarded).
func (s *Sim) Pending() int { return len(s.queue) }

// Fired reports how many events have executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) panics: that is always a simulation bug.
func (s *Sim) Schedule(at Time, label string, fn func(now Time)) *Event {
	if at < s.now {
		panic(fmt.Sprintf("simclock: schedule %q at %v before now %v", label, at, s.now))
	}
	e := &Event{at: at, seq: s.seq, fn: fn, label: label}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After queues fn to run d after the current time.
func (s *Sim) After(d Time, label string, fn func(now Time)) *Event {
	return s.Schedule(s.now+d, label, fn)
}

// Post queues fn to run at absolute time at without returning a handle.
// Because the event can never be cancelled from outside, the Sim recycles
// its Event allocation after firing — hot paths that schedule and forget
// (message delivery, process reaping) should prefer Post over Schedule.
// Semantics are otherwise identical to Schedule, including the FIFO
// tie-break and the past-scheduling panic.
func (s *Sim) Post(at Time, label string, fn func(now Time)) {
	if at < s.now {
		panic(fmt.Sprintf("simclock: post %q at %v before now %v", label, at, s.now))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.canceled = false
	} else {
		e = &Event{pooled: true}
	}
	e.at, e.fn, e.label = at, fn, label
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// PostAfter queues fn to run d after the current time, like Post.
func (s *Sim) PostAfter(d Time, label string, fn func(now Time)) {
	s.Post(s.now+d, label, fn)
}

// release returns a fired pooled event to the freelist.
func (s *Sim) release(e *Event) {
	e.fn = nil
	s.free = append(s.free, e)
}

// reschedule re-queues a fired (or never-queued) event at a new time with a
// fresh FIFO sequence number — the allocation-free path repeating timers
// use. The event must not be in the queue.
func (s *Sim) reschedule(e *Event, at Time) {
	if at < s.now {
		panic(fmt.Sprintf("simclock: reschedule %q at %v before now %v", e.label, at, s.now))
	}
	e.at = at
	e.canceled = false
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// Every schedules fn to run first at start and then every period thereafter
// until the returned Ticker is stopped. A period of zero or less panics.
func (s *Sim) Every(start, period Time, label string, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("simclock: non-positive ticker period for " + label)
	}
	t := &Ticker{sim: s, period: period, label: label, fn: fn}
	t.ev = s.Schedule(start, label, t.fire)
	return t
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	sim     *Sim
	period  Time
	label   string
	fn      func(now Time)
	ev      *Event
	stopped bool
}

func (t *Ticker) fire(now Time) {
	if t.stopped {
		return
	}
	t.fn(now)
	if t.stopped { // fn may stop its own ticker
		return
	}
	// Reuse the just-fired event: t.ev is the event this callback belongs
	// to, already popped from the queue, and its handle never escapes the
	// ticker, so re-queueing it is safe and allocation-free.
	t.sim.reschedule(t.ev, now+t.period)
}

// Stop cancels future ticks. It is safe to call from within the tick
// callback and multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}

// Period reports the ticker's period.
func (t *Ticker) Period() Time { return t.period }

// Step executes the next pending event, advancing the clock to its firing
// time. It reports false when no events remain.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		if e.at < s.now {
			panic("simclock: event heap yielded past event")
		}
		s.now = e.at
		s.fired++
		fn := e.fn
		if e.pooled {
			s.release(e)
		}
		fn(s.now)
		return true
	}
	return false
}

// RunUntil executes events in time order until the clock would pass end or
// the queue drains or Stop is called. The clock finishes at exactly end if
// it was reached (even if the queue drained earlier), so sampling code can
// rely on Now() == end afterwards.
func (s *Sim) RunUntil(end Time) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 {
		e := s.queue[0]
		if e.canceled {
			heap.Pop(&s.queue)
			continue
		}
		if e.at > end {
			break
		}
		heap.Pop(&s.queue)
		s.now = e.at
		s.fired++
		fn := e.fn
		if e.pooled {
			s.release(e)
		}
		fn(s.now)
	}
	if !s.stopped && s.now < end {
		s.now = end
	}
}

// Run executes events until the queue drains or Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// Stop halts RunUntil/Run after the current event callback returns.
func (s *Sim) Stop() { s.stopped = true }
