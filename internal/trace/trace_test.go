package trace

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/simclock"
)

// A nil recorder must absorb every call without panicking and report the
// disabled state — the zero-cost path every emission site relies on.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Level() != LevelOff {
		t.Fatalf("nil recorder level = %d, want %d", r.Level(), LevelOff)
	}
	if r.WantEvidence() {
		t.Fatal("nil recorder wants evidence")
	}
	r.SetTierOf(func(string) string { return "x" })
	r.Arrival(1, "midcrash", "")
	r.Fault(1, "midcrash", "h1", "svc.db", "crashed")
	r.Detect(2, "h1", "svc.db", "probe")
	r.Resolve(3, "h1", "svc.db", "operator")
	if id := r.Diagnose(2, "agent", "h1", "svc.db", "crashed", "cause", "restart-service", nil); id != 0 {
		t.Fatalf("nil recorder Diagnose id = %d, want 0", id)
	}
	r.Heal(2, "agent", "h1", "svc.db", "restart-service", "", true, true, false)
	r.Page(1, "midcrash", "h1", "svc.db", simclock.Hour)
	r.Dispatch(2, "midcrash", "h1", "svc.db", simclock.Hour, false)
	if _, ok := r.Alternative(1); ok {
		t.Fatal("nil recorder returned an alternative")
	}
	r.Reset()
	if r.Events() != nil || r.Len() != 0 {
		t.Fatal("nil recorder holds events")
	}
}

func TestNewLevelOffReturnsNil(t *testing.T) {
	if New(LevelOff) != nil {
		t.Fatal("New(LevelOff) != nil")
	}
	if New(-3) != nil {
		t.Fatal("New(-3) != nil")
	}
	if r := New(LevelDecisions); !r.Enabled() || r.WantEvidence() {
		t.Fatalf("New(LevelDecisions): Enabled=%t WantEvidence=%t", r.Enabled(), r.WantEvidence())
	}
	if r := New(LevelFull); !r.WantEvidence() {
		t.Fatal("New(LevelFull) does not want evidence")
	}
}

// IDs are monotone from 1 in emission order, and the tier resolver stamps
// events that only know their host.
func TestIDsAndTierStamping(t *testing.T) {
	r := New(LevelFull)
	r.SetTierOf(func(host string) string {
		if host == "h1" {
			return "web"
		}
		return ""
	})
	r.Arrival(1, "midcrash", "web")
	r.Fault(2, "midcrash", "h1", "svc.db", "crashed")
	id := r.Diagnose(3, "agent-x", "h1", "svc.db", "crashed", "service crashed", "restart-service", []string{"up=0"})
	r.Heal(4, "agent-x", "h1", "svc.db", "restart-service", "ok", true, false, false)

	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.ID != i+1 {
			t.Fatalf("event %d has ID %d, want %d", i, e.ID, i+1)
		}
	}
	if id != 3 {
		t.Fatalf("Diagnose returned id %d, want 3", id)
	}
	if evs[1].Tier != "web" || evs[2].Tier != "web" {
		t.Fatalf("tier not stamped from host: %q, %q", evs[1].Tier, evs[2].Tier)
	}
	if evs[0].Tier != "web" {
		t.Fatalf("explicit arrival tier lost: %q", evs[0].Tier)
	}
}

func TestResetClearsEventsAndRearmsCounterfactual(t *testing.T) {
	r := New(LevelDecisions)
	r.SetCounterfactual(Counterfactual{EventID: 1, Action: "reboot-host"})
	id := r.Diagnose(1, "a", "h", "s", "rule", "cause", "restart-service", nil)
	if alt, ok := r.Alternative(id); !ok || alt != "reboot-host" {
		t.Fatalf("Alternative(%d) = %q, %t", id, alt, ok)
	}
	if _, ok := r.Alternative(id); ok {
		t.Fatal("counterfactual applied twice")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
	id = r.Diagnose(1, "a", "h", "s", "rule", "cause", "restart-service", nil)
	if id != 1 {
		t.Fatalf("post-Reset Diagnose id = %d, want 1", id)
	}
	if alt, ok := r.Alternative(id); !ok || alt != "reboot-host" {
		t.Fatalf("counterfactual not re-armed after Reset: %q, %t", alt, ok)
	}
}

func TestAlternativeMatchesOnlyTargetEvent(t *testing.T) {
	r := New(LevelDecisions)
	r.SetCounterfactual(Counterfactual{EventID: 2, Action: "manual-repair"})
	id1 := r.Diagnose(1, "a", "h", "s", "rule", "cause", "restart-service", nil)
	if _, ok := r.Alternative(id1); ok {
		t.Fatal("alternative fired on the wrong event")
	}
	if _, ok := r.Alternative(0); ok {
		t.Fatal("alternative fired on id 0")
	}
	id2 := r.Diagnose(2, "a", "h", "s", "rule", "cause", "restart-service", nil)
	if alt, ok := r.Alternative(id2); !ok || alt != "manual-repair" {
		t.Fatalf("Alternative(%d) = %q, %t", id2, alt, ok)
	}
}

// Events returns a copy: mutating it must not corrupt the recorder.
func TestEventsReturnsCopy(t *testing.T) {
	r := New(LevelDecisions)
	r.Arrival(1, "human", "")
	evs := r.Events()
	evs[0].Kind = "mutated"
	if got := r.Events()[0].Kind; got != KindArrival {
		t.Fatalf("recorder state mutated through Events copy: %q", got)
	}
}

// The JSON form is the trace-file contract: compact keys, omitempty
// optionals, deterministic field order.
func TestEventJSONShape(t *testing.T) {
	e := Event{ID: 7, At: simclock.Time(90), Kind: KindDiagnose, Host: "h1", Aspect: "svc.db",
		Actor: "agent-x", Rule: "crashed", Detail: "service crashed", Action: "restart-service"}
	js, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"id":7,"at":90,"kind":"diagnose","host":"h1","aspect":"svc.db","actor":"agent-x","action":"restart-service","rule":"crashed","detail":"service crashed"}`
	if string(js) != want {
		t.Fatalf("event JSON:\n got %s\nwant %s", js, want)
	}
	var back Event
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, e) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, e)
	}
}
