// Package trace records the healing pipeline's decision points as a
// deterministic, seed-addressed structured event log: fault arrivals and
// injections, detections, diagnosis rule firings (with their evidence),
// repair actions, and operator page/dispatch events. Every event carries
// the simulated time, the host/tier/aspect it concerns and a stable
// monotonically-assigned ID, so a trace is byte-identical at any campaign
// worker and shard count and an individual decision can be addressed for
// replay or counterfactual re-simulation.
//
// The Recorder is nil-safe: every method has a nil-receiver fast path, so
// emission sites pay one pointer compare when tracing is off. Emission
// never draws randomness and never schedules events — a traced run's
// simulated behaviour is byte-identical to an untraced one.
package trace

import "repro/internal/simclock"

// Trace levels. LevelDecisions records every pipeline event;
// LevelFull additionally captures the diagnosing part's evidence lines on
// diagnose events (same event stream, same IDs — only the evidence field
// differs).
const (
	LevelOff       = 0
	LevelDecisions = 1
	LevelFull      = 2

	// MaxLevel bounds option validation.
	MaxLevel = LevelFull
)

// Event kinds, in pipeline order.
const (
	// KindArrival is a fault-campaign arrival: the moment the campaign
	// fires a category (possibly tier-scoped), before the injector picks a
	// target. Arrivals are the replay schedule: re-running them against
	// the same seed reproduces the recorded incident stream exactly.
	KindArrival = "arrival"
	// KindFault is a concrete injected fault registered on a host.
	KindFault = "fault"
	// KindDetect is a fault's first detection (actor: agent, probe or
	// operator).
	KindDetect = "detect"
	// KindResolve is a successful repair closing the incident.
	KindResolve = "resolve"
	// KindDiagnose is a diagnosing part's conclusion: the rule that fired,
	// the root cause and the prescribed action. Counterfactuals target
	// these events.
	KindDiagnose = "diagnose"
	// KindHeal is a self-healing attempt's outcome.
	KindHeal = "heal"
	// KindPage is the manual-operations detection page: the sampled delay
	// until an operator notices a fault.
	KindPage = "page"
	// KindDispatch is the manual repair dispatch: the sampled repair
	// delay, escalated or not.
	KindDispatch = "dispatch"
)

// Event is one recorded decision point. Fields are omitempty so the JSONL
// form stays compact; field order is the canonical serialisation order.
type Event struct {
	ID       int           `json:"id"`
	At       simclock.Time `json:"at"`
	Kind     string        `json:"kind"`
	Category string        `json:"cat,omitempty"`
	Tier     string        `json:"tier,omitempty"`
	Host     string        `json:"host,omitempty"`
	Aspect   string        `json:"aspect,omitempty"`
	// Actor is who acted: an agent name, "probe", "operator", ...
	Actor string `json:"actor,omitempty"`
	// Action is the prescribed or attempted repair action.
	Action string `json:"action,omitempty"`
	// Rule is the diagnosis rule that fired ("" when no rule matched).
	Rule   string `json:"rule,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Evidence holds the diagnosing part's evidence lines (LevelFull).
	Evidence []string `json:"evidence,omitempty"`
	// Delay is the sampled operator delay on page/dispatch events.
	Delay simclock.Time `json:"delay,omitempty"`
	// Escalated marks an escalated dispatch or an escalating heal result.
	Escalated bool `json:"escalated,omitempty"`
	Healed    bool `json:"healed,omitempty"`
	Deferred  bool `json:"deferred,omitempty"`
}

// Counterfactual overrides one recorded diagnose decision during a
// replay: when the diagnose event with EventID is re-emitted, the healing
// part runs Action instead of the recorded prescription. The override
// applies once; everything after it is the alternative trajectory.
type Counterfactual struct {
	EventID int
	Action  string
}

// Recorder accumulates one trial's events. All emission points run
// serially inside simulation event callbacks (shard-prepared work replays
// its apply phase at the tick barrier), so no locking is needed; IDs are
// assigned in emission order, 1-based per trial.
type Recorder struct {
	level  int
	events []Event
	tierOf func(host string) string
	cf     *Counterfactual
	cfUsed bool
}

// New returns a recorder at the given level, or nil when the level
// disables tracing — callers thread the nil straight through to the
// emission sites, whose nil-receiver fast path makes disabled tracing
// free.
func New(level int) *Recorder {
	if level <= LevelOff {
		return nil
	}
	return &Recorder{level: level}
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil && r.level > LevelOff }

// Level reports the recorder's trace level (LevelOff for nil).
func (r *Recorder) Level() int {
	if r == nil {
		return LevelOff
	}
	return r.level
}

// WantEvidence reports whether diagnose events should carry evidence
// lines (LevelFull).
func (r *Recorder) WantEvidence() bool { return r != nil && r.level >= LevelFull }

// SetTierOf installs the host→tier resolver used to stamp events whose
// emission site only knows the host name.
func (r *Recorder) SetTierOf(fn func(host string) string) {
	if r != nil {
		r.tierOf = fn
	}
}

// SetCounterfactual arms a one-shot decision override (see
// Counterfactual). Must be called on a non-nil recorder.
func (r *Recorder) SetCounterfactual(cf Counterfactual) {
	r.cf = &cf
	r.cfUsed = false
}

// Alternative reports the armed counterfactual action when id names the
// overridden decision, at most once per run. id 0 (the disabled-tracing
// Diagnose return) never matches.
func (r *Recorder) Alternative(id int) (string, bool) {
	if r == nil || r.cf == nil || r.cfUsed || id == 0 || id != r.cf.EventID {
		return "", false
	}
	r.cfUsed = true
	return r.cf.Action, true
}

// Reset drops every recorded event and re-arms any counterfactual,
// returning the recorder to its post-New state — the trial-reuse hook
// Site.Reset calls.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
	r.cfUsed = false
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	if r == nil || len(r.events) == 0 {
		return nil
	}
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// emit assigns the next ID, resolves the tier when only the host is
// known, and appends. Emission is a pure slice append: no randomness, no
// scheduling, no I/O.
func (r *Recorder) emit(e Event) int {
	e.ID = len(r.events) + 1
	if e.Tier == "" && e.Host != "" && r.tierOf != nil {
		e.Tier = r.tierOf(e.Host)
	}
	r.events = append(r.events, e)
	return e.ID
}

// Arrival records a fault-campaign arrival (tier "" = site-wide).
func (r *Recorder) Arrival(at simclock.Time, category, tier string) {
	if r == nil {
		return
	}
	r.emit(Event{At: at, Kind: KindArrival, Category: category, Tier: tier})
}

// Fault records a concrete injected fault.
func (r *Recorder) Fault(at simclock.Time, category, host, aspect, detail string) {
	if r == nil {
		return
	}
	r.emit(Event{At: at, Kind: KindFault, Category: category, Host: host, Aspect: aspect, Detail: detail})
}

// Detect records a fault's first detection.
func (r *Recorder) Detect(at simclock.Time, host, aspect, by string) {
	if r == nil {
		return
	}
	r.emit(Event{At: at, Kind: KindDetect, Host: host, Aspect: aspect, Actor: by})
}

// Resolve records a successful repair.
func (r *Recorder) Resolve(at simclock.Time, host, aspect, by string) {
	if r == nil {
		return
	}
	r.emit(Event{At: at, Kind: KindResolve, Host: host, Aspect: aspect, Actor: by})
}

// Diagnose records a diagnosing part's conclusion and returns the event
// ID (0 when tracing is off) so the caller can consult Alternative.
func (r *Recorder) Diagnose(at simclock.Time, actor, host, aspect, rule, cause, action string, evidence []string) int {
	if r == nil {
		return 0
	}
	return r.emit(Event{At: at, Kind: KindDiagnose, Host: host, Aspect: aspect,
		Actor: actor, Rule: rule, Detail: cause, Action: action, Evidence: evidence})
}

// Heal records a self-healing attempt's outcome.
func (r *Recorder) Heal(at simclock.Time, actor, host, aspect, action, detail string, healed, deferred, escalated bool) {
	if r == nil {
		return
	}
	r.emit(Event{At: at, Kind: KindHeal, Host: host, Aspect: aspect, Actor: actor,
		Action: action, Detail: detail, Healed: healed, Deferred: deferred, Escalated: escalated})
}

// Page records the manual-operations detection page and its sampled
// delay.
func (r *Recorder) Page(at simclock.Time, category, host, aspect string, delay simclock.Time) {
	if r == nil {
		return
	}
	r.emit(Event{At: at, Kind: KindPage, Category: category, Host: host, Aspect: aspect,
		Actor: "operator", Delay: delay})
}

// Dispatch records the manual repair dispatch, its sampled delay and
// whether it took the escalated expert path.
func (r *Recorder) Dispatch(at simclock.Time, category, host, aspect string, delay simclock.Time, escalated bool) {
	if r == nil {
		return
	}
	r.emit(Event{At: at, Kind: KindDispatch, Category: category, Host: host, Aspect: aspect,
		Actor: "operator", Delay: delay, Escalated: escalated})
}
