// Package heal provides the repair actions the intelliagents' self-healing
// parts prescribe (§3.3, §3.4): restarting services in dependency order,
// killing hung or runaway processes, rebooting hosts, and "ensure-fixed"
// closures that make fault-registry repairs idempotent.
package heal

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// RestartService stops the service if needed and starts it again. onUp is
// called when the service is running (after its startup time). It returns
// an error when the restart cannot even begin (host down).
func RestartService(sim *simclock.Sim, s *svc.Service, onUp func(now simclock.Time)) error {
	switch s.State() {
	case svc.StateRunning, svc.StateDegraded:
		s.Stop()
	case svc.StateHung:
		// Kill the hung processes before restarting.
		s.Stop()
	case svc.StateStarting:
		// Already on its way; piggyback on the existing start by polling
		// (cheap: one event at startup-time granularity).
		sim.After(s.Spec.StartupTime, "heal-wait:"+s.Spec.Name, func(now simclock.Time) {
			if s.Running() && onUp != nil {
				onUp(now)
			}
		})
		return nil
	}
	if err := s.Start(onUp); err != nil {
		return fmt.Errorf("heal: restart %s: %w", s.Spec.Name, err)
	}
	s.Restarts++
	return nil
}

// RestartStack restarts a service and then every registered dependent that
// is not running, in dependency order — the paper's "ensuring that all
// service components are available in the sequence they are meant to be".
func RestartStack(sim *simclock.Sim, dir *svc.Directory, root *svc.Service, onAllUp func(now simclock.Time)) error {
	order, err := dir.StartOrder()
	if err != nil {
		return err
	}
	// Collect root plus transitive dependents, preserving start order.
	affected := map[string]bool{root.Spec.Name: true}
	for _, s := range order {
		for _, dep := range s.Spec.DependsOn {
			if affected[dep] {
				affected[s.Spec.Name] = true
			}
		}
	}
	var toStart []*svc.Service
	for _, s := range order {
		if !affected[s.Spec.Name] {
			continue
		}
		// The root restarts even when merely degraded (partial component
		// failure); healthy dependents are left alone.
		if s == root && s.State() != svc.StateRunning {
			toStart = append(toStart, s)
		} else if s != root && !s.Running() {
			toStart = append(toStart, s)
		}
	}
	if len(toStart) == 0 {
		if onAllUp != nil {
			onAllUp(sim.Now())
		}
		return nil
	}
	remaining := len(toStart)
	for _, s := range toStart {
		err := RestartService(sim, s, func(now simclock.Time) {
			remaining--
			if remaining == 0 && onAllUp != nil {
				onAllUp(now)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// KillProcess kills one process by PID, reporting success.
func KillProcess(h *cluster.Host, pid int) bool { return h.Kill(pid) }

// KillByName kills every process with the given name; it returns the count
// killed (the fix for runaway user processes the performance agents find).
func KillByName(h *cluster.Host, name string) int {
	n := 0
	for _, p := range h.PGrep(name) {
		if h.Kill(p.PID) {
			n++
		}
	}
	return n
}

// RebootHost boots a down host and restarts the given services when it
// comes up. Hosts with hardware faults do not boot; the caller must check.
func RebootHost(sim *simclock.Sim, h *cluster.Host, bootTime simclock.Time, services []*svc.Service, onUp func(now simclock.Time)) {
	if h.Up() {
		h.Crash()
	}
	h.Boot(bootTime, func(now simclock.Time) {
		remaining := len(services)
		if remaining == 0 {
			if onUp != nil {
				onUp(now)
			}
			return
		}
		for _, s := range services {
			_ = RestartService(sim, s, func(now2 simclock.Time) {
				remaining--
				if remaining == 0 && onUp != nil {
					onUp(now2)
				}
			})
		}
	})
}

// EnsureServiceRunning returns an idempotent repair closure for the fault
// registry: true when the service is already running; otherwise it performs
// an immediate (manual-path) restart and reports true. Manual repairs
// resolve at the moment the operator finishes, so the restart is applied
// instantaneously at resolution time — the hours of delay live in the
// operator model, not here.
func EnsureServiceRunning(sim *simclock.Sim, s *svc.Service) func(now simclock.Time) bool {
	return func(now simclock.Time) bool {
		if s.Running() {
			return true
		}
		if !s.Host.Up() {
			return false
		}
		// Manual fix: bring it straight up (operator already spent the
		// repair delay working on it).
		s.Stop()
		if err := s.Start(nil); err != nil {
			return false
		}
		s.ForceRunning(now)
		return true
	}
}

// EnsureHostUp returns an idempotent repair closure that repairs hardware
// and boots the host instantly at resolution time, then force-starts the
// given services.
func EnsureHostUp(sim *simclock.Sim, h *cluster.Host, services []*svc.Service) func(now simclock.Time) bool {
	return func(now simclock.Time) bool {
		if !h.Up() {
			h.RepairHardware()
			h.ForceUp(now)
		}
		for _, s := range services {
			if !s.Running() {
				s.Stop()
				if s.Start(nil) == nil {
					s.ForceRunning(now)
				}
			}
		}
		return h.Up()
	}
}
