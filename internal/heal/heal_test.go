package heal

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/simclock"
	"repro/internal/svc"
)

type rig struct {
	sim  *simclock.Sim
	host *cluster.Host
	dir  *svc.Directory
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sim := simclock.New(5)
	return &rig{
		sim:  sim,
		host: cluster.NewHost(sim, "db001", "10.0.0.1", cluster.ModelE4500, cluster.RoleDatabase, "london", "UK"),
		dir:  svc.NewDirectory(),
	}
}

func (r *rig) service(t *testing.T, spec svc.Spec, start bool) *svc.Service {
	t.Helper()
	s, err := svc.New(r.sim, spec, r.host)
	if err != nil {
		t.Fatal(err)
	}
	r.dir.Add(s)
	if start {
		s.Start(nil)
		r.sim.RunUntil(r.sim.Now() + 10*simclock.Minute)
		if !s.Running() {
			t.Fatal("service did not start")
		}
	}
	return s
}

func TestRestartCrashedService(t *testing.T) {
	r := newRig(t)
	s := r.service(t, svc.OracleSpec("ORA-01", 1521), true)
	s.Crash()
	var upAt simclock.Time
	if err := RestartService(r.sim, s, func(now simclock.Time) { upAt = now }); err != nil {
		t.Fatal(err)
	}
	start := r.sim.Now()
	r.sim.RunUntil(start + 10*simclock.Minute)
	if !s.Running() {
		t.Fatalf("state = %v", s.State())
	}
	if upAt != start+s.Spec.StartupTime {
		t.Errorf("onUp at %v, want %v", upAt, start+s.Spec.StartupTime)
	}
	if s.Restarts != 1 {
		t.Errorf("restarts = %d", s.Restarts)
	}
}

func TestRestartHungService(t *testing.T) {
	r := newRig(t)
	s := r.service(t, svc.OracleSpec("ORA-01", 1521), true)
	s.Hang()
	if err := RestartService(r.sim, s, nil); err != nil {
		t.Fatal(err)
	}
	r.sim.RunUntil(r.sim.Now() + 10*simclock.Minute)
	if !s.Running() {
		t.Fatalf("state = %v", s.State())
	}
	if r.host.PGrep("ora_pmon")[0].State != cluster.ProcRunning {
		t.Error("restarted processes should be running, not hung")
	}
}

func TestRestartRunningServiceBounces(t *testing.T) {
	r := newRig(t)
	s := r.service(t, svc.OracleSpec("ORA-01", 1521), true)
	if err := RestartService(r.sim, s, nil); err != nil {
		t.Fatal(err)
	}
	if s.State() != svc.StateStarting {
		t.Errorf("bounce should pass through starting: %v", s.State())
	}
	r.sim.RunUntil(r.sim.Now() + 10*simclock.Minute)
	if !s.Running() {
		t.Error("bounced service should come back")
	}
}

func TestRestartWhileStartingWaits(t *testing.T) {
	r := newRig(t)
	s := r.service(t, svc.OracleSpec("ORA-01", 1521), false)
	s.Start(nil)
	called := false
	if err := RestartService(r.sim, s, func(simclock.Time) { called = true }); err != nil {
		t.Fatal(err)
	}
	r.sim.RunUntil(r.sim.Now() + 10*simclock.Minute)
	if !s.Running() || !called {
		t.Errorf("running=%v onUp=%v", s.Running(), called)
	}
}

func TestRestartOnDownHostErrors(t *testing.T) {
	r := newRig(t)
	s := r.service(t, svc.OracleSpec("ORA-01", 1521), true)
	r.host.Crash()
	if err := RestartService(r.sim, s, nil); err == nil {
		t.Error("restart on a dead host should error")
	}
}

func TestRestartStack(t *testing.T) {
	r := newRig(t)
	db := r.service(t, svc.OracleSpec("DB", 1521), true)
	web := r.service(t, svc.WebSpec("WEB", 80), true)
	fe := r.service(t, svc.FrontEndSpec("FE", 8080, "DB", "WEB"), true)
	// DB crash takes the front-end's dependency away.
	db.Crash()
	fe.Crash()
	var doneAt simclock.Time
	if err := RestartStack(r.sim, r.dir, db, func(now simclock.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	r.sim.RunUntil(r.sim.Now() + 30*simclock.Minute)
	if !db.Running() || !fe.Running() || !web.Running() {
		t.Fatalf("states: db=%v fe=%v web=%v", db.State(), fe.State(), web.State())
	}
	if doneAt == 0 {
		t.Error("onAllUp not called")
	}
}

func TestRestartStackAllHealthyCallsBack(t *testing.T) {
	r := newRig(t)
	db := r.service(t, svc.OracleSpec("DB", 1521), true)
	called := false
	if err := RestartStack(r.sim, r.dir, db, func(simclock.Time) { called = true }); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("healthy stack should call back immediately")
	}
}

func TestKillByName(t *testing.T) {
	r := newRig(t)
	r.host.Spawn("runaway", "analyst", "", 6, 100)
	r.host.Spawn("runaway", "analyst", "", 6, 100)
	r.host.Spawn("innocent", "analyst", "", 0.1, 10)
	if n := KillByName(r.host, "runaway"); n != 2 {
		t.Errorf("killed %d", n)
	}
	if len(r.host.PGrep("innocent")) != 1 {
		t.Error("innocent process killed")
	}
	if KillByName(r.host, "runaway") != 0 {
		t.Error("second sweep should kill nothing")
	}
}

func TestKillProcess(t *testing.T) {
	r := newRig(t)
	p := r.host.Spawn("x", "u", "", 0, 1)
	if !KillProcess(r.host, p.PID) || KillProcess(r.host, p.PID) {
		t.Error("KillProcess semantics broken")
	}
}

func TestRebootHost(t *testing.T) {
	r := newRig(t)
	s := r.service(t, svc.OracleSpec("ORA-01", 1521), true)
	r.host.Crash()
	var upAt simclock.Time
	RebootHost(r.sim, r.host, 5*simclock.Minute, []*svc.Service{s}, func(now simclock.Time) { upAt = now })
	r.sim.RunUntil(r.sim.Now() + 30*simclock.Minute)
	if !r.host.Up() || !s.Running() {
		t.Fatalf("host=%v svc=%v", r.host.State(), s.State())
	}
	if upAt == 0 {
		t.Error("onUp not called")
	}
}

func TestEnsureServiceRunning(t *testing.T) {
	r := newRig(t)
	s := r.service(t, svc.OracleSpec("ORA-01", 1521), true)
	fix := EnsureServiceRunning(r.sim, s)
	if !fix(r.sim.Now()) {
		t.Error("already-running service should report fixed")
	}
	s.Crash()
	if !fix(r.sim.Now()) {
		t.Error("manual fix should succeed")
	}
	if !s.Running() {
		t.Errorf("state after manual fix = %v (instant)", s.State())
	}
	r.host.Crash()
	if fix(r.sim.Now()) {
		t.Error("fix on dead host should fail")
	}
}

func TestEnsureHostUp(t *testing.T) {
	r := newRig(t)
	s := r.service(t, svc.OracleSpec("ORA-01", 1521), true)
	r.host.HardwareFail()
	fix := EnsureHostUp(r.sim, r.host, []*svc.Service{s})
	if !fix(r.sim.Now()) {
		t.Error("hardware repair should succeed")
	}
	if !r.host.Up() || !s.Running() {
		t.Errorf("host=%v svc=%v", r.host.State(), s.State())
	}
	if !fix(r.sim.Now()) {
		t.Error("idempotent fix should keep reporting true")
	}
}
