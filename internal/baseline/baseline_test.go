package baseline

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/notify"
	"repro/internal/simclock"
	"repro/internal/svc"
)

func newHost(sim *simclock.Sim) *cluster.Host {
	return cluster.NewHost(sim, "db001", "10.0.0.1", cluster.ModelE4500, cluster.RoleDatabase, "london", "UK")
}

func TestResidentDaemon(t *testing.T) {
	sim := simclock.New(31)
	h := newHost(sim)
	m := Install(sim, h, DefaultFootprint(), nil, "", 5*simclock.Minute, nil)
	if !m.Resident() {
		t.Fatal("daemon should be resident immediately")
	}
	if len(h.PGrep("bmcpatrol")) != 1 {
		t.Error("bmcpatrol missing from process table")
	}
	sim.RunUntil(simclock.Hour)
	if !m.Resident() {
		t.Error("daemon should stay resident — that is the point")
	}
}

func TestFootprintGrowsWithLoad(t *testing.T) {
	sim := simclock.New(31)
	h := newHost(sim)
	m := Install(sim, h, DefaultFootprint(), nil, "", 5*simclock.Minute, nil)
	sim.RunUntil(simclock.Hour)
	idleCPU, idleMem := m.CPUPercent(), m.MemMB()
	h.Spawn("busywork", "analyst1", "", 6.5, 1000)
	sim.RunUntil(2 * simclock.Hour)
	busyCPU, busyMem := m.CPUPercent(), m.MemMB()
	if busyCPU <= idleCPU {
		t.Errorf("CPU should grow with load: idle=%.3f busy=%.3f", idleCPU, busyCPU)
	}
	if busyMem <= idleMem {
		t.Errorf("memory should grow with load: idle=%.1f busy=%.1f", idleMem, busyMem)
	}
	// Paper ranges at peak: CPU up to ~1.1%, memory up to ~58 MB.
	if busyCPU < 0.3 || busyCPU > 1.5 {
		t.Errorf("busy CPU%% = %.3f, want within Figure 3's ballpark", busyCPU)
	}
	if busyMem < 30 || busyMem > 70 {
		t.Errorf("busy mem = %.1f MB, want within Figure 4's ballpark", busyMem)
	}
}

func TestAlertsOnFailedProbe(t *testing.T) {
	sim := simclock.New(31)
	h := newHost(sim)
	dir := svc.NewDirectory()
	s, _ := svc.New(sim, svc.OracleSpec("ORA-01", 1521), h)
	dir.Add(s)
	s.Start(nil)
	sim.RunUntil(10 * simclock.Minute)
	bus := notify.NewBus(sim)
	m := Install(sim, h, DefaultFootprint(), bus, "console@noc", 5*simclock.Minute, dir)
	sim.RunUntil(sim.Now() + 20*simclock.Minute)
	if m.Alerts != 0 {
		t.Fatalf("healthy service alerted %d times", m.Alerts)
	}
	s.Crash()
	sim.RunUntil(sim.Now() + 11*simclock.Minute)
	if m.Alerts == 0 {
		t.Error("crashed service should raise console alerts")
	}
	if bus.CountByTag("bmc-alert") == 0 {
		t.Error("console notification missing")
	}
}

func TestDaemonDiesWithHostAndRespawns(t *testing.T) {
	sim := simclock.New(31)
	h := newHost(sim)
	m := Install(sim, h, DefaultFootprint(), nil, "", 5*simclock.Minute, nil)
	h.Crash()
	sim.RunUntil(sim.Now() + 6*simclock.Minute)
	if m.Resident() || m.CPUPercent() != 0 || m.MemMB() != 0 {
		t.Error("daemon should be gone with its host")
	}
	h.Boot(simclock.Minute, nil)
	sim.RunUntil(sim.Now() + 10*simclock.Minute)
	if !m.Resident() {
		t.Error("daemon should respawn when the host returns")
	}
}

func TestStop(t *testing.T) {
	sim := simclock.New(31)
	h := newHost(sim)
	m := Install(sim, h, DefaultFootprint(), nil, "", 5*simclock.Minute, nil)
	m.Stop()
	if m.Resident() || len(h.PGrep("bmcpatrol")) != 0 {
		t.Error("Stop should remove the daemon")
	}
}
