// Package baseline models the commercial monitoring the paper's customer
// ran before the intelliagents: a BMC Patrol / SystemEdge-style agent that
// is memory resident, polls continuously, notifies operator consoles when
// thresholds trip — and repairs nothing ("to our knowledge, there are no
// commercial tools that automatically correct performance problems", §2).
//
// Its purpose in the reproduction is twofold: it is the overhead comparator
// of Figures 3 and 4, and it is the detection front-end of the manual
// operations pipeline in the "before" year.
package baseline

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/notify"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// Footprint parameterises the resident daemon's cost. The defaults
// reproduce the ranges the paper measured on a production server at peak
// times: CPU 0.17–1.1% of the system, memory 32–58 MB, both growing with
// system activity (a busier box means more events, bigger object caches
// and more console traffic for a resident monitor).
type Footprint struct {
	CPUBasePct float64 // CPU % of the whole system at idle
	CPUSlope   float64 // extra CPU % per unit of host utilisation
	MemBaseMB  float64
	MemSlopeMB float64 // extra MB per unit of host utilisation
	NoiseFrac  float64 // multiplicative jitter on each sample
}

// DefaultFootprint returns the Figure 3/4 calibration.
func DefaultFootprint() Footprint {
	return Footprint{
		CPUBasePct: 0.17,
		CPUSlope:   0.95,
		MemBaseMB:  32,
		MemSlopeMB: 26,
		NoiseFrac:  0.12,
	}
}

// Monitor is one host's resident commercial monitoring agent.
type Monitor struct {
	sim  *simclock.Sim
	rng  *simclock.Rand
	host *cluster.Host
	fp   Footprint
	bus  *notify.Bus
	cons string // console address for notifications

	proc   *cluster.Process
	ticker *simclock.Ticker

	// Alerts counts threshold notifications raised.
	Alerts int
	// lastCPU/lastMem hold the most recent sampled footprint.
	lastCPU float64
	lastMem float64
}

// Install starts the resident daemon on the host and begins polling every
// pollEvery. Services, if non-nil, are probed each poll; failed probes
// raise console alerts (detection is then up to the humans watching).
func Install(sim *simclock.Sim, host *cluster.Host, fp Footprint, bus *notify.Bus,
	console string, pollEvery simclock.Time, services *svc.Directory) *Monitor {
	m := &Monitor{
		sim: sim, rng: sim.Rand().Fork(0xb3c), host: host, fp: fp,
		bus: bus, cons: console,
	}
	m.spawn()
	m.ticker = sim.Every(sim.Now()+pollEvery, pollEvery, "bmc-poll:"+host.Name, func(now simclock.Time) {
		m.poll(now, services)
	})
	return m
}

// spawn creates the resident process at the idle footprint.
func (m *Monitor) spawn() {
	if !m.host.Up() {
		return
	}
	m.lastCPU = m.fp.CPUBasePct
	m.lastMem = m.fp.MemBaseMB
	m.proc = m.host.Spawn("bmcpatrol", "root", "/opt/bmc/bin/PatrolAgent",
		m.cpuDemand(m.lastCPU), m.lastMem)
}

// cpuDemand converts a whole-system percentage into CPUs-worth of demand.
func (m *Monitor) cpuDemand(pct float64) float64 {
	return pct / 100 * float64(m.host.Model.CPUs)
}

// poll refreshes the daemon's footprint from current activity and probes
// services. A resident monitor survives service crashes but dies with its
// host; it respawns when polling finds the host back up.
func (m *Monitor) poll(now simclock.Time, services *svc.Directory) {
	if !m.host.Up() {
		m.proc = nil
		return
	}
	if m.proc == nil || m.host.Proc(m.proc.PID) == nil {
		m.spawn()
		if m.proc == nil {
			return
		}
	}
	util := m.host.CPUUtilisation()
	// Subtract our own contribution so the footprint follows the *other*
	// work on the box rather than feeding back on itself.
	own := m.proc.CPUDemand / float64(m.host.Model.CPUs)
	if util > own {
		util -= own
	}
	noise := 1 + m.fp.NoiseFrac*(2*m.rng.Float64()-1)
	m.lastCPU = (m.fp.CPUBasePct + m.fp.CPUSlope*util) * noise
	m.lastMem = (m.fp.MemBaseMB + m.fp.MemSlopeMB*util) * noise
	m.host.SetProcDemand(m.proc, m.cpuDemand(m.lastCPU), m.lastMem)

	if services == nil {
		return
	}
	for _, s := range services.OnHost(m.host.Name) {
		if res := s.Probe(); !res.OK() {
			m.Alerts++
			if m.bus != nil && m.cons != "" {
				m.bus.Send(notify.Email, "bmc@"+m.host.Name, m.cons,
					fmt.Sprintf("ALERT %s on %s", s.Spec.Name, m.host.Name),
					res.Detail, "bmc-alert")
			}
		}
	}
}

// CPUPercent reports the daemon's current whole-system CPU share, the
// quantity Figure 3 plots.
func (m *Monitor) CPUPercent() float64 {
	if m.proc == nil {
		return 0
	}
	return m.lastCPU
}

// MemMB reports the daemon's resident memory, the quantity Figure 4 plots.
func (m *Monitor) MemMB() float64 {
	if m.proc == nil {
		return 0
	}
	return m.lastMem
}

// Resident reports whether the daemon process is alive.
func (m *Monitor) Resident() bool {
	return m.proc != nil && m.host.Proc(m.proc.PID) != nil
}

// Stop kills the daemon and its polling (scenario teardown / ablations).
func (m *Monitor) Stop() {
	m.ticker.Stop()
	if m.proc != nil {
		m.host.Kill(m.proc.PID)
		m.proc = nil
	}
}
