package faultinject

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

func TestRegistryLifecycle(t *testing.T) {
	led := metrics.NewLedger()
	r := NewRegistry(led)
	repaired := false
	f := r.Add(metrics.CatMidCrash, "db001", "service.ORA-01", "crash", false, simclock.Hour,
		func(simclock.Time) bool { repaired = true; return true })
	if r.OpenCount() != 1 || r.Find("db001", "service.ORA-01") != f {
		t.Fatal("registry lookup broken")
	}
	if r.Find("db001", "other") != nil || r.Find("nope", "service.ORA-01") != nil {
		t.Error("mismatched lookups should return nil")
	}
	r.Detected("db001", "service.ORA-01", simclock.Hour+5*simclock.Minute, "intelliagent")
	if !f.Incident.Detected || f.Incident.DetectedBy != "intelliagent" {
		t.Error("detection not recorded")
	}
	if !r.Resolve("db001", "service.ORA-01", simclock.Hour+10*simclock.Minute, "intelliagent") {
		t.Fatal("resolve failed")
	}
	if !repaired || !f.Incident.Resolved {
		t.Error("repair closure not run or incident open")
	}
	if r.OpenCount() != 0 {
		t.Error("fault should be closed")
	}
	if r.Resolve("db001", "service.ORA-01", 2*simclock.Hour, "x") {
		t.Error("double resolve should report false")
	}
}

func TestResolveFailsWhenRepairFails(t *testing.T) {
	r := NewRegistry(metrics.NewLedger())
	f := r.Add(metrics.CatHardware, "db001", "hardware", "cpu board", true, 0,
		func(simclock.Time) bool { return false })
	if r.Resolve("db001", "hardware", simclock.Hour, "intelliagent") {
		t.Error("resolve should fail when repair fails")
	}
	if f.Incident.Resolved || r.OpenCount() != 1 {
		t.Error("fault must stay open")
	}
}

func TestDetectedUnknownAspectIgnored(t *testing.T) {
	r := NewRegistry(metrics.NewLedger())
	r.Detected("ghost", "anything", simclock.Hour, "agent") // must not panic
}

func TestOpenOnOrderAndHosts(t *testing.T) {
	r := NewRegistry(metrics.NewLedger())
	r.Add(metrics.CatLSF, "b-host", "lsf", "", false, 0, nil)
	r.Add(metrics.CatHuman, "a-host", "config", "", false, simclock.Hour, nil)
	r.Add(metrics.CatLSF, "b-host", "lsf2", "", false, 2*simclock.Hour, nil)
	if got := r.OpenOn("b-host"); len(got) != 2 || got[0].Aspect != "lsf" {
		t.Errorf("OpenOn = %v", got)
	}
	if hosts := r.Hosts(); len(hosts) != 2 || hosts[0] != "a-host" {
		t.Errorf("Hosts = %v", hosts)
	}
}

func TestResolveFaultDirect(t *testing.T) {
	r := NewRegistry(metrics.NewLedger())
	f := r.Add(metrics.CatFrontEnd, "fe1", "service.FE-01", "", false, 0, nil)
	if !r.ResolveFault(f, simclock.Hour, "intelliagent") {
		t.Fatal("direct resolve failed")
	}
	if r.ResolveFault(f, 2*simclock.Hour, "x") {
		t.Error("double direct resolve should report false")
	}
	if r.ResolveFault(nil, 0, "x") {
		t.Error("nil fault should report false")
	}
}

func TestWindowContains(t *testing.T) {
	wedDay := 2*simclock.Day + 11*simclock.Hour
	wedNight := 2*simclock.Day + 23*simclock.Hour
	satDay := 5*simclock.Day + 11*simclock.Hour
	if !AnyTime.contains(wedDay) || !AnyTime.contains(wedNight) {
		t.Error("AnyTime should contain everything")
	}
	if !Daytime.contains(wedDay) || Daytime.contains(wedNight) || Daytime.contains(satDay) {
		t.Error("Daytime window wrong")
	}
	if !Overnight.contains(wedNight) || Overnight.contains(wedDay) {
		t.Error("Overnight window wrong")
	}
}

func TestCampaignRate(t *testing.T) {
	sim := simclock.New(42)
	var arrivals []simclock.Time
	c := NewCampaign(sim, func(cat metrics.Category, _ string, now simclock.Time) {
		arrivals = append(arrivals, now)
	})
	c.Start([]Spec{{Category: metrics.CatMidCrash, MeanInterarrival: simclock.Day, Window: AnyTime}})
	sim.RunUntil(100 * simclock.Day)
	n := len(arrivals)
	if n < 70 || n > 140 {
		t.Errorf("arrivals over 100 days with 1/day mean = %d", n)
	}
	if c.Injections(metrics.CatMidCrash) != n {
		t.Error("injection counter mismatch")
	}
}

func TestCampaignWindowBias(t *testing.T) {
	sim := simclock.New(7)
	inWindow, total := 0, 0
	c := NewCampaign(sim, func(cat metrics.Category, _ string, now simclock.Time) {
		total++
		if now.IsOvernight() {
			inWindow++
		}
	})
	c.Start([]Spec{{Category: metrics.CatMidCrash, MeanInterarrival: 12 * simclock.Hour, Window: Overnight}})
	sim.RunUntil(60 * simclock.Day)
	if total == 0 {
		t.Fatal("no arrivals")
	}
	frac := float64(inWindow) / float64(total)
	if frac < 0.95 {
		t.Errorf("only %.0f%% of overnight-biased faults fell overnight", frac*100)
	}
}

func TestCampaignZeroRateSkipped(t *testing.T) {
	sim := simclock.New(1)
	fired := false
	c := NewCampaign(sim, func(metrics.Category, string, simclock.Time) { fired = true })
	c.Start([]Spec{{Category: metrics.CatLSF, MeanInterarrival: 0}})
	sim.RunUntil(10 * simclock.Day)
	if fired {
		t.Error("zero-rate spec must not fire")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	run := func() []simclock.Time {
		sim := simclock.New(99)
		var arrivals []simclock.Time
		c := NewCampaign(sim, func(cat metrics.Category, _ string, now simclock.Time) { arrivals = append(arrivals, now) })
		c.Start([]Spec{
			{Category: metrics.CatMidCrash, MeanInterarrival: simclock.Day},
			{Category: metrics.CatHuman, MeanInterarrival: 2 * simclock.Day, Window: Daytime},
		})
		sim.RunUntil(30 * simclock.Day)
		return arrivals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

// TestCampaignDomainWeights pins the domain draw: arrivals split across
// tiers roughly by weight, and zero-weight tiers receive nothing.
func TestCampaignDomainWeights(t *testing.T) {
	sim := simclock.New(5)
	byTier := map[string]int{}
	c := NewCampaign(sim, func(cat metrics.Category, tier string, now simclock.Time) {
		byTier[tier]++
	})
	c.Start([]Spec{{
		Category: metrics.CatHuman, MeanInterarrival: 6 * simclock.Hour,
		Domains: []Domain{
			{Tier: "web", Weight: 3},
			{Tier: "db", Weight: 1},
			{Tier: "never", Weight: 0},
		},
	}})
	sim.RunUntil(200 * simclock.Day)
	if byTier["never"] != 0 {
		t.Errorf("zero-weight tier drew %d arrivals", byTier["never"])
	}
	if byTier[""] != 0 {
		t.Errorf("domain-scoped spec produced %d site-wide arrivals", byTier[""])
	}
	web, db := byTier["web"], byTier["db"]
	if db == 0 {
		t.Fatal("weight-1 tier starved entirely")
	}
	if ratio := float64(web) / float64(db); ratio < 2 || ratio > 4.5 {
		t.Errorf("3:1 weighting produced %d:%d (ratio %.2f)", web, db, ratio)
	}
	if got := c.TierInjections("web", metrics.CatHuman); got != web {
		t.Errorf("TierInjections(web) = %d, observed %d", got, web)
	}
}

// TestCampaignDomainBlackout: arrivals for a blacked-out domain slide
// past the window.
func TestCampaignDomainBlackout(t *testing.T) {
	sim := simclock.New(8)
	var arrivals []simclock.Time
	c := NewCampaign(sim, func(cat metrics.Category, tier string, now simclock.Time) {
		arrivals = append(arrivals, now)
	})
	c.Start([]Spec{{
		Category: metrics.CatLSF, MeanInterarrival: 8 * simclock.Hour,
		Domains: []Domain{{Tier: "frozen", Weight: 1, Blackouts: []Blackout{{From: 9, To: 17}}}},
	}})
	sim.RunUntil(120 * simclock.Day)
	if len(arrivals) == 0 {
		t.Fatal("no arrivals")
	}
	for _, at := range arrivals {
		if h := at.HourOfDay(); h >= 9 && h < 17 {
			t.Fatalf("arrival at %v falls in the 09-17 blackout (hour %d)", at, h)
		}
	}
}

// TestCampaignAllZeroDomainsSkipped: a spec whose domains all weigh zero
// never fires.
func TestCampaignAllZeroDomainsSkipped(t *testing.T) {
	sim := simclock.New(3)
	fired := false
	c := NewCampaign(sim, func(metrics.Category, string, simclock.Time) { fired = true })
	c.Start([]Spec{{
		Category: metrics.CatHuman, MeanInterarrival: simclock.Hour,
		Domains: []Domain{{Tier: "a", Weight: 0}, {Tier: "b", Weight: 0}},
	}})
	sim.RunUntil(30 * simclock.Day)
	if fired {
		t.Error("all-zero-weight spec fired")
	}
}

// TestBlackoutContainsWrap pins the hour window on both sides of
// midnight: {23, 1} must cover hour 23 and hour 0 only.
func TestBlackoutContainsWrap(t *testing.T) {
	b := Blackout{From: 23, To: 1}
	for h := 0; h < 24; h++ {
		at := simclock.Time(h)*simclock.Hour + 30*simclock.Minute
		want := h == 23 || h == 0
		if got := b.contains(at); got != want {
			t.Errorf("Blackout{23,1}.contains(hour %d) = %v, want %v", h, got, want)
		}
	}
	// Plain window for contrast, and the exact boundary instants: From is
	// inclusive, To exclusive, on the wrapped window too.
	day := Blackout{From: 9, To: 17}
	if !day.contains(9*simclock.Hour) || day.contains(17*simclock.Hour) {
		t.Error("Blackout{9,17} boundary handling wrong")
	}
	if !b.contains(23*simclock.Hour) || b.contains(1*simclock.Hour) {
		t.Error("Blackout{23,1} boundary handling wrong")
	}
	if !b.contains(24 * simclock.Hour) {
		t.Error("Blackout{23,1} must cover midnight itself (hour 0 of day 2)")
	}
}

// TestCampaignDomainBlackoutWrapsMidnight is the regression test for the
// midnight-wrapping blackout slide: a 23:00-01:00 blackout must suppress
// arrivals in hour 23 *and* hour 0 — both sides of the day boundary —
// across a long run with a high arrival rate.
func TestCampaignDomainBlackoutWrapsMidnight(t *testing.T) {
	sim := simclock.New(11)
	var arrivals []simclock.Time
	c := NewCampaign(sim, func(cat metrics.Category, tier string, now simclock.Time) {
		arrivals = append(arrivals, now)
	})
	c.Start([]Spec{{
		Category: metrics.CatMidCrash, MeanInterarrival: 3 * simclock.Hour,
		Domains: []Domain{{Tier: "db", Weight: 1, Blackouts: []Blackout{{From: 23, To: 1}}}},
	}})
	sim.RunUntil(365 * simclock.Day)
	if len(arrivals) < 1000 {
		t.Fatalf("only %d arrivals; rate too low to exercise the window", len(arrivals))
	}
	sides := map[int]bool{22: false, 1: false} // prove we brushed both edges
	for _, at := range arrivals {
		switch h := at.HourOfDay(); h {
		case 23, 0:
			t.Fatalf("arrival at %v falls in the 23:00-01:00 blackout (hour %d)", at, h)
		case 22, 1:
			sides[h] = true
		}
	}
	if !sides[22] || !sides[1] {
		t.Errorf("arrivals never landed adjacent to the blackout (22h: %v, 01h: %v); window may be over-wide",
			sides[22], sides[1])
	}
}
