// Package faultinject drives the reproduction's fault workload: the eight
// error categories of the paper's Figure 2 arrive as (window-biased)
// Poisson processes, each injection breaks something concrete in the
// simulated datacentre, and a registry ties every live fault to its ledger
// incident so that whoever notices it first — an intelliagent within one
// cron period, or a human hours later — is credited with the detection.
package faultinject

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Window biases fault arrivals into the day parts where the paper says they
// clustered: human errors during working hours, database mid-job crashes
// during the overnight batch window.
type Window int

// Arrival windows.
const (
	AnyTime Window = iota
	Daytime
	Overnight
)

func (w Window) String() string {
	switch w {
	case AnyTime:
		return "any"
	case Daytime:
		return "day"
	case Overnight:
		return "overnight"
	}
	return "?"
}

// contains reports whether t falls inside the window.
func (w Window) contains(t simclock.Time) bool {
	switch w {
	case Daytime:
		return !t.IsOvernight() && !t.IsWeekend()
	case Overnight:
		return t.IsOvernight()
	default:
		return true
	}
}

// Fault is one live injected fault.
type Fault struct {
	Incident *metrics.Incident
	Category metrics.Category
	Host     string
	Aspect   string // the aspect an agent finding will carry, e.g. "service.ORA-01"
	// HumanOnly marks faults agents cannot repair (firewall/network and
	// hardware errors, the paper's stated limitation).
	HumanOnly bool
	// Repair undoes the breakage; it reports whether the fix took. It must
	// be idempotent.
	Repair func(now simclock.Time) bool
	closed bool
}

func (f *Fault) String() string {
	return fmt.Sprintf("%s on %s (%s)", f.Category, f.Host, f.Aspect)
}

// Registry indexes live faults by host and aspect and keeps the ledger in
// step with detections and repairs.
type Registry struct {
	Ledger *metrics.Ledger
	open   map[string][]*Fault // host -> live faults
	// OnDetected, if set, fires at a live fault's first detection — the
	// scenario hook that starts the human repair clock for faults agents
	// cannot fix themselves.
	OnDetected func(f *Fault, now simclock.Time)
	// Trace, when non-nil, records fault/detect/resolve decision events.
	Trace *trace.Recorder
}

// NewRegistry returns a registry writing to the given ledger.
func NewRegistry(ledger *metrics.Ledger) *Registry {
	return &Registry{Ledger: ledger, open: make(map[string][]*Fault)}
}

// Reset drops every live fault, returning the registry to the state
// NewRegistry gives it. The OnDetected hook is kept: it is wired once per
// site and survives trial reuse. The ledger is reset separately by its
// owner.
func (r *Registry) Reset() {
	clear(r.open)
}

// Add registers a live fault and opens its incident.
func (r *Registry) Add(cat metrics.Category, host, aspect, detail string, humanOnly bool,
	now simclock.Time, repair func(now simclock.Time) bool) *Fault {
	f := &Fault{
		Incident:  r.Ledger.Open(cat, host, aspect, detail, now),
		Category:  cat,
		Host:      host,
		Aspect:    aspect,
		HumanOnly: humanOnly,
		Repair:    repair,
	}
	r.open[host] = append(r.open[host], f)
	r.Trace.Fault(now, string(cat), host, aspect, detail)
	return f
}

// Find returns the oldest live fault on host matching aspect, or nil.
func (r *Registry) Find(host, aspect string) *Fault {
	for _, f := range r.open[host] {
		if f.Aspect == aspect && !f.closed {
			return f
		}
	}
	return nil
}

// OpenOn returns all live faults on a host, oldest first.
func (r *Registry) OpenOn(host string) []*Fault {
	var out []*Fault
	for _, f := range r.open[host] {
		if !f.closed {
			out = append(out, f)
		}
	}
	return out
}

// OpenCount reports live faults across all hosts.
func (r *Registry) OpenCount() int {
	n := 0
	for _, fs := range r.open {
		for _, f := range fs {
			if !f.closed {
				n++
			}
		}
	}
	return n
}

// Hosts returns hosts with live faults, sorted.
func (r *Registry) Hosts() []string {
	var out []string
	for h, fs := range r.open {
		for _, f := range fs {
			if !f.closed {
				out = append(out, h)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Detected marks the matching fault's incident detected. Unknown aspects
// are ignored (agents may report symptoms of already-closed faults).
func (r *Registry) Detected(host, aspect string, now simclock.Time, by string) {
	if f := r.Find(host, aspect); f != nil {
		r.DetectFault(f, now, by)
	}
}

// DetectFault marks a specific live fault detected, firing OnDetected on
// the first detection.
func (r *Registry) DetectFault(f *Fault, now simclock.Time, by string) {
	if f == nil || f.closed || f.Incident.Detected {
		return
	}
	r.Trace.Detect(now, f.Host, f.Aspect, by)
	r.Ledger.Detect(f.Incident, now, by)
	if r.OnDetected != nil {
		r.OnDetected(f, now)
	}
}

// Resolve runs the fault's repair and, when it succeeds, closes the
// incident crediting the resolver. It reports whether a live fault matched
// and was repaired.
func (r *Registry) Resolve(host, aspect string, now simclock.Time, by string) bool {
	f := r.Find(host, aspect)
	if f == nil {
		return false
	}
	return r.resolveFault(f, now, by)
}

// ResolveFault closes a specific fault (used when the caller already holds
// it).
func (r *Registry) ResolveFault(f *Fault, now simclock.Time, by string) bool {
	if f == nil || f.closed {
		return false
	}
	return r.resolveFault(f, now, by)
}

func (r *Registry) resolveFault(f *Fault, now simclock.Time, by string) bool {
	if f.Repair != nil && !f.Repair(now) {
		return false
	}
	f.closed = true
	r.Trace.Resolve(now, f.Host, f.Aspect, by)
	r.Ledger.Resolve(f.Incident, now, by)
	// Compact the host slice lazily.
	live := f.Host
	fs := r.open[live][:0]
	for _, x := range r.open[live] {
		if !x.closed {
			fs = append(fs, x)
		}
	}
	r.open[live] = fs
	return true
}

// Blackout is a recurring daily hour window [From, To) during which a
// domain receives no fault arrivals; To <= From wraps past midnight, so
// {22, 6} covers the overnight hours.
type Blackout struct {
	From, To int
}

// contains reports whether t's hour of day falls inside the blackout.
func (b Blackout) contains(t simclock.Time) bool {
	h := t.HourOfDay()
	if b.From < b.To {
		return h >= b.From && h < b.To
	}
	return h >= b.From || h < b.To
}

func inBlackout(bs []Blackout, t simclock.Time) bool {
	for _, b := range bs {
		if b.contains(t) {
			return true
		}
	}
	return false
}

// Domain scopes a share of a spec's arrivals to one topology tier. Each
// arrival draws a domain with probability proportional to Weight, and the
// injector restricts the breakage to that tier's hosts. Blackouts slide
// arrivals that land inside them forward, like the spec's window bias.
type Domain struct {
	Tier      string
	Weight    float64
	Blackouts []Blackout
}

// Spec describes one category's arrival process. Domains, when non-empty,
// split the arrivals across tiers by weight; empty means site-wide — the
// pre-domain behaviour, byte-identical in event order and random-stream
// consumption.
type Spec struct {
	Category         metrics.Category
	MeanInterarrival simclock.Time
	Window           Window
	Domains          []Domain
}

// Campaign schedules arrivals for a set of specs and calls the scenario's
// injector for each. The injector owns the actual breakage and registry
// bookkeeping (it knows the datacentre); the campaign owns the clock and
// the domain draw. The injector's tier argument is "" for a site-wide
// arrival, else the tier the arrival must land on.
type Campaign struct {
	sim        *simclock.Sim
	rng        *simclock.Rand
	inject     func(cat metrics.Category, tier string, now simclock.Time)
	counts     map[metrics.Category]int
	tierCounts map[string]int // "tier/category" -> injections
	// Trace, when non-nil, records every arrival — the replay schedule.
	Trace *trace.Recorder
}

// NewCampaign returns a campaign using its own forked random stream.
func NewCampaign(sim *simclock.Sim, inject func(cat metrics.Category, tier string, now simclock.Time)) *Campaign {
	return &Campaign{
		sim:        sim,
		rng:        sim.Rand().Fork(0xfa01),
		inject:     inject,
		counts:     make(map[metrics.Category]int),
		tierCounts: make(map[string]int),
	}
}

// Injections reports how many faults of a category have been injected.
func (c *Campaign) Injections(cat metrics.Category) int { return c.counts[cat] }

// TierInjections reports how many of a category's faults were scoped to
// the named tier (zero for campaigns without domain-scoped specs).
func (c *Campaign) TierInjections(tier string, cat metrics.Category) int {
	return c.tierCounts[tier+"/"+string(cat)]
}

// Start schedules the first arrival of every spec. Arrivals repeat until
// the simulation ends. A domain-scoped spec whose weights are all zero is
// skipped entirely: its arrivals would have nowhere to land.
func (c *Campaign) Start(specs []Spec) {
	for _, s := range specs {
		if s.MeanInterarrival <= 0 {
			continue
		}
		if len(s.Domains) > 0 && !hasPositiveWeight(s.Domains) {
			continue
		}
		c.scheduleNext(s)
	}
}

func hasPositiveWeight(ds []Domain) bool {
	for _, d := range ds {
		if d.Weight > 0 {
			return true
		}
	}
	return false
}

func (c *Campaign) scheduleNext(s Spec) {
	gap := c.rng.ExpDuration(s.MeanInterarrival)
	at := c.sim.Now() + gap
	// Window bias: slide the arrival forward to the next in-window moment
	// (preserves the rate to first order while clustering occurrences).
	for i := 0; i < 48 && !s.Window.contains(at); i++ {
		at += simclock.Hour
	}
	tier := ""
	if len(s.Domains) > 0 {
		weights := make([]float64, len(s.Domains))
		for i, d := range s.Domains {
			weights[i] = d.Weight
		}
		// Start guarantees at least one positive weight, which is all
		// rng.Pick requires.
		d := s.Domains[c.rng.Pick(weights)]
		tier = d.Tier
		// Blackout bias: slide past the domain's blackout the same way.
		// (The slide can leave the spec's window — both are first-order
		// biases, and the blackout is the harder guarantee.)
		for i := 0; i < 48 && inBlackout(d.Blackouts, at); i++ {
			at += simclock.Hour
		}
	}
	c.sim.Schedule(at, "fault:"+string(s.Category), func(now simclock.Time) {
		c.Trace.Arrival(now, string(s.Category), tier)
		c.counts[s.Category]++
		if tier != "" {
			c.tierCounts[tier+"/"+string(s.Category)]++
		}
		c.inject(s.Category, tier, now)
		c.scheduleNext(s)
	})
}

// Arrival is one recorded campaign arrival: the replay schedule's unit.
// Re-firing a recorded run's arrivals at their recorded times, in the
// same per-category order, against the same seed reproduces the recorded
// incident stream exactly — the campaign's own forked random stream is
// isolated, so the skipped interarrival/domain draws are invisible to the
// rest of the simulation.
type Arrival struct {
	At       simclock.Time    `json:"at"`
	Category metrics.Category `json:"cat"`
	Tier     string           `json:"tier,omitempty"`
}

// StartScript drives the campaign from a recorded arrival schedule
// instead of the Poisson processes: each spec's arrivals fire at their
// recorded times with the recorded tier scoping, chaining one scheduled
// event per category at a time exactly like the live path so scheduling
// order (and therefore every same-time tie-break) matches the recorded
// run. Specs Start would skip are skipped here too; categories with no
// recorded arrivals schedule nothing.
func (c *Campaign) StartScript(specs []Spec, arrivals []Arrival) {
	byCat := make(map[metrics.Category][]Arrival)
	for _, a := range arrivals {
		byCat[a.Category] = append(byCat[a.Category], a)
	}
	// Iterate specs, not the map: Start's per-spec scheduling order is the
	// determinism contract.
	for _, s := range specs {
		if s.MeanInterarrival <= 0 {
			continue
		}
		if len(s.Domains) > 0 && !hasPositiveWeight(s.Domains) {
			continue
		}
		q := byCat[s.Category]
		if len(q) == 0 {
			continue
		}
		delete(byCat, s.Category) // a category appears in one spec at most once per run
		c.scheduleScripted(s.Category, q, 0)
	}
}

func (c *Campaign) scheduleScripted(cat metrics.Category, q []Arrival, i int) {
	a := q[i]
	c.sim.Schedule(a.At, "fault:"+string(cat), func(now simclock.Time) {
		c.Trace.Arrival(now, string(cat), a.Tier)
		c.counts[cat]++
		if a.Tier != "" {
			c.tierCounts[a.Tier+"/"+string(cat)]++
		}
		c.inject(cat, a.Tier, now)
		if i+1 < len(q) {
			c.scheduleScripted(cat, q, i+1)
		}
	})
}
