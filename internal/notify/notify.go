// Package notify simulates the email/SMS notification path the paper's
// agents and monitoring tools use to reach human administrators ("they
// notify human administrators, usually via email or SMS").
package notify

import (
	"fmt"

	"repro/internal/simclock"
)

// Channel is a delivery channel.
type Channel string

// Channels the paper mentions.
const (
	Email Channel = "email"
	SMS   Channel = "sms"
)

// Notification is one delivered message.
type Notification struct {
	At      simclock.Time
	Channel Channel
	From    string
	To      string
	Subject string
	Body    string
	Tag     string // machine-readable classification, e.g. "threshold-exceeded"
}

func (n Notification) String() string {
	return fmt.Sprintf("[%v] %s %s -> %s: %s", n.At, n.Channel, n.From, n.To, n.Subject)
}

// Bus records notifications and fans them out to subscribers (the operator
// model subscribes to react to pages).
type Bus struct {
	sim  *simclock.Sim
	sent []Notification
	subs []func(Notification)
}

// NewBus returns an empty bus.
func NewBus(sim *simclock.Sim) *Bus { return &Bus{sim: sim} }

// Reset drops all recorded notifications and subscribers, returning the
// bus to the state NewBus gives it. Site reuse calls this between trials.
func (b *Bus) Reset() {
	b.sent = b.sent[:0]
	b.subs = nil
}

// Subscribe registers a callback invoked for every future notification.
func (b *Bus) Subscribe(fn func(Notification)) { b.subs = append(b.subs, fn) }

// Send delivers a notification immediately (delivery latency is negligible
// against the paper's hour-scale dynamics).
func (b *Bus) Send(ch Channel, from, to, subject, body, tag string) Notification {
	n := Notification{
		At: b.sim.Now(), Channel: ch, From: from, To: to,
		Subject: subject, Body: body, Tag: tag,
	}
	b.sent = append(b.sent, n)
	for _, fn := range b.subs {
		fn(n)
	}
	return n
}

// History returns every notification sent so far.
func (b *Bus) History() []Notification { return b.sent }

// CountByTag reports how many notifications carry the given tag.
func (b *Bus) CountByTag(tag string) int {
	n := 0
	for _, x := range b.sent {
		if x.Tag == tag {
			n++
		}
	}
	return n
}

// Since returns notifications at or after t.
func (b *Bus) Since(t simclock.Time) []Notification {
	var out []Notification
	for _, x := range b.sent {
		if x.At >= t {
			out = append(out, x)
		}
	}
	return out
}
