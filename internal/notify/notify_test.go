package notify

import (
	"testing"

	"repro/internal/simclock"
)

func TestSendAndHistory(t *testing.T) {
	sim := simclock.New(1)
	b := NewBus(sim)
	sim.Schedule(simclock.Hour, "send", func(simclock.Time) {
		b.Send(Email, "intelliagent@db001", "oncall@site", "ORA-01 down", "restarting", "service-fault")
	})
	sim.Run()
	h := b.History()
	if len(h) != 1 {
		t.Fatalf("history = %d", len(h))
	}
	if h[0].At != simclock.Hour || h[0].Channel != Email || h[0].Tag != "service-fault" {
		t.Errorf("notification: %+v", h[0])
	}
}

func TestSubscribe(t *testing.T) {
	sim := simclock.New(1)
	b := NewBus(sim)
	var got []Notification
	b.Subscribe(func(n Notification) { got = append(got, n) })
	b.Send(SMS, "a", "b", "s", "", "page")
	if len(got) != 1 || got[0].Channel != SMS {
		t.Errorf("subscriber: %v", got)
	}
}

func TestCountByTagAndSince(t *testing.T) {
	sim := simclock.New(1)
	b := NewBus(sim)
	b.Send(Email, "a", "b", "x", "", "threshold")
	sim.Schedule(simclock.Hour, "later", func(simclock.Time) {
		b.Send(Email, "a", "b", "y", "", "threshold")
		b.Send(SMS, "a", "b", "z", "", "fault")
	})
	sim.Run()
	if b.CountByTag("threshold") != 2 || b.CountByTag("fault") != 1 || b.CountByTag("none") != 0 {
		t.Error("CountByTag broken")
	}
	if got := b.Since(simclock.Hour); len(got) != 2 {
		t.Errorf("Since = %d", len(got))
	}
}
