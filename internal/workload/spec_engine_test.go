package workload

import (
	"math"
	"testing"

	"repro/internal/simclock"
)

// TestDiurnalShapeBoundaries pins the shape at each piecewise boundary:
// the segments meet (to within the trading-day dip's e^-8 residue) at
// 06:00, 09:00, 17:00 and 22:00, and the weekend plateau matches the
// late-evening level so Friday night rolls into Saturday smoothly.
// Monday 00:00 steps 0.15 -> 0.05 by design (overnight quiet is deeper
// than weekend daytime); the test pins the step so it cannot drift.
func TestDiurnalShapeBoundaries(t *testing.T) {
	eps := simclock.Time(1) // one tick
	boundaries := []simclock.Time{
		6 * simclock.Hour, 9 * simclock.Hour, 17 * simclock.Hour, 22 * simclock.Hour,
	}
	for _, b := range boundaries {
		before, after := DiurnalShape(b-eps), DiurnalShape(b)
		if math.Abs(before-after) > 1e-3 {
			t.Errorf("shape jumps at %v: %v -> %v", b, before, after)
		}
	}
	// Friday 23:59 -> Saturday 00:00: both on the 0.15 plateau.
	fri := 5*simclock.Day - eps
	sat := 5 * simclock.Day
	if DiurnalShape(fri) != 0.15 || DiurnalShape(sat) != 0.15 {
		t.Errorf("weekend transition: fri=%v sat=%v, want 0.15 both sides",
			DiurnalShape(fri), DiurnalShape(sat))
	}
	// Sunday 23:59 -> Monday 00:00: the pinned step down into the
	// overnight trough.
	sun := 7*simclock.Day - eps
	mon := 7 * simclock.Day
	if DiurnalShape(sun) != 0.15 {
		t.Errorf("Sunday night = %v, want 0.15", DiurnalShape(sun))
	}
	if DiurnalShape(mon) != 0.05 {
		t.Errorf("Monday midnight = %v, want 0.05", DiurnalShape(mon))
	}
}

// TestShapedAmplitudeClamp: amplitudes above 1 exaggerate the swing and
// clamp at zero instead of going negative; 1 is bit-exact; 0 is flat.
func TestShapedAmplitudeClamp(t *testing.T) {
	if got := shaped(0.05, 2); got != 0 {
		t.Errorf("shaped(0.05, 2) = %v, want 0 (clamped)", got)
	}
	if got := shaped(0.5, 2); got != 0 {
		t.Errorf("shaped(0.5, 2) = %v, want 0 (exactly at the clamp)", got)
	}
	if got := shaped(0.9, 2); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("shaped(0.9, 2) = %v, want 0.8", got)
	}
	for _, s := range []float64{0, 0.05, 0.3333333, 1} {
		if got := shaped(s, 1); got != s {
			t.Errorf("shaped(%v, 1) = %v, want bit-exact pass-through", s, got)
		}
		if got := shaped(s, 0); got != 1 {
			t.Errorf("shaped(%v, 0) = %v, want flat 1", s, got)
		}
	}
}

// TestStopClearsTickers pins the Stop/Start/Stop cycle: Stop must clear
// the ticker slice so a restart registers each load source exactly once
// instead of double-appending (the old leak doubled interactive load
// refreshes and batch tickers on every restart).
func TestStopClearsTickers(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	base := len(r.gen.tickers)
	if base == 0 {
		t.Fatal("Start registered no tickers")
	}
	r.sim.RunUntil(simclock.Day)
	r.gen.Stop()
	if len(r.gen.tickers) != 0 {
		t.Fatalf("Stop left %d tickers registered", len(r.gen.tickers))
	}
	r.gen.Start()
	if len(r.gen.tickers) != base {
		t.Fatalf("restart registered %d tickers, want %d", len(r.gen.tickers), base)
	}
	r.sim.RunUntil(2 * simclock.Day)
	n := r.gen.JobsSubmitted
	r.gen.Stop()
	r.sim.RunUntil(3 * simclock.Day)
	if r.gen.JobsSubmitted != n {
		t.Error("generator kept submitting after the second Stop")
	}
}

// TestStopCancelsClassArrivals: in spec mode Stop must also cancel the
// pending per-class arrival events, or the chains keep submitting.
func TestStopCancelsClassArrivals(t *testing.T) {
	r := newRig(t)
	spec := PaperSpec()
	r.gen.SetSpec(&spec)
	r.gen.Start()
	r.sim.RunUntil(simclock.Day)
	if r.gen.JobsSubmitted == 0 {
		t.Fatal("spec-driven generator submitted nothing in a day")
	}
	r.gen.Stop()
	n := r.gen.JobsSubmitted
	r.sim.RunUntil(2 * simclock.Day)
	if r.gen.JobsSubmitted != n {
		t.Errorf("class chains kept submitting after Stop: %d -> %d", n, r.gen.JobsSubmitted)
	}
}

// crashAndRecover crashes tx1 mid-window and forces it back up, the
// sequence that loses feed load under the legacy one-shot path.
func crashAndRecover(r *rig, at simclock.Time) {
	r.sim.RunUntil(at)
	tx := r.dc.Host("tx1")
	tx.Crash()
	tx.ForceUp(r.sim.Now())
}

// TestFeedLoadRestoredAfterRecovery: with a workload spec installed, a
// transaction host that crashes and recovers gets its feed disk load
// back at the next refresh tick.
func TestFeedLoadRestoredAfterRecovery(t *testing.T) {
	r := newRig(t)
	spec := PaperSpec()
	r.gen.SetSpec(&spec)
	r.gen.Start()
	crashAndRecover(r, 4*simclock.Hour+1*simclock.Minute)
	if busy := r.dc.Host("tx1").IOStat().BusyPct; busy != 0 {
		t.Fatalf("crash should zero feed disk activity, got %v", busy)
	}
	// Past the next 15-minute refresh.
	r.sim.RunUntil(4*simclock.Hour + 31*simclock.Minute)
	if busy := r.dc.Host("tx1").IOStat().BusyPct; busy == 0 {
		t.Error("feed load not restored after recovery under a workload spec")
	}
}

// TestFeedLoadRestoredWithDomains: the fix also covers tier-domain
// sites (SetDomains without a spec), which share the refresh path.
func TestFeedLoadRestoredWithDomains(t *testing.T) {
	r := newRig(t)
	r.gen.SetDomains(map[string]string{"tx1": "feeds"},
		map[string]TierLoad{"feeds": {Share: 1, Batch: 1, Feed: 1, Amp: 1}})
	r.gen.Start()
	crashAndRecover(r, 4*simclock.Hour+1*simclock.Minute)
	r.sim.RunUntil(4*simclock.Hour + 31*simclock.Minute)
	if busy := r.dc.Host("tx1").IOStat().BusyPct; busy == 0 {
		t.Error("feed load not restored after recovery with domains installed")
	}
}

// TestLegacyFeedLoadStaysLost pins the historical behaviour the goldens
// depend on: without a spec or domains, recovered hosts stay feed-less.
func TestLegacyFeedLoadStaysLost(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	crashAndRecover(r, 4*simclock.Hour+1*simclock.Minute)
	r.sim.RunUntil(simclock.Day)
	if busy := r.dc.Host("tx1").IOStat().BusyPct; busy != 0 {
		t.Errorf("legacy path re-applied feed load (busy %v); goldens pin it lost", busy)
	}
}

// TestLowRateLegacyTruncatesToZero pins bugfix #3's two sides: the
// legacy hourly path floors int(rate·shape·jitter), so a sub-1/hour
// rate submits nothing, while a spec class at the same rate draws
// interarrival times and submits at its true long-run rate.
func TestLowRateLegacyTruncatesToZero(t *testing.T) {
	legacy := newRig(t)
	legacy.gen.cfg.DayJobsPerHour = 0.5
	legacy.gen.cfg.OvernightJobs = 0
	legacy.gen.Start()
	legacy.sim.RunUntil(4 * simclock.Day)
	if n := legacy.gen.JobsSubmitted; n != 0 {
		t.Errorf("legacy truncation submitted %d jobs at 0.5/hour; goldens pin 0", n)
	}

	spec := newRig(t)
	spec.gen.cfg.DayJobsPerHour = 0.5
	spec.gen.cfg.OvernightJobs = 0
	s := onePoisson("lowrate")
	spec.gen.SetSpec(&s)
	spec.gen.Start()
	spec.sim.RunUntil(4 * simclock.Day)
	if n := spec.gen.JobsSubmitted; n == 0 {
		t.Error("spec class submitted nothing at 0.5/hour; interarrival draws must not truncate")
	}
}

// TestSpecVolumeMatchesLegacy: the paper spec redistributes the same
// DayJobsPerHour the legacy generator offers, so week-scale submission
// totals must agree to well within 2x.
func TestSpecVolumeMatchesLegacy(t *testing.T) {
	legacy := newRig(t)
	legacy.gen.cfg.OvernightJobs = 0
	legacy.gen.Start()
	legacy.sim.RunUntil(7 * simclock.Day)

	spec := newRig(t)
	spec.gen.cfg.OvernightJobs = 0
	s := PaperSpec()
	spec.gen.SetSpec(&s)
	spec.gen.Start()
	spec.sim.RunUntil(7 * simclock.Day)

	l, p := legacy.gen.JobsSubmitted, spec.gen.JobsSubmitted
	if l == 0 || p == 0 {
		t.Fatalf("no jobs: legacy %d spec %d", l, p)
	}
	if ratio := float64(p) / float64(l); ratio < 0.5 || ratio > 2 {
		t.Errorf("spec volume %d vs legacy %d (ratio %.2f), want within 2x", p, l, ratio)
	}
}

// TestSpecDeterminism: two rigs with the same seed and spec replay the
// same submission count — per-class forked streams keep the engine on
// the campaign's byte-identity contract.
func TestSpecDeterminism(t *testing.T) {
	run := func() int {
		r := newRig(t)
		s := FlashCrowdSpec()
		r.gen.SetSpec(&s)
		r.gen.Start()
		r.sim.RunUntil(3 * simclock.Day)
		return r.gen.JobsSubmitted
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, same spec, different submissions: %d vs %d", a, b)
	}
	if a == 0 {
		t.Error("spec-driven generator submitted nothing")
	}
}

// TestFlashCrowdBoostsWindow: inside the morning-rush window the
// flash-crowd spec must submit measurably more than the plain paper
// spec, and nothing outside the window may differ in rate law.
func TestFlashCrowdBoostsWindow(t *testing.T) {
	inWindow := func(spec Spec) int {
		r := newRig(t)
		r.gen.cfg.OvernightJobs = 0
		r.gen.SetSpec(&spec)
		r.gen.Start()
		r.sim.RunUntil(simclock.Day + 9*simclock.Hour + 30*simclock.Minute)
		before := r.gen.JobsSubmitted
		r.sim.RunUntil(simclock.Day + 13*simclock.Hour + 30*simclock.Minute)
		return r.gen.JobsSubmitted - before
	}
	plain := inWindow(PaperSpec())
	surged := inWindow(FlashCrowdSpec())
	if surged <= plain {
		t.Errorf("flash crowd window submitted %d jobs vs %d plain; surge had no effect", surged, plain)
	}
}

// TestFlashCrowdBoostsAmbience: the crowd also hammers the front-end
// GUIs — ambience at the surge peak beats the plain spec's.
func TestFlashCrowdBoostsAmbience(t *testing.T) {
	ambience := func(spec Spec) float64 {
		r := newRig(t)
		r.gen.cfg.DayJobsPerHour = 0
		r.gen.cfg.OvernightJobs = 0
		r.gen.SetSpec(&spec)
		r.gen.Start()
		r.sim.RunUntil(simclock.Day + 11*simclock.Hour)
		return r.dc.Host("feA").CPUUtilisation()
	}
	plain := ambience(PaperSpec())
	surged := ambience(FlashCrowdSpec())
	if surged <= plain {
		t.Errorf("flash crowd ambience %v vs plain %v; surge had no effect", surged, plain)
	}
}

// TestSpecSurvivesReset: like the domains, the installed spec derives
// from the topology, so Reset keeps it and a restarted generator keeps
// running its classes.
func TestSpecSurvivesReset(t *testing.T) {
	r := newRig(t)
	s := PaperSpec()
	r.gen.SetSpec(&s)
	r.gen.Start()
	r.sim.RunUntil(simclock.Day)
	r.gen.Stop()
	r.gen.Reset(r.sim.Rand())
	if r.gen.Spec() == nil {
		t.Fatal("Reset dropped the workload spec")
	}
	before := r.gen.JobsSubmitted
	if before != 0 {
		t.Fatalf("Reset left JobsSubmitted at %d", before)
	}
	r.gen.Start()
	r.sim.RunUntil(2 * simclock.Day)
	if r.gen.JobsSubmitted == 0 {
		t.Error("restarted spec generator submitted nothing")
	}
}
