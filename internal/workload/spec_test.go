package workload

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/simclock"
)

// onePoisson is the minimal valid spec: one Poisson class carrying the
// whole submission rate.
func onePoisson(name string) Spec {
	return Spec{Name: name, Classes: []ClassSpec{{Name: "all", Share: 1, Process: ProcPoisson}}}
}

func TestSpecValidateRejects(t *testing.T) {
	amp := func(v float64) *float64 { return &v }
	mut := func(f func(*Spec)) Spec {
		s := onePoisson("t")
		f(&s)
		return s
	}
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"no name", mut(func(s *Spec) { s.Name = "" }), "no name"},
		{"separator in name", mut(func(s *Spec) { s.Name = "a,b" }), "separator"},
		{"no classes", mut(func(s *Spec) { s.Classes = nil }), "no classes"},
		{"unnamed class", mut(func(s *Spec) { s.Classes[0].Name = "" }), "class with no name"},
		{"duplicate class", mut(func(s *Spec) {
			s.Classes = []ClassSpec{
				{Name: "a", Share: 0.5, Process: ProcPoisson},
				{Name: "a", Share: 0.5, Process: ProcPoisson},
			}
		}), "duplicate class"},
		{"zero share", mut(func(s *Spec) { s.Classes[0].Share = 0 }), "share"},
		{"NaN share", mut(func(s *Spec) { s.Classes[0].Share = math.NaN() }), "share"},
		{"shares not summing", mut(func(s *Spec) { s.Classes[0].Share = 0.7 }), "sum to"},
		{"unknown process", mut(func(s *Spec) { s.Classes[0].Process = "pareto" }), "unknown process"},
		{"shape on poisson", mut(func(s *Spec) { s.Classes[0].Shape = 2 }), "no shape parameter"},
		{"gamma without shape", mut(func(s *Spec) { s.Classes[0].Process = ProcGamma }), "shape"},
		{"gamma huge shape", mut(func(s *Spec) { s.Classes[0].Process = ProcGamma; s.Classes[0].Shape = 1e6 }), "out of range"},
		{"burst without prob", mut(func(s *Spec) { s.Classes[0].Burst = 3 }), "set both or neither"},
		{"prob without burst", mut(func(s *Spec) { s.Classes[0].BurstProb = 0.5 }), "set both or neither"},
		{"prob above one", mut(func(s *Spec) { s.Classes[0].Burst = 3; s.Classes[0].BurstProb = 1.5 }), "burst_prob"},
		{"negative burst", mut(func(s *Spec) { s.Classes[0].Burst = -1 }), "burst"},
		{"amplitude above two", mut(func(s *Spec) { s.Classes[0].DiurnalAmplitude = amp(2.5) }), "diurnal_amplitude"},
		{"surge unknown kind", mut(func(s *Spec) {
			s.Surges = []SurgeSpec{{Name: "x", Kind: "tsunami", HoldHours: 1, Peak: 2}}
		}), "unknown kind"},
		{"surge no name", mut(func(s *Spec) {
			s.Surges = []SurgeSpec{{Kind: SurgeFlashCrowd, HoldHours: 1, Peak: 2}}
		}), "surge with no name"},
		{"surge empty window", mut(func(s *Spec) {
			s.Surges = []SurgeSpec{{Name: "x", Kind: SurgeFlashCrowd, Peak: 2}}
		}), "never opens"},
		{"surge peak below one", mut(func(s *Spec) {
			s.Surges = []SurgeSpec{{Name: "x", Kind: SurgeFlashCrowd, HoldHours: 1, Peak: 0.5}}
		}), "peak"},
		{"surge unknown class", mut(func(s *Spec) {
			s.Surges = []SurgeSpec{{Name: "x", Kind: SurgeFlashCrowd, HoldHours: 1, Peak: 2, Classes: []string{"ghost"}}}
		}), "unknown class"},
		{"surge onset hour 24", mut(func(s *Spec) {
			s.Surges = []SurgeSpec{{Name: "x", Kind: SurgeFlashCrowd, OnsetHour: 24, HoldHours: 1, Peak: 2}}
		}), "onset_hour"},
		{"surge negative onset day", mut(func(s *Spec) {
			s.Surges = []SurgeSpec{{Name: "x", Kind: SurgeFlashCrowd, OnsetDay: -1, HoldHours: 1, Peak: 2}}
		}), "onset_day"},
		{"surge window exceeds repeat", mut(func(s *Spec) {
			s.Surges = []SurgeSpec{{Name: "x", Kind: SurgeFlashCrowd, HoldHours: 30, Peak: 2, RepeatDays: 1}}
		}), "cannot repeat"},
		{"duplicate surge", mut(func(s *Spec) {
			s.Surges = []SurgeSpec{
				{Name: "x", Kind: SurgeFlashCrowd, HoldHours: 1, Peak: 2},
				{Name: "x", Kind: SurgeFailover, HoldHours: 1, Peak: 2},
			}
		}), "duplicate surge"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if err == nil {
				t.Fatalf("Validate accepted the %s spec", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestBuiltinSpecsRegistered(t *testing.T) {
	for _, name := range []string{"paper", "flashcrowd", "failover"} {
		s, ok := SpecByName(name)
		if !ok {
			t.Fatalf("built-in spec %q not registered (have %v)", name, SpecNames())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("built-in spec %q invalid: %v", name, err)
		}
	}
}

func TestLoadSpecRoundTrip(t *testing.T) {
	want := FlashCrowdSpec()
	raw, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	back, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(back) {
		t.Errorf("spec did not survive a JSON round trip:\n%s\nvs\n%s", raw, back)
	}
}

func TestLoadSpecStrict(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown field",
			`{"name":"x","classs":[{"name":"a","share":1,"process":"poisson"}]}`,
			"unknown field"},
		{"trailing data",
			`{"name":"x","classes":[{"name":"a","share":1,"process":"poisson"}]} {"again":true}`,
			"trailing data"},
		{"invalid spec",
			`{"name":"x","classes":[{"name":"a","share":0.4,"process":"poisson"}]}`,
			"sum to"},
		{"malformed json", `{"name":`, "decode"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := LoadSpec(strings.NewReader(c.doc))
			if err == nil {
				t.Fatalf("LoadSpec accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	raw, err := PaperSpec().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "paper" || len(s.Classes) != 3 {
		t.Errorf("loaded spec %q with %d classes", s.Name, len(s.Classes))
	}
	if _, err := LoadSpecFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadSpecFile accepted a missing file")
	}
}

func TestRegisterSpecRejectsInvalid(t *testing.T) {
	if err := RegisterSpec(Spec{Name: "broken"}); err == nil {
		t.Fatal("RegisterSpec accepted a spec with no classes")
	}
	if _, ok := SpecByName("broken"); ok {
		t.Fatal("invalid spec landed in the registry")
	}
}

// --- Samplers ---

func sampleMean(n int, draw func() float64) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += draw()
	}
	return sum / float64(n)
}

func TestGammaSampleMean(t *testing.T) {
	rng := simclock.NewRand(7)
	for _, shape := range []float64{0.5, 1, 2, 5} {
		mean := sampleMean(20000, func() float64 { return gammaSample(rng, shape) })
		if math.Abs(mean-shape) > 0.1*shape {
			t.Errorf("gamma(%v) sample mean %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestWeibullSampleMean(t *testing.T) {
	rng := simclock.NewRand(7)
	for _, shape := range []float64{0.7, 1, 1.5, 3} {
		want := math.Gamma(1 + 1/shape)
		mean := sampleMean(20000, func() float64 { return weibullSample(rng, shape) })
		if math.Abs(mean-want) > 0.1*want {
			t.Errorf("weibull(%v) sample mean %v, want ~%v", shape, mean, want)
		}
	}
}

// TestInterarrivalMeans: every process is normalised to the requested
// mean spacing, so classes differ in texture, not volume.
func TestInterarrivalMeans(t *testing.T) {
	mean := simclock.Hour
	classes := []ClassSpec{
		{Name: "t", Process: ProcTicks},
		{Name: "p", Process: ProcPoisson},
		{Name: "g", Process: ProcGamma, Shape: 0.5},
		{Name: "w", Process: ProcWeibull, Shape: 1.5},
	}
	for _, c := range classes {
		rng := simclock.NewRand(11)
		got := sampleMean(20000, func() float64 {
			d := interarrival(rng, c, mean)
			if d < 1 {
				t.Fatalf("%s: interarrival %v below the 1-tick floor", c.Process, d)
			}
			return float64(d)
		})
		if c.Process == ProcTicks && simclock.Time(got) != mean {
			t.Fatalf("ticks process drifted: %v", got)
		}
		if math.Abs(got-float64(mean)) > 0.1*float64(mean) {
			t.Errorf("%s: mean interarrival %v, want ~%v", c.Process, simclock.Time(got), mean)
		}
	}
}

// --- Surge envelopes ---

func TestSurgeEnvelope(t *testing.T) {
	sg := SurgeSpec{
		Name: "x", Kind: SurgeFlashCrowd,
		OnsetDay: 1, OnsetHour: 9,
		RampHours: 1, HoldHours: 2, DecayHours: 2, Peak: 4,
	}
	at := func(h float64) simclock.Time {
		return simclock.Day + simclock.Time(h*float64(simclock.Hour))
	}
	cases := []struct {
		h    float64
		want float64
	}{
		{8, 0}, {9, 0}, {9.5, 0.5}, {10, 1}, {11.5, 1}, {12, 1}, {13, 0.5}, {14, 0}, {20, 0},
	}
	for _, c := range cases {
		if got := sg.envelope(at(c.h)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("envelope at %vh = %v, want %v", c.h, got, c.want)
		}
	}
	if f := sg.factor(at(8)); f != 1 {
		t.Errorf("factor outside the window = %v, want exactly 1", f)
	}
	if f := sg.factor(at(11)); f != 4 {
		t.Errorf("factor at hold = %v, want 4", f)
	}
	if f := sg.factor(0); f != 1 {
		t.Errorf("factor before onset day = %v, want exactly 1", f)
	}
}

func TestSurgeRepeats(t *testing.T) {
	sg := SurgeSpec{
		Name: "x", Kind: SurgeFlashCrowd,
		OnsetDay: 1, OnsetHour: 9,
		RampHours: 0.5, HoldHours: 2, DecayHours: 1.5, Peak: 4, RepeatDays: 7,
	}
	first := simclock.Day + 10*simclock.Hour
	for week := 0; week < 3; week++ {
		at := first + simclock.Time(week)*7*simclock.Day
		if f := sg.factor(at); f != 4 {
			t.Errorf("week %d: factor %v, want 4", week, f)
		}
		if f := sg.factor(at + 12*simclock.Hour); f != 1 {
			t.Errorf("week %d: factor %v outside the window, want 1", week, f)
		}
	}
	// One-off surges must not repeat.
	sg.RepeatDays = 0
	if f := sg.factor(first + 7*simclock.Day); f != 1 {
		t.Errorf("one-off surge fired again a week later: %v", f)
	}
}

func TestSpecFactors(t *testing.T) {
	s := FlashCrowdSpec()
	peakT := simclock.Day + 11*simclock.Hour // inside morning-rush hold
	if f := s.classFactor("analysts", peakT); f != 4 {
		t.Errorf("analysts classFactor %v, want 4", f)
	}
	if f := s.classFactor("quants", peakT); f != 1 {
		t.Errorf("quants classFactor %v, want exactly 1 (surge scoped to analysts)", f)
	}
	if f := s.ambienceFactor(peakT); f != 4 {
		t.Errorf("ambienceFactor %v, want 4", f)
	}
	if f := s.feedFactor(peakT); f != 1 {
		t.Errorf("feedFactor %v, want 1 for a flash crowd", f)
	}
	fo := FailoverSpec()
	foT := 2*simclock.Day + 16*simclock.Hour // inside partner-cutover hold
	if f := fo.feedFactor(foT); f != 3 {
		t.Errorf("failover feedFactor %v, want 3", f)
	}
	if f := fo.ambienceFactor(foT); f != 1 {
		t.Errorf("failover ambienceFactor %v, want 1", f)
	}
}
