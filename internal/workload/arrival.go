package workload

import (
	"math"

	"repro/internal/simclock"
)

// gammaSample draws Gamma(shape, scale 1) via Marsaglia–Tsang: the
// squeeze-accept method for shape >= 1, with the standard boost
// gamma(a) = gamma(a+1)·U^(1/a) below 1. Every draw consumes the given
// stream only, so per-class forks keep the campaign deterministic.
func gammaSample(rng *simclock.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: sample at shape+1 and scale back down.
		u := rng.Float64()
		if u <= 0 {
			return 0
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// weibullSample draws Weibull(shape, scale 1) by inverse transform:
// (-ln U)^(1/shape). Shape < 1 is heavy-tailed (long silences, tight
// clusters), shape > 1 quasi-regular.
func weibullSample(rng *simclock.Rand, shape float64) float64 {
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	// 1-u is uniform too; it keeps the argument of Log away from zero
	// for the common u ~ 0 draws.
	return math.Pow(-math.Log(1-u), 1/shape)
}

// interarrival draws one interarrival time for a class whose current
// mean spacing is mean, under the class's declared process. Every
// process is normalised to the same mean, so the choice shapes the
// arrival texture — regular ticks, memoryless Poisson, bursty Gamma,
// heavy-tailed Weibull — without changing offered volume.
func interarrival(rng *simclock.Rand, c ClassSpec, mean simclock.Time) simclock.Time {
	var d simclock.Time
	switch c.Process {
	case ProcTicks:
		// Deterministic: arrivals exactly mean apart, no draw.
		d = mean
	case ProcPoisson:
		d = rng.ExpDuration(mean)
	case ProcGamma:
		// Gamma(shape) has mean shape; divide it out for mean 1.
		d = simclock.Time(float64(mean) * gammaSample(rng, c.Shape) / c.Shape)
	case ProcWeibull:
		// Weibull(shape, scale 1) has mean Γ(1+1/shape).
		d = simclock.Time(float64(mean) * weibullSample(rng, c.Shape) / math.Gamma(1+1/c.Shape))
	default:
		// Validate rejects unknown processes before a spec can run.
		panic("workload: unknown arrival process " + c.Process)
	}
	if d < 1 {
		// Never schedule a zero-delay arrival: the chain must advance
		// the clock or an unlucky draw could spin the event loop.
		d = 1
	}
	return d
}
