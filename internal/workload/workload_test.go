package workload

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/lsf"
	"repro/internal/simclock"
	"repro/internal/svc"
)

func TestDiurnalShape(t *testing.T) {
	night := DiurnalShape(2 * simclock.Hour)
	morning := DiurnalShape(8 * simclock.Hour)
	midday := DiurnalShape(11 * simclock.Hour)
	evening := DiurnalShape(19 * simclock.Hour)
	weekend := DiurnalShape(5*simclock.Day + 11*simclock.Hour)
	if !(night < morning && morning < midday) {
		t.Errorf("ramp broken: %v %v %v", night, morning, midday)
	}
	if !(evening < midday) {
		t.Errorf("evening should decay: %v vs %v", evening, midday)
	}
	if weekend != 0.15 {
		t.Errorf("weekend = %v", weekend)
	}
	for h := simclock.Time(0); h < simclock.Day; h += 30 * simclock.Minute {
		v := DiurnalShape(h)
		if v < 0 || v > 1 {
			t.Fatalf("shape out of range at %v: %v", h, v)
		}
	}
}

type rig struct {
	sim  *simclock.Sim
	dc   *cluster.Datacentre
	dir  *svc.Directory
	lsfc *lsf.Cluster
	gen  *Generator
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sim := simclock.New(41)
	dc := cluster.NewDatacentre()
	dir := svc.NewDirectory()
	var dbNames []string
	for i := 0; i < 4; i++ {
		name := "db" + string(rune('A'+i))
		h := cluster.NewHost(sim, name, "ip", cluster.ModelE4500, cluster.RoleDatabase, "l", "UK")
		dc.Add(h)
		s, _ := svc.New(sim, svc.OracleSpec("ORA-"+string(rune('A'+i)), 1521), h)
		dir.Add(s)
		s.Start(nil)
		dbNames = append(dbNames, s.Spec.Name)
	}
	for i := 0; i < 3; i++ {
		dc.Add(cluster.NewHost(sim, "fe"+string(rune('A'+i)), "ip", cluster.ModelSP2, cluster.RoleFrontEnd, "l", "UK"))
	}
	dc.Add(cluster.NewHost(sim, "tx1", "ip", cluster.ModelHPK, cluster.RoleTransaction, "l", "UK"))
	sim.RunUntil(10 * simclock.Minute)
	lsfc := lsf.NewCluster(sim, dir)
	for _, n := range dbNames {
		lsfc.SetSlotLimit(n, 6)
	}
	cfg := DefaultConfig()
	cfg.OvernightJobs = 10
	cfg.DayJobsPerHour = 6
	gen := New(sim, cfg, dc, dir, lsfc, dbNames)
	return &rig{sim: sim, dc: dc, dir: dir, lsfc: lsfc, gen: gen}
}

func TestInteractiveLoadFollowsShape(t *testing.T) {
	r := newRig(t)
	// Interactive ambience only: no batch jobs muddying the night hours.
	cfg := DefaultConfig()
	cfg.DayJobsPerHour = 0
	cfg.OvernightJobs = 0
	r.gen = New(r.sim, cfg, r.dc, r.dir, r.lsfc, nil)
	r.gen.Start()
	// Midday on a weekday.
	r.sim.RunUntil(11 * simclock.Hour)
	dayUtil := r.dc.Host("dbA").CPUUtilisation()
	// Small hours.
	r.sim.RunUntil(simclock.Day + 3*simclock.Hour)
	nightUtil := r.dc.Host("dbA").CPUUtilisation()
	if dayUtil <= nightUtil {
		t.Errorf("diurnal load inverted: day=%v night=%v", dayUtil, nightUtil)
	}
	if fe := r.dc.Host("feA").CPUUtilisation(); fe == 0 {
		t.Error("front-end hosts should carry analyst load at midday")
	}
}

func TestOvernightBatchDrop(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	r.sim.RunUntil(21*simclock.Hour + 30*simclock.Minute)
	before := r.gen.JobsSubmitted
	r.sim.RunUntil(22*simclock.Hour + 10*simclock.Minute)
	dropped := r.gen.JobsSubmitted - before
	if dropped < 10 {
		t.Errorf("overnight drop submitted %d jobs, want >= 10", dropped)
	}
}

func TestJobsEventuallyComplete(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	r.sim.RunUntil(2 * simclock.Day)
	counts := r.lsfc.CountByState()
	if counts[lsf.JobDone] == 0 {
		t.Errorf("no jobs completed in 2 days: %v", counts)
	}
	if r.gen.JobsSubmitted == 0 {
		t.Fatal("no jobs submitted")
	}
}

func TestManualSelectionSpreadsAcrossServers(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	r.sim.RunUntil(3 * simclock.Day)
	targets := map[string]bool{}
	for _, j := range r.lsfc.Jobs() {
		if j.WantServer != "" {
			targets[j.WantServer] = true
		}
	}
	if len(targets) < 3 {
		t.Errorf("manual selection hit only %d servers", len(targets))
	}
}

func TestStopCeasesSubmission(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	r.sim.RunUntil(simclock.Day)
	r.gen.Stop()
	n := r.gen.JobsSubmitted
	r.sim.RunUntil(2 * simclock.Day)
	if r.gen.JobsSubmitted != n {
		t.Error("generator kept submitting after Stop")
	}
}

func TestFeedLoadOnTransactionHosts(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	if r.dc.Host("tx1").IOStat().BusyPct == 0 {
		t.Error("feed load should keep transaction disks busy")
	}
}

// TestDomainBatchWeighting pins the weighted target draw: with domains
// installed, a tier at batch weight 3 receives roughly three times the
// submissions of a weight-1 tier, and a zero-weight tier receives none.
func TestDomainBatchWeighting(t *testing.T) {
	r := newRig(t)
	// dbA,dbB -> "hot" (weight 3); dbC -> "cold" (weight 0); dbD default.
	tierOf := map[string]string{"dbA": "hot", "dbB": "hot", "dbC": "cold"}
	tiers := map[string]TierLoad{
		"hot":  {Share: 1, Batch: 3, Feed: 1, Amp: 1},
		"cold": {Share: 1, Batch: 0, Feed: 1, Amp: 1},
	}
	r.gen.SetDomains(tierOf, tiers)
	r.gen.Start()
	r.sim.RunUntil(14 * simclock.Day)
	byTarget := map[string]int{}
	for _, j := range r.lsfc.Jobs() {
		byTarget[j.WantServer]++
	}
	if n := byTarget["ORA-C"]; n != 0 {
		t.Errorf("zero-weight target received %d jobs", n)
	}
	hot := byTarget["ORA-A"] + byTarget["ORA-B"]
	def := byTarget["ORA-D"]
	if def == 0 {
		t.Fatal("default-weight target received nothing")
	}
	// Expected hot:def ratio is 6:1 (two hosts at weight 3 vs one at 1);
	// assert a loose 3:1 to stay robust across seeds.
	if hot < 3*def {
		t.Errorf("weighted draw off: hot tier %d vs default %d", hot, def)
	}
}

// TestDomainAllZeroBatchStopsSubmission: an all-zero weighting empties
// the submission pool rather than panicking the weighted draw.
func TestDomainAllZeroBatchStopsSubmission(t *testing.T) {
	r := newRig(t)
	tierOf := map[string]string{"dbA": "z", "dbB": "z", "dbC": "z", "dbD": "z"}
	r.gen.SetDomains(tierOf, map[string]TierLoad{"z": {Share: 1, Batch: 0, Feed: 1, Amp: 1}})
	r.gen.Start()
	r.sim.RunUntil(3 * simclock.Day)
	if r.gen.JobsSubmitted != 0 {
		t.Errorf("all-zero batch weights still submitted %d jobs", r.gen.JobsSubmitted)
	}
}

// TestDomainsSurviveReset: Reset rewinds counters and streams but keeps
// the topology-derived domain state.
func TestDomainsSurviveReset(t *testing.T) {
	r := newRig(t)
	tierOf := map[string]string{"dbC": "cold"}
	r.gen.SetDomains(tierOf, map[string]TierLoad{"cold": {Share: 1, Batch: 0, Feed: 1, Amp: 1}})
	r.gen.Start()
	r.sim.RunUntil(2 * simclock.Day)
	r.gen.Stop()
	r.gen.Reset(r.sim.Rand())
	r.gen.Start()
	r.sim.RunUntil(4 * simclock.Day)
	for _, j := range r.lsfc.Jobs() {
		if j.WantServer == "ORA-C" {
			t.Fatal("excluded target resurfaced after Reset")
		}
	}
}
