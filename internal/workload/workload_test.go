package workload

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/lsf"
	"repro/internal/simclock"
	"repro/internal/svc"
)

func TestDiurnalShape(t *testing.T) {
	night := DiurnalShape(2 * simclock.Hour)
	morning := DiurnalShape(8 * simclock.Hour)
	midday := DiurnalShape(11 * simclock.Hour)
	evening := DiurnalShape(19 * simclock.Hour)
	weekend := DiurnalShape(5*simclock.Day + 11*simclock.Hour)
	if !(night < morning && morning < midday) {
		t.Errorf("ramp broken: %v %v %v", night, morning, midday)
	}
	if !(evening < midday) {
		t.Errorf("evening should decay: %v vs %v", evening, midday)
	}
	if weekend != 0.15 {
		t.Errorf("weekend = %v", weekend)
	}
	for h := simclock.Time(0); h < simclock.Day; h += 30 * simclock.Minute {
		v := DiurnalShape(h)
		if v < 0 || v > 1 {
			t.Fatalf("shape out of range at %v: %v", h, v)
		}
	}
}

type rig struct {
	sim  *simclock.Sim
	dc   *cluster.Datacentre
	dir  *svc.Directory
	lsfc *lsf.Cluster
	gen  *Generator
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sim := simclock.New(41)
	dc := cluster.NewDatacentre()
	dir := svc.NewDirectory()
	var dbNames []string
	for i := 0; i < 4; i++ {
		name := "db" + string(rune('A'+i))
		h := cluster.NewHost(sim, name, "ip", cluster.ModelE4500, cluster.RoleDatabase, "l", "UK")
		dc.Add(h)
		s, _ := svc.New(sim, svc.OracleSpec("ORA-"+string(rune('A'+i)), 1521), h)
		dir.Add(s)
		s.Start(nil)
		dbNames = append(dbNames, s.Spec.Name)
	}
	for i := 0; i < 3; i++ {
		dc.Add(cluster.NewHost(sim, "fe"+string(rune('A'+i)), "ip", cluster.ModelSP2, cluster.RoleFrontEnd, "l", "UK"))
	}
	dc.Add(cluster.NewHost(sim, "tx1", "ip", cluster.ModelHPK, cluster.RoleTransaction, "l", "UK"))
	sim.RunUntil(10 * simclock.Minute)
	lsfc := lsf.NewCluster(sim, dir)
	for _, n := range dbNames {
		lsfc.SetSlotLimit(n, 6)
	}
	cfg := DefaultConfig()
	cfg.OvernightJobs = 10
	cfg.DayJobsPerHour = 6
	gen := New(sim, cfg, dc, dir, lsfc, dbNames)
	return &rig{sim: sim, dc: dc, dir: dir, lsfc: lsfc, gen: gen}
}

func TestInteractiveLoadFollowsShape(t *testing.T) {
	r := newRig(t)
	// Interactive ambience only: no batch jobs muddying the night hours.
	cfg := DefaultConfig()
	cfg.DayJobsPerHour = 0
	cfg.OvernightJobs = 0
	r.gen = New(r.sim, cfg, r.dc, r.dir, r.lsfc, nil)
	r.gen.Start()
	// Midday on a weekday.
	r.sim.RunUntil(11 * simclock.Hour)
	dayUtil := r.dc.Host("dbA").CPUUtilisation()
	// Small hours.
	r.sim.RunUntil(simclock.Day + 3*simclock.Hour)
	nightUtil := r.dc.Host("dbA").CPUUtilisation()
	if dayUtil <= nightUtil {
		t.Errorf("diurnal load inverted: day=%v night=%v", dayUtil, nightUtil)
	}
	if fe := r.dc.Host("feA").CPUUtilisation(); fe == 0 {
		t.Error("front-end hosts should carry analyst load at midday")
	}
}

func TestOvernightBatchDrop(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	r.sim.RunUntil(21*simclock.Hour + 30*simclock.Minute)
	before := r.gen.JobsSubmitted
	r.sim.RunUntil(22*simclock.Hour + 10*simclock.Minute)
	dropped := r.gen.JobsSubmitted - before
	if dropped < 10 {
		t.Errorf("overnight drop submitted %d jobs, want >= 10", dropped)
	}
}

func TestJobsEventuallyComplete(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	r.sim.RunUntil(2 * simclock.Day)
	counts := r.lsfc.CountByState()
	if counts[lsf.JobDone] == 0 {
		t.Errorf("no jobs completed in 2 days: %v", counts)
	}
	if r.gen.JobsSubmitted == 0 {
		t.Fatal("no jobs submitted")
	}
}

func TestManualSelectionSpreadsAcrossServers(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	r.sim.RunUntil(3 * simclock.Day)
	targets := map[string]bool{}
	for _, j := range r.lsfc.Jobs() {
		if j.WantServer != "" {
			targets[j.WantServer] = true
		}
	}
	if len(targets) < 3 {
		t.Errorf("manual selection hit only %d servers", len(targets))
	}
}

func TestStopCeasesSubmission(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	r.sim.RunUntil(simclock.Day)
	r.gen.Stop()
	n := r.gen.JobsSubmitted
	r.sim.RunUntil(2 * simclock.Day)
	if r.gen.JobsSubmitted != n {
		t.Error("generator kept submitting after Stop")
	}
}

func TestFeedLoadOnTransactionHosts(t *testing.T) {
	r := newRig(t)
	r.gen.Start()
	if r.dc.Host("tx1").IOStat().BusyPct == 0 {
		t.Error("feed load should keep transaction disks busy")
	}
}
