package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
)

// Spec declares a statistical workload as data: the site's batch
// submission rate split across client classes, each with its own
// interarrival process, plus optional named surge scenarios. A Spec is
// loadable from JSON exactly like a topology (LoadSpec / LoadSpecFile),
// registrable by name (RegisterSpec), and selectable per campaign cell
// as a first-class axis (`qossim campaign -workload paper,flashcrowd`).
//
// A Spec redistributes the generator's configured DayJobsPerHour: class
// shares must sum to 1 (within 1e-6), so installing a spec reshapes
// *when and how* jobs arrive — Poisson vs heavy-tailed Gamma bursts vs
// round-the-clock Weibull — without changing the configured offered
// volume. Sites whose topology names no spec keep the legacy hourly
// truncating generator, byte-identically.
type Spec struct {
	// Name identifies the spec: the registry key and the campaign's
	// workload-axis label.
	Name string `json:"name"`
	// Classes split the batch submission rate; shares must sum to 1.
	Classes []ClassSpec `json:"classes"`
	// Surges are named surge scenarios layered over the classes.
	Surges []SurgeSpec `json:"surges,omitempty"`
}

// Arrival process kinds a ClassSpec may declare.
const (
	// ProcTicks is the deterministic process: arrivals exactly at the
	// class's mean interarrival, no randomness consumed.
	ProcTicks = "ticks"
	// ProcPoisson draws exponential interarrivals (memoryless).
	ProcPoisson = "poisson"
	// ProcGamma draws Gamma(shape) interarrivals normalised to the class
	// mean: shape < 1 is burstier than Poisson, shape > 1 smoother.
	ProcGamma = "gamma"
	// ProcWeibull draws Weibull(shape) interarrivals normalised to the
	// class mean: shape < 1 heavy-tailed, shape > 1 quasi-regular.
	ProcWeibull = "weibull"
)

// processKinds lists the valid ClassSpec.Process values.
var processKinds = []string{ProcTicks, ProcPoisson, ProcGamma, ProcWeibull}

// ClassSpec is one client class: a share of the site's batch submission
// rate arriving under its own statistical process.
type ClassSpec struct {
	// Name labels the class (unique within the spec).
	Name string `json:"name"`
	// Share is this class's fraction of the generator's DayJobsPerHour;
	// all shares must sum to 1 within 1e-6.
	Share float64 `json:"share"`
	// Process is the interarrival law: ticks, poisson, gamma or weibull.
	Process string `json:"process"`
	// Shape parameterises gamma/weibull (> 0, required there); it must
	// be absent for ticks/poisson, which have no shape parameter.
	Shape float64 `json:"shape,omitempty"`
	// Burst is the number of extra submissions an arrival brings when it
	// bursts; BurstProb is the per-arrival burst probability. Both must
	// be set together (a burst size that can never fire, or a
	// probability with nothing to fire, is a spec mistake).
	Burst     int     `json:"burst,omitempty"`
	BurstProb float64 `json:"burst_prob,omitempty"`
	// DiurnalAmplitude scales the class's day/night swing exactly like a
	// tier's workload amplitude: nil/1 follows the site shape, 0 runs
	// flat at peak, up to 2 exaggerates the swing (clamping at zero).
	DiurnalAmplitude *float64 `json:"diurnal_amplitude,omitempty"`
}

// amp resolves the class's diurnal amplitude (nil = 1, the site shape).
func (c ClassSpec) amp() float64 {
	if c.DiurnalAmplitude == nil {
		return 1
	}
	return *c.DiurnalAmplitude
}

// shareTolerance is how far class shares may sum from 1 before the spec
// is rejected — generous enough for decimal literals, tight enough that
// a forgotten class cannot hide.
const shareTolerance = 1e-6

// maxBurst bounds a class's burst size: a bigger value is certainly a
// typo and would dump thousands of jobs per arrival.
const maxBurst = 1000

// Validate checks the spec is usable: named, at least one class, unique
// class names, positive finite shares summing to 1, known processes
// with shape parameters only where the process has one, coherent burst
// settings, in-range amplitudes, and well-formed surge windows naming
// only declared classes.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload spec has no name")
	}
	if strings.ContainsAny(s.Name, ", ;") {
		return fmt.Errorf("workload spec name %q contains a separator; it must survive the -workload comma list", s.Name)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("workload spec %q declares no classes", s.Name)
	}
	names := map[string]bool{}
	sum := 0.0
	for _, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("workload spec %q: class with no name", s.Name)
		}
		if names[c.Name] {
			return fmt.Errorf("workload spec %q: duplicate class %q", s.Name, c.Name)
		}
		names[c.Name] = true
		if math.IsNaN(c.Share) || math.IsInf(c.Share, 0) || c.Share <= 0 {
			return fmt.Errorf("workload spec %q class %q: share %v (want a finite share > 0)", s.Name, c.Name, c.Share)
		}
		sum += c.Share
		switch c.Process {
		case ProcTicks, ProcPoisson:
			if c.Shape != 0 {
				return fmt.Errorf("workload spec %q class %q: process %q has no shape parameter (got %v)",
					s.Name, c.Name, c.Process, c.Shape)
			}
		case ProcGamma, ProcWeibull:
			if math.IsNaN(c.Shape) || math.IsInf(c.Shape, 0) || c.Shape <= 0 || c.Shape > 100 {
				return fmt.Errorf("workload spec %q class %q: %s shape %v out of range (0, 100]",
					s.Name, c.Name, c.Process, c.Shape)
			}
		default:
			return fmt.Errorf("workload spec %q class %q: unknown process %q (want one of %s)",
				s.Name, c.Name, c.Process, strings.Join(processKinds, ", "))
		}
		if c.Burst < 0 || c.Burst > maxBurst {
			return fmt.Errorf("workload spec %q class %q: burst %d out of range [0, %d]", s.Name, c.Name, c.Burst, maxBurst)
		}
		if math.IsNaN(c.BurstProb) || c.BurstProb < 0 || c.BurstProb > 1 {
			return fmt.Errorf("workload spec %q class %q: burst_prob %v out of range [0, 1]", s.Name, c.Name, c.BurstProb)
		}
		if (c.Burst > 0) != (c.BurstProb > 0) {
			return fmt.Errorf("workload spec %q class %q: burst %d with burst_prob %v — set both or neither",
				s.Name, c.Name, c.Burst, c.BurstProb)
		}
		if a := c.DiurnalAmplitude; a != nil && (math.IsNaN(*a) || math.IsInf(*a, 0) || *a < 0 || *a > 2) {
			return fmt.Errorf("workload spec %q class %q: diurnal_amplitude %v out of range [0, 2]", s.Name, c.Name, *a)
		}
	}
	if math.Abs(sum-1) > shareTolerance {
		return fmt.Errorf("workload spec %q: class shares sum to %v, want 1 (±%g)", s.Name, sum, shareTolerance)
	}
	surgeNames := map[string]bool{}
	for _, sg := range s.Surges {
		if err := sg.validate(s.Name, names); err != nil {
			return err
		}
		if surgeNames[sg.Name] {
			return fmt.Errorf("workload spec %q: duplicate surge %q", s.Name, sg.Name)
		}
		surgeNames[sg.Name] = true
	}
	return nil
}

// JSON renders the spec in its canonical JSON form — the same shape
// LoadSpec reads, so a spec survives a write/load round trip unchanged.
func (s Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// LoadSpec decodes and validates a JSON workload spec. Unknown fields
// are rejected so a typo'd "classs" key fails loudly instead of
// silently dropping the classes.
func LoadSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("decode workload spec: %w", err)
	}
	// One document per file: trailing content must not be silently
	// discarded (same rule as topology files).
	if _, err := dec.Token(); err != io.EOF {
		return Spec{}, fmt.Errorf("decode workload spec: trailing data after the spec document")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpecFile reads a workload-spec JSON file.
func LoadSpecFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	s, err := LoadSpec(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// --- Named-spec registry ---

var (
	specMu  sync.RWMutex
	specReg = map[string]Spec{}
)

// RegisterSpec validates a workload spec and registers it under its
// Name, replacing any earlier registration, so topologies and campaigns
// can select it by name (`-workload <name>`).
func RegisterSpec(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	specMu.Lock()
	defer specMu.Unlock()
	specReg[s.Name] = s
	return nil
}

// SpecByName looks up a registered workload spec.
func SpecByName(name string) (Spec, bool) {
	specMu.RLock()
	defer specMu.RUnlock()
	s, ok := specReg[name]
	return s, ok
}

// SpecNames lists the registered workload specs, sorted.
func SpecNames() []string {
	specMu.RLock()
	defer specMu.RUnlock()
	names := make([]string, 0, len(specReg))
	for name := range specReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// --- Built-in specs ---

// paperClasses is the shared class mix of the built-in specs: Poisson
// interactive analysts, a bursty heavy-tailed quant class, and a small
// round-the-clock feed-replay class that barely sleeps.
func paperClasses() []ClassSpec {
	quarter := 0.25
	return []ClassSpec{
		{Name: "analysts", Share: 0.5, Process: ProcPoisson},
		{Name: "quants", Share: 0.3, Process: ProcGamma, Shape: 0.5, Burst: 2, BurstProb: 0.3},
		{Name: "feed-replay", Share: 0.2, Process: ProcWeibull, Shape: 1.5, DiurnalAmplitude: &quarter},
	}
}

// PaperSpec is the statistical rendering of the paper's offered load:
// the same aggregate submission rate as the legacy generator, split
// over the three client populations §4 describes.
func PaperSpec() Spec {
	return Spec{Name: "paper", Classes: paperClasses()}
}

// FlashCrowdSpec is PaperSpec plus a repeating weekday flash crowd: a
// late-morning spike that ramps in over half an hour, holds for two,
// and decays over ninety minutes, quadrupling analyst arrivals and
// interactive ambience at its peak.
func FlashCrowdSpec() Spec {
	s := PaperSpec()
	s.Name = "flashcrowd"
	s.Surges = []SurgeSpec{{
		Name: "morning-rush", Kind: SurgeFlashCrowd,
		OnsetDay: 1, OnsetHour: 9.5,
		RampHours: 0.5, HoldHours: 2, DecayHours: 1.5,
		Peak: 4, Classes: []string{"analysts"}, RepeatDays: 7,
	}}
	return s
}

// FailoverSpec is PaperSpec plus a one-off failover surge: a partner
// site's market feeds cut over mid-afternoon on day two, tripling feed
// load and feed-replay arrivals for four hours before draining away.
func FailoverSpec() Spec {
	s := PaperSpec()
	s.Name = "failover"
	s.Surges = []SurgeSpec{{
		Name: "partner-cutover", Kind: SurgeFailover,
		OnsetDay: 2, OnsetHour: 14,
		RampHours: 0.25, HoldHours: 4, DecayHours: 2,
		Peak: 3, Classes: []string{"feed-replay"},
	}}
	return s
}

func init() {
	for _, s := range []Spec{PaperSpec(), FlashCrowdSpec(), FailoverSpec()} {
		if err := RegisterSpec(s); err != nil {
			panic(err) // built-in specs must validate
		}
	}
}
