package workload

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/simclock"
)

// Surge kinds a SurgeSpec may declare.
const (
	// SurgeFlashCrowd models a sudden user rush — breaking market news,
	// a viral dashboard: it multiplies the affected classes' arrival
	// rates AND the site's interactive ambience (front-end analysts,
	// ad-hoc database queries) while the window is open.
	SurgeFlashCrowd = "flash-crowd"
	// SurgeFailover models a partner site cutting its traffic over —
	// its market feeds land here: it multiplies the affected classes'
	// arrival rates AND the transaction tier's feed load (ambient CPU
	// and feed disk activity) while the window is open.
	SurgeFailover = "failover-surge"
)

// surgeKinds lists the valid SurgeSpec.Kind values.
var surgeKinds = []string{SurgeFlashCrowd, SurgeFailover}

// SurgeSpec is one named surge scenario: a trapezoid envelope — linear
// ramp up, hold at peak, linear decay — anchored at an onset day/hour,
// optionally repeating. While the envelope is open the surge multiplies
// arrival rates of its Classes (all classes when empty) by up to Peak,
// plus the kind's ambience or feed load.
type SurgeSpec struct {
	// Name labels the surge (unique within the spec).
	Name string `json:"name"`
	// Kind is flash-crowd or failover-surge.
	Kind string `json:"kind"`
	// OnsetDay and OnsetHour anchor the window start: day OnsetDay of
	// the trial (0-based), OnsetHour hours (fractional) into that day.
	OnsetDay  int     `json:"onset_day"`
	OnsetHour float64 `json:"onset_hour"`
	// RampHours/HoldHours/DecayHours shape the trapezoid; the total
	// window must be positive.
	RampHours  float64 `json:"ramp_hours"`
	HoldHours  float64 `json:"hold_hours"`
	DecayHours float64 `json:"decay_hours"`
	// Peak is the multiplier at full envelope (>= 1; 1 = no-op).
	Peak float64 `json:"peak"`
	// Classes restricts the arrival-rate boost to the named classes;
	// empty boosts every class.
	Classes []string `json:"classes,omitempty"`
	// RepeatDays repeats the window every RepeatDays days after onset
	// (0 = one-off). The window must fit inside the repeat period.
	RepeatDays int `json:"repeat_days,omitempty"`
}

// maxSurgePeak bounds a surge's multiplier; anything bigger is a typo
// that would swamp the simulation.
const maxSurgePeak = 100

// validate checks one surge within its spec: known kind, sane window
// and peak, and Classes naming only declared classes.
func (sg SurgeSpec) validate(specName string, classes map[string]bool) error {
	if sg.Name == "" {
		return fmt.Errorf("workload spec %q: surge with no name", specName)
	}
	switch sg.Kind {
	case SurgeFlashCrowd, SurgeFailover:
	default:
		return fmt.Errorf("workload spec %q surge %q: unknown kind %q (want one of %s)",
			specName, sg.Name, sg.Kind, strings.Join(surgeKinds, ", "))
	}
	if sg.OnsetDay < 0 {
		return fmt.Errorf("workload spec %q surge %q: onset_day %d is negative", specName, sg.Name, sg.OnsetDay)
	}
	if math.IsNaN(sg.OnsetHour) || sg.OnsetHour < 0 || sg.OnsetHour >= 24 {
		return fmt.Errorf("workload spec %q surge %q: onset_hour %v out of range [0, 24)", specName, sg.Name, sg.OnsetHour)
	}
	for _, v := range []struct {
		name string
		h    float64
	}{{"ramp_hours", sg.RampHours}, {"hold_hours", sg.HoldHours}, {"decay_hours", sg.DecayHours}} {
		if math.IsNaN(v.h) || math.IsInf(v.h, 0) || v.h < 0 {
			return fmt.Errorf("workload spec %q surge %q: %s %v (want a finite value >= 0)", specName, sg.Name, v.name, v.h)
		}
	}
	total := sg.RampHours + sg.HoldHours + sg.DecayHours
	if total <= 0 {
		return fmt.Errorf("workload spec %q surge %q: ramp+hold+decay is %v hours — the window never opens", specName, sg.Name, total)
	}
	if math.IsNaN(sg.Peak) || math.IsInf(sg.Peak, 0) || sg.Peak < 1 || sg.Peak > maxSurgePeak {
		return fmt.Errorf("workload spec %q surge %q: peak %v out of range [1, %d]", specName, sg.Name, sg.Peak, maxSurgePeak)
	}
	for _, c := range sg.Classes {
		if !classes[c] {
			return fmt.Errorf("workload spec %q surge %q: unknown class %q", specName, sg.Name, c)
		}
	}
	if sg.RepeatDays < 0 {
		return fmt.Errorf("workload spec %q surge %q: repeat_days %d is negative", specName, sg.Name, sg.RepeatDays)
	}
	if sg.RepeatDays > 0 && total > float64(sg.RepeatDays)*24 {
		return fmt.Errorf("workload spec %q surge %q: a %v-hour window cannot repeat every %d day(s)",
			specName, sg.Name, total, sg.RepeatDays)
	}
	return nil
}

// envelope reports the surge's activation in [0, 1] at t: 0 outside the
// window, ramping linearly to 1, holding, then decaying linearly.
func (sg SurgeSpec) envelope(t simclock.Time) float64 {
	start := simclock.Time(sg.OnsetDay)*simclock.Day +
		simclock.Time(sg.OnsetHour*float64(simclock.Hour))
	if t < start {
		return 0
	}
	// Hours since the (possibly folded) window opened.
	h := float64(t-start) / float64(simclock.Hour)
	if sg.RepeatDays > 0 {
		h = math.Mod(h, float64(sg.RepeatDays)*24)
	}
	switch {
	case h < sg.RampHours:
		return h / sg.RampHours
	case h < sg.RampHours+sg.HoldHours:
		return 1
	case h < sg.RampHours+sg.HoldHours+sg.DecayHours:
		return 1 - (h-sg.RampHours-sg.HoldHours)/sg.DecayHours
	default:
		return 0
	}
}

// factor is the surge's load multiplier at t: exactly 1 outside the
// window (so multiplying by it is bit-exact), up to Peak inside.
func (sg SurgeSpec) factor(t simclock.Time) float64 {
	env := sg.envelope(t)
	if env == 0 {
		return 1
	}
	return 1 + (sg.Peak-1)*env
}

// covers reports whether the surge boosts the named class's arrivals
// (an empty Classes list covers every class).
func (sg SurgeSpec) covers(class string) bool {
	if len(sg.Classes) == 0 {
		return true
	}
	for _, c := range sg.Classes {
		if c == class {
			return true
		}
	}
	return false
}

// classFactor is the product of every surge multiplier covering the
// named class at t — exactly 1 when no surge window is open.
func (s *Spec) classFactor(class string, t simclock.Time) float64 {
	f := 1.0
	for _, sg := range s.Surges {
		if sg.covers(class) {
			f *= sg.factor(t)
		}
	}
	return f
}

// ambienceFactor is the product of flash-crowd surge multipliers at t:
// the crowd hammering GUIs and ad-hoc queries, not just batch arrivals.
func (s *Spec) ambienceFactor(t simclock.Time) float64 {
	f := 1.0
	for _, sg := range s.Surges {
		if sg.Kind == SurgeFlashCrowd {
			f *= sg.factor(t)
		}
	}
	return f
}

// feedFactor is the product of failover-surge multipliers at t: the
// partner site's feeds landing on the transaction tier.
func (s *Spec) feedFactor(t simclock.Time) float64 {
	f := 1.0
	for _, sg := range s.Surges {
		if sg.Kind == SurgeFailover {
			f *= sg.factor(t)
		}
	}
	return f
}
