// Package workload generates the financial site's offered load (§4):
// analysts running data mining, financial projections, model evaluations
// and market-trend simulations interactively during the day; large batch
// jobs submitted through LSF — with the server hand-picked by the user, the
// practice whose failure modes motivate the DGSPL — heaviest overnight; and
// market data feeds arriving around the clock from international sites.
package workload

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/lsf"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// DiurnalShape reports the fraction of peak interactive load offered at t:
// near zero before 06:00, ramping to 1.0 across the trading day, with a
// lunchtime dip, decaying in the evening; weekends run at 15%.
func DiurnalShape(t simclock.Time) float64 {
	if t.IsWeekend() {
		return 0.15
	}
	h := float64(t.HourOfDay()) + float64(t%simclock.Hour)/float64(simclock.Hour)
	switch {
	case h < 6:
		return 0.05
	case h < 9:
		return 0.05 + 0.95*(h-6)/3
	case h < 17:
		// Trading day with a shallow lunch dip around 13:00.
		dip := 0.15 * math.Exp(-(h-13)*(h-13)/2)
		return 1.0 - dip
	case h < 22:
		return 1.0 - 0.85*(h-17)/5
	default:
		return 0.15
	}
}

// Config sizes the generator.
type Config struct {
	// PeakAnalysts is the number of concurrent interactive analysts at the
	// top of the day, spread over the front-end tier.
	PeakAnalysts int
	// DayJobsPerHour is the batch submission rate at peak.
	DayJobsPerHour float64
	// OvernightJobs is the size of the 22:00 batch drop.
	OvernightJobs int
	// JobWork is the mean job duration on a reference server.
	JobWork simclock.Time
	// FeedLoad is constant CPU demand per feed handler host.
	FeedLoad float64
}

// DefaultConfig returns a load shape proportionate to the paper's site.
func DefaultConfig() Config {
	return Config{
		PeakAnalysts:   300,
		DayJobsPerHour: 12,
		OvernightJobs:  40,
		JobWork:        2 * simclock.Hour,
		FeedLoad:       0.6,
	}
}

// TierLoad is one tier's resolved workload-domain coefficients, compiled
// by the site builder from the topology's per-tier workload specs (plus
// any option overrides). Every field is a multiplicative weight; the
// default domain is all ones (DefaultTierLoad).
type TierLoad struct {
	Share float64 // interactive analyst-share weight
	Batch float64 // LSF-target batch-submission weight
	Feed  float64 // market-feed load multiplier (transaction hosts)
	Amp   float64 // diurnal amplitude: 1 = site shape, 0 = flat at peak
}

// DefaultTierLoad is the coefficients of an unspecified tier.
func DefaultTierLoad() TierLoad { return TierLoad{Share: 1, Batch: 1, Feed: 1, Amp: 1} }

// Generator drives load into a datacentre: a weighted multi-domain
// scheduler in which interactive ambience, batch submission and feed load
// each draw per tier domain. Without domains (SetDomains never called) it
// collapses to the single global domain, byte-identical — in offered load
// and random-stream consumption — to the pre-domain generator.
type Generator struct {
	sim  *simclock.Sim
	rng  *simclock.Rand
	cfg  Config
	dc   *cluster.Datacentre
	dir  *svc.Directory
	lsfc *lsf.Cluster

	dbNames []string // LSF execution targets users pick from
	jobSeq  int

	// Domain state (nil maps = single global domain). Compiled once from
	// the topology; Reset keeps it, since reuse cannot change a topology.
	tierOf  map[string]string   // host name -> tier name
	tiers   map[string]TierLoad // tier name -> resolved coefficients
	targetW []float64           // per-dbNames submission weight (nil = uniform)
	// noTargets records an all-zero batch weighting: submissions stop
	// entirely, as if the pool were empty.
	noTargets bool

	// Spec state (nil = legacy hourly generator). Installed once from
	// the topology/options; Reset keeps it, like the domains.
	spec    *Spec
	classes []*classState

	// feedApplied tracks the feed disk activity currently applied per
	// transaction host, so refreshFeed can re-apply load a crash wiped
	// and track surge windows by delta. Only the spec/domain paths use
	// it; the legacy path keeps its one-shot applyFeedLoad.
	feedApplied map[string]float64

	// Counters for reports.
	JobsSubmitted int
	tickers       []*simclock.Ticker
}

// classState is one arrival class's live scheduling state: its spec, a
// dedicated stream fork (so class draws interleave identically at any
// worker or shard count), and the pending arrival event.
type classState struct {
	spec ClassSpec
	rng  *simclock.Rand
	ev   *simclock.Event
}

// New builds a generator over the datacentre. dbNames are the database
// service names users submit jobs to; pass the LSF cluster's targets.
func New(sim *simclock.Sim, cfg Config, dc *cluster.Datacentre, dir *svc.Directory,
	lsfc *lsf.Cluster, dbNames []string) *Generator {
	return &Generator{
		sim: sim, rng: sim.Rand().Fork(0x301d), cfg: cfg,
		dc: dc, dir: dir, lsfc: lsfc, dbNames: dbNames,
	}
}

// Config returns the load shape the generator offers — after any
// site-size scaling the caller applied, so tests can pin override
// semantics.
func (g *Generator) Config() Config { return g.cfg }

// SetDomains installs the compiled per-tier workload domains: tierOf maps
// host names to tier names and tiers carries each tier's resolved
// coefficients (hosts or tiers missing from the maps default to all-ones).
// Call it before Start; the domains survive Reset, since they derive from
// the topology, which site reuse cannot change. Passing nil maps keeps
// the single global domain.
//
// Note that installing domains changes the generator's random-stream
// consumption (batch targets switch from an index draw to a weighted
// draw), so only unspecified topologies — which never call SetDomains —
// are byte-identical to the pre-domain generator.
func (g *Generator) SetDomains(tierOf map[string]string, tiers map[string]TierLoad) {
	g.tierOf = tierOf
	g.tiers = tiers
	g.targetW = nil
	g.noTargets = false
	if tiers == nil {
		return
	}
	g.targetW = make([]float64, len(g.dbNames))
	total := 0.0
	for i, name := range g.dbNames {
		g.targetW[i] = g.loadFor(g.targetHost(name)).Batch
		total += g.targetW[i]
	}
	g.noTargets = len(g.dbNames) > 0 && total <= 0
}

// SetSpec installs a validated workload spec: batch submissions switch
// from the legacy hourly truncating ticker to per-class interarrival
// chains, and surge scenarios modulate arrivals, ambience and feed
// load. Call it before Start; like the domains, the spec survives
// Reset, since it derives from the topology/options, which site reuse
// cannot change. Passing nil keeps the legacy generator, byte-identical
// to the pre-spec engine.
func (g *Generator) SetSpec(s *Spec) {
	g.spec = s
}

// Spec returns the installed workload spec (nil = legacy generator).
func (g *Generator) Spec() *Spec { return g.spec }

// targetHost resolves an LSF target's host name through the directory
// (falling back to the service name, which then maps to the default
// domain).
func (g *Generator) targetHost(service string) string {
	if g.dir != nil {
		if sv := g.dir.Get(service); sv != nil {
			return sv.Host.Name
		}
	}
	return service
}

// loadFor resolves one host's domain coefficients.
func (g *Generator) loadFor(host string) TierLoad {
	if g.tiers == nil {
		return DefaultTierLoad()
	}
	if tl, ok := g.tiers[g.tierOf[host]]; ok {
		return tl
	}
	return DefaultTierLoad()
}

// shaped applies a domain's diurnal amplitude to the site shape: 1 keeps
// the shape bit-identically, 0 flattens the domain to constant peak load,
// larger amplitudes exaggerate the swing (clamped at zero).
func shaped(shape, amp float64) float64 {
	if amp == 1 {
		return shape
	}
	s := 1 - amp*(1-shape)
	if s < 0 {
		return 0
	}
	return s
}

// Reset returns the generator to the state New leaves it in, drawing a
// fresh stream fork exactly as New does. The caller passes the reseeded
// simulation's Rand; the fork label matches New so a reset generator
// replays the same submissions a fresh one would. Site reuse calls this
// between trials, then Start begins load generation anew.
func (g *Generator) Reset(parent *simclock.Rand) {
	g.rng = parent.Fork(0x301d)
	g.jobSeq = 0
	g.JobsSubmitted = 0
	g.tickers = nil
	g.classes = nil
	g.feedApplied = nil
}

// Start begins offering load: interactive ambience refreshed every 15
// minutes, day batch submissions hourly-ish (or per-class interarrival
// chains when a spec is installed), the overnight drop at 22:00, and
// feed load — applied once on the legacy path, refreshed with the
// interactive tick on the spec/domain paths so recovered hosts get it
// back.
func (g *Generator) Start() {
	g.tickers = append(g.tickers,
		g.sim.Every(g.sim.Now(), 15*simclock.Minute, "workload-interactive", g.refreshInteractive))
	if g.spec == nil {
		g.tickers = append(g.tickers,
			g.sim.Every(g.sim.Now()+g.rng.UniformDuration(0, simclock.Hour), simclock.Hour, "workload-dayjobs", g.submitDayJobs))
	} else {
		g.startClasses()
	}
	g.tickers = append(g.tickers,
		g.sim.Every(g.nextTenPM(), simclock.Day, "workload-overnight", g.submitOvernightBatch))
	if g.spec == nil && g.tiers == nil {
		// Legacy path: one-shot feed application, byte-identical to the
		// pre-spec engine (a host that crashes and recovers stays
		// feed-less — the pinned historical behaviour).
		g.applyFeedLoad()
	} else {
		// Spec/domain paths: refreshFeed applies the load at the first
		// interactive tick (same sim time as Start) and keeps it
		// applied across crash/recovery cycles.
		g.feedApplied = map[string]float64{}
	}
}

// Stop ceases load generation. It clears the ticker slice and pending
// class arrivals so a Stop → Start cycle within one trial registers
// each load source exactly once instead of double-appending.
func (g *Generator) Stop() {
	for _, t := range g.tickers {
		t.Stop()
	}
	g.tickers = nil
	for _, cs := range g.classes {
		if cs.ev != nil {
			cs.ev.Cancel()
		}
	}
	g.classes = nil
}

func (g *Generator) nextTenPM() simclock.Time {
	now := g.sim.Now()
	today := now - now%simclock.Day + 22*simclock.Hour
	if today <= now {
		today += simclock.Day
	}
	return today
}

// refreshInteractive retargets ambient load on front-end and database
// hosts to the diurnal shape: analysts hammering GUIs and ad-hoc queries.
// Analysts spread over the front-end hosts proportionally to their tier's
// share; database and transaction ambience scale by the tier's share and
// feed weights, each under the tier's own diurnal amplitude. With every
// weight at its default the arithmetic reduces exactly (multiplications
// by 1.0 are bit-exact) to the single global rule.
func (g *Generator) refreshInteractive(now simclock.Time) {
	shape := DiurnalShape(now)
	// Surge multipliers: exactly 1 with no spec or outside every surge
	// window, so the trailing multiplications below are bit-exact no-ops
	// on unspecified topologies.
	amb, feed := 1.0, 1.0
	if g.spec != nil {
		amb = g.spec.ambienceFactor(now)
		feed = g.spec.feedFactor(now)
	}
	fe := g.dc.ByRole(cluster.RoleFrontEnd)
	db := g.dc.ByRole(cluster.RoleDatabase)
	tx := g.dc.ByRole(cluster.RoleTransaction)
	// Down hosts keep their share of the analyst population (users do not
	// know the box is dead), matching the pre-domain even split.
	var sumShare float64
	for _, h := range fe {
		sumShare += g.loadFor(h.Name).Share
	}
	for _, h := range fe {
		if h.Up() {
			tl := g.loadFor(h.Name)
			// Each analyst costs ~0.02 CPUs on the front end. With every
			// front-end share at 0 there are no analysts to spread —
			// guard the 0/0, which would otherwise poison the host's CPU
			// accounting with NaN.
			perHost := 0.0
			if sumShare > 0 {
				perHost = float64(g.cfg.PeakAnalysts) * tl.Share / sumShare
			}
			h.SetAmbientLoad(shaped(shape, tl.Amp) * perHost * 0.02 * g.rng.Jitterf(0.2) * amb)
		}
	}
	for _, h := range db {
		if h.Up() {
			tl := g.loadFor(h.Name)
			// Ad-hoc queries: a modest share of each database box.
			h.SetAmbientLoad(shaped(shape, tl.Amp) * 0.25 * float64(h.Model.CPUs) * tl.Share * g.rng.Jitterf(0.3) * amb)
		}
	}
	for _, h := range tx {
		if h.Up() {
			tl := g.loadFor(h.Name)
			h.SetAmbientLoad(shaped(shape, tl.Amp) * 0.3 * float64(h.Model.CPUs) * tl.Feed * g.rng.Jitterf(0.25) * feed)
		}
	}
	if g.feedApplied != nil {
		g.refreshFeed(now, feed)
	}
}

// submitDayJobs trickles batch work during the day — the legacy hourly
// path, used only when no workload spec is installed.
func (g *Generator) submitDayJobs(now simclock.Time) {
	if g.lsfc == nil || len(g.dbNames) == 0 || g.noTargets {
		return
	}
	// Deliberate historical truncation: int() floors the expected count,
	// so rates below ~1 job/hour submit zero jobs forever. The goldens
	// pin this behaviour byte-for-byte, so it stays verbatim here; spec
	// arrival classes draw interarrival times instead, which makes
	// arbitrarily low rates submit at their true long-run rate.
	n := int(g.cfg.DayJobsPerHour * DiurnalShape(now) * g.rng.Jitterf(0.3))
	for i := 0; i < n; i++ {
		g.submitOne(now, false)
	}
}

// submitOvernightBatch drops the big overnight run at 22:00 — the jobs
// whose mid-run database crashes dominate the paper's downtime.
func (g *Generator) submitOvernightBatch(now simclock.Time) {
	if g.lsfc == nil || len(g.dbNames) == 0 || g.noTargets {
		return
	}
	for i := 0; i < g.cfg.OvernightJobs; i++ {
		g.submitOne(now, true)
	}
}

// pickTarget draws the execution target a user hand-picks: uniform over
// the pool in the global domain, weighted by the target tier's batch
// intensity when domains are installed.
func (g *Generator) pickTarget() string {
	if g.targetW == nil {
		return g.dbNames[g.rng.Intn(len(g.dbNames))]
	}
	return g.dbNames[g.rng.Pick(g.targetW)]
}

// submitOne submits a job the way the site's users did: hand-picking a
// database server. Users are imperfect: mostly they pick a random server
// (no knowledge of current load), which is exactly the behaviour the paper
// blames for overloaded servers crashing mid-job.
func (g *Generator) submitOne(now simclock.Time, overnight bool) {
	g.jobSeq++
	name := fmt.Sprintf("analysis-%d", g.jobSeq)
	user := fmt.Sprintf("analyst%d", g.rng.Intn(50)+1)
	target := g.pickTarget()
	work := g.rng.Jitter(g.cfg.JobWork, 0.5)
	cpu := 0.5 + g.rng.Float64()*1.5
	mem := 128 + g.rng.Float64()*512
	if overnight {
		work *= 2
		cpu *= 1.5
	}
	g.lsfc.Submit(name, user, target, cpu, mem, 0.1, work)
	g.JobsSubmitted++
}

// applyFeedLoad puts steady demand on transaction hosts for market feeds,
// scaled by each host's feed-weight domain. Legacy one-shot path: a host
// that crashes after this never gets its feed load back (refreshFeed is
// the fixed path, used whenever a spec or domains are installed).
func (g *Generator) applyFeedLoad() {
	for _, h := range g.dc.ByRole(cluster.RoleTransaction) {
		if h.Up() {
			h.AddDiskActivity(0.2 * g.loadFor(h.Name).Feed)
		}
	}
}

// refreshFeed reconciles each transaction host's feed disk activity with
// the load the feeds currently offer (domain feed weight × surge
// factor), applying only the delta. Crash() zeroes a host's disk
// activity, so a host seen down — or seen up with an uptime shorter
// than the refresh interval, meaning it crashed and recovered entirely
// between two ticks — has lost whatever was applied and gets the full
// amount again. Ticks are 15 minutes apart, so Uptime() < one interval
// is an exact reboot-since-last-tick test.
func (g *Generator) refreshFeed(now simclock.Time, surge float64) {
	for _, h := range g.dc.ByRole(cluster.RoleTransaction) {
		if !h.Up() {
			g.feedApplied[h.Name] = 0
			continue
		}
		applied := g.feedApplied[h.Name]
		if h.Uptime() < 15*simclock.Minute {
			applied = 0
		}
		want := 0.2 * g.loadFor(h.Name).Feed * surge
		if want != applied {
			h.AddDiskActivity(want - applied)
			g.feedApplied[h.Name] = want
		}
	}
}

// --- Spec-driven arrival classes ---

// maxClassDelay caps how far ahead a class arrival is scheduled. Rates
// are frozen at draw time, so an overnight draw could otherwise sleep
// through the whole morning ramp; instead the chain wakes after at most
// two hours, discards the stale draw, and redraws at the current rate.
// (For Poisson arrivals the discipline is exact — the exponential is
// memoryless; for Gamma/Weibull it is the spec engine's documented
// approximation.)
const maxClassDelay = 2 * simclock.Hour

// idleClassRecheck is how often a class whose current rate is zero
// (amplitude-clamped shape) looks again, without consuming a draw.
const idleClassRecheck = 15 * simclock.Minute

// startClasses forks one stream per arrival class — labelled by class
// position, so identical specs replay identically — and schedules each
// class's first arrival.
func (g *Generator) startClasses() {
	g.classes = make([]*classState, len(g.spec.Classes))
	for i, c := range g.spec.Classes {
		cs := &classState{spec: c, rng: g.rng.Fork(0xc1a5 + uint64(i))}
		g.classes[i] = cs
		g.scheduleClass(cs)
	}
}

// classRate is the class's current submission rate in jobs/hour: its
// share of the configured rate, under its own diurnal amplitude, times
// any surge windows covering it.
func (g *Generator) classRate(cs *classState, now simclock.Time) float64 {
	return g.cfg.DayJobsPerHour * cs.spec.Share *
		shaped(DiurnalShape(now), cs.spec.amp()) *
		g.spec.classFactor(cs.spec.Name, now)
}

// scheduleClass draws the class's next interarrival at the current rate
// and schedules the arrival, re-evaluating instead of submitting when
// the draw lands beyond maxClassDelay.
func (g *Generator) scheduleClass(cs *classState) {
	now := g.sim.Now()
	rate := g.classRate(cs, now)
	if rate <= 0 {
		cs.ev = g.sim.After(idleClassRecheck, "workload-class-idle:"+cs.spec.Name,
			func(simclock.Time) { g.scheduleClass(cs) })
		return
	}
	mean := simclock.Time(float64(simclock.Hour) / rate)
	delay := interarrival(cs.rng, cs.spec, mean)
	if delay > maxClassDelay {
		cs.ev = g.sim.After(maxClassDelay, "workload-class-redraw:"+cs.spec.Name,
			func(simclock.Time) { g.scheduleClass(cs) })
		return
	}
	cs.ev = g.sim.After(delay, "workload-class:"+cs.spec.Name,
		func(t simclock.Time) { g.classArrive(cs, t) })
}

// classArrive submits the class's batch work — one job, plus Burst more
// when the class's burst modifier fires — and chains the next arrival.
func (g *Generator) classArrive(cs *classState, now simclock.Time) {
	if g.lsfc != nil && len(g.dbNames) > 0 && !g.noTargets {
		n := 1
		if cs.spec.Burst > 0 && cs.rng.Float64() < cs.spec.BurstProb {
			n += cs.spec.Burst
		}
		for i := 0; i < n; i++ {
			g.submitOne(now, false)
		}
	}
	g.scheduleClass(cs)
}
