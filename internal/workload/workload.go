// Package workload generates the financial site's offered load (§4):
// analysts running data mining, financial projections, model evaluations
// and market-trend simulations interactively during the day; large batch
// jobs submitted through LSF — with the server hand-picked by the user, the
// practice whose failure modes motivate the DGSPL — heaviest overnight; and
// market data feeds arriving around the clock from international sites.
package workload

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/lsf"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// DiurnalShape reports the fraction of peak interactive load offered at t:
// near zero before 06:00, ramping to 1.0 across the trading day, with a
// lunchtime dip, decaying in the evening; weekends run at 15%.
func DiurnalShape(t simclock.Time) float64 {
	if t.IsWeekend() {
		return 0.15
	}
	h := float64(t.HourOfDay()) + float64(t%simclock.Hour)/float64(simclock.Hour)
	switch {
	case h < 6:
		return 0.05
	case h < 9:
		return 0.05 + 0.95*(h-6)/3
	case h < 17:
		// Trading day with a shallow lunch dip around 13:00.
		dip := 0.15 * math.Exp(-(h-13)*(h-13)/2)
		return 1.0 - dip
	case h < 22:
		return 1.0 - 0.85*(h-17)/5
	default:
		return 0.15
	}
}

// Config sizes the generator.
type Config struct {
	// PeakAnalysts is the number of concurrent interactive analysts at the
	// top of the day, spread over the front-end tier.
	PeakAnalysts int
	// DayJobsPerHour is the batch submission rate at peak.
	DayJobsPerHour float64
	// OvernightJobs is the size of the 22:00 batch drop.
	OvernightJobs int
	// JobWork is the mean job duration on a reference server.
	JobWork simclock.Time
	// FeedLoad is constant CPU demand per feed handler host.
	FeedLoad float64
}

// DefaultConfig returns a load shape proportionate to the paper's site.
func DefaultConfig() Config {
	return Config{
		PeakAnalysts:   300,
		DayJobsPerHour: 12,
		OvernightJobs:  40,
		JobWork:        2 * simclock.Hour,
		FeedLoad:       0.6,
	}
}

// Generator drives load into a datacentre.
type Generator struct {
	sim  *simclock.Sim
	rng  *simclock.Rand
	cfg  Config
	dc   *cluster.Datacentre
	dir  *svc.Directory
	lsfc *lsf.Cluster

	dbNames []string // LSF execution targets users pick from
	jobSeq  int

	// Counters for reports.
	JobsSubmitted int
	tickers       []*simclock.Ticker
}

// New builds a generator over the datacentre. dbNames are the database
// service names users submit jobs to; pass the LSF cluster's targets.
func New(sim *simclock.Sim, cfg Config, dc *cluster.Datacentre, dir *svc.Directory,
	lsfc *lsf.Cluster, dbNames []string) *Generator {
	return &Generator{
		sim: sim, rng: sim.Rand().Fork(0x301d), cfg: cfg,
		dc: dc, dir: dir, lsfc: lsfc, dbNames: dbNames,
	}
}

// Config returns the load shape the generator offers — after any
// site-size scaling the caller applied, so tests can pin override
// semantics.
func (g *Generator) Config() Config { return g.cfg }

// Reset returns the generator to the state New leaves it in, drawing a
// fresh stream fork exactly as New does. The caller passes the reseeded
// simulation's Rand; the fork label matches New so a reset generator
// replays the same submissions a fresh one would. Site reuse calls this
// between trials, then Start begins load generation anew.
func (g *Generator) Reset(parent *simclock.Rand) {
	g.rng = parent.Fork(0x301d)
	g.jobSeq = 0
	g.JobsSubmitted = 0
	g.tickers = nil
}

// Start begins offering load: interactive ambience refreshed every 15
// minutes, day batch submissions hourly-ish, the overnight drop at 22:00,
// and constant feed load.
func (g *Generator) Start() {
	g.tickers = append(g.tickers,
		g.sim.Every(g.sim.Now(), 15*simclock.Minute, "workload-interactive", g.refreshInteractive))
	g.tickers = append(g.tickers,
		g.sim.Every(g.sim.Now()+g.rng.UniformDuration(0, simclock.Hour), simclock.Hour, "workload-dayjobs", g.submitDayJobs))
	g.tickers = append(g.tickers,
		g.sim.Every(g.nextTenPM(), simclock.Day, "workload-overnight", g.submitOvernightBatch))
	g.applyFeedLoad()
}

// Stop ceases load generation.
func (g *Generator) Stop() {
	for _, t := range g.tickers {
		t.Stop()
	}
}

func (g *Generator) nextTenPM() simclock.Time {
	now := g.sim.Now()
	today := now - now%simclock.Day + 22*simclock.Hour
	if today <= now {
		today += simclock.Day
	}
	return today
}

// refreshInteractive retargets ambient load on front-end and database
// hosts to the diurnal shape: analysts hammering GUIs and ad-hoc queries.
func (g *Generator) refreshInteractive(now simclock.Time) {
	shape := DiurnalShape(now)
	fe := g.dc.ByRole(cluster.RoleFrontEnd)
	db := g.dc.ByRole(cluster.RoleDatabase)
	tx := g.dc.ByRole(cluster.RoleTransaction)
	for _, h := range fe {
		if h.Up() {
			// Analysts spread evenly; each costs ~0.02 CPUs on the front end.
			perHost := float64(g.cfg.PeakAnalysts) / float64(len(fe))
			h.SetAmbientLoad(shape * perHost * 0.02 * g.rng.Jitterf(0.2))
		}
	}
	for _, h := range db {
		if h.Up() {
			// Ad-hoc queries: a modest share of each database box.
			h.SetAmbientLoad(shape * 0.25 * float64(h.Model.CPUs) * g.rng.Jitterf(0.3))
		}
	}
	for _, h := range tx {
		if h.Up() {
			h.SetAmbientLoad(shape * 0.3 * float64(h.Model.CPUs) * g.rng.Jitterf(0.25))
		}
	}
}

// submitDayJobs trickles batch work during the day.
func (g *Generator) submitDayJobs(now simclock.Time) {
	if g.lsfc == nil || len(g.dbNames) == 0 {
		return
	}
	n := int(g.cfg.DayJobsPerHour * DiurnalShape(now) * g.rng.Jitterf(0.3))
	for i := 0; i < n; i++ {
		g.submitOne(now, false)
	}
}

// submitOvernightBatch drops the big overnight run at 22:00 — the jobs
// whose mid-run database crashes dominate the paper's downtime.
func (g *Generator) submitOvernightBatch(now simclock.Time) {
	if g.lsfc == nil || len(g.dbNames) == 0 {
		return
	}
	for i := 0; i < g.cfg.OvernightJobs; i++ {
		g.submitOne(now, true)
	}
}

// submitOne submits a job the way the site's users did: hand-picking a
// database server. Users are imperfect: mostly they pick a random server
// (no knowledge of current load), which is exactly the behaviour the paper
// blames for overloaded servers crashing mid-job.
func (g *Generator) submitOne(now simclock.Time, overnight bool) {
	g.jobSeq++
	name := fmt.Sprintf("analysis-%d", g.jobSeq)
	user := fmt.Sprintf("analyst%d", g.rng.Intn(50)+1)
	target := g.dbNames[g.rng.Intn(len(g.dbNames))]
	work := g.rng.Jitter(g.cfg.JobWork, 0.5)
	cpu := 0.5 + g.rng.Float64()*1.5
	mem := 128 + g.rng.Float64()*512
	if overnight {
		work *= 2
		cpu *= 1.5
	}
	g.lsfc.Submit(name, user, target, cpu, mem, 0.1, work)
	g.JobsSubmitted++
}

// applyFeedLoad puts steady demand on transaction hosts for market feeds.
func (g *Generator) applyFeedLoad() {
	for _, h := range g.dc.ByRole(cluster.RoleTransaction) {
		if h.Up() {
			h.AddDiskActivity(0.2)
		}
	}
}
