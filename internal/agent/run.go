package agent

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/notify"
	"repro/internal/simclock"
)

// Run executes one wake-up of the agent: the full five-part lifecycle. It
// is called by the cron wiring (see Schedule) and can be called directly in
// tests.
//
// Lifecycle, mirroring §3.3:
//  1. If the host is down, nothing runs (crons don't fire on dead iron).
//  2. Lock check: if another agent of the same type is running, exit.
//  3. Self-maintenance: remove flags from previous runs and old profiles.
//  4. Monitoring: observe the assigned aspect.
//  5. Diagnosing + Self-healing for every fault found.
//  6. Communication/Logging: flags, activity log, reports, escalation.
func (a *Agent) Run(sim *simclock.Sim) {
	if !a.host.Up() {
		return
	}
	if a.host.FS.Exists(a.lockPath) {
		a.counters.SkippedLock++
		return
	}
	a.run(sim, nil, false)
}

// obsState records what the concurrent observe phase saw, pending the
// serial apply phase.
type obsState uint8

const (
	obsIdle     obsState = iota // no observation pending
	obsDown                     // host was down; the run is a no-op
	obsLocked                   // lock file present; count SkippedLock and exit
	obsDeferred                 // run, but the monitor must execute in the apply phase
	obsRun                      // run with the findings gathered during observe
)

// Observe is the read-only half of the prepared cron protocol: it performs
// the host-up and lock checks and — for pure monitor parts — the monitoring
// itself, buffering the findings. It must not touch simulated state: no RNG,
// no filesystem writes, no notifications, no trace events, no counters. The
// sharded scheduler calls Observe concurrently across agents of one cron
// batch; everything it learns is replayed by Apply at the tick barrier.
func (a *Agent) Observe(now simclock.Time) {
	a.obsFindings = nil
	switch {
	case !a.host.Up():
		a.obsState = obsDown
	case a.host.FS.Exists(a.lockPath):
		a.obsState = obsLocked
	case !a.enabled.Monitor || a.parts.MonitorMutates:
		// Disabled or mutating monitors run (if at all) inside Apply.
		a.obsState = obsDeferred
	default:
		a.obsState = obsRun
		// Observation context: world-reading handles only. The mutating
		// hooks (Sim, Notify, Report, Detected, Repaired, Trace, log) stay
		// nil so a monitor that was wrongly declared pure trips over them.
		rc := &a.rc
		*rc = RunContext{
			Now:      now,
			Host:     a.host,
			Services: a.services,
			FS:       a.host.FS,
			agent:    a,
		}
		a.obsFindings = a.parts.Monitor(rc)
	}
}

// Apply is the serial half of the prepared cron protocol: it consumes the
// state Observe buffered and performs the full mutating lifecycle — process
// spawn, lock and flag writes, diagnose/heal with their RNG draws, trace
// events, counters and escalation. Agents earlier in the same tick's apply
// order may have changed the world since Observe ran (taken a lock, rebooted
// a host), so the host-up and lock checks are revalidated here; the serial
// path performs those same checks at the same instant, keeping the two
// dispatch modes on one trajectory.
func (a *Agent) Apply(sim *simclock.Sim, now simclock.Time) {
	state, findings := a.obsState, a.obsFindings
	a.obsState, a.obsFindings = obsIdle, nil
	switch state {
	case obsIdle, obsDown:
		return
	case obsLocked:
		a.counters.SkippedLock++
		return
	}
	if !a.host.Up() {
		return
	}
	if a.host.FS.Exists(a.lockPath) {
		a.counters.SkippedLock++
		return
	}
	a.run(sim, findings, state == obsRun)
}

// run is the mutating body shared by the serial path (Run) and the prepared
// path (Apply). When haveObserved is set, observed carries the findings a
// prior Observe gathered and the monitor part is not invoked again.
func (a *Agent) run(sim *simclock.Sim, observed []Finding, haveObserved bool) {
	a.counters.Runs++

	// The agent exists as a process only while awake: spawn, then reap at
	// the end of the run window, charging the CPU it burned. The reaper
	// closure is built once per agent (it reads exitPID at fire time) and
	// posted through the Sim's pooled no-handle path.
	proc := a.host.Spawn("intelliagent_"+a.name, "iagent", InstallDir, a.overhead.CPUDemand, a.overhead.MemMB)
	if proc == nil {
		return
	}
	a.lockLine[0] = "pid=" + strconv.Itoa(proc.PID)
	_ = a.host.FS.WriteLines(a.lockPath, a.lockLine[:])
	a.counters.CPUSeconds += a.overhead.CPUDemand * float64(a.overhead.RunDuration) / float64(simclock.Second)
	if a.exitFn == nil {
		a.exitFn = func(simclock.Time) {
			a.host.Kill(a.exitPID)
			_ = a.host.FS.Remove(a.lockPath)
		}
	}
	a.exitPID = proc.PID
	sim.PostAfter(a.overhead.RunDuration, "agent-exit:"+a.name, a.exitFn)

	rc := &a.rc
	*rc = RunContext{
		Now:      sim.Now(),
		Sim:      sim,
		Host:     a.host,
		Services: a.services,
		FS:       a.host.FS,
		Notify:   a.bus,
		Report:   a.report,
		Detected: a.detected,
		Repaired: a.repaired,
		Trace:    a.trace,
		log:      a.log,
		agent:    a,
	}

	// Self-maintenance: clear previous-run flags; the circular activity
	// log trims itself. When the previous run verifiably left exactly
	// ok.flag (flagsOK), the sweep has nothing to do — the only flag
	// present is the one an ok run would rewrite.
	cleanOK := a.flagsOK
	if a.enabled.SelfMaintain && !cleanOK {
		a.clearFlags()
	}

	if !a.enabled.Monitor {
		if cleanOK {
			a.dirtyFlags()
		}
		a.writeFlag("disabled", "")
		return
	}
	findings := observed
	if !haveObserved {
		findings = a.parts.Monitor(rc)
	}
	a.counters.Findings += len(findings)

	if len(findings) == 0 {
		if !cleanOK {
			a.writeFlag("ok", "")
			if a.enabled.SelfMaintain {
				a.flagsOK = true
			}
		}
		if a.enabled.Communicate {
			rc.Logf("run ok, no findings")
			if a.report != nil {
				a.report("agent-ok", a.name)
			}
		}
		return
	}
	if cleanOK {
		a.dirtyFlags()
	}

	for _, f := range findings {
		a.writeFlag("fault", sanitize(f.Aspect))
		if a.enabled.Communicate {
			rc.Logf("finding: %s [%s] %s", f.Aspect, f.Severity, f.Detail)
		}
		if rc.Detected != nil && f.Severity >= SevFault {
			rc.Detected(f.Aspect, rc.Now)
		}
	}

	if !a.enabled.Diagnose || a.parts.Diagnose == nil {
		a.escalateAll(rc, findings, "diagnosis disabled")
		return
	}
	diags := a.parts.Diagnose(rc, findings)
	for _, d := range diags {
		if a.enabled.Communicate {
			rc.Logf("diagnosis: %s -> root cause %q, action %s (confident=%v)",
				d.Finding.Aspect, d.RootCause, d.Action, d.Confident)
		}
		// The diagnose event is the counterfactual anchor: when a replay
		// armed an alternative for exactly this decision, the healing part
		// runs the alternative action instead of the prescription.
		id := rc.Trace.Diagnose(rc.Now, a.name, a.host.Name, d.Finding.Aspect,
			d.Rule, d.RootCause, d.Action, d.Evidence)
		if alt, ok := rc.Trace.Alternative(id); ok {
			d.Action = alt
		}
		if !a.enabled.Heal || a.parts.Heal == nil {
			a.escalate(rc, d.Finding, "healing disabled: "+d.RootCause)
			continue
		}
		res := a.parts.Heal(rc, d)
		rc.Trace.Heal(rc.Now, a.name, a.host.Name, d.Finding.Aspect,
			res.Action, res.Detail, res.Healed, res.Deferred, res.Escalate)
		if res.Healed {
			a.counters.Healed++
			a.writeFlag("healed", sanitize(d.Finding.Aspect))
			if rc.Repaired != nil && !res.Deferred {
				rc.Repaired(d.Finding.Aspect, rc.Now)
			}
			if a.enabled.Communicate {
				rc.Logf("healed: %s via %s (%s)", d.Finding.Aspect, res.Action, res.Detail)
			}
			continue
		}
		if a.enabled.Communicate {
			rc.Logf("heal failed: %s via %s (%s)", d.Finding.Aspect, res.Action, res.Detail)
		}
		if res.Escalate {
			a.escalate(rc, d.Finding, res.Detail)
		}
	}
}

// escalate notifies human administrators that the agent could not resolve a
// fault, per the paper's "if there is a problem they cannot resolve they
// notify human administrators (usually via email or SMS)".
func (a *Agent) escalate(rc *RunContext, f Finding, why string) {
	a.counters.Escalated++
	a.writeFlag("escalated", sanitize(f.Aspect))
	if !a.enabled.Communicate || a.bus == nil {
		return
	}
	for _, admin := range a.admins {
		a.bus.Send(notify.Email, a.name+"@"+a.host.Name, admin,
			fmt.Sprintf("UNRESOLVED %s on %s", f.Aspect, a.host.Name),
			fmt.Sprintf("%s: %s (%s)", f.Detail, why, f.Severity), "agent-escalation")
	}
	if a.report != nil {
		a.report("agent-escalation", fmt.Sprintf("%s|%s|%s", a.host.Name, f.Aspect, why))
	}
}

func (a *Agent) escalateAll(rc *RunContext, findings []Finding, why string) {
	for _, f := range findings {
		a.escalate(rc, f, why)
	}
}

// writeFlag drops a status flag with the naming convention
// <status>[.<detail>].flag in the agent's flag directory.
func (a *Agent) writeFlag(status, detail string) {
	_ = a.host.FS.WriteLines(a.flagDir+"/"+flagName(status, detail), nil)
}

// dirtyFlags leaves the flagsOK fast path: the ok flag the previous run
// left (and this run's skipped sweep preserved) is removed, exactly as the
// sweep would have, before the run writes its real flags.
func (a *Agent) dirtyFlags() {
	a.flagsOK = false
	_ = a.host.FS.Remove(a.flagDir + "/ok.flag")
}

// clearFlags removes previous-run flags (self-maintenance).
func (a *Agent) clearFlags() {
	names, err := a.host.FS.List(a.flagDir)
	if err != nil {
		return
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".flag") {
			_ = a.host.FS.Remove(a.flagDir + "/" + n)
		}
	}
}

// Flags lists the agent's current flag files.
func (a *Agent) Flags() []string {
	names, err := a.host.FS.List(a.flagDir)
	if err != nil {
		return nil
	}
	var out []string
	for _, n := range names {
		if strings.HasSuffix(n, ".flag") {
			out = append(out, n)
		}
	}
	return out
}

// HasFlag reports whether a flag with the given status prefix exists.
func (a *Agent) HasFlag(status string) bool {
	for _, f := range a.Flags() {
		if f == status+".flag" || strings.HasPrefix(f, status+".") {
			return true
		}
	}
	return false
}

// LogLines returns the agent's activity log.
func (a *Agent) LogLines() []string { return a.log.Lines() }

// sanitize makes an aspect safe for a file name. Nearly every aspect that
// reaches a flag write is already clean, so a byte scan decides first and the
// allocating strings.Map rewrite runs only when a byte actually needs
// replacing (any byte outside [a-zA-Z0-9_-], including UTF-8 continuation
// bytes, fails the scan).
func sanitize(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return strings.Map(func(r rune) rune {
				switch {
				case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
					return r
				default:
					return '-'
				}
			}, s)
		}
	}
	return s
}

// Schedule wires the agent to simulated cron: first run phase after now,
// then every period ("awakened every X minutes by local to each host Unix
// crons"). It returns the ticker so scenarios can stop it.
//
// This is the reference scheduling path — one heap ticker per agent. Sites
// default to ScheduleCoalesced; the equivalence tests hold the two paths
// byte-identical.
func (a *Agent) Schedule(sim *simclock.Sim, phase, period simclock.Time) *simclock.Ticker {
	return sim.Every(sim.Now()+phase, period, "cron:"+a.name, func(simclock.Time) { a.Run(sim) })
}

// ScheduleCoalesced wires the agent's cron onto a shared wheel: agents with
// the same phase and period share one repeating heap event. Firing times
// and run order are identical to Schedule — entries on a shared bucket run
// in registration order, the order their individual events would have
// fired in. It returns the entry so scenarios can stop it.
func (a *Agent) ScheduleCoalesced(sim *simclock.Sim, w *simclock.Wheel, phase, period simclock.Time) *simclock.CronEntry {
	return w.Add(sim.Now()+phase, period, "cron:"+a.name, func(simclock.Time) { a.Run(sim) })
}
