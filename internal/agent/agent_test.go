package agent

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/notify"
	"repro/internal/simclock"
	"repro/internal/svc"
)

type rig struct {
	sim  *simclock.Sim
	host *cluster.Host
	bus  *notify.Bus
	dir  *svc.Directory
}

func newRig() *rig {
	sim := simclock.New(3)
	return &rig{
		sim:  sim,
		host: cluster.NewHost(sim, "db001", "10.0.0.1", cluster.ModelE4500, cluster.RoleDatabase, "london", "UK"),
		bus:  notify.NewBus(sim),
		dir:  svc.NewDirectory(),
	}
}

func (r *rig) agent(t *testing.T, cfg Config) *Agent {
	t.Helper()
	cfg.Host = r.host
	cfg.Notify = r.bus
	cfg.Services = r.dir
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func okParts() Parts {
	return Parts{Monitor: func(rc *RunContext) []Finding { return nil }}
}

func faultParts(healOK bool) Parts {
	return Parts{
		Monitor: func(rc *RunContext) []Finding {
			return []Finding{{Aspect: "service.ORA-01", Severity: SevFault, Detail: "probe refused"}}
		},
		Diagnose: func(rc *RunContext, fs []Finding) []Diagnosis {
			var out []Diagnosis
			for _, f := range fs {
				out = append(out, Diagnosis{Finding: f, RootCause: "crashed", Action: "restart-service", Confident: true})
			}
			return out
		},
		Heal: func(rc *RunContext, d Diagnosis) HealResult {
			if healOK {
				return HealResult{Action: d.Action, Healed: true, Detail: "restarted"}
			}
			return HealResult{Action: d.Action, Healed: false, Detail: "restart failed", Escalate: true}
		},
	}
}

func TestNewValidation(t *testing.T) {
	r := newRig()
	if _, err := New(Config{Name: "", Host: r.host, Parts: okParts()}); err == nil {
		t.Error("missing name should fail")
	}
	if _, err := New(Config{Name: "x", Host: r.host}); err == nil {
		t.Error("missing monitor part should fail")
	}
}

func TestCleanRunWritesOKFlag(t *testing.T) {
	r := newRig()
	a := r.agent(t, Config{Name: "cpu", Category: CatResource, Parts: okParts()})
	a.Run(r.sim)
	if !a.HasFlag("ok") {
		t.Errorf("flags = %v", a.Flags())
	}
	if c := a.Counters(); c.Runs != 1 || c.Findings != 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestAgentIsNotMemoryResident(t *testing.T) {
	r := newRig()
	a := r.agent(t, Config{Name: "cpu", Category: CatResource, Parts: okParts()})
	a.Run(r.sim)
	if got := r.host.PGrep("intelliagent_cpu"); len(got) != 1 {
		t.Fatal("agent process should exist during the run window")
	}
	r.sim.RunUntil(r.sim.Now() + simclock.Minute)
	if got := r.host.PGrep("intelliagent_cpu"); len(got) != 0 {
		t.Error("agent process should exit after the run window")
	}
	if r.host.FS.Exists(InstallDir + "/cpu.lock") {
		t.Error("lock should be released")
	}
}

func TestDuplicateRunSkipsViaLock(t *testing.T) {
	r := newRig()
	a := r.agent(t, Config{Name: "backup", Category: CatResource, Parts: okParts()})
	a.Run(r.sim)
	a.Run(r.sim) // lock still held: run window has not elapsed
	c := a.Counters()
	if c.Runs != 1 || c.SkippedLock != 1 {
		t.Errorf("counters = %+v", c)
	}
	r.sim.RunUntil(r.sim.Now() + simclock.Minute)
	a.Run(r.sim)
	if a.Counters().Runs != 2 {
		t.Error("run after lock release should proceed")
	}
}

func TestDownHostNoRun(t *testing.T) {
	r := newRig()
	a := r.agent(t, Config{Name: "cpu", Parts: okParts()})
	r.host.Crash()
	a.Run(r.sim)
	if a.Counters().Runs != 0 {
		t.Error("agents cannot run on a dead host")
	}
}

func TestFaultFlagsAndHeal(t *testing.T) {
	r := newRig()
	var detected, repaired []string
	a := r.agent(t, Config{
		Name: "service-ORA-01", Category: CatService, Parts: faultParts(true),
		Detected: func(aspect string, _ simclock.Time) { detected = append(detected, aspect) },
		Repaired: func(aspect string, _ simclock.Time) { repaired = append(repaired, aspect) },
	})
	a.Run(r.sim)
	if !a.HasFlag("fault") || !a.HasFlag("healed") {
		t.Errorf("flags = %v", a.Flags())
	}
	if a.HasFlag("ok") {
		t.Error("fault run must not write ok flag")
	}
	if len(detected) != 1 || detected[0] != "service.ORA-01" {
		t.Errorf("detected = %v", detected)
	}
	if len(repaired) != 1 {
		t.Errorf("repaired = %v", repaired)
	}
	c := a.Counters()
	if c.Findings != 1 || c.Healed != 1 || c.Escalated != 0 {
		t.Errorf("counters = %+v", c)
	}
	logText := strings.Join(a.LogLines(), "\n")
	for _, want := range []string{"finding:", "diagnosis:", "healed:"} {
		if !strings.Contains(logText, want) {
			t.Errorf("activity log missing %q:\n%s", want, logText)
		}
	}
}

func TestHealFailureEscalates(t *testing.T) {
	r := newRig()
	a := r.agent(t, Config{
		Name: "service-ORA-01", Category: CatService, Parts: faultParts(false),
		AdminEmail: "oncall@site",
	})
	a.Run(r.sim)
	if !a.HasFlag("escalated") {
		t.Errorf("flags = %v", a.Flags())
	}
	if a.Counters().Escalated != 1 {
		t.Errorf("counters = %+v", a.Counters())
	}
	if r.bus.CountByTag("agent-escalation") != 1 {
		t.Error("escalation email missing")
	}
	n := r.bus.History()[0]
	if n.To != "oncall@site" || !strings.Contains(n.Subject, "ORA-01") {
		t.Errorf("notification: %+v", n)
	}
}

func TestSelfMaintenanceClearsOldFlags(t *testing.T) {
	r := newRig()
	a := r.agent(t, Config{Name: "cpu", Parts: faultParts(true)})
	a.Run(r.sim)
	if !a.HasFlag("fault") {
		t.Fatal("precondition: fault flag")
	}
	r.sim.RunUntil(r.sim.Now() + simclock.Minute)
	// Next run is clean: the Monitor below observes nothing. Swap parts by
	// installing a second agent with the same name/flag dir.
	b := r.agent(t, Config{Name: "cpu", Parts: okParts()})
	b.Run(r.sim)
	if b.HasFlag("fault") {
		t.Errorf("stale fault flag survived self-maintenance: %v", b.Flags())
	}
	if !b.HasFlag("ok") {
		t.Errorf("flags = %v", b.Flags())
	}
}

func TestDisabledParts(t *testing.T) {
	r := newRig()
	en := AllEnabled()
	en.Heal = false
	a := r.agent(t, Config{Name: "x", Parts: faultParts(true), Enabled: &en, AdminEmail: "ops@site"})
	a.Run(r.sim)
	if a.Counters().Healed != 0 {
		t.Error("healing disabled but healed")
	}
	if a.Counters().Escalated != 1 {
		t.Error("disabled healing should escalate")
	}

	r2 := newRig()
	en2 := AllEnabled()
	en2.Monitor = false
	b, _ := New(Config{Name: "y", Host: r2.host, Notify: r2.bus, Parts: faultParts(true), Enabled: &en2})
	b.Run(r2.sim)
	if b.Counters().Findings != 0 || !b.HasFlag("disabled") {
		t.Errorf("monitor disabled: counters=%+v flags=%v", b.Counters(), b.Flags())
	}
}

func TestReportHook(t *testing.T) {
	r := newRig()
	var kinds []string
	a := r.agent(t, Config{Name: "cpu", Parts: okParts(),
		Report: func(kind, payload string) { kinds = append(kinds, kind) }})
	a.Run(r.sim)
	if len(kinds) != 1 || kinds[0] != "agent-ok" {
		t.Errorf("reports = %v", kinds)
	}
}

func TestScheduleCron(t *testing.T) {
	r := newRig()
	a := r.agent(t, Config{Name: "cpu", Parts: okParts()})
	tk := a.Schedule(r.sim, 0, 5*simclock.Minute)
	r.sim.RunUntil(30 * simclock.Minute)
	if got := a.Counters().Runs; got != 7 { // t=0,5,...,30
		t.Errorf("runs = %d, want 7", got)
	}
	tk.Stop()
	r.sim.RunUntil(60 * simclock.Minute)
	if got := a.Counters().Runs; got != 7 {
		t.Errorf("runs after stop = %d", got)
	}
}

func TestCPUSecondsAccounting(t *testing.T) {
	r := newRig()
	a := r.agent(t, Config{Name: "cpu", Parts: okParts()})
	a.Schedule(r.sim, 0, 5*simclock.Minute)
	r.sim.RunUntil(30 * simclock.Minute)
	// 7 runs x 0.054 CPU x 4 s = 1.512 CPU-seconds.
	got := a.Counters().CPUSeconds
	if got < 1.51 || got > 1.52 {
		t.Errorf("CPUSeconds = %v, want 1.512", got)
	}
}

func TestSeverityBelowFaultNotDetected(t *testing.T) {
	r := newRig()
	var detected []string
	parts := Parts{
		Monitor: func(rc *RunContext) []Finding {
			return []Finding{{Aspect: "cpu.idle", Severity: SevWarning, Detail: "slightly busy"}}
		},
		Diagnose: func(rc *RunContext, fs []Finding) []Diagnosis { return nil },
	}
	a := r.agent(t, Config{Name: "cpu", Parts: parts,
		Detected: func(aspect string, _ simclock.Time) { detected = append(detected, aspect) }})
	a.Run(r.sim)
	if len(detected) != 0 {
		t.Errorf("warnings must not count as fault detections: %v", detected)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("service.ORA-01/x y"); got != "service-ORA-01-x-y" {
		t.Errorf("sanitize = %q", got)
	}
}

func TestFlagNaming(t *testing.T) {
	if flagName("ok", "") != "ok.flag" || flagName("fault", "svc") != "fault.svc.flag" {
		t.Error("flag naming convention broken")
	}
}
