package agent

import (
	"fmt"
	"testing"

	"repro/internal/simclock"
)

func TestQuantizePhase(t *testing.T) {
	period := 8 * simclock.Minute
	cases := []struct {
		draw  simclock.Time
		slots int
		want  simclock.Time
	}{
		{0, 8, simclock.Minute},                          // first slot fires at its end
		{simclock.Minute - 1, 8, simclock.Minute},        // still slot 0
		{simclock.Minute, 8, 2 * simclock.Minute},        // slot boundary belongs to the next slot
		{period - 1, 8, period},                          // last slot fires a full period out
		{period - 1, 1, period},                          // one slot = everything at period
		{3*simclock.Minute + 17, 4, 4 * simclock.Minute}, // slot width 2min, slot 1 ends at 4min
	}
	for _, c := range cases {
		if got := QuantizePhase(c.draw, period, c.slots); got != c.want {
			t.Errorf("QuantizePhase(%v, %v, %d) = %v, want %v", c.draw, period, c.slots, got, c.want)
		}
	}
	// Degenerate grid: a period shorter than the slot count keeps the raw
	// draw (slot width zero would otherwise collapse every phase to zero,
	// which AddPrepared rejects).
	if got := QuantizePhase(3, 5, 10); got != 3 {
		t.Errorf("degenerate QuantizePhase = %v, want the raw draw 3", got)
	}
	// Quantized phases are always in (0, period].
	for draw := simclock.Time(0); draw < period; draw += period / 13 {
		q := QuantizePhase(draw, period, 8)
		if q <= 0 || q > period {
			t.Fatalf("QuantizePhase(%v) = %v outside (0, %v]", draw, q, period)
		}
	}
}

// schedRig builds n same-parts agents on one rig and schedules them either
// per-agent on a plain wheel (serial reference) or through the batching
// Scheduler, with the phases pre-quantized so both paths fire at identical
// instants.
func schedRig(t *testing.T, n, slots int, pool *simclock.Pool, batch bool, parts func() Parts) (*rig, []*Agent) {
	t.Helper()
	r := newRig()
	w := simclock.NewWheel(r.sim)
	w.SetPool(pool)
	var sched *Scheduler
	if batch {
		sched = NewScheduler(r.sim, w, slots)
	}
	period := 5 * simclock.Minute
	agents := make([]*Agent, 0, n)
	for i := 0; i < n; i++ {
		a := r.agent(t, Config{Name: fmt.Sprintf("cpu%d", i), Category: CatResource, Parts: parts()})
		agents = append(agents, a)
		phase := simclock.Time(i) * 37 * simclock.Second
		if batch {
			sched.Add(a, phase, period)
		} else {
			a.ScheduleCoalesced(r.sim, w, QuantizePhase(phase, period, slots), period)
		}
	}
	if batch {
		sched.Start()
	}
	return r, agents
}

// TestSchedulerMatchesSerial pins the batched observe/apply dispatch to the
// serial per-agent path: same quantized phases, same period, same parts —
// counters must land identically after several cron periods.
func TestSchedulerMatchesSerial(t *testing.T) {
	for _, shards := range []int{0, 2, 4} {
		var pool *simclock.Pool
		if shards > 1 {
			pool = simclock.NewPool(shards)
		}
		parts := func() Parts { return faultParts(true) }
		rSerial, serial := schedRig(t, 5, 4, nil, false, parts)
		rBatch, batched := schedRig(t, 5, 4, pool, true, parts)
		end := 7 * 5 * simclock.Minute
		rSerial.sim.RunUntil(end)
		rBatch.sim.RunUntil(end)
		for i := range serial {
			sc, bc := serial[i].Counters(), batched[i].Counters()
			if sc != bc {
				t.Errorf("shards=%d agent %d: serial counters %+v != batched %+v", shards, i, sc, bc)
			}
			if sc.Runs == 0 && sc.SkippedLock == 0 {
				t.Errorf("shards=%d agent %d never woke", shards, i)
			}
		}
	}
}

// TestLockContention pins the SkippedLock path when two agents of the same
// type (same name, hence one shared lock file) race one cron slot: the
// first wins the lock and runs, the second counts a skip — identically
// under serial per-agent dispatch and under sharded batch dispatch, where
// both observe an un-locked world concurrently and the loser's apply-time
// revalidation catches the lock the winner just wrote.
func TestLockContention(t *testing.T) {
	run := func(t *testing.T, batch bool, pool *simclock.Pool) []*Agent {
		t.Helper()
		r := newRig()
		w := simclock.NewWheel(r.sim)
		w.SetPool(pool)
		period := 5 * simclock.Minute
		var agents []*Agent
		var sched *Scheduler
		if batch {
			sched = NewScheduler(r.sim, w, 1)
		}
		for i := 0; i < 2; i++ {
			a := r.agent(t, Config{Name: "cpu", Category: CatResource, Parts: okParts()})
			agents = append(agents, a)
			if batch {
				sched.Add(a, 0, period) // one slot: both quantize onto the same batch
			} else {
				a.ScheduleCoalesced(r.sim, w, period, period)
			}
		}
		if batch {
			sched.Start()
		}
		r.sim.RunUntil(3 * period)
		return agents
	}

	check := func(t *testing.T, agents []*Agent) {
		t.Helper()
		first, second := agents[0].Counters(), agents[1].Counters()
		if first.Runs != 3 || first.SkippedLock != 0 {
			t.Errorf("winner counters = %+v, want 3 runs, 0 skips", first)
		}
		if second.Runs != 0 || second.SkippedLock != 3 {
			t.Errorf("loser counters = %+v, want 0 runs, 3 skips", second)
		}
		// The winner's clean runs leave exactly the shared ok flag.
		if !agents[0].HasFlag("ok") {
			t.Errorf("flags = %v, want ok.flag", agents[0].Flags())
		}
	}

	t.Run("serial", func(t *testing.T) { check(t, run(t, false, nil)) })
	t.Run("batched", func(t *testing.T) { check(t, run(t, true, nil)) })
	t.Run("batched-sharded", func(t *testing.T) { check(t, run(t, true, simclock.NewPool(2))) })
}

// TestObserveApplyMatchesRun drives one faulty agent through the split
// protocol by hand and checks the full lifecycle (flags, counters, heal)
// against a twin driven through Run.
func TestObserveApplyMatchesRun(t *testing.T) {
	rRun := newRig()
	aRun := rRun.agent(t, Config{Name: "svc", Category: CatService, Parts: faultParts(true)})
	aRun.Run(rRun.sim)

	rSplit := newRig()
	aSplit := rSplit.agent(t, Config{Name: "svc", Category: CatService, Parts: faultParts(true)})
	aSplit.Observe(rSplit.sim.Now())
	aSplit.Apply(rSplit.sim, rSplit.sim.Now())

	if cr, cs := aRun.Counters(), aSplit.Counters(); cr != cs {
		t.Errorf("Run counters %+v != Observe/Apply counters %+v", cr, cs)
	}
	for _, flag := range []string{"fault", "healed"} {
		if aRun.HasFlag(flag) != aSplit.HasFlag(flag) {
			t.Errorf("flag %q: Run %v, split %v", flag, aRun.HasFlag(flag), aSplit.HasFlag(flag))
		}
	}
	// A second Apply without an Observe is a no-op (obsIdle).
	before := aSplit.Counters()
	aSplit.Apply(rSplit.sim, rSplit.sim.Now())
	if aSplit.Counters() != before {
		t.Error("Apply without Observe should be a no-op")
	}
}

// TestObserveDownAndLocked pins the early-exit observations.
func TestObserveDownAndLocked(t *testing.T) {
	r := newRig()
	a := r.agent(t, Config{Name: "cpu", Category: CatResource, Parts: okParts()})

	_ = r.host.FS.WriteLines(InstallDir+"/cpu.lock", []string{"pid=1"})
	a.Observe(r.sim.Now())
	a.Apply(r.sim, r.sim.Now())
	if c := a.Counters(); c.Runs != 0 || c.SkippedLock != 1 {
		t.Errorf("locked counters = %+v, want 1 skip", c)
	}
	_ = r.host.FS.Remove(InstallDir + "/cpu.lock")

	r.host.Crash()
	a.Observe(r.sim.Now())
	a.Apply(r.sim, r.sim.Now())
	if c := a.Counters(); c.Runs != 0 || c.SkippedLock != 1 {
		t.Errorf("down-host counters = %+v, want no new activity", c)
	}
}

func TestSanitizeFastPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"memory.scanrate", "memory-scanrate"},
		{"clean_aspect-01", "clean_aspect-01"},
		{"service.ORA-01", "service-ORA-01"},
		{"", ""},
		{"héllo", "h-llo"}, // the multi-byte rune fails the byte scan, maps to one dash
		{"ALLCLEAN", "ALLCLEAN"},
	}
	for _, c := range cases {
		if got := sanitize(c.in); got != c.want {
			t.Errorf("sanitize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// The clean fast path must neither allocate nor copy.
	clean := "clean_aspect-01"
	if allocs := testing.AllocsPerRun(100, func() { _ = sanitize(clean) }); allocs != 0 {
		t.Errorf("sanitize(clean) allocates %.0f times per run, want 0", allocs)
	}
}

var benchAspect = "service_availability" // package-level so the compiler cannot fold the call

func BenchmarkSanitizeClean(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sanitize(benchAspect)
	}
}

func BenchmarkSanitizeDirty(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sanitize("service.ORA-01")
	}
}
