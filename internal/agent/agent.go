// Package agent implements the paper's intelliagent framework (§3.3): Unix
// programs, awakened every X minutes by cron, that monitor one
// infrastructure aspect each, diagnose faults with constraint-based causal
// reasoning, repair them where possible, log everything, and maintain
// themselves. Agents are not memory resident — they exist as a short-lived
// process for the duration of each run — and every run leaves flag files
// under /logs/intelliagents/<name> that show what happened and exactly
// where the agent found a fault. Absence of flags means the agent itself is
// broken, which the administration servers watch for.
package agent

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fsim"
	"repro/internal/notify"
	"repro/internal/simclock"
	"repro/internal/svc"
	"repro/internal/trace"
)

// Category classifies an intelliagent by function (§3.3): hardware, OS/
// network, resource, application/service, status and performance agents.
type Category string

// Intelliagent categories.
const (
	CatHardware    Category = "hardware"
	CatOSNetwork   Category = "os-network"
	CatResource    Category = "resource"
	CatService     Category = "service"
	CatStatus      Category = "status"
	CatPerformance Category = "performance"
)

// Severity grades a finding.
type Severity int

// Severities.
const (
	SevInfo Severity = iota
	SevWarning
	SevFault
	SevCritical
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevFault:
		return "fault"
	case SevCritical:
		return "critical"
	}
	return "?"
}

// Finding is something the monitoring part observed to be off-nominal.
type Finding struct {
	Aspect   string // e.g. "memory.scanrate", "service.ORA-01"
	Severity Severity
	Detail   string
	Metric   float64 // the measured value that tripped, if numeric
}

// Diagnosis is the diagnosing part's conclusion about a finding.
type Diagnosis struct {
	Finding   Finding
	RootCause string // e.g. "database crashed mid-job"
	Action    string // prescribed repair, e.g. "restart-service"
	Confident bool   // constraint chain fully satisfied
	// Rule names the causal rule that fired ("" when none matched and the
	// fault is obscure); Evidence carries the diagnosing part's rendered
	// evidence lines when the run's trace asks for them. Both exist for
	// decision traces and change nothing about healing.
	Rule     string
	Evidence []string
}

// HealResult is the outcome of one repair attempt.
type HealResult struct {
	Action   string
	Healed   bool
	Detail   string
	Escalate bool // could not fix: notify human administrators
	// Deferred marks a repair that was initiated but completes later
	// (e.g. a database restart takes minutes); the action itself signals
	// the registry through RunContext.Repaired when it finishes, so the
	// framework must not.
	Deferred bool
}

// RunContext is everything a part may touch during one run. Agents see the
// world only through it, which keeps them testable in isolation.
type RunContext struct {
	Now      simclock.Time
	Sim      *simclock.Sim
	Host     *cluster.Host
	Services *svc.Directory
	FS       *fsim.FS
	Notify   *notify.Bus
	// Report sends a message to the administration servers over the
	// private agent network (may be nil when no admin tier is deployed).
	Report func(kind, payload string)
	// Detected tells the fault registry the agent spotted trouble on this
	// host/aspect (nil when no registry is wired).
	Detected func(aspect string, now simclock.Time)
	// Repaired tells the fault registry a repair completed.
	Repaired func(aspect string, now simclock.Time)
	// Trace records diagnose/heal decision events (nil-safe; nil when the
	// site runs untraced).
	Trace *trace.Recorder
	log   *fsim.CircLog
	agent *Agent
}

// Logf appends a line to the agent's activity log (communication part).
func (rc *RunContext) Logf(format string, args ...any) {
	if rc.log == nil {
		return
	}
	buf := rc.Now.AppendString(rc.agent.logBuf[:0])
	buf = append(buf, ' ')
	buf = append(buf, rc.agent.name...)
	buf = append(buf, ':', ' ')
	if len(args) == 0 && !strings.ContainsRune(format, '%') {
		buf = append(buf, format...)
	} else {
		buf = fmt.Appendf(buf, format, args...)
	}
	rc.agent.logBuf = buf[:0]
	_ = rc.log.Append(string(buf))
}

// Parts are the pluggable halves of the five-part anatomy: monitoring,
// diagnosing and self-healing are agent-specific; communication/logging and
// self-maintenance are provided by the framework around them.
type Parts struct {
	Monitor  func(rc *RunContext) []Finding
	Diagnose func(rc *RunContext, fs []Finding) []Diagnosis
	Heal     func(rc *RunContext, d Diagnosis) HealResult
	// MonitorMutates declares that Monitor writes state (filesystem, logs,
	// notifications, reports) instead of only observing it. The sharded
	// scheduler runs such monitors in the serial apply phase; pure monitors
	// (the default) run concurrently in the observe phase. Misdeclaring a
	// mutating monitor as pure is a data race under -shards; the observe
	// RunContext carries nil Sim/Notify/Report/Trace hooks so most
	// accidental mutation attempts fail loudly.
	MonitorMutates bool
}

// Enabled toggles each of the five parts; the paper allows parts to be
// activated or deactivated at installation or later.
type Enabled struct {
	Monitor      bool
	Diagnose     bool
	Heal         bool
	Communicate  bool
	SelfMaintain bool
}

// AllEnabled returns the default: every part active.
func AllEnabled() Enabled {
	return Enabled{Monitor: true, Diagnose: true, Heal: true, Communicate: true, SelfMaintain: true}
}

// Overhead is the agent's resource footprint while awake; the paper's
// Figures 3 and 4 measure exactly this against BMC Patrol.
type Overhead struct {
	RunDuration simclock.Time // how long one run keeps a process alive
	CPUDemand   float64       // CPUs-worth while running
	MemMB       float64       // resident memory while running
}

// DefaultOverhead reflects the paper's measurements: ~1.6 MB resident while
// awake, and a CPU cost calibrated so a host's typical five-agent
// complement averages ~0.045% of an 8-CPU system over a half-hour window
// (5 agents x 6 runs x 0.216 CPU-s per run / (1800 s x 8 CPUs) ≈ 0.045%).
func DefaultOverhead() Overhead {
	return Overhead{
		RunDuration: 4 * simclock.Second,
		CPUDemand:   0.054,
		MemMB:       1.6,
	}
}

// Counters accumulate over an agent's life for reports.
type Counters struct {
	Runs        int
	SkippedLock int
	Findings    int
	Healed      int
	Escalated   int
	CPUSeconds  float64 // total CPU-seconds consumed (for overhead figures)
}

// Agent is one installed intelliagent.
type Agent struct {
	name     string
	category Category
	host     *cluster.Host
	services *svc.Directory
	bus      *notify.Bus
	parts    Parts
	enabled  Enabled
	overhead Overhead

	flagDir  string
	lockPath string
	logPath  string
	log      *fsim.CircLog

	report   func(kind, payload string)
	detected func(aspect string, now simclock.Time)
	repaired func(aspect string, now simclock.Time)
	trace    *trace.Recorder

	counters Counters
	admins   []string

	// Hot-loop scratch state. rc is the reusable run context handed to the
	// parts each run (parts must not retain it past the run, which none
	// do); logBuf backs Logf's formatting; lockLine backs the lock file
	// write; exitFn is the preallocated end-of-run reaper; flagsOK records
	// that the flag directory holds exactly ok.flag — the self-maintenance
	// fast path: an ok run following an ok run leaves the flag state
	// byte-identical, so neither the sweep nor the rewrite needs to touch
	// the filesystem.
	rc       RunContext
	logBuf   []byte
	lockLine [1]string
	exitFn   func(simclock.Time)
	exitPID  int
	flagsOK  bool

	// Prepared-protocol state: what the concurrent observe phase saw, consumed
	// by the serial apply phase at the tick barrier (see Observe/Apply).
	obsState    obsState
	obsFindings []Finding
}

// InstallDir is where every intelliagent lives, per the paper ("always in
// the same physical location /apps/intelliagents").
const InstallDir = "/apps/intelliagents"

// FlagRoot is the per-agent flag directory root.
const FlagRoot = "/logs/intelliagents"

// Config assembles an agent.
type Config struct {
	Name     string
	Category Category
	Host     *cluster.Host
	Services *svc.Directory
	Notify   *notify.Bus
	Parts    Parts
	Enabled  *Enabled  // nil = all enabled
	Overhead *Overhead // nil = defaults
	// Report/Detected/Repaired hooks; any may be nil.
	Report   func(kind, payload string)
	Detected func(aspect string, now simclock.Time)
	Repaired func(aspect string, now simclock.Time)
	// Trace records the agent's diagnose/heal decisions (nil = untraced).
	Trace *trace.Recorder
	// AdminEmail receives escalations.
	AdminEmail string
	// LogLines caps the circular activity log (default 500).
	LogLines int
}

// New installs an intelliagent on its host.
func New(cfg Config) (*Agent, error) {
	if cfg.Name == "" || cfg.Host == nil {
		return nil, fmt.Errorf("agent: name and host are required")
	}
	if cfg.Parts.Monitor == nil {
		return nil, fmt.Errorf("agent: %s: monitoring part is required", cfg.Name)
	}
	a := &Agent{
		name:     cfg.Name,
		category: cfg.Category,
		host:     cfg.Host,
		services: cfg.Services,
		bus:      cfg.Notify,
		parts:    cfg.Parts,
		enabled:  AllEnabled(),
		overhead: DefaultOverhead(),
		flagDir:  FlagRoot + "/" + cfg.Name,
		lockPath: InstallDir + "/" + cfg.Name + ".lock",
		logPath:  FlagRoot + "/" + cfg.Name + "/activity.log",
		report:   cfg.Report,
		detected: cfg.Detected,
		repaired: cfg.Repaired,
		trace:    cfg.Trace,
	}
	if cfg.Enabled != nil {
		a.enabled = *cfg.Enabled
	}
	if cfg.Overhead != nil {
		a.overhead = *cfg.Overhead
	}
	if cfg.AdminEmail != "" {
		a.admins = append(a.admins, cfg.AdminEmail)
	}
	lines := cfg.LogLines
	if lines == 0 {
		lines = 500
	}
	var err error
	a.log, err = fsim.NewCircLog(cfg.Host.FS, a.logPath, lines)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Name reports the agent's name.
func (a *Agent) Name() string { return a.name }

// Category reports the agent's category.
func (a *Agent) Category() Category { return a.category }

// Host reports the host the agent is installed on.
func (a *Agent) Host() *cluster.Host { return a.host }

// Counters returns a copy of the lifetime counters.
func (a *Agent) Counters() Counters { return a.counters }

// Overhead returns the configured footprint.
func (a *Agent) Overhead() Overhead { return a.overhead }

// FlagDir reports the agent's flag directory.
func (a *Agent) FlagDir() string { return a.flagDir }

// flagName builds a conventional flag file name.
func flagName(status, detail string) string {
	if detail == "" {
		return status + ".flag"
	}
	return status + "." + detail + ".flag"
}
