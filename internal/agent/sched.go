package agent

import (
	"fmt"

	"repro/internal/simclock"
)

// Scheduler coalesces agent crons into per-(phase, period) prepared batch
// walks, mirroring internal/probe's engine: agents whose wake-ups land on
// the same slot share one repeating wheel bucket, split into one contiguous
// sub-range per pool shard. Each sub-range registers a prepared entry whose
// prepare runs the members' read-only Observe concurrently across shards and
// whose apply replays the members' mutating Apply serially at the tick
// barrier, in registration (= deployment) order.
//
// The trajectory is byte-identical at every shard count: with no pool (or
// one shard) a group registers a single sub-range spanning all members, so
// its one prepare observes every member before its apply mutates anything —
// the same observe-all-then-apply-all semantics the sharded barrier
// enforces. What slotting does change, relative to the per-agent dispatch,
// is the wake-up instants themselves: raw continuous phases quantize onto
// the slot grid (see QuantizePhase), so slotted runs are a different —
// equally valid — trajectory from unslotted ones. Hence slotting is an
// opt-in model knob (Options.AgentSlots) recorded in campaign JSON, not an
// execution knob like shard count.
type Scheduler struct {
	sim     *simclock.Sim
	wheel   *simclock.Wheel
	slots   int
	groups  map[schedKey]*schedGroup
	order   []*schedGroup
	started bool
	agents  int
}

type schedKey struct {
	phase, period simclock.Time
}

type schedGroup struct {
	key     schedKey
	members []*Agent
}

// NewScheduler builds a scheduler dispatching onto w with the given slot
// count per cron period.
func NewScheduler(sim *simclock.Sim, w *simclock.Wheel, slots int) *Scheduler {
	if sim == nil || w == nil {
		panic("agent: NewScheduler needs a sim and a wheel")
	}
	if slots <= 0 {
		panic(fmt.Sprintf("agent: NewScheduler slots must be positive, got %d", slots))
	}
	return &Scheduler{sim: sim, wheel: w, slots: slots, groups: map[schedKey]*schedGroup{}}
}

// QuantizePhase maps a continuous phase draw in [0, period) onto the slot
// grid: with slot width w = period/slots, the draw's slot s = draw/w fires
// at the slot's end (s+1)·w, mirroring the probe engine's layout (first
// fire strictly after now, at most one period out). Each agent still burns
// exactly one phase draw from the deployment RNG stream, so adding slots
// never shifts any other draw. Degenerate grids — a period shorter than the
// slot count — leave the draw unquantized, which costs nothing but
// batching.
func QuantizePhase(draw, period simclock.Time, slots int) simclock.Time {
	w := period / simclock.Time(slots)
	if w <= 0 {
		return draw
	}
	s := draw / w
	if s >= simclock.Time(slots) {
		s = simclock.Time(slots) - 1
	}
	return (s + 1) * w
}

// Add enrolls an agent whose cron would fire at now+phase and every period
// thereafter; the phase is quantized onto the slot grid. Must precede Start.
func (s *Scheduler) Add(a *Agent, phase, period simclock.Time) {
	if s.started {
		panic("agent: Scheduler.Add after Start")
	}
	key := schedKey{phase: QuantizePhase(phase, period, s.slots), period: period}
	g := s.groups[key]
	if g == nil {
		g = &schedGroup{key: key}
		s.groups[key] = g
		s.order = append(s.order, g)
	}
	g.members = append(g.members, a)
	s.agents++
}

// Start registers the wheel entries. Every group lays out one prepared
// sub-range per pool shard, registered shard-minor, so the wheel's strided
// prepare assignment (entry i → shard i%shards) hands each worker exactly
// its own sub-range and the barrier's registration-order apply equals
// ascending member order. Empty sub-ranges (groups smaller than the shard
// count) are skipped.
func (s *Scheduler) Start() {
	if s.started {
		panic("agent: Scheduler.Start called twice")
	}
	s.started = true
	now := s.sim.Now()
	shards := s.wheel.Pool().Shards()
	for _, g := range s.order {
		for sh := 0; sh < shards; sh++ {
			lo, hi := simclock.Span(sh, shards, len(g.members))
			if lo == hi {
				continue
			}
			b := &schedBatch{sim: s.sim, members: g.members[lo:hi]}
			b.apply = b.applyAll
			s.wheel.AddPrepared(now+g.key.phase, g.key.period,
				fmt.Sprintf("cron-batch:%v/%v[%d:%d]", g.key.phase, g.key.period, lo, hi),
				b.prepare)
		}
	}
}

// Agents reports how many agents have been enrolled.
func (s *Scheduler) Agents() int { return s.agents }

// Groups reports how many distinct (phase, period) batches exist.
func (s *Scheduler) Groups() int { return len(s.order) }

// schedBatch is one contiguous member sub-range of one cron group — the
// unit of work a shard prepares. The apply closure is preallocated so the
// hot loop returns the same func value every period, like probe's
// shardRange.
type schedBatch struct {
	sim     *simclock.Sim
	members []*Agent
	apply   func(now simclock.Time)
}

func (b *schedBatch) prepare(now simclock.Time) func(simclock.Time) {
	for _, a := range b.members {
		a.Observe(now)
	}
	return b.apply
}

func (b *schedBatch) applyAll(now simclock.Time) {
	for _, a := range b.members {
		a.Apply(b.sim, now)
	}
}
