package agents

import (
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// RegistryBridge adapts a faultinject.Registry to the agent framework's
// Detected/Repaired hooks, crediting "intelliagent" in the ledger. One
// bridge serves the whole deployment; hooks are minted per host.
type RegistryBridge struct {
	Reg *faultinject.Registry
}

// NewRegistryBridge wraps a registry over the given ledger.
func NewRegistryBridge(ledger *metrics.Ledger) *RegistryBridge {
	return &RegistryBridge{Reg: faultinject.NewRegistry(ledger)}
}

// Detected returns the detection hook for agents installed on host.
func (b *RegistryBridge) Detected(host string) func(aspect string, now simclock.Time) {
	return func(aspect string, now simclock.Time) {
		b.Reg.Detected(host, aspect, now, "intelliagent")
	}
}

// Repaired returns the repair hook for agents installed on host.
func (b *RegistryBridge) Repaired(host string) func(aspect string, now simclock.Time) {
	return func(aspect string, now simclock.Time) {
		b.Reg.Resolve(host, aspect, now, "intelliagent")
	}
}
