package agents

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/cluster"
	"repro/internal/diagnose"
	"repro/internal/fsim"
	"repro/internal/heal"
	"repro/internal/notify"
)

// PerfLogDir holds the five measurement groups' circular logs, classified
// first by server name and then by measurement group (§3.5).
func PerfLogDir(host string) string { return "/logs/performance/" + host }

// PerfConfig tunes the performance intelliagent.
type PerfConfig struct {
	OSBaseline  *diagnose.Baseline
	LogLines    int     // circular-queue length per measurement file
	HogFraction float64 // a process demanding more than this fraction of the host's CPUs is a runaway
}

// NewPerformanceAgent builds the performance intelliagent for a host: each
// run it samples the operating-system, disk and process measurement groups
// (vmstat/iostat/ps equivalents), appends them to circular-queue ASCII
// logs, compares against the pre-scripted baseline thresholds and notifies
// by email when a threshold is exceeded (§3.5–3.6). Its limited
// troubleshooting capability is exactly what the paper grants it: it can
// identify and kill runaway user processes (CPU hogs and memory leakers);
// anything else it reports.
func NewPerformanceAgent(cfg agent.Config, pc PerfConfig) (*agent.Agent, error) {
	host := cfg.Host
	if pc.OSBaseline == nil {
		pc.OSBaseline = diagnose.DefaultOSBaseline(host.Model)
	}
	if pc.LogLines == 0 {
		pc.LogLines = 1000
	}
	if pc.HogFraction == 0 {
		pc.HogFraction = 0.5
	}
	dir := PerfLogDir(host.Name)
	logs := map[string]*fsim.CircLog{}
	logFor := func(group string) *fsim.CircLog {
		if l, ok := logs[group]; ok {
			return l
		}
		l, _ := fsim.NewCircLog(host.FS, dir+"/"+group+".log", pc.LogLines)
		logs[group] = l
		return l
	}

	cfg.Name = "performance-" + host.Name
	cfg.Category = agent.CatPerformance
	admin := cfg.AdminEmail

	cfg.Parts = agent.Parts{
		// Measurement logging appends to circular logs and may notify, so
		// this monitor runs in the serial apply phase under sharded dispatch.
		MonitorMutates: true,
		Monitor: func(rc *agent.RunContext) []agent.Finding {
			vm := host.VMStat()
			io := host.IOStat()
			// One sorted snapshot of the process table serves the process
			// log and both runaway scans below — ps is the expensive part
			// of this agent's run, so it is taken exactly once.
			ps := host.PS()
			// Measurement groups 1 (OS), 3 (disks), 4/5 (processes),
			// recorded as timestamped ASCII for timeline association.
			_ = logFor("os").Append(fmt.Sprintf("%d|sr=%.0f|po=%.0f|free=%.0f|runq=%d|idle=%.1f|blocked=%d",
				int64(rc.Now), vm.ScanRate, vm.PageOuts, vm.FreeMemMB, vm.RunQueue, vm.CPUIdlePct, vm.BlockedProcs))
			_ = logFor("disk").Append(fmt.Sprintf("%d|busy=%.0f|asvc=%.1f|wsvc=%.1f",
				int64(rc.Now), io.BusyPct, io.AsvcMS, io.WsvcMS))
			for _, p := range ps {
				if p.CPUDemand >= 0.5 {
					_ = logFor("procs").Append(fmt.Sprintf("%d|pid=%d|user=%s|cmd=%s|cpu=%.2f|mem=%.0f",
						int64(rc.Now), p.PID, p.User, p.Name, p.CPUDemand, p.MemMB))
				}
			}

			var out []agent.Finding
			check := func(aspect string, v float64) {
				if msg, bad := pc.OSBaseline.Check(aspect, v); bad {
					sev := agent.SevWarning
					out = append(out, agent.Finding{Aspect: aspect, Severity: sev, Detail: msg, Metric: v})
					if rc.Notify != nil && admin != "" {
						rc.Notify.Send(notify.Email, "performance@"+host.Name, admin,
							"threshold exceeded on "+host.Name, msg, "threshold-exceeded")
					}
				}
			}
			check("memory.scanrate", vm.ScanRate)
			check("memory.pageouts", vm.PageOuts)
			check("memory.freemb", vm.FreeMemMB)
			check("cpu.runqueue", float64(vm.RunQueue))
			check("cpu.idlepct", vm.CPUIdlePct)
			check("io.blocked", float64(vm.BlockedProcs))
			check("disk.asvc", io.AsvcMS)
			check("disk.wsvc", io.WsvcMS)

			// Runaway detection upgrades the generic threshold warnings to
			// an actionable fault with the aspect the registry knows.
			if hog := findRunaway(ps, host, pc.HogFraction); hog != nil {
				out = append(out, agent.Finding{
					Aspect: AspectHog, Severity: agent.SevFault,
					Detail: fmt.Sprintf("runaway process %d (%s) using %.1f CPUs", hog.PID, hog.Name, hog.CPUDemand),
					Metric: float64(hog.PID),
				})
			}
			if leak := findLeaker(ps, host, vm.ScanRate); leak != nil {
				out = append(out, agent.Finding{
					Aspect: AspectLeak, Severity: agent.SevFault,
					Detail: fmt.Sprintf("process %d (%s) holds %.0f MB, memory scanner awake", leak.PID, leak.Name, leak.MemMB),
					Metric: float64(leak.PID),
				})
			}
			return out
		},
		Diagnose: func(rc *agent.RunContext, fs []agent.Finding) []agent.Diagnosis {
			var out []agent.Diagnosis
			for _, f := range fs {
				switch f.Aspect {
				case AspectHog:
					out = append(out, agent.Diagnosis{Finding: f,
						RootCause: "runaway user process saturating CPUs", Action: "kill-process", Confident: true})
				case AspectLeak:
					out = append(out, agent.Diagnosis{Finding: f,
						RootCause: "leaking process exhausting memory", Action: "kill-process", Confident: true})
				default:
					// Threshold warnings without an identified culprit:
					// suggest what may be wrong, nothing to heal (§3.3:
					// "can suggest what may be wrong during service
					// degradation and have limited troubleshooting
					// capabilities").
				}
			}
			return out
		},
		Heal: func(rc *agent.RunContext, d agent.Diagnosis) agent.HealResult {
			if d.Action != "kill-process" {
				return agent.HealResult{Action: d.Action, Healed: false}
			}
			pid := int(d.Finding.Metric)
			if heal.KillProcess(host, pid) {
				return agent.HealResult{Action: d.Action, Healed: true,
					Detail: fmt.Sprintf("killed pid %d", pid)}
			}
			return agent.HealResult{Action: d.Action, Healed: false, Escalate: true,
				Detail: fmt.Sprintf("pid %d would not die", pid)}
		},
	}
	return agent.New(cfg)
}

// findRunaway returns the non-service process with the largest CPU demand
// exceeding frac of the host's CPUs, or nil. Service processes (database
// daemons and friends) are never killed by the performance agent. ps is
// the caller's sorted process snapshot.
func findRunaway(ps []*cluster.Process, h *cluster.Host, frac float64) *cluster.Process {
	limit := frac * float64(h.Model.CPUs)
	var worst *cluster.Process
	for _, p := range ps {
		if !userProcess(p) || !p.Active() {
			continue
		}
		if p.CPUDemand > limit && (worst == nil || p.CPUDemand > worst.CPUDemand) {
			worst = p
		}
	}
	return worst
}

// findLeaker returns the biggest non-service memory consumer when the host
// is under real memory pressure (scanner awake, scanRate from the caller's
// vmstat sample), or nil.
func findLeaker(ps []*cluster.Process, h *cluster.Host, scanRate float64) *cluster.Process {
	if scanRate == 0 {
		return nil
	}
	var worst *cluster.Process
	for _, p := range ps {
		if !userProcess(p) {
			continue
		}
		if p.MemMB > 0.25*float64(h.Model.MemoryMB) && (worst == nil || p.MemMB > worst.MemMB) {
			worst = p
		}
	}
	return worst
}

// userProcess reports whether p belongs to an end user rather than a
// managed service or the agents themselves.
func userProcess(p *cluster.Process) bool {
	switch p.User {
	case "oracle", "sybase", "www", "finapp", "lsfadmin", "feeds", "iagent", "root":
		return false
	}
	return true
}
