// Package agents provides the concrete intelliagents of §3.3's taxonomy:
// application/service agents (one per service, with per-application error
// categories), a status agent (DLSP generation), performance agents (the
// five measurement groups, thresholds and circular logs), resource agents
// for CPU/memory/disk, an OS/network agent and a hardware agent.
package agents

import (
	"repro/internal/agent"
	"repro/internal/diagnose"
	"repro/internal/heal"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// Aspect naming: the scenario's fault registry and the agents must agree on
// these strings for detections to match incidents.
func ServiceAspect(name string) string { return "service." + name }

// Aspect constants shared with the fault registry.
const (
	AspectHog    = "perf.hog"
	AspectLeak   = "perf.leak"
	AspectNet    = "net.link"
	AspectSensor = "hardware.sensor"
)

// serviceRules builds the per-application-kind diagnostic rule set. The
// error categories are customised per application type (§3.3): databases
// distinguish mid-job crashes; every kind distinguishes crashed vs hung vs
// partially-failed vs overloaded.
func serviceRules(kind svc.Kind) *diagnose.Engine {
	crashCause := "service crashed"
	if kind == svc.KindOracle || kind == svc.KindSybase {
		crashCause = "database crashed (possibly mid-job)"
	}
	return diagnose.NewEngine(
		diagnose.Rule{
			Name: "wedged", Priority: 50,
			When:   func(e *diagnose.Evidence) bool { return e.Holds("wedged") },
			Cause:  "corrupted installation or datafiles",
			Action: "manual-repair",
		},
		diagnose.Rule{
			Name: "host-down", Priority: 40,
			When:   func(e *diagnose.Evidence) bool { return e.Holds("host-down") },
			Cause:  "server unreachable",
			Action: "none",
		},
		diagnose.Rule{
			Name: "crashed", Priority: 30,
			When: func(e *diagnose.Evidence) bool {
				return e.Holds("refused") && !e.Holds("procs-present")
			},
			Cause:  crashCause,
			Action: "restart-service",
		},
		diagnose.Rule{
			Name: "hung", Priority: 25,
			When: func(e *diagnose.Evidence) bool {
				return e.Holds("timeout") && e.Holds("procs-hung")
			},
			Cause:  "service hung (latent error)",
			Action: "kill-and-restart",
		},
		diagnose.Rule{
			Name: "partial", Priority: 20,
			When:   func(e *diagnose.Evidence) bool { return e.Holds("missing-components") },
			Cause:  "application component died",
			Action: "restart-service",
		},
		diagnose.Rule{
			Name: "overloaded", Priority: 10,
			When: func(e *diagnose.Evidence) bool {
				return e.Holds("timeout") && e.Above("host-util", 0.9)
			},
			Cause:  "server overloaded, responses exceed timeout",
			Action: "defer-to-performance",
		},
		diagnose.Rule{
			Name: "listener-only", Priority: 5,
			When:   func(e *diagnose.Evidence) bool { return e.Holds("refused") },
			Cause:  "listener gone while processes remain",
			Action: "kill-and-restart",
		},
	)
}

// NewServiceAgent builds the application/service intelliagent for one
// service instance. It probes the service the way the paper prescribes
// (connect and run a basic command), diagnoses the exit code plus process-
// table evidence against per-kind rules, and restarts the service in
// dependency order when that is the prescribed action. Restarts are
// deferred repairs: the registry hears about them when the service is
// actually serving again.
func NewServiceAgent(cfg agent.Config, s *svc.Service) (*agent.Agent, error) {
	rules := serviceRules(s.Spec.Kind)
	aspect := ServiceAspect(s.Spec.Name)
	cfg.Name = "service-" + s.Spec.Name
	cfg.Category = agent.CatService
	cfg.Host = s.Host

	cfg.Parts = agent.Parts{
		Monitor: func(rc *agent.RunContext) []agent.Finding {
			res := s.Probe()
			if res.OK() {
				return nil
			}
			sev := agent.SevFault
			if s.State() == svc.StateCrashed || s.Wedged {
				sev = agent.SevCritical
			}
			return []agent.Finding{{
				Aspect:   aspect,
				Severity: sev,
				Detail:   res.Detail,
				Metric:   float64(res.ExitCode),
			}}
		},
		Diagnose: func(rc *agent.RunContext, fs []agent.Finding) []agent.Diagnosis {
			var out []agent.Diagnosis
			for _, f := range fs {
				ev := gatherServiceEvidence(s, int(f.Metric))
				concs := rules.Diagnose(ev)
				var lines []string
				if rc.Trace.WantEvidence() {
					lines = ev.Lines()
				}
				if len(concs) == 0 {
					out = append(out, agent.Diagnosis{Finding: f, RootCause: "obscure error", Action: "escalate",
						Evidence: lines})
					continue
				}
				out = append(out, agent.Diagnosis{
					Finding: f, RootCause: concs[0].Cause, Action: concs[0].Action, Confident: true,
					Rule: concs[0].Rule, Evidence: lines,
				})
			}
			return out
		},
		Heal: func(rc *agent.RunContext, d agent.Diagnosis) agent.HealResult {
			switch d.Action {
			case "restart-service", "kill-and-restart":
				aspect := d.Finding.Aspect
				repaired := rc.Repaired
				err := heal.RestartStack(rc.Sim, rc.Services, s, func(now simclock.Time) {
					if repaired != nil {
						repaired(aspect, now)
					}
				})
				if err != nil {
					return agent.HealResult{Action: d.Action, Healed: false, Escalate: true,
						Detail: err.Error()}
				}
				return agent.HealResult{Action: d.Action, Healed: true, Deferred: true,
					Detail: "restart initiated, service back after startup sequence"}
			case "reboot-host":
				// No diagnostic rule prescribes a reboot — this is the
				// heavy-handed alternative counterfactual replays explore:
				// bounce the whole host and bring every service on it back.
				aspect := d.Finding.Aspect
				repaired := rc.Repaired
				heal.RebootHost(rc.Sim, rc.Host, 5*simclock.Minute, rc.Services.OnHost(rc.Host.Name),
					func(now simclock.Time) {
						if repaired != nil {
							repaired(aspect, now)
						}
					})
				return agent.HealResult{Action: d.Action, Healed: true, Deferred: true,
					Detail: "host reboot initiated, services restart after boot"}
			case "defer-to-performance":
				return agent.HealResult{Action: d.Action, Healed: false,
					Detail: "load problem, performance agent owns it"}
			case "manual-repair":
				return agent.HealResult{Action: d.Action, Healed: false, Escalate: true,
					Detail: "corruption needs human repair"}
			case "none":
				return agent.HealResult{Action: d.Action, Healed: false,
					Detail: "host down, nothing to do locally"}
			default:
				return agent.HealResult{Action: d.Action, Healed: false, Escalate: true,
					Detail: "no prescribed scenario for root cause: " + d.RootCause}
			}
		},
	}
	return agent.New(cfg)
}

// gatherServiceEvidence is the diagnosing part's two-pronged evidence
// collection: dynamically from the process table and host state, statically
// from the service's advertised condition.
func gatherServiceEvidence(s *svc.Service, exitCode int) *diagnose.Evidence {
	ev := diagnose.NewEvidence()
	ev.Fact("refused", exitCode == svc.ExitRefused)
	ev.Fact("timeout", exitCode == svc.ExitTimeout)
	ev.Fact("cmd-error", exitCode == svc.ExitError)
	ev.Fact("host-down", !s.Host.Up())
	ev.Fact("wedged", s.Wedged)
	ev.Observe("host-util", s.Host.CPUUtilisation())

	present, hung := 0, 0
	for _, c := range s.Spec.Components {
		present += s.Host.CountProcs(c.ProcName)
		hung += s.Host.CountHungProcs(c.ProcName)
	}
	ev.Fact("procs-present", present > 0)
	ev.Fact("procs-hung", hung > 0)
	ev.Fact("missing-components", exitCode == svc.ExitError && len(s.MissingProcs()) > 0)
	ev.Note("exit=%d present=%d hung=%d", exitCode, present, hung)
	return ev
}
