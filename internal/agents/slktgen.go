package agents

import (
	"sort"

	"repro/internal/agent"
	"repro/internal/ontology"
	"repro/internal/simclock"
)

// SLKT auto-generation implements the paper's future-work item "we are
// trying to reduce as much as possible manual input and generate
// automatically static ontologies": instead of an administrator typing the
// knowledge template, the agent derives it from the live deployment — the
// host's hardware and the services the directory binds to it, including
// their startup sequences, process counts, ports, binaries, timeouts and
// dependencies.

// SLKTPath is where the generated template is stored locally.
const SLKTPath = "/apps/intelliagents/slkt.txt"

// GenerateSLKT derives the host's static local knowledge template from
// live configuration.
func GenerateSLKT(rc *agent.RunContext) *ontology.SLKT {
	h := rc.Host
	t := &ontology.SLKT{
		Server:   h.Name,
		Model:    h.Model.Name,
		CPUs:     h.Model.CPUs,
		MemoryMB: h.Model.MemoryMB,
	}
	if rc.Services == nil {
		return t
	}
	for _, s := range rc.Services.OnHost(h.Name) {
		app := ontology.SLKTApp{
			Name:       s.Spec.Name,
			Kind:       string(s.Spec.Kind),
			Version:    s.Spec.Version,
			Port:       s.Spec.Port,
			BinaryPath: s.Spec.BinaryPath,
			TimeoutSec: int(s.Spec.ConnectTimeout / simclock.Second),
			ProcCounts: map[string]int{},
		}
		for _, c := range s.Spec.Components {
			app.StartupSeq = append(app.StartupSeq, c.ProcName)
			app.ProcCounts[c.ProcName] += c.Count
		}
		app.DependsOn = append(app.DependsOn, s.Spec.DependsOn...)
		sort.Strings(app.DependsOn)
		t.Apps = append(t.Apps, app)
	}
	return t
}

// WriteSLKT generates and persists the template on the host, returning it.
func WriteSLKT(rc *agent.RunContext) (*ontology.SLKT, error) {
	t := GenerateSLKT(rc)
	if err := rc.FS.WriteLines(SLKTPath, t.Encode()); err != nil {
		return nil, err
	}
	return t, nil
}
