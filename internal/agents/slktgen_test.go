package agents

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/ontology"
	"repro/internal/svc"
)

func TestGenerateSLKT(t *testing.T) {
	r := newRig(t)
	r.oracle(t)
	fe, _ := svc.New(r.sim, svc.FrontEndSpec("FE-01", 8080, "ORA-01"), r.host)
	r.dir.Add(fe)

	// Borrow a status agent's run context by generating inside a probe.
	var tmpl *ontology.SLKT
	cfg := r.cfg()
	cfg.Name = "slkt-gen"
	cfg.Parts = agent.Parts{Monitor: func(rc *agent.RunContext) []agent.Finding {
		var err error
		tmpl, err = WriteSLKT(rc)
		if err != nil {
			t.Error(err)
		}
		return nil
	}}
	a, err := agent.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(r.sim)

	if tmpl == nil || tmpl.Server != "db001" || tmpl.Model != "E4500" || tmpl.CPUs != 8 {
		t.Fatalf("template: %+v", tmpl)
	}
	ora := tmpl.App("ORA-01")
	if ora == nil {
		t.Fatal("ORA-01 missing from generated template")
	}
	if ora.TimeoutSec != 30 || ora.Port != 1521 || ora.BinaryPath != "/apps/oracle/bin" {
		t.Errorf("oracle app: %+v", ora)
	}
	if len(ora.StartupSeq) != 5 || ora.StartupSeq[0] != "ora_pmon" {
		t.Errorf("startup seq = %v", ora.StartupSeq)
	}
	if ora.ProcCounts["ora_dbwr"] != 2 || ora.ExpectedProcs() != 6 {
		t.Errorf("proc counts = %v", ora.ProcCounts)
	}
	feApp := tmpl.App("FE-01")
	if feApp == nil || len(feApp.DependsOn) != 1 || feApp.DependsOn[0] != "ORA-01" {
		t.Errorf("dependencies not captured: %+v", feApp)
	}

	// The persisted file round-trips through the standard codec.
	lines, err := r.host.FS.ReadLines(SLKTPath)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := ontology.DecodeSLKT(lines)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Server != tmpl.Server || len(decoded.Apps) != len(tmpl.Apps) {
		t.Error("persisted template does not round-trip")
	}
}

func TestGenerateSLKTNoServices(t *testing.T) {
	r := newRig(t)
	cfg := r.cfg()
	cfg.Name = "slkt-gen"
	var tmpl *ontology.SLKT
	cfg.Parts = agent.Parts{Monitor: func(rc *agent.RunContext) []agent.Finding {
		tmpl = GenerateSLKT(rc)
		return nil
	}}
	a, _ := agent.New(cfg)
	a.Run(r.sim)
	if tmpl == nil || len(tmpl.Apps) != 0 {
		t.Errorf("bare host template: %+v", tmpl)
	}
}
