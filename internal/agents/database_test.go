package agents

import (
	"strings"
	"testing"

	"repro/internal/simclock"
	"repro/internal/svc"
)

func TestDatabaseAgentMeasures(t *testing.T) {
	r := newRig(t)
	db := r.oracle(t)
	a, err := NewDatabaseAgent(r.cfg(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(r.sim)
	lines, err := r.host.FS.ReadLines(PerfLogDir("db001") + "/db-ORA-01.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "connect=") || !strings.Contains(lines[0], "users=") {
		t.Errorf("measurement line: %v", lines)
	}
	if a.Counters().Findings != 0 {
		t.Errorf("healthy database flagged: %+v", a.Counters())
	}
}

func TestDatabaseAgentRejectsNonDatabase(t *testing.T) {
	r := newRig(t)
	web, _ := svc.New(r.sim, svc.WebSpec("WEB-01", 80), r.host)
	r.dir.Add(web)
	if _, err := NewDatabaseAgent(r.cfg(), web, nil); err == nil {
		t.Error("web server should be rejected")
	}
}

func TestDatabaseAgentThresholdAlert(t *testing.T) {
	r := newRig(t)
	db := r.oracle(t)
	a, _ := NewDatabaseAgent(r.cfg(), db, nil)
	// Load the host until connect/request times blow past the DBA
	// baseline (connect > 5s needs heavy contention).
	r.host.Spawn("batch1", "analyst1", "", 7.7, 100)
	a.Run(r.sim)
	if a.Counters().Findings == 0 {
		t.Fatal("overloaded database should trip thresholds")
	}
	if r.bus.CountByTag("threshold-exceeded") == 0 {
		t.Error("DBA email missing")
	}
	if a.Counters().Healed != 0 {
		t.Error("measurement agent must not repair")
	}
}

func TestDatabaseAgentStandsAsideWhenDown(t *testing.T) {
	r := newRig(t)
	db := r.oracle(t)
	a, _ := NewDatabaseAgent(r.cfg(), db, nil)
	db.Crash()
	a.Run(r.sim)
	if a.Counters().Findings != 0 {
		t.Error("down database is the service agent's problem")
	}
	lines, _ := r.host.FS.ReadLines(PerfLogDir("db001") + "/db-ORA-01.log")
	if len(lines) != 1 || !strings.Contains(lines[0], "state=crashed") {
		t.Errorf("gap not recorded: %v", lines)
	}
}

func TestEndToEndProbeHealthyStack(t *testing.T) {
	r := newRig(t)
	db := r.oracle(t)
	fe, _ := svc.New(r.sim, svc.FrontEndSpec("FE-01", 8080, "ORA-01"), r.host)
	r.dir.Add(fe)
	fe.Start(nil)
	r.sim.RunUntil(r.sim.Now() + 5*simclock.Minute)
	lat, ok := EndToEndProbe(r.dir, fe)
	if !ok || lat <= 0 {
		t.Errorf("healthy stack: lat=%v ok=%v", lat, ok)
	}
	// Latency covers both hops.
	if lat <= db.ResponseLatency() {
		t.Errorf("end-to-end latency should exceed one hop: %v", lat)
	}
}

func TestEndToEndAgentLocalisesBrokenHop(t *testing.T) {
	r := newRig(t)
	db := r.oracle(t)
	fe, _ := svc.New(r.sim, svc.FrontEndSpec("FE-01", 8080, "ORA-01"), r.host)
	r.dir.Add(fe)
	fe.Start(nil)
	r.sim.RunUntil(r.sim.Now() + 5*simclock.Minute)

	a, err := NewEndToEndAgent(r.cfg(), fe, 30*simclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(r.sim)
	if a.Counters().Findings != 0 {
		t.Fatalf("healthy stack flagged: %+v", a.Counters())
	}
	// Break the *database* underneath the front-end: the e2e agent must
	// name the database, not the front-end.
	r.sim.RunUntil(r.sim.Now() + simclock.Minute)
	db.Crash()
	a.Run(r.sim)
	logText := strings.Join(a.LogLines(), "\n")
	if !strings.Contains(logText, "component ORA-01 failing") {
		t.Errorf("broken hop not localised:\n%s", logText)
	}
	if a.Counters().Healed != 0 {
		t.Error("e2e agent must defer repair to component agents")
	}
}

func TestEndToEndAgentLatencyWarning(t *testing.T) {
	r := newRig(t)
	r.oracle(t)
	fe, _ := svc.New(r.sim, svc.FrontEndSpec("FE-01", 8080, "ORA-01"), r.host)
	r.dir.Add(fe)
	fe.Start(nil)
	r.sim.RunUntil(r.sim.Now() + 5*simclock.Minute)
	// Absurdly tight budget: healthy latency trips the warning.
	a, _ := NewEndToEndAgent(r.cfg(), fe, simclock.Time(1))
	a.Run(r.sim)
	if a.Counters().Findings != 1 {
		t.Errorf("latency warning missing: %+v", a.Counters())
	}
}
