package agents

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/diagnose"
	"repro/internal/fsim"
	"repro/internal/notify"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// NewDatabaseAgent builds the database measurement intelliagent of §3.6:
// scripts written "with a lot of input from experienced database
// administrators" that combine Unix tools and SQL commands to measure, per
// database: (1) time to connect, (2) time for a request to be served,
// (6) per-process CPU and memory utilisation, (7) connected users, and
// compare each against the DBA-provided baseline. Measurements land in the
// per-server circular logs next to the OS groups.
//
// This agent measures and reports; repair of a broken database belongs to
// the service agent (the two run in parallel and do not depend on each
// other, as the paper's agents do).
func NewDatabaseAgent(cfg agent.Config, db *svc.Service, b *diagnose.Baseline) (*agent.Agent, error) {
	if db.Spec.Kind != svc.KindOracle && db.Spec.Kind != svc.KindSybase {
		return nil, fmt.Errorf("agents: database agent wants a database, got %s", db.Spec.Kind)
	}
	if b == nil {
		b = diagnose.DefaultDBBaseline()
	}
	host := cfg.Host
	if host == nil {
		cfg.Host = db.Host
		host = db.Host
	}
	dir := PerfLogDir(host.Name)
	var log *fsim.CircLog
	admin := cfg.AdminEmail

	cfg.Name = "database-" + db.Spec.Name
	cfg.Category = agent.CatPerformance
	cfg.Parts = agent.Parts{
		// Measurement logging appends to a circular log and may notify, so
		// this monitor runs in the serial apply phase under sharded dispatch.
		MonitorMutates: true,
		Monitor: func(rc *agent.RunContext) []agent.Finding {
			if log == nil {
				log, _ = fsim.NewCircLog(host.FS, dir+"/db-"+db.Spec.Name+".log", 1000)
			}
			if !db.Running() {
				// Down databases are the service agent's problem; the
				// measurement agent records the gap and stands aside.
				_ = log.Append(fmt.Sprintf("%d|state=%s", int64(rc.Now), db.State()))
				return nil
			}
			// Dynamic measurement: connect and run the basic command,
			// timing it, exactly as the paper's scripts do.
			res := db.Probe()
			connectS := res.Latency.Duration().Seconds()
			// Request service time models a representative query: the
			// probe latency scaled by the contention the server is under.
			requestS := connectS * (1 + 4*host.CPUUtilisation())

			var procCPU, procMem float64
			for _, c := range db.Spec.Components {
				for _, p := range host.PGrep(c.ProcName) {
					procCPU += p.CPUDemand
					procMem += p.MemMB
				}
			}
			users := db.Connections()
			_ = log.Append(fmt.Sprintf("%d|connect=%.3f|request=%.3f|cpu=%.2f|memMB=%.0f|users=%d",
				int64(rc.Now), connectS, requestS, procCPU, procMem, users))

			var out []agent.Finding
			check := func(aspect string, v float64) {
				if msg, bad := b.Check(aspect, v); bad {
					out = append(out, agent.Finding{Aspect: aspect, Severity: agent.SevWarning,
						Detail: db.Spec.Name + ": " + msg, Metric: v})
					if rc.Notify != nil && admin != "" {
						rc.Notify.Send(notify.Email, "database@"+host.Name, admin,
							"database threshold exceeded: "+db.Spec.Name, msg, "threshold-exceeded")
					}
				}
			}
			check("db.connect", connectS)
			check("db.request", requestS)
			return out
		},
		// Measurement-only agent: suggestions, not repairs (§3.3's
		// "limited troubleshooting capabilities").
		Diagnose: func(rc *agent.RunContext, fs []agent.Finding) []agent.Diagnosis { return nil },
	}
	return agent.New(cfg)
}

// EndToEndProbe measures "the time taken for a request to be served by the
// entire application from beginning to end" (§3.6, distributed
// applications): a dummy transaction walked through every component of the
// dependency chain rooted at front. It returns the summed latency and
// whether every hop answered.
func EndToEndProbe(dir *svc.Directory, front *svc.Service) (simclock.Time, bool) {
	var total simclock.Time
	ok := true
	seen := map[string]bool{}
	var walk func(s *svc.Service)
	walk = func(s *svc.Service) {
		if seen[s.Spec.Name] {
			return
		}
		seen[s.Spec.Name] = true
		res := s.Probe()
		total += res.Latency
		if !res.OK() {
			ok = false
		}
		for _, dep := range s.Spec.DependsOn {
			if d := dir.Get(dep); d != nil {
				walk(d)
			}
		}
	}
	walk(front)
	return total, ok
}

// NewEndToEndAgent builds the distributed-application prober of §3.6: every
// run it simulates a user request through all components of the front-end's
// stack and alerts when the end-to-end time exceeds the baseline or any hop
// fails. The paper ran this "every 15 to 30 minutes" in addition to
// business-as-usual requests.
func NewEndToEndAgent(cfg agent.Config, front *svc.Service, maxLatency simclock.Time) (*agent.Agent, error) {
	if cfg.Host == nil {
		cfg.Host = front.Host
	}
	cfg.Name = "e2e-" + front.Spec.Name
	cfg.Category = agent.CatService
	cfg.Parts = agent.Parts{
		Monitor: func(rc *agent.RunContext) []agent.Finding {
			lat, ok := EndToEndProbe(rc.Services, front)
			if ok && lat <= maxLatency {
				return nil
			}
			detail := fmt.Sprintf("end-to-end %v (max %v), all-hops-ok=%v", lat, maxLatency, ok)
			sev := agent.SevWarning
			if !ok {
				sev = agent.SevFault
			}
			return []agent.Finding{{Aspect: "e2e." + front.Spec.Name, Severity: sev,
				Detail: detail, Metric: lat.Duration().Seconds()}}
		},
		Diagnose: func(rc *agent.RunContext, fs []agent.Finding) []agent.Diagnosis {
			// The end-to-end prober localises: name the first broken hop
			// so the operator (or the hop's own service agent) knows where
			// to look — the paper's answer to "operators did not know
			// where to start looking".
			var out []agent.Diagnosis
			for _, f := range fs {
				if f.Severity < agent.SevFault {
					continue
				}
				hop := firstBrokenHop(rc.Services, front)
				out = append(out, agent.Diagnosis{Finding: f,
					RootCause: "component " + hop + " failing in the distributed stack",
					Action:    "defer-to-component-agent", Confident: hop != ""})
			}
			return out
		},
		Heal: func(rc *agent.RunContext, d agent.Diagnosis) agent.HealResult {
			return agent.HealResult{Action: d.Action, Healed: false,
				Detail: "component agents own the repair"}
		},
	}
	return agent.New(cfg)
}

// firstBrokenHop walks the stack and returns the first failing service.
func firstBrokenHop(dir *svc.Directory, front *svc.Service) string {
	seen := map[string]bool{}
	var walk func(s *svc.Service) string
	walk = func(s *svc.Service) string {
		if seen[s.Spec.Name] {
			return ""
		}
		seen[s.Spec.Name] = true
		for _, dep := range s.Spec.DependsOn {
			if d := dir.Get(dep); d != nil {
				if hop := walk(d); hop != "" {
					return hop
				}
			}
		}
		if !s.Probe().OK() {
			return s.Spec.Name
		}
		return ""
	}
	return walk(front)
}
