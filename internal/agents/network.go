package agents

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/diagnose"
	"repro/internal/netsim"
)

// NewNetworkAgent builds the OS/network intelliagent: it samples netstat
// counters and checks the host's links on the attached networks (§3.6
// network measurements). The paper is explicit that its approach "cannot
// cater for network or obscure logical errors" — so this agent detects
// firewall/network faults fast and escalates them to humans; it never
// repairs them itself. It does handle the one network action the agents do
// perform: noticing the private intelliagent network is unusable (the
// Router fails over automatically; the agent records that it happened).
func NewNetworkAgent(cfg agent.Config, b *diagnose.Baseline, nets ...*netsim.Network) (*agent.Agent, error) {
	host := cfg.Host
	if b == nil {
		b = diagnose.DefaultNetBaseline()
	}
	cfg.Name = "network-" + host.Name
	cfg.Category = agent.CatOSNetwork
	cfg.Parts = agent.Parts{
		Monitor: func(rc *agent.RunContext) []agent.Finding {
			ns := host.NetStat()
			var out []agent.Finding
			if msg, bad := b.Check("net.errors", float64(ns.Errors)); bad {
				out = append(out, agent.Finding{Aspect: AspectNet, Severity: agent.SevFault,
					Detail: "interface errors: " + msg, Metric: float64(ns.Errors)})
			}
			for _, n := range nets {
				if n.Attached(host.Name) && !n.LinkUp(host.Name) {
					out = append(out, agent.Finding{Aspect: AspectNet, Severity: agent.SevFault,
						Detail: fmt.Sprintf("link down on network %s", n.Name())})
				} else if !n.Up() {
					out = append(out, agent.Finding{Aspect: "net.fabric." + n.Name(), Severity: agent.SevWarning,
						Detail: fmt.Sprintf("network %s fabric down, traffic rerouting", n.Name())})
				}
			}
			return out
		},
		Diagnose: func(rc *agent.RunContext, fs []agent.Finding) []agent.Diagnosis {
			var out []agent.Diagnosis
			for _, f := range fs {
				if f.Severity >= agent.SevFault {
					out = append(out, agent.Diagnosis{Finding: f,
						RootCause: "firewall/network error", Action: "escalate-network", Confident: false})
				}
			}
			return out
		},
		Heal: func(rc *agent.RunContext, d agent.Diagnosis) agent.HealResult {
			return agent.HealResult{Action: d.Action, Healed: false, Escalate: true,
				Detail: "network faults need manual input (paper §5 limitation)"}
		},
	}
	return agent.New(cfg)
}

// NewHardwareAgent builds the hardware intelliagent: it reads the service
// processor's sensor faults (ECC, fans, boards). Hardware it cannot fix —
// detection buys the hours, engineers do the repair.
func NewHardwareAgent(cfg agent.Config) (*agent.Agent, error) {
	host := cfg.Host
	cfg.Name = "hardware-" + host.Name
	cfg.Category = agent.CatHardware
	cfg.Parts = agent.Parts{
		Monitor: func(rc *agent.RunContext) []agent.Finding {
			var out []agent.Finding
			for _, comp := range host.SensorFaults() {
				out = append(out, agent.Finding{Aspect: AspectSensor, Severity: agent.SevFault,
					Detail: "degraded component: " + comp})
			}
			return out
		},
		Diagnose: func(rc *agent.RunContext, fs []agent.Finding) []agent.Diagnosis {
			var out []agent.Diagnosis
			for _, f := range fs {
				out = append(out, agent.Diagnosis{Finding: f,
					RootCause: "hardware component failure", Action: "escalate-hardware", Confident: true})
			}
			return out
		},
		Heal: func(rc *agent.RunContext, d agent.Diagnosis) agent.HealResult {
			return agent.HealResult{Action: d.Action, Healed: false, Escalate: true,
				Detail: "physical repair required"}
		},
	}
	return agent.New(cfg)
}
