package agents

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/diagnose"
	"repro/internal/heal"
)

// The resource intelliagents: one special agent per component, as the paper
// deploys them ("for each component there is one special intelliagent, such
// as one for the CPU, one for the network card etc"). They overlap with the
// performance agent's measurement groups deliberately — the paper's agents
// run in parallel and do not depend on each other — but each owns the
// repair of its own component.

// NewCPUAgent watches the run queue and idle time (§3.6 measurements 2–3)
// and kills runaway processes when the CPU constraint trips.
func NewCPUAgent(cfg agent.Config, b *diagnose.Baseline) (*agent.Agent, error) {
	host := cfg.Host
	if b == nil {
		b = diagnose.DefaultOSBaseline(host.Model)
	}
	cfg.Name = "cpu-" + host.Name
	cfg.Category = agent.CatResource
	cfg.Parts = agent.Parts{
		Monitor: func(rc *agent.RunContext) []agent.Finding {
			vm := host.VMStat()
			var out []agent.Finding
			if msg, bad := b.Check("cpu.runqueue", float64(vm.RunQueue)); bad {
				out = append(out, agent.Finding{Aspect: "cpu.runqueue", Severity: agent.SevWarning, Detail: msg, Metric: float64(vm.RunQueue)})
			}
			if msg, bad := b.Check("cpu.idlepct", vm.CPUIdlePct); bad {
				out = append(out, agent.Finding{Aspect: "cpu.idlepct", Severity: agent.SevWarning, Detail: msg, Metric: vm.CPUIdlePct})
			}
			if len(out) > 0 {
				if hog := findRunaway(host.PS(), host, 0.5); hog != nil {
					out = append(out, agent.Finding{Aspect: AspectHog, Severity: agent.SevFault,
						Detail: fmt.Sprintf("runaway pid %d (%s)", hog.PID, hog.Name), Metric: float64(hog.PID)})
				}
			}
			return out
		},
		Diagnose: func(rc *agent.RunContext, fs []agent.Finding) []agent.Diagnosis {
			var out []agent.Diagnosis
			for _, f := range fs {
				if f.Aspect == AspectHog {
					out = append(out, agent.Diagnosis{Finding: f, RootCause: "runaway process", Action: "kill-process", Confident: true})
				}
			}
			return out
		},
		Heal: killProcessHeal(cfg),
	}
	return agent.New(cfg)
}

// NewMemoryAgent watches scan rate, page-outs and free memory (§3.6
// measurement 1) and kills the leaking process when pressure has an
// identifiable culprit.
func NewMemoryAgent(cfg agent.Config, b *diagnose.Baseline) (*agent.Agent, error) {
	host := cfg.Host
	if b == nil {
		b = diagnose.DefaultOSBaseline(host.Model)
	}
	cfg.Name = "memory-" + host.Name
	cfg.Category = agent.CatResource
	cfg.Parts = agent.Parts{
		Monitor: func(rc *agent.RunContext) []agent.Finding {
			vm := host.VMStat()
			var out []agent.Finding
			// Fixed check order: ranging a map literal here would make the
			// finding order (and so the flag/log trail) nondeterministic.
			for _, c := range [...]struct {
				aspect string
				v      float64
			}{
				{"memory.scanrate", vm.ScanRate},
				{"memory.pageouts", vm.PageOuts},
				{"memory.freemb", vm.FreeMemMB},
			} {
				if msg, bad := b.Check(c.aspect, c.v); bad {
					out = append(out, agent.Finding{Aspect: c.aspect, Severity: agent.SevWarning, Detail: msg, Metric: c.v})
				}
			}
			if len(out) > 0 {
				if leak := findLeaker(host.PS(), host, vm.ScanRate); leak != nil {
					out = append(out, agent.Finding{Aspect: AspectLeak, Severity: agent.SevFault,
						Detail: fmt.Sprintf("leaking pid %d (%s) holds %.0f MB", leak.PID, leak.Name, leak.MemMB), Metric: float64(leak.PID)})
				}
			}
			return out
		},
		Diagnose: func(rc *agent.RunContext, fs []agent.Finding) []agent.Diagnosis {
			var out []agent.Diagnosis
			for _, f := range fs {
				if f.Aspect == AspectLeak {
					out = append(out, agent.Diagnosis{Finding: f, RootCause: "memory leak", Action: "kill-process", Confident: true})
				}
			}
			return out
		},
		Heal: killProcessHeal(cfg),
	}
	return agent.New(cfg)
}

// NewDiskAgent watches service times (§3.6 measurement 6). Disks it cannot
// fix; sustained saturation is reported for human capacity planning, so its
// findings stay warnings unless a runaway I/O producer is identifiable.
func NewDiskAgent(cfg agent.Config, b *diagnose.Baseline) (*agent.Agent, error) {
	host := cfg.Host
	if b == nil {
		b = diagnose.DefaultOSBaseline(host.Model)
	}
	cfg.Name = "disk-" + host.Name
	cfg.Category = agent.CatResource
	cfg.Parts = agent.Parts{
		Monitor: func(rc *agent.RunContext) []agent.Finding {
			io := host.IOStat()
			var out []agent.Finding
			if msg, bad := b.Check("disk.asvc", io.AsvcMS); bad {
				out = append(out, agent.Finding{Aspect: "disk.asvc", Severity: agent.SevWarning, Detail: msg, Metric: io.AsvcMS})
			}
			if msg, bad := b.Check("disk.wsvc", io.WsvcMS); bad {
				out = append(out, agent.Finding{Aspect: "disk.wsvc", Severity: agent.SevWarning, Detail: msg, Metric: io.WsvcMS})
			}
			return out
		},
		Diagnose: func(rc *agent.RunContext, fs []agent.Finding) []agent.Diagnosis { return nil },
	}
	return agent.New(cfg)
}

// killProcessHeal builds the shared kill-the-culprit healing part.
func killProcessHeal(cfg agent.Config) func(rc *agent.RunContext, d agent.Diagnosis) agent.HealResult {
	host := cfg.Host
	return func(rc *agent.RunContext, d agent.Diagnosis) agent.HealResult {
		if d.Action != "kill-process" {
			return agent.HealResult{Action: d.Action, Healed: false}
		}
		pid := int(d.Finding.Metric)
		if heal.KillProcess(host, pid) {
			return agent.HealResult{Action: d.Action, Healed: true, Detail: fmt.Sprintf("killed pid %d", pid)}
		}
		return agent.HealResult{Action: d.Action, Healed: false, Escalate: true,
			Detail: fmt.Sprintf("pid %d not found", pid)}
	}
}
