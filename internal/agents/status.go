package agents

import (
	"strings"

	"repro/internal/agent"
	"repro/internal/ontology"
)

// DLSPPath is where the status agent leaves the freshest local profile.
const DLSPPath = "/logs/intelliagents/status/dlsp.txt"

// BuildDLSP compiles the host's dynamic local service profile from live
// observation (§3.4: "its local status intelliagent ... compiles
// dynamically its local DLSP").
func BuildDLSP(rc *agent.RunContext) *ontology.DLSP {
	h := rc.Host
	p := &ontology.DLSP{
		Server:      h.Name,
		GeneratedAt: rc.Now,
		Model:       h.Model.Name,
		OS:          h.OS,
		CPUs:        h.Model.CPUs,
		MemoryMB:    h.Model.MemoryMB,
		CPUUtil:     h.CPUUtilisation(),
		RunQueue:    h.RunQueue(),
		MemUsedMB:   h.MemUsedMB(),
		Users:       h.UsersLoggedIn(),
	}
	if rc.Services != nil {
		for _, s := range rc.Services.OnHost(h.Name) {
			p.Services = append(p.Services, ontology.DLSPService{
				Name:  s.Spec.Name,
				Kind:  string(s.Spec.Kind),
				State: s.State().String(),
				Port:  s.Spec.Port,
				Conns: s.Connections(),
			})
		}
	}
	return p
}

// NewStatusAgent builds the status intelliagent: each run it regenerates
// the DLSP, removes the stale copy (self-maintenance covers flags; old
// profiles are overwritten), stores it locally and pushes it to the
// administration servers, which assemble DGSPLs from these pushes.
//
// Before generating, it invokes the local service probes ("the local status
// intelliagent invokes local service intelliagents who attempt to connect
// to local running services") — here by reading each service's live state,
// which the service agents keep honest.
func NewStatusAgent(cfg agent.Config) (*agent.Agent, error) {
	cfg.Name = "status-" + cfg.Host.Name
	cfg.Category = agent.CatStatus
	cfg.Parts = agent.Parts{
		// The DLSP write and admin report happen inside monitoring, so this
		// monitor runs in the serial apply phase under sharded dispatch.
		MonitorMutates: true,
		Monitor: func(rc *agent.RunContext) []agent.Finding {
			p := BuildDLSP(rc)
			lines := p.Encode()
			_ = rc.FS.WriteLines(DLSPPath, lines)
			if rc.Report != nil {
				rc.Report("dlsp", strings.Join(lines, "\n"))
			}
			// Status generation is not fault detection; service agents own
			// that. A clean run reports nothing.
			return nil
		},
	}
	return agent.New(cfg)
}

// ReadLocalDLSP loads the profile the status agent last generated on a
// host's filesystem.
func ReadLocalDLSP(fs interface {
	ReadLines(string) ([]string, error)
}) (*ontology.DLSP, error) {
	lines, err := fs.ReadLines(DLSPPath)
	if err != nil {
		return nil, err
	}
	return ontology.DecodeDLSP(lines)
}
