package agents

import (
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/notify"
	"repro/internal/simclock"
	"repro/internal/svc"
)

type rig struct {
	sim  *simclock.Sim
	host *cluster.Host
	bus  *notify.Bus
	dir  *svc.Directory

	detected []string
	repaired []string
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sim := simclock.New(17)
	return &rig{
		sim:  sim,
		host: cluster.NewHost(sim, "db001", "10.0.0.1", cluster.ModelE4500, cluster.RoleDatabase, "london-dc1", "UK"),
		bus:  notify.NewBus(sim),
		dir:  svc.NewDirectory(),
	}
}

func (r *rig) cfg() agent.Config {
	return agent.Config{
		Host:       r.host,
		Services:   r.dir,
		Notify:     r.bus,
		AdminEmail: "oncall@site",
		Detected:   func(aspect string, _ simclock.Time) { r.detected = append(r.detected, aspect) },
		Repaired:   func(aspect string, _ simclock.Time) { r.repaired = append(r.repaired, aspect) },
	}
}

func (r *rig) oracle(t *testing.T) *svc.Service {
	t.Helper()
	s, err := svc.New(r.sim, svc.OracleSpec("ORA-01", 1521), r.host)
	if err != nil {
		t.Fatal(err)
	}
	r.dir.Add(s)
	if err := s.Start(nil); err != nil {
		t.Fatal(err)
	}
	r.sim.RunUntil(r.sim.Now() + 10*simclock.Minute)
	if !s.Running() {
		t.Fatal("oracle not running")
	}
	return s
}

func TestServiceAgentHealthyRun(t *testing.T) {
	r := newRig(t)
	s := r.oracle(t)
	a, err := NewServiceAgent(r.cfg(), s)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(r.sim)
	if !a.HasFlag("ok") || len(r.detected) != 0 {
		t.Errorf("flags=%v detected=%v", a.Flags(), r.detected)
	}
}

func TestServiceAgentRestartsCrashedDatabase(t *testing.T) {
	r := newRig(t)
	s := r.oracle(t)
	a, _ := NewServiceAgent(r.cfg(), s)
	s.Crash()
	a.Run(r.sim)
	if len(r.detected) != 1 || r.detected[0] != "service.ORA-01" {
		t.Fatalf("detected = %v", r.detected)
	}
	if s.State() != svc.StateStarting {
		t.Fatalf("restart not initiated: %v", s.State())
	}
	if len(r.repaired) != 0 {
		t.Error("repair must not be credited before the service is up")
	}
	r.sim.RunUntil(r.sim.Now() + 10*simclock.Minute)
	if !s.Running() {
		t.Fatalf("service did not come back: %v", s.State())
	}
	if len(r.repaired) != 1 || r.repaired[0] != "service.ORA-01" {
		t.Errorf("repaired = %v", r.repaired)
	}
	logText := strings.Join(a.LogLines(), "\n")
	if !strings.Contains(logText, "database crashed") {
		t.Errorf("diagnosis should name the database crash:\n%s", logText)
	}
}

func TestServiceAgentRestartsHungService(t *testing.T) {
	r := newRig(t)
	s := r.oracle(t)
	a, _ := NewServiceAgent(r.cfg(), s)
	s.Hang()
	a.Run(r.sim)
	r.sim.RunUntil(r.sim.Now() + 10*simclock.Minute)
	if !s.Running() {
		t.Fatalf("hung service not recovered: %v", s.State())
	}
	if len(r.repaired) != 1 {
		t.Errorf("repaired = %v", r.repaired)
	}
}

func TestServiceAgentPartialComponentFailure(t *testing.T) {
	r := newRig(t)
	s := r.oracle(t)
	a, _ := NewServiceAgent(r.cfg(), s)
	s.KillComponent("ora_dbwr", 1)
	a.Run(r.sim)
	r.sim.RunUntil(r.sim.Now() + 10*simclock.Minute)
	if !s.Running() || len(s.MissingProcs()) != 0 {
		t.Fatalf("component not restored: %v missing=%v", s.State(), s.MissingProcs())
	}
}

func TestServiceAgentWedgedEscalates(t *testing.T) {
	r := newRig(t)
	s := r.oracle(t)
	a, _ := NewServiceAgent(r.cfg(), s)
	s.Crash()
	s.Wedged = true
	a.Run(r.sim)
	r.sim.RunUntil(r.sim.Now() + 10*simclock.Minute)
	if s.Running() {
		t.Fatal("wedged service must not restart")
	}
	if a.Counters().Escalated == 0 {
		t.Error("corruption should escalate to humans")
	}
	if r.bus.CountByTag("agent-escalation") == 0 {
		t.Error("escalation email missing")
	}
}

func TestServiceAgentOverloadDefersToPerformance(t *testing.T) {
	r := newRig(t)
	s := r.oracle(t)
	a, _ := NewServiceAgent(r.cfg(), s)
	r.host.Spawn("hog_sim", "analyst9", "", 40, 100) // saturate: probe times out
	a.Run(r.sim)
	if s.State() != svc.StateRunning {
		t.Fatalf("service should stay up: %v", s.State())
	}
	if a.Counters().Healed != 0 {
		t.Error("overload is not the service agent's to heal")
	}
	logText := strings.Join(a.LogLines(), "\n")
	if !strings.Contains(logText, "overloaded") {
		t.Errorf("should diagnose overload:\n%s", logText)
	}
}

func TestStatusAgentGeneratesDLSP(t *testing.T) {
	r := newRig(t)
	s := r.oracle(t)
	var reports []string
	cfg := r.cfg()
	cfg.Report = func(kind, payload string) {
		if kind == "dlsp" {
			reports = append(reports, payload)
		}
	}
	a, err := NewStatusAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(r.sim)
	p, err := ReadLocalDLSP(r.host.FS)
	if err != nil {
		t.Fatal(err)
	}
	if p.Server != "db001" || p.CPUs != 8 {
		t.Errorf("dlsp: %+v", p)
	}
	rec := p.Service("ORA-01")
	if rec == nil || rec.State != "running" || rec.Kind != "oracle" {
		t.Errorf("service record: %+v", rec)
	}
	if len(reports) != 1 || !strings.Contains(reports[0], "ORA-01") {
		t.Errorf("reports = %d", len(reports))
	}
	// Crash the DB; the next profile must say so.
	s.Crash()
	r.sim.RunUntil(r.sim.Now() + simclock.Minute)
	a.Run(r.sim)
	p, _ = ReadLocalDLSP(r.host.FS)
	if p.Service("ORA-01").State != "crashed" {
		t.Errorf("state = %s", p.Service("ORA-01").State)
	}
}

func TestPerformanceAgentKillsHog(t *testing.T) {
	r := newRig(t)
	r.oracle(t)
	a, err := NewPerformanceAgent(r.cfg(), PerfConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hog := r.host.Spawn("hog_simulation", "analyst9", "", 7, 100)
	a.Run(r.sim)
	if r.host.Proc(hog.PID) != nil {
		t.Fatal("hog should be killed")
	}
	found := false
	for _, asp := range r.repaired {
		if asp == AspectHog {
			found = true
		}
	}
	if !found {
		t.Errorf("repaired = %v", r.repaired)
	}
	if r.bus.CountByTag("threshold-exceeded") == 0 {
		t.Error("threshold email missing")
	}
}

func TestPerformanceAgentNeverKillsServiceProcs(t *testing.T) {
	r := newRig(t)
	s := r.oracle(t)
	a, _ := NewPerformanceAgent(r.cfg(), PerfConfig{})
	// Saturate using a *service* process (big database workload).
	p := r.host.Spawn("ora_huge_query", "oracle", "", 9, 100)
	a.Run(r.sim)
	if r.host.Proc(p.PID) == nil {
		t.Error("service-user processes are not the perf agent's to kill")
	}
	if !s.Running() {
		t.Error("service harmed")
	}
}

func TestPerformanceAgentKillsLeaker(t *testing.T) {
	r := newRig(t)
	r.oracle(t)
	a, _ := NewPerformanceAgent(r.cfg(), PerfConfig{})
	leak := r.host.Spawn("leak_model", "analyst3", "", 0.1, 7000) // 7 GB of 8 GB
	a.Run(r.sim)
	if r.host.Proc(leak.PID) != nil {
		t.Error("leaker should be killed")
	}
}

func TestPerformanceAgentWritesCircularLogs(t *testing.T) {
	r := newRig(t)
	a, _ := NewPerformanceAgent(r.cfg(), PerfConfig{LogLines: 5})
	for i := 0; i < 8; i++ {
		a.Run(r.sim)
		r.sim.RunUntil(r.sim.Now() + simclock.Minute)
	}
	lines, err := r.host.FS.ReadLines(PerfLogDir("db001") + "/os.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 5 {
		t.Errorf("circular log length = %d, want 5", len(lines))
	}
	if !strings.Contains(lines[0], "sr=") {
		t.Errorf("log format: %s", lines[0])
	}
}

func TestCPUAgentKillsRunaway(t *testing.T) {
	r := newRig(t)
	a, err := NewCPUAgent(r.cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hog := r.host.Spawn("hog_x", "analyst1", "", 10, 50)
	a.Run(r.sim)
	if r.host.Proc(hog.PID) != nil {
		t.Error("runaway survived the CPU agent")
	}
}

func TestMemoryAgentKillsLeaker(t *testing.T) {
	r := newRig(t)
	a, err := NewMemoryAgent(r.cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	leak := r.host.Spawn("leak_y", "analyst2", "", 0.1, 7600)
	a.Run(r.sim)
	if r.host.Proc(leak.PID) != nil {
		t.Error("leaker survived the memory agent")
	}
}

func TestDiskAgentWarnsOnly(t *testing.T) {
	r := newRig(t)
	a, err := NewDiskAgent(r.cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r.host.AddDiskActivity(1.5)
	a.Run(r.sim)
	if a.Counters().Findings == 0 {
		t.Error("saturated disks should be reported")
	}
	if a.Counters().Healed != 0 || a.Counters().Escalated != 0 {
		t.Errorf("disk agent should only warn: %+v", a.Counters())
	}
}

func TestNetworkAgentEscalatesLinkFault(t *testing.T) {
	r := newRig(t)
	priv := netsim.New(r.sim, "private", simclock.Second, 0)
	pub := netsim.New(r.sim, "public", simclock.Second, 0)
	priv.Attach("db001", nil)
	pub.Attach("db001", nil)
	a, err := NewNetworkAgent(r.cfg(), nil, priv, pub)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(r.sim)
	if a.Counters().Findings != 0 {
		t.Fatalf("healthy network flagged: %+v", a.Counters())
	}
	r.sim.RunUntil(r.sim.Now() + simclock.Minute)
	pub.SetLink("db001", false)
	a.Run(r.sim)
	if len(r.detected) != 1 || r.detected[0] != AspectNet {
		t.Errorf("detected = %v", r.detected)
	}
	if a.Counters().Healed != 0 || a.Counters().Escalated == 0 {
		t.Errorf("network faults must escalate, not heal: %+v", a.Counters())
	}
}

func TestNetworkAgentNICErrors(t *testing.T) {
	r := newRig(t)
	a, _ := NewNetworkAgent(r.cfg(), nil)
	r.host.InjectNICErrors(25)
	a.Run(r.sim)
	if len(r.detected) != 1 || r.detected[0] != AspectNet {
		t.Errorf("detected = %v", r.detected)
	}
}

func TestHardwareAgentSensors(t *testing.T) {
	r := newRig(t)
	a, err := NewHardwareAgent(r.cfg())
	if err != nil {
		t.Fatal(err)
	}
	a.Run(r.sim)
	if a.Counters().Findings != 0 {
		t.Error("healthy hardware flagged")
	}
	r.sim.RunUntil(r.sim.Now() + simclock.Minute)
	r.host.InjectSensorFault("cpu-board-3")
	a.Run(r.sim)
	if a.Counters().Escalated == 0 {
		t.Error("hardware fault should escalate")
	}
	if len(r.detected) == 0 || r.detected[0] != AspectSensor {
		t.Errorf("detected = %v", r.detected)
	}
}

// End-to-end: registry + service agent detect and repair a crash, and the
// ledger shows detection within one cron period.
func TestServiceAgentWithRegistry(t *testing.T) {
	r := newRig(t)
	s := r.oracle(t)
	led := metrics.NewLedger()
	bridge := NewRegistryBridge(led)
	cfg := r.cfg()
	cfg.Detected = bridge.Detected(r.host.Name)
	cfg.Repaired = bridge.Repaired(r.host.Name)
	a, _ := NewServiceAgent(cfg, s)
	a.Schedule(r.sim, 0, 5*simclock.Minute)

	crashAt := r.sim.Now() + 17*simclock.Minute
	r.sim.Schedule(crashAt, "inject", func(now simclock.Time) {
		s.Crash()
		bridge.Reg.Add(metrics.CatMidCrash, r.host.Name, ServiceAspect("ORA-01"), "crash", false, now, nil)
	})
	r.sim.RunUntil(crashAt + simclock.Hour)

	incs := led.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d", len(incs))
	}
	inc := incs[0]
	if !inc.Detected || inc.DetectionLatency() > 5*simclock.Minute {
		t.Errorf("detection latency = %v (detected=%v)", inc.DetectionLatency(), inc.Detected)
	}
	if !inc.Resolved || inc.ResolvedBy != "intelliagent" {
		t.Errorf("incident not resolved by agent: %+v", inc)
	}
	if !s.Running() {
		t.Error("service should be running again")
	}
}
