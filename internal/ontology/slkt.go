package ontology

import (
	"fmt"

	"repro/internal/simclock"
)

// SLKTApp describes one application the server should run: its external
// and internal dependencies and requirements — file systems, path names,
// startup sequences, binary location, type, version, name, port, process
// names and numbers (§3.1c).
type SLKTApp struct {
	Name       string
	Kind       string
	Version    string
	Port       int
	BinaryPath string
	TimeoutSec int      // specialist-provided connectivity timeout
	StartupSeq []string // component process names in start order
	ProcCounts map[string]int
	DependsOn  []string
}

// Timeout converts the stored timeout to simulated time.
func (a SLKTApp) Timeout() simclock.Time {
	return simclock.Time(a.TimeoutSec) * simclock.Second
}

// SLKT is a static local knowledge template: what the server should be like
// hardware-wise and which applications it should run.
type SLKT struct {
	Server   string
	Model    string
	CPUs     int
	MemoryMB int
	Apps     []SLKTApp
}

// App finds the template for an application by name, or nil.
func (t *SLKT) App(name string) *SLKTApp {
	for i := range t.Apps {
		if t.Apps[i].Name == name {
			return &t.Apps[i]
		}
	}
	return nil
}

// ExpectedProcs reports the total process count of app when healthy.
func (a SLKTApp) ExpectedProcs() int {
	n := 0
	for _, c := range a.ProcCounts {
		n += c
	}
	return n
}

// Encode renders the template:
//
//	hw|server|model|cpus|memMB
//	app|name|kind|version|port|binpath|timeout_s
//	seq|appname|proc1,proc2,...
//	proc|appname|procname|count
//	dep|appname|depname
func (t *SLKT) Encode() []string {
	lines := []string{
		"# SLKT static local knowledge template for " + t.Server,
		joinRecord("hw", escape(t.Server), escape(t.Model), itoa(t.CPUs), itoa(t.MemoryMB)),
	}
	for _, a := range t.Apps {
		lines = append(lines, joinRecord("app", escape(a.Name), escape(a.Kind), escape(a.Version),
			itoa(a.Port), escape(a.BinaryPath), itoa(a.TimeoutSec)))
		if len(a.StartupSeq) > 0 {
			seq := make([]string, len(a.StartupSeq))
			for i, p := range a.StartupSeq {
				seq[i] = escape(p)
			}
			lines = append(lines, joinRecord("seq", escape(a.Name), joinComma(seq)))
		}
		for _, p := range a.StartupSeq {
			if c, ok := a.ProcCounts[p]; ok {
				lines = append(lines, joinRecord("proc", escape(a.Name), escape(p), itoa(c)))
			}
		}
		for _, d := range a.DependsOn {
			lines = append(lines, joinRecord("dep", escape(a.Name), escape(d)))
		}
	}
	return lines
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// DecodeSLKT parses lines produced by Encode.
func DecodeSLKT(lines []string) (*SLKT, error) {
	t := &SLKT{}
	appIdx := map[string]int{}
	for i, line := range lines {
		if isComment(line) {
			continue
		}
		f := splitRecord(line)
		switch f[0] {
		case "hw":
			if len(f) != 5 {
				return nil, fmt.Errorf("ontology: SLKT line %d: hw wants 5 fields", i+1)
			}
			t.Server = unescape(f[1])
			t.Model = unescape(f[2])
			var err error
			if t.CPUs, err = parseInt(f[3], "cpus"); err != nil {
				return nil, err
			}
			if t.MemoryMB, err = parseInt(f[4], "memMB"); err != nil {
				return nil, err
			}
		case "app":
			if len(f) != 7 {
				return nil, fmt.Errorf("ontology: SLKT line %d: app wants 7 fields", i+1)
			}
			port, err := parseInt(f[4], "port")
			if err != nil {
				return nil, err
			}
			tmo, err := parseInt(f[6], "timeout")
			if err != nil {
				return nil, err
			}
			a := SLKTApp{
				Name: unescape(f[1]), Kind: unescape(f[2]), Version: unescape(f[3]),
				Port: port, BinaryPath: unescape(f[5]), TimeoutSec: tmo,
				ProcCounts: map[string]int{},
			}
			appIdx[a.Name] = len(t.Apps)
			t.Apps = append(t.Apps, a)
		case "seq":
			if len(f) != 3 {
				return nil, fmt.Errorf("ontology: SLKT line %d: seq wants 3 fields", i+1)
			}
			idx, ok := appIdx[unescape(f[1])]
			if !ok {
				return nil, fmt.Errorf("ontology: SLKT line %d: seq for unknown app %s", i+1, f[1])
			}
			for _, p := range splitComma(f[2]) {
				t.Apps[idx].StartupSeq = append(t.Apps[idx].StartupSeq, unescape(p))
			}
		case "proc":
			if len(f) != 4 {
				return nil, fmt.Errorf("ontology: SLKT line %d: proc wants 4 fields", i+1)
			}
			idx, ok := appIdx[unescape(f[1])]
			if !ok {
				return nil, fmt.Errorf("ontology: SLKT line %d: proc for unknown app %s", i+1, f[1])
			}
			c, err := parseInt(f[3], "proc count")
			if err != nil {
				return nil, err
			}
			t.Apps[idx].ProcCounts[unescape(f[2])] = c
		case "dep":
			if len(f) != 3 {
				return nil, fmt.Errorf("ontology: SLKT line %d: dep wants 3 fields", i+1)
			}
			idx, ok := appIdx[unescape(f[1])]
			if !ok {
				return nil, fmt.Errorf("ontology: SLKT line %d: dep for unknown app %s", i+1, f[1])
			}
			t.Apps[idx].DependsOn = append(t.Apps[idx].DependsOn, unescape(f[2]))
		default:
			return nil, fmt.Errorf("ontology: SLKT line %d: unknown record %q", i+1, f[0])
		}
	}
	if t.Server == "" {
		return nil, fmt.Errorf("ontology: SLKT missing hw record")
	}
	return t, nil
}

func splitComma(s string) []string {
	if s == "" {
		return nil
	}
	var parts []string
	var cur []byte
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			cur = append(cur, s[i], s[i+1])
			i++
			continue
		}
		if s[i] == ',' {
			parts = append(parts, string(cur))
			cur = cur[:0]
			continue
		}
		cur = append(cur, s[i])
	}
	parts = append(parts, string(cur))
	return parts
}
