package ontology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEscapeRoundTrip(t *testing.T) {
	cases := []string{"", "plain", "with|pipe", "back\\slash", "new\nline", "mix|\\|\n|"}
	for _, c := range cases {
		got := unescape(escape(c))
		if got != c {
			t.Errorf("round trip %q -> %q", c, got)
		}
		if strings.ContainsAny(escape(c), "|\n") {
			t.Errorf("escape(%q) still contains metacharacters: %q", c, escape(c))
		}
	}
}

func TestQuickEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool { return unescape(escape(s)) == s }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSplitRecordRespectsEscapes(t *testing.T) {
	rec := joinRecord(escape("a|b"), escape("c"), escape("d\\e"))
	f := splitRecord(rec)
	if len(f) != 3 || unescape(f[0]) != "a|b" || unescape(f[2]) != "d\\e" {
		t.Errorf("splitRecord = %q", f)
	}
}

func TestISSLAddLimits(t *testing.T) {
	l := &ISSL{}
	if err := l.Add(ISSLEntry{Server: "", IP: "1"}); err == nil {
		t.Error("empty server should fail")
	}
	if err := l.Add(ISSLEntry{Server: "a", IP: "1"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(ISSLEntry{Server: "a", IP: "2"}); err == nil {
		t.Error("duplicate should fail")
	}
	for i := 1; i < MaxISSLEntries; i++ {
		if err := l.Add(ISSLEntry{Server: "s" + itoa(i), IP: "1"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Add(ISSLEntry{Server: "overflow", IP: "1"}); err == nil {
		t.Error("201st entry should fail")
	}
}

func TestISSLRoundTrip(t *testing.T) {
	l := &ISSL{}
	l.Add(ISSLEntry{Server: "db001", IP: "10.0.0.1", Services: []string{"ORA-01", "LSF-db001"}})
	l.Add(ISSLEntry{Server: "web|weird", IP: "10.0.0.2", Services: []string{"W,EB"}})
	l.Add(ISSLEntry{Server: "bare", IP: "10.0.0.3"})
	got, err := DecodeISSL(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 3 {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	if got.Entries[1].Server != "web|weird" {
		t.Errorf("escaped server = %q", got.Entries[1].Server)
	}
	if got.Lookup("db001") == nil || got.Lookup("nope") != nil {
		t.Error("lookup broken")
	}
	if s := got.ServersRunning("ORA-01"); len(s) != 1 || s[0] != "db001" {
		t.Errorf("ServersRunning = %v", s)
	}
	if len(got.Entries[2].Services) != 0 {
		t.Errorf("bare entry services = %v", got.Entries[2].Services)
	}
}

func TestISSLDecodeErrors(t *testing.T) {
	if _, err := DecodeISSL([]string{"only|two"}); err == nil {
		t.Error("2-field line should fail")
	}
	if _, err := DecodeISSL([]string{"# comment", "", "a|1|x"}); err != nil {
		t.Errorf("comments should be skipped: %v", err)
	}
}

func sampleSLKT() *SLKT {
	return &SLKT{
		Server: "db001", Model: "E4500", CPUs: 8, MemoryMB: 8192,
		Apps: []SLKTApp{
			{
				Name: "ORA-01", Kind: "oracle", Version: "8.1.7", Port: 1521,
				BinaryPath: "/apps/oracle/bin", TimeoutSec: 30,
				StartupSeq: []string{"ora_pmon", "ora_smon", "ora_dbwr"},
				ProcCounts: map[string]int{"ora_pmon": 1, "ora_smon": 1, "ora_dbwr": 2},
			},
			{
				Name: "LSF-db001", Kind: "lsf", Version: "4.1", Port: 6878,
				BinaryPath: "/apps/lsf/bin", TimeoutSec: 15,
				StartupSeq: []string{"lim", "sbatchd"},
				ProcCounts: map[string]int{"lim": 1, "sbatchd": 1},
				DependsOn:  []string{"ORA-01"},
			},
		},
	}
}

func TestSLKTRoundTrip(t *testing.T) {
	in := sampleSLKT()
	got, err := DecodeSLKT(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Server != "db001" || got.Model != "E4500" || got.CPUs != 8 || got.MemoryMB != 8192 {
		t.Errorf("hw fields: %+v", got)
	}
	if len(got.Apps) != 2 {
		t.Fatalf("apps = %d", len(got.Apps))
	}
	ora := got.App("ORA-01")
	if ora == nil {
		t.Fatal("ORA-01 missing")
	}
	if ora.TimeoutSec != 30 || ora.Timeout() != 30*1e9 {
		t.Errorf("timeout = %d (%v)", ora.TimeoutSec, ora.Timeout())
	}
	if len(ora.StartupSeq) != 3 || ora.StartupSeq[0] != "ora_pmon" {
		t.Errorf("startup seq = %v", ora.StartupSeq)
	}
	if ora.ProcCounts["ora_dbwr"] != 2 || ora.ExpectedProcs() != 4 {
		t.Errorf("proc counts = %v", ora.ProcCounts)
	}
	lsf := got.App("LSF-db001")
	if lsf == nil || len(lsf.DependsOn) != 1 || lsf.DependsOn[0] != "ORA-01" {
		t.Errorf("deps = %+v", lsf)
	}
	if got.App("nope") != nil {
		t.Error("App should return nil for unknown")
	}
}

func TestSLKTDecodeErrors(t *testing.T) {
	cases := [][]string{
		{"app|x|k|v|1|p|5"},              // app with no hw is fine structurally but missing hw at end
		{"hw|s|m|eight|1"},               // bad cpus
		{"hw|s|m|1|1", "seq|ghost|a"},    // seq for unknown app
		{"hw|s|m|1|1", "proc|ghost|a|1"}, // proc for unknown app
		{"hw|s|m|1|1", "dep|ghost|a"},    // dep for unknown app
		{"hw|s|m|1|1", "wat|x"},          // unknown record
		{"hw|short"},                     // wrong arity
	}
	for i, lines := range cases {
		if _, err := DecodeSLKT(lines); err == nil {
			t.Errorf("case %d should fail: %v", i, lines)
		}
	}
}

func sampleDLSP() *DLSP {
	return &DLSP{
		Server: "db001", GeneratedAt: 12345, Model: "E4500", OS: "Solaris8",
		CPUs: 8, MemoryMB: 8192, CPUUtil: 0.42, RunQueue: 1, MemUsedMB: 4096.5, Users: 7,
		Services: []DLSPService{
			{Name: "ORA-01", Kind: "oracle", State: "running", Port: 1521, Conns: 12},
			{Name: "LSF-db001", Kind: "lsf", State: "crashed", Port: 6878, Conns: 0},
		},
	}
}

func TestDLSPRoundTrip(t *testing.T) {
	in := sampleDLSP()
	got, err := DecodeDLSP(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Server != in.Server || got.GeneratedAt != in.GeneratedAt || got.CPUUtil != in.CPUUtil ||
		got.MemUsedMB != in.MemUsedMB || got.Users != in.Users {
		t.Errorf("fields: %+v", got)
	}
	if len(got.Services) != 2 || got.Services[1].State != "crashed" {
		t.Errorf("services: %+v", got.Services)
	}
	if got.Service("ORA-01") == nil || got.Service("nope") != nil {
		t.Error("Service lookup broken")
	}
	if c := got.Capacity(); c < 0.579 || c > 0.581 {
		t.Errorf("capacity = %v", c)
	}
}

func TestDLSPDecodeErrors(t *testing.T) {
	if _, err := DecodeDLSP([]string{"load|0.1|0|1|1"}); err == nil {
		t.Error("missing prof should fail")
	}
	if _, err := DecodeDLSP([]string{"prof|s|x|m|o|8|1"}); err == nil {
		t.Error("bad timestamp should fail")
	}
	if _, err := DecodeDLSP([]string{"prof|s|1|m|o|8|1", "svc|n|k|s|bad|0"}); err == nil {
		t.Error("bad port should fail")
	}
}

func sampleDGSPL() *DGSPL {
	return &DGSPL{
		GeneratedAt: 999,
		Entries: []DGSPLEntry{
			{Server: "db001", ServerType: "E4500", OS: "Solaris8", CPUs: 8, MemoryMB: 8192,
				AppName: "ORA-01", AppType: "oracle", AppVersion: "8.1.7", Load: 0.3, Users: 4,
				Geo: "UK", Site: "london-dc1", State: "running", JobsRunning: 2, JobsWaiting: 1, JobLimit: 8},
			{Server: "db002", ServerType: "E10K", OS: "Solaris8", CPUs: 32, MemoryMB: 32768,
				AppName: "ORA-02", AppType: "oracle", AppVersion: "8.1.7", Load: 0.5, Users: 9,
				Geo: "UK", Site: "london-dc1", State: "running", JobsRunning: 5, JobsWaiting: 0, JobLimit: 16},
			{Server: "db003", ServerType: "E450", OS: "Solaris8", CPUs: 4, MemoryMB: 4096,
				AppName: "ORA-03", AppType: "oracle", AppVersion: "8.1.7", Load: 0.1, Users: 0,
				Geo: "UK", Site: "london-dc1", State: "crashed", JobsRunning: 0, JobsWaiting: 0, JobLimit: 6},
			{Server: "web01", ServerType: "SP2", OS: "AIX4", CPUs: 4, MemoryMB: 2048,
				AppName: "WEB-01", AppType: "webserver", AppVersion: "1.3", Load: 0.2, Users: 1,
				Geo: "UK", Site: "london-dc1", State: "running", JobLimit: 0},
		},
	}
}

func TestDGSPLRoundTrip(t *testing.T) {
	in := sampleDGSPL()
	got, err := DecodeDGSPL(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.GeneratedAt != 999 || len(got.Entries) != 4 {
		t.Fatalf("decoded: gen=%v n=%d", got.GeneratedAt, len(got.Entries))
	}
	for i := range in.Entries {
		if got.Entries[i] != in.Entries[i] {
			t.Errorf("entry %d mismatch:\n in=%+v\ngot=%+v", i, in.Entries[i], got.Entries[i])
		}
	}
	if e := got.Entry("ORA-02"); e == nil || e.Server != "db002" {
		t.Error("Entry lookup broken")
	}
}

func TestDGSPLByAppAndSlots(t *testing.T) {
	l := sampleDGSPL()
	oracles := l.ByApp("oracle")
	if len(oracles) != 3 {
		t.Fatalf("oracle entries = %d", len(oracles))
	}
	if f := oracles[0].SlotsFree(); f != 5 {
		t.Errorf("db001 free slots = %d, want 5", f)
	}
	e := DGSPLEntry{JobLimit: 2, JobsRunning: 5}
	if e.SlotsFree() != 0 {
		t.Errorf("oversubscribed slots should clamp at 0: %d", e.SlotsFree())
	}
	if !oracles[0].Available() || l.Entries[2].Available() {
		t.Error("availability misjudged")
	}
}

func TestDGSPLShortlist(t *testing.T) {
	l := sampleDGSPL()
	power := func(model string, cpus int) float64 {
		switch model {
		case "E10K":
			return 38.4
		case "E4500":
			return 8.8
		case "E450":
			return 4.0
		}
		return float64(cpus)
	}
	sl := l.Shortlist("oracle", power)
	// db003 is crashed, so only db001 and db002 qualify. db002 has
	// (1-0.5)*38.4=19.2 headroom vs db001 (1-0.3)*8.8=6.16: db002 first.
	if len(sl) != 2 || sl[0].Server != "db002" || sl[1].Server != "db001" {
		names := make([]string, len(sl))
		for i, e := range sl {
			names[i] = e.Server
		}
		t.Errorf("shortlist = %v", names)
	}
	// Full slots exclude a server.
	l.Entries[1].JobsRunning = 16
	sl = l.Shortlist("oracle", power)
	if len(sl) != 1 || sl[0].Server != "db001" {
		t.Errorf("shortlist after filling db002 = %v", sl)
	}
}

func TestDGSPLDecodeErrors(t *testing.T) {
	if _, err := DecodeDGSPL([]string{"gen|abc"}); err == nil {
		t.Error("bad gen should fail")
	}
	if _, err := DecodeDGSPL([]string{"svc|too|few"}); err == nil {
		t.Error("short svc should fail")
	}
	if _, err := DecodeDGSPL([]string{"bogus|x"}); err == nil {
		t.Error("unknown record should fail")
	}
}

// Property: DGSPL entries with arbitrary strings survive an encode/decode
// round trip.
func TestQuickDGSPLRoundTrip(t *testing.T) {
	f := func(server, app, geo string, cpus uint8, load float64) bool {
		in := &DGSPL{Entries: []DGSPLEntry{{
			Server: server, ServerType: "E450", OS: "Solaris8", CPUs: int(cpus),
			AppName: app, AppType: "oracle", Geo: geo, State: "running",
			Load: load,
		}}}
		got, err := DecodeDGSPL(in.Encode())
		if err != nil {
			return false
		}
		return len(got.Entries) == 1 && got.Entries[0] == in.Entries[0]
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: SLKT round-trips arbitrary app names.
func TestQuickSLKTRoundTrip(t *testing.T) {
	f := func(name string, port uint16, tmo uint8) bool {
		if name == "" {
			return true
		}
		in := &SLKT{Server: "s", Model: "m", CPUs: 1, MemoryMB: 1,
			Apps: []SLKTApp{{Name: name, Kind: "k", Version: "v", Port: int(port),
				BinaryPath: "/b", TimeoutSec: int(tmo),
				StartupSeq: []string{"p1"}, ProcCounts: map[string]int{"p1": 1}}}}
		got, err := DecodeSLKT(in.Encode())
		if err != nil {
			return false
		}
		a := got.App(name)
		return a != nil && a.Port == int(port) && a.TimeoutSec == int(tmo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
