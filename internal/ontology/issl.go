package ontology

import (
	"fmt"
	"strings"
)

// MaxISSLEntries is the paper's stated capacity of an index static service
// list ("they can contain up to 200 entries and are manually updated").
const MaxISSLEntries = 200

// ISSLEntry is one manually-maintained index record: very basic information
// about a server or resource — IP address and services.
type ISSLEntry struct {
	Server   string
	IP       string
	Services []string
}

// ISSL is an index static service list.
type ISSL struct {
	Entries []ISSLEntry
}

// Add appends an entry, enforcing the 200-entry capacity and unique server
// names.
func (l *ISSL) Add(e ISSLEntry) error {
	if len(l.Entries) >= MaxISSLEntries {
		return fmt.Errorf("ontology: ISSL full (%d entries)", MaxISSLEntries)
	}
	if e.Server == "" {
		return fmt.Errorf("ontology: ISSL entry missing server name")
	}
	for _, x := range l.Entries {
		if x.Server == e.Server {
			return fmt.Errorf("ontology: ISSL duplicate server %s", e.Server)
		}
	}
	l.Entries = append(l.Entries, e)
	return nil
}

// Lookup finds the entry for server, or nil.
func (l *ISSL) Lookup(server string) *ISSLEntry {
	for i := range l.Entries {
		if l.Entries[i].Server == server {
			return &l.Entries[i]
		}
	}
	return nil
}

// ServersRunning returns servers whose entry lists the given service.
func (l *ISSL) ServersRunning(service string) []string {
	var out []string
	for _, e := range l.Entries {
		for _, s := range e.Services {
			if s == service {
				out = append(out, e.Server)
				break
			}
		}
	}
	return out
}

// Encode renders the list as flat ASCII lines:
//
//	server|ip|svc1,svc2,...
func (l *ISSL) Encode() []string {
	lines := []string{"# ISSL index static service list"}
	for _, e := range l.Entries {
		svcs := make([]string, len(e.Services))
		for i, s := range e.Services {
			svcs[i] = escape(s)
		}
		lines = append(lines, joinRecord(escape(e.Server), escape(e.IP), strings.Join(svcs, ",")))
	}
	return lines
}

// DecodeISSL parses lines produced by Encode (comments skipped).
func DecodeISSL(lines []string) (*ISSL, error) {
	l := &ISSL{}
	for i, line := range lines {
		if isComment(line) {
			continue
		}
		f := splitRecord(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("ontology: ISSL line %d: %d fields, want 3", i+1, len(f))
		}
		var svcs []string
		if f[2] != "" {
			for _, s := range strings.Split(f[2], ",") {
				svcs = append(svcs, unescape(s))
			}
		}
		if err := l.Add(ISSLEntry{Server: unescape(f[0]), IP: unescape(f[1]), Services: svcs}); err != nil {
			return nil, fmt.Errorf("ontology: ISSL line %d: %w", i+1, err)
		}
	}
	return l, nil
}
