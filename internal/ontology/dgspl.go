package ontology

import (
	"fmt"
	"sort"

	"repro/internal/simclock"
)

// DGSPLEntry presents one available service exactly as the paper describes
// (§3.1d): <Server type, OS, memory and CPUs, Application type and version,
// Current Load, Users logged in, Geographical Location, Site Name>, plus
// the LSF extensions the paper added in §4 (jobs currently processed, jobs
// waiting, and the job submission limit per database server).
type DGSPLEntry struct {
	Server     string
	ServerType string // hardware model family
	OS         string
	CPUs       int
	MemoryMB   int
	AppName    string
	AppType    string
	AppVersion string
	Load       float64 // current CPU utilisation 0..1
	Users      int
	Geo        string
	Site       string
	State      string
	// LSF extensions (paper §4).
	JobsRunning int
	JobsWaiting int
	JobLimit    int
}

// Available reports whether the entry can accept work right now.
func (e DGSPLEntry) Available() bool { return e.State == "running" || e.State == "degraded" }

// SlotsFree reports remaining LSF job slots (limit minus running+waiting).
func (e DGSPLEntry) SlotsFree() int {
	free := e.JobLimit - e.JobsRunning - e.JobsWaiting
	if free < 0 {
		return 0
	}
	return free
}

// DGSPL is a dynamic global service profile list covering the datacentre.
type DGSPL struct {
	GeneratedAt simclock.Time
	Entries     []DGSPLEntry
}

// ByApp returns entries for the given application type, e.g. "oracle".
func (l *DGSPL) ByApp(appType string) []DGSPLEntry {
	var out []DGSPLEntry
	for _, e := range l.Entries {
		if e.AppType == appType {
			out = append(out, e)
		}
	}
	return out
}

// Entry finds the first entry for an app name, or nil.
func (l *DGSPL) Entry(appName string) *DGSPLEntry {
	for i := range l.Entries {
		if l.Entries[i].AppName == appName {
			return &l.Entries[i]
		}
	}
	return nil
}

// Shortlist ranks available entries of the given app type for job
// submission, best choice first, the way the admin servers present "the
// best available database server for the batch job in a shortlist, with the
// best choice always first": available, with free slots, least loaded
// relative to its power, most powerful first among ties.
func (l *DGSPL) Shortlist(appType string, powerOf func(model string, cpus int) float64) []DGSPLEntry {
	var cands []DGSPLEntry
	for _, e := range l.ByApp(appType) {
		if e.Available() && e.SlotsFree() > 0 {
			cands = append(cands, e)
		}
	}
	score := func(e DGSPLEntry) float64 {
		// Effective headroom: free fraction of the server's power.
		return (1 - e.Load) * powerOf(e.ServerType, e.CPUs)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		si, sj := score(cands[i]), score(cands[j])
		if si != sj {
			return si > sj
		}
		return cands[i].Server < cands[j].Server
	})
	return cands
}

// Encode renders the list:
//
//	gen|generated_ns
//	svc|server|serverType|os|cpus|memMB|appName|appType|version|load|users|geo|site|state|jobsRun|jobsWait|jobLimit
func (l *DGSPL) Encode() []string {
	lines := []string{
		"# DGSPL dynamic global service profile list",
		joinRecord("gen", fmt.Sprintf("%d", int64(l.GeneratedAt))),
	}
	for _, e := range l.Entries {
		lines = append(lines, joinRecord("svc",
			escape(e.Server), escape(e.ServerType), escape(e.OS), itoa(e.CPUs), itoa(e.MemoryMB),
			escape(e.AppName), escape(e.AppType), escape(e.AppVersion),
			ftoa(e.Load), itoa(e.Users), escape(e.Geo), escape(e.Site), escape(e.State),
			itoa(e.JobsRunning), itoa(e.JobsWaiting), itoa(e.JobLimit)))
	}
	return lines
}

// DecodeDGSPL parses lines produced by Encode.
func DecodeDGSPL(lines []string) (*DGSPL, error) {
	l := &DGSPL{}
	for i, line := range lines {
		if isComment(line) {
			continue
		}
		f := splitRecord(line)
		switch f[0] {
		case "gen":
			if len(f) != 2 {
				return nil, fmt.Errorf("ontology: DGSPL line %d: gen wants 2 fields", i+1)
			}
			var gen int64
			if _, err := fmt.Sscanf(f[1], "%d", &gen); err != nil {
				return nil, fmt.Errorf("ontology: DGSPL line %d: bad timestamp", i+1)
			}
			l.GeneratedAt = simclock.Time(gen)
		case "svc":
			if len(f) != 17 {
				return nil, fmt.Errorf("ontology: DGSPL line %d: svc wants 17 fields, got %d", i+1, len(f))
			}
			var e DGSPLEntry
			var err error
			e.Server = unescape(f[1])
			e.ServerType = unescape(f[2])
			e.OS = unescape(f[3])
			if e.CPUs, err = parseInt(f[4], "cpus"); err != nil {
				return nil, err
			}
			if e.MemoryMB, err = parseInt(f[5], "memMB"); err != nil {
				return nil, err
			}
			e.AppName = unescape(f[6])
			e.AppType = unescape(f[7])
			e.AppVersion = unescape(f[8])
			if e.Load, err = parseFloat(f[9], "load"); err != nil {
				return nil, err
			}
			if e.Users, err = parseInt(f[10], "users"); err != nil {
				return nil, err
			}
			e.Geo = unescape(f[11])
			e.Site = unescape(f[12])
			e.State = unescape(f[13])
			if e.JobsRunning, err = parseInt(f[14], "jobsRunning"); err != nil {
				return nil, err
			}
			if e.JobsWaiting, err = parseInt(f[15], "jobsWaiting"); err != nil {
				return nil, err
			}
			if e.JobLimit, err = parseInt(f[16], "jobLimit"); err != nil {
				return nil, err
			}
			l.Entries = append(l.Entries, e)
		default:
			return nil, fmt.Errorf("ontology: DGSPL line %d: unknown record %q", i+1, f[0])
		}
	}
	return l, nil
}
