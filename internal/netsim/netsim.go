// Package netsim simulates the paper's two-tier datacentre network: one or
// more public LANs carrying application traffic and a dedicated private
// intelliagent network carrying all agent-related traffic. Messages are
// delivered through simclock events with per-network latency. When the
// private network fails, senders using a Router automatically re-route over
// the public LAN, as the paper's agents do with Unix administration
// commands.
package netsim

import (
	"errors"
	"fmt"

	"repro/internal/simclock"
)

// Errors reported by Send.
var (
	ErrNetworkDown  = errors.New("netsim: network down")
	ErrLinkDown     = errors.New("netsim: host link down")
	ErrNotAttached  = errors.New("netsim: host not attached")
	ErrNoRouteFound = errors.New("netsim: no usable network")
)

// Message is a datagram between named hosts.
type Message struct {
	From    string
	To      string
	Kind    string // e.g. "flag-report", "dgspl-push", "probe", "notify"
	Payload string // flat ASCII, like everything else in the paper
	Bytes   int    // accounted traffic size; 0 means len(Payload)
}

func (m Message) size() int {
	if m.Bytes > 0 {
		return m.Bytes
	}
	if n := len(m.Payload); n > 0 {
		return n
	}
	return 64 // minimum frame
}

// Handler receives delivered messages.
type Handler func(now simclock.Time, msg Message)

// Stats is cumulative traffic accounting for one network.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int
	Bytes     int64
}

// Network is a broadcast domain with uniform latency.
type Network struct {
	name     string
	sim      *simclock.Sim
	latency  simclock.Time
	jitter   float64
	up       bool
	handlers map[string]Handler
	linkUp   map[string]bool
	stats    Stats
}

// New returns an operational network delivering with the given base
// latency. A jitter fraction of e.g. 0.2 spreads latency ±20%.
func New(sim *simclock.Sim, name string, latency simclock.Time, jitter float64) *Network {
	return &Network{
		name:     name,
		sim:      sim,
		latency:  latency,
		jitter:   jitter,
		up:       true,
		handlers: make(map[string]Handler),
		linkUp:   make(map[string]bool),
	}
}

// Name reports the network name.
func (n *Network) Name() string { return n.name }

// Up reports whether the network fabric is operational.
func (n *Network) Up() bool { return n.up }

// SetUp raises or drops the whole fabric (switch/firewall failure).
func (n *Network) SetUp(up bool) { n.up = up }

// Stats returns cumulative traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// Reset returns the network to the state New leaves it in — fabric up, no
// attachments, zero counters — keeping map storage allocated. Site reuse
// calls this between trials and re-attaches the skeleton's hosts.
func (n *Network) Reset() {
	n.up = true
	clear(n.handlers)
	clear(n.linkUp)
	n.stats = Stats{}
}

// Attach connects host to the network with its link up. Reattaching
// replaces the handler but preserves link state.
func (n *Network) Attach(host string, h Handler) {
	if _, ok := n.linkUp[host]; !ok {
		n.linkUp[host] = true
	}
	n.handlers[host] = h
}

// Detach removes the host entirely.
func (n *Network) Detach(host string) {
	delete(n.handlers, host)
	delete(n.linkUp, host)
}

// Attached reports whether host is connected.
func (n *Network) Attached(host string) bool {
	_, ok := n.handlers[host]
	return ok
}

// SetLink raises or drops a single host's link (NIC or cable failure).
func (n *Network) SetLink(host string, up bool) {
	if _, ok := n.linkUp[host]; ok {
		n.linkUp[host] = up
	}
}

// LinkUp reports the host's link state.
func (n *Network) LinkUp(host string) bool { return n.linkUp[host] }

// Usable reports whether a message from one host to another could be
// delivered right now.
func (n *Network) Usable(from, to string) bool {
	return n.up && n.Attached(from) && n.Attached(to) && n.linkUp[from] && n.linkUp[to]
}

// Send queues msg for delivery after the network latency. Errors are
// returned synchronously when the fabric, either link, or attachment is
// missing — the sender observes failure exactly as a Unix tool observes a
// send(2) error — and delivery itself can still fail (counted as a drop)
// if the destination link drops in flight.
func (n *Network) Send(msg Message) error {
	if !n.up {
		return fmt.Errorf("%w: %s", ErrNetworkDown, n.name)
	}
	if !n.Attached(msg.From) {
		return fmt.Errorf("%w: %s on %s", ErrNotAttached, msg.From, n.name)
	}
	if !n.Attached(msg.To) {
		return fmt.Errorf("%w: %s on %s", ErrNotAttached, msg.To, n.name)
	}
	if !n.linkUp[msg.From] {
		return fmt.Errorf("%w: %s on %s", ErrLinkDown, msg.From, n.name)
	}
	if !n.linkUp[msg.To] {
		return fmt.Errorf("%w: %s on %s", ErrLinkDown, msg.To, n.name)
	}
	n.stats.Sent++
	n.stats.Bytes += int64(msg.size())
	lat := n.latency
	if n.jitter > 0 {
		lat = n.sim.Rand().Jitter(n.latency, n.jitter)
	}
	n.sim.PostAfter(lat, "netsim:"+n.name+":deliver", func(now simclock.Time) {
		h, ok := n.handlers[msg.To]
		if !ok || !n.up || !n.linkUp[msg.To] {
			n.stats.Dropped++
			return
		}
		n.stats.Delivered++
		h(now, msg)
	})
	return nil
}

// Router sends over an ordered preference list of networks, falling back to
// the next network when the preferred one is unusable. The paper's agents
// prefer the private intelliagent network and re-route over the public LAN
// on failure.
type Router struct {
	nets     []*Network
	Reroutes int // messages that fell back past the first network
}

// NewRouter returns a router preferring nets in the given order.
func NewRouter(nets ...*Network) *Router { return &Router{nets: nets} }

// Networks returns the preference list.
func (r *Router) Networks() []*Network { return r.nets }

// Send delivers msg over the first usable network. It reports which network
// carried the message.
func (r *Router) Send(msg Message) (*Network, error) {
	for i, n := range r.nets {
		if !n.Usable(msg.From, msg.To) {
			continue
		}
		if err := n.Send(msg); err != nil {
			continue
		}
		if i > 0 {
			r.Reroutes++
		}
		return n, nil
	}
	return nil, fmt.Errorf("%w: %s -> %s", ErrNoRouteFound, msg.From, msg.To)
}
