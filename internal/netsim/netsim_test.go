package netsim

import (
	"errors"
	"testing"

	"repro/internal/simclock"
)

func newNet(t *testing.T) (*simclock.Sim, *Network) {
	t.Helper()
	sim := simclock.New(1)
	return sim, New(sim, "private", 2*simclock.Second, 0)
}

func TestDeliver(t *testing.T) {
	sim, n := newNet(t)
	var got []Message
	var at simclock.Time
	n.Attach("a", nil)
	n.Attach("b", func(now simclock.Time, m Message) { got = append(got, m); at = now })
	if err := n.Send(Message{From: "a", To: "b", Kind: "probe", Payload: "hi"}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(got) != 1 || got[0].Payload != "hi" {
		t.Fatalf("delivery: %v", got)
	}
	if at != 2*simclock.Second {
		t.Errorf("latency: delivered at %v", at)
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestSendErrors(t *testing.T) {
	_, n := newNet(t)
	n.Attach("a", nil)
	if err := n.Send(Message{From: "a", To: "ghost"}); !errors.Is(err, ErrNotAttached) {
		t.Errorf("to ghost: %v", err)
	}
	if err := n.Send(Message{From: "ghost", To: "a"}); !errors.Is(err, ErrNotAttached) {
		t.Errorf("from ghost: %v", err)
	}
	n.Attach("b", nil)
	n.SetLink("a", false)
	if err := n.Send(Message{From: "a", To: "b"}); !errors.Is(err, ErrLinkDown) {
		t.Errorf("link down: %v", err)
	}
	n.SetLink("a", true)
	n.SetUp(false)
	if err := n.Send(Message{From: "a", To: "b"}); !errors.Is(err, ErrNetworkDown) {
		t.Errorf("net down: %v", err)
	}
}

func TestInFlightDrop(t *testing.T) {
	sim, n := newNet(t)
	delivered := false
	n.Attach("a", nil)
	n.Attach("b", func(simclock.Time, Message) { delivered = true })
	n.Send(Message{From: "a", To: "b"})
	sim.After(simclock.Second, "cut", func(simclock.Time) { n.SetLink("b", false) })
	sim.Run()
	if delivered {
		t.Error("message delivered despite link cut in flight")
	}
	if n.Stats().Dropped != 1 {
		t.Errorf("dropped = %d", n.Stats().Dropped)
	}
}

func TestDetach(t *testing.T) {
	_, n := newNet(t)
	n.Attach("a", nil)
	n.Detach("a")
	if n.Attached("a") {
		t.Error("still attached after detach")
	}
}

func TestBytesAccounting(t *testing.T) {
	sim, n := newNet(t)
	n.Attach("a", nil)
	n.Attach("b", func(simclock.Time, Message) {})
	n.Send(Message{From: "a", To: "b", Payload: "0123456789"})
	n.Send(Message{From: "a", To: "b", Bytes: 1000})
	n.Send(Message{From: "a", To: "b"}) // minimum frame 64
	sim.Run()
	if n.Stats().Bytes != 10+1000+64 {
		t.Errorf("bytes = %d", n.Stats().Bytes)
	}
}

func TestRouterPrefersPrivate(t *testing.T) {
	sim := simclock.New(1)
	priv := New(sim, "private", simclock.Second, 0)
	pub := New(sim, "public", simclock.Second, 0)
	for _, n := range []*Network{priv, pub} {
		n.Attach("a", nil)
		n.Attach("b", func(simclock.Time, Message) {})
	}
	r := NewRouter(priv, pub)
	via, err := r.Send(Message{From: "a", To: "b"})
	if err != nil || via.Name() != "private" {
		t.Fatalf("via %v err %v", via, err)
	}
	if r.Reroutes != 0 {
		t.Errorf("reroutes = %d", r.Reroutes)
	}
}

func TestRouterFallsBackWhenPrivateDown(t *testing.T) {
	sim := simclock.New(1)
	priv := New(sim, "private", simclock.Second, 0)
	pub := New(sim, "public", simclock.Second, 0)
	delivered := 0
	for _, n := range []*Network{priv, pub} {
		n.Attach("a", nil)
		n.Attach("b", func(simclock.Time, Message) { delivered++ })
	}
	priv.SetUp(false)
	r := NewRouter(priv, pub)
	via, err := r.Send(Message{From: "a", To: "b"})
	if err != nil || via.Name() != "public" {
		t.Fatalf("via %v err %v", via, err)
	}
	if r.Reroutes != 1 {
		t.Errorf("reroutes = %d", r.Reroutes)
	}
	sim.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d", delivered)
	}
}

func TestRouterNoRoute(t *testing.T) {
	sim := simclock.New(1)
	priv := New(sim, "private", simclock.Second, 0)
	priv.Attach("a", nil)
	priv.Attach("b", nil)
	priv.SetUp(false)
	r := NewRouter(priv)
	if _, err := r.Send(Message{From: "a", To: "b"}); !errors.Is(err, ErrNoRouteFound) {
		t.Errorf("want ErrNoRouteFound, got %v", err)
	}
}

func TestRouterFallsBackOnLinkFailure(t *testing.T) {
	sim := simclock.New(1)
	priv := New(sim, "private", simclock.Second, 0)
	pub := New(sim, "public", simclock.Second, 0)
	for _, n := range []*Network{priv, pub} {
		n.Attach("a", nil)
		n.Attach("b", func(simclock.Time, Message) {})
	}
	priv.SetLink("b", false) // only b's private NIC fails
	r := NewRouter(priv, pub)
	via, err := r.Send(Message{From: "a", To: "b"})
	if err != nil || via.Name() != "public" {
		t.Fatalf("via %v err %v", via, err)
	}
}

func TestJitterSpreadsLatency(t *testing.T) {
	sim := simclock.New(42)
	n := New(sim, "j", simclock.Second, 0.5)
	n.Attach("a", nil)
	var times []simclock.Time
	n.Attach("b", func(now simclock.Time, _ Message) { times = append(times, now) })
	for i := 0; i < 50; i++ {
		n.Send(Message{From: "a", To: "b"})
	}
	sim.Run()
	lo, hi := times[0], times[0]
	for _, v := range times {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		t.Error("jitter produced identical latencies")
	}
	if lo < simclock.Time(float64(simclock.Second)*0.49) || hi > simclock.Time(float64(simclock.Second)*1.51) {
		t.Errorf("jitter out of bounds: lo=%v hi=%v", lo, hi)
	}
}

func TestReattachPreservesLinkState(t *testing.T) {
	_, n := newNet(t)
	n.Attach("a", nil)
	n.SetLink("a", false)
	n.Attach("a", func(simclock.Time, Message) {})
	if n.LinkUp("a") {
		t.Error("reattach must not silently repair a downed link")
	}
}
