package qoscluster

// Per-category end-to-end tests: each Figure-2 error category is injected
// on its own into an agent-operated site, and the full pipeline — concrete
// breakage, agent (or admin-sweep) detection, repair or human escalation —
// must close the incident.

import (
	"testing"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// runCategory injects only the given category at a high rate for a few
// days under agents and returns the site.
func runCategory(t *testing.T, cat metrics.Category, window faultinject.Window, days int) *Site {
	t.Helper()
	site := BuildSite(SmallSite(13), Options{
		Mode: ModeAgents,
		Faults: []faultinject.Spec{{
			Category: cat, MeanInterarrival: simclock.Day, Window: window,
		}},
	})
	mustRun(t, site, simclock.Time(days)*simclock.Day)
	if n := len(site.Ledger.Incidents()); n == 0 {
		t.Fatalf("%s: no incidents injected", cat)
	}
	return site
}

// assertHandled checks every non-trailing incident was detected fast and
// resolved by the expected party.
func assertHandled(t *testing.T, site *Site, cat metrics.Category, wantResolver string, maxDetect simclock.Time) {
	t.Helper()
	now := site.Sim.Now()
	for _, inc := range site.Ledger.Incidents() {
		// Incidents injected in the last hours may legitimately still be
		// in-flight (human repairs take hours); skip the trailing edge.
		if !inc.Resolved && now-inc.StartedAt < 12*simclock.Hour {
			continue
		}
		if !inc.Detected {
			t.Errorf("%s incident %d never detected", cat, inc.ID)
			continue
		}
		if inc.DetectionLatency() > maxDetect {
			t.Errorf("%s incident %d detection took %v (max %v)", cat, inc.ID, inc.DetectionLatency(), maxDetect)
		}
		if !inc.Resolved {
			t.Errorf("%s incident %d still open after %v", cat, inc.ID, now-inc.StartedAt)
			continue
		}
		if wantResolver != "" && inc.ResolvedBy != wantResolver {
			t.Errorf("%s incident %d resolved by %s, want %s", cat, inc.ID, inc.ResolvedBy, wantResolver)
		}
	}
}

func TestCategoryMidCrash(t *testing.T) {
	site := runCategory(t, metrics.CatMidCrash, faultinject.Overnight, 5)
	assertHandled(t, site, metrics.CatMidCrash, "intelliagent", 6*simclock.Minute)
	// Mid-crash repairs are fast: detection + a ~3 minute Oracle restart.
	if m := metrics.Mean(site.Ledger.MTTRs(nil)); m > 10*simclock.Minute {
		t.Errorf("mid-crash MTTR = %v, want minutes", m)
	}
}

func TestCategoryHuman(t *testing.T) {
	site := runCategory(t, metrics.CatHuman, faultinject.Daytime, 5)
	assertHandled(t, site, metrics.CatHuman, "intelliagent", 6*simclock.Minute)
}

func TestCategoryPerformance(t *testing.T) {
	site := runCategory(t, metrics.CatPerformance, faultinject.Daytime, 5)
	assertHandled(t, site, metrics.CatPerformance, "intelliagent", 6*simclock.Minute)
	// The hog/leaker process must actually be gone from the host.
	for _, h := range site.DC.Hosts() {
		if len(h.PGrep("hog_simulation"))+len(h.PGrep("leak_modelcache")) > 0 && site.Registry.OpenCount() == 0 {
			t.Errorf("culprit process survived on %s after all faults closed", h.Name)
		}
	}
}

func TestCategoryFrontEnd(t *testing.T) {
	site := runCategory(t, metrics.CatFrontEnd, faultinject.Daytime, 5)
	assertHandled(t, site, metrics.CatFrontEnd, "intelliagent", 6*simclock.Minute)
}

func TestCategoryLSF(t *testing.T) {
	site := runCategory(t, metrics.CatLSF, faultinject.Daytime, 5)
	assertHandled(t, site, metrics.CatLSF, "intelliagent", 6*simclock.Minute)
}

func TestCategoryFirewallNet(t *testing.T) {
	site := runCategory(t, metrics.CatFirewallNet, faultinject.Daytime, 5)
	// Network faults: agents detect within a cron period, humans repair.
	assertHandled(t, site, metrics.CatFirewallNet, "oncall-admin", 6*simclock.Minute)
	// Public links must be restored by the repairs.
	for _, inc := range site.Ledger.Incidents() {
		if inc.Resolved && !site.Public.LinkUp(inc.Host) {
			t.Errorf("link on %s still down after resolution", inc.Host)
		}
	}
}

func TestCategoryHardware(t *testing.T) {
	site := runCategory(t, metrics.CatHardware, faultinject.AnyTime, 6)
	// Whole-host faults surface at the admin servers' X+5 sweep.
	assertHandled(t, site, metrics.CatHardware, "oncall-admin", 15*simclock.Minute)
	for _, inc := range site.Ledger.Incidents() {
		if inc.Resolved && inc.DetectedBy != "adminserver" {
			t.Errorf("hardware incident %d detected by %s, want adminserver", inc.ID, inc.DetectedBy)
		}
	}
}

func TestCategoryCompletelyDown(t *testing.T) {
	site := runCategory(t, metrics.CatCompletelyDown, faultinject.Daytime, 5)
	// Corruption: agent detects and escalates; restart attempts fail
	// (wedged); a human repairs.
	assertHandled(t, site, metrics.CatCompletelyDown, "oncall-admin", 6*simclock.Minute)
	if site.Bus.CountByTag("agent-escalation") == 0 {
		t.Error("corruption should generate agent escalation emails")
	}
	// After resolution no service stays wedged.
	if site.Registry.OpenCount() == 0 {
		for _, sv := range site.Dir.All() {
			if sv.Wedged {
				t.Errorf("%s still wedged after all incidents closed", sv.Spec.Name)
			}
		}
	}
}

// TestAfterYearResidualShape asserts the paper's qualitative after-year
// claim on a medium window: the residual downtime is dominated by the
// categories agents cannot fix.
func TestAfterYearResidualShape(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-length simulation")
	}
	site := BuildSite(SmallSite(7), Options{Mode: ModeAgents})
	mustRun(t, site, 60*simclock.Day)
	r := site.Report()
	humanOnly := r.DowntimeHours(metrics.CatFirewallNet) +
		r.DowntimeHours(metrics.CatHardware) +
		r.DowntimeHours(metrics.CatCompletelyDown)
	agentFixable := r.Total.Hours() - humanOnly
	if len(site.Ledger.Incidents()) > 5 && humanOnly > 0 && agentFixable > humanOnly {
		t.Errorf("agent-fixable residual (%.1fh) should not exceed human-only residual (%.1fh)",
			agentFixable, humanOnly)
	}
}
