package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets the compiled test binary stand in for the real qossim:
// when QOSSIM_RUN_MAIN is set the process runs main() and exits, so the
// CLI-level tests below can exec an actual qossim process — flags, exit
// codes and stderr included — without building a second binary.
func TestMain(m *testing.M) {
	if os.Getenv("QOSSIM_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runQossim execs this test binary as qossim with the given arguments.
func runQossim(t *testing.T, args ...string) (stdout, stderr string, exitCode int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "QOSSIM_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec %v: %v", args, err)
	}
	return out.String(), errb.String(), code
}

// TestCampaignRejectsUnknownTierFault: a -tierfaults tier that no
// selected site declares must fail before any trial runs, with a
// contextual message on stderr and exit status 1.
func TestCampaignRejectsUnknownTierFault(t *testing.T) {
	t.Parallel()
	stdout, stderr, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small,webfarm",
		"-trials", "1", "-days", "1", "-tierfaults", "bogus=4")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range []string{`"bogus"`, "no selected site", "tiers:"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
	if strings.Contains(stderr, "campaign before:") {
		t.Errorf("validation should fail before any trial output:\n%s", stderr)
	}
}

// TestCampaignAcceptsDeclaredTierFault: the same shape with a tier the
// site does declare runs to completion.
func TestCampaignAcceptsDeclaredTierFault(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs a real one-trial campaign")
	}
	stdout, stderr, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small",
		"-trials", "1", "-days", "1", "-seed", "7", "-tierfaults", "db=2")
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "tierfaults=db=2") {
		t.Errorf("stdout missing the tier-faults cell label:\n%s", stdout)
	}
}

// TestCampaignRejectsBadShards: -shards outside the supported range is a
// flag error caught at matrix validation, before any trial runs.
func TestCampaignRejectsBadShards(t *testing.T) {
	t.Parallel()
	_, stderr, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small",
		"-trials", "1", "-days", "1", "-shards", "-3")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "-shards -3") {
		t.Errorf("stderr missing shard-range message:\n%s", stderr)
	}
}

// TestCampaignShardsFlagRuns: a sharded one-trial campaign completes and
// prints the same tables a serial run would (byte-identical output is
// pinned by TestShardEquivalence; this is the CLI wiring check).
func TestCampaignShardsFlagRuns(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs a real one-trial campaign")
	}
	serialOut, _, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small",
		"-trials", "1", "-days", "2", "-seed", "7", "-json")
	if code != 0 {
		t.Fatalf("serial run exit code = %d", code)
	}
	shardOut, stderr, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small",
		"-trials", "1", "-days", "2", "-seed", "7", "-json", "-shards", "8")
	if code != 0 {
		t.Fatalf("sharded run exit code = %d (stderr: %s)", code, stderr)
	}
	if serialOut != shardOut {
		t.Error("campaign JSON differs between -shards 0 and -shards 8")
	}
}
