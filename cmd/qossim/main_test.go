package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the compiled test binary stand in for the real qossim:
// when QOSSIM_RUN_MAIN is set the process runs main() and exits, so the
// CLI-level tests below can exec an actual qossim process — flags, exit
// codes and stderr included — without building a second binary.
func TestMain(m *testing.M) {
	if os.Getenv("QOSSIM_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runQossim execs this test binary as qossim with the given arguments.
func runQossim(t *testing.T, args ...string) (stdout, stderr string, exitCode int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "QOSSIM_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec %v: %v", args, err)
	}
	return out.String(), errb.String(), code
}

// TestCampaignRejectsUnknownTierFault: a -tierfaults tier that no
// selected site declares must fail before any trial runs, with a
// contextual message on stderr and exit status 1.
func TestCampaignRejectsUnknownTierFault(t *testing.T) {
	t.Parallel()
	stdout, stderr, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small,webfarm",
		"-trials", "1", "-days", "1", "-tierfaults", "bogus=4")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range []string{`"bogus"`, "no selected site", "tiers:"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
	if strings.Contains(stderr, "campaign before:") {
		t.Errorf("validation should fail before any trial output:\n%s", stderr)
	}
}

// TestCampaignAcceptsDeclaredTierFault: the same shape with a tier the
// site does declare runs to completion.
func TestCampaignAcceptsDeclaredTierFault(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs a real one-trial campaign")
	}
	stdout, stderr, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small",
		"-trials", "1", "-days", "1", "-seed", "7", "-tierfaults", "db=2")
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "tierfaults=db=2") {
		t.Errorf("stdout missing the tier-faults cell label:\n%s", stdout)
	}
}

// TestCampaignRejectsBadShards: -shards outside the supported range is a
// flag error caught at matrix validation, before any trial runs.
func TestCampaignRejectsBadShards(t *testing.T) {
	t.Parallel()
	_, stderr, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small",
		"-trials", "1", "-days", "1", "-shards", "-3")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "-shards -3") {
		t.Errorf("stderr missing shard-range message:\n%s", stderr)
	}
}

// TestReplayMissingTrace: a trace file that does not exist fails fast
// with the path in the message and exit status 1.
func TestReplayMissingTrace(t *testing.T) {
	t.Parallel()
	missing := filepath.Join(t.TempDir(), "no-such.jsonl")
	_, stderr, code := runQossim(t, "replay", "-trace", missing)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, missing) {
		t.Errorf("stderr missing the trace path:\n%s", stderr)
	}
}

// TestReplayRequiresTraceFlag: replay without -trace is a usage error.
func TestReplayRequiresTraceFlag(t *testing.T) {
	t.Parallel()
	_, stderr, code := runQossim(t, "replay")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "usage: qossim replay") {
		t.Errorf("stderr missing usage:\n%s", stderr)
	}
}

// TestReplayMalformedTrace: a file that is not a trace, and a trace with
// a corrupt line, both fail with line-numbered diagnostics.
func TestReplayMalformedTrace(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	notTrace := filepath.Join(dir, "not-a-trace.jsonl")
	if err := os.WriteFile(notTrace, []byte("hello world\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runQossim(t, "replay", "-trace", notTrace)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"line 1", "not a qossim trace"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}

	corrupt := filepath.Join(dir, "corrupt.jsonl")
	body := `{"qossim_trace":1,"matrix":{"seeds":[7]}}` + "\n{not json\n"
	if err := os.WriteFile(corrupt, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code = runQossim(t, "replay", "-trace", corrupt)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"line 2", "malformed"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

// TestReplayWrongTopologyCLI: a trace whose recorded topology fingerprint
// no longer matches the registered topology is refused before any trial
// runs.
func TestReplayWrongTopologyCLI(t *testing.T) {
	t.Parallel()
	stale := filepath.Join(t.TempDir(), "stale.jsonl")
	body := `{"qossim_trace":1,"name":"x","level":1,"matrix":{"seeds":[7],"scenarios":["year"],"sites":["small"]},"topologies":{"small":"0000000000000000"}}` + "\n" +
		`{"trial":{"index":0,"seed":7,"scenario":"year","site":"small"}}` + "\n"
	if err := os.WriteFile(stale, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runQossim(t, "replay", "-trace", stale)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "different topology") {
		t.Errorf("stderr missing the topology refusal:\n%s", stderr)
	}
}

// TestTraceFlagValidation: -tracelevel without -trace is a usage error on
// both flag sets, and -trace on a multi-campaign -ablate run is refused.
func TestTraceFlagValidation(t *testing.T) {
	t.Parallel()
	_, stderr, code := runQossim(t, "-tracelevel", "2", "latency")
	if code != 2 || !strings.Contains(stderr, "-tracelevel needs -trace") {
		t.Errorf("scenario set: exit %d, stderr:\n%s", code, stderr)
	}
	_, stderr, code = runQossim(t, "campaign", "-tracelevel", "2", "before")
	if code != 2 || !strings.Contains(stderr, "-tracelevel needs -trace") {
		t.Errorf("campaign set: exit %d, stderr:\n%s", code, stderr)
	}
	trace := filepath.Join(t.TempDir(), "t.jsonl")
	_, stderr, code = runQossim(t, "campaign", "-trace", trace, "-ablate", "all")
	if code != 2 || !strings.Contains(stderr, "one campaign per file") {
		t.Errorf("-ablate with -trace: exit %d, stderr:\n%s", code, stderr)
	}
	_, stderr, code = runQossim(t, "-trace", trace, "fig2")
	if code != 2 || !strings.Contains(stderr, "campaign-backed") {
		t.Errorf("fig2 with -trace: exit %d, stderr:\n%s", code, stderr)
	}
	_, stderr, code = runQossim(t, "campaign", "-scenario", "fig3", "-trace", trace, "-trials", "1")
	if code != 1 || !strings.Contains(stderr, "drop -trace") {
		t.Errorf("rig scenario with -trace: exit %d, stderr:\n%s", code, stderr)
	}
}

// TestTraceRecordReplayRoundTrip records a tiny traced campaign through
// the real CLI, replays it, and checks the two campaign JSON files are
// byte-identical — the CI trace smoke in miniature.
func TestTraceRecordReplayRoundTrip(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs two real one-trial campaigns")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	orig := filepath.Join(dir, "orig.json")
	replayed := filepath.Join(dir, "replay.json")
	_, stderr, code := runQossim(t,
		"campaign", "-scenario", "after", "-site", "small",
		"-trials", "1", "-days", "2", "-seed", "7",
		"-trace", trace, "-out", orig)
	if code != 0 {
		t.Fatalf("record exit code = %d (stderr: %s)", code, stderr)
	}
	_, stderr, code = runQossim(t, "replay", "-trace", trace, "-out", replayed)
	if code != 0 {
		t.Fatalf("replay exit code = %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "reproduced their recorded metrics exactly") {
		t.Errorf("replay confirmation missing:\n%s", stderr)
	}
	want, err := os.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("replayed campaign JSON differs from the original")
	}
}

// TestCampaignRejectsUnknownWorkload: a -workload cell that is neither a
// registered spec nor a loadable spec file fails before any trial runs.
func TestCampaignRejectsUnknownWorkload(t *testing.T) {
	t.Parallel()
	stdout, stderr, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small",
		"-trials", "1", "-days", "1", "-workload", "no-such-spec")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range []string{`"no-such-spec"`, "not a registered spec"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

// TestCampaignRejectsUnknownTierLoad: like -tierfaults, a -tierload tier
// no selected site declares is refused up front.
func TestCampaignRejectsUnknownTierLoad(t *testing.T) {
	t.Parallel()
	_, stderr, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small",
		"-trials", "1", "-days", "1", "-tierload", "bogus=2")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"-tierload", `"bogus"`, "no selected site"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

// TestCampaignWorkloadFlagRuns: a two-cell workload sweep — the site's
// own generator vs the built-in flash-crowd spec — runs through the real
// CLI and labels both cells.
func TestCampaignWorkloadFlagRuns(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs a real two-cell campaign")
	}
	stdout, stderr, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small",
		"-trials", "1", "-days", "1", "-seed", "7",
		"-workload", ",flashcrowd", "-tierload", ";db=2")
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range []string{"workload=flashcrowd", "tierload=db=2"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing the %s cell label:\n%s", want, stdout)
		}
	}
}

// TestCampaignShardsFlagRuns: a sharded one-trial campaign completes and
// prints the same tables a serial run would (byte-identical output is
// pinned by TestShardEquivalence; this is the CLI wiring check).
func TestCampaignShardsFlagRuns(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs a real one-trial campaign")
	}
	serialOut, _, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small",
		"-trials", "1", "-days", "2", "-seed", "7", "-json")
	if code != 0 {
		t.Fatalf("serial run exit code = %d", code)
	}
	shardOut, stderr, code := runQossim(t,
		"campaign", "-scenario", "before", "-site", "small",
		"-trials", "1", "-days", "2", "-seed", "7", "-json", "-shards", "8")
	if code != 0 {
		t.Fatalf("sharded run exit code = %d (stderr: %s)", code, stderr)
	}
	if serialOut != shardOut {
		t.Error("campaign JSON differs between -shards 0 and -shards 8")
	}
}
