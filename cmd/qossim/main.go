// Command qossim runs the reproduction's named scenarios and prints the
// tables the paper reports.
//
// Usage:
//
//	qossim [-seed N] [-days D] [-site small|paper] <scenario>
//	qossim campaign [-trials N] [-workers W] [-seed N] [-days D]
//	                [-site small|paper] [-json] [-out FILE] [<name>]
//
// Scenarios:
//
//	before   one year of manual operations (Figure 2, left bars)
//	after    one year under intelliagents (Figure 2, right bars)
//	fig2     both years, side by side
//	fig3     agent vs BMC CPU overhead at peak (Figure 3)
//	fig4     agent vs BMC memory overhead at peak (Figure 4)
//	latency  detection-latency table (§4: 5 min vs 1 h / 10 h / 25 h)
//	mttr     manual incident repair times (§4: restarts up to 2 h, 4 h avg)
//	ablate   cron-period and resubmission-policy ablations
//
// The campaign subcommand replays a scenario matrix across many seeds in
// parallel (one goroutine per trial, pool bounded by NumCPU) and reports
// mean ± 95%-CI aggregates instead of a single stochastic trajectory.
// Campaign names: before, after, fig2 (default), fig3, fig4, overhead.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	qoscluster "repro"
	"repro/experiments"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "campaign" {
		runCampaign(os.Args[2:])
		return
	}
	seed := flag.Uint64("seed", 7, "simulation seed")
	days := flag.Int("days", 365, "simulated days for year scenarios")
	site := flag.String("site", "small", "site size: small or paper")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qossim [flags] before|after|fig2|fig3|fig4|latency|mttr|ablate\n")
		fmt.Fprintf(os.Stderr, "       qossim campaign -help\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Days: *days, PaperSite: *site == "paper"}
	out, err := experiments.Run(flag.Arg(0), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossim:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// runCampaign is the multi-seed parallel mode: it fans trials over a
// worker pool and prints aggregate tables (or the canonical JSON record).
func runCampaign(args []string) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	seed := fs.Uint64("seed", 7, "base seed; trial i of each cell uses seed+i")
	trials := fs.Int("trials", 16, "seeds per matrix cell")
	workers := fs.Int("workers", 0, "worker pool size (0 = NumCPU)")
	days := fs.Int("days", 365, "simulated days per trial")
	site := fs.String("site", "small", "site size: small or paper")
	jsonOut := fs.Bool("json", false, "print the machine-readable campaign JSON instead of tables")
	outFile := fs.String("out", "", "also write the campaign JSON to this file")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qossim campaign [flags] [before|after|fig2|fig3|fig4|overhead]\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	name := "fig2"
	switch fs.NArg() {
	case 0:
	case 1:
		name = fs.Arg(0)
	default:
		fs.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Days: *days, PaperSite: *site == "paper"}
	res, err := experiments.Campaign(name, cfg, *trials, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossim campaign:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaign %s: %d trials on %d workers in %s (est. serial cost %s, est. speedup %.1fx)\n",
		res.Name, len(res.Trials), res.Workers, res.Wall.Round(10*time.Millisecond),
		res.SerialTime().Round(10*time.Millisecond), res.Speedup())
	js, err := res.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossim campaign: marshal:", err)
		os.Exit(1)
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, append(js, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "qossim campaign:", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		os.Stdout.Write(append(js, '\n'))
	} else {
		fmt.Print(qoscluster.FormatCampaign(res))
	}
	if len(res.Errs()) > 0 {
		os.Exit(1)
	}
}
