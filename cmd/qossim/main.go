// Command qossim runs the reproduction's named scenarios and prints the
// tables the paper reports.
//
// Usage:
//
//	qossim [-seed N] [-days D] [-site LIST] [-trials N] [-workers W]
//	       [-trace FILE] [-tracelevel N] <scenario>
//	qossim campaign [-scenario NAME] [-trials N] [-workers W] [-seed N]
//	                [-days D] [-site LIST] [-cron LIST] [-ablate LIST]
//	                [-tierfaults CELLS] [-workload LIST] [-tierload CELLS]
//	                [-trace FILE] [-tracelevel N] [-agentslots N]
//	                [-cpuprofile FILE] [-memprofile FILE]
//	                [-json] [-out FILE] [<name>]
//	qossim replay -trace FILE [-workers W] [-json] [-out FILE]
//	              [-counterfactual [TRIAL:]EVENT] [-alt LIST]
//
// -site takes a comma-separated list of site topologies: registered names
// (paper, small, webfarm, computefarm, or anything registered with
// qoscluster.RegisterTopology) and/or paths to topology JSON files, which
// are loaded and registered under their declared names. Campaigns sweep
// the whole list as a first-class matrix axis — one aggregation group per
// site — while the narrative scenarios run each site in turn.
//
// Scenarios:
//
//	before   one year of manual operations (Figure 2, left bars)
//	after    one year under intelliagents (Figure 2, right bars)
//	fig2     both years, side by side
//	fig3     agent vs BMC CPU overhead at peak (Figure 3)
//	fig4     agent vs BMC memory overhead at peak (Figure 4)
//	latency  detection-latency sweep (§4: 5 min vs 1 h / 10 h / 25 h)
//	mttr     manual repair-time sweep (§4: restarts up to 2 h, 4 h avg)
//	ablate   all four option-axis ablations back to back
//
// latency, mttr and the ablations always run as multi-seed campaigns
// (-trials seeds per cell) and report mean ± 95%-CI aggregates; there is
// no single-seed path for them.
//
// The campaign subcommand replays a scenario matrix across many seeds in
// parallel (one goroutine per trial, pool bounded by NumCPU) and reports
// mean ± 95%-CI aggregates instead of a single stochastic trajectory.
// Campaign names: before, after, fig2 (default), fig3, fig4, overhead,
// latency, mttr, ablate-cron, ablate-rescue, ablate-net, ablate-resident.
// -cron overrides the ablate-cron period axis (e.g. -cron 1m,5m,15m,60m);
// -ablate cron,rescue,net,resident (or "all") runs several ablation
// campaigns back to back, emitting a JSON array under -json; -tierfaults
// sweeps per-tier fault intensity as a matrix axis on the site scenarios
// (semicolon-separated cells, each a tier=mult[,tier=mult] spec — e.g.
// -tierfaults ';web=4' pairs the unscaled default against web at 4x; a
// tier no selected site declares is rejected before any trial runs).
// -workload sweeps statistical workload specs as a matrix axis on the
// site scenarios: a comma list of registered spec names (paper,
// flashcrowd, failover, or anything registered with
// workload.RegisterSpec) and/or workload-spec JSON files, loaded and
// registered under their declared names; an empty cell (e.g.
// -workload ',flashcrowd') keeps the site's own generator, which stays
// byte-identical to a run without the flag. -tierload is the workload
// twin of -tierfaults: per-tier workload-intensity cells with the same
// semicolon/comma grammar, scaling each tier's analyst-share, batch and
// feed weights.
// -shards N advances each trial's per-tier batch work on N goroutines
// with a deterministic tick-boundary merge: pure wall-clock parallelism
// *inside* a trial (vs -workers *across* trials), byte-identical output
// at any count.
// -agentslots N quantizes agent cron wake-ups onto N slots per period and
// dispatches each slot as one prepared observe/apply batch — the agent
// work -shards parallelises. Unlike -shards this changes the simulated
// trajectory (wake-up instants move to the slot grid), so campaign JSON
// records the value; at any fixed -agentslots the output stays
// byte-identical across every -shards count.
//
// -cpuprofile/-memprofile write pprof profiles covering the campaign's
// trials; every trial runs under pprof labels naming its cell (campaign,
// scenario, site, mode, seed), so `go tool pprof -tagfocus` isolates one
// cell's samples when investigating shard speedups.
//
// -trace FILE records every trial's decision trace — fault injections,
// detections, diagnosis rule firings, repairs, operator pages — to a
// JSONL file (-tracelevel 2 adds diagnosis evidence). Tracing is an
// execution knob like -shards: the campaign output is byte-identical
// with or without it. The replay subcommand re-runs a recorded trace
// (injections from the file instead of the random processes), verifies
// every trial reproduces its recorded metrics, and with -counterfactual
// re-simulates from one recorded diagnose decision under alternative
// repair actions (-alt, default two picked automatically) and prints the
// outcome diff table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"time"

	qoscluster "repro"
	"repro/experiments"
	"repro/internal/campaign"
	"repro/internal/simclock"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "campaign" {
		runCampaign(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		runReplay(os.Args[2:])
		return
	}
	seed := flag.Uint64("seed", 7, "simulation seed")
	days := flag.Int("days", 0, "simulated days (0 = scenario default: 365 for year scenarios, 90 for ablations; ablations cap at 120)")
	site := flag.String("site", "small", "comma-separated site topologies: registered names (paper, small, webfarm, computefarm) and/or topology JSON files")
	trials := flag.Int("trials", 8, "seeds per cell for the campaign-backed scenarios (latency, mttr, ablate)")
	workers := flag.Int("workers", 0, "campaign worker pool size (0 = NumCPU)")
	shards := flag.Int("shards", 0, "intra-trial shard goroutines per site (0/1 = single-goroutine engine; results are identical at any count)")
	agentSlots := flag.Int("agentslots", 0, "quantize agent crons onto N slots per period and batch each slot (0 = per-agent phases; changes the trajectory, unlike -shards)")
	tracePath := flag.String("trace", "", "record decision traces to this JSONL file (campaign-backed scenarios only)")
	traceLevel := flag.Int("tracelevel", 0, "trace detail: 1 decision events, 2 adds diagnosis evidence (0 = 1 when -trace is set)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qossim [flags] before|after|fig2|fig3|fig4|latency|mttr|ablate\n")
		fmt.Fprintf(os.Stderr, "       qossim campaign -help\n")
		fmt.Fprintf(os.Stderr, "       qossim replay -help\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *traceLevel != 0 && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "qossim: -tracelevel needs -trace to name the file the trace is written to")
		os.Exit(2)
	}
	if *tracePath != "" && !traceableScenario(flag.Arg(0)) {
		fmt.Fprintf(os.Stderr, "qossim: -trace records campaign-backed scenarios (latency, mttr, ablate-*); %q is not one — use the campaign subcommand for the year scenarios\n", flag.Arg(0))
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Days: *days, Sites: splitList(*site),
		Trials: *trials, Workers: *workers, Shards: *shards, AgentSlots: *agentSlots,
		TracePath: *tracePath, TraceLevel: *traceLevel}
	out, err := experiments.Run(flag.Arg(0), cfg)
	// Print whatever rendered before erroring: a campaign with failed
	// trials returns its tables (failed-trials detail included) alongside
	// the error.
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossim:", err)
		os.Exit(1)
	}
}

// runCampaign is the multi-seed parallel mode: it fans trials over a
// worker pool and prints aggregate tables (or the canonical JSON record).
func runCampaign(args []string) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	scenario := fs.String("scenario", "", "campaign scenario name (same as the positional argument)")
	seed := fs.Uint64("seed", 7, "base seed; trial i of each cell uses seed+i")
	trials := fs.Int("trials", 16, "seeds per matrix cell")
	workers := fs.Int("workers", 0, "worker pool size (0 = NumCPU)")
	shards := fs.Int("shards", 0, "intra-trial shard goroutines per trial (0/1 = single-goroutine engine; campaign JSON is byte-identical at any count)")
	agentSlots := fs.Int("agentslots", 0, "quantize agent crons onto N slots per period and batch each slot (0 = per-agent phases; changes the trajectory, unlike -shards)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the campaign's trials to this file (trials carry per-cell pprof labels)")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the campaign's trials to this file")
	days := fs.Int("days", 0, "simulated days per trial (0 = scenario default: 365 for year scenarios, 90 for ablations; ablations cap at 120)")
	site := fs.String("site", "small", "comma-separated site topologies to sweep: registered names and/or topology JSON files")
	cron := fs.String("cron", "", "comma-separated cron periods for the ablate-cron axis (e.g. 1m,5m,15m,60m)")
	tierFaults := fs.String("tierfaults", "", "per-tier fault-intensity axis for site scenarios: semicolon-separated cells, each a tier=mult[,tier=mult] spec or empty for the default (e.g. ';web=2;web=0.5')")
	workloadAxis := fs.String("workload", "", "workload-spec axis for site scenarios: comma-separated cells, each a registered spec name or a spec JSON file, empty for the site's own generator (e.g. ',flashcrowd')")
	tierLoad := fs.String("tierload", "", "per-tier workload-intensity axis for site scenarios: semicolon-separated cells, each a tier=mult[,tier=mult] spec or empty for the default (e.g. ';db=2,fe=0.5')")
	ablate := fs.String("ablate", "", "run ablation campaigns back to back: comma list of cron,rescue,net,resident, or all")
	tracePath := fs.String("trace", "", "record every trial's decision trace to this JSONL file (replayable with qossim replay)")
	traceLevel := fs.Int("tracelevel", 0, "trace detail: 1 decision events, 2 adds diagnosis evidence (0 = 1 when -trace is set)")
	jsonOut := fs.Bool("json", false, "print the machine-readable campaign JSON instead of tables")
	outFile := fs.String("out", "", "also write the campaign JSON to this file")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qossim campaign [flags] [%s]\n", strings.Join(experiments.CampaignNames, "|"))
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	names, err := campaignNames(*scenario, *ablate, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossim campaign:", err)
		fs.Usage()
		os.Exit(2)
	}
	if *traceLevel != 0 && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "qossim campaign: -tracelevel needs -trace to name the file the trace is written to")
		os.Exit(2)
	}
	if *tracePath != "" && len(names) > 1 {
		fmt.Fprintf(os.Stderr, "qossim campaign: -trace records one campaign per file; %v would overwrite each other\n", names)
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Days: *days, Sites: splitList(*site), Shards: *shards,
		AgentSlots: *agentSlots, TracePath: *tracePath, TraceLevel: *traceLevel}
	if *tierFaults != "" {
		// Semicolons separate axis cells so one cell can itself be a
		// comma list; a leading/lone ';' contributes the unscaled default
		// cell. Specs are validated per scenario by CampaignMatrix.
		cfg.TierFaultScales = strings.Split(*tierFaults, ";")
		for i := range cfg.TierFaultScales {
			cfg.TierFaultScales[i] = strings.TrimSpace(cfg.TierFaultScales[i])
		}
	}
	if *tierLoad != "" {
		cfg.TierLoadScales = strings.Split(*tierLoad, ";")
		for i := range cfg.TierLoadScales {
			cfg.TierLoadScales[i] = strings.TrimSpace(cfg.TierLoadScales[i])
		}
	}
	if *workloadAxis != "" {
		// Commas separate workload cells (a cell is a single name or file
		// path); an empty cell keeps the site's own generator, so
		// ',flashcrowd' pairs the default against the flash-crowd spec.
		cfg.Workloads = strings.Split(*workloadAxis, ",")
		for i := range cfg.Workloads {
			cfg.Workloads[i] = strings.TrimSpace(cfg.Workloads[i])
		}
	}
	if *cron != "" {
		periods, err := parsePeriods(*cron)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qossim campaign: -cron:", err)
			fs.Usage()
			os.Exit(2)
		}
		cfg.CronPeriods = periods
		if !slices.Contains(names, "ablate-cron") {
			fmt.Fprintf(os.Stderr, "qossim campaign: -cron only applies to the ablate-cron scenario (running %v)\n", names)
			fs.Usage()
			os.Exit(2)
		}
	}
	// Validate every name before running anything: a bad entry late in an
	// -ablate list must not discard minutes of completed sweeps.
	for _, name := range names {
		if _, err := experiments.CampaignMatrix(name, cfg, *trials); err != nil {
			fmt.Fprintln(os.Stderr, "qossim campaign:", err)
			os.Exit(1)
		}
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossim campaign:", err)
		os.Exit(1)
	}

	var results []*campaign.Result
	failed := false
	for _, name := range names {
		res, err := experiments.Campaign(name, cfg, *trials, *workers)
		if err != nil {
			stopProfiles()
			fmt.Fprintln(os.Stderr, "qossim campaign:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "campaign %s: %d trials on %d workers in %s (est. serial cost %s, est. speedup %.1fx)\n",
			res.Name, len(res.Trials), res.Workers, res.Wall.Round(10*time.Millisecond),
			res.SerialTime().Round(10*time.Millisecond), res.Speedup())
		failed = failed || len(res.Errs()) > 0
		results = append(results, res)
	}
	stopProfiles()

	js, err := marshalResults(results)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossim campaign: marshal:", err)
		os.Exit(1)
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, append(js, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "qossim campaign:", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		os.Stdout.Write(append(js, '\n'))
	} else {
		for i, res := range results {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(qoscluster.FormatCampaign(res))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runReplay re-runs a recorded trace: injections come from the file
// instead of the random processes, and every trial must reproduce its
// recorded metrics exactly. With -counterfactual it instead replays one
// trial under alternative repair actions for the targeted diagnose
// decision and prints the outcome diff table.
func runReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file recorded by a traced campaign run (required)")
	workers := fs.Int("workers", 0, "worker pool size (0 = NumCPU)")
	jsonOut := fs.Bool("json", false, "print the machine-readable campaign JSON instead of tables")
	outFile := fs.String("out", "", "also write the replayed campaign JSON to this file")
	counterfactual := fs.String("counterfactual", "", "diagnose event to override, as EVENT-ID or TRIAL:EVENT-ID")
	alt := fs.String("alt", "", "comma-separated alternative repair actions for -counterfactual (default: two picked automatically; \"no-batch-rescue\" disables DGSPL rescue instead)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qossim replay -trace FILE [-workers W] [-json] [-out FILE] [-counterfactual [TRIAL:]EVENT [-alt LIST]]\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if *tracePath == "" || fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}
	if *alt != "" && *counterfactual == "" {
		fmt.Fprintln(os.Stderr, "qossim replay: -alt needs -counterfactual to name the decision it varies")
		os.Exit(2)
	}
	tf, err := experiments.ReadTraceFile(*tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossim replay:", err)
		os.Exit(1)
	}
	if *counterfactual != "" {
		table, err := experiments.CounterfactualTable(tf, *counterfactual, splitList(*alt), *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qossim replay:", err)
			os.Exit(1)
		}
		fmt.Print(table)
		return
	}
	res, err := experiments.ReplayTrace(tf, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossim replay:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "replay %s: %d trials reproduced their recorded metrics exactly\n", res.Name, len(res.Trials))
	js, err := marshalResults([]*campaign.Result{res})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossim replay: marshal:", err)
		os.Exit(1)
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, append(js, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "qossim replay:", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		os.Stdout.Write(append(js, '\n'))
	} else {
		fmt.Print(qoscluster.FormatCampaign(res))
	}
}

// startProfiles arms the requested pprof outputs around the campaign's
// trials and returns the function that flushes them: StopCPUProfile for
// the CPU profile, and a post-GC heap snapshot for the memory profile.
// Both paths are no-ops when their flag is empty; the returned stop is
// idempotent so error paths can flush early without double-closing.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "qossim campaign: -cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qossim campaign: -memprofile:", err)
				return
			}
			runtime.GC() // materialise the post-campaign live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "qossim campaign: -memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "qossim campaign: -memprofile:", err)
			}
		}
	}
	return stop, nil
}

// traceableScenario reports whether a top-level scenario runs as a single
// campaign that -trace can record. "ablate" runs four campaigns that
// would overwrite one file, so it is excluded — name one ablation.
func traceableScenario(name string) bool {
	return name == "latency" || name == "mttr" || strings.HasPrefix(name, "ablate-")
}

// campaignNames resolves the -scenario flag, the -ablate list and the
// positional argument into the campaigns to run, rejecting conflicting
// combinations.
func campaignNames(scenario, ablate string, args []string) ([]string, error) {
	positional := ""
	switch len(args) {
	case 0:
	case 1:
		positional = args[0]
	default:
		return nil, fmt.Errorf("at most one positional scenario, got %v", args)
	}
	if scenario != "" && positional != "" && scenario != positional {
		return nil, fmt.Errorf("both -scenario %s and positional %s given", scenario, positional)
	}
	name := scenario
	if name == "" {
		name = positional
	}
	if ablate != "" {
		if name != "" {
			return nil, fmt.Errorf("-ablate cannot be combined with scenario %q", name)
		}
		if ablate == "all" {
			return experiments.AblateScenarios, nil
		}
		var names []string
		for _, part := range strings.Split(ablate, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			names = append(names, "ablate-"+strings.TrimPrefix(part, "ablate-"))
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("-ablate %q names no ablations", ablate)
		}
		return names, nil
	}
	if name == "" {
		name = "fig2"
	}
	return []string{name}, nil
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parsePeriods parses a comma-separated duration list into simulated
// times (e.g. "1m,5m,15m,1h").
func parsePeriods(s string) ([]simclock.Time, error) {
	var out []simclock.Time
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("cron period %q must be positive", part)
		}
		out = append(out, simclock.Time(d))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty period list %q", s)
	}
	return out, nil
}

// marshalResults emits one campaign as its canonical record and several
// as a JSON array of records, both deterministic for identical trials.
func marshalResults(results []*campaign.Result) ([]byte, error) {
	if len(results) == 1 {
		return results[0].JSON()
	}
	return json.MarshalIndent(results, "", "  ")
}
