// Command qossim runs the reproduction's named scenarios and prints the
// tables the paper reports.
//
// Usage:
//
//	qossim [-seed N] [-days D] [-site small|paper] <scenario>
//
// Scenarios:
//
//	before   one year of manual operations (Figure 2, left bars)
//	after    one year under intelliagents (Figure 2, right bars)
//	fig2     both years, side by side
//	fig3     agent vs BMC CPU overhead at peak (Figure 3)
//	fig4     agent vs BMC memory overhead at peak (Figure 4)
//	latency  detection-latency table (§4: 5 min vs 1 h / 10 h / 25 h)
//	mttr     manual incident repair times (§4: restarts up to 2 h, 4 h avg)
//	ablate   cron-period and resubmission-policy ablations
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/experiments"
)

func main() {
	seed := flag.Uint64("seed", 7, "simulation seed")
	days := flag.Int("days", 365, "simulated days for year scenarios")
	site := flag.String("site", "small", "site size: small or paper")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qossim [flags] before|after|fig2|fig3|fig4|latency|mttr|ablate\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Days: *days, PaperSite: *site == "paper"}
	out, err := experiments.Run(flag.Arg(0), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossim:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
