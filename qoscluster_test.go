package qoscluster

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

func TestBuildSiteStructure(t *testing.T) {
	site := BuildSite(SmallSite(1), Options{Mode: ModeManual})
	spec := SmallSite(1)
	wantHosts := spec.DatabaseHosts + spec.TransactionHosts + spec.FrontEndHosts
	if site.DC.Size() != wantHosts {
		t.Errorf("hosts = %d, want %d", site.DC.Size(), wantHosts)
	}
	// Every database host runs a database service plus LSF daemons.
	for _, h := range site.DC.ByRole(cluster.RoleDatabase) {
		services := site.Dir.OnHost(h.Name)
		if len(services) != 2 {
			t.Errorf("%s services = %d, want 2", h.Name, len(services))
		}
	}
	// All services started during build.
	for _, sv := range site.Dir.All() {
		if !sv.Running() {
			t.Errorf("%s not running after build: %v", sv.Spec.Name, sv.State())
		}
	}
	// LSF slot limits configured for every database service.
	for _, name := range []string{"ORA-001", "ORA-002"} {
		if site.LSF.SlotLimit(name) == 0 {
			t.Errorf("no slot limit for %s", name)
		}
	}
}

func TestPaperSiteCounts(t *testing.T) {
	spec := PaperSite(1)
	if spec.DatabaseHosts != 100 || spec.TransactionHosts != 55 || spec.FrontEndHosts != 60 {
		t.Errorf("paper site counts drifted: %+v", spec)
	}
}

func TestAgentModeAddsAdminTier(t *testing.T) {
	site := BuildSite(SmallSite(1), Options{Mode: ModeAgents})
	mustRun(t, site, simclock.Hour)
	if site.Admin == nil {
		t.Fatal("admin pair missing")
	}
	if len(site.Agents) == 0 {
		t.Fatal("no agents deployed")
	}
	// Lean set: services + status + performance + network per host.
	perHost := map[string]int{}
	for _, a := range site.Agents {
		perHost[a.Host().Name]++
	}
	for _, h := range site.DC.ByRole(cluster.RoleDatabase) {
		if perHost[h.Name] != 5 { // 2 service agents + status + perf + network
			t.Errorf("%s agents = %d, want 5", h.Name, perHost[h.Name])
		}
	}
}

func TestAgentsFullSet(t *testing.T) {
	site := BuildSite(SmallSite(1), Options{Mode: ModeAgents, AgentSet: AgentsFull})
	mustRun(t, site, simclock.Hour)
	perHost := map[string]int{}
	for _, a := range site.Agents {
		perHost[a.Host().Name]++
	}
	for _, h := range site.DC.ByRole(cluster.RoleFrontEnd) {
		// 1 service + status+perf+net + cpu+mem+disk+hw + end-to-end
		if perHost[h.Name] != 9 {
			t.Errorf("%s agents = %d, want 9", h.Name, perHost[h.Name])
		}
	}
	for _, h := range site.DC.ByRole(cluster.RoleDatabase) {
		// 2 service + status+perf+net + cpu+mem+disk+hw + database
		if perHost[h.Name] != 10 {
			t.Errorf("%s agents = %d, want 10", h.Name, perHost[h.Name])
		}
	}
}

func TestManualYearShape(t *testing.T) {
	site := BuildSite(SmallSite(7), Options{Mode: ModeManual})
	mustRun(t, site, 120*simclock.Day)
	r := site.Report()
	if r.Total < 50*simclock.Hour {
		t.Errorf("manual 120d downtime = %v, suspiciously low", r.Total)
	}
	if r.DowntimeHours(metrics.CatMidCrash) < r.DowntimeHours(metrics.CatLSF) {
		t.Error("mid-crash should dominate LSF downtime")
	}
	if r.MeanDetect < 30*simclock.Minute {
		t.Errorf("manual detection mean = %v, too fast", r.MeanDetect)
	}
	if r.Resubmitted != 0 {
		t.Error("manual mode must not resubmit jobs")
	}
}

func TestAgentShortRunDetectsAndRepairs(t *testing.T) {
	site := BuildSite(SmallSite(7), Options{Mode: ModeAgents})
	mustRun(t, site, 10*simclock.Day)
	r := site.Report()
	if r.AgentRuns == 0 {
		t.Fatal("agents never ran")
	}
	// Whatever faults arrived must be detected fast.
	if len(site.Ledger.Incidents()) > 0 {
		if r.MeanDetect > 15*simclock.Minute {
			t.Errorf("agent detection mean = %v, want minutes", r.MeanDetect)
		}
	}
	// Downtime rate must be a small fraction of the manual mode's.
	manual := BuildSite(SmallSite(7), Options{Mode: ModeManual})
	mustRun(t, manual, 10*simclock.Day)
	if manual.Ledger.TotalDowntime(manual.Sim.Now()) > 0 && r.Total > 0 {
		ratio := float64(manual.Ledger.TotalDowntime(manual.Sim.Now())) / float64(r.Total)
		if ratio < 2 {
			t.Errorf("agents only %.1fx better over 15d; expected much more", ratio)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Report {
		site := BuildSite(SmallSite(99), Options{Mode: ModeManual})
		mustRun(t, site, 60*simclock.Day)
		return site.Report()
	}
	a, b := run(), run()
	if a.Total != b.Total || a.JobsDone != b.JobsDone || a.MeanDetect != b.MeanDetect {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	s1 := BuildSite(SmallSite(1), Options{Mode: ModeManual})
	mustRun(t, s1, 90*simclock.Day)
	s2 := BuildSite(SmallSite(2), Options{Mode: ModeManual})
	mustRun(t, s2, 90*simclock.Day)
	if s1.Report().Total == s2.Report().Total {
		t.Error("different seeds should give different years")
	}
}

func TestNoFaultsNoDowntime(t *testing.T) {
	site := BuildSite(SmallSite(1), Options{Mode: ModeManual, Faults: []faultinject.Spec{}})
	mustRun(t, site, 30*simclock.Day)
	if got := site.Report().Total; got != 0 {
		t.Errorf("downtime with no faults = %v", got)
	}
	if site.Report().JobsDone == 0 {
		t.Error("workload should still run")
	}
}

func TestNoBatchRescueAblation(t *testing.T) {
	midOnly := []faultinject.Spec{{
		Category: metrics.CatMidCrash, MeanInterarrival: 2 * simclock.Day,
		Window: faultinject.Overnight,
	}}
	with := BuildSite(SmallSite(5), Options{Mode: ModeAgents, Faults: midOnly})
	mustRun(t, with, 8*simclock.Day)
	without := BuildSite(SmallSite(5), Options{Mode: ModeAgents, Faults: midOnly, NoBatchRescue: true})
	mustRun(t, without, 8*simclock.Day)
	rw, rwo := with.Report(), without.Report()
	if rw.Resubmitted == 0 {
		t.Error("batch rescue should resubmit failed jobs")
	}
	if rwo.Resubmitted != 0 {
		t.Error("NoBatchRescue should disable resubmission")
	}
	if rwo.JobsFailed <= rw.JobsFailed {
		t.Errorf("without rescue more jobs should stay failed: with=%d without=%d",
			rw.JobsFailed, rwo.JobsFailed)
	}
}

func TestDisablePrivateNet(t *testing.T) {
	site := BuildSite(SmallSite(1), Options{Mode: ModeAgents, DisablePrivateNet: true})
	mustRun(t, site, simclock.Day)
	if site.Private != nil {
		t.Fatal("private network should be absent")
	}
	if site.Public.Stats().Bytes == 0 {
		t.Error("agent traffic should ride the public LAN")
	}
	if site.Admin.DLSPReceived == 0 {
		t.Error("DLSPs should still arrive over the public LAN")
	}
}

func TestPrivateNetCarriesAgentTraffic(t *testing.T) {
	site := BuildSite(SmallSite(1), Options{Mode: ModeAgents})
	mustRun(t, site, simclock.Day)
	if site.Private.Stats().Bytes == 0 {
		t.Error("private network should carry the agent traffic")
	}
	// The public LAN carries none of it while the private net is healthy.
	if site.Public.Stats().Bytes != 0 {
		t.Errorf("public LAN carried %d agent bytes", site.Public.Stats().Bytes)
	}
}

func TestCronPeriodAblationDirection(t *testing.T) {
	fault := []faultinject.Spec{{
		Category: metrics.CatHuman, MeanInterarrival: 36 * simclock.Hour,
		Window: faultinject.AnyTime,
	}}
	fast := BuildSite(SmallSite(3), Options{Mode: ModeAgents, CronPeriod: 2 * simclock.Minute, Faults: fault})
	mustRun(t, fast, 6*simclock.Day)
	slow := BuildSite(SmallSite(3), Options{Mode: ModeAgents, CronPeriod: simclock.Hour, Faults: fault})
	mustRun(t, slow, 6*simclock.Day)
	rf, rs := fast.Report(), slow.Report()
	if rf.MeanDetect >= rs.MeanDetect {
		t.Errorf("shorter cron should detect faster: 1m->%v 60m->%v", rf.MeanDetect, rs.MeanDetect)
	}
	if rf.Total >= rs.Total {
		t.Errorf("shorter cron should reduce downtime: 1m->%v 60m->%v", rf.Total, rs.Total)
	}
}

func TestReportFormat(t *testing.T) {
	site := BuildSite(SmallSite(7), Options{Mode: ModeManual})
	mustRun(t, site, 30*simclock.Day)
	out := site.Report().Format()
	for _, want := range []string{"mid-crash", "TOTAL", "detection:", "batch:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultFaultSpecsCoverAllCategories(t *testing.T) {
	specs := DefaultFaultSpecs()
	seen := map[metrics.Category]bool{}
	for _, sp := range specs {
		seen[sp.Category] = true
		if sp.MeanInterarrival <= 0 {
			t.Errorf("%s has no rate", sp.Category)
		}
	}
	for _, cat := range metrics.Categories {
		if !seen[cat] {
			t.Errorf("category %s missing from default campaign", cat)
		}
	}
}
