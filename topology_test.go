package qoscluster

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// validTopo returns a minimal valid topology tests can break one field at
// a time.
func validTopo() Topology {
	return Topology{
		Name: "t", Geo: "UK",
		Tiers: []Tier{
			{Name: "db", Role: "database", Hosts: 2, IPBlock: "10.2.0",
				Hardware: []string{"E4500"},
				Services: []ServiceTemplate{
					{Kind: "oracle", Name: "ORA-%03d", Port: 1521, LSFTarget: true},
					{Kind: "lsf", Name: "LSF-{host}"},
				}},
			{Name: "fe", Role: "frontend", Hosts: 1, IPBlock: "10.4.0",
				Hardware: []string{"SP2"},
				Services: []ServiceTemplate{
					{Kind: "frontend", Name: "FE-%03d", Port: 8000, PortStep: 1, DependsOn: "db"},
				}},
		},
	}
}

func TestTopologyValidation(t *testing.T) {
	if err := validTopo().Validate(); err != nil {
		t.Fatalf("base topology invalid: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Topology)
		wantErr string
	}{
		{"no name", func(tp *Topology) { tp.Name = "" }, "no name"},
		{"no tiers", func(tp *Topology) { tp.Tiers = nil }, "no tiers"},
		{"duplicate tier names", func(tp *Topology) { tp.Tiers[1].Name = "db" }, "duplicate tier"},
		{"bad tier name charset", func(tp *Topology) { tp.Tiers[0].Name = "t%d" }, "tier name"},
		{"tier name starts with digit", func(tp *Topology) { tp.Tiers[0].Name = "1db" }, "tier name"},
		{"zero-host tier", func(tp *Topology) { tp.Tiers[0].Hosts = 0 }, "hosts"},
		{"negative-host tier", func(tp *Topology) { tp.Tiers[0].Hosts = -3 }, "hosts"},
		{"tier exhausts the IP space", func(tp *Topology) {
			tp.Tiers[0].IPBlock = "10.2.254"
			tp.Tiers[0].Hosts = 600 // needs blocks .254-.256
		}, "exhausting the IP space"},
		{"unknown role", func(tp *Topology) { tp.Tiers[0].Role = "mainframe" }, "unknown role"},
		{"reserved admin role", func(tp *Topology) { tp.Tiers[1].Role = "admin" }, "reserved"},
		{"empty hardware mix", func(tp *Topology) { tp.Tiers[0].Hardware = nil }, "hardware"},
		{"unknown hardware model", func(tp *Topology) { tp.Tiers[0].Hardware = []string{"VAX"} }, "unknown hardware model"},
		{"bad IP block", func(tp *Topology) { tp.Tiers[0].IPBlock = "10.2" }, "IP block"},
		{"reserved admin IP block", func(tp *Topology) { tp.Tiers[0].IPBlock = "10.1.0" }, "reserved"},
		{"duplicate IP block", func(tp *Topology) { tp.Tiers[1].IPBlock = "10.2.0" }, "share IP block"},
		{"unknown service kind", func(tp *Topology) { tp.Tiers[0].Services[0].Kind = "mongodb" }, "unknown kind"},
		{"dangling dependency", func(tp *Topology) { tp.Tiers[1].Services[0].DependsOn = "nosuch" }, "unknown tier"},
		{"dependency without targets", func(tp *Topology) { tp.Tiers[1].Services[0].DependsOn = "fe" }, "no lsf_target"},
		{"phase out of range", func(tp *Topology) {
			tp.Tiers[0].Services[0].Cycle = 2
			tp.Tiers[0].Services[0].Phases = []int{2}
		}, "out of range"},
		{"cycle without phases", func(tp *Topology) { tp.Tiers[0].Services[0].Cycle = 3 }, "phases"},
		{"phases without cycle", func(tp *Topology) { tp.Tiers[0].Services[0].Phases = []int{0} }, "cycle"},
		{"duplicate service names", func(tp *Topology) { tp.Tiers[0].Services[0].Name = "ORA" }, "expands on both"},
		{"bad name verb", func(tp *Topology) { tp.Tiers[0].Services[0].Name = "ORA-%s" }, "bad name pattern"},
		{"stray percent in name", func(tp *Topology) { tp.Tiers[0].Services[0].Name = "ORA-50%" }, "bad name pattern"},
		// A depended-on lsf_target template whose cycle/phases select no
		// host must be caught at validation, not as a divide-by-zero in the
		// builder: with 2 hosts, phase 3 of a 4-cycle never fires, so the
		// fe tier's dependency pool would be empty.
		{"dependency pool selects no host", func(tp *Topology) {
			tp.Tiers[0].Services[0].Cycle = 4
			tp.Tiers[0].Services[0].Phases = []int{3}
		}, "no lsf_target"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			topo := validTopo()
			c.mutate(&topo)
			err := topo.Validate()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
			if _, nerr := NewSite(topo); nerr == nil {
				t.Error("NewSite accepted the invalid topology")
			}
		})
	}
}

// TestNoBatchTargetsIsLegal pins that a topology without any LSF target
// builds and runs (the batch workload idles; interactive load still
// applies) — and that the deprecated BuildSite wrapper keeps accepting
// the equivalent database-less SiteSpec it accepted before the redesign.
func TestNoBatchTargetsIsLegal(t *testing.T) {
	topo := Topology{
		Name: "feeds-only", Geo: "UK",
		Tiers: []Tier{
			{Name: "tx", Role: "transaction", Hosts: 2, IPBlock: "10.3.0",
				Hardware: []string{"E450"},
				Services: []ServiceTemplate{
					{Kind: "feedhandler", Name: "FEED-%03d", Port: 7000, PortStep: 1},
				}},
		},
	}
	site, err := NewSite(topo, WithSeed(1), WithNoFaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := site.Run(simclock.Day); err != nil {
		t.Fatal(err)
	}
	if site.Report().JobsDone != 0 {
		t.Error("no targets means no batch jobs")
	}

	legacy := BuildSite(SiteSpec{Name: "x", Geo: "UK", Seed: 1, TransactionHosts: 2}, Options{})
	if err := legacy.Run(simclock.Day); err != nil {
		t.Fatal(err)
	}
}

// TestTopologyJSONRoundTrip pins that a topology survives the canonical
// JSON form unchanged — the contract behind "a JSON-loaded topology is
// the Go-declared one".
func TestTopologyJSONRoundTrip(t *testing.T) {
	for _, topo := range []Topology{PaperTopology(), SmallTopology(), WebFarmTopology(), ComputeFarmTopology(), validTopo()} {
		js, err := topo.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", topo.Name, err)
		}
		back, err := LoadTopology(strings.NewReader(string(js)))
		if err != nil {
			t.Fatalf("%s: load: %v", topo.Name, err)
		}
		if !reflect.DeepEqual(topo, back) {
			t.Errorf("%s: round trip changed the topology:\n%+v\n%+v", topo.Name, topo, back)
		}
	}
}

func TestLoadTopologyRejectsUnknownFields(t *testing.T) {
	js := `{"name": "x", "geo": "UK", "tiers": [], "hardwares": ["E10K"]}`
	if _, err := LoadTopology(strings.NewReader(js)); err == nil {
		t.Error("unknown JSON field should be rejected")
	}
}

func TestLoadTopologyRejectsTrailingData(t *testing.T) {
	js, err := validTopo().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTopology(strings.NewReader(string(js) + `{"name":"second"}`)); err == nil {
		t.Error("trailing JSON document should be rejected")
	}
}

func TestLoadTopologyFixture(t *testing.T) {
	topo, err := LoadTopologyFile("testdata/topology-edge.json")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Name != "edge-cache" || len(topo.Tiers) != 3 {
		t.Fatalf("fixture decoded wrong: %+v", topo)
	}
	site, err := NewSite(topo, WithSeed(3), WithMode(ModeAgents))
	if err != nil {
		t.Fatal(err)
	}
	if err := site.Run(simclock.Day); err != nil {
		t.Fatal(err)
	}
	if got := len(site.DC.ByRole(cluster.RoleFrontEnd)); got != 12 {
		t.Errorf("edge-cache front-end hosts = %d, want 12 (cache 8 + fe 4)", got)
	}
	if site.Dir.Get("CACHE-001") == nil || site.Dir.Get("ORA-003") == nil {
		t.Error("fixture services missing from the directory")
	}
	if site.Report().AgentRuns == 0 {
		t.Error("agents never ran on the fixture site")
	}
}

func TestTopologyRegistry(t *testing.T) {
	for _, name := range []string{"paper", "small", "webfarm", "computefarm"} {
		topo, ok := TopologyByName(name)
		if !ok {
			t.Errorf("built-in topology %q not registered", name)
			continue
		}
		if topo.Name != name {
			t.Errorf("registry key %q holds topology named %q", name, topo.Name)
		}
	}
	names := TopologyNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("TopologyNames not sorted: %v", names)
		}
	}
	if err := RegisterTopology(Topology{Name: "broken"}); err == nil {
		t.Error("RegisterTopology should validate")
	}
	custom := validTopo()
	custom.Name = "test-custom"
	if err := RegisterTopology(custom); err != nil {
		t.Fatal(err)
	}
	if _, ok := TopologyByName("test-custom"); !ok {
		t.Error("registered topology not retrievable")
	}
}

// TestNewSiteMatchesLegacyBuildSite pins that the declarative path
// reproduces the hardcoded pre-topology constructor exactly: same seed,
// same simulated year, field-identical report.
func TestNewSiteMatchesLegacyBuildSite(t *testing.T) {
	legacy := BuildSite(SmallSite(42), Options{Mode: ModeAgents})
	if err := legacy.Run(20 * simclock.Day); err != nil {
		t.Fatal(err)
	}
	site, err := NewSite(SmallTopology(), WithSeed(42), WithMode(ModeAgents))
	if err != nil {
		t.Fatal(err)
	}
	if err := site.Run(20 * simclock.Day); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Report(), site.Report()) {
		t.Errorf("topology-built site diverged from legacy BuildSite:\n%+v\n%+v",
			legacy.Report(), site.Report())
	}
}

// TestWorkloadOverrideVerbatim pins the Options.Workload contract: an
// override is taken exactly as given (no site-size scaling, no
// OvernightJobs floor), while the default config is scaled and floored.
func TestWorkloadOverrideVerbatim(t *testing.T) {
	override := workload.Config{
		PeakAnalysts: 7, DayJobsPerHour: 0.5, OvernightJobs: 1,
		JobWork: simclock.Hour, FeedLoad: 0.1,
	}
	site, err := NewSite(SmallTopology(), WithSeed(1), WithWorkload(override))
	if err != nil {
		t.Fatal(err)
	}
	if got := site.Gen.Config(); got != override {
		t.Errorf("workload override not verbatim: got %+v, want %+v", got, override)
	}

	// The default path scales with the LSF-target pool and keeps the
	// overnight floor.
	site, err = NewSite(SmallTopology(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	def := site.Gen.Config()
	if def.OvernightJobs < 2 {
		t.Errorf("default config lost the OvernightJobs floor: %+v", def)
	}
	want := workload.DefaultConfig().DayJobsPerHour * 6 / 100 // 6 targets on the small site
	if def.DayJobsPerHour != want {
		t.Errorf("default DayJobsPerHour = %v, want scaled %v", def.DayJobsPerHour, want)
	}
}

// TestFunctionalOptions pins that each Option lands on the Options field
// it advertises.
func TestFunctionalOptions(t *testing.T) {
	var o Options
	for _, opt := range []Option{
		WithSeed(9), WithMode(ModeAgents), WithAgentSet(AgentsFull),
		WithCronPeriod(7 * simclock.Minute), WithNoFaults(),
		WithBaselineMonitors(), WithoutPrivateNet(), WithoutBatchRescue(),
	} {
		opt(&o)
	}
	if o.Seed != 9 || o.Mode != ModeAgents || o.AgentSet != AgentsFull ||
		o.CronPeriod != 7*simclock.Minute || o.Faults == nil || len(o.Faults) != 0 ||
		!o.BaselineMonitors || !o.DisablePrivateNet || !o.NoBatchRescue {
		t.Errorf("options not applied: %+v", o)
	}
	replaced := Options{Seed: 3, Mode: ModeManual}
	WithOptions(replaced)(&o)
	if !reflect.DeepEqual(o, replaced) {
		t.Errorf("WithOptions should replace wholesale: %+v", o)
	}
}

// TestNewTopologiesRun proves the two genuinely new canned sites build
// and operate: the web farm is front-end-heavy, the compute farm is
// batch-dominated, and both sustain an agent-mode run.
func TestNewTopologiesRun(t *testing.T) {
	web, err := NewSite(WebFarmTopology(), WithSeed(7), WithMode(ModeAgents))
	if err != nil {
		t.Fatal(err)
	}
	fe := len(web.DC.ByRole(cluster.RoleFrontEnd))
	db := len(web.DC.ByRole(cluster.RoleDatabase))
	if fe <= 4*db {
		t.Errorf("webfarm should be front-end-heavy: fe=%d db=%d", fe, db)
	}
	if err := web.Run(3 * simclock.Day); err != nil {
		t.Fatal(err)
	}
	if r := web.Report(); r.AgentRuns == 0 {
		t.Error("webfarm agents never ran")
	}

	farm, err := NewSite(ComputeFarmTopology(), WithSeed(7), WithMode(ModeAgents))
	if err != nil {
		t.Fatal(err)
	}
	if targets := len(farm.dbServices); targets != 20 {
		t.Errorf("computefarm LSF targets = %d, want 20", targets)
	}
	if err := farm.Run(3 * simclock.Day); err != nil {
		t.Fatal(err)
	}
	r := farm.Report()
	if r.JobsDone == 0 {
		t.Error("computefarm completed no batch jobs")
	}
	// Batch-dominated: the farm's 20-target pool offers an order of
	// magnitude more batch than the web farm's 4-target core.
	webR := web.Report()
	if r.JobsDone+r.JobsFailed <= webR.JobsDone+webR.JobsFailed {
		t.Errorf("computefarm should run more batch than webfarm: %d vs %d",
			r.JobsDone+r.JobsFailed, webR.JobsDone+webR.JobsFailed)
	}
}
