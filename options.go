package qoscluster

import (
	"repro/internal/faultinject"
	"repro/internal/operators"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Mode selects how the site is operated.
type Mode int

// Operation modes.
const (
	// ModeManual is the paper's "before" year: commercial monitoring,
	// operator consoles, on-call administrators, manual repair.
	ModeManual Mode = iota
	// ModeAgents is the paper's "after" year: intelliagents on every
	// host, administration-server pair, DGSPL-driven batch rescue.
	ModeAgents
)

func (m Mode) String() string {
	if m == ModeAgents {
		return "agents"
	}
	return "manual"
}

// AgentSet selects which intelliagents deploy per host in ModeAgents.
type AgentSet int

// Agent deployments.
const (
	// AgentsLean deploys the agents the Figure-2 categories need: service
	// agents, status, performance, network.
	AgentsLean AgentSet = iota
	// AgentsFull adds the cpu/memory/disk resource agents and the
	// hardware agent — the paper's complete taxonomy.
	AgentsFull
)

// Options tune a scenario. The zero value is a usable default (manual
// mode, lean agents, the paper's cron period, paper-calibrated faults);
// NewSite layers functional options (WithMode, WithCronPeriod, ...) over
// it, and campaign trials map their axes onto it directly.
type Options struct {
	// Seed drives every random process in the simulation.
	Seed     uint64
	Mode     Mode
	AgentSet AgentSet
	// CronPeriod is X, the agents' wake-up period (default: the paper's 5
	// minutes).
	CronPeriod simclock.Time
	// Faults overrides the default fault campaign (nil = paper-calibrated
	// rates; empty non-nil slice = no faults).
	Faults []faultinject.Spec
	// Workload overrides the offered load. A non-nil config is taken
	// verbatim: the site-size scaling and the OvernightJobs >= 2 floor
	// that shape the default config are both skipped, so the caller's
	// numbers are exactly what the generator offers. nil = DefaultConfig
	// scaled to the site's LSF-target pool.
	Workload *workload.Config
	// WorkloadSpec overrides the topology's statistical workload spec
	// (Topology.Workload): batch submissions arrive through the spec's
	// per-class interarrival processes and surge scenarios instead of
	// the legacy hourly ticker. It wins over the topology's named spec;
	// nil resolves the topology name (empty name = legacy generator).
	WorkloadSpec *workload.Spec
	// TierLoadScale multiplies the resolved per-tier workload-domain
	// weights — analyst share, batch intensity and feed weight at once,
	// leaving the diurnal amplitude alone — by tier name: the campaign's
	// per-tier load-intensity axis (`-tierload`), the workload twin of
	// TierFaultScale. It composes with (multiplies into) topology specs
	// and TierWorkloads overrides.
	TierLoadScale map[string]float64
	// TierWorkloads overrides per-tier workload specs by tier name. An
	// entry replaces the topology's spec for that tier wholesale (it does
	// not merge); tiers without an entry keep their topology spec.
	TierWorkloads map[string]WorkloadSpec
	// TierFaults overrides per-tier fault specs by tier name, with the
	// same replace-not-merge semantics as TierWorkloads.
	TierFaults map[string]FaultsSpec
	// TierFaultScale multiplies the resolved per-tier fault selection
	// weight — every category at once — by tier name: the campaign's
	// per-tier fault-intensity axis. It composes with (multiplies into)
	// topology specs and TierFaults overrides.
	TierFaultScale map[string]float64
	// BaselineMonitors installs BMC-style monitors on every database host
	// (always installed in ModeManual on database hosts regardless).
	BaselineMonitors bool
	// DisablePrivateNet removes the private agent network (ablation).
	DisablePrivateNet bool
	// NoBatchRescue stops the admin tier resubmitting failed jobs from the
	// DGSPL (ablation of the paper's §4 mechanism).
	NoBatchRescue bool
	// OperatorTiming overrides the manual-operations constants (ablation).
	OperatorTiming *operators.Timing
	// ReferenceScheduler wires each agent's cron as its own heap ticker
	// instead of the coalesced wheel — the seed scheduling path. Simulated
	// behaviour is identical either way (the equivalence tests gate this);
	// the reference path exists so the gate has something independent to
	// compare the optimised engine against.
	ReferenceScheduler bool
	// Probes overrides the topology's probe-dispatcher spec: non-nil
	// enables (or reconfigures) the batched probe engine regardless of
	// what the topology declares. nil keeps the topology's spec.
	Probes *ProbeSpec
	// ReferenceProbes runs the probe engine with one independent repeating
	// event per service instead of coalesced batch walks — the probe
	// analogue of ReferenceScheduler, and the baseline TestMegaSite
	// equivalence compares the batched dispatcher against. Meaningless
	// unless a probe spec is in effect.
	ReferenceProbes bool
	// Shards is the intra-trial parallelism degree: per-tier batch work
	// (today the probe sub-ranges) advances on this many goroutines
	// inside each tick window and merges at tick boundaries in a fixed
	// order, so simulated behaviour — and campaign JSON — is
	// byte-identical at any shard count. 0 and 1 both mean the
	// single-goroutine engine; negative or absurd counts are rejected by
	// NewSite. Ignored under ReferenceScheduler/ReferenceProbes.
	Shards int
	// AgentSlots switches agent cron dispatch (ModeAgents) from one
	// continuous random phase per agent to phases quantized onto this many
	// slots per cron period, coalescing each slot's agents into one
	// prepared batch whose read-only observe half shards across the pool
	// (see Shards) and whose mutating apply half replays serially at the
	// tick barrier. Unlike Shards this is a model knob: quantizing moves
	// the wake-up instants, so a slotted run is a different (equally valid)
	// trajectory from an unslotted one, and campaigns record it in their
	// JSON. 0 (the default) keeps per-agent phases; byte-identity across
	// shard counts holds at any fixed value. Ignored under
	// ReferenceScheduler.
	AgentSlots int
	// TraceLevel enables the decision-trace recorder: 0 off (the default —
	// a nil recorder, zero cost), 1 records every healing-pipeline decision
	// event, 2 additionally captures diagnosis evidence lines. Tracing
	// consumes no randomness and schedules nothing, so a traced run's
	// simulated behaviour and campaign JSON are byte-identical to an
	// untraced one. Like Shards, it is an execution knob, not a model axis.
	TraceLevel int
	// Replay, when non-nil, drives the fault campaign from a recorded
	// arrival schedule instead of the Poisson processes (an empty non-nil
	// slice replays a quiet run). The campaign's forked random stream goes
	// undrawn; every other stream is untouched, so replaying a run's own
	// arrivals under its seed reproduces it exactly.
	Replay []faultinject.Arrival
	// Counterfactual, during a replay with tracing enabled, overrides one
	// recorded diagnose decision's action (see trace.Counterfactual).
	Counterfactual *trace.Counterfactual
}

// Option is a functional scenario option for NewSite.
type Option func(*Options)

// WithSeed sets the simulation seed.
func WithSeed(seed uint64) Option { return func(o *Options) { o.Seed = seed } }

// WithMode selects manual or agent operations.
func WithMode(m Mode) Option { return func(o *Options) { o.Mode = m } }

// WithAgentSet selects the per-host agent deployment in ModeAgents.
func WithAgentSet(set AgentSet) Option { return func(o *Options) { o.AgentSet = set } }

// WithCronPeriod sets X, the agents' wake-up period.
func WithCronPeriod(p simclock.Time) Option { return func(o *Options) { o.CronPeriod = p } }

// WithFaults replaces the default fault campaign. An empty non-nil slice
// disables faults entirely; WithNoFaults spells that out.
func WithFaults(specs []faultinject.Spec) Option { return func(o *Options) { o.Faults = specs } }

// WithNoFaults disables the background fault campaign — the
// walkthrough-example setting where every fault is injected by hand.
func WithNoFaults() Option { return func(o *Options) { o.Faults = []faultinject.Spec{} } }

// WithWorkload overrides the offered load verbatim (see Options.Workload:
// no site-size scaling, no OvernightJobs floor).
func WithWorkload(cfg workload.Config) Option { return func(o *Options) { o.Workload = &cfg } }

// WithWorkloadSpec installs a statistical workload spec (see
// Options.WorkloadSpec), overriding any spec the topology names. The
// spec is validated by NewSite exactly as a registered one would be.
func WithWorkloadSpec(s workload.Spec) Option {
	return func(o *Options) { o.WorkloadSpec = &s }
}

// WithTierLoadScale multiplies one tier's resolved workload-domain
// weights (see Options.TierLoadScale) — the per-tier load-intensity
// knob campaigns sweep as a matrix axis.
func WithTierLoadScale(tier string, scale float64) Option {
	return func(o *Options) {
		if o.TierLoadScale == nil {
			o.TierLoadScale = map[string]float64{}
		}
		o.TierLoadScale[tier] = scale
	}
}

// WithTierWorkload replaces one tier's workload spec (see
// Options.TierWorkloads). The spec is validated by NewSite exactly as a
// topology-declared one would be.
func WithTierWorkload(tier string, ws WorkloadSpec) Option {
	return func(o *Options) {
		if o.TierWorkloads == nil {
			o.TierWorkloads = map[string]WorkloadSpec{}
		}
		o.TierWorkloads[tier] = ws
	}
}

// WithTierFaults replaces one tier's fault spec (see Options.TierFaults).
func WithTierFaults(tier string, fs FaultsSpec) Option {
	return func(o *Options) {
		if o.TierFaults == nil {
			o.TierFaults = map[string]FaultsSpec{}
		}
		o.TierFaults[tier] = fs
	}
}

// WithTierFaultScale multiplies one tier's resolved fault weight across
// every category (see Options.TierFaultScale) — the per-tier
// fault-intensity knob campaigns sweep as a matrix axis.
func WithTierFaultScale(tier string, scale float64) Option {
	return func(o *Options) {
		if o.TierFaultScale == nil {
			o.TierFaultScale = map[string]float64{}
		}
		o.TierFaultScale[tier] = scale
	}
}

// WithBaselineMonitors installs BMC-style monitors on database hosts even
// in ModeAgents (the Figure-3/4 side-by-side rig).
func WithBaselineMonitors() Option { return func(o *Options) { o.BaselineMonitors = true } }

// WithoutPrivateNet removes the private agent network (ablation).
func WithoutPrivateNet() Option { return func(o *Options) { o.DisablePrivateNet = true } }

// WithoutBatchRescue disables DGSPL-driven job resubmission (ablation).
func WithoutBatchRescue() Option { return func(o *Options) { o.NoBatchRescue = true } }

// WithOperatorTiming overrides the manual-operations timing constants.
func WithOperatorTiming(t operators.Timing) Option { return func(o *Options) { o.OperatorTiming = &t } }

// WithReferenceScheduler selects the per-agent ticker scheduling path that
// the coalesced cron wheel is equivalence-tested against.
func WithReferenceScheduler() Option { return func(o *Options) { o.ReferenceScheduler = true } }

// WithProbes overrides the topology's probe-dispatcher spec (see
// Options.Probes); WithProbes(ProbeSpec{}) enables the engine with
// defaults on a topology that declares none.
func WithProbes(ps ProbeSpec) Option { return func(o *Options) { o.Probes = &ps } }

// WithReferenceProbes selects the per-service probe scheduling path that
// the batched dispatcher is equivalence-tested against.
func WithReferenceProbes() Option { return func(o *Options) { o.ReferenceProbes = true } }

// WithShards sets the intra-trial parallelism degree (see Options.Shards):
// n worker goroutines advance per-tier batch work inside each tick window
// with a deterministic merge at tick boundaries. Results are
// byte-identical at any shard count; the win is wall-clock on multi-core
// hardware for probe-heavy megasites.
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// WithAgentSlots quantizes agent cron phases onto n slots per period and
// dispatches each slot as one prepared observe/apply batch (see
// Options.AgentSlots). This changes the simulated trajectory; it is the
// shard-friendly agent dispatch mode, not a pure execution knob.
func WithAgentSlots(n int) Option { return func(o *Options) { o.AgentSlots = n } }

// WithTrace enables the decision-trace recorder at the given level (see
// Options.TraceLevel); Site.TraceEvents returns what it recorded.
func WithTrace(level int) Option { return func(o *Options) { o.TraceLevel = level } }

// WithOptions replaces the whole Options struct — the bridge for callers
// (like campaign trials) that assemble an Options value directly and
// still want the NewSite validation path.
func WithOptions(o Options) Option { return func(dst *Options) { *dst = o } }
