package qoscluster

import (
	"fmt"
	"maps"
	"math"
	"slices"
	"strings"

	"repro/internal/adminsrv"
	"repro/internal/agent"
	"repro/internal/agents"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/fsim"
	"repro/internal/lsf"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/notify"
	"repro/internal/ontology"
	"repro/internal/operators"
	"repro/internal/probe"
	"repro/internal/simclock"
	"repro/internal/svc"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Site is an assembled, running scenario.
type Site struct {
	Topo Topology
	Opts Options

	Sim      *simclock.Sim
	DC       *cluster.Datacentre
	Dir      *svc.Directory
	LSF      *lsf.Cluster
	Private  *netsim.Network
	Public   *netsim.Network
	Bus      *notify.Bus
	Ledger   *metrics.Ledger
	Registry *faultinject.Registry
	Campaign *faultinject.Campaign
	Team     *operators.Team
	Gen      *workload.Generator
	Admin    *adminsrv.Pair // nil in ModeManual
	Monitors []*baseline.Monitor
	Agents   []*agent.Agent
	Probes   *probe.Engine   // nil unless a probe spec is in effect
	Trace    *trace.Recorder // nil unless Options.TraceLevel > 0

	dbServices []string          // LSF execution targets, in deployment order
	tierOf     map[string]string // host name -> topology tier name
	started    bool
	deployErr  error // sticky first-Run deployment failure

	cron *simclock.Wheel // coalesced agent cron (nil under ReferenceScheduler)
	pool *simclock.Pool  // intra-trial shard workers (nil: single-goroutine)
	// agentSched batches agent crons into prepared observe/apply walks when
	// Options.AgentSlots > 0 (nil otherwise; see agent.Scheduler).
	agentSched *agent.Scheduler
	ranTo      simclock.Time // furthest simulated time a Run call has reached
	running    bool          // inside Run: guards re-entrant Run/Reset
}

// MaxShards bounds Options.Shards: more shards than this is certainly a
// misconfiguration (the per-tick work splits into at most
// tiers × slots × shards sub-ranges, and the merge barrier costs grow
// with the worker count).
const MaxShards = 64

// Shards reports the site's effective intra-trial shard count (1 when
// unsharded).
func (s *Site) Shards() int { return s.pool.Shards() }

// TraceEvents returns a copy of the decision events recorded so far (nil
// when the site runs untraced — see Options.TraceLevel).
func (s *Site) TraceEvents() []trace.Event { return s.Trace.Events() }

// NewSite assembles a site from a declarative topology and functional
// options; call Run to execute it. The topology is validated first, and
// every construction failure is returned with context — nothing panics.
func NewSite(topo Topology, opts ...Option) (*Site, error) {
	var o Options
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return newSite(topo, o)
}

// newSite is the shared constructor under NewSite and the deprecated
// BuildSite wrapper.
func newSite(topo Topology, opts Options) (*Site, error) {
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("topology %q: %w", topo.Name, err)
	}
	if err := validateTierOverrides(topo, opts); err != nil {
		return nil, fmt.Errorf("topology %q: %w", topo.Name, err)
	}
	if err := opts.Probes.validate(); err != nil {
		return nil, fmt.Errorf("topology %q: options: %w", topo.Name, err)
	}
	if opts.Shards < 0 || opts.Shards > MaxShards {
		return nil, fmt.Errorf("topology %q: options: shard count %d outside [0, %d]", topo.Name, opts.Shards, MaxShards)
	}
	if opts.TraceLevel < 0 || opts.TraceLevel > trace.MaxLevel {
		return nil, fmt.Errorf("topology %q: options: trace level %d outside [0, %d]", topo.Name, opts.TraceLevel, trace.MaxLevel)
	}
	if opts.AgentSlots < 0 {
		return nil, fmt.Errorf("topology %q: options: agent slot count %d is negative", topo.Name, opts.AgentSlots)
	}
	if opts.Counterfactual != nil && opts.TraceLevel <= 0 {
		return nil, fmt.Errorf("topology %q: options: a counterfactual needs tracing enabled (trace level >= 1) to anchor its decision event", topo.Name)
	}
	if opts.CronPeriod <= 0 {
		opts.CronPeriod = 5 * simclock.Minute
	}
	s := &Site{
		Topo: topo,
		Opts: opts,
		Sim:  simclock.New(opts.Seed),
		DC:   cluster.NewDatacentre(),
		Dir:  svc.NewDirectory(),
	}
	if opts.Shards > 1 {
		// The shard pool outlives any single trial: pooled campaign reuse
		// resets the site, not the workers, so tick sharding costs no
		// goroutine churn per trial.
		s.pool = simclock.NewPool(opts.Shards)
	}
	s.Bus = notify.NewBus(s.Sim)
	s.Ledger = metrics.NewLedger()
	s.Registry = faultinject.NewRegistry(s.Ledger)
	s.Team = operators.NewTeam(s.Sim.Rand().Fork(0x09e7))
	if opts.OperatorTiming != nil {
		s.Team.SetTiming(*opts.OperatorTiming)
	}
	if opts.TraceLevel > trace.LevelOff {
		s.Trace = trace.New(opts.TraceLevel)
		// The closure reads s.tierOf at emission time, after buildHosts
		// fills it.
		s.Trace.SetTierOf(func(host string) string { return s.tierOf[host] })
		if opts.Counterfactual != nil {
			s.Trace.SetCounterfactual(*opts.Counterfactual)
		}
		s.Registry.Trace = s.Trace
		s.Team.Trace = s.Trace
	}
	s.buildNetworks()
	if err := s.buildHosts(); err != nil {
		return nil, err
	}
	if err := s.buildServices(); err != nil {
		return nil, err
	}
	if err := s.buildLSF(); err != nil {
		return nil, err
	}
	s.buildProbes()
	s.wireRepairPipeline()
	return s, nil
}

// resolvedProbes returns the effective probe spec: the functional-option
// override wins, else the topology's, else nil (no probe engine).
func (s *Site) resolvedProbes() *ProbeSpec {
	if s.Opts.Probes != nil {
		return s.Opts.Probes
	}
	return s.Topo.Probes
}

// buildProbes assembles the batched probe dispatcher when a probe spec is
// in effect: each tier's services register in deployment order, and a
// failing probe feeds the fault registry's detection path — the
// manual-mode detection channel that stands in for per-host agents at
// scales where deploying them is infeasible. DetectFault is idempotent,
// so on agent-run sites probes and agents race to detect harmlessly.
// Sites without a spec build no engine and schedule nothing, keeping the
// existing byte-for-byte replay.
func (s *Site) buildProbes() {
	ps := s.resolvedProbes()
	if ps == nil {
		return
	}
	period := simclock.Time(ps.PeriodMinutes) * simclock.Minute
	if period <= 0 {
		period = s.Opts.CronPeriod
	}
	slots := ps.Slots
	if slots <= 0 {
		slots = DefaultProbeSlots
	}
	s.Probes = probe.New(probe.Config{
		Sim: s.Sim, Period: period, Slots: slots,
		Reference: s.Opts.ReferenceProbes,
		Pool:      s.pool,
		OnFail: func(sv *svc.Service, _ svc.ProbeResult, now simclock.Time) {
			if f := s.Registry.Find(sv.Host.Name, agents.ServiceAspect(sv.Spec.Name)); f != nil {
				s.Registry.DetectFault(f, now, "probe")
			}
		},
	})
	for _, tier := range s.Topo.Tiers {
		var members []*svc.Service
		for i := 0; i < tier.Hosts; i++ {
			members = append(members, s.Dir.OnHost(tier.hostName(i))...)
		}
		s.Probes.AddTier(tier.Name, members)
	}
}

func (s *Site) buildNetworks() {
	s.Public = netsim.New(s.Sim, "public", 2*simclock.Time(1e6), 0.2) // 2ms LAN
	if !s.Opts.DisablePrivateNet {
		s.Private = netsim.New(s.Sim, "private", 1*simclock.Time(1e6), 0.1)
	}
}

func (s *Site) attach(h *cluster.Host) {
	s.Public.Attach(h.Name, nil)
	if s.Private != nil {
		s.Private.Attach(h.Name, nil)
	}
}

// validateTierOverrides vets the per-tier option overrides against the
// topology: every named tier must exist, override specs must pass the
// same validation as topology-declared ones, and intensity scales must
// be finite and non-negative. Tier names are checked in sorted order so
// a multi-error option set always reports the same first problem.
func validateTierOverrides(topo Topology, opts Options) error {
	tiers := map[string]bool{}
	for _, t := range topo.Tiers {
		tiers[t.Name] = true
	}
	check := func(kind string, names []string) error {
		for _, name := range names {
			if !tiers[name] {
				return fmt.Errorf("%s override names unknown tier %q", kind, name)
			}
		}
		return nil
	}
	wl := slices.Sorted(maps.Keys(opts.TierWorkloads))
	if err := check("tier-workload", wl); err != nil {
		return err
	}
	for _, name := range wl {
		ws := opts.TierWorkloads[name]
		if err := ws.validate(name); err != nil {
			return err
		}
	}
	fl := slices.Sorted(maps.Keys(opts.TierFaults))
	if err := check("tier-faults", fl); err != nil {
		return err
	}
	for _, name := range fl {
		fs := opts.TierFaults[name]
		if err := fs.validate(name); err != nil {
			return err
		}
	}
	sl := slices.Sorted(maps.Keys(opts.TierFaultScale))
	if err := check("tier-fault-scale", sl); err != nil {
		return err
	}
	for _, name := range sl {
		if scale := opts.TierFaultScale[name]; math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
			return fmt.Errorf("tier-fault-scale for %q is %v (want a finite multiplier >= 0)", name, scale)
		}
	}
	ll := slices.Sorted(maps.Keys(opts.TierLoadScale))
	if err := check("tier-load-scale", ll); err != nil {
		return err
	}
	for _, name := range ll {
		if scale := opts.TierLoadScale[name]; math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
			return fmt.Errorf("tier-load-scale for %q is %v (want a finite multiplier >= 0)", name, scale)
		}
	}
	return nil
}

// resolvedWorkload returns the effective workload spec for a tier: the
// functional-option override wins, else the topology's, else nil.
func (s *Site) resolvedWorkload(tier Tier) *WorkloadSpec {
	if ws, ok := s.Opts.TierWorkloads[tier.Name]; ok {
		return &ws
	}
	return tier.Workload
}

// resolvedFaults returns the effective fault spec for a tier, with the
// same override-wins precedence.
func (s *Site) resolvedFaults(tier Tier) *FaultsSpec {
	if fs, ok := s.Opts.TierFaults[tier.Name]; ok {
		return &fs
	}
	return tier.Faults
}

// Tiered reports whether any per-tier workload or fault domain is in
// play — from the topology or from option overrides. Untiered sites run
// the pre-domain single-global-domain paths, byte-identically.
func (s *Site) Tiered() bool {
	if len(s.Opts.TierFaultScale) > 0 || len(s.Opts.TierLoadScale) > 0 {
		return true
	}
	for _, tier := range s.Topo.Tiers {
		if s.resolvedWorkload(tier) != nil || s.resolvedFaults(tier) != nil {
			return true
		}
	}
	return false
}

// TierNames lists the topology's tiers in declaration order.
func (s *Site) TierNames() []string {
	names := make([]string, len(s.Topo.Tiers))
	for i, tier := range s.Topo.Tiers {
		names[i] = tier.Name
	}
	return names
}

// TierOf maps a host name to its topology tier ("" for the mode-added
// administration hosts).
func (s *Site) TierOf(host string) string { return s.tierOf[host] }

// buildHosts realises every tier's hosts in declaration order.
func (s *Site) buildHosts() error {
	s.tierOf = make(map[string]string)
	for _, tier := range s.Topo.Tiers {
		role, err := roleFor(tier.Role)
		if err != nil {
			return fmt.Errorf("tier %q: %w", tier.Name, err)
		}
		for i := 0; i < tier.Hosts; i++ {
			h := cluster.NewHost(s.Sim, tier.hostName(i), tier.hostIP(i),
				tier.hardwareFor(i), role, s.Topo.Name, s.Topo.Geo)
			s.DC.Add(h)
			s.attach(h)
			s.tierOf[h.Name] = tier.Name
		}
	}
	return nil
}

// buildServices stamps every tier's service templates across its hosts,
// resolves cross-tier dependencies against the target tiers' LSF pools,
// then starts everything in dependency order.
func (s *Site) buildServices() error {
	// First pass: each tier's LSF-target pool, in deployment order, so
	// DependsOn can round-robin over it regardless of tier order.
	pools := map[string][]string{}
	for _, tier := range s.Topo.Tiers {
		for i := 0; i < tier.Hosts; i++ {
			for _, st := range tier.Services {
				if st.LSFTarget && st.appliesTo(i) {
					pools[tier.Name] = append(pools[tier.Name], st.instanceName(i+1, tier.hostName(i)))
				}
			}
		}
	}
	for _, tier := range s.Topo.Tiers {
		for i := 0; i < tier.Hosts; i++ {
			h := s.DC.Host(tier.hostName(i))
			for _, st := range tier.Services {
				if !st.appliesTo(i) {
					continue
				}
				name := st.instanceName(i+1, h.Name)
				spec, err := svc.SpecFor(svc.Kind(st.Kind), name, st.Port+i*st.PortStep)
				if err != nil {
					return fmt.Errorf("tier %q host %s: %w", tier.Name, h.Name, err)
				}
				if st.DependsOn != "" {
					pool := pools[st.DependsOn]
					spec.DependsOn = append(spec.DependsOn, pool[i%len(pool)])
				}
				sv, err := svc.New(s.Sim, spec, h)
				if err != nil {
					return fmt.Errorf("tier %q host %s: service %s: %w", tier.Name, h.Name, name, err)
				}
				s.Dir.Add(sv)
				if st.LSFTarget {
					s.dbServices = append(s.dbServices, name)
				}
			}
		}
	}
	// Everything starts; startup completes within the first minutes.
	return s.startServices()
}

// startServices launches every service in dependency order and settles the
// first ten minutes of simulated time — the dynamic tail of assembly,
// shared by the fresh build and Reset.
func (s *Site) startServices() error {
	order, err := s.Dir.StartOrder()
	if err != nil {
		return fmt.Errorf("service start order: %w", err)
	}
	for _, sv := range order {
		_ = sv.Start(nil)
	}
	s.Sim.RunUntil(10 * simclock.Minute)
	return nil
}

func (s *Site) buildLSF() error {
	s.LSF = lsf.NewCluster(s.Sim, s.Dir)
	for _, name := range s.dbServices {
		sv := s.Dir.Get(name)
		// The site configured "a finite number of scheduled jobs per
		// database server": scale slots with machine size.
		s.LSF.SetSlotLimit(name, sv.Host.Model.CPUs/2+2)
	}
	s.Gen = workload.New(s.Sim, s.workloadConfig(), s.DC, s.Dir, s.LSF, s.dbServices)
	if tiers := s.workloadDomains(); tiers != nil {
		s.Gen.SetDomains(s.tierOf, tiers)
	}
	sp, err := s.resolvedSpec()
	if err != nil {
		return fmt.Errorf("topology %q: %w", s.Topo.Name, err)
	}
	if sp != nil {
		s.Gen.SetSpec(sp)
	}
	return nil
}

// resolvedSpec resolves the statistical workload spec in effect: the
// WorkloadSpec option wins (validated here, since it arrives from a
// caller rather than the registry, whose entries validate on the way
// in), else the topology's named spec resolves through the registry,
// else nil — the legacy generator.
func (s *Site) resolvedSpec() (*workload.Spec, error) {
	if sp := s.Opts.WorkloadSpec; sp != nil {
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("workload-spec option: %w", err)
		}
		return sp, nil
	}
	if name := s.Topo.Workload; name != "" {
		sp, ok := workload.SpecByName(name)
		if !ok {
			return nil, fmt.Errorf("workload spec %q is not registered (have: %s) — register it or load its file with -workload",
				name, strings.Join(workload.SpecNames(), ", "))
		}
		return &sp, nil
	}
	return nil, nil
}

// workloadDomains compiles the per-tier workload specs into generator
// coefficients, or nil when no tier declares one — the generator then
// keeps its single global domain, byte-identical to the pre-domain
// behaviour.
func (s *Site) workloadDomains() map[string]workload.TierLoad {
	// A -tierload scale forces domains on even when no tier declares a
	// spec: the scale multiplies the (then all-ones) resolved weights.
	any := len(s.Opts.TierLoadScale) > 0
	for _, tier := range s.Topo.Tiers {
		if any || s.resolvedWorkload(tier) != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	tiers := make(map[string]workload.TierLoad, len(s.Topo.Tiers))
	for _, tier := range s.Topo.Tiers {
		tl := workload.DefaultTierLoad()
		if ws := s.resolvedWorkload(tier); ws != nil {
			if ws.AnalystShare != nil {
				tl.Share = *ws.AnalystShare
			}
			if ws.BatchIntensity != nil {
				tl.Batch = *ws.BatchIntensity
			}
			if ws.FeedWeight != nil {
				tl.Feed = *ws.FeedWeight
			}
			if ws.DiurnalAmplitude != nil {
				tl.Amp = *ws.DiurnalAmplitude
			}
		}
		// The -tierload intensity axis multiplies the load weights but
		// leaves the diurnal amplitude alone: it scales how much load the
		// tier draws, not when the load arrives.
		if scale, ok := s.Opts.TierLoadScale[tier.Name]; ok {
			tl.Share *= scale
			tl.Batch *= scale
			tl.Feed *= scale
		}
		tiers[tier.Name] = tl
	}
	return tiers
}

// workloadConfig resolves the offered load: an Options.Workload override
// is taken verbatim — no site-size scaling, no OvernightJobs floor —
// while the default config scales with the LSF-target pool (the paper's
// site had one database target per database host, so the pool is the
// site-size proxy) and keeps at least two overnight jobs so the 22:00
// drop exists at any scale.
func (s *Site) workloadConfig() workload.Config {
	if s.Opts.Workload != nil {
		return *s.Opts.Workload
	}
	cfg := workload.DefaultConfig()
	scale := float64(len(s.dbServices)) / 100
	cfg.PeakAnalysts = int(float64(cfg.PeakAnalysts) * scale)
	cfg.DayJobsPerHour *= scale
	cfg.OvernightJobs = int(float64(cfg.OvernightJobs) * scale)
	if cfg.OvernightJobs < 2 {
		cfg.OvernightJobs = 2
	}
	return cfg
}

// Run starts the scenario machinery (on first call) and advances the
// simulation until the given absolute time. A deployment failure on the
// first call is returned before any simulated time passes — and sticks:
// every later Run returns it too, so a caller that dropped the first
// error cannot quietly advance a half-deployed site.
//
// Run may be called repeatedly with strictly increasing times to advance a
// scenario in steps. Re-invoking it with a time already reached is an
// error: the site's event state is spent up to that point, and silently
// "re-running" would report the same ledger as if new simulation had
// happened. Reset rewinds the site for a genuine re-run.
func (s *Site) Run(until simclock.Time) error {
	if s.running {
		return fmt.Errorf("site %s: Run(%v) re-entered from inside an event callback", s.Topo.Name, until)
	}
	if s.started && until <= s.ranTo {
		return fmt.Errorf("site %s: already ran to %v; Run(%v) would re-run spent event state — advance further or Reset(seed) first",
			s.Topo.Name, s.ranTo, until)
	}
	if !s.started {
		s.started = true
		s.Gen.Start()
		switch s.Opts.Mode {
		case ModeManual:
			s.deployManual()
		case ModeAgents:
			if err := s.deployAgents(); err != nil {
				s.deployErr = fmt.Errorf("deploy agents: %w", err)
			}
		}
		if s.deployErr == nil {
			if s.agentSched != nil {
				s.agentSched.Start()
			}
			if s.Probes != nil {
				s.Probes.Start()
			}
			s.Campaign = faultinject.NewCampaign(s.Sim, s.inject)
			s.Campaign.Trace = s.Trace
			if s.Opts.Replay != nil {
				s.Campaign.StartScript(s.faultSpecs(), s.Opts.Replay)
			} else {
				s.Campaign.Start(s.faultSpecs())
			}
		}
	}
	if s.deployErr != nil {
		return s.deployErr
	}
	s.running = true
	s.Sim.RunUntil(until)
	s.running = false
	if until > s.ranTo {
		s.ranTo = until
	}
	return nil
}

// Reset rewinds the site to the state NewSite left it in, reseeded: the
// simulator, hosts (including their filesystems), services, networks,
// ledger, fault registry and workload generator all return to their
// post-assembly state; mode-added machinery (administration pair, agents,
// monitors, fault campaign) is dropped and will redeploy on the next Run.
// The next Run replays exactly what a freshly built site with the same
// topology, options and seed would produce — the reuse equivalence tests
// gate this byte-for-byte — while reusing the allocated skeleton (host
// names, filesystem maps, service objects, event storage).
//
// Reset is safe whenever the topology and non-seed options are unchanged:
// everything derived from them is rebuilt or replayed. Changing the
// topology or options requires a rebuild with NewSite — Reset deliberately
// has no way to take new ones.
func (s *Site) Reset(seed uint64) error {
	if s.running {
		return fmt.Errorf("site %s: Reset(%d) from inside an event callback", s.Topo.Name, seed)
	}
	s.Opts.Seed = seed
	s.Sim.Reset(seed)

	// Drop the mode-added administration hosts, then rewind the skeleton.
	s.DC.Remove("admin1")
	s.DC.Remove("admin2")
	for _, h := range s.DC.Hosts() {
		h.Reset()
	}
	for _, sv := range s.Dir.All() {
		sv.Reset()
	}
	s.Bus.Reset()
	s.Ledger.Reset()
	s.Registry.Reset() // keeps the OnDetected repair-pipeline hook
	s.Public.Reset()
	if s.Private != nil {
		s.Private.Reset()
	}
	s.LSF.Reset()
	s.Admin = nil
	s.Monitors = nil
	s.Agents = nil
	s.Campaign = nil
	s.cron = nil
	s.agentSched = nil
	if s.Probes != nil {
		s.Probes.Reset()
	}
	s.started = false
	s.deployErr = nil
	s.ranTo = 0
	s.Trace.Reset()

	// Replay the dynamic half of assembly in the exact order newSite runs
	// it, so the reseeded random stream is consumed identically: the
	// operator team's fork, then service startup and the settling window,
	// then the workload generator's fork.
	s.Team.Reseed(s.Sim.Rand().Fork(0x09e7))
	for _, tier := range s.Topo.Tiers {
		for i := 0; i < tier.Hosts; i++ {
			s.attach(s.DC.Host(tier.hostName(i)))
		}
	}
	if err := s.startServices(); err != nil {
		return fmt.Errorf("site %s: reset: %w", s.Topo.Name, err)
	}
	s.Gen.Reset(s.Sim.Rand())
	return nil
}

// deployManual installs the before-year operations: BMC-style monitors on
// database hosts feeding operator consoles.
func (s *Site) deployManual() {
	for _, h := range s.DC.ByRole(cluster.RoleDatabase) {
		s.Monitors = append(s.Monitors, baseline.Install(
			s.Sim, h, baseline.DefaultFootprint(), s.Bus, "noc-console",
			5*simclock.Minute, s.Dir))
	}
}

// deployAgents installs the after-year operations: intelliagents on every
// host, administration pair, shared pool, DGSPL loop and batch rescue.
func (s *Site) deployAgents() error {
	// Administration hosts and shared NFS pool.
	admin1 := cluster.NewHost(s.Sim, "admin1", adminIPBlock+".1", cluster.ModelE450, cluster.RoleAdmin, s.Topo.Name, s.Topo.Geo)
	admin2 := cluster.NewHost(s.Sim, "admin2", adminIPBlock+".2", cluster.ModelE450, cluster.RoleAdmin, s.Topo.Name, s.Topo.Geo)
	s.DC.Add(admin1)
	s.DC.Add(admin2)
	s.attach(admin1)
	s.attach(admin2)
	issl := s.buildISSL()
	adminLSF := s.LSF
	if s.Opts.NoBatchRescue {
		adminLSF = nil
	}
	pair, err := adminsrv.New(adminsrv.Config{
		Sim: s.Sim, Primary: admin1, Standby: admin2, Pool: fsim.NewVolume(),
		Networks: s.networks(), Dir: s.Dir, LSF: adminLSF,
		Registry: s.Registry, Notify: s.Bus, ISSL: issl,
		OncallEmail: "oncall@" + s.Topo.Name, AgentPeriod: s.Opts.CronPeriod,
	})
	if err != nil {
		return fmt.Errorf("administration pair: %w", err)
	}
	s.Admin = pair

	if s.Opts.BaselineMonitors {
		s.deployManual()
	}

	bridge := &agents.RegistryBridge{Reg: s.Registry}
	rng := s.Sim.Rand().Fork(0xa9e0)
	for _, h := range s.DC.Hosts() {
		if h.Role == cluster.RoleAdmin {
			continue
		}
		if err := s.deployHostAgents(h, bridge, pair, rng); err != nil {
			return fmt.Errorf("host %s: %w", h.Name, err)
		}
	}
	return nil
}

// scheduleAgent wires one agent's cron: onto the site's shared coalesced
// wheel by default, or via a per-agent heap ticker under the
// ReferenceScheduler option — the seed path the equivalence tests compare
// the wheel against. Both paths consume the phase draw identically. Under
// AgentSlots the draw instead feeds the batching scheduler, which
// quantizes it onto the slot grid and registers prepared observe/apply
// sub-ranges once deployment completes (Site.Run calls Start).
func (s *Site) scheduleAgent(a *agent.Agent, phase, period simclock.Time) {
	if s.Opts.ReferenceScheduler {
		a.Schedule(s.Sim, phase, period)
		return
	}
	if s.cron == nil {
		s.cron = simclock.NewWheel(s.Sim)
		// Plain per-agent entries stay serial; attaching the pool makes the
		// wheel shard-aware for the prepared entries the batching scheduler
		// (and any future subsystem) registers here.
		s.cron.SetPool(s.pool)
	}
	if s.Opts.AgentSlots > 0 {
		if s.agentSched == nil {
			s.agentSched = agent.NewScheduler(s.Sim, s.cron, s.Opts.AgentSlots)
		}
		s.agentSched.Add(a, phase, period)
		return
	}
	a.ScheduleCoalesced(s.Sim, s.cron, phase, period)
}

func (s *Site) networks() []*netsim.Network {
	if s.Private != nil {
		return []*netsim.Network{s.Private, s.Public}
	}
	return []*netsim.Network{s.Public}
}

// deployHostAgents installs the selected agent set on one host, phased
// randomly within the cron period so the site's agents don't all wake at
// the same instant.
func (s *Site) deployHostAgents(h *cluster.Host, bridge *agents.RegistryBridge,
	pair *adminsrv.Pair, rng *simclock.Rand) error {
	router := netsim.NewRouter(s.networks()...)
	baseCfg := func() agent.Config {
		return agent.Config{
			Host:       h,
			Services:   s.Dir,
			Notify:     s.Bus,
			Trace:      s.Trace,
			AdminEmail: "oncall@" + s.Topo.Name,
			Detected:   bridge.Detected(h.Name),
			Repaired:   bridge.Repaired(h.Name),
			Report: func(kind, payload string) {
				_, _ = router.Send(netsim.Message{From: h.Name, To: adminsrv.VIP, Kind: kind, Payload: payload})
			},
		}
	}
	add := func(a *agent.Agent, err error) error {
		if err != nil {
			return err
		}
		s.Agents = append(s.Agents, a)
		s.scheduleAgent(a, rng.UniformDuration(0, s.Opts.CronPeriod), s.Opts.CronPeriod)
		pair.Watch(h, a.Name())
		return nil
	}
	for _, sv := range s.Dir.OnHost(h.Name) {
		if err := add(agents.NewServiceAgent(baseCfg(), sv)); err != nil {
			return fmt.Errorf("service agent for %s: %w", sv.Spec.Name, err)
		}
	}
	if err := add(agents.NewStatusAgent(baseCfg())); err != nil {
		return fmt.Errorf("status agent: %w", err)
	}
	if err := add(agents.NewPerformanceAgent(baseCfg(), agents.PerfConfig{})); err != nil {
		return fmt.Errorf("performance agent: %w", err)
	}
	if err := add(agents.NewNetworkAgent(baseCfg(), nil, s.networks()...)); err != nil {
		return fmt.Errorf("network agent: %w", err)
	}
	if s.Opts.AgentSet == AgentsFull {
		if err := add(agents.NewCPUAgent(baseCfg(), nil)); err != nil {
			return fmt.Errorf("cpu agent: %w", err)
		}
		if err := add(agents.NewMemoryAgent(baseCfg(), nil)); err != nil {
			return fmt.Errorf("memory agent: %w", err)
		}
		if err := add(agents.NewDiskAgent(baseCfg(), nil)); err != nil {
			return fmt.Errorf("disk agent: %w", err)
		}
		if err := add(agents.NewHardwareAgent(baseCfg())); err != nil {
			return fmt.Errorf("hardware agent: %w", err)
		}
		for _, sv := range s.Dir.OnHost(h.Name) {
			switch sv.Spec.Kind {
			case svc.KindOracle, svc.KindSybase:
				if err := add(agents.NewDatabaseAgent(baseCfg(), sv, nil)); err != nil {
					return fmt.Errorf("database agent for %s: %w", sv.Spec.Name, err)
				}
			case svc.KindFront:
				// The paper runs the end-to-end dummy transaction every
				// 15–30 minutes; schedule accordingly rather than at the
				// cron period.
				a, err := agents.NewEndToEndAgent(baseCfg(), sv, 2*simclock.Minute)
				if err != nil {
					return fmt.Errorf("end-to-end agent for %s: %w", sv.Spec.Name, err)
				}
				s.Agents = append(s.Agents, a)
				s.scheduleAgent(a, rng.UniformDuration(0, 15*simclock.Minute), 20*simclock.Minute)
				pair.Watch(h, a.Name())
			}
		}
	}
	return nil
}

// buildISSL compiles the manually-maintained index from the topology.
// Sites larger than the ISSL capacity keep the first 200 entries, exactly
// the maintenance headache the paper concedes ("manually updated").
func (s *Site) buildISSL() *ontology.ISSL {
	issl := &ontology.ISSL{}
	for _, h := range s.DC.Hosts() {
		var names []string
		for _, sv := range s.Dir.OnHost(h.Name) {
			names = append(names, sv.Spec.Name)
		}
		if err := issl.Add(ontology.ISSLEntry{Server: h.Name, IP: h.IP, Services: names}); err != nil {
			break
		}
	}
	return issl
}

// wireRepairPipeline connects first detections to the human repair path
// for faults agents cannot fix (all faults, in manual mode). A repair that
// cannot complete yet — typically a service fix blocked behind a dead host
// — is retried until it takes: the on-call team does not go home with a
// ticket open.
func (s *Site) wireRepairPipeline() {
	var attempt func(f *faultinject.Fault, delay simclock.Time)
	attempt = func(f *faultinject.Fault, delay simclock.Time) {
		s.Sim.After(delay, "manual-repair:"+f.Aspect, func(now2 simclock.Time) {
			if !s.Registry.ResolveFault(f, now2, "oncall-admin") && !f.Incident.Resolved {
				attempt(f, s.Sim.Rand().Jitter(2*simclock.Hour, 0.5))
			}
		})
	}
	s.Registry.OnDetected = func(f *faultinject.Fault, now simclock.Time) {
		if s.Opts.Mode == ModeAgents && !f.HumanOnly {
			return // the agents own this repair
		}
		attempt(f, s.Team.DispatchDelay(now, f.Category, f.Host, f.Aspect))
	}
}
