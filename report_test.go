package qoscluster

import (
	"strings"
	"testing"

	"repro/internal/campaign"
)

func TestFormatCampaign(t *testing.T) {
	fn := func(tr campaign.Trial) (map[string]float64, error) {
		return map[string]float64{"downtime_h/total": float64(tr.Seed) * 2}, nil
	}
	m := campaign.Matrix{
		Seeds:     campaign.Seeds(1, 3),
		Scenarios: []string{"year"},
		Sites:     []string{"small"},
		Modes:     []string{"manual", "agents"},
		Days:      30,
	}
	res, err := campaign.Run("fig2", m, 2, fn)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCampaign(res)
	for _, want := range []string{
		"campaign fig2: 6 trials, 2 groups",
		"scenario=year site=small mode=manual days=30 (3 seeds)",
		"mode=agents",
		"±95% CI",
		"downtime_h/total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatCampaign missing %q:\n%s", want, out)
		}
	}
	// Seeds 1..3 → values 2,4,6: mean 4 with the min/max envelope shown.
	if !strings.Contains(out, "4.000") || !strings.Contains(out, "2.000") || !strings.Contains(out, "6.000") {
		t.Errorf("aggregate row wrong:\n%s", out)
	}
}

func TestFormatCampaignFailedTrials(t *testing.T) {
	fn := func(tr campaign.Trial) (map[string]float64, error) {
		if tr.Seed == 2 {
			panic("kaboom")
		}
		return map[string]float64{"v": 1}, nil
	}
	res, err := campaign.Run("errs", campaign.Matrix{Seeds: campaign.Seeds(1, 3)}, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCampaign(res)
	if !strings.Contains(out, "1 FAILED") || !strings.Contains(out, "kaboom") {
		t.Errorf("failed trial not surfaced:\n%s", out)
	}
}
