package qoscluster

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/simclock"
)

func TestFormatCampaign(t *testing.T) {
	fn := func(tr campaign.Trial) (map[string]float64, error) {
		return map[string]float64{"downtime_h/total": float64(tr.Seed) * 2}, nil
	}
	m := campaign.Matrix{
		Seeds:     campaign.Seeds(1, 3),
		Scenarios: []string{"year"},
		Sites:     []string{"small"},
		Modes:     []string{"manual", "agents"},
		Days:      30,
	}
	res, err := campaign.Run("fig2", m, 2, fn)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCampaign(res)
	for _, want := range []string{
		"campaign fig2: 6 trials, 2 groups",
		"scenario=year site=small mode=manual days=30 (3 seeds)",
		"mode=agents",
		"±95% CI",
		"downtime_h/total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatCampaign missing %q:\n%s", want, out)
		}
	}
	// Seeds 1..3 → values 2,4,6: mean 4 with the min/max envelope shown.
	if !strings.Contains(out, "4.000") || !strings.Contains(out, "2.000") || !strings.Contains(out, "6.000") {
		t.Errorf("aggregate row wrong:\n%s", out)
	}
}

// TestFormatCampaignGolden pins the campaign tables byte for byte on
// hand-computed fixtures, CI bands included:
//
//	{1,2,3}: mean 2, stddev 1,  CI95 = 4.303·1/√3 = 2.484…
//	{2,4,6}: mean 4, stddev 2,  CI95 = 4.303·2/√3 = 4.969…
//	{1,2,3,4}: mean 2.5, stddev √(5/3), CI95 = 3.182·√(5/3)/2 = 2.054…
//	{9}: singleton — zero spread, zero CI
func TestFormatCampaignGolden(t *testing.T) {
	cases := []struct {
		name string
		m    campaign.Matrix
		fn   campaign.RunFunc
		want string
	}{
		{
			name: "option-axis cron sweep",
			m: campaign.Matrix{
				Seeds:       campaign.Seeds(1, 3),
				Scenarios:   []string{"ablate-cron"},
				Modes:       []string{"agents"},
				CronPeriods: []simclock.Time{simclock.Minute, 5 * simclock.Minute},
				Days:        30,
			},
			fn: func(tr campaign.Trial) (map[string]float64, error) {
				v := float64(tr.Seed)
				if tr.CronPeriod == 5*simclock.Minute {
					v *= 2
				}
				return map[string]float64{"detect_s": v}, nil
			},
			want: `=== campaign golden: 6 trials, 2 groups ===

--- scenario=ablate-cron mode=agents days=30 cron=1m0s (3 seeds) ---
metric                               mean    ±95% CI          min          max
detect_s                            2.000      2.484        1.000        3.000

--- scenario=ablate-cron mode=agents days=30 cron=5m0s (3 seeds) ---
metric                               mean    ±95% CI          min          max
detect_s                            4.000      4.969        2.000        6.000
`,
		},
		{
			name: "four seeds two metrics",
			m: campaign.Matrix{
				Seeds:         campaign.Seeds(1, 4),
				Scenarios:     []string{"ablate-rescue"},
				NoBatchRescue: []bool{true},
				Days:          90,
			},
			fn: func(tr campaign.Trial) (map[string]float64, error) {
				return map[string]float64{
					"jobs_failed": float64(tr.Seed),
					"jobs_done":   100,
				}, nil
			},
			want: `=== campaign golden: 4 trials, 1 groups ===

--- scenario=ablate-rescue days=90 no-batch-rescue (4 seeds) ---
metric                               mean    ±95% CI          min          max
jobs_done                         100.000      0.000      100.000      100.000
jobs_failed                         2.500      2.054        1.000        4.000
`,
		},
		{
			name: "singleton seed",
			m: campaign.Matrix{
				Seeds:     []uint64{9},
				Overrides: []string{"tuned"},
			},
			fn: func(tr campaign.Trial) (map[string]float64, error) {
				return map[string]float64{"v": float64(tr.Seed)}, nil
			},
			want: `=== campaign golden: 1 trials, 1 groups ===

--- overrides=tuned (1 seeds) ---
metric                               mean    ±95% CI          min          max
v                                   9.000      0.000        9.000        9.000
`,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := campaign.Run("golden", c.m, 1, c.fn)
			if err != nil {
				t.Fatal(err)
			}
			if got := FormatCampaign(res); got != c.want {
				t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, c.want)
			}
		})
	}
}

func TestFormatCampaignFailedTrials(t *testing.T) {
	fn := func(tr campaign.Trial) (map[string]float64, error) {
		if tr.Seed == 2 {
			panic("kaboom")
		}
		return map[string]float64{"v": 1}, nil
	}
	res, err := campaign.Run("errs", campaign.Matrix{Seeds: campaign.Seeds(1, 3)}, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCampaign(res)
	if !strings.Contains(out, "1 FAILED") || !strings.Contains(out, "kaboom") {
		t.Errorf("failed trial not surfaced:\n%s", out)
	}
}
