package qoscluster

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/simclock"
)

func TestFormatCampaign(t *testing.T) {
	fn := func(tr campaign.Trial) (map[string]float64, error) {
		return map[string]float64{"downtime_h/total": float64(tr.Seed) * 2}, nil
	}
	m := campaign.Matrix{
		Seeds:     campaign.Seeds(1, 3),
		Scenarios: []string{"year"},
		Sites:     []string{"small"},
		Modes:     []string{"manual", "agents"},
		Days:      30,
	}
	res, err := campaign.Run("fig2", m, 2, fn)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCampaign(res)
	for _, want := range []string{
		"campaign fig2: 6 trials, 2 groups",
		"scenario=year site=small mode=manual days=30 (3 seeds)",
		"mode=agents",
		"±95% CI",
		"downtime_h/total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatCampaign missing %q:\n%s", want, out)
		}
	}
	// Seeds 1..3 → values 2,4,6: mean 4 with the min/max envelope shown.
	if !strings.Contains(out, "4.000") || !strings.Contains(out, "2.000") || !strings.Contains(out, "6.000") {
		t.Errorf("aggregate row wrong:\n%s", out)
	}
}

// TestFormatCampaignGolden pins the campaign tables byte for byte on
// hand-computed fixtures, CI bands and significance included:
//
//	{1,2,3}: mean 2, stddev 1,  CI95 = 4.303·1/√3 = 2.484…
//	{2,4,6}: mean 4, stddev 2,  CI95 = 4.303·2/√3 = 4.969…
//	{1,2,3,4}: mean 2.5, stddev √(5/3), CI95 = 3.182·√(5/3)/2 = 2.054…
//	{9}: singleton — zero spread, zero CI
//
// The cron sweep's second cell pairs with the first by seed: differences
// {1,2,3}, t = 2/(1/√3) = 3.464, df 2, two-sided p = 0.0742…
func TestFormatCampaignGolden(t *testing.T) {
	cases := []struct {
		name string
		m    campaign.Matrix
		fn   campaign.RunFunc
		want string
	}{
		{
			name: "option-axis cron sweep",
			m: campaign.Matrix{
				Seeds:       campaign.Seeds(1, 3),
				Scenarios:   []string{"ablate-cron"},
				Modes:       []string{"agents"},
				CronPeriods: []simclock.Time{simclock.Minute, 5 * simclock.Minute},
				Days:        30,
			},
			fn: func(tr campaign.Trial) (map[string]float64, error) {
				v := float64(tr.Seed)
				if tr.CronPeriod == 5*simclock.Minute {
					v *= 2
				}
				return map[string]float64{"detect_s": v}, nil
			},
			want: `=== campaign golden: 6 trials, 2 groups ===

--- scenario=ablate-cron mode=agents days=30 cron=1m0s (3 seeds) ---
metric                               mean    ±95% CI          min          max
detect_s                            2.000      2.484        1.000        3.000

--- scenario=ablate-cron mode=agents days=30 cron=5m0s (3 seeds) ---
metric                               mean    ±95% CI          min          max p-vs-first
detect_s                            4.000      4.969        2.000        6.000     0.0742
`,
		},
		{
			name: "four seeds two metrics",
			m: campaign.Matrix{
				Seeds:         campaign.Seeds(1, 4),
				Scenarios:     []string{"ablate-rescue"},
				NoBatchRescue: []bool{true},
				Days:          90,
			},
			fn: func(tr campaign.Trial) (map[string]float64, error) {
				return map[string]float64{
					"jobs_failed": float64(tr.Seed),
					"jobs_done":   100,
				}, nil
			},
			want: `=== campaign golden: 4 trials, 1 groups ===

--- scenario=ablate-rescue days=90 no-batch-rescue (4 seeds) ---
metric                               mean    ±95% CI          min          max
jobs_done                         100.000      0.000      100.000      100.000
jobs_failed                         2.500      2.054        1.000        4.000
`,
		},
		{
			name: "singleton seed",
			m: campaign.Matrix{
				Seeds:     []uint64{9},
				Overrides: []string{"tuned"},
			},
			fn: func(tr campaign.Trial) (map[string]float64, error) {
				return map[string]float64{"v": float64(tr.Seed)}, nil
			},
			want: `=== campaign golden: 1 trials, 1 groups ===

--- overrides=tuned (1 seeds) ---
metric                               mean    ±95% CI          min          max
v                                   9.000      0.000        9.000        9.000
`,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := campaign.Run("golden", c.m, 1, c.fn)
			if err != nil {
				t.Fatal(err)
			}
			if got := FormatCampaign(res); got != c.want {
				t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, c.want)
			}
		})
	}
}

func TestFormatCampaignFailedTrials(t *testing.T) {
	fn := func(tr campaign.Trial) (map[string]float64, error) {
		if tr.Seed == 2 {
			panic("kaboom")
		}
		return map[string]float64{"v": 1}, nil
	}
	res, err := campaign.Run("errs", campaign.Matrix{Seeds: campaign.Seeds(1, 3)}, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCampaign(res)
	if !strings.Contains(out, "1 FAILED") || !strings.Contains(out, "kaboom") {
		t.Errorf("failed trial not surfaced:\n%s", out)
	}
}

// TestSignificancePairingRequiresFullSamples: a metric missing from some
// seeds (conditionally emitted) must fall back to Welch even when both
// groups happen to have equal-length samples — equal length alone does
// not mean the samples align seed for seed.
func TestSignificancePairingRequiresFullSamples(t *testing.T) {
	m := campaign.Matrix{
		Seeds: campaign.Seeds(1, 4),
		Modes: []string{"manual", "agents"},
	}
	fn := func(tr campaign.Trial) (map[string]float64, error) {
		vals := map[string]float64{"always": float64(tr.Seed)}
		// "sometimes" skips seed 4 in the first cell and seed 3 in the
		// second: both cells end with 3 samples, but misaligned.
		skip := uint64(4)
		v := float64(tr.Seed)
		if tr.Mode == "agents" {
			skip = 3
			v *= 2
		}
		if tr.Seed != skip {
			vals["sometimes"] = v
		}
		return vals, nil
	}
	res, err := campaign.Run("partial", m, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCampaign(res)
	// The full metric pairs: diffs {1,2,3,4} → t = mean/sd/√n = 2.5/(1.291/2)
	// = 3.873, df 3, p = 0.0305. The partial metric must use Welch over
	// {1,2,3} vs {2,4,8}... i.e. NOT the paired p over those vectors.
	base, cell := []float64{1, 2, 3}, []float64{2, 4, 8}
	welch, _ := campaign.TTest(base, cell, false)
	pairedWrong, _ := campaign.TTest(base, cell, true)
	wantWelch := fmt.Sprintf("%10.4f", welch.P)
	wrong := fmt.Sprintf("%10.4f", pairedWrong.P)
	if wantWelch == wrong {
		t.Fatalf("test fixture cannot distinguish welch %s from paired %s", wantWelch, wrong)
	}
	// Only the second group's table carries the p column; skip the
	// baseline group's rows.
	lines := strings.Split(out, "\n")
	found := false
	inSecond := false
	for _, line := range lines {
		if strings.HasPrefix(line, "--- mode=agents") {
			inSecond = true
		}
		if inSecond && strings.HasPrefix(line, "sometimes") {
			found = true
			if !strings.Contains(line, strings.TrimSpace(wantWelch)) {
				t.Errorf("partial metric row %q; want the Welch p %s, not the misaligned paired p %s",
					line, wantWelch, wrong)
			}
		}
	}
	if !found {
		t.Fatal("no 'sometimes' row in the second group's table")
	}
}
