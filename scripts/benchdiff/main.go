// Command benchdiff compares two performance data points and fails on
// regression. It is the CI perf gate: the bench job keeps the previous
// build's artifacts in a cache and runs
//
//	go run ./scripts/benchdiff old-bench.txt new-bench.txt
//
// once two data points exist (the first build passes vacuously because
// there is nothing to compare against).
//
// Two input formats are auto-detected:
//
//   - `go test -bench` text (e.g. bench.txt, bench-agentday.txt): ns/op
//     is compared per benchmark; a benchmark slower than the old point
//     by more than -threshold (default 20%) fails the gate. With
//     -count > 1 the best (minimum) ns/op per name is used, which
//     filters scheduler noise.
//
//   - campaign JSON records (*.json, e.g. campaign-smoke.json): per-group
//     metric means are compared and drifts beyond the threshold are
//     reported. Simulation metrics legitimately move when the model
//     changes, so JSON drift is report-only unless -fail is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	qoscluster "repro"
	"repro/internal/campaign"
)

var (
	threshold = flag.Float64("threshold", 0.20, "relative regression that fails the gate (0.20 = +20%)")
	failDrift = flag.Bool("fail", false, "fail on campaign-JSON metric drift too (default: report only)")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold F] [-fail] OLD NEW\n")
		fmt.Fprintf(os.Stderr, "OLD and NEW are two `go test -bench` outputs or two campaign JSON records.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	var regressions []string
	var err error
	if strings.HasSuffix(oldPath, ".json") {
		regressions, err = diffCampaign(oldPath, newPath, *threshold)
		if err == nil && !*failDrift && len(regressions) > 0 {
			fmt.Printf("benchdiff: %d metric drift(s) beyond %.0f%% (report only; -fail to gate)\n",
				len(regressions), *threshold*100)
			regressions = nil
		}
	} else {
		regressions, err = diffBench(oldPath, newPath, *threshold)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — %d regression(s) beyond %.0f%%:\n", len(regressions), *threshold*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}

// benchLine matches `go test -bench` result lines, e.g.
// "BenchmarkAgentDay-8   3   123456789 ns/op   42 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench returns the best (minimum) ns/op per benchmark name.
func parseBench(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	best := map[string]float64{}
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if old, ok := best[m[1]]; !ok || ns < old {
			best[m[1]] = ns
		}
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return best, nil
}

// diffBench compares ns/op per benchmark, printing the comparison table
// and returning the regressions beyond the threshold.
func diffBench(oldPath, newPath string, threshold float64) ([]string, error) {
	oldNs, err := parseBench(oldPath)
	if err != nil {
		return nil, err
	}
	newNs, err := parseBench(newPath)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(newNs))
	for name := range newNs {
		if _, ok := oldNs[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	sort.Strings(names)
	var regressions []string
	fmt.Printf("%-32s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o, n := oldNs[name], newNs[name]
		delta := (n - o) / o
		fmt.Printf("%-32s %14.0f %14.0f %+7.1f%%\n", name, o, n, delta*100)
		if delta > threshold {
			regressions = append(regressions, fmt.Sprintf("%s: %.0f → %.0f ns/op (%+.1f%%)", name, o, n, delta*100))
		}
	}
	return regressions, nil
}

// parseCampaign reads one campaign record (or an array of them, the
// -ablate form) and flattens per-group metric means keyed by the full
// group coordinates, so groups match across builds even if their order
// in the record changes.
func parseCampaign(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var records []campaign.Result
	if err := json.Unmarshal(data, &records); err != nil {
		var one campaign.Result
		if err := json.Unmarshal(data, &one); err != nil {
			return nil, fmt.Errorf("%s: not a campaign record: %v", path, err)
		}
		records = []campaign.Result{one}
	}
	means := map[string]float64{}
	for _, rec := range records {
		for _, g := range rec.Groups {
			prefix := rec.Name + "[" + qoscluster.GroupLabel(g) + "]"
			for metric, s := range g.Stats {
				means[prefix+" "+metric] = s.Mean
			}
		}
	}
	if len(means) == 0 {
		return nil, fmt.Errorf("%s: no group stats found", path)
	}
	return means, nil
}

// diffCampaign compares per-group metric means between two campaign
// records and returns drifts beyond the threshold.
func diffCampaign(oldPath, newPath string, threshold float64) ([]string, error) {
	oldM, err := parseCampaign(oldPath)
	if err != nil {
		return nil, err
	}
	newM, err := parseCampaign(newPath)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(newM))
	for k := range newM {
		if _, ok := oldM[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var drifts []string
	for _, k := range keys {
		o, n := oldM[k], newM[k]
		if o == 0 {
			// No relative delta off a zero baseline: flag material
			// appearances honestly instead of fabricating a percentage.
			if math.Abs(n) > 1e-6 {
				drifts = append(drifts, fmt.Sprintf("%s: %.3f → %.3f (from zero baseline)", k, o, n))
			}
			continue
		}
		delta := (n - o) / o
		if delta > threshold || delta < -threshold {
			drifts = append(drifts, fmt.Sprintf("%s: %.3f → %.3f (%+.1f%%)", k, o, n, delta*100))
		}
	}
	for _, d := range drifts {
		fmt.Println("  drift " + d)
	}
	fmt.Printf("campaign diff: %d comparable metrics, %d drifted beyond %.0f%%\n", len(keys), len(drifts), threshold*100)
	return drifts, nil
}
