// Command benchdiff compares two performance data points and fails on
// regression. It is the CI perf gate: the bench job keeps the previous
// build's artifacts in a cache and runs
//
//	go run ./scripts/benchdiff old-bench.txt new-bench.txt
//
// once two data points exist (the first build passes vacuously because
// there is nothing to compare against).
//
// Two input formats are auto-detected:
//
//   - `go test -bench` text (e.g. bench.txt, bench-agentday.txt): ns/op —
//     and, when both artifacts carry -benchmem columns, allocs/op — are
//     compared per benchmark; either quantity regressing past -threshold
//     (default 20%) fails the gate. With -count > 1 the best (minimum)
//     value per name is used, which filters scheduler noise. With
//     -improvement F the gate additionally demands NEW be at least F times
//     faster than OLD — the speedup-proof mode `make perf-proof` runs
//     against the checked-in seed artifact.
//
//   - campaign JSON records (*.json, e.g. campaign-smoke.json): per-group
//     metric means are compared and drifts beyond the threshold are
//     reported. Simulation metrics legitimately move when the model
//     changes, so JSON drift is report-only unless -fail is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	qoscluster "repro"
	"repro/internal/campaign"
)

var (
	threshold = flag.Float64("threshold", 0.20, "relative regression that fails the gate (0.20 = +20%)")
	failDrift = flag.Bool("fail", false, "fail on campaign-JSON metric drift too (default: report only)")
	improve   = flag.Float64("improvement", 0, "require NEW ns/op <= OLD/F for every common benchmark (0 = off); the speedup-proof mode against a checked-in seed artifact")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold F] [-fail] OLD NEW\n")
		fmt.Fprintf(os.Stderr, "OLD and NEW are two `go test -bench` outputs or two campaign JSON records.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	var regressions []string
	var err error
	if strings.HasSuffix(oldPath, ".json") {
		regressions, err = diffCampaign(oldPath, newPath, *threshold)
		if err == nil && !*failDrift && len(regressions) > 0 {
			fmt.Printf("benchdiff: %d metric drift(s) beyond %.0f%% (report only; -fail to gate)\n",
				len(regressions), *threshold*100)
			regressions = nil
		}
	} else {
		regressions, err = diffBench(oldPath, newPath, *threshold, *improve)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — %d regression(s) beyond %.0f%%:\n", len(regressions), *threshold*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}

// benchLine matches `go test -bench` result lines, with the optional
// -benchmem columns, e.g.
// "BenchmarkAgentDay-8   3   123456789 ns/op   42 B/op   7 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// benchPoint is one benchmark's best observed measurements. Allocs < 0
// means the artifact predates -benchmem and carries no allocation data.
type benchPoint struct {
	ns     float64
	allocs float64
}

// parseBench returns the best (minimum) ns/op and allocs/op per benchmark
// name; with -count > 1 the minimum filters scheduler noise.
func parseBench(path string) (map[string]benchPoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	best := map[string]benchPoint{}
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		allocs := -1.0
		if m[4] != "" {
			if a, err := strconv.ParseFloat(m[4], 64); err == nil {
				allocs = a
			}
		}
		cur, seen := best[m[1]]
		if !seen {
			best[m[1]] = benchPoint{ns: ns, allocs: allocs}
			continue
		}
		if ns < cur.ns {
			cur.ns = ns
		}
		if allocs >= 0 && (cur.allocs < 0 || allocs < cur.allocs) {
			cur.allocs = allocs
		}
		best[m[1]] = cur
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return best, nil
}

// diffBench compares ns/op and allocs/op per benchmark, printing the
// comparison table and returning the regressions beyond the threshold.
// Allocation data is gated only when both artifacts carry it. With
// improvement > 0 a benchmark additionally fails unless its new ns/op is
// at least that factor better than the old point.
func diffBench(oldPath, newPath string, threshold, improvement float64) ([]string, error) {
	oldB, err := parseBench(oldPath)
	if err != nil {
		return nil, err
	}
	newB, err := parseBench(newPath)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(newB))
	for name := range newB {
		if _, ok := oldB[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	sort.Strings(names)
	var regressions []string
	fmt.Printf("%-32s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, name := range names {
		o, n := oldB[name], newB[name]
		delta := (n.ns - o.ns) / o.ns
		allocCols := fmt.Sprintf("%12s %12s %8s", "-", "-", "-")
		if o.allocs >= 0 && n.allocs >= 0 {
			ad := (n.allocs - o.allocs) / o.allocs
			allocCols = fmt.Sprintf("%12.0f %12.0f %+7.1f%%", o.allocs, n.allocs, ad*100)
			if ad > threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f → %.0f allocs/op (%+.1f%%)", name, o.allocs, n.allocs, ad*100))
			}
		}
		fmt.Printf("%-32s %14.0f %14.0f %+7.1f%% %s\n", name, o.ns, n.ns, delta*100, allocCols)
		if delta > threshold {
			regressions = append(regressions, fmt.Sprintf("%s: %.0f → %.0f ns/op (%+.1f%%)", name, o.ns, n.ns, delta*100))
		}
		if improvement > 0 && n.ns > o.ns/improvement {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f → %.0f ns/op is only %.2fx, want >= %.2fx", name, o.ns, n.ns, o.ns/n.ns, improvement))
		}
	}
	return regressions, nil
}

// parseCampaign reads one campaign record (or an array of them, the
// -ablate form) and flattens per-group metric means keyed by the full
// group coordinates, so groups match across builds even if their order
// in the record changes.
func parseCampaign(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var records []campaign.Result
	if err := json.Unmarshal(data, &records); err != nil {
		var one campaign.Result
		if err := json.Unmarshal(data, &one); err != nil {
			return nil, fmt.Errorf("%s: not a campaign record: %v", path, err)
		}
		records = []campaign.Result{one}
	}
	means := map[string]float64{}
	for _, rec := range records {
		for _, g := range rec.Groups {
			prefix := rec.Name + "[" + qoscluster.GroupLabel(g) + "]"
			for metric, s := range g.Stats {
				means[prefix+" "+metric] = s.Mean
			}
		}
	}
	if len(means) == 0 {
		return nil, fmt.Errorf("%s: no group stats found", path)
	}
	return means, nil
}

// diffCampaign compares per-group metric means between two campaign
// records and returns drifts beyond the threshold.
func diffCampaign(oldPath, newPath string, threshold float64) ([]string, error) {
	oldM, err := parseCampaign(oldPath)
	if err != nil {
		return nil, err
	}
	newM, err := parseCampaign(newPath)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(newM))
	for k := range newM {
		if _, ok := oldM[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var drifts []string
	for _, k := range keys {
		o, n := oldM[k], newM[k]
		if o == 0 {
			// No relative delta off a zero baseline: flag material
			// appearances honestly instead of fabricating a percentage.
			if math.Abs(n) > 1e-6 {
				drifts = append(drifts, fmt.Sprintf("%s: %.3f → %.3f (from zero baseline)", k, o, n))
			}
			continue
		}
		delta := (n - o) / o
		if delta > threshold || delta < -threshold {
			drifts = append(drifts, fmt.Sprintf("%s: %.3f → %.3f (%+.1f%%)", k, o, n, delta*100))
		}
	}
	// Inside GitHub Actions, report-only drift is easy to lose in the log;
	// emit workflow-command warning annotations so each drifted metric
	// surfaces on the run summary and the PR checks page instead.
	annotate := os.Getenv("GITHUB_ACTIONS") == "true"
	for _, d := range drifts {
		if annotate {
			fmt.Printf("::warning title=campaign metric drift::%s\n", d)
		} else {
			fmt.Println("  drift " + d)
		}
	}
	fmt.Printf("campaign diff: %d comparable metrics, %d drifted beyond %.0f%%\n", len(keys), len(drifts), threshold*100)
	return drifts, nil
}
