// Command campaigngolden regenerates the checked-in campaign-JSON golden
// files (testdata/campaign-golden-<site>-<mode>.json) that
// TestCampaignGoldenNoTierSpecs compares against, plus the flash-crowd
// workload golden (testdata/campaign-golden-small-flashcrowd.json) that
// TestCampaignGoldenFlashcrowd compares against. The no-spec goldens pin
// the campaign output of topologies *without* per-tier workload/fault
// specs, so refactors of the workload generator or fault campaign cannot
// drift the reproduced numbers for unspecified topologies; the
// flash-crowd golden pins the statistical arrival engine over the
// checked-in testdata/workload-flashcrowd.json spec.
//
// Only regenerate deliberately — after a change that is *supposed* to
// move the default numbers — and say so in the commit message:
//
//	go run ./scripts/campaigngolden
package main

import (
	"fmt"
	"os"

	"repro/experiments"
	"repro/internal/campaign"
)

func main() {
	for _, site := range []string{"paper", "small"} {
		for _, mode := range []string{"manual", "agents"} {
			m := campaign.Matrix{
				Seeds:     campaign.Seeds(7, 2),
				Scenarios: []string{"year"},
				Sites:     []string{site},
				Modes:     []string{mode},
				Days:      1,
			}
			res, err := campaign.Run("golden", m, 1, experiments.RunTrial)
			if err != nil {
				fatal(err)
			}
			if errs := res.Errs(); len(errs) > 0 {
				fatal(fmt.Errorf("%s-%s: %d failed trials; first: %s", site, mode, len(errs), errs[0].Err))
			}
			js, err := res.JSON()
			if err != nil {
				fatal(err)
			}
			path := fmt.Sprintf("testdata/campaign-golden-%s-%s.json", site, mode)
			if err := os.WriteFile(path, append(js, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(js)+1)
		}
	}

	// The flash-crowd workload golden: the checked-in spec file driving
	// the statistical arrival engine on the small site.
	wls, err := experiments.ResolveWorkloads([]string{"testdata/workload-flashcrowd.json"})
	if err != nil {
		fatal(err)
	}
	m := campaign.Matrix{
		Seeds:     campaign.Seeds(7, 2),
		Scenarios: []string{"year"},
		Sites:     []string{"small"},
		Modes:     []string{"manual"},
		Days:      1,
		Workloads: wls,
	}
	res, err := campaign.Run("golden", m, 1, experiments.RunTrial)
	if err != nil {
		fatal(err)
	}
	if errs := res.Errs(); len(errs) > 0 {
		fatal(fmt.Errorf("small-flashcrowd: %d failed trials; first: %s", len(errs), errs[0].Err))
	}
	js, err := res.JSON()
	if err != nil {
		fatal(err)
	}
	const path = "testdata/campaign-golden-small-flashcrowd.json"
	if err := os.WriteFile(path, append(js, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(js)+1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaigngolden:", err)
	os.Exit(1)
}
