package qoscluster

import (
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/lsf"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Report summarises a scenario run in the terms the paper's Section 4
// reports: downtime hours per error category, detection latencies by time
// window, incident MTTRs, and batch-job outcomes.
type Report struct {
	Mode Mode
	At   simclock.Time
	Rows []metrics.Summary
	// Tiers is the per-tier downtime breakdown, in topology order. It is
	// populated only for tiered sites (per-tier workload or fault domains
	// in play); untiered sites keep the site-global report unchanged.
	Tiers       []TierSummary
	Total       simclock.Time
	MeanDetect  simclock.Time
	P95Detect   simclock.Time
	DetectDay   simclock.Time // mean detection latency, weekday-day faults
	DetectNight simclock.Time // mean, overnight faults
	DetectWkend simclock.Time // mean, weekend faults
	MeanMTTR    simclock.Time
	JobsDone    int
	JobsFailed  int
	Resubmitted int
	AgentRuns   int
	AgentHeals  int
	Escalations int
	OpenFaults  int
}

// TierSummary is one tier's slice of the incident ledger: how many
// incidents landed on the tier's hosts and the downtime they cost.
type TierSummary struct {
	Tier      string
	Incidents int
	Downtime  simclock.Time
}

// TierSummaries computes the per-tier downtime breakdown at now, in
// topology declaration order. Incidents on hosts outside every tier (the
// mode-added administration pair) would be skipped; no injector targets
// them today.
func (s *Site) TierSummaries(now simclock.Time) []TierSummary {
	idx := make(map[string]int, len(s.Topo.Tiers))
	out := make([]TierSummary, len(s.Topo.Tiers))
	for i, tier := range s.Topo.Tiers {
		idx[tier.Name] = i
		out[i].Tier = tier.Name
	}
	for _, inc := range s.Ledger.Incidents() {
		if i, ok := idx[s.tierOf[inc.Host]]; ok {
			out[i].Incidents++
			out[i].Downtime += inc.Downtime(now)
		}
	}
	return out
}

// Report computes the current summary.
func (s *Site) Report() Report {
	now := s.Sim.Now()
	r := Report{
		Mode:  s.Opts.Mode,
		At:    now,
		Rows:  s.Ledger.Summaries(now),
		Total: s.Ledger.TotalDowntime(now),
	}
	if s.Tiered() {
		r.Tiers = s.TierSummaries(now)
	}
	lats := s.Ledger.DetectionLatencies(nil)
	r.MeanDetect = metrics.Mean(lats)
	r.P95Detect = metrics.Percentile(lats, 0.95)
	r.DetectDay = metrics.Mean(s.Ledger.DetectionLatencies(metrics.WindowDay))
	r.DetectNight = metrics.Mean(s.Ledger.DetectionLatencies(metrics.WindowOvernight))
	r.DetectWkend = metrics.Mean(s.Ledger.DetectionLatencies(metrics.WindowWeekend))
	r.MeanMTTR = metrics.Mean(s.Ledger.MTTRs(nil))
	counts := s.LSF.CountByState()
	r.JobsDone = counts[lsf.JobDone]
	r.JobsFailed = counts[lsf.JobFailed]
	if s.Admin != nil {
		r.Resubmitted = s.Admin.Resubmissions
	}
	for _, a := range s.Agents {
		c := a.Counters()
		r.AgentRuns += c.Runs
		r.AgentHeals += c.Healed
		r.Escalations += c.Escalated
	}
	r.OpenFaults = s.Registry.OpenCount()
	return r
}

// Format renders the report as the Figure-2-style table plus the latency
// and batch lines.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s operations, %.0f simulated days ===\n", r.Mode, r.At.Hours()/24)
	fmt.Fprintf(&b, "%-16s %10s %10s\n", "category", "incidents", "hours")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %10d %10.1f\n", row.Category, row.Incidents, row.Downtime.Hours())
	}
	fmt.Fprintf(&b, "%-16s %10s %10.1f\n", "TOTAL", "", r.Total.Hours())
	for _, row := range r.Tiers {
		fmt.Fprintf(&b, "tier %-11s %10d %10.1f\n", row.Tier, row.Incidents, row.Downtime.Hours())
	}
	fmt.Fprintf(&b, "detection: mean=%v p95=%v day=%v overnight=%v weekend=%v\n",
		round(r.MeanDetect), round(r.P95Detect), round(r.DetectDay), round(r.DetectNight), round(r.DetectWkend))
	fmt.Fprintf(&b, "repair:    mean MTTR=%v\n", round(r.MeanMTTR))
	fmt.Fprintf(&b, "batch:     done=%d failed=%d resubmitted=%d\n", r.JobsDone, r.JobsFailed, r.Resubmitted)
	if r.Mode == ModeAgents {
		fmt.Fprintf(&b, "agents:    runs=%d heals=%d escalations=%d open-faults=%d\n",
			r.AgentRuns, r.AgentHeals, r.Escalations, r.OpenFaults)
	}
	return b.String()
}

func round(t simclock.Time) simclock.Time {
	return t - t%simclock.Time(1e9) // whole seconds
}

// FormatCampaign renders a campaign result as aggregate tables with
// uncertainty: one table per matrix group, each metric as
// mean ± 95%-CI half-width with the min/max envelope over seeds. In
// multi-group campaigns every group after the first also gets a
// significance column: the two-sided p-value of its difference from the
// first group on that metric — a paired t-test on per-seed differences
// when the metric is present in every error-free trial of both cells
// (the matrix replicates cells over the same seed list), Welch's
// unequal-variance t-test when errors or conditionally-emitted metrics
// broke the seed alignment. Low p means the cells genuinely differ; "-"
// means too few samples to test.
func FormatCampaign(r *campaign.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== campaign %s: %d trials, %d groups ===\n", r.Name, len(r.Trials), len(r.Groups))
	var samples []map[string][]float64
	if len(r.Groups) > 1 {
		samples = r.GroupSamples()
	}
	for gi, g := range r.Groups {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "--- %s", GroupLabel(g))
		fmt.Fprintf(&b, " (%d seeds", g.Seeds)
		if g.Errors > 0 {
			fmt.Fprintf(&b, ", %d FAILED", g.Errors)
		}
		b.WriteString(") ---\n")
		fmt.Fprintf(&b, "%-28s %12s %10s %12s %12s", "metric", "mean", "±95% CI", "min", "max")
		if samples != nil && gi > 0 {
			fmt.Fprintf(&b, " %10s", "p-vs-first")
		}
		b.WriteByte('\n')
		for _, name := range g.MetricNames() {
			s := g.Stats[name]
			fmt.Fprintf(&b, "%-28s %12.3f %10.3f %12.3f %12.3f", name, s.Mean, s.CI95, s.Min, s.Max)
			if samples != nil && gi > 0 {
				base := r.Groups[0]
				// Pairing by seed is only sound when the metric is present
				// in every error-free trial of both cells: conditionally
				// emitted metrics (a seed with no matching incidents
				// reports nothing) would otherwise pair sample i of one
				// cell against a different seed's sample in the other.
				pairOK := base.Errors == 0 && g.Errors == 0 && base.Seeds == g.Seeds &&
					len(samples[0][name]) == base.Seeds && len(samples[gi][name]) == g.Seeds
				b.WriteString(" " + significance(samples[0][name], samples[gi][name], pairOK))
			}
			b.WriteByte('\n')
		}
	}
	if errs := r.Errs(); len(errs) > 0 {
		b.WriteString("\nfailed trials:\n")
		for _, tr := range errs {
			fmt.Fprintf(&b, "  #%d seed=%d %s: %s\n", tr.Trial.Index, tr.Trial.Seed,
				GroupLabel(campaign.GroupOf(tr.Trial)), tr.Err)
		}
	}
	return b.String()
}

// significance renders one metric's p-value cell against the baseline
// group: the per-seed paired test when the caller established the
// samples align seed for seed, Welch's otherwise.
func significance(base, cell []float64, paired bool) string {
	res, ok := campaign.TTest(base, cell, paired)
	if !ok {
		return fmt.Sprintf("%10s", "-")
	}
	return fmt.Sprintf("%10.4f", res.P)
}

// GroupLabel names the non-seed coordinates of a group, skipping blank
// axes; option axes at their zero value (the scenario default) are
// likewise skipped.
func GroupLabel(g campaign.Group) string {
	var parts []string
	if g.Scenario != "" {
		parts = append(parts, "scenario="+g.Scenario)
	}
	if g.Site != "" {
		parts = append(parts, "site="+g.Site)
	}
	if g.Mode != "" {
		parts = append(parts, "mode="+g.Mode)
	}
	if g.Days > 0 {
		parts = append(parts, fmt.Sprintf("days=%d", g.Days))
	}
	if g.CronPeriod > 0 {
		parts = append(parts, fmt.Sprintf("cron=%v", g.CronPeriod))
	}
	if g.AgentSet != "" {
		parts = append(parts, "agents="+g.AgentSet)
	}
	if g.NoBatchRescue {
		parts = append(parts, "no-batch-rescue")
	}
	if g.DisablePrivateNet {
		parts = append(parts, "no-private-net")
	}
	if g.BaselineMonitors {
		parts = append(parts, "baseline-monitors")
	}
	if g.Overrides != "" {
		parts = append(parts, "overrides="+g.Overrides)
	}
	if g.TierFaults != "" {
		parts = append(parts, "tierfaults="+g.TierFaults)
	}
	if g.Workload != "" {
		parts = append(parts, "workload="+g.Workload)
	}
	if g.TierLoad != "" {
		parts = append(parts, "tierload="+g.TierLoad)
	}
	if len(parts) == 0 {
		return "all"
	}
	return strings.Join(parts, " ")
}

// DowntimeHours returns one category's downtime in hours.
func (r Report) DowntimeHours(cat metrics.Category) float64 {
	for _, row := range r.Rows {
		if row.Category == cat {
			return row.Downtime.Hours()
		}
	}
	return 0
}
