package qoscluster

import (
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/lsf"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Report summarises a scenario run in the terms the paper's Section 4
// reports: downtime hours per error category, detection latencies by time
// window, incident MTTRs, and batch-job outcomes.
type Report struct {
	Mode        Mode
	At          simclock.Time
	Rows        []metrics.Summary
	Total       simclock.Time
	MeanDetect  simclock.Time
	P95Detect   simclock.Time
	DetectDay   simclock.Time // mean detection latency, weekday-day faults
	DetectNight simclock.Time // mean, overnight faults
	DetectWkend simclock.Time // mean, weekend faults
	MeanMTTR    simclock.Time
	JobsDone    int
	JobsFailed  int
	Resubmitted int
	AgentRuns   int
	AgentHeals  int
	Escalations int
	OpenFaults  int
}

// Report computes the current summary.
func (s *Site) Report() Report {
	now := s.Sim.Now()
	r := Report{
		Mode:  s.Opts.Mode,
		At:    now,
		Rows:  s.Ledger.Summaries(now),
		Total: s.Ledger.TotalDowntime(now),
	}
	lats := s.Ledger.DetectionLatencies(nil)
	r.MeanDetect = metrics.Mean(lats)
	r.P95Detect = metrics.Percentile(lats, 0.95)
	r.DetectDay = metrics.Mean(s.Ledger.DetectionLatencies(metrics.WindowDay))
	r.DetectNight = metrics.Mean(s.Ledger.DetectionLatencies(metrics.WindowOvernight))
	r.DetectWkend = metrics.Mean(s.Ledger.DetectionLatencies(metrics.WindowWeekend))
	r.MeanMTTR = metrics.Mean(s.Ledger.MTTRs(nil))
	counts := s.LSF.CountByState()
	r.JobsDone = counts[lsf.JobDone]
	r.JobsFailed = counts[lsf.JobFailed]
	if s.Admin != nil {
		r.Resubmitted = s.Admin.Resubmissions
	}
	for _, a := range s.Agents {
		c := a.Counters()
		r.AgentRuns += c.Runs
		r.AgentHeals += c.Healed
		r.Escalations += c.Escalated
	}
	r.OpenFaults = s.Registry.OpenCount()
	return r
}

// Format renders the report as the Figure-2-style table plus the latency
// and batch lines.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s operations, %.0f simulated days ===\n", r.Mode, r.At.Hours()/24)
	fmt.Fprintf(&b, "%-16s %10s %10s\n", "category", "incidents", "hours")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %10d %10.1f\n", row.Category, row.Incidents, row.Downtime.Hours())
	}
	fmt.Fprintf(&b, "%-16s %10s %10.1f\n", "TOTAL", "", r.Total.Hours())
	fmt.Fprintf(&b, "detection: mean=%v p95=%v day=%v overnight=%v weekend=%v\n",
		round(r.MeanDetect), round(r.P95Detect), round(r.DetectDay), round(r.DetectNight), round(r.DetectWkend))
	fmt.Fprintf(&b, "repair:    mean MTTR=%v\n", round(r.MeanMTTR))
	fmt.Fprintf(&b, "batch:     done=%d failed=%d resubmitted=%d\n", r.JobsDone, r.JobsFailed, r.Resubmitted)
	if r.Mode == ModeAgents {
		fmt.Fprintf(&b, "agents:    runs=%d heals=%d escalations=%d open-faults=%d\n",
			r.AgentRuns, r.AgentHeals, r.Escalations, r.OpenFaults)
	}
	return b.String()
}

func round(t simclock.Time) simclock.Time {
	return t - t%simclock.Time(1e9) // whole seconds
}

// FormatCampaign renders a campaign result as aggregate tables with
// uncertainty: one table per matrix group, each metric as
// mean ± 95%-CI half-width with the min/max envelope over seeds.
func FormatCampaign(r *campaign.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== campaign %s: %d trials, %d groups ===\n", r.Name, len(r.Trials), len(r.Groups))
	for _, g := range r.Groups {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "--- %s", GroupLabel(g))
		fmt.Fprintf(&b, " (%d seeds", g.Seeds)
		if g.Errors > 0 {
			fmt.Fprintf(&b, ", %d FAILED", g.Errors)
		}
		b.WriteString(") ---\n")
		fmt.Fprintf(&b, "%-28s %12s %10s %12s %12s\n", "metric", "mean", "±95% CI", "min", "max")
		for _, name := range g.MetricNames() {
			s := g.Stats[name]
			fmt.Fprintf(&b, "%-28s %12.3f %10.3f %12.3f %12.3f\n", name, s.Mean, s.CI95, s.Min, s.Max)
		}
	}
	if errs := r.Errs(); len(errs) > 0 {
		b.WriteString("\nfailed trials:\n")
		for _, tr := range errs {
			fmt.Fprintf(&b, "  #%d seed=%d %s: %s\n", tr.Trial.Index, tr.Trial.Seed,
				GroupLabel(campaign.GroupOf(tr.Trial)), tr.Err)
		}
	}
	return b.String()
}

// GroupLabel names the non-seed coordinates of a group, skipping blank
// axes; option axes at their zero value (the scenario default) are
// likewise skipped.
func GroupLabel(g campaign.Group) string {
	var parts []string
	if g.Scenario != "" {
		parts = append(parts, "scenario="+g.Scenario)
	}
	if g.Site != "" {
		parts = append(parts, "site="+g.Site)
	}
	if g.Mode != "" {
		parts = append(parts, "mode="+g.Mode)
	}
	if g.Days > 0 {
		parts = append(parts, fmt.Sprintf("days=%d", g.Days))
	}
	if g.CronPeriod > 0 {
		parts = append(parts, fmt.Sprintf("cron=%v", g.CronPeriod))
	}
	if g.AgentSet != "" {
		parts = append(parts, "agents="+g.AgentSet)
	}
	if g.NoBatchRescue {
		parts = append(parts, "no-batch-rescue")
	}
	if g.DisablePrivateNet {
		parts = append(parts, "no-private-net")
	}
	if g.BaselineMonitors {
		parts = append(parts, "baseline-monitors")
	}
	if g.Overrides != "" {
		parts = append(parts, "overrides="+g.Overrides)
	}
	if len(parts) == 0 {
		return "all"
	}
	return strings.Join(parts, " ")
}

// DowntimeHours returns one category's downtime in hours.
func (r Report) DowntimeHours(cat metrics.Category) float64 {
	for _, row := range r.Rows {
		if row.Category == cat {
			return row.Downtime.Hours()
		}
	}
	return 0
}
