// Package qoscluster is the public face of the reproduction of Corsava &
// Getov, "Improving Quality of Service in Application Clusters" (IPDPS'03):
// it assembles a simulated Unix application cluster — hosts, services, LSF
// batch tier, private agent network, workload and fault processes — and
// runs it either under the paper's manual operations (BMC-style monitoring
// plus human operators) or under the paper's contribution (intelliagents
// coordinated by an administration-server pair).
//
// The typical flow:
//
//	site := qoscluster.BuildSite(qoscluster.SmallSite(1), qoscluster.Options{Mode: qoscluster.ModeAgents})
//	site.Run(30 * simclock.Day)
//	fmt.Println(site.Report().Format())
package qoscluster

import (
	"fmt"

	"repro/internal/adminsrv"
	"repro/internal/agent"
	"repro/internal/agents"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/fsim"
	"repro/internal/lsf"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/notify"
	"repro/internal/ontology"
	"repro/internal/operators"
	"repro/internal/simclock"
	"repro/internal/svc"
	"repro/internal/workload"
)

// Mode selects how the site is operated.
type Mode int

// Operation modes.
const (
	// ModeManual is the paper's "before" year: commercial monitoring,
	// operator consoles, on-call administrators, manual repair.
	ModeManual Mode = iota
	// ModeAgents is the paper's "after" year: intelliagents on every
	// host, administration-server pair, DGSPL-driven batch rescue.
	ModeAgents
)

func (m Mode) String() string {
	if m == ModeAgents {
		return "agents"
	}
	return "manual"
}

// SiteSpec sizes the datacentre.
type SiteSpec struct {
	Name string
	Geo  string
	Seed uint64
	// Host counts per role. The paper's site ran 100 database, 55
	// transaction and 60 front-end servers.
	DatabaseHosts    int
	TransactionHosts int
	FrontEndHosts    int
}

// PaperSite returns the full-size evaluation site (use for structure
// demonstrations; year-long simulations want SmallSite, whose downtime
// ledger is equivalent because fault arrival rates are site-wide).
func PaperSite(seed uint64) SiteSpec {
	return SiteSpec{Name: "london-dc1", Geo: "UK", Seed: seed,
		DatabaseHosts: 100, TransactionHosts: 55, FrontEndHosts: 60}
}

// SmallSite returns a scaled site for long simulations: the fault campaign
// is defined per site, not per host, so category downtime totals are
// unaffected by the scale-down while event counts drop by an order of
// magnitude.
func SmallSite(seed uint64) SiteSpec {
	return SiteSpec{Name: "london-dc1", Geo: "UK", Seed: seed,
		DatabaseHosts: 6, TransactionHosts: 2, FrontEndHosts: 3}
}

// AgentSet selects which intelliagents deploy per host in ModeAgents.
type AgentSet int

// Agent deployments.
const (
	// AgentsLean deploys the agents the Figure-2 categories need: service
	// agents, status, performance, network.
	AgentsLean AgentSet = iota
	// AgentsFull adds the cpu/memory/disk resource agents and the
	// hardware agent — the paper's complete taxonomy.
	AgentsFull
)

// Options tune a scenario.
type Options struct {
	Mode     Mode
	AgentSet AgentSet
	// CronPeriod is X, the agents' wake-up period (default: the paper's 5
	// minutes).
	CronPeriod simclock.Time
	// Faults overrides the default fault campaign (nil = paper-calibrated
	// rates; empty non-nil slice = no faults).
	Faults []faultinject.Spec
	// Workload overrides the offered load (nil = DefaultConfig scaled).
	Workload *workload.Config
	// BaselineMonitors installs BMC-style monitors on every database host
	// (always installed in ModeManual on database hosts regardless).
	BaselineMonitors bool
	// DisablePrivateNet removes the private agent network (ablation).
	DisablePrivateNet bool
	// NoBatchRescue stops the admin tier resubmitting failed jobs from the
	// DGSPL (ablation of the paper's §4 mechanism).
	NoBatchRescue bool
	// OperatorTiming overrides the manual-operations constants (ablation).
	OperatorTiming *operators.Timing
}

// Site is an assembled, running scenario.
type Site struct {
	Spec SiteSpec
	Opts Options

	Sim      *simclock.Sim
	DC       *cluster.Datacentre
	Dir      *svc.Directory
	LSF      *lsf.Cluster
	Private  *netsim.Network
	Public   *netsim.Network
	Bus      *notify.Bus
	Ledger   *metrics.Ledger
	Registry *faultinject.Registry
	Campaign *faultinject.Campaign
	Team     *operators.Team
	Gen      *workload.Generator
	Admin    *adminsrv.Pair // nil in ModeManual
	Monitors []*baseline.Monitor
	Agents   []*agent.Agent

	dbServices []string // LSF targets
	started    bool
}

// BuildSite assembles a site; call Run to execute it.
func BuildSite(spec SiteSpec, opts Options) *Site {
	if opts.CronPeriod <= 0 {
		opts.CronPeriod = 5 * simclock.Minute
	}
	s := &Site{
		Spec: spec,
		Opts: opts,
		Sim:  simclock.New(spec.Seed),
		DC:   cluster.NewDatacentre(),
		Dir:  svc.NewDirectory(),
	}
	s.Bus = notify.NewBus(s.Sim)
	s.Ledger = metrics.NewLedger()
	s.Registry = faultinject.NewRegistry(s.Ledger)
	s.Team = operators.NewTeam(s.Sim.Rand().Fork(0x09e7))
	if opts.OperatorTiming != nil {
		s.Team.SetTiming(*opts.OperatorTiming)
	}
	s.buildNetworks()
	s.buildHosts()
	s.buildServices()
	s.buildLSF()
	s.wireRepairPipeline()
	return s
}

func (s *Site) buildNetworks() {
	s.Public = netsim.New(s.Sim, "public", 2*simclock.Time(1e6), 0.2) // 2ms LAN
	if !s.Opts.DisablePrivateNet {
		s.Private = netsim.New(s.Sim, "private", 1*simclock.Time(1e6), 0.1)
	}
}

func (s *Site) attach(h *cluster.Host) {
	s.Public.Attach(h.Name, nil)
	if s.Private != nil {
		s.Private.Attach(h.Name, nil)
	}
}

// dbModelFor spreads the paper's database hardware mix: E10Ks and E4500s.
func dbModelFor(i int) cluster.HardwareModel {
	if i%3 == 0 {
		return cluster.ModelE10K
	}
	return cluster.ModelE4500
}

// txModelFor spreads the transaction tier's mix: E10K, Ultra10, linux,
// E450, E220R, HP K and T series.
func txModelFor(i int) cluster.HardwareModel {
	mix := []cluster.HardwareModel{
		cluster.ModelE450, cluster.ModelHPK, cluster.ModelE220R,
		cluster.ModelHPT, cluster.ModelLinux, cluster.ModelUltra10,
	}
	return mix[i%len(mix)]
}

func (s *Site) buildHosts() {
	for i := 0; i < s.Spec.DatabaseHosts; i++ {
		h := cluster.NewHost(s.Sim, fmt.Sprintf("db%03d", i+1), fmt.Sprintf("10.2.0.%d", i+1),
			dbModelFor(i), cluster.RoleDatabase, s.Spec.Name, s.Spec.Geo)
		s.DC.Add(h)
		s.attach(h)
	}
	for i := 0; i < s.Spec.TransactionHosts; i++ {
		h := cluster.NewHost(s.Sim, fmt.Sprintf("tx%03d", i+1), fmt.Sprintf("10.3.0.%d", i+1),
			txModelFor(i), cluster.RoleTransaction, s.Spec.Name, s.Spec.Geo)
		s.DC.Add(h)
		s.attach(h)
	}
	for i := 0; i < s.Spec.FrontEndHosts; i++ {
		h := cluster.NewHost(s.Sim, fmt.Sprintf("fe%03d", i+1), fmt.Sprintf("10.4.0.%d", i+1),
			cluster.ModelSP2, cluster.RoleFrontEnd, s.Spec.Name, s.Spec.Geo)
		s.DC.Add(h)
		s.attach(h)
	}
}

func (s *Site) buildServices() {
	// Databases: Oracle/Sybase mix plus LSF daemons on every DB host.
	for i, h := range s.DC.ByRole(cluster.RoleDatabase) {
		var spec svc.Spec
		if i%4 == 3 {
			spec = svc.SybaseSpec(fmt.Sprintf("SYB-%03d", i+1), 4100)
		} else {
			spec = svc.OracleSpec(fmt.Sprintf("ORA-%03d", i+1), 1521)
		}
		db := mustService(s.Sim, spec, h)
		s.Dir.Add(db)
		s.dbServices = append(s.dbServices, db.Spec.Name)
		lsfd := mustService(s.Sim, svc.LSFSpec("LSF-"+h.Name), h)
		s.Dir.Add(lsfd)
	}
	// Transaction hosts carry market-data feed handlers.
	for i, h := range s.DC.ByRole(cluster.RoleTransaction) {
		s.Dir.Add(mustService(s.Sim, svc.FeedSpec(fmt.Sprintf("FEED-%03d", i+1), 7000+i), h))
	}
	// Front ends depend on a database.
	dbs := s.dbServices
	for i, h := range s.DC.ByRole(cluster.RoleFrontEnd) {
		dep := dbs[i%len(dbs)]
		s.Dir.Add(mustService(s.Sim, svc.FrontEndSpec(fmt.Sprintf("FE-%03d", i+1), 8000+i, dep), h))
	}
	// Everything starts; startup completes within the first minutes.
	for _, sv := range mustOrder(s.Dir) {
		_ = sv.Start(nil)
	}
	s.Sim.RunUntil(10 * simclock.Minute)
}

func mustService(sim *simclock.Sim, spec svc.Spec, h *cluster.Host) *svc.Service {
	sv, err := svc.New(sim, spec, h)
	if err != nil {
		panic(err) // specs are ours; failure is a programming error
	}
	return sv
}

func mustOrder(dir *svc.Directory) []*svc.Service {
	order, err := dir.StartOrder()
	if err != nil {
		panic(err)
	}
	return order
}

func (s *Site) buildLSF() {
	s.LSF = lsf.NewCluster(s.Sim, s.Dir)
	for _, name := range s.dbServices {
		sv := s.Dir.Get(name)
		// The site configured "a finite number of scheduled jobs per
		// database server": scale slots with machine size.
		s.LSF.SetSlotLimit(name, sv.Host.Model.CPUs/2+2)
	}
	cfg := workload.DefaultConfig()
	// Scale offered load to the site size.
	scale := float64(s.Spec.DatabaseHosts) / 100
	cfg.PeakAnalysts = int(float64(cfg.PeakAnalysts) * scale)
	cfg.DayJobsPerHour *= scale
	cfg.OvernightJobs = int(float64(cfg.OvernightJobs) * scale)
	if cfg.OvernightJobs < 2 {
		cfg.OvernightJobs = 2
	}
	if s.Opts.Workload != nil {
		cfg = *s.Opts.Workload
	}
	s.Gen = workload.New(s.Sim, cfg, s.DC, s.Dir, s.LSF, s.dbServices)
}

// Run starts the scenario machinery (on first call) and advances the
// simulation until the given absolute time.
func (s *Site) Run(until simclock.Time) {
	if !s.started {
		s.started = true
		s.Gen.Start()
		switch s.Opts.Mode {
		case ModeManual:
			s.deployManual()
		case ModeAgents:
			s.deployAgents()
		}
		s.Campaign = faultinject.NewCampaign(s.Sim, s.inject)
		s.Campaign.Start(s.faultSpecs())
	}
	s.Sim.RunUntil(until)
}

// deployManual installs the before-year operations: BMC-style monitors on
// database hosts feeding operator consoles.
func (s *Site) deployManual() {
	for _, h := range s.DC.ByRole(cluster.RoleDatabase) {
		s.Monitors = append(s.Monitors, baseline.Install(
			s.Sim, h, baseline.DefaultFootprint(), s.Bus, "noc-console",
			5*simclock.Minute, s.Dir))
	}
}

// deployAgents installs the after-year operations: intelliagents on every
// host, administration pair, shared pool, DGSPL loop and batch rescue.
func (s *Site) deployAgents() {
	// Administration hosts and shared NFS pool.
	admin1 := cluster.NewHost(s.Sim, "admin1", "10.1.0.1", cluster.ModelE450, cluster.RoleAdmin, s.Spec.Name, s.Spec.Geo)
	admin2 := cluster.NewHost(s.Sim, "admin2", "10.1.0.2", cluster.ModelE450, cluster.RoleAdmin, s.Spec.Name, s.Spec.Geo)
	s.DC.Add(admin1)
	s.DC.Add(admin2)
	s.attach(admin1)
	s.attach(admin2)
	issl := s.buildISSL()
	adminLSF := s.LSF
	if s.Opts.NoBatchRescue {
		adminLSF = nil
	}
	pair, err := adminsrv.New(adminsrv.Config{
		Sim: s.Sim, Primary: admin1, Standby: admin2, Pool: fsim.NewVolume(),
		Networks: s.networks(), Dir: s.Dir, LSF: adminLSF,
		Registry: s.Registry, Notify: s.Bus, ISSL: issl,
		OncallEmail: "oncall@" + s.Spec.Name, AgentPeriod: s.Opts.CronPeriod,
	})
	if err != nil {
		panic(err)
	}
	s.Admin = pair

	if s.Opts.BaselineMonitors {
		s.deployManual()
	}

	bridge := &agents.RegistryBridge{Reg: s.Registry}
	rng := s.Sim.Rand().Fork(0xa9e0)
	for _, h := range s.DC.Hosts() {
		if h.Role == cluster.RoleAdmin {
			continue
		}
		s.deployHostAgents(h, bridge, pair, rng)
	}
}

func (s *Site) networks() []*netsim.Network {
	if s.Private != nil {
		return []*netsim.Network{s.Private, s.Public}
	}
	return []*netsim.Network{s.Public}
}

// deployHostAgents installs the selected agent set on one host, phased
// randomly within the cron period so the site's agents don't all wake at
// the same instant.
func (s *Site) deployHostAgents(h *cluster.Host, bridge *agents.RegistryBridge,
	pair *adminsrv.Pair, rng *simclock.Rand) {
	router := netsim.NewRouter(s.networks()...)
	baseCfg := func() agent.Config {
		return agent.Config{
			Host:       h,
			Services:   s.Dir,
			Notify:     s.Bus,
			AdminEmail: "oncall@" + s.Spec.Name,
			Detected:   bridge.Detected(h.Name),
			Repaired:   bridge.Repaired(h.Name),
			Report: func(kind, payload string) {
				_, _ = router.Send(netsim.Message{From: h.Name, To: adminsrv.VIP, Kind: kind, Payload: payload})
			},
		}
	}
	add := func(a *agent.Agent, err error) {
		if err != nil {
			panic(err)
		}
		s.Agents = append(s.Agents, a)
		a.Schedule(s.Sim, rng.UniformDuration(0, s.Opts.CronPeriod), s.Opts.CronPeriod)
		pair.Watch(h, a.Name())
	}
	for _, sv := range s.Dir.OnHost(h.Name) {
		add(agents.NewServiceAgent(baseCfg(), sv))
	}
	add(agents.NewStatusAgent(baseCfg()))
	add(agents.NewPerformanceAgent(baseCfg(), agents.PerfConfig{}))
	add(agents.NewNetworkAgent(baseCfg(), nil, s.networks()...))
	if s.Opts.AgentSet == AgentsFull {
		add(agents.NewCPUAgent(baseCfg(), nil))
		add(agents.NewMemoryAgent(baseCfg(), nil))
		add(agents.NewDiskAgent(baseCfg(), nil))
		add(agents.NewHardwareAgent(baseCfg()))
		for _, sv := range s.Dir.OnHost(h.Name) {
			switch sv.Spec.Kind {
			case svc.KindOracle, svc.KindSybase:
				add(agents.NewDatabaseAgent(baseCfg(), sv, nil))
			case svc.KindFront:
				// The paper runs the end-to-end dummy transaction every
				// 15–30 minutes; schedule accordingly rather than at the
				// cron period.
				a, err := agents.NewEndToEndAgent(baseCfg(), sv, 2*simclock.Minute)
				if err != nil {
					panic(err)
				}
				s.Agents = append(s.Agents, a)
				a.Schedule(s.Sim, rng.UniformDuration(0, 15*simclock.Minute), 20*simclock.Minute)
				pair.Watch(h, a.Name())
			}
		}
	}
}

// buildISSL compiles the manually-maintained index from the site spec.
// Sites larger than the ISSL capacity keep the first 200 entries, exactly
// the maintenance headache the paper concedes ("manually updated").
func (s *Site) buildISSL() *ontology.ISSL {
	issl := &ontology.ISSL{}
	for _, h := range s.DC.Hosts() {
		var names []string
		for _, sv := range s.Dir.OnHost(h.Name) {
			names = append(names, sv.Spec.Name)
		}
		if err := issl.Add(ontology.ISSLEntry{Server: h.Name, IP: h.IP, Services: names}); err != nil {
			break
		}
	}
	return issl
}

// wireRepairPipeline connects first detections to the human repair path
// for faults agents cannot fix (all faults, in manual mode). A repair that
// cannot complete yet — typically a service fix blocked behind a dead host
// — is retried until it takes: the on-call team does not go home with a
// ticket open.
func (s *Site) wireRepairPipeline() {
	var attempt func(f *faultinject.Fault, delay simclock.Time)
	attempt = func(f *faultinject.Fault, delay simclock.Time) {
		s.Sim.After(delay, "manual-repair:"+f.Aspect, func(now2 simclock.Time) {
			if !s.Registry.ResolveFault(f, now2, "oncall-admin") && !f.Incident.Resolved {
				attempt(f, s.Sim.Rand().Jitter(2*simclock.Hour, 0.5))
			}
		})
	}
	s.Registry.OnDetected = func(f *faultinject.Fault, now simclock.Time) {
		if s.Opts.Mode == ModeAgents && !f.HumanOnly {
			return // the agents own this repair
		}
		attempt(f, s.Team.RepairDelay(f.Category))
	}
}
