// Package qoscluster is the public face of the reproduction of Corsava &
// Getov, "Improving Quality of Service in Application Clusters" (IPDPS'03):
// it assembles a simulated Unix application cluster — hosts, services, LSF
// batch tier, private agent network, workload and fault processes — and
// runs it either under the paper's manual operations (BMC-style monitoring
// plus human operators) or under the paper's contribution (intelliagents
// coordinated by an administration-server pair).
//
// Sites are declared as data: a Topology lists tiers of hosts with their
// hardware mix and service templates, and NewSite layers functional
// options over it. The typical flow:
//
//	site, err := qoscluster.NewSite(qoscluster.SmallTopology(),
//		qoscluster.WithSeed(1), qoscluster.WithMode(qoscluster.ModeAgents))
//	if err != nil { ... }
//	if err := site.Run(30 * simclock.Day); err != nil { ... }
//	fmt.Println(site.Report().Format())
//
// PaperTopology, SmallTopology, WebFarmTopology and ComputeFarmTopology
// are registered under the names "paper", "small", "webfarm" and
// "computefarm"; RegisterTopology and LoadTopology add custom sites (in
// Go or from JSON) that scenarios and campaigns then select by name.
package qoscluster

// SiteSpec sizes a paper-shaped datacentre.
//
// Deprecated: SiteSpec predates the declarative Topology API and only
// describes the paper's fixed three-tier shape. Declare a Topology (or
// start from PaperTopology/SmallTopology) and use NewSite instead.
type SiteSpec struct {
	Name string
	Geo  string
	Seed uint64
	// Host counts per role. The paper's site ran 100 database, 55
	// transaction and 60 front-end servers.
	DatabaseHosts    int
	TransactionHosts int
	FrontEndHosts    int
}

// PaperSite returns the full-size evaluation site spec.
//
// Deprecated: use PaperTopology with NewSite and WithSeed.
func PaperSite(seed uint64) SiteSpec {
	return SiteSpec{Name: "london-dc1", Geo: "UK", Seed: seed,
		DatabaseHosts: 100, TransactionHosts: 55, FrontEndHosts: 60}
}

// SmallSite returns a scaled site spec for long simulations.
//
// Deprecated: use SmallTopology with NewSite and WithSeed.
func SmallSite(seed uint64) SiteSpec {
	return SiteSpec{Name: "london-dc1", Geo: "UK", Seed: seed,
		DatabaseHosts: 6, TransactionHosts: 2, FrontEndHosts: 3}
}

// TopologyFromSpec converts a legacy SiteSpec into the equivalent
// paper-shaped Topology: an Oracle/Sybase+LSF database tier, a feed
// transaction tier and a database-pinned front-end tier at the spec's
// counts, with the paper's hardware spread. Zero-count tiers are omitted.
func TopologyFromSpec(spec SiteSpec) Topology {
	return paperShaped(spec.Name, spec.Geo, spec.DatabaseHosts, spec.TransactionHosts, spec.FrontEndHosts)
}

// BuildSite assembles a site from a legacy SiteSpec; call Run to execute
// it. The spec's Seed overrides opts.Seed.
//
// Deprecated: BuildSite keeps one release of compatibility for the
// pre-topology constructor and panics on invalid input where NewSite
// returns an error. New code should declare a Topology and call NewSite.
func BuildSite(spec SiteSpec, opts Options) *Site {
	opts.Seed = spec.Seed
	s, err := newSite(TopologyFromSpec(spec), opts)
	if err != nil {
		panic(err)
	}
	return s
}
