package qoscluster

import (
	"fmt"

	"repro/internal/adminsrv"
	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/heal"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// DefaultFaultSpecs returns the paper-calibrated fault campaign: category
// arrival rates chosen so that one simulated year under ModeManual
// reproduces the Figure-2 "before" downtime breakdown (≈550 h total,
// dominated by databases crashing mid-job), given the operator timing model
// the paper reports. The same campaign runs unchanged in ModeAgents — the
// "after" column is earned, not configured.
func DefaultFaultSpecs() []faultinject.Spec {
	day := simclock.Day
	return []faultinject.Spec{
		{Category: metrics.CatMidCrash, MeanInterarrival: 19 * day, Window: faultinject.Overnight},
		{Category: metrics.CatHuman, MeanInterarrival: 21 * day, Window: faultinject.Daytime},
		{Category: metrics.CatPerformance, MeanInterarrival: 26 * day, Window: faultinject.Daytime},
		{Category: metrics.CatFrontEnd, MeanInterarrival: 25 * day, Window: faultinject.Daytime},
		{Category: metrics.CatLSF, MeanInterarrival: 42 * day, Window: faultinject.Daytime},
		{Category: metrics.CatFirewallNet, MeanInterarrival: 100 * day, Window: faultinject.Daytime},
		{Category: metrics.CatHardware, MeanInterarrival: 500 * day, Window: faultinject.AnyTime},
		{Category: metrics.CatCompletelyDown, MeanInterarrival: 182 * day, Window: faultinject.Daytime},
	}
}

func (s *Site) faultSpecs() []faultinject.Spec {
	if s.Opts.Faults != nil {
		return s.Opts.Faults
	}
	return DefaultFaultSpecs()
}

// inject performs one category's concrete breakage and registers the live
// fault. In ModeManual the operator detection clock starts here; in
// ModeAgents detection is whatever the agents (or the admin sweep) achieve.
func (s *Site) inject(cat metrics.Category, now simclock.Time) {
	var f *faultinject.Fault
	switch cat {
	case metrics.CatMidCrash:
		f = s.injectMidCrash(now)
	case metrics.CatHuman:
		f = s.injectHumanError(now)
	case metrics.CatPerformance:
		f = s.injectPerformance(now)
	case metrics.CatFrontEnd:
		f = s.injectFrontEnd(now)
	case metrics.CatLSF:
		f = s.injectLSF(now)
	case metrics.CatFirewallNet:
		f = s.injectFirewallNet(now)
	case metrics.CatHardware:
		f = s.injectHardware(now)
	case metrics.CatCompletelyDown:
		f = s.injectCompletelyDown(now)
	}
	if f == nil {
		return // no eligible target right now; the campaign will be back
	}
	if s.Opts.Mode == ModeManual {
		// Without agents, nothing notices until a human does.
		delay := s.Team.DetectionDelay(now)
		s.Sim.After(delay, "manual-detect:"+f.Aspect, func(now2 simclock.Time) {
			s.Registry.DetectFault(f, now2, "operator")
		})
	}
}

// pickService returns a running service of one of the given kinds with no
// open fault, or nil.
func (s *Site) pickService(rng *simclock.Rand, kinds ...svc.Kind) *svc.Service {
	var cands []*svc.Service
	for _, k := range kinds {
		for _, sv := range s.Dir.ByKind(k) {
			if sv.Running() && s.Registry.Find(sv.Host.Name, agents.ServiceAspect(sv.Spec.Name)) == nil {
				cands = append(cands, sv)
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[rng.Intn(len(cands))]
}

// injectMidCrash crashes a database under batch load, failing its jobs —
// the paper's dominant downtime source ("large database jobs scheduled to
// run overnight would frequently crash databases").
func (s *Site) injectMidCrash(now simclock.Time) *faultinject.Fault {
	rng := s.Sim.Rand()
	// Prefer a database currently running jobs.
	var busy, any []*svc.Service
	for _, name := range s.dbServices {
		sv := s.Dir.Get(name)
		if sv == nil || !sv.Running() || s.Registry.Find(sv.Host.Name, agents.ServiceAspect(name)) != nil {
			continue
		}
		any = append(any, sv)
		if s.LSF.RunningOn(name) > 0 {
			busy = append(busy, sv)
		}
	}
	pool := busy
	if len(pool) == 0 {
		pool = any
	}
	if len(pool) == 0 {
		return nil
	}
	sv := pool[rng.Intn(len(pool))]
	sv.Crash()
	s.LSF.FailJobsOn(sv.Spec.Name, "database crashed mid-job")
	return s.Registry.Add(metrics.CatMidCrash, sv.Host.Name, agents.ServiceAspect(sv.Spec.Name),
		fmt.Sprintf("%s crashed under batch load", sv.Spec.Name), false, now,
		heal.EnsureServiceRunning(s.Sim, sv))
}

// injectHumanError breaks a service through a bad manual change: the
// service ends up stopped (wrong config pushed, wrong process killed).
func (s *Site) injectHumanError(now simclock.Time) *faultinject.Fault {
	sv := s.pickService(s.Sim.Rand(), svc.KindOracle, svc.KindSybase, svc.KindWeb, svc.KindFront, svc.KindFeed)
	if sv == nil {
		return nil
	}
	sv.Stop()
	return s.Registry.Add(metrics.CatHuman, sv.Host.Name, agents.ServiceAspect(sv.Spec.Name),
		fmt.Sprintf("%s stopped by administrator mistake", sv.Spec.Name), false, now,
		heal.EnsureServiceRunning(s.Sim, sv))
}

// injectPerformance starts a runaway analyst process — a CPU hog or a
// memory leaker — on a database or transaction host.
func (s *Site) injectPerformance(now simclock.Time) *faultinject.Fault {
	rng := s.Sim.Rand()
	hosts := append(s.DC.ByRole(cluster.RoleDatabase), s.DC.ByRole(cluster.RoleTransaction)...)
	var up []*cluster.Host
	for _, h := range hosts {
		if h.Up() && s.Registry.Find(h.Name, agents.AspectHog) == nil &&
			s.Registry.Find(h.Name, agents.AspectLeak) == nil {
			up = append(up, h)
		}
	}
	if len(up) == 0 {
		return nil
	}
	h := up[rng.Intn(len(up))]
	if rng.Bool(0.5) {
		p := h.Spawn("hog_simulation", fmt.Sprintf("analyst%d", rng.Intn(50)+1), "runaway model sweep",
			float64(h.Model.CPUs), 256)
		if p == nil {
			return nil
		}
		pid := p.PID
		return s.Registry.Add(metrics.CatPerformance, h.Name, agents.AspectHog,
			fmt.Sprintf("runaway process %d saturating %s", pid, h.Name), false, now,
			func(simclock.Time) bool { h.Kill(pid); return true })
	}
	p := h.Spawn("leak_modelcache", fmt.Sprintf("analyst%d", rng.Intn(50)+1), "leaking cache",
		0.2, 0.85*float64(h.Model.MemoryMB))
	if p == nil {
		return nil
	}
	pid := p.PID
	return s.Registry.Add(metrics.CatPerformance, h.Name, agents.AspectLeak,
		fmt.Sprintf("leaking process %d exhausting memory on %s", pid, h.Name), false, now,
		func(simclock.Time) bool { h.Kill(pid); return true })
}

// injectFrontEnd crashes or hangs a front-end application service.
func (s *Site) injectFrontEnd(now simclock.Time) *faultinject.Fault {
	sv := s.pickService(s.Sim.Rand(), svc.KindFront)
	if sv == nil {
		return nil
	}
	how := "crashed"
	if s.Sim.Rand().Bool(0.3) {
		sv.Hang()
		how = "hung (latent error)"
	} else {
		sv.Crash()
	}
	return s.Registry.Add(metrics.CatFrontEnd, sv.Host.Name, agents.ServiceAspect(sv.Spec.Name),
		fmt.Sprintf("front-end %s %s", sv.Spec.Name, how), false, now,
		heal.EnsureServiceRunning(s.Sim, sv))
}

// injectLSF crashes a host's LSF daemons ("very often they would crash").
func (s *Site) injectLSF(now simclock.Time) *faultinject.Fault {
	sv := s.pickService(s.Sim.Rand(), svc.KindLSF)
	if sv == nil {
		return nil
	}
	sv.Crash()
	return s.Registry.Add(metrics.CatLSF, sv.Host.Name, agents.ServiceAspect(sv.Spec.Name),
		fmt.Sprintf("LSF daemons on %s crashed", sv.Host.Name), false, now,
		heal.EnsureServiceRunning(s.Sim, sv))
}

// injectFirewallNet breaks a host's public-LAN connectivity (firewall
// misconfiguration or network error). Agents detect but cannot repair
// these (the paper's stated limitation).
func (s *Site) injectFirewallNet(now simclock.Time) *faultinject.Fault {
	rng := s.Sim.Rand()
	hosts := s.DC.Hosts()
	var up []*cluster.Host
	for _, h := range hosts {
		if h.Up() && h.Role != cluster.RoleAdmin && s.Registry.Find(h.Name, agents.AspectNet) == nil {
			up = append(up, h)
		}
	}
	if len(up) == 0 {
		return nil
	}
	h := up[rng.Intn(len(up))]
	s.Public.SetLink(h.Name, false)
	h.InjectNICErrors(50)
	return s.Registry.Add(metrics.CatFirewallNet, h.Name, agents.AspectNet,
		fmt.Sprintf("firewall/network error isolates %s from the public LAN", h.Name), true, now,
		func(simclock.Time) bool {
			s.Public.SetLink(h.Name, true)
			h.ClearNICErrors()
			return true
		})
}

// injectHardware kills a host outright: boards, power, backplane. Physical
// repair required; nothing on the box can help.
func (s *Site) injectHardware(now simclock.Time) *faultinject.Fault {
	rng := s.Sim.Rand()
	var up []*cluster.Host
	for _, h := range s.DC.Hosts() {
		if h.Up() && h.Role != cluster.RoleAdmin {
			up = append(up, h)
		}
	}
	if len(up) == 0 {
		return nil
	}
	h := up[rng.Intn(len(up))]
	affected := s.Dir.OnHost(h.Name)
	h.HardwareFail()
	for _, sv := range affected {
		s.LSF.FailJobsOn(sv.Spec.Name, "execution host hardware failure")
	}
	ensure := heal.EnsureHostUp(s.Sim, h, affected)
	aspect := adminsrv.HostAspect(h.Name)
	return s.Registry.Add(metrics.CatHardware, h.Name, aspect,
		fmt.Sprintf("hardware failure takes %s down", h.Name), true, now,
		func(now2 simclock.Time) bool {
			if !ensure(now2) {
				return false
			}
			// Restoring the box also cures any faults that were pending on
			// it (a crashed service waiting for its host, a hog that died
			// with the machine); close their incidents with the same
			// engineer visit, or they would accrue downtime unobserved.
			for _, other := range s.Registry.OpenOn(h.Name) {
				if other.Aspect != aspect {
					s.Registry.ResolveFault(other, now2, "oncall-admin")
				}
			}
			return true
		})
}

// injectCompletelyDown corrupts a service so that restarts fail until a
// human repairs the damage ("corruptions, bugs etc").
func (s *Site) injectCompletelyDown(now simclock.Time) *faultinject.Fault {
	sv := s.pickService(s.Sim.Rand(), svc.KindOracle, svc.KindSybase, svc.KindFront, svc.KindFeed)
	if sv == nil {
		return nil
	}
	sv.Crash()
	sv.Wedged = true
	ensure := heal.EnsureServiceRunning(s.Sim, sv)
	return s.Registry.Add(metrics.CatCompletelyDown, sv.Host.Name, agents.ServiceAspect(sv.Spec.Name),
		fmt.Sprintf("%s completely unavailable (corruption)", sv.Spec.Name), true, now,
		func(now2 simclock.Time) bool {
			sv.Wedged = false
			return ensure(now2)
		})
}
