package qoscluster

import (
	"fmt"
	"slices"

	"repro/internal/adminsrv"
	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/heal"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/svc"
)

// DefaultFaultSpecs returns the paper-calibrated fault campaign: category
// arrival rates chosen so that one simulated year under ModeManual
// reproduces the Figure-2 "before" downtime breakdown (≈550 h total,
// dominated by databases crashing mid-job), given the operator timing model
// the paper reports. The same campaign runs unchanged in ModeAgents — the
// "after" column is earned, not configured.
func DefaultFaultSpecs() []faultinject.Spec {
	day := simclock.Day
	return []faultinject.Spec{
		{Category: metrics.CatMidCrash, MeanInterarrival: 19 * day, Window: faultinject.Overnight},
		{Category: metrics.CatHuman, MeanInterarrival: 21 * day, Window: faultinject.Daytime},
		{Category: metrics.CatPerformance, MeanInterarrival: 26 * day, Window: faultinject.Daytime},
		{Category: metrics.CatFrontEnd, MeanInterarrival: 25 * day, Window: faultinject.Daytime},
		{Category: metrics.CatLSF, MeanInterarrival: 42 * day, Window: faultinject.Daytime},
		{Category: metrics.CatFirewallNet, MeanInterarrival: 100 * day, Window: faultinject.Daytime},
		{Category: metrics.CatHardware, MeanInterarrival: 500 * day, Window: faultinject.AnyTime},
		{Category: metrics.CatCompletelyDown, MeanInterarrival: 182 * day, Window: faultinject.Daytime},
	}
}

// faultSpecs resolves the campaign the site runs: the Options override
// (or the paper-calibrated default), with per-tier fault domains attached
// when the topology or options declare any. Specs whose Domains a caller
// set explicitly are respected as given.
func (s *Site) faultSpecs() []faultinject.Spec {
	specs := s.Opts.Faults
	if specs == nil {
		specs = DefaultFaultSpecs()
	}
	if !s.hasTierFaultDomains() {
		return specs
	}
	out := make([]faultinject.Spec, len(specs))
	copy(out, specs)
	for i := range out {
		if out[i].Domains == nil {
			out[i].Domains = s.faultDomains(out[i].Category)
		}
	}
	return out
}

// hasTierFaultDomains reports whether any tier-scoped fault behaviour is
// configured; untiered sites keep the site-global campaign byte-identical
// to the pre-domain path.
func (s *Site) hasTierFaultDomains() bool {
	if len(s.Opts.TierFaultScale) > 0 {
		return true
	}
	for _, tier := range s.Topo.Tiers {
		if s.resolvedFaults(tier) != nil {
			return true
		}
	}
	return false
}

// faultDomains compiles one category's domain list: every topology tier,
// with its resolved weight (eligibility gate, then the Only restriction,
// then the category's rate multiplier, then the fault-intensity scale)
// and blackout windows. Tiers that cannot host the category's breakage
// at all get weight 0 — otherwise their share of the arrivals would
// silently no-op in the injector, diluting the category's effective rate
// below what the weights say. Weights are therefore *relative shares*
// over the eligible tiers; the site-wide arrival rate is the spec's.
func (s *Site) faultDomains(cat metrics.Category) []faultinject.Domain {
	out := make([]faultinject.Domain, 0, len(s.Topo.Tiers))
	for _, tier := range s.Topo.Tiers {
		d := faultinject.Domain{Tier: tier.Name}
		if tierEligible(tier, cat) {
			d.Weight = 1
		}
		if fs := s.resolvedFaults(tier); fs != nil {
			if len(fs.Only) > 0 && !slices.Contains(fs.Only, string(cat)) {
				d.Weight = 0
			} else if r, ok := fs.Rates[string(cat)]; ok && d.Weight > 0 {
				d.Weight = r
			}
			for _, b := range fs.Blackouts {
				d.Blackouts = append(d.Blackouts, faultinject.Blackout{From: b.FromHour, To: b.ToHour})
			}
		}
		if scale, ok := s.Opts.TierFaultScale[tier.Name]; ok {
			d.Weight *= scale
		}
		out = append(out, d)
	}
	return out
}

// tierDeploysKind reports whether the tier's templates put at least one
// service instance of one of the given kinds on some host.
func tierDeploysKind(tier Tier, kinds ...svc.Kind) bool {
	for _, st := range tier.Services {
		if !slices.Contains(kinds, svc.Kind(st.Kind)) {
			continue
		}
		for i := 0; i < tier.Hosts; i++ {
			if st.appliesTo(i) {
				return true
			}
		}
	}
	return false
}

// tierDeploysTarget reports whether the tier expands to at least one
// LSF-target service.
func tierDeploysTarget(tier Tier) bool {
	for _, st := range tier.Services {
		if !st.LSFTarget {
			continue
		}
		for i := 0; i < tier.Hosts; i++ {
			if st.appliesTo(i) {
				return true
			}
		}
	}
	return false
}

// tierEligible reports whether the tier has anything the category's
// injector can break — it mirrors each injector's target selection.
func tierEligible(tier Tier, cat metrics.Category) bool {
	switch cat {
	case metrics.CatMidCrash:
		return tierDeploysTarget(tier)
	case metrics.CatHuman:
		return tierDeploysKind(tier, svc.KindOracle, svc.KindSybase, svc.KindWeb, svc.KindFront, svc.KindFeed)
	case metrics.CatPerformance:
		return tier.Role == "database" || tier.Role == "transaction"
	case metrics.CatFrontEnd:
		return tierDeploysKind(tier, svc.KindFront)
	case metrics.CatLSF:
		return tierDeploysKind(tier, svc.KindLSF)
	case metrics.CatCompletelyDown:
		return tierDeploysKind(tier, svc.KindOracle, svc.KindSybase, svc.KindFront, svc.KindFeed)
	default:
		// Firewall/network and hardware errors hit hosts, not services:
		// every tier qualifies.
		return true
	}
}

// inTier reports whether a host belongs to the fault domain; a blank
// domain is site-wide.
func (s *Site) inTier(host, tier string) bool {
	return tier == "" || s.tierOf[host] == tier
}

// inject performs one category's concrete breakage — confined to the
// given tier when the arrival is domain-scoped, site-wide when tier is
// "" — and registers the live fault. In ModeManual the operator detection
// clock starts here; in ModeAgents detection is whatever the agents (or
// the admin sweep) achieve.
func (s *Site) inject(cat metrics.Category, tier string, now simclock.Time) {
	var f *faultinject.Fault
	switch cat {
	case metrics.CatMidCrash:
		f = s.injectMidCrash(tier, now)
	case metrics.CatHuman:
		f = s.injectHumanError(tier, now)
	case metrics.CatPerformance:
		f = s.injectPerformance(tier, now)
	case metrics.CatFrontEnd:
		f = s.injectFrontEnd(tier, now)
	case metrics.CatLSF:
		f = s.injectLSF(tier, now)
	case metrics.CatFirewallNet:
		f = s.injectFirewallNet(tier, now)
	case metrics.CatHardware:
		f = s.injectHardware(tier, now)
	case metrics.CatCompletelyDown:
		f = s.injectCompletelyDown(tier, now)
	}
	if f == nil {
		return // no eligible target right now; the campaign will be back
	}
	if s.Opts.Mode == ModeManual {
		// Without agents, nothing notices until a human does. PageDelay is
		// DetectionDelay plus a trace event — same draw either way.
		delay := s.Team.PageDelay(now, cat, f.Host, f.Aspect)
		s.Sim.After(delay, "manual-detect:"+f.Aspect, func(now2 simclock.Time) {
			s.Registry.DetectFault(f, now2, "operator")
		})
	}
}

// pickService returns a running service of one of the given kinds in the
// fault domain with no open fault, or nil. A blank tier means site-wide;
// the filter order keeps candidate enumeration (and so the random draw)
// identical to the pre-domain path for site-wide arrivals.
func (s *Site) pickService(rng *simclock.Rand, tier string, kinds ...svc.Kind) *svc.Service {
	var cands []*svc.Service
	for _, k := range kinds {
		for _, sv := range s.Dir.ByKind(k) {
			if sv.Running() && s.inTier(sv.Host.Name, tier) &&
				s.Registry.Find(sv.Host.Name, agents.ServiceAspect(sv.Spec.Name)) == nil {
				cands = append(cands, sv)
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[rng.Intn(len(cands))]
}

// injectMidCrash crashes a database under batch load, failing its jobs —
// the paper's dominant downtime source ("large database jobs scheduled to
// run overnight would frequently crash databases").
func (s *Site) injectMidCrash(tier string, now simclock.Time) *faultinject.Fault {
	rng := s.Sim.Rand()
	// Prefer a database currently running jobs.
	var busy, any []*svc.Service
	for _, name := range s.dbServices {
		sv := s.Dir.Get(name)
		if sv == nil || !sv.Running() || !s.inTier(sv.Host.Name, tier) ||
			s.Registry.Find(sv.Host.Name, agents.ServiceAspect(name)) != nil {
			continue
		}
		any = append(any, sv)
		if s.LSF.RunningOn(name) > 0 {
			busy = append(busy, sv)
		}
	}
	pool := busy
	if len(pool) == 0 {
		pool = any
	}
	if len(pool) == 0 {
		return nil
	}
	sv := pool[rng.Intn(len(pool))]
	sv.Crash()
	s.LSF.FailJobsOn(sv.Spec.Name, "database crashed mid-job")
	return s.Registry.Add(metrics.CatMidCrash, sv.Host.Name, agents.ServiceAspect(sv.Spec.Name),
		fmt.Sprintf("%s crashed under batch load", sv.Spec.Name), false, now,
		heal.EnsureServiceRunning(s.Sim, sv))
}

// injectHumanError breaks a service through a bad manual change: the
// service ends up stopped (wrong config pushed, wrong process killed).
func (s *Site) injectHumanError(tier string, now simclock.Time) *faultinject.Fault {
	sv := s.pickService(s.Sim.Rand(), tier, svc.KindOracle, svc.KindSybase, svc.KindWeb, svc.KindFront, svc.KindFeed)
	if sv == nil {
		return nil
	}
	sv.Stop()
	return s.Registry.Add(metrics.CatHuman, sv.Host.Name, agents.ServiceAspect(sv.Spec.Name),
		fmt.Sprintf("%s stopped by administrator mistake", sv.Spec.Name), false, now,
		heal.EnsureServiceRunning(s.Sim, sv))
}

// injectPerformance starts a runaway analyst process — a CPU hog or a
// memory leaker — on a database or transaction host.
func (s *Site) injectPerformance(tier string, now simclock.Time) *faultinject.Fault {
	rng := s.Sim.Rand()
	hosts := append(s.DC.ByRole(cluster.RoleDatabase), s.DC.ByRole(cluster.RoleTransaction)...)
	var up []*cluster.Host
	for _, h := range hosts {
		if h.Up() && s.inTier(h.Name, tier) && s.Registry.Find(h.Name, agents.AspectHog) == nil &&
			s.Registry.Find(h.Name, agents.AspectLeak) == nil {
			up = append(up, h)
		}
	}
	if len(up) == 0 {
		return nil
	}
	h := up[rng.Intn(len(up))]
	if rng.Bool(0.5) {
		p := h.Spawn("hog_simulation", fmt.Sprintf("analyst%d", rng.Intn(50)+1), "runaway model sweep",
			float64(h.Model.CPUs), 256)
		if p == nil {
			return nil
		}
		pid := p.PID
		return s.Registry.Add(metrics.CatPerformance, h.Name, agents.AspectHog,
			fmt.Sprintf("runaway process %d saturating %s", pid, h.Name), false, now,
			func(simclock.Time) bool { h.Kill(pid); return true })
	}
	p := h.Spawn("leak_modelcache", fmt.Sprintf("analyst%d", rng.Intn(50)+1), "leaking cache",
		0.2, 0.85*float64(h.Model.MemoryMB))
	if p == nil {
		return nil
	}
	pid := p.PID
	return s.Registry.Add(metrics.CatPerformance, h.Name, agents.AspectLeak,
		fmt.Sprintf("leaking process %d exhausting memory on %s", pid, h.Name), false, now,
		func(simclock.Time) bool { h.Kill(pid); return true })
}

// injectFrontEnd crashes or hangs a front-end application service.
func (s *Site) injectFrontEnd(tier string, now simclock.Time) *faultinject.Fault {
	sv := s.pickService(s.Sim.Rand(), tier, svc.KindFront)
	if sv == nil {
		return nil
	}
	how := "crashed"
	if s.Sim.Rand().Bool(0.3) {
		sv.Hang()
		how = "hung (latent error)"
	} else {
		sv.Crash()
	}
	return s.Registry.Add(metrics.CatFrontEnd, sv.Host.Name, agents.ServiceAspect(sv.Spec.Name),
		fmt.Sprintf("front-end %s %s", sv.Spec.Name, how), false, now,
		heal.EnsureServiceRunning(s.Sim, sv))
}

// injectLSF crashes a host's LSF daemons ("very often they would crash").
func (s *Site) injectLSF(tier string, now simclock.Time) *faultinject.Fault {
	sv := s.pickService(s.Sim.Rand(), tier, svc.KindLSF)
	if sv == nil {
		return nil
	}
	sv.Crash()
	return s.Registry.Add(metrics.CatLSF, sv.Host.Name, agents.ServiceAspect(sv.Spec.Name),
		fmt.Sprintf("LSF daemons on %s crashed", sv.Host.Name), false, now,
		heal.EnsureServiceRunning(s.Sim, sv))
}

// injectFirewallNet breaks a host's public-LAN connectivity (firewall
// misconfiguration or network error). Agents detect but cannot repair
// these (the paper's stated limitation).
func (s *Site) injectFirewallNet(tier string, now simclock.Time) *faultinject.Fault {
	rng := s.Sim.Rand()
	hosts := s.DC.Hosts()
	var up []*cluster.Host
	for _, h := range hosts {
		if h.Up() && h.Role != cluster.RoleAdmin && s.inTier(h.Name, tier) &&
			s.Registry.Find(h.Name, agents.AspectNet) == nil {
			up = append(up, h)
		}
	}
	if len(up) == 0 {
		return nil
	}
	h := up[rng.Intn(len(up))]
	s.Public.SetLink(h.Name, false)
	h.InjectNICErrors(50)
	return s.Registry.Add(metrics.CatFirewallNet, h.Name, agents.AspectNet,
		fmt.Sprintf("firewall/network error isolates %s from the public LAN", h.Name), true, now,
		func(simclock.Time) bool {
			s.Public.SetLink(h.Name, true)
			h.ClearNICErrors()
			return true
		})
}

// injectHardware kills a host outright: boards, power, backplane. Physical
// repair required; nothing on the box can help.
func (s *Site) injectHardware(tier string, now simclock.Time) *faultinject.Fault {
	rng := s.Sim.Rand()
	var up []*cluster.Host
	for _, h := range s.DC.Hosts() {
		if h.Up() && h.Role != cluster.RoleAdmin && s.inTier(h.Name, tier) {
			up = append(up, h)
		}
	}
	if len(up) == 0 {
		return nil
	}
	h := up[rng.Intn(len(up))]
	affected := s.Dir.OnHost(h.Name)
	h.HardwareFail()
	for _, sv := range affected {
		s.LSF.FailJobsOn(sv.Spec.Name, "execution host hardware failure")
	}
	ensure := heal.EnsureHostUp(s.Sim, h, affected)
	aspect := adminsrv.HostAspect(h.Name)
	return s.Registry.Add(metrics.CatHardware, h.Name, aspect,
		fmt.Sprintf("hardware failure takes %s down", h.Name), true, now,
		func(now2 simclock.Time) bool {
			if !ensure(now2) {
				return false
			}
			// Restoring the box also cures any faults that were pending on
			// it (a crashed service waiting for its host, a hog that died
			// with the machine); close their incidents with the same
			// engineer visit, or they would accrue downtime unobserved.
			for _, other := range s.Registry.OpenOn(h.Name) {
				if other.Aspect != aspect {
					s.Registry.ResolveFault(other, now2, "oncall-admin")
				}
			}
			return true
		})
}

// injectCompletelyDown corrupts a service so that restarts fail until a
// human repairs the damage ("corruptions, bugs etc").
func (s *Site) injectCompletelyDown(tier string, now simclock.Time) *faultinject.Fault {
	sv := s.pickService(s.Sim.Rand(), tier, svc.KindOracle, svc.KindSybase, svc.KindFront, svc.KindFeed)
	if sv == nil {
		return nil
	}
	sv.Crash()
	sv.Wedged = true
	ensure := heal.EnsureServiceRunning(s.Sim, sv)
	return s.Registry.Add(metrics.CatCompletelyDown, sv.Host.Name, agents.ServiceAspect(sv.Spec.Name),
		fmt.Sprintf("%s completely unavailable (corruption)", sv.Spec.Name), true, now,
		func(now2 simclock.Time) bool {
			sv.Wedged = false
			return ensure(now2)
		})
}
