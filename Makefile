# Local targets mirror CI (.github/workflows/ci.yml) exactly, so a green
# `make lint test-race bench campaign-smoke` locally means a green build.

GO ?= go
PKGS := ./...

# bash with pipefail so `go test | tee` recipes fail when the test does,
# not when tee does.
SHELL := /bin/bash -o pipefail

.PHONY: all build test test-race bench bench-agentday perf-proof megasite-seed golden-check lint staticcheck fmt campaign-smoke topology-smoke megasite-smoke shard-smoke agent-shard-smoke trace-smoke workload-smoke benchdiff clean

all: lint build test

build:
	$(GO) build $(PKGS)

# -shuffle=on randomises test order every run: campaign determinism (and
# everything else) must not depend on which test ran first.
test:
	$(GO) test -shuffle=on $(PKGS)

test-race:
	$(GO) test -race -shuffle=on -timeout 30m $(PKGS)

# One iteration of every benchmark: exercises each figure's hot path and
# prints its headline metric without burning CI minutes.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' $(PKGS)

# The perf-gate data points: the agent cron hot loop on the scaled and
# paper-size sites (untraced and with the decision-trace recorder on),
# the pooled-vs-fresh campaign trial pair, and the 10k-host megasite day,
# with -benchmem so scripts/benchdiff gates allocs/op alongside ns/op.
# Repeated (-count 3) so the best-of values compared are stable.
# BenchmarkAgentDay (tracing off) is the line the gate holds flat: the
# recorder must stay zero-cost when disabled.
BENCH_GATE := ^(BenchmarkAgentDay|BenchmarkAgentDayTraced|BenchmarkPaperAgentDay|BenchmarkAgentDaySlots|BenchmarkAgentDayShards|BenchmarkCampaignTrialReuse|BenchmarkCampaignTrialFresh|BenchmarkMegaSiteDay|BenchmarkMegaSiteDayShards)$$

bench-agentday:
	$(GO) test -bench '$(BENCH_GATE)' -benchtime 2x -count 3 -benchmem -run '^$$' . | tee bench-agentday.txt

# Speedup proofs against the checked-in seed artifacts: BenchmarkAgentDay
# must be at least 2x faster than the pre-optimisation engine
# (testdata/bench-agentday-seed.txt, recorded at the fast-path PR), and
# BenchmarkMegaSiteDay at least 2x faster than the per-service reference
# probe path (testdata/bench-megasite-seed.txt, recorded by
# `make megasite-seed` — an honest baseline, since no pre-probe engine
# could schedule a 10k-host site at all). Hardware-sensitive: meaningful
# on a machine comparable to the one that recorded the artifacts, so they
# are local targets, not CI gates.
#
# The third stanza proves the intra-trial shard engine: on a machine with
# >= 4 cores, BenchmarkMegaSiteDayShards (8 shards) must beat the serial
# BenchmarkMegaSiteDay recorded moments earlier in the same run by at
# least 1.5x — same build, same machine, so the ratio is pure shard
# speedup. benchdiff matches benchmarks by name, so the shard lines are
# renamed to the serial name for the comparison. On fewer cores the walk
# is serial anyway and the stanza skips with a message rather than
# fabricating a speedup a single core cannot deliver.
perf-proof:
	$(GO) test -bench '^BenchmarkAgentDay$$' -benchtime 2x -count 3 -benchmem -run '^$$' . | tee bench-proof.txt
	$(GO) run ./scripts/benchdiff -improvement 2 testdata/bench-agentday-seed.txt bench-proof.txt
	$(GO) test -bench '^BenchmarkMegaSiteDay$$' -benchtime 2x -count 3 -benchmem -run '^$$' . | tee bench-megasite-proof.txt
	$(GO) run ./scripts/benchdiff -improvement 2 testdata/bench-megasite-seed.txt bench-megasite-proof.txt
	@if [ "$$(nproc)" -ge 4 ]; then \
		$(GO) test -bench '^BenchmarkMegaSiteDayShards$$' -benchtime 2x -count 3 -benchmem -run '^$$' . | tee bench-megasite-shards-proof.txt && \
		sed 's/BenchmarkMegaSiteDayShards/BenchmarkMegaSiteDay/' bench-megasite-shards-proof.txt > bench-megasite-shards-renamed.txt && \
		$(GO) run ./scripts/benchdiff -improvement 1.5 bench-megasite-proof.txt bench-megasite-shards-renamed.txt; \
	else \
		echo "perf-proof: only $$(nproc) core(s); skipping the 8-shard speedup proof (needs a multi-core runner)"; \
	fi
	@if [ "$$(nproc)" -ge 4 ]; then \
		$(GO) test -bench '^BenchmarkAgentDaySlots$$' -benchtime 2x -count 3 -benchmem -run '^$$' . | tee bench-agent-slots-proof.txt && \
		$(GO) test -bench '^BenchmarkAgentDayShards$$' -benchtime 2x -count 3 -benchmem -run '^$$' . | tee bench-agent-shards-proof.txt && \
		sed 's/BenchmarkAgentDayShards/BenchmarkAgentDaySlots/' bench-agent-shards-proof.txt > bench-agent-shards-renamed.txt && \
		$(GO) run ./scripts/benchdiff -improvement 1.5 bench-agent-slots-proof.txt bench-agent-shards-renamed.txt; \
	else \
		echo "perf-proof: only $$(nproc) core(s); skipping the 8-shard agent speedup proof (needs a multi-core runner)"; \
	fi

# Re-record the megasite speedup baseline: BenchmarkMegaSiteDay with the
# probe engine forced onto its per-service reference path.
megasite-seed:
	MEGASITE_REFERENCE=1 $(GO) test -bench '^BenchmarkMegaSiteDay$$' -benchtime 2x -count 3 -benchmem -run '^$$' . | tee testdata/bench-megasite-seed.txt

# Regenerate the campaign goldens and fail on any diff against the
# checked-in testdata/campaign-golden-*.json — the CI step that keeps the
# byte-identity gate's expectations from silently going stale.
golden-check:
	$(GO) run ./scripts/campaigngolden
	git diff --exit-code -- testdata/campaign-golden-paper-manual.json \
		testdata/campaign-golden-paper-agents.json \
		testdata/campaign-golden-small-manual.json \
		testdata/campaign-golden-small-agents.json \
		testdata/campaign-golden-small-flashcrowd.json

# Short real campaigns whose JSON summaries feed the perf trajectory; CI
# uploads campaign-smoke.json and ablate-smoke.json as build artifacts.
campaign-smoke:
	$(GO) run ./cmd/qossim campaign -trials 4 -workers 4 -days 14 -seed 7 \
		-out campaign-smoke.json fig2
	$(GO) run ./cmd/qossim campaign -trials 2 -workers 4 -days 7 -seed 7 \
		-cron 5m,60m -out ablate-smoke.json -scenario ablate-cron

# Site-axis smoke: one campaign sweeping the paper site, the scaled site
# and the checked-in custom-topology JSON fixture, plus a single run
# driven straight off the fixture file, plus a campaign over the per-tier
# workload/fault-spec fixture sweeping the tier-fault-intensity axis.
topology-smoke:
	$(GO) run ./cmd/qossim campaign -trials 2 -workers 4 -days 2 -seed 7 \
		-site paper,small,testdata/topology-edge.json -out topology-smoke.json before
	$(GO) run ./cmd/qossim -days 2 -trials 2 -site testdata/topology-edge.json after
	$(GO) run ./cmd/qossim campaign -trials 2 -workers 4 -days 2 -seed 7 \
		-site testdata/topology-tiers.json -tierfaults ';cache=2' \
		-out tiers-smoke.json before

# Megasite smoke: one-seed manual-year run on the 10k-host site, proving
# datacentre scale works end to end through the CLI; CI uploads
# megasite-smoke.json alongside the other topology artifacts.
megasite-smoke:
	$(GO) run ./cmd/qossim campaign -trials 1 -workers 1 -days 2 -seed 7 \
		-site megasite -out megasite-smoke.json before

# Shard smoke: the megasite smoke run again at -shards 8. The sharded
# engine's determinism contract is that shards are an execution knob, not
# a model change, so the JSON must match megasite-smoke.json byte for
# byte; cmp enforces that across two separate qossim processes. CI
# uploads shard-smoke.json with the other artifacts.
shard-smoke: megasite-smoke
	$(GO) run ./cmd/qossim campaign -trials 1 -workers 1 -shards 8 -days 2 -seed 7 \
		-site megasite -out shard-smoke.json before
	cmp megasite-smoke.json shard-smoke.json

# Agent shard smoke: an agents-mode paper-site week with cron dispatch
# quantized onto 8 slots, run serial and again at -shards 8. At a fixed
# -agentslots the shard count is pure execution parallelism, so the two
# JSON records must match byte for byte; cmp enforces that across two
# separate qossim processes. CI uploads agent-shard-smoke.json with the
# other artifacts.
agent-shard-smoke:
	$(GO) run ./cmd/qossim campaign -trials 1 -workers 1 -days 7 -seed 7 \
		-site paper -agentslots 8 -out agent-serial-smoke.json after
	$(GO) run ./cmd/qossim campaign -trials 1 -workers 1 -shards 8 -days 7 -seed 7 \
		-site paper -agentslots 8 -out agent-shard-smoke.json after
	cmp agent-serial-smoke.json agent-shard-smoke.json

# Trace smoke: record a one-seed paper-site week with decision tracing,
# replay the trace (injections scripted from the file instead of the
# random processes), and cmp the replayed campaign JSON against the
# original byte for byte — the end-to-end record/replay determinism
# proof, across two separate qossim processes. CI uploads
# trace-smoke.jsonl with the other artifacts.
trace-smoke:
	$(GO) run ./cmd/qossim campaign -trials 1 -workers 1 -days 7 -seed 7 \
		-site paper -trace trace-smoke.jsonl -out trace-original.json after
	$(GO) run ./cmd/qossim replay -trace trace-smoke.jsonl -out trace-replay.json
	cmp trace-original.json trace-replay.json

# Workload smoke: a one-seed campaign driven by the checked-in
# flash-crowd workload spec, re-run at -workers 8. Spec-driven arrivals
# must be byte-identical at any worker count — cmp enforces that across
# two separate qossim processes. CI uploads workload-smoke.json with the
# other artifacts.
workload-smoke:
	$(GO) run ./cmd/qossim campaign -trials 4 -workers 1 -days 2 -seed 7 \
		-site small -workload testdata/workload-flashcrowd.json \
		-out workload-smoke.json before
	$(GO) run ./cmd/qossim campaign -trials 4 -workers 8 -days 2 -seed 7 \
		-site small -workload testdata/workload-flashcrowd.json \
		-out workload-smoke-w8.json before
	cmp workload-smoke.json workload-smoke-w8.json

# Compare two bench data points (fails on >20% ns/op regression):
#   make benchdiff OLD=prev/bench-agentday.txt NEW=bench-agentday.txt
benchdiff:
	$(GO) run ./scripts/benchdiff $(OLD) $(NEW)

lint: staticcheck
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet $(PKGS)

# staticcheck is optional locally (no network / no install required): the
# target runs it when present and says how to get it when not. CI always
# installs and runs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck $(PKGS); \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1 — the version CI pins)"; \
	fi

fmt:
	gofmt -w .

clean:
	rm -f campaign-smoke.json ablate-smoke.json topology-smoke.json tiers-smoke.json megasite-smoke.json shard-smoke.json agent-serial-smoke.json agent-shard-smoke.json trace-smoke.jsonl trace-original.json trace-replay.json workload-smoke.json workload-smoke-w8.json bench.txt bench-agentday.txt bench-proof.txt bench-megasite-proof.txt bench-megasite-shards-proof.txt bench-megasite-shards-renamed.txt bench-agent-slots-proof.txt bench-agent-shards-proof.txt bench-agent-shards-renamed.txt
