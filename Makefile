# Local targets mirror CI (.github/workflows/ci.yml) exactly, so a green
# `make lint test-race bench campaign-smoke` locally means a green build.

GO ?= go
PKGS := ./...

.PHONY: all build test test-race bench lint fmt campaign-smoke clean

all: lint build test

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

test-race:
	$(GO) test -race -timeout 30m $(PKGS)

# One iteration of every benchmark: exercises each figure's hot path and
# prints its headline metric without burning CI minutes.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' $(PKGS)

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet $(PKGS)

fmt:
	gofmt -w .

# A short real campaign whose JSON summary feeds the perf trajectory; CI
# uploads campaign-smoke.json as a build artifact.
campaign-smoke:
	$(GO) run ./cmd/qossim campaign -trials 4 -workers 4 -days 14 -seed 7 \
		-out campaign-smoke.json fig2

clean:
	rm -f campaign-smoke.json bench.txt
