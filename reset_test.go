package qoscluster

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/simclock"
)

// TestSiteResetMatchesFreshBuild is the unit-level reuse gate: a site that
// ran one trial, was Reset to a new seed and ran again must report exactly
// what a freshly built site with that seed reports — in both operation
// modes, and after a chain of resets.
func TestSiteResetMatchesFreshBuild(t *testing.T) {
	const span = 2 * simclock.Day
	for _, mode := range []Mode{ModeManual, ModeAgents} {
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			fresh, err := NewSite(SmallTopology(), WithSeed(41), WithMode(mode))
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Run(span); err != nil {
				t.Fatal(err)
			}
			want := fresh.Report()
			wantFired := fresh.Sim.Fired()
			wantNet := fresh.Public.Stats()

			reused, err := NewSite(SmallTopology(), WithSeed(7), WithMode(mode))
			if err != nil {
				t.Fatal(err)
			}
			if err := reused.Run(span); err != nil {
				t.Fatal(err)
			}
			// Two resets in a row: seed 7 → 99 → 41. The 41 run must be
			// indistinguishable from the fresh 41 build.
			for _, seed := range []uint64{99, 41} {
				if err := reused.Reset(seed); err != nil {
					t.Fatalf("Reset(%d): %v", seed, err)
				}
				if err := reused.Run(span); err != nil {
					t.Fatalf("Run after Reset(%d): %v", seed, err)
				}
			}
			if got := reused.Report(); !reflect.DeepEqual(got, want) {
				t.Errorf("report after Reset chain diverged from fresh build:\n got: %+v\nwant: %+v", got, want)
			}
			if got := reused.Sim.Fired(); got != wantFired {
				t.Errorf("fired events after Reset = %d, fresh build = %d", got, wantFired)
			}
			if got := reused.Public.Stats(); got != wantNet {
				t.Errorf("public network stats after Reset = %+v, fresh build = %+v", got, wantNet)
			}
		})
	}
}

// TestSiteRunGuards pins the Run contract: strictly increasing advances
// succeed, re-running spent event state errors contextually, and Reset
// rewinds the guard.
func TestSiteRunGuards(t *testing.T) {
	site, err := NewSite(SmallTopology(), WithSeed(3), WithNoFaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := site.Run(simclock.Hour); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := site.Run(simclock.Hour); err == nil {
		t.Fatal("double Run(1h) succeeded; want a contextual error")
	} else if !strings.Contains(err.Error(), "already ran to") {
		t.Fatalf("double Run error = %q, want it to name the spent state", err)
	}
	if err := site.Run(30 * simclock.Minute); err == nil {
		t.Fatal("backwards Run succeeded; want an error")
	}
	if err := site.Run(2 * simclock.Hour); err != nil {
		t.Fatalf("incremental Run: %v", err)
	}
	if err := site.Reset(4); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if err := site.Run(simclock.Hour); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
}

// TestSiteRunReentrancyGuards pins the in-callback protection: Run and
// Reset invoked from inside a running event callback fail with a
// contextual error instead of corrupting the event loop.
func TestSiteRunReentrancyGuards(t *testing.T) {
	site, err := NewSite(SmallTopology(), WithSeed(3), WithNoFaults())
	if err != nil {
		t.Fatal(err)
	}
	var runErr, resetErr error
	site.Sim.After(simclock.Hour, "reenter", func(simclock.Time) {
		runErr = site.Run(2 * simclock.Hour)
		resetErr = site.Reset(9)
	})
	if err := site.Run(simclock.Day); err != nil {
		t.Fatalf("outer Run: %v", err)
	}
	if runErr == nil || !strings.Contains(runErr.Error(), "re-entered") {
		t.Errorf("re-entrant Run error = %v, want a re-entry error", runErr)
	}
	if resetErr == nil || !strings.Contains(resetErr.Error(), "inside an event callback") {
		t.Errorf("mid-run Reset error = %v, want an in-callback error", resetErr)
	}
}
