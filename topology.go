package qoscluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/svc"
)

// A Topology declares a site as data: ordered tiers of hosts, each with a
// role, a cyclic hardware mix, an IP block and the service templates
// deployed across its hosts. NewSite turns a Topology into a running
// scenario; PaperTopology and SmallTopology are the two canned values the
// paper's evaluation uses, and RegisterTopology / LoadTopology let
// callers add their own — in Go or as a JSON file — and select them by
// name (`qossim -site <name|file.json>`).
type Topology struct {
	// Name identifies the topology: it is the registry key, the campaign
	// site label, and the datacentre name hosts carry.
	Name string `json:"name"`
	Geo  string `json:"geo"`
	// Tiers deploy in order; host and service construction order (and
	// therefore the simulation's RNG consumption) is fully determined by
	// the declaration, so the same topology always builds the same site.
	Tiers []Tier `json:"tiers"`
}

// Tier is one homogeneous-role block of hosts.
type Tier struct {
	// Name labels the tier and prefixes its host names (db -> db001...).
	Name string `json:"name"`
	// Role is the hosts' function: "database", "transaction" or
	// "frontend". ("admin" is reserved: administration hosts are added by
	// ModeAgents itself.)
	Role  string `json:"role"`
	Hosts int    `json:"hosts"`
	// Hardware is the cyclic model mix: host i runs Hardware[i%len].
	// Model names come from cluster.Models (E10K, E4500, E450, E220R,
	// Ultra10, HP-K, HP-T, SP2, linux-x86).
	Hardware []string `json:"hardware"`
	// IPBlock is the tier's /24 prefix ("10.2.0"); host i gets .i+1.
	// "10.1.0" is reserved for the administration tier.
	IPBlock string `json:"ip_block"`
	// Services are deployed per host, in order.
	Services []ServiceTemplate `json:"services,omitempty"`
}

// ServiceTemplate stamps one service kind across a tier's hosts.
type ServiceTemplate struct {
	// Kind is the svc.Kind: oracle, sybase, webserver, frontend, lsf,
	// feedhandler.
	Kind string `json:"kind"`
	// Name is the instance-name pattern: "{host}" expands to the host
	// name, a fmt verb (e.g. "ORA-%03d") to the 1-based host ordinal
	// within the tier.
	Name string `json:"name"`
	// Port for host i is Port + i*PortStep (i 0-based), mirroring how the
	// paper's site spread listener ports across a tier.
	Port     int `json:"port,omitempty"`
	PortStep int `json:"port_step,omitempty"`
	// Cycle/Phases select a subset of hosts: with Cycle > 1 the template
	// deploys on host i iff i%Cycle is listed in Phases. The paper's
	// database tier is oracle on phases {0,1,2} and sybase on {3} of a
	// 4-cycle. Cycle 0 or 1 means every host.
	Cycle  int   `json:"cycle,omitempty"`
	Phases []int `json:"phases,omitempty"`
	// DependsOn names another tier: instance i depends on that tier's
	// LSF-target services, round-robin (the paper's front ends each pin
	// one database).
	DependsOn string `json:"depends_on,omitempty"`
	// LSFTarget marks the service as a batch execution target: it gets an
	// LSF slot limit, joins the workload generator's submission pool and
	// serves as the dependency pool for DependsOn.
	LSFTarget bool `json:"lsf_target,omitempty"`
}

// adminIPBlock is where ModeAgents puts the administration pair.
const adminIPBlock = "10.1.0"

// roleFor maps a tier's declared role onto the cluster role.
func roleFor(role string) (cluster.Role, error) {
	switch role {
	case "database":
		return cluster.RoleDatabase, nil
	case "transaction":
		return cluster.RoleTransaction, nil
	case "frontend":
		return cluster.RoleFrontEnd, nil
	case "admin":
		return "", fmt.Errorf("role %q is reserved for the administration tier ModeAgents adds", role)
	default:
		return "", fmt.Errorf("unknown role %q (want database, transaction or frontend)", role)
	}
}

// appliesTo reports whether the template deploys on the tier's i-th host
// (0-based).
func (st ServiceTemplate) appliesTo(i int) bool {
	if st.Cycle <= 1 {
		return true
	}
	for _, p := range st.Phases {
		if i%st.Cycle == p {
			return true
		}
	}
	return false
}

// instanceName renders the template's name pattern for one host.
func (st ServiceTemplate) instanceName(ord int, host string) string {
	s := strings.ReplaceAll(st.Name, "{host}", host)
	if strings.Contains(s, "%") {
		s = fmt.Sprintf(s, ord)
	}
	return s
}

// Validate checks the topology is buildable: named, at least one tier,
// unique tier names and IP blocks, positive host counts, known roles,
// hardware models and service kinds, in-range phases, unique expanded
// service names, and cross-tier dependencies that resolve to a non-empty
// LSF-target pool.
func (t Topology) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("topology has no name")
	}
	if len(t.Tiers) == 0 {
		return fmt.Errorf("topology %q declares no tiers", t.Name)
	}
	tierNames := map[string]bool{}
	ipBlocks := map[string]string{}
	for _, tier := range t.Tiers {
		if tier.Name == "" {
			return fmt.Errorf("tier with no name")
		}
		if !validTierName(tier.Name) {
			return fmt.Errorf("tier name %q: want a letter followed by letters, digits, '-' or '_' (it prefixes host names and feeds the service name patterns)", tier.Name)
		}
		if tierNames[tier.Name] {
			return fmt.Errorf("duplicate tier name %q", tier.Name)
		}
		tierNames[tier.Name] = true
		if tier.Hosts <= 0 {
			return fmt.Errorf("tier %q: %d hosts (want > 0)", tier.Name, tier.Hosts)
		}
		if tier.Hosts > 254 {
			return fmt.Errorf("tier %q: %d hosts exceeds the 254 addresses of IP block %s; split the tier",
				tier.Name, tier.Hosts, tier.IPBlock)
		}
		if _, err := roleFor(tier.Role); err != nil {
			return fmt.Errorf("tier %q: %w", tier.Name, err)
		}
		if len(tier.Hardware) == 0 {
			return fmt.Errorf("tier %q: empty hardware mix", tier.Name)
		}
		for _, model := range tier.Hardware {
			if _, ok := cluster.ModelByName(model); !ok {
				return fmt.Errorf("tier %q: unknown hardware model %q (known: %s)",
					tier.Name, model, strings.Join(modelNames(), ", "))
			}
		}
		if strings.Count(tier.IPBlock, ".") != 2 {
			return fmt.Errorf("tier %q: IP block %q (want a /24 prefix like \"10.2.0\")", tier.Name, tier.IPBlock)
		}
		if tier.IPBlock == adminIPBlock {
			return fmt.Errorf("tier %q: IP block %s is reserved for the administration tier", tier.Name, adminIPBlock)
		}
		if prev, dup := ipBlocks[tier.IPBlock]; dup {
			return fmt.Errorf("tiers %q and %q share IP block %s", prev, tier.Name, tier.IPBlock)
		}
		ipBlocks[tier.IPBlock] = tier.Name
		for _, st := range tier.Services {
			if err := st.validate(tier.Name); err != nil {
				return err
			}
		}
	}
	// Expand the templates: service names must be unique site-wide
	// (svc.Directory is name-keyed), and per-tier LSF-target counts are
	// taken over expanded instances — a target template whose cycle/phases
	// select no host provides nothing.
	// Host names cannot collide: tier names are unique and every host
	// name is the tier name plus exactly three digits (Hosts <= 254
	// keeps %03d from widening), so equal host names would force equal
	// tier names.
	seen := map[string]string{}
	targets := map[string]int{} // tier name -> expanded LSF-target instances
	for _, tier := range t.Tiers {
		for i := 0; i < tier.Hosts; i++ {
			host := tier.hostName(i)
			for _, st := range tier.Services {
				if !st.appliesTo(i) {
					continue
				}
				name := st.instanceName(i+1, host)
				if prev, dup := seen[name]; dup {
					return fmt.Errorf("service name %q expands on both %s and %s (name patterns need a %%d ordinal or {host})",
						name, prev, host)
				}
				seen[name] = host
				if st.LSFTarget {
					targets[tier.Name]++
				}
			}
		}
	}
	// Cross-tier dependencies must point at a tier whose expansion
	// actually publishes targets (the dependency pool is round-robined,
	// so an empty one is unusable). A topology with no targets at all is
	// legal — the batch workload just idles and only interactive/feed
	// load is offered.
	for _, tier := range t.Tiers {
		for _, st := range tier.Services {
			if st.DependsOn == "" {
				continue
			}
			if !tierNames[st.DependsOn] {
				return fmt.Errorf("tier %q service %q depends on unknown tier %q", tier.Name, st.Name, st.DependsOn)
			}
			if targets[st.DependsOn] == 0 {
				return fmt.Errorf("tier %q service %q depends on tier %q, which expands to no lsf_target services",
					tier.Name, st.Name, st.DependsOn)
			}
		}
	}
	return nil
}

func (st ServiceTemplate) validate(tier string) error {
	if st.Name == "" {
		return fmt.Errorf("tier %q: service template with no name pattern", tier)
	}
	// fmt reports a malformed pattern (wrong verb, stray %, too many
	// verbs) with a "%!" marker in its output; catch it here instead of
	// shipping garbage service names into reports and DGSPLs.
	if rendered := st.instanceName(1, "host"); strings.Contains(rendered, "%!") {
		return fmt.Errorf("tier %q service %q: bad name pattern (renders as %q); use one integer verb like %%03d or {host}",
			tier, st.Name, rendered)
	}
	if _, err := svc.SpecFor(svc.Kind(st.Kind), "probe", 1); err != nil {
		return fmt.Errorf("tier %q service %q: unknown kind %q", tier, st.Name, st.Kind)
	}
	if st.Cycle < 0 {
		return fmt.Errorf("tier %q service %q: negative cycle %d", tier, st.Name, st.Cycle)
	}
	if st.Cycle > 1 && len(st.Phases) == 0 {
		return fmt.Errorf("tier %q service %q: cycle %d without phases deploys nowhere meaningful; list phases",
			tier, st.Name, st.Cycle)
	}
	if st.Cycle <= 1 && len(st.Phases) > 0 {
		return fmt.Errorf("tier %q service %q: phases %v without a cycle > 1", tier, st.Name, st.Phases)
	}
	for _, p := range st.Phases {
		if p < 0 || p >= st.Cycle {
			return fmt.Errorf("tier %q service %q: phase %d out of range [0,%d)", tier, st.Name, p, st.Cycle)
		}
	}
	return nil
}

// validTierName restricts tier names to a letter followed by letters,
// digits, '-' or '_': the name prefixes host names and flows through the
// service-name fmt pass, so characters like '%' would mangle both.
func validTierName(name string) bool {
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case i > 0 && (r >= '0' && r <= '9' || r == '-' || r == '_'):
		default:
			return false
		}
	}
	return name != ""
}

func (t Tier) hostName(i int) string { return fmt.Sprintf("%s%03d", t.Name, i+1) }

func (t Tier) hostIP(i int) string { return fmt.Sprintf("%s.%d", t.IPBlock, i+1) }

func (t Tier) hardwareFor(i int) cluster.HardwareModel {
	m, _ := cluster.ModelByName(t.Hardware[i%len(t.Hardware)])
	return m
}

func modelNames() []string {
	names := make([]string, 0, len(cluster.Models))
	for _, m := range cluster.Models {
		names = append(names, m.Name)
	}
	return names
}

// JSON renders the topology in its canonical JSON form — the same shape
// LoadTopology reads, so a topology survives a write/load round trip
// unchanged.
func (t Topology) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// LoadTopology decodes and validates a JSON topology. Unknown fields are
// rejected so a typo'd "hardwares" key fails loudly instead of silently
// deploying defaults.
func LoadTopology(r io.Reader) (Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("decode topology: %w", err)
	}
	// One document per file: trailing content (say, a botched merge
	// concatenating two topologies) must not be silently discarded.
	if _, err := dec.Token(); err != io.EOF {
		return Topology{}, fmt.Errorf("decode topology: trailing data after the topology document")
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// LoadTopologyFile reads a topology JSON file.
func LoadTopologyFile(path string) (Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return Topology{}, err
	}
	defer f.Close()
	t, err := LoadTopology(f)
	if err != nil {
		return Topology{}, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// --- Named-topology registry ---

var (
	topoMu  sync.RWMutex
	topoReg = map[string]Topology{}
)

// RegisterTopology validates a topology and registers it under its Name,
// replacing any earlier registration, so scenarios and campaigns can
// select it with `-site <name>`.
func RegisterTopology(t Topology) error {
	if err := t.Validate(); err != nil {
		return err
	}
	topoMu.Lock()
	defer topoMu.Unlock()
	topoReg[t.Name] = t
	return nil
}

// TopologyByName looks up a registered topology.
func TopologyByName(name string) (Topology, bool) {
	topoMu.RLock()
	defer topoMu.RUnlock()
	t, ok := topoReg[name]
	return t, ok
}

// TopologyNames lists the registered topologies, sorted.
func TopologyNames() []string {
	topoMu.RLock()
	defer topoMu.RUnlock()
	names := make([]string, 0, len(topoReg))
	for name := range topoReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	for _, t := range []Topology{
		PaperTopology(), SmallTopology(), WebFarmTopology(), ComputeFarmTopology(),
	} {
		if err := RegisterTopology(t); err != nil {
			panic(err) // built-in topologies must validate
		}
	}
}

// --- Canned topologies ---

// paperShaped builds the paper's three-tier site shape — an
// Oracle/Sybase database tier carrying LSF, a market-data transaction
// tier and a front-end tier pinned to databases — at the given scale.
func paperShaped(name, geo string, db, tx, fe int) Topology {
	t := Topology{Name: name, Geo: geo}
	if db > 0 {
		t.Tiers = append(t.Tiers, Tier{
			Name: "db", Role: "database", Hosts: db, IPBlock: "10.2.0",
			Hardware: []string{"E10K", "E4500", "E4500"},
			Services: []ServiceTemplate{
				{Kind: "oracle", Name: "ORA-%03d", Port: 1521, Cycle: 4, Phases: []int{0, 1, 2}, LSFTarget: true},
				{Kind: "sybase", Name: "SYB-%03d", Port: 4100, Cycle: 4, Phases: []int{3}, LSFTarget: true},
				{Kind: "lsf", Name: "LSF-{host}"},
			},
		})
	}
	if tx > 0 {
		t.Tiers = append(t.Tiers, Tier{
			Name: "tx", Role: "transaction", Hosts: tx, IPBlock: "10.3.0",
			Hardware: []string{"E450", "HP-K", "E220R", "HP-T", "linux-x86", "Ultra10"},
			Services: []ServiceTemplate{
				{Kind: "feedhandler", Name: "FEED-%03d", Port: 7000, PortStep: 1},
			},
		})
	}
	if fe > 0 {
		feTier := Tier{
			Name: "fe", Role: "frontend", Hosts: fe, IPBlock: "10.4.0",
			Hardware: []string{"SP2"},
			Services: []ServiceTemplate{
				{Kind: "frontend", Name: "FE-%03d", Port: 8000, PortStep: 1},
			},
		}
		if db > 0 {
			feTier.Services[0].DependsOn = "db"
		}
		t.Tiers = append(t.Tiers, feTier)
	}
	return t
}

// PaperTopology is the paper's full-size evaluation site: 100 database,
// 55 transaction and 60 front-end servers with the §4 hardware spread.
// Use it for structure demonstrations; year-long simulations want
// SmallTopology, whose downtime ledger is equivalent because fault
// arrival rates are site-wide.
func PaperTopology() Topology { return paperShaped("paper", "UK", 100, 55, 60) }

// SmallTopology is the scaled site for long simulations: the fault
// campaign is defined per site, not per host, so category downtime totals
// are unaffected by the scale-down while event counts drop by an order of
// magnitude.
func SmallTopology() Topology { return paperShaped("small", "UK", 6, 2, 3) }

// WebFarmTopology is a front-end-heavy web estate: a small database core
// feeding a large commodity web tier and a GUI tier — the opposite load
// shape to the paper's database-dominated site. Interactive pressure
// lands on the (many) front-end-role hosts while the batch pool is tiny.
func WebFarmTopology() Topology {
	return Topology{
		Name: "webfarm", Geo: "UK",
		Tiers: []Tier{
			{Name: "db", Role: "database", Hosts: 4, IPBlock: "10.2.0",
				Hardware: []string{"E4500"},
				Services: []ServiceTemplate{
					{Kind: "oracle", Name: "ORA-%03d", Port: 1521, LSFTarget: true},
					{Kind: "lsf", Name: "LSF-{host}"},
				}},
			{Name: "web", Role: "frontend", Hosts: 18, IPBlock: "10.5.0",
				Hardware: []string{"linux-x86", "linux-x86", "SP2"},
				Services: []ServiceTemplate{
					{Kind: "webserver", Name: "WEB-%03d", Port: 8080, PortStep: 1},
				}},
			{Name: "fe", Role: "frontend", Hosts: 10, IPBlock: "10.4.0",
				Hardware: []string{"SP2"},
				Services: []ServiceTemplate{
					{Kind: "frontend", Name: "FE-%03d", Port: 9000, PortStep: 1, DependsOn: "db"},
				}},
		},
	}
}

// ComputeFarmTopology is a batch-dominated compute farm: twenty heavy
// execution hosts (every one an LSF target), a token pair of feed
// handlers and a minimal GUI tier. The workload generator scales
// submissions with the target pool, so overnight batch — the paper's
// dominant failure trigger — is the main offered load here.
func ComputeFarmTopology() Topology {
	return Topology{
		Name: "computefarm", Geo: "UK",
		Tiers: []Tier{
			{Name: "compute", Role: "database", Hosts: 20, IPBlock: "10.6.0",
				Hardware: []string{"E10K", "E4500", "HP-K", "E4500"},
				Services: []ServiceTemplate{
					{Kind: "oracle", Name: "CDB-%03d", Port: 1521, LSFTarget: true},
					{Kind: "lsf", Name: "LSF-{host}"},
				}},
			{Name: "feed", Role: "transaction", Hosts: 2, IPBlock: "10.3.0",
				Hardware: []string{"E450"},
				Services: []ServiceTemplate{
					{Kind: "feedhandler", Name: "FEED-%03d", Port: 7000, PortStep: 1},
				}},
			{Name: "fe", Role: "frontend", Hosts: 2, IPBlock: "10.4.0",
				Hardware: []string{"SP2"},
				Services: []ServiceTemplate{
					{Kind: "frontend", Name: "FE-%03d", Port: 8000, PortStep: 1, DependsOn: "compute"},
				}},
		},
	}
}
